// Read-lease tests: the hot-key fast path (leased reads answer locally with
// zero wire traffic), write invalidation, clock expiry, crash-recovery
// revocation on both sides of a grant, lease drops at migration handoff,
// schedule determinism with leases on, and a negative history check — a
// stale leased read is exactly the bug the keyed checker must name.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/cluster.h"
#include "core/scenario_runner.h"
#include "core/shard_router.h"
#include "history/keyed.h"
#include "history/tag_order.h"
#include "proto/policy.h"
#include "sim/scenario.h"

namespace remus::core {
namespace {

cluster_config leased_config(std::uint32_t threshold, time_ns duration,
                             std::uint32_t n = 3, std::uint64_t seed = 1) {
  cluster_config cfg;
  cfg.n = n;
  cfg.policy = proto::persistent_policy();
  cfg.policy.read_leases = true;
  cfg.policy.lease_hot_read_threshold = threshold;
  cfg.policy.lease_duration = duration;
  cfg.seed = seed;
  return cfg;
}

struct lease_counters {
  std::uint64_t hits = 0, misses = 0, grants = 0, invalidations = 0, expiries = 0;
};

lease_counters count_leases(cluster& c) {
  lease_counters t;
  for (std::uint32_t p = 0; p < c.size(); ++p) {
    const auto& b = c.core_of(process_id{p}).branches();
    t.hits += b.leased_read_hits;
    t.misses += b.leased_read_misses;
    t.grants += b.lease_grants;
    t.invalidations += b.lease_invalidations;
    t.expiries += b.lease_expiries;
  }
  return t;
}

// ---------- The fast path ----------

TEST(Lease, HotReadIsServedLocallyWithZeroWireBytes) {
  cluster c(leased_config(/*threshold=*/0, /*duration=*/2'000'000'000));
  c.write(process_id{0}, value_of_u32(7));
  // First read pays the grant round; once the holding is active, reads are
  // local: no messages, no wire bytes, same value.
  EXPECT_EQ(value_as_u32(c.read(process_id{1})), 7u);
  ASSERT_GE(count_leases(c).grants, 1u);
  const std::uint64_t wire_before = c.network().bytes_sent();
  const std::uint64_t hits_before = count_leases(c).hits;
  EXPECT_EQ(value_as_u32(c.read(process_id{1})), 7u);
  EXPECT_EQ(c.network().bytes_sent(), wire_before)
      << "a leased read must not touch the network";
  EXPECT_EQ(count_leases(c).hits, hits_before + 1);
}

TEST(Lease, ColdKeysStayBelowTheThreshold) {
  cluster c(leased_config(/*threshold=*/2, /*duration=*/2'000'000'000));
  c.write(process_id{0}, value_of_u32(1));
  // heat must exceed the threshold before a grant round is attempted: two
  // reads warm the key, the third runs the grant.
  EXPECT_EQ(value_as_u32(c.read(process_id{1})), 1u);
  EXPECT_EQ(value_as_u32(c.read(process_id{1})), 1u);
  EXPECT_EQ(count_leases(c).grants, 0u);
  EXPECT_EQ(value_as_u32(c.read(process_id{1})), 1u);
  EXPECT_GE(count_leases(c).grants, 1u);
}

// ---------- Revocation: writes, the clock, crashes ----------

TEST(Lease, WriteInvalidatesHoldingsAndReadersSeeTheNewValue) {
  cluster c(leased_config(0, 2'000'000'000));
  c.write(process_id{0}, value_of_u32(1));
  EXPECT_EQ(value_as_u32(c.read(process_id{1})), 1u);
  EXPECT_EQ(value_as_u32(c.read(process_id{1})), 1u);  // leased hit
  ASSERT_GE(count_leases(c).hits, 1u);

  c.write(process_id{2}, value_of_u32(2));
  EXPECT_GE(count_leases(c).invalidations, 1u)
      << "the update round must cancel the holding";
  EXPECT_EQ(value_as_u32(c.read(process_id{1})), 2u)
      << "post-write read served a stale leased value";
  const auto verdict = history::check_persistent_atomicity_per_key(c.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(Lease, ExpiryStopsLocalServingAndUnblocksNothing) {
  cluster c(leased_config(0, /*duration=*/10'000'000));  // 10ms virtual
  c.write(process_id{0}, value_of_u32(1));
  EXPECT_EQ(value_as_u32(c.read(process_id{1})), 1u);  // grant
  c.run_for(50'000'000);                               // clocks fire
  EXPECT_GE(count_leases(c).expiries, 1u);
  const std::uint64_t hits_before = count_leases(c).hits;
  EXPECT_EQ(value_as_u32(c.read(process_id{1})), 1u);
  EXPECT_EQ(count_leases(c).hits, hits_before)
      << "an expired holding must not serve reads";
  // Writes proceed normally once every record aged out.
  c.write(process_id{2}, value_of_u32(2));
  EXPECT_EQ(value_as_u32(c.read(process_id{1})), 2u);
  const auto verdict = history::check_persistent_atomicity_per_key(c.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(Lease, HolderCrashRecoveryDropsTheHolding) {
  cluster c(leased_config(0, /*duration=*/50'000'000));
  c.write(process_id{0}, value_of_u32(1));
  EXPECT_EQ(value_as_u32(c.read(process_id{1})), 1u);  // p1 holds a lease
  c.submit_crash(process_id{1}, c.now() + 1'000'000);
  c.submit_recover(process_id{1}, c.now() + 5'000'000);
  ASSERT_TRUE(c.run_until_idle());
  // The holding was volatile: the recovered holder pays the quorum round
  // (or a fresh grant) instead of answering from pre-crash state.
  const std::uint64_t hits_before = count_leases(c).hits;
  c.write(process_id{2}, value_of_u32(2));
  EXPECT_EQ(value_as_u32(c.read(process_id{1})), 2u)
      << "recovered holder served a stale pre-crash value";
  EXPECT_GE(count_leases(c).hits, hits_before);
  const auto verdict = history::check_persistent_atomicity_per_key(c.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(Lease, GrantorCrashRecoveryRestoresTheRecordDurably) {
  // The other direction: a *grantor* crashes after durably noting the grant.
  // Recovery restores the record from the lease area of stable storage, so
  // a post-recovery write still honors the outstanding lease (it completes —
  // possibly after the lease ages out — and the history stays atomic).
  cluster c(leased_config(0, /*duration=*/20'000'000));
  c.write(process_id{0}, value_of_u32(1));
  EXPECT_EQ(value_as_u32(c.read(process_id{1})), 1u);
  c.submit_crash(process_id{2}, c.now() + 500'000);  // a grantor, not the holder
  c.submit_recover(process_id{2}, c.now() + 3'000'000);
  ASSERT_TRUE(c.run_until_idle());
  c.write(process_id{0}, value_of_u32(2));
  EXPECT_EQ(value_as_u32(c.read(process_id{1})), 2u);
  EXPECT_EQ(value_as_u32(c.read(process_id{2})), 2u);
  const auto verdict = history::check_persistent_atomicity_per_key(c.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

// ---------- Determinism ----------

TEST(Lease, SameSeedSameScheduleWithLeasesOn) {
  auto drive = [](cluster& c) {
    for (std::uint32_t i = 0; i < 40; ++i) {
      const process_id p{i % 3};
      const register_id reg = i % 4;
      const time_ns at = static_cast<time_ns>(i) * 700'000;
      if (i % 5 == 0) {
        c.submit_write(p, reg, value_of_u32(100 + i), at);
      } else {
        c.submit_read(p, reg, at);
      }
    }
    ASSERT_TRUE(c.run_until_idle());
  };
  cluster a(leased_config(1, 10'000'000, 3, /*seed=*/9));
  cluster b(leased_config(1, 10'000'000, 3, /*seed=*/9));
  drive(a);
  drive(b);
  EXPECT_EQ(a.events_executed(), b.events_executed());
  EXPECT_EQ(a.now(), b.now());
  EXPECT_EQ(a.events().size(), b.events().size());
  const auto ca = count_leases(a);
  const auto cb = count_leases(b);
  EXPECT_EQ(ca.hits, cb.hits);
  EXPECT_EQ(ca.grants, cb.grants);
  EXPECT_EQ(ca.expiries, cb.expiries);
}

// ---------- The negative history ----------

TEST(Lease, StaleLeasedReadIsFlaggedAndNamesTheKey) {
  // The exact shape a broken lease would produce: the write to key 7
  // completes (invalidation supposedly done), then a holder answers an older
  // value from its stale holding. The keyed checker must reject the history
  // and say which register broke.
  history::history_log h;
  const register_id bad = 7;
  auto push = [&h](history::event_kind k, std::uint32_t p, value v, register_id reg) {
    h.push_back({k, process_id{p}, std::move(v),
                 static_cast<time_ns>(h.size()) * 1000, reg});
  };
  using ek = history::event_kind;
  push(ek::invoke_write, 0, value_of_u32(1), bad);
  push(ek::reply_write, 0, {}, bad);
  push(ek::invoke_write, 0, value_of_u32(2), bad);
  push(ek::reply_write, 0, {}, bad);
  push(ek::invoke_read, 1, {}, bad);  // "leased" read after the write acked
  push(ek::reply_read, 1, value_of_u32(1), bad);
  // A healthy neighbor key: the verdict must blame register 7, not key 3.
  push(ek::invoke_write, 2, value_of_u32(9), 3);
  push(ek::reply_write, 2, {}, 3);
  push(ek::invoke_read, 2, {}, 3);
  push(ek::reply_read, 2, value_of_u32(9), 3);

  const auto verdict = history::check_persistent_atomicity_per_key(h);
  ASSERT_FALSE(verdict.ok) << "a stale leased read linearized";
  EXPECT_NE(verdict.explanation.find("register 7"), std::string::npos)
      << "violation must name the key: " << verdict.explanation;
}

// ---------- Migration ----------

TEST(Lease, MigrationDropsLeasesAtHandoff) {
  shard_router_config cfg;
  cfg.shards = 2;
  cfg.base.n = 3;
  cfg.base.policy = proto::persistent_policy();
  cfg.base.policy.read_leases = true;
  cfg.base.policy.lease_hot_read_threshold = 0;
  cfg.base.policy.lease_duration = 2'000'000'000;
  cfg.base.seed = 11;
  shard_router r(cfg);

  const register_id keys = 48;
  for (register_id reg = 0; reg < keys; ++reg) {
    r.write(process_id{0}, reg, value_of_u32(500 + reg));
  }
  // Heat every key so leases are live across both source shards.
  for (register_id reg = 0; reg < keys; ++reg) {
    EXPECT_EQ(value_as_u32(r.read(process_id{1}, reg)), 500 + reg);
  }

  const std::uint32_t added = r.begin_add_shard();
  ASSERT_TRUE(r.run_until_idle());
  ASSERT_TRUE(r.migration_drained());
  r.finish_add_shard();

  // Some keys moved to the new shard; each moved key that carried lease
  // state must log a lease_drop companion to its handoff entry.
  std::size_t moved = 0, lease_drops = 0;
  for (const auto& e : r.migration_log()) {
    if (e.why == shard_router::migration_event::cause::lease_drop) {
      ++lease_drops;
      EXPECT_EQ(r.shard_of(e.reg), added)
          << "lease_drop logged for a key that did not move";
    } else {
      ++moved;
    }
  }
  ASSERT_GT(moved, 0u);
  EXPECT_GT(lease_drops, 0u) << "handoff left leases standing on the source";

  // Post-handoff reads route to the new shard and see the values; the old
  // shards hold no exportable state (so no stale leased serve is possible).
  for (const auto& e : r.migration_log()) {
    if (e.why != shard_router::migration_event::cause::lease_drop) continue;
    EXPECT_EQ(value_as_u32(r.read(process_id{2}, e.reg)), 500 + e.reg);
    for (std::uint32_t s = 0; s < added; ++s) {
      EXPECT_FALSE(r.shard(s).export_register(e.reg).has_state)
          << "source shard " << s << " still owns reg " << e.reg;
    }
  }
  const auto verdict = history::check_persistent_atomicity_per_key(r.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
  const auto tags = history::check_tag_order_per_key(r.tagged_operations());
  EXPECT_TRUE(tags.ok) << tags.explanation;
}

TEST(Lease, MigrationChaosWithLeaseFaultFamilyStaysAtomic) {
  // Scenario-engine composition: a lease-family fault unit (which turns
  // leases on for the run) overlapping an open migration window plus a
  // crash. The run must stay atomic and the coverage must show live lease
  // traffic meeting the handoff.
  scenario_spec spec;
  spec.plan.shards = 2;
  spec.plan.n = 3;
  auto ev = [](time_ns at, sim::scenario_kind kind, sim::fault_family family,
               std::uint32_t unit, std::uint32_t shard, process_id target) {
    sim::scenario_event e;
    e.at = at;
    e.kind = kind;
    e.family = family;
    e.unit = unit;
    e.shard = shard;
    e.target = target;
    return e;
  };
  sim::scenario_event mig = ev(400'000, sim::scenario_kind::begin_migration,
                               sim::fault_family::migration, 0, 0, no_process);
  spec.plan.events.push_back(mig);
  spec.plan.events.push_back(ev(900'000, sim::scenario_kind::crash,
                                sim::fault_family::lease, 1, 0, process_id{1}));
  spec.plan.events.push_back(ev(2'600'000, sim::scenario_kind::recover,
                                sim::fault_family::lease, 1, 0, process_id{1}));
  spec.plan.sort();
  ASSERT_TRUE(spec.plan.well_formed());
  spec.key_count = 8;
  spec.ops = 120;
  spec.read_fraction = 0.8;
  spec.zipf_theta = 0.99;
  spec.workload_seed = 5;
  spec.cluster_seed = 7;

  const scenario_outcome out = run_scenario(spec);
  ASSERT_TRUE(out.ok()) << out.failure << "\nREPRO " << spec.encode();
  EXPECT_GT(out.coverage.lease_grants, 0u);
  EXPECT_GT(out.coverage.leased_read_hits, 0u);
  // The spec round-trips with the leases flag intact (11th codec field).
  const scenario_spec back = scenario_spec::decode(spec.encode());
  EXPECT_EQ(back, spec);
}

}  // namespace
}  // namespace remus::core
