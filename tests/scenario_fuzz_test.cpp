// Adversarial scenario engine tests: plan validity, the coverage-biased
// generator, plan/spec repro codecs, coverage accounting, schedule
// determinism, a clean fuzzing smoke across every fault family, and the
// fuzzer's acceptance check — a deliberately planted migration bug is
// caught and delta-debugged to a tiny repro.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/scenario_runner.h"
#include "sim/scenario.h"

namespace remus::sim {
namespace {

scenario_event ev(time_ns at, scenario_kind kind, fault_family family,
                  std::uint32_t unit, std::uint32_t shard, std::uint32_t target) {
  scenario_event e;
  e.at = at;
  e.kind = kind;
  e.family = family;
  e.unit = unit;
  e.shard = shard;
  e.target = process_id{target};
  return e;
}

/// One crash/recover unit plus one partition window on a 1x3 topology.
scenario_plan small_plan() {
  scenario_plan plan;
  plan.shards = 1;
  plan.n = 3;
  plan.events.push_back(ev(1'000, scenario_kind::crash, fault_family::crash_recover, 0, 0, 1));
  plan.events.push_back(ev(2'000, scenario_kind::recover, fault_family::crash_recover, 0, 0, 1));
  scenario_event cut = ev(1'500, scenario_kind::cut, fault_family::partition, 1, 0, 0);
  cut.target = no_process;
  cut.group_mask = 0b001;
  plan.events.push_back(cut);
  scenario_event heal = ev(3'000, scenario_kind::heal, fault_family::partition, 1, 0, 0);
  heal.target = no_process;
  plan.events.push_back(heal);
  plan.sort();
  return plan;
}

// ---------- Plan validity ----------

TEST(ScenarioPlan, SmallHandWrittenPlanIsWellFormed) {
  const scenario_plan plan = small_plan();
  EXPECT_TRUE(plan.well_formed());
  EXPECT_EQ(plan.unit_count(), 2u);
}

TEST(ScenarioPlan, DoubleCrashWithoutRecoverIsRejected) {
  scenario_plan plan = small_plan();
  plan.events.push_back(ev(1'200, scenario_kind::crash, fault_family::crash_recover, 2, 0, 1));
  plan.sort();
  EXPECT_FALSE(plan.well_formed());
}

TEST(ScenarioPlan, CrashWithoutEventualRecoverIsRejected) {
  scenario_plan plan = small_plan();
  plan.events.push_back(ev(5'000, scenario_kind::crash, fault_family::crash_recover, 2, 0, 2));
  plan.sort();
  EXPECT_FALSE(plan.well_formed());
}

TEST(ScenarioPlan, CutWithoutHealIsRejected) {
  scenario_plan plan = small_plan();
  scenario_event cut = ev(4'000, scenario_kind::cut, fault_family::partition, 2, 0, 0);
  cut.target = no_process;
  cut.group_mask = 0b010;
  plan.events.push_back(cut);
  plan.sort();
  EXPECT_FALSE(plan.well_formed());
}

TEST(ScenarioPlan, CutMaskMustBeProperNonEmptySubset) {
  for (const std::uint32_t mask : {0u, 0b111u, 0b1111u}) {
    scenario_plan plan = small_plan();
    scenario_event cut = ev(4'000, scenario_kind::cut, fault_family::partition, 2, 0, 0);
    cut.target = no_process;
    cut.group_mask = mask;
    plan.events.push_back(cut);
    scenario_event heal = ev(4'500, scenario_kind::heal, fault_family::partition, 2, 0, 0);
    heal.target = no_process;
    plan.events.push_back(heal);
    plan.sort();
    EXPECT_FALSE(plan.well_formed()) << "mask " << mask;
  }
}

TEST(ScenarioPlan, AtMostOneMigrationTrigger) {
  scenario_plan plan = small_plan();
  for (int i = 0; i < 2; ++i) {
    scenario_event mig =
        ev(500 + i, scenario_kind::begin_migration, fault_family::migration, 2u + i, 0, 0);
    mig.target = no_process;
    plan.events.push_back(mig);
  }
  plan.sort();
  EXPECT_FALSE(plan.well_formed());
  for (auto it = plan.events.begin(); it != plan.events.end(); ++it) {
    if (it->kind == scenario_kind::begin_migration) {
      plan.events.erase(it);
      break;
    }
  }
  EXPECT_TRUE(plan.well_formed());
}

TEST(ScenarioPlan, UnsortedEventsAreRejected) {
  scenario_plan plan = small_plan();
  std::swap(plan.events.front(), plan.events.back());
  EXPECT_FALSE(plan.well_formed());
}

TEST(ScenarioPlan, GrayLossMustBeBelowOne) {
  scenario_plan plan = small_plan();
  scenario_event gray = ev(1'100, scenario_kind::gray, fault_family::gray_link, 2, 0, 0);
  gray.peer = process_id{2};
  gray.loss = 1.0;
  plan.events.push_back(gray);
  scenario_event heal = ev(4'000, scenario_kind::heal, fault_family::gray_link, 2, 0, 0);
  heal.target = no_process;
  plan.events.push_back(heal);
  plan.sort();
  EXPECT_FALSE(plan.well_formed());
  for (scenario_event& e : plan.events) {
    if (e.kind == scenario_kind::gray) e.loss = 0.5;
  }
  EXPECT_TRUE(plan.well_formed());
}

// ---------- Generator ----------

TEST(AdversarialGenerator, PlansAreWellFormedAcrossSeedsAndShapes) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    rng r(seed);
    adversarial_config cfg;
    cfg.shards = 1 + static_cast<std::uint32_t>(seed % 3);
    cfg.n = (seed % 4 == 0) ? 5 : 3;
    cfg.units = 2 + static_cast<std::uint32_t>(seed % 7);
    cfg.horizon = 5'000'000;
    cfg.min_down = 100'000;
    cfg.max_down = 1'500'000;
    const scenario_plan plan = make_adversarial_plan(cfg, r);
    ASSERT_TRUE(plan.well_formed()) << "seed " << seed;
    ASSERT_EQ(plan.shards, cfg.shards);
    ASSERT_EQ(plan.n, cfg.n);
    std::size_t migrations = 0;
    for (const scenario_event& e : plan.events) {
      if (e.kind == scenario_kind::begin_migration) ++migrations;
    }
    ASSERT_LE(migrations, 1u) << "seed " << seed;
  }
}

TEST(AdversarialGenerator, DeterministicForFixedSeed) {
  adversarial_config cfg;
  cfg.units = 8;
  rng a(77), b(77);
  EXPECT_EQ(make_adversarial_plan(cfg, a), make_adversarial_plan(cfg, b));
}

TEST(AdversarialGenerator, ZeroWeightDisablesFamily) {
  adversarial_config cfg;
  cfg.units = 10;
  cfg.weights[static_cast<std::size_t>(fault_family::blackout)] = 0.0;
  cfg.weights[static_cast<std::size_t>(fault_family::migration)] = 0.0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    rng r(seed);
    const scenario_plan plan = make_adversarial_plan(cfg, r);
    for (const scenario_event& e : plan.events) {
      ASSERT_NE(e.family, fault_family::blackout) << "seed " << seed;
      ASSERT_NE(e.family, fault_family::migration) << "seed " << seed;
    }
  }
}

TEST(AdversarialGenerator, CoverageBiasShiftsMixTowardUnderexplored) {
  // Pretend crash/recover has been explored to death; the biased generator
  // should pick it for a smaller share of units than the unbiased one.
  scenario_coverage explored;
  explored.family_runs[static_cast<std::size_t>(fault_family::crash_recover)] = 10'000;
  for (std::size_t f = 1; f < fault_family_count; ++f) explored.family_runs[f] = 1;

  adversarial_config cfg;
  cfg.units = 6;
  std::uint64_t crash_units_plain = 0, crash_units_biased = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    rng pa(seed), pb(seed);
    const scenario_plan plain = make_adversarial_plan(cfg, pa);
    const scenario_plan biased = make_adversarial_plan(cfg, pb, &explored);
    const auto count_crash_units = [](const scenario_plan& p) {
      std::vector<std::uint32_t> seen;
      for (const scenario_event& e : p.events) {
        if (e.family != fault_family::crash_recover) continue;
        bool dup = false;
        for (const std::uint32_t u : seen) dup = dup || u == e.unit;
        if (!dup) seen.push_back(e.unit);
      }
      return seen.size();
    };
    crash_units_plain += count_crash_units(plain);
    crash_units_biased += count_crash_units(biased);
  }
  EXPECT_LT(crash_units_biased * 2, crash_units_plain)
      << "biased=" << crash_units_biased << " plain=" << crash_units_plain;
}

// ---------- Codecs ----------

TEST(ScenarioCodec, PlanRoundTripsExactly) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    rng r(seed);
    adversarial_config cfg;
    cfg.shards = 1 + static_cast<std::uint32_t>(seed % 2);
    cfg.units = 5;
    const scenario_plan plan = make_adversarial_plan(cfg, r);
    const scenario_plan back = decode_plan(encode(plan));
    ASSERT_EQ(back, plan) << "seed " << seed;
  }
}

TEST(ScenarioCodec, GrayLossDoubleRoundTripsBitExactly) {
  scenario_plan plan = small_plan();
  scenario_event gray = ev(1'100, scenario_kind::gray, fault_family::gray_link, 2, 0, 0);
  gray.peer = process_id{2};
  gray.extra_delay = 123'456;
  gray.loss = 0.1 + 0.2;  // 0.30000000000000004 — not representable in decimal
  plan.events.push_back(gray);
  scenario_event heal = ev(4'000, scenario_kind::heal, fault_family::gray_link, 2, 0, 0);
  heal.target = no_process;
  plan.events.push_back(heal);
  plan.sort();
  EXPECT_EQ(decode_plan(encode(plan)), plan);
}

TEST(ScenarioCodec, MalformedPlanLinesThrow) {
  EXPECT_THROW((void)decode_plan(""), std::invalid_argument);
  EXPECT_THROW((void)decode_plan("v2;1,3"), std::invalid_argument);
  EXPECT_THROW((void)decode_plan("v1;1"), std::invalid_argument);
  EXPECT_THROW((void)decode_plan("v1;1,3;0,banana"), std::invalid_argument);
}

TEST(ScenarioCodec, SpecRoundTripsExactly) {
  core::scenario_spec spec;
  spec.plan = small_plan();
  spec.key_count = 11;
  spec.ops = 73;
  spec.read_fraction = 1.0 / 3.0;
  spec.zipf_theta = 0.99;
  spec.batch_size = 3;
  spec.mean_gap = 123'000;
  spec.workload_seed = 0xdeadbeefcafeULL;
  spec.cluster_seed = 42;
  spec.policy = 't';
  spec.fault = core::shard_router_config::injected_fault::drop_handoff_state;
  const core::scenario_spec back = core::scenario_spec::decode(spec.encode());
  EXPECT_EQ(back, spec);
}

TEST(ScenarioCodec, MalformedSpecLinesThrow) {
  EXPECT_THROW((void)core::scenario_spec::decode(""), std::invalid_argument);
  EXPECT_THROW((void)core::scenario_spec::decode("s2|1|v1;1,3"), std::invalid_argument);
  EXPECT_THROW((void)core::scenario_spec::decode("s1|1,2,3|v1;1,3"), std::invalid_argument);
}

// ---------- Coverage accounting ----------

TEST(ScenarioCoverage, CountsFamiliesAndWindowOverlaps) {
  scenario_coverage cov;
  accumulate_plan_coverage(small_plan(), cov);
  const auto cr = static_cast<std::size_t>(fault_family::crash_recover);
  const auto pt = static_cast<std::size_t>(fault_family::partition);
  EXPECT_EQ(cov.family_events[cr], 2u);
  EXPECT_EQ(cov.family_events[pt], 2u);
  EXPECT_EQ(cov.family_runs[cr], 1u);
  EXPECT_EQ(cov.family_runs[pt], 1u);
  // Crash window [1000, 2000] overlaps cut window [1500, 3000].
  EXPECT_EQ(cov.overlap_pairs[cr][pt] + cov.overlap_pairs[pt][cr], 1u);
}

TEST(ScenarioCoverage, DisjointWindowsDoNotOverlap) {
  scenario_plan plan;
  plan.shards = 1;
  plan.n = 3;
  plan.events.push_back(ev(1'000, scenario_kind::crash, fault_family::crash_recover, 0, 0, 0));
  plan.events.push_back(ev(2'000, scenario_kind::recover, fault_family::crash_recover, 0, 0, 0));
  plan.events.push_back(ev(3'000, scenario_kind::crash, fault_family::crash_recover, 1, 0, 1));
  plan.events.push_back(ev(4'000, scenario_kind::recover, fault_family::crash_recover, 1, 0, 1));
  plan.sort();
  ASSERT_TRUE(plan.well_formed());
  scenario_coverage cov;
  accumulate_plan_coverage(plan, cov);
  const auto cr = static_cast<std::size_t>(fault_family::crash_recover);
  EXPECT_EQ(cov.overlap_pairs[cr][cr], 0u);
}

TEST(ScenarioCoverage, MergeAddsCounters) {
  scenario_coverage a, b;
  accumulate_plan_coverage(small_plan(), a);
  accumulate_plan_coverage(small_plan(), b);
  b.adoptions = 7;
  a.merge(b);
  const auto cr = static_cast<std::size_t>(fault_family::crash_recover);
  EXPECT_EQ(a.family_runs[cr], 2u);
  EXPECT_EQ(a.adoptions, 7u);
  EXPECT_FALSE(a.to_string().empty());
}

}  // namespace
}  // namespace remus::sim

namespace remus::core {
namespace {

scenario_spec migration_heavy_spec() {
  scenario_spec spec;
  spec.plan.shards = 1;
  spec.plan.n = 3;
  sim::scenario_event mig;
  mig.at = 1'000'000;
  mig.kind = sim::scenario_kind::begin_migration;
  mig.family = sim::fault_family::migration;
  mig.unit = 0;
  mig.target = no_process;
  spec.plan.events.push_back(mig);
  spec.key_count = 8;
  spec.ops = 60;
  spec.mean_gap = 100'000;
  return spec;
}

// ---------- Runner determinism ----------

TEST(ScenarioRunner, FixedSpecYieldsIdenticalScheduleAndHistory) {
  rng r(31337);
  sim::adversarial_config cfg;
  cfg.units = 5;
  cfg.horizon = 4'000'000;
  cfg.min_down = 100'000;
  cfg.max_down = 1'000'000;
  scenario_spec spec;
  spec.plan = sim::make_adversarial_plan(cfg, r);
  spec.ops = 50;
  spec.workload_seed = 9;
  spec.cluster_seed = 10;

  const scenario_outcome a = run_scenario(spec);
  const scenario_outcome b = run_scenario(spec);
  ASSERT_TRUE(a.ok()) << a.failure;
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    const history::event& x = a.history[i];
    const history::event& y = b.history[i];
    ASSERT_EQ(x.kind, y.kind) << "event " << i;
    ASSERT_EQ(x.p.index, y.p.index) << "event " << i;
    ASSERT_EQ(x.at, y.at) << "event " << i;
    ASSERT_EQ(x.reg, y.reg) << "event " << i;
    ASSERT_EQ(x.v.data, y.v.data) << "event " << i;
  }
  ASSERT_EQ(a.migration_log.size(), b.migration_log.size());
  for (std::size_t i = 0; i < a.migration_log.size(); ++i) {
    ASSERT_EQ(a.migration_log[i].reg, b.migration_log[i].reg) << "entry " << i;
    ASSERT_EQ(a.migration_log[i].at, b.migration_log[i].at) << "entry " << i;
    ASSERT_EQ(a.migration_log[i].why, b.migration_log[i].why) << "entry " << i;
  }
}

// ---------- Clean fuzzing smoke ----------

TEST(ScenarioFuzz, ThousandCoverageGuidedScenariosStayAtomic) {
  rng campaign_rng(2026);
  sim::scenario_coverage campaign;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    rng r = campaign_rng.fork();
    sim::adversarial_config cfg;
    cfg.shards = 1 + static_cast<std::uint32_t>(r.next_below(2));
    cfg.n = (i % 7 == 6) ? 5 : 3;
    cfg.units = 3 + static_cast<std::uint32_t>(r.next_below(4));
    cfg.horizon = 6'000'000;
    cfg.min_down = 200'000;
    cfg.max_down = 2'000'000;
    cfg.recovery_skew = 400'000;
    cfg.gray_max_delay = 1'000'000;
    if (cfg.shards == 1) {
      cfg.weights[static_cast<std::size_t>(sim::fault_family::migration)] = 1.5;
    }
    scenario_spec spec;
    spec.plan = sim::make_adversarial_plan(cfg, r, &campaign);
    spec.key_count = 4 + static_cast<std::uint32_t>(r.next_below(8));
    spec.ops = 40 + static_cast<std::uint32_t>(r.next_below(40));
    spec.zipf_theta = r.chance(0.3) ? 0.99 : 0.0;
    spec.batch_size = r.chance(0.25) ? 3 : 1;
    spec.workload_seed = r.next_u64();
    spec.cluster_seed = r.next_u64();
    spec.policy = r.chance(0.5) ? 'p' : 't';

    const scenario_outcome out = run_scenario(spec);
    campaign.merge(out.coverage);
    ASSERT_TRUE(out.ok()) << "run " << i << ": " << out.failure
                          << "\nREPRO " << spec.encode();
  }
  // The campaign exercised every fault family, including at least one run
  // with an open migration window...
  for (std::size_t f = 0; f < sim::fault_family_count; ++f) {
    EXPECT_GT(campaign.family_runs[f], 0u)
        << sim::to_string(static_cast<sim::fault_family>(f));
  }
  // ...and hit the protocol branches the coverage accounting watches.
  EXPECT_GT(campaign.adoptions, 0u);
  EXPECT_GT(campaign.stale_updates, 0u);
  EXPECT_GT(campaign.retransmits, 0u);
  EXPECT_GT(campaign.recovery_finish_writes, 0u);
  EXPECT_GT(campaign.handoff_drains + campaign.handoff_writes, 0u);
}

// ---------- Catching a planted bug ----------

TEST(ScenarioFuzz, PlantedHandoffBugIsCaughtAndMinimized) {
  // Plant a real migration bug (handoff drops the register's state) and
  // check the engine end-to-end: the checker flags the run, minimization
  // shrinks it to a handful of plan events, and the repro line still fails
  // after a codec round-trip.
  scenario_spec spec = migration_heavy_spec();
  spec.fault = shard_router_config::injected_fault::drop_handoff_state;
  scenario_outcome out = run_scenario(spec);
  std::uint64_t salt = 1;
  while (out.ok() && salt <= 20) {
    spec.workload_seed = salt;
    spec.cluster_seed = salt * 31;
    out = run_scenario(spec);
    ++salt;
  }
  ASSERT_FALSE(out.ok()) << "planted bug never surfaced";
  EXPECT_FALSE(out.failure.empty());

  const scenario_spec min = minimize_scenario(spec);
  EXPECT_LE(min.plan.events.size(), 10u);
  EXPECT_LE(min.key_count, spec.key_count);
  EXPECT_LE(min.ops, spec.ops);
  EXPECT_FALSE(run_scenario(min).ok());

  // The printed repro reproduces the identical failing run.
  const scenario_spec back = scenario_spec::decode(min.encode());
  ASSERT_EQ(back, min);
  const scenario_outcome again = run_scenario(back);
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.failure, run_scenario(min).failure);
}

// ---------- Regression corpus ----------

TEST(ScenarioFuzz, RegressionCorpusReplaysClean) {
  // Every repro line under tests/corpus/ re-runs under the full checkers —
  // the corpus pins schedules that once mattered (corrupt-tail crashes,
  // fault-family overlaps, migration-window corruption) so they can never
  // silently regress. The fuzz_scenarios --corpus flag replays the same
  // files in CI with the campaign digest.
  const std::filesystem::path dir =
      std::filesystem::path(REMUS_SOURCE_DIR) / "tests" / "corpus";
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::vector<std::filesystem::path> files;
  for (const auto& ent : std::filesystem::directory_iterator(dir)) {
    if (ent.path().extension() == ".repro") files.push_back(ent.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_GE(files.size(), 3u);
  std::size_t replayed = 0;
  std::size_t corrupt_units = 0;
  std::size_t lease_units = 0;
  for (const std::filesystem::path& file : files) {
    std::ifstream in(file);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      const scenario_spec spec = scenario_spec::decode(line);
      for (const sim::scenario_event& e : spec.plan.events) {
        corrupt_units += e.kind == sim::scenario_kind::corrupt_crash ? 1 : 0;
        lease_units += e.family == sim::fault_family::lease ? 1 : 0;
      }
      const scenario_outcome out = run_scenario(spec);
      EXPECT_TRUE(out.ok()) << file.filename() << ": " << out.failure
                            << "\nREPRO " << line;
      ++replayed;
    }
  }
  EXPECT_GE(replayed, 5u);
  EXPECT_GT(corrupt_units, 0u) << "corpus lost its corrupt_tail coverage";
  EXPECT_GT(lease_units, 0u) << "corpus lost its lease-revocation coverage";
}

TEST(ScenarioFuzz, CleanMigrationWindowUnderSameScheduleIsAtomic) {
  // Control for the planted-bug test: the same schedule without the
  // injected fault passes.
  const scenario_spec spec = migration_heavy_spec();
  const scenario_outcome out = run_scenario(spec);
  EXPECT_TRUE(out.ok()) << out.failure;
  EXPECT_GT(out.completed_ops, 0u);
}

}  // namespace
}  // namespace remus::core
