// The paper's lower bounds as executable demonstrations.
//
// Theorem 1: a persistent-atomic write needs 2 causal logs. We run the
// persistent emulation *without* its writer pre-log (and hence without
// finish-on-recovery) through an adversarial schedule shaped like run rho1
// and watch the checker reject the history; the full algorithm sails through
// the same schedule.
//
// Theorem 2: reads must reach stable storage. We run reads whose write-back
// is volatile-only through a rho4-shaped schedule (read, reader+servers
// crash, read again) and watch both criteria reject; the real algorithm's
// logged write-back survives.
//
// We also demonstrate the corner case that motivates carrying the recovery
// counter in the transient emulation's tags (see common/timestamp.h): the
// literal Figure 5 pseudocode can emit the same [sn, i] for two different
// values when the post-recovery query majority's maximum regresses
// (confused-values); reads then flip-flop and transient atomicity breaks.
#include <gtest/gtest.h>

#include <functional>

#include "core/cluster.h"
#include "history/atomicity.h"
#include "proto/policy.h"

namespace remus::core {
namespace {

using proto::msg_kind;
using proto::protocol_policy;
using sim::filter_verdict;
using sim::packet_info;

constexpr auto kW = static_cast<std::uint8_t>(msg_kind::write);
constexpr auto kSnAck = static_cast<std::uint8_t>(msg_kind::sn_ack);
constexpr auto kReadAck = static_cast<std::uint8_t>(msg_kind::read_ack);

cluster_config scripted_config(protocol_policy pol) {
  cluster_config cfg;
  cfg.n = 5;
  cfg.policy = std::move(pol);
  // Scripted phases assume no spontaneous retransmissions.
  cfg.policy.retransmit_delay = 10_s;
  cfg.seed = 5;
  return cfg;
}

bool in(process_id p, std::initializer_list<std::uint32_t> set) {
  for (const auto x : set) {
    if (p == process_id{x}) return true;
  }
  return false;
}

/// A read whose round-1 acks are ordered so that `first`'s answer arrives
/// before everyone else's: the reader's freshest-of-majority choice then
/// prefers `first` on tag ties.
void force_ack_order(cluster& c, std::uint32_t first) {
  c.network().set_filter([first](const packet_info& pi) {
    filter_verdict v;
    if (pi.kind == kReadAck) {
      v.deliver_at = pi.now + (pi.from == process_id{first} ? 50_us : 500_us);
    }
    return v;
  });
}

// ---------------------------------------------------------------------------
// Theorem 1 (persistent writes need the pre-log).
// ---------------------------------------------------------------------------

/// Runs the rho1-shaped schedule against `pol`; returns the recorded history.
/// Shape: W(1) completes; W(2) reaches only p3 and the writer crashes;
/// the writer recovers and W(3) runs against a query majority that excludes
/// p3; reads then probe p3's and the majority's view.
history::history_log run_rho1_schedule(protocol_policy pol) {
  cluster c(scripted_config(std::move(pol)));
  const process_id w{0};

  // Phase A: W(1) completes everywhere.
  c.write(w, value_of_u32(1));

  // Phase B: W(2) — round 2 reaches only p3; the writer crashes mid-write.
  c.network().set_filter([](const packet_info& pi) {
    filter_verdict v;
    if (pi.kind == kW && pi.from == process_id{0} && pi.to != process_id{3}) v.drop = true;
    return v;
  });
  c.submit_write(w, value_of_u32(2), c.now());
  c.submit_crash(w, c.now() + 2_ms);
  c.run_for(3_ms);
  c.network().clear_filter();

  // Phase C: the writer recovers. (The full algorithm finishes W(2) here —
  // the flawed one does nothing.)
  c.submit_recover(w, c.now());
  c.run_for(10_ms);

  // Phase D: W(3) — the sn-query majority excludes p3 (and p4, so the
  // crash-lost value at p3 stays invisible); round 2 reaches {p0, p1, p2}.
  c.network().set_filter([](const packet_info& pi) {
    filter_verdict v;
    if (pi.kind == kSnAck && in(pi.from, {3, 4})) v.drop = true;
    if (pi.kind == kW && pi.from == process_id{0} && in(pi.to, {3, 4})) v.drop = true;
    return v;
  });
  c.write(w, value_of_u32(3));
  c.network().clear_filter();
  c.run_for(1_ms);

  // Phase E: three reads by p1, steered to surface p3's view, then the
  // majority's, then p3's again.
  force_ack_order(c, 3);
  (void)c.read(process_id{1});
  force_ack_order(c, 2);
  (void)c.read(process_id{1});
  force_ack_order(c, 4);
  (void)c.read(process_id{1});
  c.network().clear_filter();
  c.run_until_idle();
  return c.events();
}

TEST(Theorem1, NoPrelogViolatesPersistentAtomicity) {
  const auto h = run_rho1_schedule(proto::persistent_no_prelog_policy());
  const auto persistent = history::check_persistent_atomicity(h);
  EXPECT_FALSE(persistent.ok);
  EXPECT_FALSE(persistent.usage_error)
      << "removing the writer pre-log should break persistent atomicity\n"
      << history::to_string(h);
}

TEST(Theorem1, NoPrelogEvenBreaksTransientAtomicityViaConfusedValues) {
  // Without the pre-log *and* without a recovery counter, two incarnations
  // reuse the same [sn, i]: servers disagree forever and reads flip-flop.
  const auto h = run_rho1_schedule(proto::persistent_no_prelog_policy());
  const auto transient = history::check_transient_atomicity(h);
  EXPECT_FALSE(transient.ok) << history::to_string(h);
  EXPECT_FALSE(transient.usage_error);
}

TEST(Theorem1, FullPersistentAlgorithmSurvivesTheSameSchedule) {
  const auto h = run_rho1_schedule(proto::persistent_policy());
  const auto persistent = history::check_persistent_atomicity(h);
  EXPECT_TRUE(persistent.ok) << persistent.explanation << "\n" << history::to_string(h);
}

TEST(Theorem1, TransientAlgorithmIsTransientButNotNecessarilyPersistent) {
  // The transient emulation is correct for its own criterion on this
  // schedule. (Persistent atomicity may or may not hold here — the paper
  // only guarantees the weaker criterion.)
  const auto h = run_rho1_schedule(proto::transient_policy());
  const auto transient = history::check_transient_atomicity(h);
  EXPECT_TRUE(transient.ok) << transient.explanation << "\n" << history::to_string(h);
}

// ---------------------------------------------------------------------------
// Figure 5 taken literally: confused values across incarnations.
// ---------------------------------------------------------------------------

/// Schedule forcing the sn-query maximum to regress across the writer's
/// crash: p3's stalled write plants sn=2 at p2 only; p0's W sees it (sn=3,
/// reaches only p4), crashes, recovers, and writes again against a majority
/// whose max is 1 — the literal algorithm re-issues sn = 1 + rec + 1 = 3.
history::history_log run_sn_regression_schedule(protocol_policy pol) {
  cluster c(scripted_config(std::move(pol)));

  // Phase A: ground state sn=1 everywhere.
  c.write(process_id{0}, value_of_u32(1));

  // Phase B: p3 starts W(2); its round-2 W reaches only p2; p3 crashes and
  // recovers (it must serve later phases, but its own write is gone).
  c.network().set_filter([](const packet_info& pi) {
    filter_verdict v;
    if (pi.kind == kW && pi.from == process_id{3} && pi.to != process_id{2}) v.drop = true;
    return v;
  });
  c.submit_write(process_id{3}, value_of_u32(2), c.now());
  c.submit_crash(process_id{3}, c.now() + 2_ms);
  c.run_for(3_ms);
  c.network().clear_filter();
  c.submit_recover(process_id{3}, c.now());
  c.run_for(10_ms);

  // Phase C: p0 writes 3; the query majority includes p2 (max=2 -> sn=3);
  // round 2 reaches only p4; p0 crashes and recovers.
  c.network().set_filter([](const packet_info& pi) {
    filter_verdict v;
    if (pi.kind == kSnAck && in(pi.from, {1, 4})) v.drop = true;
    if (pi.kind == kW && pi.from == process_id{0} && pi.to != process_id{4}) v.drop = true;
    return v;
  });
  c.submit_write(process_id{0}, value_of_u32(3), c.now());
  c.submit_crash(process_id{0}, c.now() + 2_ms);
  c.run_for(3_ms);
  c.network().clear_filter();
  c.submit_recover(process_id{0}, c.now());
  c.run_for(10_ms);

  // Phase D: p0 writes 4; the query majority {p0, p1, p3} has max sn=1, so
  // the literal transient algorithm picks sn = 1 + rec(1) + 1 = 3 — the same
  // sn it used for value 3. Round 2 reaches {p0, p1, p3}.
  c.network().set_filter([](const packet_info& pi) {
    filter_verdict v;
    if (pi.kind == kSnAck && in(pi.from, {2, 4})) v.drop = true;
    if (pi.kind == kW && pi.from == process_id{0} && in(pi.to, {2, 4})) v.drop = true;
    return v;
  });
  c.write(process_id{0}, value_of_u32(4));
  c.network().clear_filter();
  c.run_for(1_ms);

  // Phase E: reads by p1 probing p4's copy, then p1's own, then p4's again.
  force_ack_order(c, 4);
  (void)c.read(process_id{1});
  force_ack_order(c, 1);
  (void)c.read(process_id{1});
  force_ack_order(c, 4);
  (void)c.read(process_id{1});
  c.network().clear_filter();
  c.run_until_idle();
  return c.events();
}

TEST(TransientLiteral, SnRegressionConfusesValuesAndBreaksTransientAtomicity) {
  const auto h = run_sn_regression_schedule(proto::transient_literal_policy());
  const auto verdict = history::check_transient_atomicity(h);
  EXPECT_FALSE(verdict.ok)
      << "the literal Fig. 5 should emit colliding [sn, i] tags here\n"
      << history::to_string(h);
}

TEST(TransientLiteral, RecInTagRestoresTransientAtomicity) {
  const auto h = run_sn_regression_schedule(proto::transient_policy());
  const auto verdict = history::check_transient_atomicity(h);
  EXPECT_TRUE(verdict.ok) << verdict.explanation << "\n" << history::to_string(h);
}

TEST(TransientLiteral, PersistentAlgorithmUnaffectedBySnRegression) {
  // The pre-log + finish-on-recovery make the second incarnation's query see
  // the first incarnation's sn, so no collision is possible.
  const auto h = run_sn_regression_schedule(proto::persistent_policy());
  const auto verdict = history::check_persistent_atomicity(h);
  EXPECT_TRUE(verdict.ok) << verdict.explanation << "\n" << history::to_string(h);
}

// ---------------------------------------------------------------------------
// Theorem 2 (reads must reach stable storage).
// ---------------------------------------------------------------------------

/// rho4-shaped schedule: W(2) reaches only p3 and its writer goes silent;
/// p1 reads (sees 2 via p3), then p1/p2/p4 crash and recover (volatile state
/// gone); p1 reads again through a majority that excludes p3.
history::history_log run_rho4_schedule(protocol_policy pol) {
  cluster c(scripted_config(std::move(pol)));

  c.write(process_id{0}, value_of_u32(1));

  // W(2) lands only at p3; the writer crashes and stays down (it is simply
  // "not correct"; a majority of others remains).
  c.network().set_filter([](const packet_info& pi) {
    filter_verdict v;
    if (pi.kind == kW && pi.from == process_id{0} && pi.to != process_id{3}) v.drop = true;
    return v;
  });
  c.submit_write(process_id{0}, value_of_u32(2), c.now());
  c.submit_crash(process_id{0}, c.now() + 2_ms);
  c.run_for(3_ms);
  c.network().clear_filter();

  // R1 by p1: p3 answers first -> returns 2; the write-back propagates 2
  // (durably for the real algorithm, volatile-only for the flawed one).
  force_ack_order(c, 3);
  (void)c.read(process_id{1});
  c.network().clear_filter();

  // p1, p2 and p4 crash and recover: volatile memory is wiped.
  for (const std::uint32_t p : {1u, 2u, 4u}) c.submit_crash(process_id{p}, c.now());
  for (const std::uint32_t p : {1u, 2u, 4u}) {
    c.submit_recover(process_id{p}, c.now() + 5_ms);
  }
  c.run_for(30_ms);

  // R2 by p1 through {p1, p2, p4} (p3's answer suppressed).
  c.network().set_filter([](const packet_info& pi) {
    filter_verdict v;
    if (pi.kind == kReadAck && pi.from == process_id{3}) v.drop = true;
    return v;
  });
  (void)c.read(process_id{1});
  c.network().clear_filter();
  c.run_until_idle();
  return c.events();
}

TEST(Theorem2, VolatileWritebackViolatesBothCriteria) {
  const auto h = run_rho4_schedule(proto::read_volatile_writeback_policy());
  EXPECT_FALSE(history::check_transient_atomicity(h).ok) << history::to_string(h);
  EXPECT_FALSE(history::check_persistent_atomicity(h).ok);
}

TEST(Theorem2, LoggedWritebackSurvivesTheSameSchedule) {
  const auto h = run_rho4_schedule(proto::persistent_policy());
  const auto verdict = history::check_persistent_atomicity(h);
  EXPECT_TRUE(verdict.ok) << verdict.explanation << "\n" << history::to_string(h);
}

TEST(Theorem2, TransientAlgorithmAlsoSurvives) {
  const auto h = run_rho4_schedule(proto::transient_policy());
  const auto verdict = history::check_transient_atomicity(h);
  EXPECT_TRUE(verdict.ok) << verdict.explanation << "\n" << history::to_string(h);
}

// ---------------------------------------------------------------------------
// No write-back at all: broken even without any crash.
// ---------------------------------------------------------------------------

history::history_log run_new_old_inversion(protocol_policy pol) {
  cluster c(scripted_config(std::move(pol)));
  c.write(process_id{0}, value_of_u32(1));

  // W(2) reaches only p3 and stalls (writer crashes silently afterwards).
  c.network().set_filter([](const packet_info& pi) {
    filter_verdict v;
    if (pi.kind == kW && pi.from == process_id{0} && pi.to != process_id{3}) v.drop = true;
    return v;
  });
  c.submit_write(process_id{0}, value_of_u32(2), c.now());
  c.submit_crash(process_id{0}, c.now() + 2_ms);
  c.run_for(3_ms);
  c.network().clear_filter();

  // R1 by p1 sees p3 first -> 2. R2 by p2 never hears p3 -> ?
  force_ack_order(c, 3);
  (void)c.read(process_id{1});
  c.network().set_filter([](const packet_info& pi) {
    filter_verdict v;
    if (pi.kind == kReadAck && pi.from == process_id{3}) v.drop = true;
    return v;
  });
  (void)c.read(process_id{2});
  c.network().clear_filter();
  c.run_until_idle();
  return c.events();
}

TEST(NoWriteback, NewOldInversionEvenWithoutCrashes) {
  const auto h = run_new_old_inversion(proto::read_no_writeback_policy());
  EXPECT_FALSE(history::check_persistent_atomicity(h).ok) << history::to_string(h);
}

TEST(NoWriteback, WritebackPreventsTheInversion) {
  const auto h = run_new_old_inversion(proto::persistent_policy());
  const auto verdict = history::check_persistent_atomicity(h);
  EXPECT_TRUE(verdict.ok) << verdict.explanation << "\n" << history::to_string(h);
}

}  // namespace
}  // namespace remus::core
