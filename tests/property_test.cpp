// Property-based tests.
//
// 1. Randomized end-to-end runs: random workloads + random crash/recovery
//    plans + lossy networks, over every algorithm; every recorded history
//    must satisfy the algorithm's consistency criterion, and per-operation
//    causal-log counts must respect the paper's tight bounds.
// 2. Checker cross-validation: random small histories (valid and invalid
//    alike) where the polynomial constraint-graph checker must agree with
//    the exhaustive brute-force checker.
#include <gtest/gtest.h>

#include <set>

#include "core/cluster.h"
#include "history/atomicity.h"
#include "history/brute_force.h"
#include "history/keyed.h"
#include "history/wellformed.h"
#include "proto/policy.h"
#include "sim/kv_workload.h"

namespace remus::core {
namespace {

struct run_params {
  const char* policy_name;
  std::uint64_t seed;
};

void PrintTo(const run_params& p, std::ostream* os) {
  *os << p.policy_name << "/seed" << p.seed;
}

proto::protocol_policy policy_by_name(const std::string& name) {
  if (name == "crash-stop") return proto::crash_stop_policy();
  if (name == "persistent") return proto::persistent_policy();
  if (name == "transient") return proto::transient_policy();
  throw std::runtime_error("unknown policy " + name);
}

class RandomRuns : public ::testing::TestWithParam<run_params> {};

TEST_P(RandomRuns, HistorySatisfiesCriterionUnderFaultsAndLoss) {
  const auto [policy_name, seed] = GetParam();
  rng r(seed);

  cluster_config cfg;
  cfg.n = 3 + 2 * static_cast<std::uint32_t>(r.next_below(2));  // 3 or 5
  cfg.policy = policy_by_name(policy_name);
  cfg.policy.retransmit_delay = 5_ms;
  cfg.net.drop_probability = r.chance(0.5) ? 0.15 : 0.0;
  cfg.net.duplicate_probability = 0.05;
  cfg.seed = seed;
  cluster c(cfg);

  const bool crash_recovery = !cfg.policy.crash_stop;
  const time_ns horizon = 150_ms;

  // Random workload: ~30 ops at random times from random processes.
  std::uint32_t next_value = 1;
  std::vector<cluster::op_handle> handles;
  for (int i = 0; i < 30; ++i) {
    const process_id p{static_cast<std::uint32_t>(r.next_below(cfg.n))};
    const time_ns at = r.next_in(0, horizon);
    if (r.chance(0.5)) {
      handles.push_back(c.submit_write(p, value_of_u32(next_value++), at));
    } else {
      handles.push_back(c.submit_read(p, at));
    }
  }

  // Random fault plan.
  sim::random_plan_config fp;
  fp.n = cfg.n;
  fp.crashes = crash_recovery ? 5 : 1;
  fp.horizon = horizon;
  fp.min_down = 1_ms;
  fp.max_down = 30_ms;
  fp.allow_majority_crash = crash_recovery;
  if (!crash_recovery) {
    // Crash-stop: only crashes (no recovery), at most a minority.
    const process_id victim{cfg.n - 1};
    c.submit_crash(victim, r.next_in(0, horizon));
  } else {
    const auto plan = sim::make_random_plan(fp, r);
    ASSERT_TRUE(plan.well_formed(cfg.n));
    c.apply(plan);
  }

  ASSERT_TRUE(c.run_until_idle(20'000'000)) << "run did not quiesce";

  const auto h = c.events();
  ASSERT_TRUE(history::check_well_formed(h).ok);

  const auto verdict = cfg.policy.recovery_counter
                           ? history::check_transient_atomicity(h)
                           : history::check_persistent_atomicity(h);
  EXPECT_TRUE(verdict.ok) << verdict.explanation << "\n" << history::to_string(h);

  // The paper's Lemma 1/2/3 conditions, checked on the applied tags.
  const auto order = history::check_tag_order(c.tagged_operations());
  EXPECT_TRUE(order.ok) << order.explanation;

  // Per-op invariants: the paper's log bounds are never exceeded, and both
  // emulations keep the baseline's 2 round-trips.
  for (const auto hnd : handles) {
    const auto& res = c.result(hnd);
    if (!res.completed) continue;
    if (cfg.policy.crash_stop) {
      EXPECT_EQ(res.sample.causal_logs, 0u);
    } else if (res.is_read) {
      EXPECT_LE(res.sample.causal_logs, 1u);
    } else if (cfg.policy.writer_prelog) {
      EXPECT_LE(res.sample.causal_logs, 2u);
    } else {
      EXPECT_LE(res.sample.causal_logs, 1u);
    }
    EXPECT_EQ(res.sample.round_trips, 2u);
  }
}

std::vector<run_params> make_grid() {
  std::vector<run_params> grid;
  for (const char* pol : {"crash-stop", "persistent", "transient"}) {
    for (std::uint64_t seed = 1; seed <= 12; ++seed) grid.push_back({pol, seed});
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Grid, RandomRuns, ::testing::ValuesIn(make_grid()),
                         [](const auto& info) {
                           std::string name = info.param.policy_name;
                           for (auto& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name + "_seed" + std::to_string(info.param.seed);
                         });

// ---------------------------------------------------------------------------
// Blackout sweeps: everyone crashes at once, at a random moment.
// ---------------------------------------------------------------------------

class BlackoutRuns : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlackoutRuns, ValueAndAtomicitySurviveTotalFailure) {
  const std::uint64_t seed = GetParam();
  rng r(seed);
  for (auto pol : {proto::persistent_policy(), proto::transient_policy()}) {
    cluster_config cfg;
    cfg.n = 5;
    cfg.policy = pol;
    cfg.policy.retransmit_delay = 5_ms;
    cfg.seed = seed;
    cluster c(cfg);

    std::uint32_t v = 1;
    for (int i = 0; i < 6; ++i) {
      c.submit_write(process_id{static_cast<std::uint32_t>(r.next_below(5))},
                     value_of_u32(v++), r.next_in(0, 40_ms));
    }
    c.apply(sim::make_blackout_plan(5, r.next_in(5_ms, 60_ms), 10_ms));
    ASSERT_TRUE(c.run_until_idle(20'000'000));

    // The system must still be usable and consistent afterwards.
    c.write(process_id{0}, value_of_u32(9999));
    EXPECT_EQ(c.read(process_id{3}), value_of_u32(9999));

    const auto h = c.events();
    const auto verdict = pol.recovery_counter ? history::check_transient_atomicity(h)
                                              : history::check_persistent_atomicity(h);
    EXPECT_TRUE(verdict.ok) << pol.name << " seed " << seed << "\n"
                            << verdict.explanation << "\n" << history::to_string(h);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlackoutRuns, ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Checker cross-validation on abstract random histories.
// ---------------------------------------------------------------------------

history::history_log random_history(rng& r, std::uint32_t procs, int steps) {
  using history::event;
  using history::event_kind;
  history::history_log h;
  struct pstate {
    bool up = true;
    bool busy = false;
    bool busy_read = false;
  };
  std::vector<pstate> st(procs);
  std::uint32_t next_write = 1;
  std::vector<std::uint32_t> written;  // values reads may return
  time_ns t = 0;

  for (int i = 0; i < steps; ++i) {
    const std::uint32_t p = static_cast<std::uint32_t>(r.next_below(procs));
    auto& s = st[p];
    t += 1000;
    const auto roll = r.next_below(10);
    if (!s.up) {
      if (roll < 6) {
        h.push_back(event{event_kind::recover, process_id{p}, {}, t});
        s.up = true;
        s.busy = false;
      }
      continue;
    }
    if (s.busy) {
      if (roll < 2) {
        h.push_back(event{event_kind::crash, process_id{p}, {}, t});
        s.up = false;
      } else if (s.busy_read) {
        // Reads return a random written value (often wrong: that's the point).
        value v = initial_value();
        if (!written.empty() && r.chance(0.8)) {
          v = value_of_u32(written[r.next_below(written.size())]);
        }
        h.push_back(event{event_kind::reply_read, process_id{p}, v, t});
        s.busy = false;
      } else {
        h.push_back(event{event_kind::reply_write, process_id{p}, {}, t});
        s.busy = false;
      }
      continue;
    }
    if (roll < 2) {
      h.push_back(event{event_kind::crash, process_id{p}, {}, t});
      s.up = false;
    } else if (roll < 6) {
      const std::uint32_t v = next_write++;
      written.push_back(v);
      h.push_back(event{event_kind::invoke_write, process_id{p}, value_of_u32(v), t});
      s.busy = true;
      s.busy_read = false;
    } else {
      h.push_back(event{event_kind::invoke_read, process_id{p}, {}, t});
      s.busy = true;
      s.busy_read = true;
    }
  }
  return h;
}

TEST(CheckerCrossValidation, FastCheckerAgreesWithBruteForce) {
  rng r(2024);
  int accepted = 0;
  int rejected = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const auto h = random_history(r, 1 + static_cast<std::uint32_t>(r.next_below(3)),
                                  8 + static_cast<int>(r.next_below(8)));
    if (!history::check_well_formed(h).ok) continue;
    for (const auto c : {history::criterion::persistent, history::criterion::transient}) {
      const auto fast = history::check_atomicity(h, c);
      const auto slow = history::check_atomicity_brute_force(h, c);
      if (fast.usage_error || slow.usage_error) continue;
      EXPECT_EQ(fast.ok, slow.ok)
          << "criterion=" << (c == history::criterion::persistent ? "persistent" : "transient")
          << "\nfast: " << fast.explanation << "\nslow: " << slow.explanation << "\n"
          << history::to_string(h);
      (fast.ok ? accepted : rejected) += 1;
    }
  }
  // The generator must exercise both outcomes heavily.
  EXPECT_GT(accepted, 50);
  EXPECT_GT(rejected, 50);
}

// Keyed variant of the generator: every operation targets a random register
// of a small set, and reads return a random value *written on that
// register* (usually — sometimes any written value, so cross-register
// confusion and plain non-atomicity both appear).
history::history_log random_keyed_history(rng& r, std::uint32_t procs,
                                          std::uint32_t keys, int steps) {
  using history::event;
  using history::event_kind;
  history::history_log h;
  struct pstate {
    bool up = true;
    bool busy = false;
    bool busy_read = false;
    register_id reg = default_register;
  };
  std::vector<pstate> st(procs);
  std::uint32_t next_write = 1;
  struct written_value {
    register_id reg;
    std::uint32_t v;
  };
  std::vector<written_value> written;
  time_ns t = 0;

  for (int i = 0; i < steps; ++i) {
    const std::uint32_t p = static_cast<std::uint32_t>(r.next_below(procs));
    auto& s = st[p];
    t += 1000;
    const auto roll = r.next_below(10);
    if (!s.up) {
      if (roll < 6) {
        h.push_back(event{event_kind::recover, process_id{p}, {}, t});
        s.up = true;
        s.busy = false;
      }
      continue;
    }
    if (s.busy) {
      if (roll < 2) {
        h.push_back(event{event_kind::crash, process_id{p}, {}, t});
        s.up = false;
      } else if (s.busy_read) {
        value v = initial_value();
        if (!written.empty() && r.chance(0.85)) {
          // Mostly same-register values; occasionally any register's value
          // (a guaranteed violation the per-key checker must catch).
          std::vector<std::uint32_t> candidates;
          if (r.chance(0.9)) {
            for (const auto& w : written) {
              if (w.reg == s.reg) candidates.push_back(w.v);
            }
          }
          if (candidates.empty()) {
            candidates.push_back(written[r.next_below(written.size())].v);
          }
          v = value_of_u32(candidates[r.next_below(candidates.size())]);
        }
        h.push_back(event{event_kind::reply_read, process_id{p}, v, t, s.reg});
        s.busy = false;
      } else {
        h.push_back(event{event_kind::reply_write, process_id{p}, {}, t, s.reg});
        s.busy = false;
      }
      continue;
    }
    const auto reg = static_cast<register_id>(r.next_below(keys));
    if (roll < 2) {
      h.push_back(event{event_kind::crash, process_id{p}, {}, t});
      s.up = false;
    } else if (roll < 6) {
      const std::uint32_t v = next_write++;
      written.push_back({reg, v});
      h.push_back(event{event_kind::invoke_write, process_id{p}, value_of_u32(v), t, reg});
      s.busy = true;
      s.busy_read = false;
      s.reg = reg;
    } else {
      h.push_back(event{event_kind::invoke_read, process_id{p}, {}, t, reg});
      s.busy = true;
      s.busy_read = true;
      s.reg = reg;
    }
  }
  return h;
}

TEST(KeyedCheckerCrossValidation, PerKeyCheckerAgreesWithPerKeyBruteForce) {
  rng r(31337);
  int accepted = 0;
  int rejected = 0;
  int multi_key = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const auto h = random_keyed_history(
        r, 1 + static_cast<std::uint32_t>(r.next_below(3)),
        1 + static_cast<std::uint32_t>(r.next_below(3)),
        10 + static_cast<int>(r.next_below(10)));
    if (!history::check_well_formed(h).ok) continue;
    if (history::keys_of(h).size() > 1) ++multi_key;
    for (const auto c : {history::criterion::persistent, history::criterion::transient}) {
      const auto fast = history::check_atomicity_per_key(h, c);
      const auto slow = history::check_atomicity_per_key_brute_force(h, c);
      if (fast.usage_error || slow.usage_error) continue;
      EXPECT_EQ(fast.ok, slow.ok)
          << "criterion=" << (c == history::criterion::persistent ? "persistent" : "transient")
          << "\nfast: " << fast.explanation << "\nslow: " << slow.explanation << "\n"
          << history::to_string(h);
      if (!fast.ok && !slow.ok) {
        // Both reject: they must blame the same register (the first failing
        // one in ascending order, since both scan keys identically).
        EXPECT_EQ(fast.failing_key, slow.failing_key) << history::to_string(h);
      }
      (fast.ok ? accepted : rejected) += 1;
    }
  }
  // The generator must exercise both outcomes and real multi-key histories.
  EXPECT_GT(accepted, 50);
  EXPECT_GT(rejected, 50);
  EXPECT_GT(multi_key, 100);
}

TEST(KeyedCheckerCrossValidation, ProjectionEqualsWholeOnSingleKeyHistories) {
  // On histories that only ever touch one register, the per-key composite
  // verdict must coincide with the plain checker's.
  rng r(555);
  int checked = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto h = random_keyed_history(
        r, 1 + static_cast<std::uint32_t>(r.next_below(3)), 1,
        8 + static_cast<int>(r.next_below(8)));
    if (!history::check_well_formed(h).ok) continue;
    for (const auto c : {history::criterion::persistent, history::criterion::transient}) {
      const auto whole = history::check_atomicity(h, c);
      const auto keyed = history::check_atomicity_per_key(h, c);
      if (whole.usage_error) continue;
      EXPECT_EQ(whole.ok, keyed.ok) << history::to_string(h);
      ++checked;
    }
  }
  EXPECT_GT(checked, 100);
}

// End-to-end keyed property runs: random keyed workloads (with batches)
// under faults and loss; every register's projection must satisfy the
// policy's criterion.
class KeyedRandomRuns : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KeyedRandomRuns, KeyedWorkloadUnderFaultsStaysAtomicPerKey) {
  const std::uint64_t seed = GetParam();
  rng r(seed * 31 + 7);

  cluster_config cfg;
  cfg.n = 3 + 2 * static_cast<std::uint32_t>(r.next_below(2));  // 3 or 5
  cfg.policy = r.chance(0.5) ? proto::persistent_policy() : proto::transient_policy();
  cfg.policy.retransmit_delay = 5_ms;
  cfg.net.drop_probability = r.chance(0.5) ? 0.1 : 0.0;
  cfg.seed = seed;
  cluster c(cfg);

  sim::kv_workload_config wc;
  wc.n = cfg.n;
  wc.key_count = 1 + static_cast<std::uint32_t>(r.next_below(8));
  wc.zipf_theta = r.chance(0.5) ? 0.9 : 0.0;
  wc.read_fraction = 0.5;
  wc.batch_size = 1 + static_cast<std::uint32_t>(r.next_below(std::min(wc.key_count, 3u)));
  wc.ops = 40;
  wc.mean_gap = 1'500'000;
  wc.seed = seed;
  std::vector<proto::write_op> batch_ops;
  std::vector<register_id> batch_regs;
  for (const auto& op : sim::make_kv_workload(wc)) {
    if (op.entries.size() == 1) {
      if (op.is_read) {
        c.submit_read(op.p, op.entries[0].reg, op.at);
      } else {
        c.submit_write(op.p, op.entries[0].reg, op.entries[0].val, op.at);
      }
    } else if (op.is_read) {
      batch_regs.clear();
      for (const auto& e : op.entries) batch_regs.push_back(e.reg);
      c.submit_read_batch(op.p, batch_regs, op.at);
    } else {
      batch_ops.clear();
      for (const auto& e : op.entries) batch_ops.push_back({e.reg, e.val});
      c.submit_write_batch(op.p, batch_ops, op.at);
    }
  }

  sim::random_plan_config fp;
  fp.n = cfg.n;
  fp.crashes = 5;
  fp.horizon = 120_ms;
  fp.min_down = 1_ms;
  fp.max_down = 25_ms;
  fp.allow_majority_crash = true;
  const auto plan = sim::make_random_plan(fp, r);
  ASSERT_TRUE(plan.well_formed(cfg.n));
  c.apply(plan);

  ASSERT_TRUE(c.run_until_idle(20'000'000)) << "run did not quiesce";
  // Well-formedness is a per-register property here: a batched operation is
  // one overlapping operation per register at its process, so only the
  // projections alternate invoke/reply.
  const auto h = c.events();
  for (const register_id reg : history::keys_of(h)) {
    const auto wf = history::check_well_formed(history::project_key(h, reg));
    ASSERT_TRUE(wf.ok) << "register " << reg << ": " << wf.explanation;
  }
  const auto verdict = cfg.policy.recovery_counter
                           ? history::check_transient_atomicity_per_key(c.events())
                           : history::check_persistent_atomicity_per_key(c.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation << "\n"
                          << history::to_string(c.events());
  const auto order = history::check_tag_order_per_key(c.tagged_operations());
  EXPECT_TRUE(order.ok) << order.explanation;
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeyedRandomRuns, ::testing::Range<std::uint64_t>(1, 13));

TEST(CheckerCrossValidation, PersistentImpliesTransient) {
  rng r(777);
  int checked = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const auto h = random_history(r, 1 + static_cast<std::uint32_t>(r.next_below(3)),
                                  8 + static_cast<int>(r.next_below(10)));
    if (!history::check_well_formed(h).ok) continue;
    const auto pers = history::check_persistent_atomicity(h);
    if (pers.usage_error) continue;
    if (pers.ok) {
      const auto trans = history::check_transient_atomicity(h);
      EXPECT_TRUE(trans.ok) << "persistent atomicity must imply transient\n"
                            << history::to_string(h);
      ++checked;
    }
  }
  EXPECT_GT(checked, 30);
}

}  // namespace
}  // namespace remus::core
