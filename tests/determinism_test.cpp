// Determinism regression: a run is a pure function of (configuration, seed).
// Two clusters driven identically must produce bit-identical histories,
// tagged operations, metrics, and event counts — across fault-free and
// crash-heavy schedules. This pins the typed-event/calendar-queue rewrite to
// the exact semantics of the original closure-based simulator.
#include <gtest/gtest.h>

#include <vector>

#include "core/cluster.h"
#include "history/tag_order.h"
#include "proto/policy.h"
#include "sim/fault_plan.h"

namespace remus::core {
namespace {

cluster_config make_cfg(std::uint64_t seed) {
  cluster_config cfg;
  cfg.n = 5;
  cfg.policy = proto::persistent_policy();
  cfg.policy.retransmit_delay = 5_ms;
  cfg.seed = seed;
  cfg.net.jitter = 8_us;
  cfg.net.drop_probability = 0.05;
  cfg.net.duplicate_probability = 0.02;
  return cfg;
}

/// Mixed workload: writes and reads from every process, plus (optionally) a
/// randomized crash/recovery plan derived from the same seed.
void drive(cluster& c, std::uint64_t seed, bool faults) {
  rng r(seed ^ 0xfeedULL);
  std::uint32_t v = 1;
  for (time_ns t = 0; t < 200_ms; t += 2_ms) {
    for (std::uint32_t p = 0; p < c.size(); ++p) {
      const time_ns at = t + static_cast<time_ns>(r.next_below(1'500'000));
      if (r.chance(0.5)) {
        c.submit_write(process_id{p}, value_of_u32(v++), at);
      } else {
        c.submit_read(process_id{p}, at);
      }
    }
  }
  if (faults) {
    sim::random_plan_config pc;
    pc.n = c.size();
    pc.crashes = 6;
    pc.horizon = 150_ms;
    pc.min_down = 5_ms;
    pc.max_down = 30_ms;
    rng fr(seed ^ 0xfa117ULL);
    c.apply(sim::make_random_plan(pc, fr));
  }
  ASSERT_TRUE(c.run_until_idle());
}

void expect_identical(const cluster& a, const cluster& b) {
  EXPECT_EQ(a.events_executed(), b.events_executed());
  EXPECT_EQ(a.now(), b.now());
  EXPECT_EQ(a.recovery_stores(), b.recovery_stores());
  for (std::uint32_t p = 0; p < a.size(); ++p) {
    EXPECT_EQ(a.durable_stores(process_id{p}), b.durable_stores(process_id{p}));
  }

  const auto ta = a.tagged_operations();
  const auto tb = b.tagged_operations();
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].is_read, tb[i].is_read) << "op " << i;
    EXPECT_EQ(ta[i].p, tb[i].p) << "op " << i;
    EXPECT_EQ(ta[i].applied, tb[i].applied) << "op " << i;
    EXPECT_EQ(ta[i].val, tb[i].val) << "op " << i;
    EXPECT_EQ(ta[i].invoked_at, tb[i].invoked_at) << "op " << i;
    EXPECT_EQ(ta[i].replied_at, tb[i].replied_at) << "op " << i;
  }

  const auto ea = a.events();
  const auto eb = b.events();
  ASSERT_EQ(ea.size(), eb.size());
}

TEST(Determinism, SameSeedSameHistoryFaultFree) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    cluster a(make_cfg(seed));
    cluster b(make_cfg(seed));
    drive(a, seed, false);
    drive(b, seed, false);
    expect_identical(a, b);
    // The identical histories must also be correct ones.
    EXPECT_TRUE(history::check_tag_order(a.tagged_operations()).ok);
  }
}

TEST(Determinism, SameSeedSameHistoryCrashHeavy) {
  for (const std::uint64_t seed : {3ULL, 1234ULL}) {
    cluster a(make_cfg(seed));
    cluster b(make_cfg(seed));
    drive(a, seed, true);
    drive(b, seed, true);
    expect_identical(a, b);
    EXPECT_TRUE(history::check_tag_order(a.tagged_operations()).ok);
  }
}

TEST(Determinism, DifferentSeedsDiverge) {
  // Sanity that the equality above is meaningful: different seeds produce
  // different schedules (timings differ even when values happen to match).
  cluster a(make_cfg(1));
  cluster b(make_cfg(2));
  drive(a, 1, false);
  drive(b, 2, false);
  EXPECT_NE(a.now(), b.now());
}

/// Keyed workload (single-key keyed ops + multi-key batches) derived from
/// one seed: the namespace machinery must be as deterministic as the
/// single-register path.
void drive_keyed(cluster& c, std::uint64_t seed, bool faults) {
  rng r(seed ^ 0x6b657965ULL);
  std::uint32_t v = 1;
  for (time_ns t = 0; t < 120_ms; t += 3_ms) {
    for (std::uint32_t p = 0; p < c.size(); ++p) {
      const time_ns at = t + static_cast<time_ns>(r.next_below(1'500'000));
      const auto reg = static_cast<register_id>(r.next_below(5));
      switch (r.next_below(4)) {
        case 0:
          c.submit_write(process_id{p}, reg, value_of_u32(v++), at);
          break;
        case 1:
          c.submit_read(process_id{p}, reg, at);
          break;
        case 2: {
          std::vector<proto::write_op> ops;
          for (std::uint32_t k = 0; k < 3; ++k) {
            ops.push_back({reg + 10 * (k + 1), value_of_u32(v++)});
          }
          c.submit_write_batch(process_id{p}, ops, at);
          break;
        }
        default:
          c.submit_read_batch(process_id{p}, {reg + 10, reg + 20, reg + 30}, at);
          break;
      }
    }
  }
  if (faults) {
    sim::random_plan_config pc;
    pc.n = c.size();
    pc.crashes = 5;
    pc.horizon = 100_ms;
    pc.min_down = 5_ms;
    pc.max_down = 25_ms;
    rng fr(seed ^ 0xfa117ULL);
    c.apply(sim::make_random_plan(pc, fr));
  }
  ASSERT_TRUE(c.run_until_idle());
}

TEST(Determinism, KeyedWorkloadSameSeedSameHistory) {
  for (const std::uint64_t seed : {11ULL, 23ULL}) {
    for (const bool faults : {false, true}) {
      cluster a(make_cfg(seed));
      cluster b(make_cfg(seed));
      drive_keyed(a, seed, faults);
      drive_keyed(b, seed, faults);
      expect_identical(a, b);
      EXPECT_TRUE(history::check_tag_order_per_key(a.tagged_operations()).ok);
    }
  }
}

TEST(Determinism, KeyedApiOnDefaultRegisterMatchesLegacyApi) {
  // Acceptance pin: a key-count-1 namespace reproduces the single-register
  // behavior bit for bit — submitting through the keyed API with
  // default_register must be indistinguishable from the legacy unkeyed API.
  const std::uint64_t seed = 42;
  cluster legacy(make_cfg(seed));
  cluster keyed(make_cfg(seed));

  rng rl(seed ^ 0xabcULL);
  rng rk(seed ^ 0xabcULL);
  std::uint32_t vl = 1;
  std::uint32_t vk = 1;
  for (time_ns t = 0; t < 100_ms; t += 2_ms) {
    for (std::uint32_t p = 0; p < legacy.size(); ++p) {
      const time_ns al = t + static_cast<time_ns>(rl.next_below(1'500'000));
      const time_ns ak = t + static_cast<time_ns>(rk.next_below(1'500'000));
      ASSERT_EQ(al, ak);
      if (rl.chance(0.5)) {
        legacy.submit_write(process_id{p}, value_of_u32(vl++), al);
      } else {
        legacy.submit_read(process_id{p}, al);
      }
      if (rk.chance(0.5)) {
        keyed.submit_write(process_id{p}, default_register, value_of_u32(vk++), ak);
      } else {
        keyed.submit_read(process_id{p}, default_register, ak);
      }
    }
  }
  ASSERT_TRUE(legacy.run_until_idle());
  ASSERT_TRUE(keyed.run_until_idle());
  expect_identical(legacy, keyed);

  const auto he = legacy.events();
  const auto hk = keyed.events();
  ASSERT_EQ(he.size(), hk.size());
  for (std::size_t i = 0; i < he.size(); ++i) {
    EXPECT_EQ(he[i].kind, hk[i].kind) << i;
    EXPECT_EQ(he[i].p, hk[i].p) << i;
    EXPECT_EQ(he[i].v, hk[i].v) << i;
    EXPECT_EQ(he[i].at, hk[i].at) << i;
    EXPECT_EQ(he[i].reg, hk[i].reg) << i;
  }
}

TEST(Determinism, MetricsAreReproducible) {
  cluster a(make_cfg(9));
  cluster b(make_cfg(9));
  drive(a, 9, true);
  drive(b, 9, true);
  const auto ca = a.collect();
  const auto cb = b.collect();
  EXPECT_EQ(ca.write_latency_us().mean(), cb.write_latency_us().mean());
  EXPECT_EQ(ca.read_latency_us().mean(), cb.read_latency_us().mean());
  EXPECT_EQ(ca.write_messages().mean(), cb.write_messages().mean());
  EXPECT_EQ(ca.read_messages().mean(), cb.read_messages().mean());
  EXPECT_EQ(ca.write_total_logs().mean(), cb.write_total_logs().mean());
  EXPECT_EQ(ca.read_total_logs().mean(), cb.read_total_logs().mean());
}

}  // namespace
}  // namespace remus::core
