// Tests for the TCP loopback transport: real sockets, one listener per
// process, length-prefixed proto frames, datagram drop semantics over the
// stream — and a full 3-replica quorum emulation running over it in-process
// (runtime::node is transport-agnostic; here the kernel carries the wire).
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "history/atomicity.h"
#include "history/recorder.h"
#include "proto/policy.h"
#include "runtime/node.h"
#include "runtime/tcp_transport.h"
#include "storage/memory_store.h"

namespace remus::runtime {
namespace {

/// True when ports [base, base + count) are all bindable right now.
bool port_block_free(std::uint16_t base, std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(base + i));
    const bool ok = ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
    ::close(fd);
    if (!ok) return false;
  }
  return true;
}

/// A free block of `count` consecutive loopback ports (pid-salted start so
/// concurrent test binaries don't race for the same block).
std::uint16_t probe_base_port(std::uint32_t count) {
  std::uint16_t base =
      static_cast<std::uint16_t>(24000 + (static_cast<std::uint32_t>(::getpid()) * 37) % 18000);
  for (int attempt = 0; attempt < 200; ++attempt) {
    if (port_block_free(base, count)) return base;
    base = static_cast<std::uint16_t>(24000 + (base - 24000 + 131) % 18000);
  }
  ADD_FAILURE() << "no free loopback port block of " << count;
  return 0;
}

tcp_transport_options tcp_opt(std::uint32_t n, std::uint16_t base, std::uint32_t self) {
  tcp_transport_options o;
  o.n = n;
  o.base_port = base;
  o.self = self;
  return o;
}

void wait_for(const std::atomic<int>& counter, int want, int ms = 3000) {
  for (int i = 0; i < ms && counter.load() < want; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// ---------- Transport semantics ----------

TEST(TcpTransport, DeliversAcrossRealSockets) {
  const std::uint16_t base = probe_base_port(2);
  tcp_transport a(tcp_opt(2, base, 0));
  tcp_transport b(tcp_opt(2, base, 1));

  std::atomic<int> got_b{0};
  proto::message last;
  std::mutex mu;
  b.attach(process_id{1}, [&](const proto::message& m) {
    std::lock_guard<std::mutex> lk(mu);
    last = m;
    got_b += 1;
  });

  proto::message m;
  m.kind = proto::msg_kind::sn_query;
  m.from = process_id{0};
  m.op_seq = 42;
  m.reg = 7;
  a.send(process_id{1}, m);
  wait_for(got_b, 1);
  ASSERT_EQ(got_b.load(), 1);
  {
    std::lock_guard<std::mutex> lk(mu);
    EXPECT_EQ(last, m);  // the codec round-trips through the kernel intact
  }
  EXPECT_EQ(a.datagrams_sent(), 1u);
}

TEST(TcpTransport, SelfSendIsDeliveredAsynchronously) {
  const std::uint16_t base = probe_base_port(1);
  tcp_transport t(tcp_opt(1, base, 0));
  std::atomic<int> got{0};
  t.attach(process_id{0}, [&](const proto::message&) { got += 1; });
  proto::message m;
  m.from = process_id{0};
  t.send(process_id{0}, m);
  t.broadcast(1, m);
  wait_for(got, 2);
  EXPECT_EQ(got.load(), 2);
}

TEST(TcpTransport, DetachedProcessLosesTraffic) {
  const std::uint16_t base = probe_base_port(2);
  tcp_transport a(tcp_opt(2, base, 0));
  tcp_transport b(tcp_opt(2, base, 1));
  std::atomic<int> got{0};
  b.attach(process_id{1}, [&](const proto::message&) { got += 1; });
  b.detach(process_id{1});  // crashed: socket still listens, frames vanish
  proto::message m;
  m.from = process_id{0};
  a.send(process_id{1}, m);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(got.load(), 0);
}

TEST(TcpTransport, SendToAbsentPeerDropsWithoutBlocking) {
  // Peer 1 never exists: connects fail, frames are counted dropped, and the
  // sender never wedges — the protocol's retransmission owns recovery.
  const std::uint16_t base = probe_base_port(2);
  tcp_transport a(tcp_opt(2, base, 0));
  proto::message m;
  m.from = process_id{0};
  for (int i = 0; i < 5; ++i) a.send(process_id{1}, m);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(a.datagrams_sent(), 5u);
  EXPECT_GT(a.datagrams_dropped(), 0u);
}

TEST(TcpTransport, LargeFramesArriveWholeAndInOrder) {
  // Frames far beyond one read() chunk must reassemble; a stream of mixed
  // sizes on one connection arrives in order and intact.
  const std::uint16_t base = probe_base_port(2);
  tcp_transport a(tcp_opt(2, base, 0));
  tcp_transport b(tcp_opt(2, base, 1));
  std::atomic<int> got{0};
  std::vector<std::uint64_t> seqs;
  std::vector<std::size_t> sizes;
  std::mutex mu;
  b.attach(process_id{1}, [&](const proto::message& m) {
    std::lock_guard<std::mutex> lk(mu);
    seqs.push_back(m.op_seq);
    sizes.push_back(m.val.data.size());
    got += 1;
  });
  for (std::uint64_t i = 0; i < 8; ++i) {
    proto::message m;
    m.kind = proto::msg_kind::write;
    m.from = process_id{0};
    m.op_seq = i;
    m.val.data.assign(i % 2 == 0 ? (200u * 1024u) : 3u,
                      static_cast<std::uint8_t>(i));
    a.send(process_id{1}, m);
  }
  wait_for(got, 8, 10000);
  ASSERT_EQ(got.load(), 8);
  std::lock_guard<std::mutex> lk(mu);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(seqs[i], i) << "frame order broke at " << i;
    EXPECT_EQ(sizes[i], i % 2 == 0 ? 200u * 1024u : 3u);
  }
}

// ---------- A real quorum over the kernel's wire ----------

TEST(TcpQuorum, WriteReadCrashRecoverStaysAtomic) {
  constexpr std::uint32_t n = 3;
  const std::uint16_t base = probe_base_port(n);

  history::recorder rec;
  std::vector<std::unique_ptr<storage::memory_store>> stores;
  std::vector<std::unique_ptr<tcp_transport>> nets;
  std::vector<std::unique_ptr<node>> nodes;
  node_options nopt;
  nopt.retransmit_check = 5 * 1000 * 1000;
  nopt.op_timeout = 20ll * 1000 * 1000 * 1000;
  for (std::uint32_t i = 0; i < n; ++i) {
    stores.push_back(std::make_unique<storage::memory_store>());
    nets.push_back(std::make_unique<tcp_transport>(tcp_opt(n, base, i)));
    nodes.push_back(std::make_unique<node>(proto::persistent_policy(), process_id{i},
                                           n, *stores[i], *nets[i], rec, nopt,
                                           0xbeef + i));
  }
  for (auto& nd : nodes) nd->start();

  nodes[0]->write(value_of_u32(5));
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(nodes[i]->read(), value_of_u32(5));
  }

  // Crash a replica (its transport stays bound — the process is "down", the
  // wire keeps eating its frames), write around it, recover, and the
  // recovered replica must serve the new value.
  nodes[2]->crash();
  nodes[0]->write(value_of_u32(9));
  nodes[2]->recover();
  EXPECT_EQ(nodes[2]->read(), value_of_u32(9));

  const auto verdict = history::check_persistent_atomicity(rec.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;

  nodes.clear();  // nodes detach before their transports die
}

}  // namespace
}  // namespace remus::runtime
