// Parallel simulator driver tests: the shard_driver contract (every index
// exactly once, full barrier, exception capture) and the determinism pin the
// whole parallelization rests on — same seed => bit-identical merged
// history, tagged operations, and migration schedule at workers = 1, 2, and
// hardware_concurrency, across fault-free, crash-heavy, migration-under-load,
// and lease+corrupt-tail adversarial runs. Worker count must buy wall-clock
// time only, never observable behavior (shard_router.h, "Parallel
// execution").
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/scenario_runner.h"
#include "core/shard_router.h"
#include "history/keyed.h"
#include "history/tag_order.h"
#include "proto/policy.h"
#include "sim/driver.h"
#include "sim/scenario.h"

namespace remus::sim {
namespace {

// ---------- shard_driver contract ----------

TEST(ShardDriver, FactoryPicksSequentialForOneWorker) {
  EXPECT_EQ(make_shard_driver(0)->workers(), 1u);
  EXPECT_EQ(make_shard_driver(1)->workers(), 1u);
  EXPECT_EQ(make_shard_driver(4)->workers(), 4u);
}

TEST(ShardDriver, SequentialRunsEveryIndexInOrder) {
  sequential_driver d;
  std::vector<std::uint32_t> seen;
  d.run_indexed(5, [&](std::uint32_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
  d.run_indexed(0, [&](std::uint32_t) { FAIL() << "count 0 must not call fn"; });
}

TEST(ShardDriver, ThreadedRunsEveryIndexExactlyOncePerRound) {
  threaded_driver d(4);
  constexpr std::uint32_t count = 64;
  // Many rounds on one pool: stale-worker and missed-wakeup bugs show up as
  // an index running twice (hits > 1) or never (hits == 0).
  for (int round = 0; round < 200; ++round) {
    std::vector<std::atomic<std::uint32_t>> hits(count);
    d.run_indexed(count, [&](std::uint32_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::uint32_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[i].load(), 1u) << "round " << round << " index " << i;
    }
  }
}

TEST(ShardDriver, RunIndexedIsAFullBarrier) {
  threaded_driver d(4);
  // After run_indexed returns, every fn call must have finished and its
  // writes must be visible to the caller (plain reads below, no atomics on
  // the payload: the barrier provides the happens-before edge).
  for (int round = 0; round < 50; ++round) {
    std::vector<std::uint64_t> out(32, 0);
    std::atomic<std::uint32_t> done{0};
    d.run_indexed(32, [&](std::uint32_t i) {
      out[i] = static_cast<std::uint64_t>(i) * 3 + 1;
      done.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(done.load(), 32u);
    for (std::uint32_t i = 0; i < 32; ++i) {
      ASSERT_EQ(out[i], static_cast<std::uint64_t>(i) * 3 + 1);
    }
  }
}

TEST(ShardDriver, RethrowsFirstExceptionAndStaysUsable) {
  threaded_driver d(3);
  EXPECT_THROW(
      d.run_indexed(16,
                    [&](std::uint32_t i) {
                      if (i == 7) throw std::runtime_error("index 7 failed");
                    }),
      std::runtime_error);
  // The pool must be back in a defined state: the next round runs normally.
  std::atomic<std::uint32_t> ran{0};
  d.run_indexed(16, [&](std::uint32_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 16u);
}

TEST(ShardDriver, SingleIndexRunsInlineOnCaller) {
  threaded_driver d(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on{};
  d.run_indexed(1, [&](std::uint32_t) { ran_on = std::this_thread::get_id(); });
  // One index has no parallelism to exploit; running it on the caller skips
  // a pointless wakeup round-trip.
  EXPECT_EQ(ran_on, caller);
}

}  // namespace
}  // namespace remus::sim

namespace remus::core {
namespace {

/// Worker counts the pins compare: sequential, minimal pool, full machine.
std::vector<std::uint32_t> pinned_worker_counts() {
  std::vector<std::uint32_t> w{1, 2,
                               std::max(2u, std::thread::hardware_concurrency())};
  w.erase(std::unique(w.begin(), w.end()), w.end());
  return w;
}

/// Everything observable about a finished router run.
struct run_capture {
  history::history_log events;
  std::vector<history::tagged_op> tagged;
  std::vector<shard_router::migration_event> migration;
  std::uint64_t events_executed = 0;
  time_ns now = 0;
};

void expect_identical(const run_capture& a, const run_capture& b,
                      std::uint32_t workers_b) {
  EXPECT_EQ(a.events_executed, b.events_executed) << "workers=" << workers_b;
  EXPECT_EQ(a.now, b.now) << "workers=" << workers_b;

  ASSERT_EQ(a.events.size(), b.events.size()) << "workers=" << workers_b;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    const history::event& x = a.events[i];
    const history::event& y = b.events[i];
    ASSERT_EQ(x.kind, y.kind) << "workers=" << workers_b << " event " << i;
    ASSERT_EQ(x.p, y.p) << "workers=" << workers_b << " event " << i;
    ASSERT_EQ(x.at, y.at) << "workers=" << workers_b << " event " << i;
    ASSERT_EQ(x.reg, y.reg) << "workers=" << workers_b << " event " << i;
    ASSERT_EQ(x.v.data, y.v.data) << "workers=" << workers_b << " event " << i;
  }

  ASSERT_EQ(a.tagged.size(), b.tagged.size()) << "workers=" << workers_b;
  for (std::size_t i = 0; i < a.tagged.size(); ++i) {
    const history::tagged_op& x = a.tagged[i];
    const history::tagged_op& y = b.tagged[i];
    ASSERT_EQ(x.is_read, y.is_read) << "workers=" << workers_b << " op " << i;
    ASSERT_EQ(x.p, y.p) << "workers=" << workers_b << " op " << i;
    ASSERT_EQ(x.reg, y.reg) << "workers=" << workers_b << " op " << i;
    ASSERT_EQ(x.applied, y.applied) << "workers=" << workers_b << " op " << i;
    ASSERT_EQ(x.val.data, y.val.data) << "workers=" << workers_b << " op " << i;
    ASSERT_EQ(x.invoked_at, y.invoked_at) << "workers=" << workers_b << " op " << i;
    ASSERT_EQ(x.replied_at, y.replied_at) << "workers=" << workers_b << " op " << i;
  }

  ASSERT_EQ(a.migration.size(), b.migration.size()) << "workers=" << workers_b;
  for (std::size_t i = 0; i < a.migration.size(); ++i) {
    ASSERT_EQ(a.migration[i].reg, b.migration[i].reg)
        << "workers=" << workers_b << " entry " << i;
    ASSERT_EQ(a.migration[i].from_shard, b.migration[i].from_shard)
        << "workers=" << workers_b << " entry " << i;
    ASSERT_EQ(a.migration[i].to_shard, b.migration[i].to_shard)
        << "workers=" << workers_b << " entry " << i;
    ASSERT_EQ(a.migration[i].at, b.migration[i].at)
        << "workers=" << workers_b << " entry " << i;
    ASSERT_EQ(a.migration[i].why, b.migration[i].why)
        << "workers=" << workers_b << " entry " << i;
  }
}

shard_router_config parallel_cfg(std::uint32_t workers) {
  shard_router_config cfg;
  cfg.shards = 8;
  cfg.base.n = 3;
  cfg.base.policy = proto::persistent_policy();
  cfg.base.policy.retransmit_delay = 5_ms;
  cfg.base.seed = 77;
  cfg.base.net.jitter = 8_us;
  cfg.base.net.drop_probability = 0.03;
  cfg.workers = workers;
  return cfg;
}

/// Mixed keyed workload over every shard, submitted at deterministic virtual
/// times from a seeded rng; `faults` adds crash/recover pairs in several
/// shards; `migrate` opens a live S -> S+1 window in the middle of the run.
run_capture run_router(std::uint32_t workers, bool faults, bool migrate) {
  shard_router r(parallel_cfg(workers));

  rng wr(0xabc123);
  std::uint32_t v = 1;
  time_ns t = 0;
  const auto submit_some = [&](std::uint32_t rounds) {
    for (std::uint32_t round = 0; round < rounds; ++round) {
      for (std::uint32_t p = 0; p < r.procs_per_shard(); ++p) {
        const register_id reg = wr.next_below(64);
        if (wr.chance(0.5)) {
          r.submit_write(process_id{p}, reg, value_of_u32(v++), t);
        } else {
          r.submit_read(process_id{p}, reg, t);
        }
        t += 120'000;
      }
    }
  };

  submit_some(20);
  if (faults) {
    r.submit_crash(0, process_id{1}, 1_ms);
    r.submit_recover(0, process_id{1}, 5_ms);
    r.submit_crash(3, process_id{2}, 2_ms, crash_style::corrupt_tail);
    r.submit_recover(3, process_id{2}, 6_ms);
    r.submit_crash(5, process_id{0}, 3_ms);
    r.submit_recover(5, process_id{0}, 7_ms);
  }
  if (migrate) {
    // Open the window mid-workload: part of the submitted schedule executes
    // against 8 shards, the rest against the dual-ring discipline, and the
    // drain pump hands the remaining moved keys off under traffic.
    r.run_for(2_ms);
    r.begin_add_shard();
    t = std::max(t, r.now());
    submit_some(10);
  }
  EXPECT_TRUE(r.run_until_idle());
  if (migrate) {
    EXPECT_TRUE(r.migration_drained());
    r.finish_add_shard();
    EXPECT_TRUE(r.run_until_idle());
  }

  run_capture cap;
  cap.events = r.events();
  cap.tagged = r.tagged_operations();
  cap.migration = r.migration_log();
  cap.events_executed = r.events_executed();
  cap.now = r.now();
  return cap;
}

// ---------- The determinism pins ----------

TEST(ParallelDeterminism, WorkerCountInvisibleFaultFree) {
  const run_capture base = run_router(1, false, false);
  EXPECT_TRUE(history::check_persistent_atomicity_per_key(base.events).ok)
      << "sequential baseline must itself be atomic";
  EXPECT_TRUE(history::check_tag_order_per_key(base.tagged).ok);
  for (std::uint32_t w : pinned_worker_counts()) {
    if (w == 1) continue;
    expect_identical(base, run_router(w, false, false), w);
  }
}

TEST(ParallelDeterminism, WorkerCountInvisibleUnderCrashes) {
  const run_capture base = run_router(1, true, false);
  EXPECT_TRUE(history::check_persistent_atomicity_per_key(base.events).ok);
  for (std::uint32_t w : pinned_worker_counts()) {
    if (w == 1) continue;
    expect_identical(base, run_router(w, true, false), w);
  }
}

TEST(ParallelDeterminism, WorkerCountInvisibleDuringLiveMigration) {
  // The hard case: a migration window means the run leaves the no-coupling
  // fast path and the lockstep windows, barrier pump order, and handoff
  // timestamps all become observable through migration_log and the merged
  // history. They must still be bit-identical at every worker count.
  const run_capture base = run_router(1, true, true);
  EXPECT_TRUE(history::check_persistent_atomicity_per_key(base.events).ok);
  EXPECT_FALSE(base.migration.empty()) << "the window must actually move keys";
  for (std::uint32_t w : pinned_worker_counts()) {
    if (w == 1) continue;
    expect_identical(base, run_router(w, true, true), w);
  }
}

// ---------- Adversarial scenario pin (lease + corrupt tail) ----------

/// An adversarial plan weighted onto the two nastiest families — lease
/// crash/recover pairs (incarnation revocation, grantor-registry restore)
/// and WAL-tail-corrupting crashes — plus one live migration window, so the
/// parallel lockstep path runs under leases and storage corruption at once.
scenario_spec lease_corrupt_tail_spec() {
  sim::adversarial_config cfg;
  cfg.shards = 2;
  cfg.n = 3;
  cfg.units = 6;
  cfg.horizon = 6'000'000;
  cfg.min_down = 200'000;
  cfg.max_down = 2'000'000;
  for (double& w : cfg.weights) w = 0.0;
  cfg.weights[static_cast<std::size_t>(sim::fault_family::lease)] = 1.0;
  cfg.weights[static_cast<std::size_t>(sim::fault_family::corrupt_tail)] = 1.0;
  cfg.weights[static_cast<std::size_t>(sim::fault_family::migration)] = 0.5;
  rng r(0x1ea5ec0de);
  scenario_spec spec;
  spec.plan = sim::make_adversarial_plan(cfg, r);
  spec.key_count = 8;
  spec.ops = 60;
  spec.zipf_theta = 0.99;  // hot keys, so leases actually activate
  spec.mean_gap = 100'000;
  spec.workload_seed = 21;
  spec.cluster_seed = 22;
  spec.leases = true;
  return spec;
}

TEST(ParallelDeterminism, LeaseCorruptTailScenarioIdenticalAtEveryWorkerCount) {
  const scenario_spec spec = lease_corrupt_tail_spec();
  ASSERT_TRUE(spec.plan.well_formed());
  bool saw_lease = false;
  bool saw_corrupt = false;
  for (const sim::scenario_event& e : spec.plan.events) {
    saw_lease |= e.family == sim::fault_family::lease;
    saw_corrupt |= e.family == sim::fault_family::corrupt_tail;
  }
  ASSERT_TRUE(saw_lease) << "plan must include a lease-family unit";
  ASSERT_TRUE(saw_corrupt) << "plan must include a corrupt-tail unit";

  const scenario_outcome base = run_scenario(spec, /*workers=*/1);
  ASSERT_TRUE(base.ok()) << base.failure << "\nREPRO " << spec.encode();
  for (std::uint32_t w : pinned_worker_counts()) {
    if (w == 1) continue;
    const scenario_outcome out = run_scenario(spec, w);
    ASSERT_TRUE(out.ok()) << "workers=" << w << ": " << out.failure;
    run_capture a;
    a.events = base.history;
    a.migration = base.migration_log;
    run_capture b;
    b.events = out.history;
    b.migration = out.migration_log;
    expect_identical(a, b, w);
  }
}

}  // namespace
}  // namespace remus::core
