// Event-queue semantics across the typed-event / calendar-band rewrite:
// equal-timestamp ordering, eager cancellation (including cancel-after-fire),
// run_until boundary inclusivity, counter consistency, typed-event dispatch,
// and cross-band (ring / level-2 wheel / overflow heap) ordering.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "sim/event_queue.h"

namespace remus::sim {
namespace {

TEST(EventQueueOrder, EqualTimestampsRunInInsertionOrder) {
  event_queue q;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    q.schedule_at(42, [&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(q.run(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(q.now(), 42);
}

TEST(EventQueueOrder, InterleavedTimesSortGlobally) {
  event_queue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.schedule_at(10, [&] { order.push_back(11); });  // ties after the first 10
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 11, 2, 3}));
}

TEST(EventQueueCancel, CancelPreventsExecutionAndIsEager) {
  event_queue q;
  int hits = 0;
  const auto t = q.schedule_at(5, [&] { ++hits; });
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_TRUE(q.cancel(t));
  // Eager: the event leaves the queue immediately.
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.cancel(t));  // double-cancel reports failure
  q.run();
  EXPECT_EQ(hits, 0);
  EXPECT_EQ(q.executed(), 0u);
}

TEST(EventQueueCancel, CancelAfterFireReturnsFalse) {
  event_queue q;
  int hits = 0;
  const auto t = q.schedule_at(5, [&] { ++hits; });
  EXPECT_EQ(q.run(), 1u);
  EXPECT_EQ(hits, 1);
  EXPECT_FALSE(q.cancel(t));  // already ran
  // A recycled slot must not resurrect old tokens.
  const auto t2 = q.schedule_at(10, [&] { ++hits; });
  EXPECT_FALSE(q.cancel(t));
  EXPECT_TRUE(q.cancel(t2));
}

TEST(EventQueueCancel, CancelBogusTokensReturnsFalse) {
  event_queue q;
  EXPECT_FALSE(q.cancel(0));
  EXPECT_FALSE(q.cancel(~0ULL));
  q.schedule_at(1, [] {});
  EXPECT_FALSE(q.cancel(0));
  q.run();
}

TEST(EventQueueCancel, CancelMiddleKeepsOrder) {
  event_queue q;
  std::vector<int> order;
  q.schedule_at(10, [&] { order.push_back(1); });
  const auto t = q.schedule_at(20, [&] { order.push_back(2); });
  q.schedule_at(20, [&] { order.push_back(22); });
  q.schedule_at(30, [&] { order.push_back(3); });
  EXPECT_TRUE(q.cancel(t));
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 22, 3}));
}

TEST(EventQueueRunUntil, DeadlineIsInclusive) {
  event_queue q;
  int hits = 0;
  q.schedule_at(10, [&] { ++hits; });
  q.schedule_at(15, [&] { ++hits; });  // exactly at the deadline: runs
  q.schedule_at(16, [&] { ++hits; });  // one past: stays
  EXPECT_EQ(q.run_until(15), 2u);
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(q.now(), 15);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(hits, 3);
}

TEST(EventQueueRunUntil, EmptyRunAdvancesClockOnly) {
  event_queue q;
  EXPECT_EQ(q.run_until(500), 0u);
  EXPECT_EQ(q.now(), 500);
}

TEST(EventQueueRunUntil, DoesNotOvershootDeadlinePastFarEvents) {
  event_queue q;
  int hits = 0;
  // 50 ms out: lives in the level-2 wheel, far beyond the deadline.
  q.schedule_at(50'000'000, [&] { ++hits; });
  q.run_until(3'000'000);
  EXPECT_EQ(hits, 0);
  EXPECT_EQ(q.now(), 3'000'000);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(q.now(), 50'000'000);
}

TEST(EventQueueCounters, PendingAndExecutedStayConsistent) {
  event_queue q;
  std::vector<event_queue::token> tokens;
  for (int i = 0; i < 10; ++i) tokens.push_back(q.schedule_at(i, [] {}));
  EXPECT_EQ(q.pending(), 10u);
  EXPECT_TRUE(q.cancel(tokens[3]));
  EXPECT_TRUE(q.cancel(tokens[7]));
  EXPECT_EQ(q.pending(), 8u);
  EXPECT_EQ(q.run(4), 4u);
  EXPECT_EQ(q.executed(), 4u);
  EXPECT_EQ(q.pending(), 4u);
  EXPECT_EQ(q.run(), 4u);
  EXPECT_EQ(q.executed(), 8u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueBands, OrderHoldsAcrossRingWheelAndOverflow) {
  event_queue q;
  std::vector<int> order;
  q.schedule_at(10'000'000'000, [&] { order.push_back(4); });  // overflow heap
  q.schedule_at(500'000'000, [&] { order.push_back(3); });     // level-2 wheel
  q.schedule_at(10'000'000, [&] { order.push_back(2); });      // level-2 wheel
  q.schedule_at(100, [&] { order.push_back(1); });             // calendar ring
  EXPECT_EQ(q.pending(), 4u);
  EXPECT_EQ(q.run(), 4u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(q.now(), 10'000'000'000);
}

TEST(EventQueueBands, CancelWorksInEveryBand) {
  event_queue q;
  int hits = 0;
  const auto ring = q.schedule_at(100, [&] { ++hits; });
  const auto wheel = q.schedule_at(50'000'000, [&] { ++hits; });
  const auto overflow = q.schedule_at(10'000'000'000, [&] { ++hits; });
  EXPECT_TRUE(q.cancel(wheel));
  EXPECT_TRUE(q.cancel(overflow));
  EXPECT_TRUE(q.cancel(ring));
  EXPECT_TRUE(q.empty());
  q.run();
  EXPECT_EQ(hits, 0);
}

TEST(EventQueueBands, FarEventsSortAgainstLateRingInserts) {
  // An event scheduled far ahead must still order by (time, insertion seq)
  // against events scheduled near its time much later.
  event_queue q;
  std::vector<int> order;
  q.schedule_at(6'000'000, [&] { order.push_back(1); });  // wheel at schedule time
  q.schedule_at(5'000'000, [&] {
    // now = 5 ms: the 6 ms event has cascaded into the ring; this sibling
    // shares its timestamp but was scheduled later, so it runs second.
    q.schedule_at(6'000'000, [&] { order.push_back(2); });
  });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueScheduling, IntoThePastThrows) {
  event_queue q;
  q.schedule_at(10, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(5, [] {}), driver_error);
}

TEST(EventQueueTyped, ExecutorReceivesTypedEvents) {
  struct capture final : sim_executor {
    std::vector<sim_event> seen;
    void execute(sim_event& ev) override {
      sim_event copy;
      copy.kind = ev.kind;
      copy.target = ev.target;
      copy.a = ev.a;
      copy.incarnation = ev.incarnation;
      copy.log_key = ev.log_key;
      copy.log_record = ev.log_record;
      seen.push_back(std::move(copy));
    }
  } exec;
  event_queue q;
  q.set_executor(&exec);
  q.schedule_plain(30, event_kind::timer, process_id{2}, 77, 5);
  q.schedule_plain(10, event_kind::op_dispatch, process_id{1}, 4);
  bytes record{1, 2, 3};
  q.schedule_log_done(20, process_id{0}, 9, 1,
                      storage::record_key{storage::record_area::written, 7}, record);
  EXPECT_EQ(q.run(), 3u);
  ASSERT_EQ(exec.seen.size(), 3u);
  EXPECT_EQ(exec.seen[0].kind, event_kind::op_dispatch);
  EXPECT_EQ(exec.seen[0].target, process_id{1});
  EXPECT_EQ(exec.seen[0].a, 4u);
  EXPECT_EQ(exec.seen[1].kind, event_kind::log_done);
  EXPECT_EQ(exec.seen[1].log_key,
            (storage::record_key{storage::record_area::written, 7}));
  EXPECT_EQ(exec.seen[1].log_record, (bytes{1, 2, 3}));
  EXPECT_EQ(exec.seen[2].kind, event_kind::timer);
  EXPECT_EQ(exec.seen[2].a, 77u);
  EXPECT_EQ(exec.seen[2].incarnation, 5u);
}

TEST(EventQueueTyped, SharedMessagePayloadIsRefcountedNotCopied) {
  proto::message_pool pool;
  proto::message m;
  m.kind = proto::msg_kind::write;
  m.from = process_id{1};
  m.val = value_of_u32(7);

  struct count_exec final : sim_executor {
    int delivered = 0;
    const proto::message* payload = nullptr;
    void execute(sim_event& ev) override {
      ++delivered;
      // Every delivery of the broadcast sees the same pooled object.
      if (payload == nullptr) payload = &*ev.msg;
      EXPECT_EQ(payload, &*ev.msg);
      EXPECT_EQ(ev.msg->val, value_of_u32(7));
    }
  } exec;
  event_queue q;
  q.set_executor(&exec);
  {
    const proto::shared_message sh = pool.make(m);
    for (int i = 0; i < 3; ++i) {
      q.schedule_message(10 + i, process_id{static_cast<std::uint32_t>(i)}, sh);
    }
  }
  EXPECT_EQ(pool.outstanding(), 1u);  // events keep the payload alive
  q.run();
  EXPECT_EQ(exec.delivered, 3);
  EXPECT_EQ(pool.outstanding(), 0u);  // returned to the pool after delivery
  EXPECT_EQ(pool.capacity(), 1u);     // one slot served the whole broadcast
}

}  // namespace
}  // namespace remus::sim
