// Unit tests for the quorum protocol core: message formats, records,
// policies, and the state machine driven by hand — verifying exactly where
// each algorithm logs (paper Figures 4 and 5) and what the causal-log
// tracing reports (section I-B).
#include <gtest/gtest.h>

#include "proto/message.h"
#include "proto/policy.h"
#include "proto/quorum_core.h"
#include "proto/records.h"
#include "storage/memory_store.h"

namespace remus::proto {
namespace {

constexpr std::uint32_t kN = 5;
constexpr std::uint32_t kMajority = 3;

message sn_ack_from(std::uint32_t p, const message& query, std::int64_t sn) {
  message m;
  m.kind = msg_kind::sn_ack;
  m.from = process_id{p};
  m.op_seq = query.op_seq;
  m.round = query.round;
  m.epoch = query.epoch;
  m.ts = tag{sn, 0, no_process};
  m.log_depth = query.log_depth;
  return m;
}

message write_ack_from(std::uint32_t p, const message& w, std::uint32_t depth) {
  message m;
  m.kind = msg_kind::write_ack;
  m.from = process_id{p};
  m.op_seq = w.op_seq;
  m.round = w.round;
  m.epoch = w.epoch;
  m.log_depth = depth;
  return m;
}

message read_ack_from(std::uint32_t p, const message& q, tag t, value v) {
  message m;
  m.kind = msg_kind::read_ack;
  m.from = process_id{p};
  m.op_seq = q.op_seq;
  m.round = q.round;
  m.epoch = q.epoch;
  m.ts = t;
  m.val = std::move(v);
  m.log_depth = q.log_depth;
  return m;
}

// ---------- Wire format ----------

TEST(Message, EncodeDecodeRoundTrip) {
  message m;
  m.kind = msg_kind::write;
  m.from = process_id{3};
  m.op_seq = 42;
  m.round = 2;
  m.epoch = 0xabcdef;
  m.ts = tag{7, 1, process_id{3}};
  m.val = value_of_u32(99);
  m.log_depth = 2;
  const message d = decode_message(encode(m));
  EXPECT_EQ(d, m);
}

TEST(Message, WireSizeMatchesEncodedSize) {
  message m;
  m.kind = msg_kind::read_ack;
  m.from = process_id{1};
  m.val = value_of_size(1000);
  EXPECT_EQ(wire_size(m), encode(m).size());
  m.val = initial_value();
  EXPECT_EQ(wire_size(m), encode(m).size());
}

TEST(Message, DecodeRejectsGarbage) {
  bytes junk{0xff, 0x00, 0x01};
  EXPECT_THROW((void)decode_message(junk), codec_error);
}

TEST(Records, TaggedValueRoundTrip) {
  const tagged_value_record r{tag{5, 2, process_id{1}}, value_of_string("abc")};
  EXPECT_EQ(decode_tagged_value(encode(r)), r);
}

TEST(Records, RecoveryRoundTrip) {
  const recovery_record r{17};
  EXPECT_EQ(decode_recovery(encode(r)).recoveries, 17);
}

// ---------- Policies ----------

TEST(Policy, NamedPoliciesAreCoherent) {
  for (const auto& p :
       {crash_stop_policy(), persistent_policy(), transient_policy(), abd_swmr_policy(),
        regular_swmr_policy(), safe_swmr_policy(), regular_cr_policy(), safe_cr_policy(),
        transient_literal_policy(), persistent_no_prelog_policy(),
        read_no_writeback_policy(), read_volatile_writeback_policy(),
        ablation_a_policy(), ablation_a_prime_policy()}) {
    EXPECT_TRUE(p.coherent()) << p.name;
  }
}

TEST(Policy, IncoherentCombinationsRejected) {
  protocol_policy p = persistent_policy();
  p.writer_prelog = false;  // finish-write without prelog
  EXPECT_FALSE(p.coherent());

  protocol_policy q = crash_stop_policy();
  q.writer_prelog = true;  // logging in crash-stop
  EXPECT_FALSE(q.coherent());

  protocol_policy r = crash_stop_policy();
  r.write_query_round = false;  // no query round for multi-writer
  EXPECT_FALSE(r.coherent());
  r.single_writer = true;
  EXPECT_TRUE(r.coherent());
}

TEST(Policy, CoreRejectsIncoherentPolicy) {
  storage::memory_store st;
  protocol_policy p = persistent_policy();
  p.writer_prelog = false;
  EXPECT_THROW(quorum_core(p, process_id{0}, kN, st, 1), precondition_error);
}

// ---------- Crash-stop write/read (the baseline of [2]) ----------

class CrashStopCore : public ::testing::Test {
 protected:
  void SetUp() override {
    core_ = std::make_unique<quorum_core>(crash_stop_policy(), process_id{0}, kN, store_, 7);
    outputs out;
    core_->start(out);
    ASSERT_TRUE(out.empty());
  }

  storage::memory_store store_;
  std::unique_ptr<quorum_core> core_;
};

TEST_F(CrashStopCore, WriteRunsTwoRoundsNoLogs) {
  outputs out;
  core_->invoke_write(value_of_u32(10), out);
  ASSERT_EQ(out.broadcasts.size(), 1u);
  EXPECT_EQ(out.broadcasts[0].msg.kind, msg_kind::sn_query);
  EXPECT_TRUE(out.logs.empty());
  const message query = out.broadcasts[0].msg;

  // Majority of SN acks; max sn = 4.
  out.clear();
  core_->on_message(sn_ack_from(1, query, 2), out);
  EXPECT_TRUE(out.broadcasts.empty());
  core_->on_message(sn_ack_from(2, query, 4), out);
  out.clear();
  core_->on_message(sn_ack_from(3, query, 3), out);
  ASSERT_EQ(out.broadcasts.size(), 1u);  // round 2 starts on the 3rd ack
  const message w = out.broadcasts[0].msg;
  EXPECT_EQ(w.kind, msg_kind::write);
  EXPECT_EQ(w.ts, (tag{5, 0, process_id{0}}));  // max + 1, tie-break pid
  EXPECT_EQ(w.val, value_of_u32(10));
  EXPECT_TRUE(out.logs.empty());

  out.clear();
  core_->on_message(write_ack_from(1, w, 0), out);
  core_->on_message(write_ack_from(2, w, 0), out);
  EXPECT_FALSE(out.completion.has_value());
  core_->on_message(write_ack_from(4, w, 0), out);
  ASSERT_TRUE(out.completion.has_value());
  EXPECT_FALSE(out.completion->is_read);
  EXPECT_EQ(out.completion->causal_logs, 0u);  // crash-stop never logs
  EXPECT_EQ(out.completion->round_trips, 2u);  // 4 communication steps
  EXPECT_EQ(store_.store_count(), 0u);
}

TEST_F(CrashStopCore, DuplicateAcksDoNotCount) {
  outputs out;
  core_->invoke_write(value_of_u32(10), out);
  const message query = out.broadcasts[0].msg;
  out.clear();
  core_->on_message(sn_ack_from(1, query, 0), out);
  core_->on_message(sn_ack_from(1, query, 0), out);
  core_->on_message(sn_ack_from(1, query, 0), out);
  EXPECT_TRUE(out.broadcasts.empty());  // still only 1 distinct responder
  core_->on_message(sn_ack_from(2, query, 0), out);
  core_->on_message(sn_ack_from(3, query, 0), out);
  EXPECT_EQ(out.broadcasts.size(), 1u);
}

TEST_F(CrashStopCore, StaleAcksFromOldPhaseIgnored) {
  outputs out;
  core_->invoke_write(value_of_u32(10), out);
  const message query = out.broadcasts[0].msg;
  out.clear();
  for (std::uint32_t p = 1; p <= kMajority; ++p) {
    core_->on_message(sn_ack_from(p, query, 0), out);
  }
  const message w = out.broadcasts[0].msg;
  out.clear();
  // Acks for round 1 cannot satisfy round 2.
  core_->on_message(sn_ack_from(1, query, 0), out);
  core_->on_message(sn_ack_from(2, query, 0), out);
  core_->on_message(sn_ack_from(4, query, 0), out);
  EXPECT_FALSE(out.completion.has_value());
  // Wrong-epoch write acks ignored.
  message bad = write_ack_from(1, w, 0);
  bad.epoch ^= 1;
  core_->on_message(bad, out);
  EXPECT_FALSE(out.completion.has_value());
  // Real acks complete it.
  core_->on_message(write_ack_from(1, w, 0), out);
  core_->on_message(write_ack_from(2, w, 0), out);
  core_->on_message(write_ack_from(3, w, 0), out);
  EXPECT_TRUE(out.completion.has_value());
}

TEST_F(CrashStopCore, ServerAdoptsOnlyNewerTags) {
  outputs out;
  message w;
  w.kind = msg_kind::write;
  w.from = process_id{2};
  w.op_seq = 9;
  w.round = 2;
  w.epoch = 55;
  w.ts = tag{3, 0, process_id{2}};
  w.val = value_of_u32(30);
  core_->on_message(w, out);
  EXPECT_EQ(core_->replica_tag(), w.ts);
  EXPECT_EQ(core_->replica_value(), w.val);
  ASSERT_EQ(out.sends.size(), 1u);
  EXPECT_EQ(out.sends[0].msg.kind, msg_kind::write_ack);
  EXPECT_EQ(out.sends[0].to, process_id{2});

  // An older write arrives late: acked but not adopted.
  out.clear();
  message old = w;
  old.ts = tag{2, 0, process_id{4}};
  old.val = value_of_u32(20);
  core_->on_message(old, out);
  EXPECT_EQ(core_->replica_tag(), w.ts);
  ASSERT_EQ(out.sends.size(), 1u);

  // Equal tag (retransmission): ack, no change.
  out.clear();
  core_->on_message(w, out);
  EXPECT_EQ(core_->replica_value(), w.val);
  EXPECT_EQ(out.sends.size(), 1u);
}

TEST_F(CrashStopCore, ReadQueriesThenWritesBack) {
  outputs out;
  core_->invoke_read(out);
  const message q = out.broadcasts[0].msg;
  EXPECT_EQ(q.kind, msg_kind::read_query);
  out.clear();
  core_->on_message(read_ack_from(1, q, tag{2, 0, process_id{1}}, value_of_u32(21)), out);
  core_->on_message(read_ack_from(2, q, tag{5, 0, process_id{2}}, value_of_u32(52)), out);
  core_->on_message(read_ack_from(3, q, tag{1, 0, process_id{3}}, value_of_u32(11)), out);
  ASSERT_EQ(out.broadcasts.size(), 1u);
  const message wb = out.broadcasts[0].msg;
  EXPECT_EQ(wb.kind, msg_kind::writeback);
  EXPECT_EQ(wb.ts, (tag{5, 0, process_id{2}}));  // freshest of the majority
  EXPECT_EQ(wb.val, value_of_u32(52));
  out.clear();
  core_->on_message(write_ack_from(1, wb, 0), out);
  core_->on_message(write_ack_from(2, wb, 0), out);
  core_->on_message(write_ack_from(3, wb, 0), out);
  ASSERT_TRUE(out.completion.has_value());
  EXPECT_TRUE(out.completion->is_read);
  EXPECT_EQ(out.completion->result, value_of_u32(52));
  EXPECT_EQ(out.completion->round_trips, 2u);
}

TEST_F(CrashStopCore, RecoverForbidden) {
  core_->crash();
  outputs out;
  EXPECT_THROW(core_->recover(1, out), precondition_error);
}

TEST_F(CrashStopCore, InvokeWhileBusyForbidden) {
  outputs out;
  core_->invoke_write(value_of_u32(1), out);
  EXPECT_THROW(core_->invoke_read(out), precondition_error);
  EXPECT_THROW(core_->invoke_write(value_of_u32(2), out), precondition_error);
}

TEST_F(CrashStopCore, RetransmitTargetsSilentProcesses) {
  outputs out;
  core_->invoke_write(value_of_u32(1), out);
  const message query = out.broadcasts[0].msg;
  ASSERT_EQ(out.timers.size(), 1u);
  const auto token = out.timers[0].token;
  out.clear();
  core_->on_message(sn_ack_from(2, query, 0), out);
  out.clear();
  core_->on_timer(token, out);
  // Re-sent to everyone except p2 (which answered).
  ASSERT_EQ(out.sends.size(), kN - 1);
  for (const auto& s : out.sends) EXPECT_NE(s.to, process_id{2});
  ASSERT_EQ(out.timers.size(), 1u);  // re-armed
  // The stale token no longer fires.
  outputs out2;
  core_->on_timer(token, out2);
  EXPECT_TRUE(out2.empty());
}

// ---------- Persistent emulation (Fig. 4) ----------

class PersistentCore : public ::testing::Test {
 protected:
  void SetUp() override {
    core_ = std::make_unique<quorum_core>(persistent_policy(), process_id{0}, kN, store_, 7);
    outputs out;
    core_->start(out);
  }

  /// Drives a write up to the point where the prelog was requested.
  log_request start_write_until_prelog(value v) {
    outputs out;
    core_->invoke_write(std::move(v), out);
    const message query = out.broadcasts[0].msg;
    out.clear();
    for (std::uint32_t p = 1; p <= kMajority; ++p) {
      core_->on_message(sn_ack_from(p, query, 0), out);
    }
    // Fig. 4 line 12: the writer logs (writing, sn, v) before round 2.
    EXPECT_EQ(out.logs.size(), 1u);
    EXPECT_TRUE(out.broadcasts.empty());
    return out.logs[0];
  }

  storage::memory_store store_;
  std::unique_ptr<quorum_core> core_;
};

TEST_F(PersistentCore, InitializeStoresInitialRecords) {
  // Fig. 4 Initialize: store(writing, 0, ⊥) and store(written, 0, i, ⊥).
  EXPECT_TRUE(store_.retrieve(writing_key).has_value());
  EXPECT_TRUE(store_.retrieve(written_key).has_value());
  EXPECT_FALSE(store_.retrieve(recovered_key).has_value());
}

TEST_F(PersistentCore, WriteUsesTwoCausalLogs) {
  const log_request prelog = start_write_until_prelog(value_of_u32(77));
  EXPECT_EQ(prelog.key, writing_key);
  EXPECT_EQ(prelog.ctx, exec_context::client);
  EXPECT_EQ(prelog.depth_after, 1u);
  const auto rec = decode_tagged_value(prelog.record);
  EXPECT_EQ(rec.ts, (tag{1, 0, process_id{0}}));
  EXPECT_EQ(rec.val, value_of_u32(77));

  // Log completes -> round 2 broadcast carries depth 1.
  outputs out;
  core_->on_log_done(prelog.token, out);
  ASSERT_EQ(out.broadcasts.size(), 1u);
  const message w = out.broadcasts[0].msg;
  EXPECT_EQ(w.kind, msg_kind::write);
  EXPECT_EQ(w.log_depth, 1u);

  // Servers log before acking: acks carry depth 2; the write reports 2
  // causal logs — the tight bound of Theorem 1.
  out.clear();
  core_->on_message(write_ack_from(1, w, 2), out);
  core_->on_message(write_ack_from(2, w, 2), out);
  core_->on_message(write_ack_from(3, w, 2), out);
  ASSERT_TRUE(out.completion.has_value());
  EXPECT_EQ(out.completion->causal_logs, 2u);
  EXPECT_EQ(out.completion->round_trips, 2u);
}

TEST_F(PersistentCore, ServerLogsBeforeAcking) {
  outputs out;
  message w;
  w.kind = msg_kind::write;
  w.from = process_id{2};
  w.op_seq = 4;
  w.round = 2;
  w.epoch = 9;
  w.ts = tag{3, 0, process_id{2}};
  w.val = value_of_u32(33);
  w.log_depth = 1;
  core_->on_message(w, out);
  // Volatile state updated immediately, but no ack until the log is durable.
  EXPECT_EQ(core_->replica_tag(), w.ts);
  ASSERT_EQ(out.logs.size(), 1u);
  EXPECT_TRUE(out.sends.empty());
  EXPECT_EQ(out.logs[0].key, written_key);
  EXPECT_EQ(out.logs[0].ctx, exec_context::listener);
  EXPECT_EQ(out.logs[0].depth_after, 2u);

  outputs out2;
  core_->on_log_done(out.logs[0].token, out2);
  ASSERT_EQ(out2.sends.size(), 1u);
  EXPECT_EQ(out2.sends[0].msg.kind, msg_kind::write_ack);
  EXPECT_EQ(out2.sends[0].msg.log_depth, 2u);
  EXPECT_EQ(out2.sends[0].to, process_id{2});
}

TEST_F(PersistentCore, ServerAcksStaleWriteWithoutLogging) {
  outputs out;
  message w;
  w.kind = msg_kind::write;
  w.from = process_id{2};
  w.op_seq = 4;
  w.round = 2;
  w.epoch = 9;
  w.ts = tag{3, 0, process_id{2}};
  w.val = value_of_u32(33);
  core_->on_message(w, out);
  outputs tmp;
  core_->on_log_done(out.logs[0].token, tmp);

  // Older tag: immediate ack, no log.
  outputs out2;
  message old = w;
  old.ts = tag{1, 0, process_id{1}};
  old.op_seq = 5;
  core_->on_message(old, out2);
  EXPECT_TRUE(out2.logs.empty());
  ASSERT_EQ(out2.sends.size(), 1u);
  EXPECT_EQ(out2.sends[0].msg.log_depth, old.log_depth);
}

TEST_F(PersistentCore, CrashForgetsVolatileKeepsStable) {
  outputs out;
  message w;
  w.kind = msg_kind::write;
  w.from = process_id{1};
  w.op_seq = 2;
  w.round = 2;
  w.epoch = 3;
  w.ts = tag{4, 0, process_id{1}};
  w.val = value_of_u32(44);
  core_->on_message(w, out);
  outputs tmp;
  core_->on_log_done(out.logs[0].token, tmp);
  // Simulate the driver's durability point.
  store_.store(written_key, encode(tagged_value_record{w.ts, w.val}));

  core_->crash();
  EXPECT_FALSE(core_->is_up());
  EXPECT_EQ(core_->replica_tag(), initial_tag);  // volatile gone
  EXPECT_THROW(core_->on_message(w, out), precondition_error);

  outputs rec;
  core_->recover(99, rec);
  EXPECT_EQ(core_->replica_tag(), w.ts);  // restored from (written)
  EXPECT_EQ(core_->replica_value(), w.val);
}

TEST_F(PersistentCore, RecoveryFinishesPendingWrite) {
  // Crash after the prelog: the new value survives in (writing).
  const log_request prelog = start_write_until_prelog(value_of_u32(123));
  store_.store(prelog.key, prelog.record);  // durability point before crash
  outputs out;
  core_->on_log_done(prelog.token, out);    // round 2 broadcast out
  core_->crash();

  outputs rec;
  core_->recover(100, rec);
  EXPECT_FALSE(core_->ready());  // recovery round in progress
  // Fig. 4 Recover: re-runs round 2 with the logged (writing) record.
  ASSERT_EQ(rec.broadcasts.size(), 1u);
  const message w = rec.broadcasts[0].msg;
  EXPECT_EQ(w.kind, msg_kind::write);
  EXPECT_EQ(w.ts, (tag{1, 0, process_id{0}}));
  EXPECT_EQ(w.val, value_of_u32(123));

  outputs done;
  core_->on_message(write_ack_from(1, w, 1), done);
  core_->on_message(write_ack_from(2, w, 1), done);
  EXPECT_FALSE(core_->ready());
  core_->on_message(write_ack_from(3, w, 1), done);
  EXPECT_TRUE(core_->ready());
  EXPECT_TRUE(done.recovery_complete);
}

TEST_F(PersistentCore, RecoveryWithNoPendingWriteStillRunsHarmlessRound) {
  core_->crash();
  outputs rec;
  core_->recover(100, rec);
  ASSERT_EQ(rec.broadcasts.size(), 1u);
  // "Even if there are no previously unfinished writes, writing an old value
  // with an old timestamp will not replace any newer values."
  EXPECT_EQ(rec.broadcasts[0].msg.ts, initial_tag);
}

// ---------- Transient emulation (Fig. 5) ----------

class TransientCore : public ::testing::Test {
 protected:
  void SetUp() override {
    core_ = std::make_unique<quorum_core>(transient_policy(), process_id{0}, kN, store_, 7);
    outputs out;
    core_->start(out);
  }

  storage::memory_store store_;
  std::unique_ptr<quorum_core> core_;
};

TEST_F(TransientCore, InitializeStoresRecoveryCounter) {
  ASSERT_TRUE(store_.retrieve(recovered_key).has_value());
  EXPECT_EQ(decode_recovery(*store_.retrieve(recovered_key)).recoveries, 0);
  EXPECT_FALSE(store_.retrieve(writing_key).has_value());  // no prelog record
}

TEST_F(TransientCore, WriteUsesOneCausalLogAndNoPrelog) {
  outputs out;
  core_->invoke_write(value_of_u32(5), out);
  const message query = out.broadcasts[0].msg;
  out.clear();
  for (std::uint32_t p = 1; p <= kMajority; ++p) {
    core_->on_message(sn_ack_from(p, query, 0), out);
  }
  // No writer prelog: round 2 starts immediately at depth 0.
  EXPECT_TRUE(out.logs.empty());
  ASSERT_EQ(out.broadcasts.size(), 1u);
  const message w = out.broadcasts[0].msg;
  EXPECT_EQ(w.log_depth, 0u);
  EXPECT_EQ(w.ts, (tag{1, 0, process_id{0}}));  // sn = max + rec(0) + 1

  out.clear();
  core_->on_message(write_ack_from(1, w, 1), out);
  core_->on_message(write_ack_from(2, w, 1), out);
  core_->on_message(write_ack_from(3, w, 1), out);
  ASSERT_TRUE(out.completion.has_value());
  EXPECT_EQ(out.completion->causal_logs, 1u);  // the tight bound
  EXPECT_EQ(out.completion->round_trips, 2u);
}

TEST_F(TransientCore, RecoveryLogsIncrementedCounterAndSkipsFinishWrite) {
  core_->crash();
  outputs rec;
  core_->recover(100, rec);
  EXPECT_TRUE(rec.broadcasts.empty());  // no finish-write round
  ASSERT_EQ(rec.logs.size(), 1u);
  EXPECT_EQ(rec.logs[0].key, recovered_key);
  EXPECT_EQ(decode_recovery(rec.logs[0].record).recoveries, 1);
  EXPECT_FALSE(core_->ready());

  outputs done;
  core_->on_log_done(rec.logs[0].token, done);
  EXPECT_TRUE(done.recovery_complete);
  EXPECT_TRUE(core_->ready());
  EXPECT_EQ(core_->recoveries(), 1);
}

TEST_F(TransientCore, SequenceNumberBumpsByRecPlusOne) {
  // Recover twice (rec = 2), then write: sn := max + rec + 1 (Fig. 5 line 11).
  for (int i = 0; i < 2; ++i) {
    core_->crash();
    outputs rec;
    core_->recover(100 + i, rec);
    store_.store(recovered_key, rec.logs[0].record);
    outputs done;
    core_->on_log_done(rec.logs[0].token, done);
  }
  EXPECT_EQ(core_->recoveries(), 2);

  outputs out;
  core_->invoke_write(value_of_u32(9), out);
  const message query = out.broadcasts[0].msg;
  out.clear();
  core_->on_message(sn_ack_from(1, query, 4), out);
  core_->on_message(sn_ack_from(2, query, 2), out);
  core_->on_message(sn_ack_from(3, query, 0), out);
  ASSERT_EQ(out.broadcasts.size(), 1u);
  // sn = 4 + 2 + 1; rec rides in the tag as tie-break (see timestamp.h).
  EXPECT_EQ(out.broadcasts[0].msg.ts, (tag{7, 2, process_id{0}}));
}

TEST_F(TransientCore, CounterSurvivesViaStableStorage) {
  core_->crash();
  outputs rec;
  core_->recover(100, rec);
  store_.store(recovered_key, rec.logs[0].record);
  outputs done;
  core_->on_log_done(rec.logs[0].token, done);

  core_->crash();
  outputs rec2;
  core_->recover(101, rec2);
  EXPECT_EQ(decode_recovery(rec2.logs[0].record).recoveries, 2);
}

// ---------- Weaker registers (section VI) ----------

TEST(WeakRegisters, AbdSwmrWriteSkipsQueryRound) {
  storage::memory_store st;
  quorum_core core(abd_swmr_policy(), process_id{0}, kN, st, 7);
  outputs out;
  core.start(out);
  core.invoke_write(value_of_u32(5), out);
  ASSERT_EQ(out.broadcasts.size(), 1u);
  EXPECT_EQ(out.broadcasts[0].msg.kind, msg_kind::write);  // 1 round-trip
  EXPECT_EQ(out.broadcasts[0].msg.ts, (tag{1, 0, process_id{0}}));
  out.clear();
  message w;  // second write bumps the local counter
  for (std::uint32_t p = 1; p <= kMajority; ++p) {
    message a;
    a.kind = msg_kind::write_ack;
    a.from = process_id{p};
    a.op_seq = core.current_op_seq();
    a.round = 2;
    a.epoch = core.current_epoch();
    core.on_message(a, out);
  }
  ASSERT_TRUE(out.completion.has_value());
  EXPECT_EQ(out.completion->round_trips, 1u);
  out.clear();
  core.invoke_write(value_of_u32(6), out);
  w = out.broadcasts[0].msg;
  EXPECT_EQ(w.ts, (tag{2, 0, process_id{0}}));
}

TEST(WeakRegisters, OnlyProcessZeroMayWriteSwmr) {
  storage::memory_store st;
  quorum_core core(abd_swmr_policy(), process_id{1}, kN, st, 7);
  outputs out;
  core.start(out);
  EXPECT_THROW(core.invoke_write(value_of_u32(1), out), precondition_error);
  EXPECT_NO_THROW(core.invoke_read(out));  // readers are fine
}

TEST(WeakRegisters, RegularReadSkipsWriteBack) {
  storage::memory_store st;
  quorum_core core(regular_swmr_policy(), process_id{1}, kN, st, 7);
  outputs out;
  core.start(out);
  core.invoke_read(out);
  const message q = out.broadcasts[0].msg;
  out.clear();
  core.on_message(read_ack_from(0, q, tag{3, 0, process_id{0}}, value_of_u32(30)), out);
  core.on_message(read_ack_from(2, q, tag{2, 0, process_id{0}}, value_of_u32(20)), out);
  core.on_message(read_ack_from(3, q, tag{1, 0, process_id{0}}, value_of_u32(10)), out);
  ASSERT_TRUE(out.completion.has_value());  // no second round
  EXPECT_EQ(out.completion->result, value_of_u32(30));
  EXPECT_EQ(out.completion->round_trips, 1u);
  EXPECT_TRUE(out.broadcasts.empty());
}

TEST(WeakRegisters, SafeReadReturnsFirstReply) {
  storage::memory_store st;
  quorum_core core(safe_swmr_policy(), process_id{1}, kN, st, 7);
  outputs out;
  core.start(out);
  core.invoke_read(out);
  const message q = out.broadcasts[0].msg;
  out.clear();
  core.on_message(read_ack_from(3, q, tag{1, 0, process_id{0}}, value_of_u32(10)), out);
  core.on_message(read_ack_from(0, q, tag{3, 0, process_id{0}}, value_of_u32(30)), out);
  core.on_message(read_ack_from(2, q, tag{2, 0, process_id{0}}, value_of_u32(20)), out);
  ASSERT_TRUE(out.completion.has_value());
  EXPECT_EQ(out.completion->result, value_of_u32(10));  // first, not freshest
}

// ---------- Ablation algorithms (section I-B) ----------

TEST(Ablation, AlgorithmAUsesTwoCausalLogsAndWaitsForAll) {
  storage::memory_store st;
  quorum_core core(ablation_a_policy(), process_id{0}, kN, st, 7);
  outputs out;
  core.start(out);
  core.invoke_write(value_of_u32(1), out);
  // Writer logs first (no query round)...
  ASSERT_EQ(out.logs.size(), 1u);
  EXPECT_TRUE(out.broadcasts.empty());
  outputs out2;
  core.on_log_done(out.logs[0].token, out2);
  ASSERT_EQ(out2.broadcasts.size(), 1u);
  const message w = out2.broadcasts[0].msg;
  EXPECT_EQ(w.log_depth, 1u);
  // ...and needs all n acks, not a majority.
  outputs out3;
  for (std::uint32_t p = 0; p < kN - 1; ++p) {
    message a;
    a.kind = msg_kind::write_ack;
    a.from = process_id{p};
    a.op_seq = w.op_seq;
    a.round = w.round;
    a.epoch = w.epoch;
    a.log_depth = 2;
    core.on_message(a, out3);
    EXPECT_FALSE(out3.completion.has_value());
  }
  message last;
  last.kind = msg_kind::write_ack;
  last.from = process_id{kN - 1};
  last.op_seq = w.op_seq;
  last.round = w.round;
  last.epoch = w.epoch;
  last.log_depth = 2;
  core.on_message(last, out3);
  ASSERT_TRUE(out3.completion.has_value());
  EXPECT_EQ(out3.completion->causal_logs, 2u);
}

TEST(Ablation, AlgorithmAPrimeUsesOneCausalLog) {
  storage::memory_store st;
  quorum_core core(ablation_a_prime_policy(), process_id{0}, kN, st, 7);
  outputs out;
  core.start(out);
  core.invoke_write(value_of_u32(1), out);
  // No prelog: the broadcast goes straight out at depth 0.
  EXPECT_TRUE(out.logs.empty());
  ASSERT_EQ(out.broadcasts.size(), 1u);
  const message w = out.broadcasts[0].msg;
  EXPECT_EQ(w.log_depth, 0u);
  outputs out3;
  for (std::uint32_t p = 0; p < kN; ++p) {
    message a;
    a.kind = msg_kind::write_ack;
    a.from = process_id{p};
    a.op_seq = w.op_seq;
    a.round = w.round;
    a.epoch = w.epoch;
    a.log_depth = 1;  // every listener logs in parallel
    core.on_message(a, out3);
  }
  ASSERT_TRUE(out3.completion.has_value());
  EXPECT_EQ(out3.completion->causal_logs, 1u);
}

// ---------- Batch-aware retransmission ----------

message batched_write_ack(std::uint32_t p, const message& w,
                          std::initializer_list<register_id> covered) {
  message m;
  m.kind = msg_kind::write_ack;
  m.from = process_id{p};
  m.op_seq = w.op_seq;
  m.round = w.round;
  m.epoch = w.epoch;
  m.log_depth = w.log_depth + 1;
  for (const register_id reg : covered) m.batch.push_back({reg, tag{}, value{}});
  return m;
}

TEST(BatchRetransmission, TrimmedAndFullRepeatsMatchTheSettlementRules) {
  for (const bool trim : {true, false}) {
    storage::memory_store store;
    protocol_policy pol = persistent_policy();
    pol.trim_batch_retransmit = trim;
    quorum_core core(pol, process_id{0}, kN, store, 1);
    {
      outputs out;
      core.start(out);
    }
    outputs out;
    core.invoke_write_batch({{10, value_of_u32(1)}, {20, value_of_u32(2)}}, out);
    const message query = out.broadcasts[0].msg;
    outputs out2;
    for (std::uint32_t p = 1; p <= kMajority; ++p) {
      message a = sn_ack_from(p, query, 0);
      a.batch = {{10, tag{}, value{}}, {20, tag{}, value{}}};
      core.on_message(a, out2);
    }
    std::vector<std::uint64_t> tokens;
    for (const log_request& lr : out2.logs) tokens.push_back(lr.token);
    outputs out3;
    for (const std::uint64_t t : tokens) core.on_log_done(t, out3);
    ASSERT_EQ(out3.broadcasts.size(), 1u);
    const message w = out3.broadcasts[0].msg;
    ASSERT_EQ(out3.timers.size(), 1u);
    const std::uint64_t retrans_token = out3.timers[0].token;

    // p1 fully acks; p2 acks only register 10.
    outputs acks;
    core.on_message(batched_write_ack(1, w, {10, 20}), acks);
    core.on_message(batched_write_ack(2, w, {10}), acks);
    EXPECT_FALSE(acks.completion.has_value());

    outputs rt;
    core.on_timer(retrans_token, rt);
    if (trim) {
      // p1 covered everything -> silent. p2 gets only register 20. The
      // others (including the writer's own listener, p0) get both: neither
      // register is settled yet (10 has 2 of 3 votes, 20 has 1).
      ASSERT_EQ(rt.sends.size(), 4u);
      for (const send_request& s : rt.sends) {
        ASSERT_TRUE(s.msg.is_batch());
        if (s.to == process_id{2}) {
          ASSERT_EQ(s.msg.batch.size(), 1u);
          EXPECT_EQ(s.msg.batch[0].reg, 20u);
          EXPECT_EQ(s.msg.batch[0].val, value_of_u32(2));  // payload rides along
        } else {
          EXPECT_EQ(s.msg.batch.size(), 2u);
        }
      }
    } else {
      // Pre-optimization behavior: the full batch to every non-responder
      // (p2 answered partially, so it still counts as silent).
      ASSERT_EQ(rt.sends.size(), 4u);
      for (const send_request& s : rt.sends) {
        EXPECT_EQ(s.msg.batch.size(), 2u);
      }
    }

    // Completion is per-register majorities: after p3's full ack, register
    // 10 has {p1, p2, p3} but 20 only {p1, p3} — still open. p4's *trimmed*
    // ack covering just {20} settles it and completes the batch.
    outputs fin;
    core.on_message(batched_write_ack(3, w, {10, 20}), fin);
    EXPECT_FALSE(fin.completion.has_value());
    core.on_message(batched_write_ack(4, w, {20}), fin);
    ASSERT_TRUE(fin.completion.has_value());
    ASSERT_EQ(fin.completion->batch.size(), 2u);
    EXPECT_EQ(fin.completion->batch[0].reg, 10u);
    EXPECT_EQ(fin.completion->batch[1].reg, 20u);
  }
}

}  // namespace
}  // namespace remus::proto
