// Unit tests for stable storage backends (keyed by (area, register)).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "common/value.h"
#include "storage/file_store.h"
#include "storage/memory_store.h"

namespace remus::storage {
namespace {

bytes b(std::initializer_list<std::uint8_t> xs) { return bytes(xs); }

constexpr record_key written0{record_area::written, 0};
constexpr record_key written7{record_area::written, 7};
constexpr record_key writing0{record_area::writing, 0};
constexpr record_key recovered{record_area::recovered, 0};

template <typename Store>
void exercise_basic(Store& st) {
  EXPECT_FALSE(st.retrieve(written0).has_value());
  st.store(written0, b({1, 2, 3}));
  ASSERT_TRUE(st.retrieve(written0).has_value());
  EXPECT_EQ(*st.retrieve(written0), b({1, 2, 3}));
  // Overwrite in place (records replace their predecessor).
  st.store(written0, b({9}));
  EXPECT_EQ(*st.retrieve(written0), b({9}));
  // Independent areas.
  st.store(writing0, b({4, 5}));
  EXPECT_EQ(*st.retrieve(writing0), b({4, 5}));
  EXPECT_EQ(*st.retrieve(written0), b({9}));
  // Independent registers of the same area.
  st.store(written7, b({7, 7}));
  EXPECT_EQ(*st.retrieve(written7), b({7, 7}));
  EXPECT_EQ(*st.retrieve(written0), b({9}));
  EXPECT_EQ(st.store_count(), 4u);
}

template <typename Store>
void exercise_for_each(Store& st) {
  st.store(written0, b({1}));
  st.store(record_key{record_area::written, 42}, b({42}));
  st.store(written7, b({7}));
  st.store(writing0, b({100}));  // different area: not enumerated
  st.store(recovered, b({5}));

  std::vector<std::pair<register_id, bytes>> seen;
  st.for_each(record_area::written,
              [&](register_id reg, const bytes& rec) { seen.emplace_back(reg, rec); });
  ASSERT_EQ(seen.size(), 3u);
  // Deterministic order (memory store: insertion; file store: ascending reg).
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen[0], (std::pair<register_id, bytes>{0, b({1})}));
  EXPECT_EQ(seen[1], (std::pair<register_id, bytes>{7, b({7})}));
  EXPECT_EQ(seen[2], (std::pair<register_id, bytes>{42, b({42})}));
}

TEST(RecordKey, EncodedSizeMatchesRenderedName) {
  for (const record_key k :
       {written0, written7, writing0, recovered, record_key{record_area::written, 10},
        record_key{record_area::writing, 123456}, record_key{record_area::written, 9}}) {
    EXPECT_EQ(k.encoded_size(), to_string(k).size()) << to_string(k);
  }
}

TEST(MemoryStore, BasicRoundTrip) {
  memory_store st;
  exercise_basic(st);
}

TEST(MemoryStore, ForEachEnumeratesArea) {
  memory_store st;
  exercise_for_each(st);
}

TEST(MemoryStore, WipeClearsRecords) {
  memory_store st;
  st.store(written0, b({1}));
  st.wipe();
  EXPECT_FALSE(st.retrieve(written0).has_value());
}

TEST(MemoryStore, FootprintTracksContent) {
  memory_store st;
  EXPECT_EQ(st.footprint(), 0u);
  st.store(written0, b({1, 2, 3}));
  EXPECT_EQ(st.footprint(), sizeof(record_key) + 3u);
}

TEST(MemoryStore, EmptyRecordAllowed) {
  memory_store st;
  st.store(written0, {});
  ASSERT_TRUE(st.retrieve(written0).has_value());
  EXPECT_TRUE(st.retrieve(written0)->empty());
}

template <typename Store>
void exercise_store_and_obsolete(Store& st) {
  // The stable_store default decomposes into store() + erase(); entries
  // equal to the stored key are inert, absent keys are no-ops.
  st.store(writing0, b({1}));
  st.store(written7, b({2}));
  const record_key obsolete[] = {writing0, written7, written0, recovered};
  static_cast<stable_store&>(st).store_and_obsolete(written0, b({5}), obsolete);
  EXPECT_EQ(*st.retrieve(written0), b({5}));
  EXPECT_FALSE(st.retrieve(writing0).has_value());
  EXPECT_FALSE(st.retrieve(written7).has_value());
}

TEST(MemoryStore, StoreAndObsoleteDefaultDecomposes) {
  memory_store st;
  exercise_store_and_obsolete(st);
}

class FileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("remus_fs_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::filesystem::path dir_;
  static inline int counter_ = 0;
};

TEST_F(FileStoreTest, BasicRoundTrip) {
  file_store st(dir_, /*fsync_enabled=*/false);
  exercise_basic(st);
}

TEST_F(FileStoreTest, ForEachEnumeratesArea) {
  file_store st(dir_, false);
  exercise_for_each(st);
}

TEST_F(FileStoreTest, SurvivesReopen) {
  {
    file_store st(dir_, false);
    st.store(written0, b({7, 7, 7}));
    st.store(written7, b({8}));
  }
  file_store st2(dir_, false);
  ASSERT_TRUE(st2.retrieve(written0).has_value());
  EXPECT_EQ(*st2.retrieve(written0), b({7, 7, 7}));
  EXPECT_EQ(*st2.retrieve(written7), b({8}));
}

TEST_F(FileStoreTest, FsyncPathWorks) {
  file_store st(dir_, true);
  st.store(written0, b({1}));
  EXPECT_EQ(*st.retrieve(written0), b({1}));
}

TEST_F(FileStoreTest, KeyedRecordsUseDistinctFiles) {
  file_store st(dir_, false);
  st.store(written0, b({1}));
  st.store(written7, b({2}));
  st.store(recovered, b({3}));
  std::size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    EXPECT_EQ(e.path().parent_path(), dir_);
    ++files;
  }
  EXPECT_EQ(files, 3u);
  EXPECT_EQ(*st.retrieve(written0), b({1}));
  EXPECT_EQ(*st.retrieve(written7), b({2}));
}

TEST_F(FileStoreTest, WipeRemovesFiles) {
  file_store st(dir_, false);
  st.store(written0, b({1}));
  st.store(written7, b({2}));
  st.wipe();
  EXPECT_FALSE(st.retrieve(written0).has_value());
  EXPECT_FALSE(st.retrieve(written7).has_value());
}

TEST_F(FileStoreTest, StoreAndObsoleteDefaultDecomposes) {
  file_store st(dir_, false);
  exercise_store_and_obsolete(st);
}

TEST_F(FileStoreTest, StrayTmpFilesAreSweptAtConstruction) {
  // A crash between tmp-write and rename leaves "<record>.tmp"; the next
  // start must remove it so it can never shadow or resurrect a record.
  std::filesystem::create_directories(dir_);
  {
    std::ofstream f(dir_ / "written-0.tmp");
    f << "half-written record from a crashed store";
  }
  file_store st(dir_, false);
  EXPECT_FALSE(std::filesystem::exists(dir_ / "written-0.tmp"));
  EXPECT_FALSE(st.retrieve(written0).has_value());
  st.store(written0, b({1}));
  EXPECT_EQ(*st.retrieve(written0), b({1}));
}

TEST_F(FileStoreTest, LargeRecordRoundTrip) {
  file_store st(dir_, false);
  const value big = value_of_size(64 * 1024);
  st.store(written0, big.data);
  EXPECT_EQ(*st.retrieve(written0), big.data);
}

}  // namespace
}  // namespace remus::storage
