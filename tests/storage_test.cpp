// Unit tests for stable storage backends.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/value.h"
#include "storage/file_store.h"
#include "storage/memory_store.h"

namespace remus::storage {
namespace {

bytes b(std::initializer_list<std::uint8_t> xs) { return bytes(xs); }

template <typename Store>
void exercise_basic(Store& st) {
  EXPECT_FALSE(st.retrieve("written").has_value());
  st.store("written", b({1, 2, 3}));
  ASSERT_TRUE(st.retrieve("written").has_value());
  EXPECT_EQ(*st.retrieve("written"), b({1, 2, 3}));
  // Overwrite in place (records replace their predecessor).
  st.store("written", b({9}));
  EXPECT_EQ(*st.retrieve("written"), b({9}));
  // Independent keys.
  st.store("writing", b({4, 5}));
  EXPECT_EQ(*st.retrieve("writing"), b({4, 5}));
  EXPECT_EQ(*st.retrieve("written"), b({9}));
  EXPECT_EQ(st.store_count(), 3u);
}

TEST(MemoryStore, BasicRoundTrip) {
  memory_store st;
  exercise_basic(st);
}

TEST(MemoryStore, WipeClearsRecords) {
  memory_store st;
  st.store("a", b({1}));
  st.wipe();
  EXPECT_FALSE(st.retrieve("a").has_value());
}

TEST(MemoryStore, FootprintTracksContent) {
  memory_store st;
  EXPECT_EQ(st.footprint(), 0u);
  st.store("ab", b({1, 2, 3}));
  EXPECT_EQ(st.footprint(), 5u);
}

TEST(MemoryStore, EmptyRecordAllowed) {
  memory_store st;
  st.store("k", {});
  ASSERT_TRUE(st.retrieve("k").has_value());
  EXPECT_TRUE(st.retrieve("k")->empty());
}

class FileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("remus_fs_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::filesystem::path dir_;
  static inline int counter_ = 0;
};

TEST_F(FileStoreTest, BasicRoundTrip) {
  file_store st(dir_, /*fsync_enabled=*/false);
  exercise_basic(st);
}

TEST_F(FileStoreTest, SurvivesReopen) {
  {
    file_store st(dir_, false);
    st.store("written", b({7, 7, 7}));
  }
  file_store st2(dir_, false);
  ASSERT_TRUE(st2.retrieve("written").has_value());
  EXPECT_EQ(*st2.retrieve("written"), b({7, 7, 7}));
}

TEST_F(FileStoreTest, FsyncPathWorks) {
  file_store st(dir_, true);
  st.store("written", b({1}));
  EXPECT_EQ(*st.retrieve("written"), b({1}));
}

TEST_F(FileStoreTest, SanitizesHostileKeys) {
  file_store st(dir_, false);
  st.store("../../etc/passwd", b({1}));
  st.store("a/b\\c d", b({2}));
  st.store("", b({3}));
  EXPECT_EQ(*st.retrieve("../../etc/passwd"), b({1}));
  EXPECT_EQ(*st.retrieve("a/b\\c d"), b({2}));
  EXPECT_EQ(*st.retrieve(""), b({3}));
  // Nothing escaped the directory.
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    EXPECT_EQ(e.path().parent_path(), dir_);
  }
}

TEST_F(FileStoreTest, WipeRemovesFiles) {
  file_store st(dir_, false);
  st.store("a", b({1}));
  st.store("b", b({2}));
  st.wipe();
  EXPECT_FALSE(st.retrieve("a").has_value());
  EXPECT_FALSE(st.retrieve("b").has_value());
}

TEST_F(FileStoreTest, LargeRecordRoundTrip) {
  file_store st(dir_, false);
  const value big = value_of_size(64 * 1024);
  st.store("written", big.data);
  EXPECT_EQ(*st.retrieve("written"), big.data);
}

}  // namespace
}  // namespace remus::storage
