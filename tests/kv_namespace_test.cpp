// Multi-register namespace tests: keyed wire format, per-register protocol
// state, batched operations, keyed stable storage + recovery replay, the
// per-key atomicity checker — and negative keyed histories (hand-built and
// mutation-generated) that the checker must reject with a meaningful
// explanation, guarding against a vacuously-passing checker.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/cluster.h"
#include "history/keyed.h"
#include "history/tag_order.h"
#include "history/wellformed.h"
#include "proto/message.h"
#include "proto/policy.h"
#include "sim/kv_workload.h"

namespace remus::core {
namespace {

cluster_config cfg_of(proto::protocol_policy pol, std::uint32_t n = 3,
                      std::uint64_t seed = 11) {
  cluster_config cfg;
  cfg.n = n;
  cfg.policy = std::move(pol);
  cfg.seed = seed;
  return cfg;
}

// ---------- Keyed wire format ----------

TEST(KeyedWire, SingleKeyMessageRoundTrips) {
  proto::message m;
  m.kind = proto::msg_kind::write;
  m.from = process_id{2};
  m.op_seq = 9;
  m.round = 2;
  m.epoch = 77;
  m.ts = tag{4, 0, process_id{2}};
  m.val = value_of_u32(123);
  m.reg = 31;
  const bytes wire = proto::encode(m);
  EXPECT_EQ(wire.size(), proto::wire_size(m));
  EXPECT_EQ(proto::decode_message(wire), m);
}

TEST(KeyedWire, BatchedMessageRoundTrips) {
  proto::message m;
  m.kind = proto::msg_kind::write;
  m.from = process_id{0};
  m.op_seq = 3;
  m.round = 2;
  for (std::uint32_t k : {5u, 9u, 700u}) {
    proto::batch_entry e;
    e.reg = k;
    e.ts = tag{static_cast<std::int64_t>(k), 0, process_id{0}};
    e.val = value_of_u32(k * 10);
    m.batch.push_back(std::move(e));
  }
  const bytes wire = proto::encode(m);
  EXPECT_EQ(wire.size(), proto::wire_size(m));
  const proto::message d = proto::decode_message(wire);
  EXPECT_EQ(d, m);
  ASSERT_EQ(d.batch.size(), 3u);
  EXPECT_EQ(d.batch[2].reg, 700u);
}

TEST(KeyedWire, AbsurdBatchCountRejected) {
  proto::message m;
  m.kind = proto::msg_kind::sn_query;
  m.from = process_id{0};
  bytes wire = proto::encode(m);
  // Patch the batch-count field (trailing u32) to an unsatisfiable value.
  wire[wire.size() - 4] = 0xff;
  wire[wire.size() - 3] = 0xff;
  wire[wire.size() - 2] = 0xff;
  wire[wire.size() - 1] = 0x7f;
  EXPECT_THROW((void)proto::decode_message(wire), codec_error);
}

// ---------- Independent registers over one cluster ----------

TEST(KeyedCluster, RegistersAreIndependent) {
  cluster c(cfg_of(proto::persistent_policy()));
  c.write(process_id{0}, 1, value_of_u32(100));
  c.write(process_id{1}, 2, value_of_u32(200));
  c.write(process_id{2}, default_register, value_of_u32(7));
  EXPECT_EQ(c.read(process_id{2}, 1), value_of_u32(100));
  EXPECT_EQ(c.read(process_id{0}, 2), value_of_u32(200));
  EXPECT_EQ(c.read(process_id{1}), value_of_u32(7));
  // A register never written reads as the initial value.
  EXPECT_TRUE(c.read(process_id{0}, 999).is_initial());

  const auto verdict = history::check_persistent_atomicity_per_key(c.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
  EXPECT_EQ(verdict.keys_checked, 4u);  // regs 0, 1, 2, 999
}

TEST(KeyedCluster, PerKeyTagsEvolveIndependently) {
  cluster c(cfg_of(proto::transient_policy()));
  for (int i = 1; i <= 3; ++i) c.write(process_id{0}, 5, value_of_u32(i));
  c.write(process_id{0}, 6, value_of_u32(50));
  ASSERT_TRUE(c.run_until_idle());
  // Register 5 saw three writes, register 6 one: their tags differ.
  EXPECT_EQ(c.core_of(process_id{0}).replica_tag(5).sn, 3);
  EXPECT_EQ(c.core_of(process_id{0}).replica_tag(6).sn, 1);
  EXPECT_EQ(c.core_of(process_id{0}).replica_tag(7), initial_tag);
  const auto order = history::check_tag_order_per_key(c.tagged_operations());
  EXPECT_TRUE(order.ok) << order.explanation;
}

// ---------- Batched operations ----------

TEST(KeyedCluster, BatchedWriteThenBatchedRead) {
  cluster c(cfg_of(proto::persistent_policy()));
  std::vector<proto::write_op> ops;
  for (std::uint32_t k = 0; k < 8; ++k) ops.push_back({k, value_of_u32(1000 + k)});
  const auto w = c.submit_write_batch(process_id{0}, ops, 0);
  ASSERT_TRUE(c.run_until_idle());
  ASSERT_TRUE(c.result(w).completed);
  ASSERT_EQ(c.result(w).batch_result.size(), 8u);

  std::vector<register_id> regs;
  for (std::uint32_t k = 0; k < 8; ++k) regs.push_back(k);
  const auto r = c.submit_read_batch(process_id{2}, regs, c.now());
  ASSERT_TRUE(c.run_until_idle());
  const auto& res = c.result(r);
  ASSERT_TRUE(res.completed);
  ASSERT_EQ(res.batch_result.size(), 8u);
  for (std::uint32_t k = 0; k < 8; ++k) {
    EXPECT_EQ(res.batch_result[k].reg, k);
    EXPECT_EQ(res.batch_result[k].val, value_of_u32(1000 + k));
  }

  const auto verdict = history::check_persistent_atomicity_per_key(c.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
  EXPECT_EQ(verdict.keys_checked, 8u);
}

TEST(KeyedCluster, BatchAmortizesQuorumRoundTrips) {
  // A batched 8-key write must cost one op's round-trips and messages, not
  // eight ops' worth (that is the point of batching).
  cluster c(cfg_of(proto::persistent_policy()));
  std::vector<proto::write_op> ops;
  for (std::uint32_t k = 0; k < 8; ++k) ops.push_back({k, value_of_u32(10 + k)});
  const auto b = c.submit_write_batch(process_id{0}, ops, 0);
  ASSERT_TRUE(c.run_until_idle());
  // Copy the sample: submitting more ops below grows the result table.
  ASSERT_TRUE(c.result(b).completed);
  const metrics::op_sample batch_sample = c.result(b).sample;
  EXPECT_EQ(batch_sample.round_trips, 2u);

  std::uint32_t single_msgs = 0;
  for (std::uint32_t k = 0; k < 8; ++k) {
    const auto h = c.submit_write(process_id{0}, 100 + k, value_of_u32(100 + k), c.now());
    ASSERT_TRUE(c.run_until_idle());
    single_msgs += c.result(h).sample.messages;
  }
  EXPECT_LT(batch_sample.messages, single_msgs / 2);
}

TEST(KeyedCluster, BatchedWriteSurvivesBlackout) {
  cluster c(cfg_of(proto::transient_policy(), 5));
  std::vector<proto::write_op> ops;
  for (std::uint32_t k = 0; k < 16; ++k) ops.push_back({k, value_of_u32(900 + k)});
  c.submit_write_batch(process_id{0}, ops, 0);
  ASSERT_TRUE(c.run_until_idle());
  // Everyone crashes; stable storage must restore every register.
  c.apply(sim::make_blackout_plan(5, c.now() + 1_ms, 5_ms));
  ASSERT_TRUE(c.run_until_idle());
  for (std::uint32_t k = 0; k < 16; ++k) {
    EXPECT_EQ(c.read(process_id{k % 5}, k), value_of_u32(900 + k)) << "reg " << k;
  }
  const auto verdict = history::check_transient_atomicity_per_key(c.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(KeyedCluster, DuplicateRegisterInBatchRejected) {
  cluster c(cfg_of(proto::persistent_policy()));
  std::vector<proto::write_op> ops{{3, value_of_u32(1)}, {3, value_of_u32(2)}};
  c.submit_write_batch(process_id{0}, ops, 0);
  EXPECT_THROW(c.run_until_idle(), precondition_error);
}

// ---------- Keyed recovery replay ----------

TEST(KeyedRecovery, RecoveryRestoresEveryRegister) {
  cluster c(cfg_of(proto::persistent_policy(), 3));
  for (std::uint32_t k = 0; k < 12; ++k) {
    c.write(process_id{0}, k, value_of_u32(3000 + k));
  }
  // p2 crashes and recovers: its replica state must come back for all keys
  // it adopted (recovery replays every (written) record).
  c.submit_crash(process_id{2}, c.now());
  c.run_for(1_ms);
  c.submit_recover(process_id{2}, c.now());
  ASSERT_TRUE(c.run_until_idle());
  std::size_t restored = 0;
  for (std::uint32_t k = 0; k < 12; ++k) {
    if (!(c.core_of(process_id{2}).replica_tag(k) == initial_tag)) ++restored;
  }
  // p2 may have missed some quorums, but the store replay must restore
  // everything it logged — in a fault-free prefix that is every key.
  EXPECT_GT(restored, 8u);
  const auto verdict = history::check_persistent_atomicity_per_key(c.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(KeyedRecovery, WriterCrashMidBatchFinishesAllPrelogsOnRecovery) {
  // Persistent policy: the writer pre-logs (writing, k) for every key of the
  // batch before round 2. Crashing between pre-log and completion must make
  // recovery finish the write for every pre-logged register.
  cluster c(cfg_of(proto::persistent_policy(), 3, 21));
  std::vector<proto::write_op> ops;
  for (std::uint32_t k = 0; k < 6; ++k) ops.push_back({k, value_of_u32(500 + k)});
  const auto b = c.submit_write_batch(process_id{0}, ops, 0);
  // Crash the writer while the batch is in flight (before it can finish).
  c.submit_crash(process_id{0}, 300_us);
  c.run_for(5_ms);
  EXPECT_FALSE(c.result(b).completed);
  c.submit_recover(process_id{0}, c.now());
  ASSERT_TRUE(c.run_until_idle());
  // If the pre-logs were written before the crash, recovery re-ran round 2
  // and the values are now everywhere; otherwise the registers stay initial.
  // Either way every projection must be atomic.
  const auto verdict = history::check_persistent_atomicity_per_key(c.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
  // The recovered writer must agree with the cluster on every register.
  for (std::uint32_t k = 0; k < 6; ++k) {
    const value v = c.read(process_id{1}, k);
    EXPECT_EQ(c.read(process_id{0}, k), v) << "reg " << k;
  }
}

// ---------- Batch-aware retransmission (end to end) ----------

TEST(KeyedRetransmission, TrimmedBatchRepeatsStayAtomicAndSendFewerBytes) {
  // Lossy network, batched keyed traffic, short retransmission period: the
  // trimmed policy must (a) preserve per-key atomicity and completion, and
  // (b) put fewer bytes on the wire than full-batch repeats. One seed could
  // flip (b) by luck — the message streams diverge after the first trimmed
  // repeat, re-rolling every later drop coin — so compare an aggregate.
  auto run = [](bool trim, std::uint64_t seed, std::uint64_t* bytes) {
    cluster_config cfg = cfg_of(proto::persistent_policy(), 5, seed);
    cfg.policy.retransmit_delay = 2_ms;
    cfg.policy.trim_batch_retransmit = trim;
    cfg.net.drop_probability = 0.15;
    cluster c(cfg);
    // Batched traffic whose key sets only partly overlap (random 6-of-12
    // subsets): racing batches adopt some registers and not others at each
    // replica, which is what makes per-register ack coverage diverge and
    // gives the trimmed repeats something to drop.
    sim::kv_workload_config wc;
    wc.n = 5;
    wc.key_count = 12;
    wc.batch_size = 6;
    wc.ops = 60;
    wc.read_fraction = 0.5;
    wc.mean_gap = 400_us;  // faster than the cluster absorbs: ops race
    wc.value_bytes = 256;  // realistic field size: trimmed entries drop real payload
    wc.seed = seed;
    std::vector<cluster::op_handle> handles;
    std::vector<proto::write_op> batch_ops;
    std::vector<register_id> batch_regs;
    for (const sim::kv_op& op : sim::make_kv_workload(wc)) {
      if (op.is_read) {
        batch_regs.clear();
        for (const auto& e : op.entries) batch_regs.push_back(e.reg);
        handles.push_back(c.submit_read_batch(op.p, batch_regs, op.at));
      } else {
        batch_ops.clear();
        for (const auto& e : op.entries) batch_ops.push_back({e.reg, e.val});
        handles.push_back(c.submit_write_batch(op.p, batch_ops, op.at));
      }
    }
    EXPECT_TRUE(c.run_until_idle(100'000'000));
    for (const auto h : handles) EXPECT_TRUE(c.result(h).completed);
    const auto verdict = history::check_persistent_atomicity_per_key(c.events());
    EXPECT_TRUE(verdict.ok) << (trim ? "trimmed" : "full") << ": "
                            << verdict.explanation;
    *bytes = c.network().bytes_sent();
  };
  std::uint64_t trimmed_total = 0;
  std::uint64_t full_total = 0;
  for (const std::uint64_t seed : {101ull, 102ull, 103ull}) {
    std::uint64_t b = 0;
    run(true, seed, &b);
    trimmed_total += b;
    run(false, seed, &b);
    full_total += b;
  }
  EXPECT_LT(trimmed_total, full_total);
}

}  // namespace
}  // namespace remus::core

// ---------- Negative keyed histories ----------

namespace remus::history {
namespace {

using core::cluster;

// Hand-built: register 2's projection has a new/old read inversion (two
// sequential reads return opposite-ordered writes); register 1 is clean.
history_log inversion_on_register_two() {
  history_log h;
  time_ns t = 0;
  auto ev = [&](event_kind k, std::uint32_t p, value v, register_id reg) {
    h.push_back(event{k, process_id{p}, std::move(v), t += 1000, reg});
  };
  // Register 1: a clean write/read pair.
  ev(event_kind::invoke_write, 0, value_of_u32(10), 1);
  ev(event_kind::reply_write, 0, {}, 1);
  ev(event_kind::invoke_read, 1, {}, 1);
  ev(event_kind::reply_read, 1, value_of_u32(10), 1);
  // Register 2: w(1), w(2) sequentially; then r->2 followed by r->1.
  ev(event_kind::invoke_write, 0, value_of_u32(1), 2);
  ev(event_kind::reply_write, 0, {}, 2);
  ev(event_kind::invoke_write, 0, value_of_u32(2), 2);
  ev(event_kind::reply_write, 0, {}, 2);
  ev(event_kind::invoke_read, 1, {}, 2);
  ev(event_kind::reply_read, 1, value_of_u32(2), 2);
  ev(event_kind::invoke_read, 1, {}, 2);
  ev(event_kind::reply_read, 1, value_of_u32(1), 2);
  return h;
}

TEST(KeyedNegative, HandBuiltInversionRejectedNamingTheRegister) {
  const auto h = inversion_on_register_two();
  ASSERT_TRUE(check_well_formed(h).ok);
  for (const auto c : {criterion::persistent, criterion::transient}) {
    const auto verdict = check_atomicity_per_key(h, c);
    EXPECT_FALSE(verdict.ok);
    EXPECT_FALSE(verdict.usage_error);
    EXPECT_EQ(verdict.failing_key, 2u);
    EXPECT_NE(verdict.explanation.find("register 2"), std::string::npos)
        << verdict.explanation;
    EXPECT_GT(verdict.explanation.size(), 20u) << "explanation must be meaningful";
  }
  // The clean projection alone passes: the failure is genuinely per-key.
  EXPECT_TRUE(check_atomicity(project_key(h, 1), criterion::persistent).ok);
  EXPECT_FALSE(check_atomicity(project_key(h, 2), criterion::persistent).ok);
}

TEST(KeyedNegative, HandBuiltStaleReadAfterCrashRejected) {
  // Register 7: w(1) completes, then w(2) completes, the writer crashes and
  // recovers, and a later read returns the overwritten value 1. Register 3
  // stays clean. Persistent atomicity must reject register 7's projection.
  history_log h;
  time_ns t = 0;
  auto ev = [&](event_kind k, std::uint32_t p, value v, register_id reg) {
    h.push_back(event{k, process_id{p}, std::move(v), t += 1000, reg});
  };
  ev(event_kind::invoke_write, 0, value_of_u32(301), 3);
  ev(event_kind::reply_write, 0, {}, 3);
  ev(event_kind::invoke_write, 1, value_of_u32(1), 7);
  ev(event_kind::reply_write, 1, {}, 7);
  ev(event_kind::invoke_write, 1, value_of_u32(2), 7);
  ev(event_kind::reply_write, 1, {}, 7);
  h.push_back(event{event_kind::crash, process_id{1}, {}, t += 1000});
  h.push_back(event{event_kind::recover, process_id{1}, {}, t += 1000});
  ev(event_kind::invoke_read, 0, {}, 7);
  ev(event_kind::reply_read, 0, value_of_u32(1), 7);
  ASSERT_TRUE(check_well_formed(h).ok);
  const auto verdict = check_persistent_atomicity_per_key(h);
  EXPECT_FALSE(verdict.ok);
  EXPECT_EQ(verdict.failing_key, 7u);
  EXPECT_NE(verdict.explanation.find("register 7"), std::string::npos);
}

TEST(KeyedNegative, MutatedRealHistoriesRejected) {
  // Mutation-generated: run a real keyed workload, then swap a completed
  // read's value for a value written on a *different* register. Write
  // values are globally unique, so the mutated projection contains a read
  // of a never-written value — the checker must reject it (and say why).
  cluster::op_handle dummy{};
  (void)dummy;
  core::cluster_config cfg;
  cfg.n = 3;
  cfg.policy = proto::persistent_policy();
  cfg.seed = 5;
  core::cluster c(cfg);
  rng r(99);
  const auto workload = sim::make_kv_workload([] {
    sim::kv_workload_config wc;
    wc.n = 3;
    wc.key_count = 4;
    wc.read_fraction = 0.5;
    wc.ops = 60;
    wc.seed = 3;
    return wc;
  }());
  for (const auto& op : workload) {
    if (op.is_read) {
      c.submit_read(op.p, op.entries[0].reg, op.at);
    } else {
      c.submit_write(op.p, op.entries[0].reg, op.entries[0].val, op.at);
    }
  }
  ASSERT_TRUE(c.run_until_idle());
  const history_log h = c.events();
  ASSERT_TRUE(check_persistent_atomicity_per_key(h).ok);

  int mutations = 0;
  for (int trial = 0; trial < 40 && mutations < 8; ++trial) {
    history_log mutated = h;
    // Pick a completed non-initial read and a write on a different register.
    std::vector<std::size_t> reads;
    std::vector<std::size_t> writes;
    for (std::size_t i = 0; i < mutated.size(); ++i) {
      if (mutated[i].kind == event_kind::reply_read && !mutated[i].v.is_initial()) {
        reads.push_back(i);
      }
      if (mutated[i].kind == event_kind::invoke_write) writes.push_back(i);
    }
    if (reads.empty() || writes.empty()) break;
    const std::size_t ri = reads[r.next_below(reads.size())];
    const std::size_t wi = writes[r.next_below(writes.size())];
    if (mutated[wi].reg == mutated[ri].reg) continue;  // need a foreign value
    mutated[ri].v = mutated[wi].v;
    ++mutations;
    const auto verdict = check_persistent_atomicity_per_key(mutated);
    EXPECT_FALSE(verdict.ok) << "mutated read at " << ri << " accepted";
    EXPECT_FALSE(verdict.usage_error);
    EXPECT_EQ(verdict.failing_key, mutated[ri].reg);
    EXPECT_NE(verdict.explanation.find("never-written"), std::string::npos)
        << verdict.explanation;
  }
  EXPECT_GE(mutations, 5) << "mutation generator must produce real cases";
}

TEST(KeyedProjection, KeysAndProjectionsPartitionTheHistory) {
  const auto h = inversion_on_register_two();
  const auto keys = keys_of(h);
  ASSERT_EQ(keys, (std::vector<register_id>{1, 2}));
  std::size_t op_events = 0;
  for (const auto k : keys) {
    const auto proj = project_key(h, k);
    EXPECT_TRUE(check_well_formed(proj).ok);
    for (const auto& e : proj) {
      if (e.is_invoke() || e.is_reply()) {
        EXPECT_EQ(e.reg, k);
        ++op_events;
      }
    }
  }
  EXPECT_EQ(op_events, h.size());  // no crash events in this history
}

}  // namespace
}  // namespace remus::history
