// Kill-and-recover property tests for the WAL engine.
//
// Store level: a scripted op sequence is killed at EVERY store boundary —
// clean (the durable image exactly at the boundary), torn (a strict prefix
// of the next op's in-flight frames appended), and corrupt (the torn prefix
// bit-flipped, or stray garbage after the durable bytes). Recovery from the
// damaged image must land on the boundary state plus some frame-aligned
// prefix of the in-flight append: a single-frame store is lost whole or kept
// whole, a store_and_obsolete batch can surface its record without some of
// its trailing tombstones (safe — tombstones are pure compaction, and the
// record always precedes them), and no frame is ever half-applied nor any
// checksum-failing bytes surfaced (per-key atomicity at the storage layer).
//
// Cluster level: seeded simulated runs under corrupt_tail crashes, checked
// with the same history/keyed and tag-order checkers the scenario fuzzer
// uses, plus a quiesced audit read of every key — and a bounded-recovery
// assertion that replay I/O tracks live state, not the number of stores
// ever issued.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/value.h"
#include "core/cluster.h"
#include "core/scenario_runner.h"
#include "history/keyed.h"
#include "history/tag_order.h"
#include "sim/scenario.h"
#include "storage/corruption_injector.h"
#include "storage/wal_format.h"
#include "storage/wal_store.h"

namespace remus::storage {
namespace {

struct key_less {
  bool operator()(record_key a, record_key b) const {
    if (a.area != b.area) return a.area < b.area;
    return a.reg < b.reg;
  }
};
using model_map = std::map<record_key, bytes, key_less>;

model_map state_of(wal_store& st) {
  model_map out;
  for (record_area area : {record_area::writing, record_area::written,
                           record_area::recovered}) {
    st.for_each(area, [&](register_id reg, const bytes& v) {
      out[{area, reg}] = v;
    });
  }
  return out;
}

struct scripted_op {
  enum { store, erase, store_obsolete } what = store;
  record_key key;
  bytes payload;
  std::vector<record_key> obsolete;
};

std::vector<scripted_op> make_script(rng& r, std::uint32_t n) {
  std::vector<scripted_op> script;
  for (std::uint32_t i = 0; i < n; ++i) {
    scripted_op op;
    static constexpr record_area areas[] = {record_area::writing,
                                            record_area::written,
                                            record_area::recovered};
    op.key = {areas[r.next_below(3)], static_cast<register_id>(r.next_below(5))};
    const double dice = r.next_unit();
    if (dice < 0.12) {
      op.what = scripted_op::erase;
    } else if (dice < 0.3) {
      op.what = scripted_op::store_obsolete;
      for (std::uint64_t j = r.next_below(3); j > 0; --j) {
        op.obsolete.push_back(
            {areas[r.next_below(3)], static_cast<register_id>(r.next_below(5))});
      }
    }
    if (op.what != scripted_op::erase) {
      op.payload.resize(r.next_below(24));
      for (auto& x : op.payload) x = static_cast<std::uint8_t>(r.next_below(256));
    }
    script.push_back(std::move(op));
  }
  return script;
}

void apply(wal_store& st, const scripted_op& op) {
  switch (op.what) {
    case scripted_op::store:
      st.store(op.key, op.payload);
      break;
    case scripted_op::erase:
      st.erase(op.key);
      break;
    case scripted_op::store_obsolete:
      st.store_and_obsolete(op.key, op.payload, op.obsolete);
      break;
  }
}

void apply(model_map& model, const scripted_op& op) {
  switch (op.what) {
    case scripted_op::store:
      model[op.key] = op.payload;
      break;
    case scripted_op::erase:
      model.erase(op.key);
      break;
    case scripted_op::store_obsolete:
      model[op.key] = op.payload;
      for (const record_key& k : op.obsolete) {
        if (k == op.key) continue;
        model.erase(k);
      }
      break;
  }
}

/// The frame image op `i + 1` would append to the boundary-`i` store — the
/// bytes that are mid-append when the kill lands between the boundaries.
bytes in_flight_frame(const model_map& at_boundary, const scripted_op& next) {
  bytes frame;
  if (next.what == scripted_op::erase) {
    if (at_boundary.count(next.key) == 0) return frame;  // no-op, no append
    append_wal_frame(frame, wal_frame_kind::tombstone, next.key, {});
    return frame;
  }
  append_wal_frame(frame, wal_frame_kind::record, next.key, next.payload);
  if (next.what == scripted_op::store_obsolete) {
    for (const record_key& k : next.obsolete) {
      if (k == next.key || at_boundary.count(k) == 0) continue;
      append_wal_frame(frame, wal_frame_kind::tombstone, k, {});
    }
  }
  return frame;
}

TEST(WalRecoveryProperty, KillAtEveryStoreBoundaryRecoversTheBoundaryState) {
  wal_store_config cfg;
  cfg.compact_min_bytes = 192;  // force real compactions mid-script
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    rng r(seed);
    const std::vector<scripted_op> script = make_script(r, 40);

    // One reference pass records the durable image at every boundary.
    std::vector<std::pair<bytes, bytes>> images;  // (snapshot, log) per boundary
    std::vector<model_map> models;
    {
      auto owned = std::make_unique<memory_media>();
      memory_media* media = owned.get();
      wal_store st(std::move(owned), cfg);
      model_map model;
      images.emplace_back(media->snapshot, media->log);
      models.push_back(model);
      for (const scripted_op& op : script) {
        apply(st, op);
        apply(model, op);
        images.emplace_back(media->snapshot, media->log);
        models.push_back(model);
      }
    }

    for (std::size_t boundary = 0; boundary < images.size(); ++boundary) {
      // Clean kill: the image exactly as the boundary left it.
      {
        auto media = std::make_unique<memory_media>();
        media->snapshot = images[boundary].first;
        media->log = images[boundary].second;
        wal_store rec(std::move(media), cfg);
        EXPECT_EQ(state_of(rec), models[boundary])
            << "seed " << seed << " boundary " << boundary << " clean";
      }
      if (boundary == script.size()) continue;
      const bytes frame = in_flight_frame(models[boundary], script[boundary]);
      if (frame.empty()) continue;
      // The acceptable post-kill states: the boundary state plus the first
      // j frames of the in-flight append, for every j (damage can stop the
      // scanner at any frame boundary within the torn prefix).
      std::vector<model_map> acceptable{models[boundary]};
      {
        model_map partial = models[boundary];
        scan_wal(frame, [&](const wal_frame& f) {
          if (f.kind == wal_frame_kind::record) {
            partial[f.key] = bytes(f.payload.begin(), f.payload.end());
          } else {
            partial.erase(f.key);
          }
          acceptable.push_back(partial);
        });
      }
      // Torn and corrupt kills mid-append of the next op: every strict
      // prefix length once, with deterministic extra damage on some.
      rng damage(seed * 1'000'003 + boundary);
      for (std::size_t keep = 0; keep < frame.size(); ++keep) {
        auto media = std::make_unique<memory_media>();
        media->snapshot = images[boundary].first;
        media->log = images[boundary].second;
        media->log.insert(media->log.end(), frame.begin(), frame.begin() + keep);
        const std::size_t durable = images[boundary].second.size();
        if (keep > 0 && damage.chance(0.4)) {
          flip_random_bit_after(media->log, damage, durable);
        }
        if (damage.chance(0.3)) {
          append_garbage(media->log, damage, 1 + damage.next_below(16));
        }
        wal_store rec(std::move(media), cfg);  // must not throw
        const model_map got = state_of(rec);
        EXPECT_NE(std::find(acceptable.begin(), acceptable.end(), got),
                  acceptable.end())
            << "seed " << seed << " boundary " << boundary << " keep " << keep;
      }
    }
  }
}

TEST(WalRecoveryProperty, RepeatedKillsNeverLoseDurableState) {
  // Crash-append-crash chains: each recovery truncates the damaged tail, so
  // the next append lands on the valid prefix and durable records survive
  // arbitrarily many torn kills.
  rng r(7);
  auto owned = std::make_unique<memory_media>();
  memory_media* media = owned.get();
  wal_store st(std::move(owned), {});
  model_map model;
  for (int round = 0; round < 50; ++round) {
    const record_key key{record_area::written,
                         static_cast<register_id>(r.next_below(4))};
    bytes payload(1 + r.next_below(16));
    for (auto& x : payload) x = static_cast<std::uint8_t>(r.next_below(256));
    st.store(key, payload);
    model[key] = payload;
    // Kill with a torn, possibly corrupted frame for a record that must NOT
    // surface.
    bytes frame;
    append_wal_frame(frame, wal_frame_kind::record,
                     {record_area::written, 99}, bytes(8, 0xEE));
    const std::size_t keep = 1 + r.next_below(frame.size() - 1);
    media->log.insert(media->log.end(), frame.begin(), frame.begin() + keep);
    if (r.chance(0.5)) flip_random_bit_after(media->log, r, media->log.size() - keep);
    st.reopen();
    ASSERT_EQ(state_of(st), model) << "round " << round;
  }
}

}  // namespace
}  // namespace remus::storage

namespace remus::core {
namespace {

/// A corrupt_tail-heavy scenario spec over the WAL engine.
scenario_spec corrupt_spec(std::uint64_t seed, std::uint32_t shards, char policy) {
  rng r(seed);
  sim::adversarial_config acfg;
  acfg.shards = shards;
  acfg.n = 3;
  acfg.units = 4;
  acfg.horizon = 6'000'000;
  acfg.min_down = 200'000;
  acfg.max_down = 2'000'000;
  acfg.recovery_skew = 400'000;
  acfg.gray_max_delay = 1'000'000;
  acfg.weights[static_cast<std::size_t>(sim::fault_family::corrupt_tail)] = 4.0;
  acfg.weights[static_cast<std::size_t>(sim::fault_family::migration)] = 0.0;

  scenario_spec spec;
  spec.plan = sim::make_adversarial_plan(acfg, r);
  spec.key_count = 6;
  spec.ops = 60;
  spec.mean_gap = 150'000;
  spec.workload_seed = seed * 1'000'003;
  spec.cluster_seed = seed * 998'244'353;
  spec.policy = policy;
  return spec;
}

TEST(WalRecoveryProperty, CorruptTailCrashesUnderLoadStayAtomicPerKey) {
  // run_scenario drives the WAL engine (cfg.base.wal_storage) with the
  // corrupt_crash fault family, runs the quiesced audit read over every
  // key, and applies the per-key atomicity and tag-order checkers.
  std::uint64_t corrupt_events = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const scenario_spec spec =
        corrupt_spec(seed, 1 + static_cast<std::uint32_t>(seed % 2),
                     seed % 2 == 0 ? 'p' : 't');
    for (const sim::scenario_event& e : spec.plan.events) {
      corrupt_events += e.kind == sim::scenario_kind::corrupt_crash ? 1 : 0;
    }
    const scenario_outcome out = run_scenario(spec);
    ASSERT_TRUE(out.ok()) << "seed " << seed << ": " << out.failure << "\nREPRO "
                          << spec.encode();
    EXPECT_GT(out.keys_checked, 0u) << "seed " << seed;
  }
  EXPECT_GT(corrupt_events, 20u);
}

TEST(WalRecoveryProperty, ClusterRecoveryReplayIsBoundedByLiveState) {
  cluster_config cfg;
  cfg.n = 3;
  cfg.policy = proto::persistent_policy();
  cfg.seed = 99;
  cfg.wal_storage = true;
  cfg.wal_compact_min_bytes = 2 * 1024;
  cluster c(cfg);

  // Heavy single-writer load over a small key set: the log would grow
  // without bound if compaction (and the pre-log obsolescence piggyback)
  // did not keep replay proportional to live state.
  rng r(5);
  time_ns at = 0;
  for (int i = 0; i < 800; ++i) {
    at += 30'000;
    c.submit_write(process_id{0}, static_cast<register_id>(i % 4),
                   value_of_u32(static_cast<std::uint32_t>(i)), at);
  }
  ASSERT_TRUE(c.run_until_idle());

  for (std::uint32_t p = 0; p < cfg.n; ++p) {
    storage::wal_store* wal = c.wal_of(process_id{p});
    ASSERT_NE(wal, nullptr);
    ASSERT_GT(wal->store_count(), 100u) << "process " << p;
    wal->reopen();
    const storage::wal_recovery_stats& rec = wal->last_recovery();
    // Replay I/O is bounded by the compaction threshold (live state plus
    // slack, floored at wal_compact_min_bytes) — not by the hundreds of
    // stores this process served.
    EXPECT_LE(rec.bytes_read, 3 * cfg.wal_compact_min_bytes) << "process " << p;
    EXPECT_LT(rec.frames_replayed, wal->store_count() / 2) << "process " << p;
  }

  // The reopened stores still serve reads correctly.
  for (register_id k = 0; k < 4; ++k) {
    const value v = c.read(process_id{1}, k);
    EXPECT_FALSE(v.data.empty()) << "key " << k;
  }
}

TEST(WalRecoveryProperty, CorruptCrashMidWriteNeverSplitsAKey) {
  // Directed version of the torn-append soundness argument: crash every
  // writer with corrupt_tail style while writes are in flight, recover,
  // then audit with the checkers. Durable (fsync-acked) frames are never
  // damaged, so no corruption or kill point may violate per-key atomicity.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    cluster_config cfg;
    cfg.n = 3;
    cfg.policy = seed % 2 == 0 ? proto::persistent_policy()
                               : proto::transient_policy();
    cfg.seed = seed;
    cfg.wal_storage = true;
    cluster c(cfg);
    rng r(seed * 31);
    time_ns at = 0;
    for (int i = 0; i < 60; ++i) {
      at += 50'000;
      const auto p = process_id{static_cast<std::uint32_t>(r.next_below(3))};
      const auto reg = static_cast<register_id>(r.next_below(3));
      if (r.chance(0.5)) {
        c.submit_write(p, reg, value_of_u32(static_cast<std::uint32_t>(i)), at);
      } else {
        c.submit_read(p, reg, at);
      }
      if (i % 12 == 5) {
        // Land the crash while stores are likely mid-append.
        const auto victim = process_id{static_cast<std::uint32_t>(r.next_below(3))};
        c.submit_crash(victim, at + 10'000, crash_style::corrupt_tail);
        c.submit_recover(victim, at + 400'000);
      }
    }
    ASSERT_TRUE(c.run_until_idle()) << "seed " << seed;
    for (register_id k = 0; k < 3; ++k) {
      c.submit_read(process_id{0}, k, c.now());
    }
    ASSERT_TRUE(c.run_until_idle()) << "seed " << seed;

    const history::criterion crit = cfg.policy.recovery_counter
                                        ? history::criterion::transient
                                        : history::criterion::persistent;
    const history::keyed_check_result atom =
        history::check_atomicity_per_key(c.events(), crit);
    EXPECT_TRUE(atom.ok) << "seed " << seed << ": " << atom.explanation;
    const history::tag_order_result order =
        history::check_tag_order_per_key(c.tagged_operations());
    EXPECT_TRUE(order.ok) << "seed " << seed << ": " << order.explanation;
  }
}

}  // namespace
}  // namespace remus::core
