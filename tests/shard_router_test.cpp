// Sharded-namespace tests: consistent-hash ring determinism and stability,
// routing through independent quorum groups, cross-shard batch split/merge,
// and per-key atomicity of the merged multi-shard history under concurrent
// crashes in several shards at once.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/shard_router.h"
#include "history/keyed.h"
#include "history/tag_order.h"
#include "proto/policy.h"
#include "sim/kv_workload.h"

namespace remus::core {
namespace {

shard_router_config router_cfg(std::uint32_t shards, std::uint32_t n = 3,
                               std::uint64_t seed = 11) {
  shard_router_config cfg;
  cfg.shards = shards;
  cfg.base.n = n;
  cfg.base.policy = proto::persistent_policy();
  cfg.base.seed = seed;
  return cfg;
}

// ---------- Hash ring ----------

TEST(HashRing, DeterministicAcrossInstances) {
  const hash_ring a(4, 64);
  const hash_ring b(4, 64);
  for (register_id reg = 0; reg < 10'000; ++reg) {
    ASSERT_EQ(a.shard_of(reg), b.shard_of(reg)) << "register " << reg;
  }
}

TEST(HashRing, SeedIndependentPlacement) {
  // Placement must not depend on any run configuration: two routers with
  // different seeds route every key identically.
  shard_router r1(router_cfg(4, 3, /*seed=*/1));
  shard_router r2(router_cfg(4, 3, /*seed=*/999));
  for (register_id reg = 0; reg < 2'000; ++reg) {
    ASSERT_EQ(r1.shard_of(reg), r2.shard_of(reg));
  }
}

TEST(HashRing, EveryShardOwnsAFairSlice) {
  const std::uint32_t shards = 8;
  const hash_ring ring(shards, 64);
  std::vector<std::uint32_t> owned(shards, 0);
  const std::uint32_t keys = 64 * 1024;
  for (register_id reg = 0; reg < keys; ++reg) owned[ring.shard_of(reg)]++;
  for (std::uint32_t s = 0; s < shards; ++s) {
    // Perfect balance is keys/shards; virtual nodes keep every shard within
    // a loose 2x band of it (the classic consistent-hashing concentration).
    EXPECT_GT(owned[s], keys / shards / 2) << "shard " << s << " underloaded";
    EXPECT_LT(owned[s], keys / shards * 2) << "shard " << s << " overloaded";
  }
}

TEST(HashRing, GrowingTheRingMovesAboutOneOverSKeys) {
  // Consistent hashing's point: going S -> S+1 only remaps keys whose
  // successor point now belongs to the new shard — ~1/(S+1) of them —
  // while modulo hashing would remap almost everything.
  const std::uint32_t keys = 32 * 1024;
  for (std::uint32_t s : {2u, 4u, 8u}) {
    const hash_ring before(s, 64);
    const hash_ring after(s + 1, 64);
    std::uint32_t moved = 0;
    for (register_id reg = 0; reg < keys; ++reg) {
      const std::uint32_t was = before.shard_of(reg);
      const std::uint32_t is = after.shard_of(reg);
      if (was == is) continue;
      ++moved;
      // A key that moves must move *to the new shard*: old shards never
      // trade keys among themselves when one shard is added.
      EXPECT_EQ(is, s) << "register " << reg << " moved between old shards";
    }
    const double expected = static_cast<double>(keys) / (s + 1);
    EXPECT_GT(moved, 0u);
    EXPECT_LT(static_cast<double>(moved), 2.0 * expected)
        << "grow " << s << "->" << s + 1 << " moved " << moved;
  }
}

TEST(HashRing, RejectsEmptyConfigurations) {
  EXPECT_THROW(hash_ring(0, 64), driver_error);
  EXPECT_THROW(hash_ring(4, 0), driver_error);
}

// ---------- Routing & merged results ----------

TEST(ShardRouter, WriteThenReadRoundTripsAcrossShards) {
  shard_router r(router_cfg(4));
  // Pick registers landing on distinct shards so the test exercises several
  // quorum groups.
  std::set<std::uint32_t> seen;
  std::vector<register_id> regs;
  for (register_id reg = 0; regs.size() < 4 && reg < 1000; ++reg) {
    if (seen.insert(r.shard_of(reg)).second) regs.push_back(reg);
  }
  ASSERT_EQ(regs.size(), 4u);
  for (std::size_t i = 0; i < regs.size(); ++i) {
    r.write(process_id{0}, regs[i], value_of_u32(static_cast<std::uint32_t>(100 + i)));
  }
  for (std::size_t i = 0; i < regs.size(); ++i) {
    EXPECT_EQ(value_as_u32(r.read(process_id{1}, regs[i])),
              static_cast<std::uint32_t>(100 + i));
  }
  const auto verdict = history::check_persistent_atomicity_per_key(r.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
  EXPECT_EQ(verdict.keys_checked, regs.size());
}

TEST(ShardRouter, SingleShardRouterMatchesClusterSemantics) {
  shard_router r(router_cfg(1));
  const auto h = r.submit_write(process_id{0}, 7, value_of_u32(42), 0);
  ASSERT_TRUE(r.run_until_idle());
  const auto& res = r.result(h);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.reg, 7u);
  EXPECT_EQ(value_as_u32(res.v), 42u);
  EXPECT_GT(res.completed_at, res.invoked_at);
}

TEST(ShardRouter, CrossShardBatchSplitsAndMergesInOriginalOrder) {
  shard_router r(router_cfg(4));
  // A batch spanning many registers necessarily touches several shards.
  std::vector<proto::write_op> ops;
  std::vector<register_id> regs;
  for (register_id reg = 0; reg < 12; ++reg) {
    ops.push_back({reg, value_of_u32(1000 + reg)});
    regs.push_back(reg);
  }
  std::set<std::uint32_t> shards_touched;
  for (const auto& o : ops) shards_touched.insert(r.shard_of(o.reg));
  ASSERT_GT(shards_touched.size(), 1u);

  const auto wh = r.submit_write_batch(process_id{0}, ops, 0);
  ASSERT_TRUE(r.run_until_idle());
  const auto& wres = r.result(wh);
  ASSERT_TRUE(wres.completed);
  ASSERT_EQ(wres.batch_result.size(), ops.size());
  // Results come back in the caller's original key order regardless of how
  // the split grouped them by shard.
  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(wres.batch_result[i].reg, ops[i].reg);
    EXPECT_EQ(wres.batch_result[i].val, ops[i].val);
  }

  const auto rh = r.submit_read_batch(process_id{1}, regs, r.now());
  ASSERT_TRUE(r.run_until_idle());
  const auto& rres = r.result(rh);
  ASSERT_TRUE(rres.completed);
  ASSERT_EQ(rres.batch_result.size(), regs.size());
  for (std::size_t i = 0; i < regs.size(); ++i) {
    EXPECT_EQ(rres.batch_result[i].reg, regs[i]);
    EXPECT_EQ(rres.batch_result[i].val, ops[i].val) << "register " << regs[i];
  }

  const auto verdict = history::check_persistent_atomicity_per_key(r.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(ShardRouter, MergedHistoryUsesDisjointGlobalProcessIds) {
  shard_router r(router_cfg(3));
  // Crash local process 0 in shards 0 and 1: the merged history must show
  // them as two different global processes, or one shard's crash would cut
  // short the other's pending operations in every projection.
  r.submit_crash(0, process_id{0}, 1_ms);
  r.submit_crash(1, process_id{0}, 1_ms);
  r.submit_recover(0, process_id{0}, 5_ms);
  r.submit_recover(1, process_id{0}, 5_ms);
  ASSERT_TRUE(r.run_until_idle());
  std::set<std::uint32_t> crashed;
  for (const auto& e : r.events()) {
    if (e.kind == history::event_kind::crash) crashed.insert(e.p.index);
  }
  EXPECT_EQ(crashed, (std::set<std::uint32_t>{
                         r.global_process(0, process_id{0}).index,
                         r.global_process(1, process_id{0}).index}));
}

TEST(ShardRouter, DroppedSubOpDoesNotFreezeAnInFlightSubBatch) {
  shard_router r(router_cfg(2));
  // Two registers on different shards.
  register_id reg_a = 0;
  register_id reg_b = 0;
  for (register_id reg = 1; reg < 1000; ++reg) {
    if (r.shard_of(reg) != r.shard_of(reg_a)) {
      reg_b = reg;
      break;
    }
  }
  ASSERT_NE(r.shard_of(reg_a), r.shard_of(reg_b));

  // Queue the batch's reg_a half behind a filler write on reg_a's shard,
  // then crash that client (no recovery): the queued half is dropped with
  // it, while reg_b's shard serves its half of the batch normally.
  r.submit_write(process_id{0}, reg_a, value_of_u32(9), 0);
  const auto h = r.submit_write_batch(
      process_id{0}, {{reg_a, value_of_u32(1)}, {reg_b, value_of_u32(2)}}, 0);
  r.submit_crash(r.shard_of(reg_a), process_id{0}, 10_us);

  // Observe the merged result while reg_b's sub-batch is still in flight:
  // the dropped half must not freeze the merge.
  r.run_for(50_us);
  {
    const auto& mid = r.result(h);
    EXPECT_TRUE(mid.dropped);
    EXPECT_FALSE(mid.completed);
  }
  ASSERT_TRUE(r.run_until_idle());
  const auto& res = r.result(h);
  EXPECT_TRUE(res.dropped);
  EXPECT_FALSE(res.completed);  // one half never ran
  ASSERT_EQ(res.batch_result.size(), 2u);
  // reg_b's completed half must be visible despite the earlier peek.
  EXPECT_EQ(res.batch_result[1].reg, reg_b);
  EXPECT_EQ(res.batch_result[1].val, value_of_u32(2));
  EXPECT_GT(res.completed_at, 0);
}

// ---------- Merged multi-shard histories under faults ----------

TEST(ShardRouter, AtomicPerKeyWithConcurrentCrashesInTwoShards) {
  shard_router r(router_cfg(3, /*n=*/3, /*seed=*/7));

  // A keyed workload spread over every shard.
  sim::kv_workload_config wc;
  wc.n = 3;
  wc.key_count = 48;
  wc.ops = 300;
  wc.read_fraction = 0.5;
  wc.seed = 7;
  const auto workload = sim::make_kv_workload(wc);
  std::vector<shard_router::op_handle> handles;
  for (const auto& op : workload) {
    if (op.is_read) {
      handles.push_back(r.submit_read(op.p, op.entries[0].reg, op.at));
    } else {
      handles.push_back(
          r.submit_write(op.p, op.entries[0].reg, op.entries[0].val, op.at));
    }
  }

  // Concurrent faults in two shards at once (a majority stays up in each):
  // shard 0 loses process 1, shard 1 loses process 2, overlapping windows.
  r.submit_crash(0, process_id{1}, 2_ms);
  r.submit_recover(0, process_id{1}, 9_ms);
  r.submit_crash(1, process_id{2}, 3_ms);
  r.submit_recover(1, process_id{2}, 8_ms);

  ASSERT_TRUE(r.run_until_idle(200'000'000));

  std::uint64_t completed = 0;
  for (const auto h : handles) completed += r.result(h).completed ? 1 : 0;
  EXPECT_GT(completed, workload.size() / 2);

  const auto verdict = history::check_persistent_atomicity_per_key(r.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
  EXPECT_GT(verdict.keys_checked, 1u);

  const auto tags = history::check_tag_order_per_key(r.tagged_operations());
  EXPECT_TRUE(tags.ok) << tags.explanation;
}

TEST(ShardRouter, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    shard_router r(router_cfg(2, 3, seed));
    sim::kv_workload_config wc;
    wc.n = 3;
    wc.key_count = 16;
    wc.ops = 120;
    wc.seed = seed;
    for (const auto& op : sim::make_kv_workload(wc)) {
      if (op.is_read) {
        r.submit_read(op.p, op.entries[0].reg, op.at);
      } else {
        r.submit_write(op.p, op.entries[0].reg, op.entries[0].val, op.at);
      }
    }
    EXPECT_TRUE(r.run_until_idle());
    return r.events();
  };
  const auto a = run(21);
  const auto b = run(21);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].p, b[i].p);
    EXPECT_EQ(a[i].reg, b[i].reg);
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].v, b[i].v);
  }
}

// ---------- Shard-aware workload generation ----------

TEST(KvWorkload, ShardLocalBatchesNeverSpanShards) {
  const hash_ring ring(4, 64);
  sim::kv_workload_config wc;
  wc.n = 3;
  wc.key_count = 256;
  wc.batch_size = 8;
  wc.ops = 200;
  wc.shard_map = [&ring](register_id reg) { return ring.shard_of(reg); };
  wc.shard_local_batches = true;
  const auto ops = sim::make_kv_workload(wc);
  ASSERT_EQ(ops.size(), 200u);
  for (const auto& op : ops) {
    ASSERT_FALSE(op.entries.empty());
    const std::uint32_t home = ring.shard_of(op.entries[0].reg);
    for (const auto& e : op.entries) {
      EXPECT_EQ(ring.shard_of(e.reg), home) << "batch spans shards";
    }
  }
}

}  // namespace
}  // namespace remus::core
