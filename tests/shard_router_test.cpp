// Sharded-namespace tests: consistent-hash ring determinism and stability,
// routing through independent quorum groups, cross-shard batch split/merge,
// and per-key atomicity of the merged multi-shard history under concurrent
// crashes in several shards at once.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/shard_router.h"
#include "history/keyed.h"
#include "history/tag_order.h"
#include "proto/policy.h"
#include "sim/kv_workload.h"

namespace remus::core {
namespace {

shard_router_config router_cfg(std::uint32_t shards, std::uint32_t n = 3,
                               std::uint64_t seed = 11) {
  shard_router_config cfg;
  cfg.shards = shards;
  cfg.base.n = n;
  cfg.base.policy = proto::persistent_policy();
  cfg.base.seed = seed;
  return cfg;
}

// ---------- Hash ring ----------

TEST(HashRing, DeterministicAcrossInstances) {
  const hash_ring a(4, 64);
  const hash_ring b(4, 64);
  for (register_id reg = 0; reg < 10'000; ++reg) {
    ASSERT_EQ(a.shard_of(reg), b.shard_of(reg)) << "register " << reg;
  }
}

TEST(HashRing, SeedIndependentPlacement) {
  // Placement must not depend on any run configuration: two routers with
  // different seeds route every key identically.
  shard_router r1(router_cfg(4, 3, /*seed=*/1));
  shard_router r2(router_cfg(4, 3, /*seed=*/999));
  for (register_id reg = 0; reg < 2'000; ++reg) {
    ASSERT_EQ(r1.shard_of(reg), r2.shard_of(reg));
  }
}

TEST(HashRing, EveryShardOwnsAFairSlice) {
  const std::uint32_t shards = 8;
  const hash_ring ring(shards, 64);
  std::vector<std::uint32_t> owned(shards, 0);
  const std::uint32_t keys = 64 * 1024;
  for (register_id reg = 0; reg < keys; ++reg) owned[ring.shard_of(reg)]++;
  for (std::uint32_t s = 0; s < shards; ++s) {
    // Perfect balance is keys/shards; virtual nodes keep every shard within
    // a loose 2x band of it (the classic consistent-hashing concentration).
    EXPECT_GT(owned[s], keys / shards / 2) << "shard " << s << " underloaded";
    EXPECT_LT(owned[s], keys / shards * 2) << "shard " << s << " overloaded";
  }
}

TEST(HashRing, GrowingTheRingMovesAboutOneOverSKeys) {
  // Consistent hashing's point: going S -> S+1 only remaps keys whose
  // successor point now belongs to the new shard — ~1/(S+1) of them —
  // while modulo hashing would remap almost everything.
  const std::uint32_t keys = 32 * 1024;
  for (std::uint32_t s : {2u, 4u, 8u}) {
    const hash_ring before(s, 64);
    const hash_ring after(s + 1, 64);
    std::uint32_t moved = 0;
    for (register_id reg = 0; reg < keys; ++reg) {
      const std::uint32_t was = before.shard_of(reg);
      const std::uint32_t is = after.shard_of(reg);
      if (was == is) continue;
      ++moved;
      // A key that moves must move *to the new shard*: old shards never
      // trade keys among themselves when one shard is added.
      EXPECT_EQ(is, s) << "register " << reg << " moved between old shards";
    }
    const double expected = static_cast<double>(keys) / (s + 1);
    EXPECT_GT(moved, 0u);
    EXPECT_LT(static_cast<double>(moved), 2.0 * expected)
        << "grow " << s << "->" << s + 1 << " moved " << moved;
  }
}

TEST(HashRing, RejectsEmptyConfigurations) {
  EXPECT_THROW(hash_ring(0, 64), driver_error);
  EXPECT_THROW(hash_ring(4, 0), driver_error);
  EXPECT_THROW(hash_ring({0, 1, 1}, 64, 0), driver_error);  // duplicate id
  EXPECT_THROW(hash_ring(std::vector<std::uint32_t>{}, 64, 0), driver_error);
}

TEST(HashRing, EpochsStampSnapshotsAndDerivations) {
  const hash_ring r(2, 64);
  EXPECT_EQ(r.epoch(), 0u);
  const hash_ring grown = r.grow(2);
  EXPECT_EQ(grown.epoch(), 1u);
  EXPECT_EQ(grown.shard_count(), 3u);
  EXPECT_TRUE(grown.has_shard(2));
  const hash_ring back = grown.shrink(2);
  EXPECT_EQ(back.epoch(), 2u);
  EXPECT_EQ(back.shard_ids(), r.shard_ids());
  EXPECT_THROW(r.grow(1), driver_error);    // id already present
  EXPECT_THROW(r.shrink(7), driver_error);  // id absent
}

TEST(HashRing, SingleShardRingOwnsEverythingAndCannotShrink) {
  const hash_ring one(1, 64);
  for (register_id reg = 0; reg < 4'096; ++reg) {
    ASSERT_EQ(one.shard_of(reg), 0u);
  }
  EXPECT_THROW(one.shrink(0), driver_error);
  // Growing 1 -> 2 moves roughly half the keys, all onto the new shard.
  const hash_ring two = one.grow(1);
  const auto d = hash_ring::diff(one, two);
  std::uint32_t moved = 0;
  for (register_id reg = 0; reg < 32'768; ++reg) {
    if (d.moved(reg)) {
      ++moved;
      EXPECT_EQ(two.shard_of(reg), 1u);
    }
  }
  EXPECT_GT(moved, 32'768 / 4);
  EXPECT_LT(moved, 3 * 32'768 / 4);
}

TEST(HashRing, ShrinkMovesOnlyTheRemovedShardsKeys) {
  const hash_ring before(4, 64);
  const hash_ring after = before.shrink(2);
  const std::uint32_t keys = 32 * 1024;
  std::uint32_t moved = 0;
  for (register_id reg = 0; reg < keys; ++reg) {
    const std::uint32_t was = before.shard_of(reg);
    const std::uint32_t is = after.shard_of(reg);
    if (was != 2) {
      // Survivors keep every key they had: removal never shuffles them.
      ASSERT_EQ(is, was) << "register " << reg << " moved between survivors";
    } else {
      ASSERT_NE(is, 2u);
      ++moved;
    }
  }
  // The removed shard owned ~1/4 of the namespace; all of it moved.
  EXPECT_GT(moved, keys / 8);
  EXPECT_LT(moved, keys / 2);
}

TEST(HashRing, DiffMatchesBruteForceOwnershipComparison) {
  for (const auto& [before, after] :
       {std::pair{hash_ring(2, 64), hash_ring(2, 64).grow(2)},
        std::pair{hash_ring(4, 64), hash_ring(4, 64).shrink(1)},
        std::pair{hash_ring(3, 16), hash_ring(3, 16).grow(3)}}) {
    const auto d = hash_ring::diff(before, after);
    EXPECT_FALSE(d.empty());
    for (register_id reg = 0; reg < 32'768; ++reg) {
      const std::uint32_t was = before.shard_of(reg);
      const std::uint32_t is = after.shard_of(reg);
      ASSERT_EQ(d.moved(reg), was != is) << "register " << reg;
      if (const auto* seg = d.segment_of(reg)) {
        ASSERT_EQ(seg->from_shard, was);
        ASSERT_EQ(seg->to_shard, is);
      }
    }
  }
  // Identical snapshots produce an empty delta.
  EXPECT_TRUE(hash_ring::diff(hash_ring(4, 64), hash_ring(4, 64)).empty());
}

TEST(HashRing, DiffOfFullCircleOwnershipChangeMovesEveryKey) {
  // Replacing the only shard changes the owner of the whole circle: the
  // delta degenerates to a single lo == hi segment, which must mean "every
  // key moved", not "none did".
  const hash_ring only_zero(std::vector<std::uint32_t>{0}, 64, 0);
  const hash_ring only_one(std::vector<std::uint32_t>{1}, 64, 0);
  const auto d = hash_ring::diff(only_zero, only_one);
  ASSERT_FALSE(d.empty());
  for (register_id reg = 0; reg < 10'000; ++reg) {
    ASSERT_TRUE(d.moved(reg)) << "register " << reg;
    const auto* seg = d.segment_of(reg);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->from_shard, 0u);
    EXPECT_EQ(seg->to_shard, 1u);
  }
}

// ---------- Routing & merged results ----------

TEST(ShardRouter, WriteThenReadRoundTripsAcrossShards) {
  shard_router r(router_cfg(4));
  // Pick registers landing on distinct shards so the test exercises several
  // quorum groups.
  std::set<std::uint32_t> seen;
  std::vector<register_id> regs;
  for (register_id reg = 0; regs.size() < 4 && reg < 1000; ++reg) {
    if (seen.insert(r.shard_of(reg)).second) regs.push_back(reg);
  }
  ASSERT_EQ(regs.size(), 4u);
  for (std::size_t i = 0; i < regs.size(); ++i) {
    r.write(process_id{0}, regs[i], value_of_u32(static_cast<std::uint32_t>(100 + i)));
  }
  for (std::size_t i = 0; i < regs.size(); ++i) {
    EXPECT_EQ(value_as_u32(r.read(process_id{1}, regs[i])),
              static_cast<std::uint32_t>(100 + i));
  }
  const auto verdict = history::check_persistent_atomicity_per_key(r.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
  EXPECT_EQ(verdict.keys_checked, regs.size());
}

TEST(ShardRouter, SingleShardRouterMatchesClusterSemantics) {
  shard_router r(router_cfg(1));
  const auto h = r.submit_write(process_id{0}, 7, value_of_u32(42), 0);
  ASSERT_TRUE(r.run_until_idle());
  const auto& res = r.result(h);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.reg, 7u);
  EXPECT_EQ(value_as_u32(res.v), 42u);
  EXPECT_GT(res.completed_at, res.invoked_at);
}

TEST(ShardRouter, CrossShardBatchSplitsAndMergesInOriginalOrder) {
  shard_router r(router_cfg(4));
  // A batch spanning many registers necessarily touches several shards.
  std::vector<proto::write_op> ops;
  std::vector<register_id> regs;
  for (register_id reg = 0; reg < 12; ++reg) {
    ops.push_back({reg, value_of_u32(1000 + reg)});
    regs.push_back(reg);
  }
  std::set<std::uint32_t> shards_touched;
  for (const auto& o : ops) shards_touched.insert(r.shard_of(o.reg));
  ASSERT_GT(shards_touched.size(), 1u);

  const auto wh = r.submit_write_batch(process_id{0}, ops, 0);
  ASSERT_TRUE(r.run_until_idle());
  const auto& wres = r.result(wh);
  ASSERT_TRUE(wres.completed);
  ASSERT_EQ(wres.batch_result.size(), ops.size());
  // Results come back in the caller's original key order regardless of how
  // the split grouped them by shard.
  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(wres.batch_result[i].reg, ops[i].reg);
    EXPECT_EQ(wres.batch_result[i].val, ops[i].val);
  }

  const auto rh = r.submit_read_batch(process_id{1}, regs, r.now());
  ASSERT_TRUE(r.run_until_idle());
  const auto& rres = r.result(rh);
  ASSERT_TRUE(rres.completed);
  ASSERT_EQ(rres.batch_result.size(), regs.size());
  for (std::size_t i = 0; i < regs.size(); ++i) {
    EXPECT_EQ(rres.batch_result[i].reg, regs[i]);
    EXPECT_EQ(rres.batch_result[i].val, ops[i].val) << "register " << regs[i];
  }

  const auto verdict = history::check_persistent_atomicity_per_key(r.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

// ---------- Mutation negatives ----------
//
// The scenario fuzzer trusts check_atomicity_per_key to reject bad merged
// multi-shard histories; these tests plant the two classic migration bugs by
// mutating a *real* clean history and assert the checker flags the right key.

TEST(ShardRouter, CheckerRejectsCrossShardValueSwap) {
  shard_router r(router_cfg(2));
  register_id reg_a = 0, reg_b = 0;
  for (register_id reg = 1; reg < 1000; ++reg) {
    if (r.shard_of(reg) != r.shard_of(reg_a)) {
      reg_b = reg;
      break;
    }
  }
  ASSERT_NE(r.shard_of(reg_a), r.shard_of(reg_b));
  r.write(process_id{0}, reg_a, value_of_u32(101));
  r.write(process_id{0}, reg_b, value_of_u32(202));
  EXPECT_EQ(value_as_u32(r.read(process_id{1}, reg_a)), 101u);
  EXPECT_EQ(value_as_u32(r.read(process_id{1}, reg_b)), 202u);
  history::history_log h = r.events();
  ASSERT_TRUE(history::check_persistent_atomicity_per_key(h).ok);

  // Swap the two reads' returned values across the shard boundary — as if a
  // handoff had imported the wrong register's state. Each read now returns
  // a value never written to its key.
  history::event* read_a = nullptr;
  history::event* read_b = nullptr;
  for (history::event& e : h) {
    if (e.kind != history::event_kind::reply_read) continue;
    if (e.reg == reg_a) read_a = &e;
    if (e.reg == reg_b) read_b = &e;
  }
  ASSERT_NE(read_a, nullptr);
  ASSERT_NE(read_b, nullptr);
  std::swap(read_a->v, read_b->v);

  const auto verdict = history::check_persistent_atomicity_per_key(h);
  EXPECT_FALSE(verdict.ok);
  EXPECT_TRUE(verdict.failing_key == reg_a || verdict.failing_key == reg_b)
      << "failing key " << verdict.failing_key;
  EXPECT_FALSE(verdict.explanation.empty());
}

TEST(ShardRouter, CheckerRejectsDroppedWriteBack) {
  shard_router r(router_cfg(2));
  const register_id reg = 5;
  r.write(process_id{0}, reg, value_of_u32(7));
  r.write(process_id{1}, reg, value_of_u32(8));
  EXPECT_EQ(value_as_u32(r.read(process_id{2}, reg)), 8u);
  history::history_log h = r.events();
  ASSERT_TRUE(history::check_persistent_atomicity_per_key(h).ok);

  // Rewind the final read to the overwritten value — the footprint of a
  // migration window that lost a cross-shard write-back: the destination
  // shard still serves the pre-window state.
  history::event* final_read = nullptr;
  for (history::event& e : h) {
    if (e.kind == history::event_kind::reply_read && e.reg == reg) final_read = &e;
  }
  ASSERT_NE(final_read, nullptr);
  final_read->v = value_of_u32(7);

  const auto verdict = history::check_persistent_atomicity_per_key(h);
  EXPECT_FALSE(verdict.ok);
  EXPECT_EQ(verdict.failing_key, reg);
  EXPECT_FALSE(verdict.explanation.empty());
}

TEST(ShardRouter, MergedHistoryUsesDisjointGlobalProcessIds) {
  shard_router r(router_cfg(3));
  // Crash local process 0 in shards 0 and 1: the merged history must show
  // them as two different global processes, or one shard's crash would cut
  // short the other's pending operations in every projection.
  r.submit_crash(0, process_id{0}, 1_ms);
  r.submit_crash(1, process_id{0}, 1_ms);
  r.submit_recover(0, process_id{0}, 5_ms);
  r.submit_recover(1, process_id{0}, 5_ms);
  ASSERT_TRUE(r.run_until_idle());
  std::set<std::uint32_t> crashed;
  for (const auto& e : r.events()) {
    if (e.kind == history::event_kind::crash) crashed.insert(e.p.index);
  }
  EXPECT_EQ(crashed, (std::set<std::uint32_t>{
                         r.global_process(0, process_id{0}).index,
                         r.global_process(1, process_id{0}).index}));
}

TEST(ShardRouter, DroppedSubOpDoesNotFreezeAnInFlightSubBatch) {
  shard_router r(router_cfg(2));
  // Two registers on different shards.
  register_id reg_a = 0;
  register_id reg_b = 0;
  for (register_id reg = 1; reg < 1000; ++reg) {
    if (r.shard_of(reg) != r.shard_of(reg_a)) {
      reg_b = reg;
      break;
    }
  }
  ASSERT_NE(r.shard_of(reg_a), r.shard_of(reg_b));

  // Queue the batch's reg_a half behind a filler write on reg_a's shard,
  // then crash that client (no recovery): the queued half is dropped with
  // it, while reg_b's shard serves its half of the batch normally.
  r.submit_write(process_id{0}, reg_a, value_of_u32(9), 0);
  const auto h = r.submit_write_batch(
      process_id{0}, {{reg_a, value_of_u32(1)}, {reg_b, value_of_u32(2)}}, 0);
  r.submit_crash(r.shard_of(reg_a), process_id{0}, 10_us);

  // Observe the merged result while reg_b's sub-batch is still in flight:
  // the dropped half must not freeze the merge.
  r.run_for(50_us);
  {
    const auto& mid = r.result(h);
    EXPECT_TRUE(mid.dropped);
    EXPECT_FALSE(mid.completed);
  }
  ASSERT_TRUE(r.run_until_idle());
  const auto& res = r.result(h);
  EXPECT_TRUE(res.dropped);
  EXPECT_FALSE(res.completed);  // one half never ran
  ASSERT_EQ(res.batch_result.size(), 2u);
  // reg_b's completed half must be visible despite the earlier peek.
  EXPECT_EQ(res.batch_result[1].reg, reg_b);
  EXPECT_EQ(res.batch_result[1].val, value_of_u32(2));
  EXPECT_GT(res.completed_at, 0);
}

// ---------- Merged multi-shard histories under faults ----------

TEST(ShardRouter, AtomicPerKeyWithConcurrentCrashesInTwoShards) {
  shard_router r(router_cfg(3, /*n=*/3, /*seed=*/7));

  // A keyed workload spread over every shard.
  sim::kv_workload_config wc;
  wc.n = 3;
  wc.key_count = 48;
  wc.ops = 300;
  wc.read_fraction = 0.5;
  wc.seed = 7;
  const auto workload = sim::make_kv_workload(wc);
  std::vector<shard_router::op_handle> handles;
  for (const auto& op : workload) {
    if (op.is_read) {
      handles.push_back(r.submit_read(op.p, op.entries[0].reg, op.at));
    } else {
      handles.push_back(
          r.submit_write(op.p, op.entries[0].reg, op.entries[0].val, op.at));
    }
  }

  // Concurrent faults in two shards at once (a majority stays up in each):
  // shard 0 loses process 1, shard 1 loses process 2, overlapping windows.
  r.submit_crash(0, process_id{1}, 2_ms);
  r.submit_recover(0, process_id{1}, 9_ms);
  r.submit_crash(1, process_id{2}, 3_ms);
  r.submit_recover(1, process_id{2}, 8_ms);

  ASSERT_TRUE(r.run_until_idle(200'000'000));

  std::uint64_t completed = 0;
  for (const auto h : handles) completed += r.result(h).completed ? 1 : 0;
  EXPECT_GT(completed, workload.size() / 2);

  const auto verdict = history::check_persistent_atomicity_per_key(r.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
  EXPECT_GT(verdict.keys_checked, 1u);

  const auto tags = history::check_tag_order_per_key(r.tagged_operations());
  EXPECT_TRUE(tags.ok) << tags.explanation;
}

TEST(ShardRouter, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    shard_router r(router_cfg(2, 3, seed));
    sim::kv_workload_config wc;
    wc.n = 3;
    wc.key_count = 16;
    wc.ops = 120;
    wc.seed = seed;
    for (const auto& op : sim::make_kv_workload(wc)) {
      if (op.is_read) {
        r.submit_read(op.p, op.entries[0].reg, op.at);
      } else {
        r.submit_write(op.p, op.entries[0].reg, op.entries[0].val, op.at);
      }
    }
    EXPECT_TRUE(r.run_until_idle());
    return r.events();
  };
  const auto a = run(21);
  const auto b = run(21);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].p, b[i].p);
    EXPECT_EQ(a[i].reg, b[i].reg);
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].v, b[i].v);
  }
}

// ---------- Shard-aware workload generation ----------

TEST(KvWorkload, ShardLocalBatchesNeverSpanShards) {
  const hash_ring ring(4, 64);
  sim::kv_workload_config wc;
  wc.n = 3;
  wc.key_count = 256;
  wc.batch_size = 8;
  wc.ops = 200;
  wc.shard_map = [&ring](register_id reg) { return ring.shard_of(reg); };
  wc.shard_local_batches = true;
  const auto ops = sim::make_kv_workload(wc);
  ASSERT_EQ(ops.size(), 200u);
  for (const auto& op : ops) {
    ASSERT_FALSE(op.entries.empty());
    const std::uint32_t home = ring.shard_of(op.entries[0].reg);
    for (const auto& e : op.entries) {
      EXPECT_EQ(ring.shard_of(e.reg), home) << "batch spans shards";
    }
  }
}

// ---------- Live rebalancing (migration window) ----------

/// Registers of `r` that the epoch+1 grow would move (computed on rings
/// only, so callable before begin_add_shard()).
std::vector<register_id> moved_keys_on_grow(const shard_router& r,
                                            register_id key_count) {
  const hash_ring after = r.ring().grow(r.shard_count());
  const auto d = hash_ring::diff(r.ring(), after);
  std::vector<register_id> moved;
  for (register_id reg = 0; reg < key_count; ++reg) {
    if (d.moved(reg)) moved.push_back(reg);
  }
  return moved;
}

TEST(ShardRouterMigration, GrowPreservesEveryValueAcrossTheEpochChange) {
  shard_router r(router_cfg(2));
  const register_id keys = 32;
  for (register_id reg = 0; reg < keys; ++reg) {
    r.write(process_id{0}, reg, value_of_u32(1000 + reg));
  }
  const auto moved = moved_keys_on_grow(r, keys);
  ASSERT_FALSE(moved.empty());

  const std::uint32_t added = r.begin_add_shard();
  EXPECT_EQ(added, 2u);
  EXPECT_TRUE(r.migration_active());
  EXPECT_EQ(r.ring().epoch(), 1u);
  EXPECT_GE(r.moved_key_count(), moved.size());

  // Reads during the window still see everything (moved keys answer from
  // their old shard until handoff).
  for (register_id reg = 0; reg < keys; ++reg) {
    EXPECT_EQ(value_as_u32(r.read(process_id{1}, reg)), 1000 + reg) << "reg " << reg;
  }

  // Drain the worklist through the scheduling loop, then retire the ring.
  ASSERT_TRUE(r.run_until_idle());
  ASSERT_TRUE(r.migration_drained());
  r.finish_add_shard();
  EXPECT_FALSE(r.migration_active());
  EXPECT_EQ(r.migrated_key_count(), r.moved_key_count());

  // Post-finish: moved keys route to the new shard and still hold their
  // values; the source groups no longer carry their state.
  for (const register_id reg : moved) {
    EXPECT_EQ(r.shard_of(reg), added);
    EXPECT_EQ(value_as_u32(r.read(process_id{2}, reg)), 1000 + reg);
    for (std::uint32_t s = 0; s < added; ++s) {
      EXPECT_FALSE(r.shard(s).export_register(reg).has_state)
          << "stale state for reg " << reg << " on source shard " << s;
    }
  }
  const auto verdict = history::check_persistent_atomicity_per_key(r.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
  const auto tags = history::check_tag_order_per_key(r.tagged_operations());
  EXPECT_TRUE(tags.ok) << tags.explanation;
}

TEST(ShardRouterMigration, WriteDuringWindowHandsTheKeyOffWithDominatingTag) {
  shard_router r(router_cfg(2));
  const auto moved = moved_keys_on_grow(r, 64);
  ASSERT_FALSE(moved.empty());
  const register_id hot = moved.front();
  for (int i = 0; i < 3; ++i) {
    r.write(process_id{0}, hot, value_of_u32(10 + i));  // old-shard tag grows
  }
  const std::uint32_t added = r.begin_add_shard();

  // First touched write migrates the key: export/import/evict, then the
  // write runs on the new shard with a strictly larger tag.
  r.write(process_id{1}, hot, value_of_u32(99));
  EXPECT_EQ(r.shard_of(hot), added);
  bool handed_off = false;
  for (const auto& ev : r.migration_log()) {
    if (ev.reg == hot &&
        ev.why == shard_router::migration_event::cause::write_handoff) {
      handed_off = true;
      EXPECT_EQ(ev.to_shard, added);
    }
  }
  EXPECT_TRUE(handed_off);
  EXPECT_EQ(value_as_u32(r.read(process_id{2}, hot)), 99u);

  ASSERT_TRUE(r.run_until_idle());
  r.finish_add_shard();
  const auto tags = history::check_tag_order_per_key(r.tagged_operations());
  EXPECT_TRUE(tags.ok) << tags.explanation;
  const auto verdict = history::check_persistent_atomicity_per_key(r.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(ShardRouterMigration, WindowReadAnchorsStateAtTheDestination) {
  shard_router r(router_cfg(2));
  const auto moved = moved_keys_on_grow(r, 64);
  ASSERT_FALSE(moved.empty());
  const register_id reg = moved.front();
  r.write(process_id{0}, reg, value_of_u32(7));
  const std::uint32_t added = r.begin_add_shard();

  // A window read serves from the old shard, then writes the result back
  // onto the new shard before reporting completion (cross-shard two-phase
  // read). The key itself is NOT handed off by a read.
  EXPECT_EQ(value_as_u32(r.read(process_id{1}, reg)), 7u);
  const auto snap = r.shard(added).export_register(reg);
  EXPECT_TRUE(snap.has_state);
  EXPECT_EQ(value_as_u32(snap.written_val), 7u);

  ASSERT_TRUE(r.run_until_idle());
  r.finish_add_shard();
  EXPECT_EQ(value_as_u32(r.read(process_id{2}, reg)), 7u);
}

TEST(ShardRouterMigration, AsyncWindowReadCompletesOnlyAfterWriteback) {
  shard_router r(router_cfg(2));
  const auto moved = moved_keys_on_grow(r, 64);
  ASSERT_FALSE(moved.empty());
  const register_id reg = moved.front();
  r.write(process_id{0}, reg, value_of_u32(5));
  r.begin_add_shard();

  const auto h = r.submit_read(process_id{1}, reg, r.now());
  ASSERT_TRUE(r.run_until_idle());
  const auto& res = r.result(h);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(value_as_u32(res.v), 5u);
  ASSERT_TRUE(r.migration_drained());
  r.finish_add_shard();
}

TEST(ShardRouterMigration, OpenWorkloadAcrossWindowLosesNothing) {
  shard_router r(router_cfg(2, /*n=*/3, /*seed=*/5));
  sim::kv_workload_config wc;
  wc.n = 3;
  wc.key_count = 96;
  wc.ops = 150;
  wc.read_fraction = 0.5;
  wc.seed = 5;

  auto submit = [&r](const std::vector<sim::kv_op>& ops,
                     std::vector<shard_router::op_handle>& hs) {
    for (const auto& op : ops) {
      if (op.is_read) {
        hs.push_back(r.submit_read(op.p, op.entries[0].reg, op.at));
      } else {
        hs.push_back(r.submit_write(op.p, op.entries[0].reg, op.entries[0].val, op.at));
      }
    }
  };

  std::vector<shard_router::op_handle> handles;
  submit(sim::make_kv_workload(wc), handles);
  r.run_for(5_ms);  // phase A partially executed, ops still in flight

  r.begin_add_shard();
  wc.start_at = r.now();
  wc.value_base = 1'000'000;  // keep write values globally unique
  wc.seed = 6;
  submit(sim::make_kv_workload(wc), handles);  // phase B rides the window

  ASSERT_TRUE(r.run_until_idle(200'000'000));
  ASSERT_TRUE(r.migration_drained());
  r.finish_add_shard();

  wc.start_at = r.now();
  wc.value_base = 2'000'000;
  wc.seed = 7;
  submit(sim::make_kv_workload(wc), handles);  // phase C at S+1
  ASSERT_TRUE(r.run_until_idle(200'000'000));

  // Zero failed operations: nothing dropped, everything completed.
  for (const auto h : handles) {
    const auto& res = r.result(h);
    EXPECT_TRUE(res.completed);
    EXPECT_FALSE(res.dropped);
  }
  const auto verdict = history::check_persistent_atomicity_per_key(r.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
  EXPECT_GT(verdict.keys_checked, 10u);
  const auto tags = history::check_tag_order_per_key(r.tagged_operations());
  EXPECT_TRUE(tags.ok) << tags.explanation;
}

TEST(ShardRouterMigration, SameSeedYieldsIdenticalScheduleAndHistory) {
  // Satellite determinism pin: the migration schedule (which key moved,
  // whence, whither, when, why) and the merged two-epoch history are pure
  // functions of (config, workload, reconfiguration calls).
  auto run = [](std::uint64_t seed) {
    shard_router r(router_cfg(2, 3, seed));
    sim::kv_workload_config wc;
    wc.n = 3;
    wc.key_count = 48;
    wc.ops = 120;
    wc.seed = seed;
    for (const auto& op : sim::make_kv_workload(wc)) {
      if (op.is_read) {
        r.submit_read(op.p, op.entries[0].reg, op.at);
      } else {
        r.submit_write(op.p, op.entries[0].reg, op.entries[0].val, op.at);
      }
    }
    r.run_for(3_ms);
    r.begin_add_shard();
    EXPECT_TRUE(r.run_until_idle());
    r.finish_add_shard();
    return std::pair{r.migration_log(), r.events()};
  };
  const auto a = run(33);
  const auto b = run(33);
  ASSERT_EQ(a.first.size(), b.first.size());
  for (std::size_t i = 0; i < a.first.size(); ++i) {
    EXPECT_EQ(a.first[i].reg, b.first[i].reg);
    EXPECT_EQ(a.first[i].from_shard, b.first[i].from_shard);
    EXPECT_EQ(a.first[i].to_shard, b.first[i].to_shard);
    EXPECT_EQ(a.first[i].at, b.first[i].at);
    EXPECT_EQ(a.first[i].why, b.first[i].why);
  }
  ASSERT_EQ(a.second.size(), b.second.size());
  for (std::size_t i = 0; i < a.second.size(); ++i) {
    EXPECT_EQ(a.second[i].kind, b.second[i].kind);
    EXPECT_EQ(a.second[i].p, b.second[i].p);
    EXPECT_EQ(a.second[i].reg, b.second[i].reg);
    EXPECT_EQ(a.second[i].at, b.second[i].at);
    EXPECT_EQ(a.second[i].v, b.second[i].v);
  }
}

TEST(ShardRouterMigration, CrashStopPolicyCannotRebalance) {
  // Handoff moves state through stable storage; crash-stop has none, so a
  // completed write whose adopters all crash-stop would export as stale and
  // the new shard would serve a rollback. The router refuses up front.
  shard_router_config cfg = router_cfg(2);
  cfg.base.policy = proto::crash_stop_policy();
  shard_router r(cfg);
  EXPECT_THROW(r.begin_add_shard(), driver_error);
}

TEST(ShardRouterMigration, WindowLifecycleGuards) {
  shard_router r(router_cfg(2));
  r.write(process_id{0}, 3, value_of_u32(1));
  EXPECT_THROW(r.finish_add_shard(), driver_error);  // no window open
  r.begin_add_shard();
  EXPECT_THROW(r.begin_add_shard(), driver_error);  // window already open
  if (!r.migration_drained()) {
    EXPECT_THROW(r.finish_add_shard(), driver_error);  // not drained yet
  }
  ASSERT_TRUE(r.run_until_idle());
  r.finish_add_shard();
  // A second grow works from the new topology (2 epochs recorded).
  r.begin_add_shard();
  ASSERT_TRUE(r.run_until_idle());
  r.finish_add_shard();
  EXPECT_EQ(r.shard_count(), 4u);
  EXPECT_EQ(r.ring().epoch(), 2u);
  const auto verdict = history::check_persistent_atomicity_per_key(r.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

}  // namespace
}  // namespace remus::core
