// Integration tests: full emulations over the simulated world — reads and
// writes across the three algorithms, crash/recovery scenarios, log and
// message accounting, and atomicity verdicts on the recorded histories.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "history/atomicity.h"
#include "proto/policy.h"

namespace remus::core {
namespace {

using proto::protocol_policy;

cluster_config make_config(protocol_policy pol, std::uint32_t n = 5,
                           std::uint64_t seed = 1) {
  cluster_config cfg;
  cfg.n = n;
  cfg.policy = std::move(pol);
  cfg.seed = seed;
  return cfg;
}

// ---------- Basic read/write across algorithms ----------

class AllPolicies : public ::testing::TestWithParam<const char*> {
 protected:
  static protocol_policy policy() {
    const std::string name = GetParam();
    if (name == "crash-stop") return proto::crash_stop_policy();
    if (name == "persistent") return proto::persistent_policy();
    if (name == "transient") return proto::transient_policy();
    return proto::crash_stop_policy();
  }
};

INSTANTIATE_TEST_SUITE_P(Algorithms, AllPolicies,
                         ::testing::Values("crash-stop", "persistent", "transient"));

TEST_P(AllPolicies, ReadInitiallyReturnsBottom) {
  cluster c(make_config(policy()));
  EXPECT_TRUE(c.read(process_id{1}).is_initial());
}

TEST_P(AllPolicies, WriteThenReadFromEveryProcess) {
  cluster c(make_config(policy()));
  c.write(process_id{0}, value_of_u32(42));
  for (std::uint32_t p = 0; p < c.size(); ++p) {
    EXPECT_EQ(c.read(process_id{p}), value_of_u32(42)) << "reader p" << p;
  }
}

TEST_P(AllPolicies, LastWriteWins) {
  cluster c(make_config(policy()));
  c.write(process_id{0}, value_of_u32(1));
  c.write(process_id{1}, value_of_u32(2));
  c.write(process_id{2}, value_of_u32(3));
  EXPECT_EQ(c.read(process_id{4}), value_of_u32(3));
}

TEST_P(AllPolicies, HistoryIsPersistentAtomicWithoutCrashes) {
  cluster c(make_config(policy()));
  std::uint32_t v = 1;
  for (int round = 0; round < 4; ++round) {
    for (std::uint32_t p = 0; p < c.size(); ++p) {
      c.submit_write(process_id{p}, value_of_u32(v++), c.now());
      c.submit_read(process_id{(p + 2) % c.size()}, c.now());
    }
    ASSERT_TRUE(c.run_until_idle());
  }
  const auto verdict = history::check_persistent_atomicity(c.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST_P(AllPolicies, ConcurrentWritersConverge) {
  cluster c(make_config(policy()));
  // All five processes write at the same instant, then everyone reads.
  for (std::uint32_t p = 0; p < c.size(); ++p) {
    c.submit_write(process_id{p}, value_of_u32(100 + p), 0);
  }
  ASSERT_TRUE(c.run_until_idle());
  const value v0 = c.read(process_id{0});
  for (std::uint32_t p = 1; p < c.size(); ++p) {
    EXPECT_EQ(c.read(process_id{p}), v0);
  }
  const auto verdict = history::check_persistent_atomicity(c.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST_P(AllPolicies, OperationsUseFourCommunicationSteps) {
  // Paper section IV: both emulations keep [2]'s message complexity —
  // 2 round-trips (4 steps) per operation.
  cluster c(make_config(policy()));
  const auto w = c.submit_write(process_id{0}, value_of_u32(5), 0);
  ASSERT_TRUE(c.run_until_idle());
  const auto r = c.submit_read(process_id{1}, c.now());
  ASSERT_TRUE(c.run_until_idle());
  EXPECT_EQ(c.result(w).sample.round_trips, 2u);
  EXPECT_EQ(c.result(r).sample.round_trips, 2u);
}

TEST_P(AllPolicies, SurvivesMinorityCrash) {
  cluster c(make_config(policy()));
  c.submit_crash(process_id{3}, 0);
  c.submit_crash(process_id{4}, 0);
  c.run_for(1_ms);
  c.write(process_id{0}, value_of_u32(7));
  EXPECT_EQ(c.read(process_id{1}), value_of_u32(7));
}

TEST_P(AllPolicies, DeterministicAcrossRuns) {
  auto run_once = [&] {
    cluster c(make_config(policy(), 5, 77));
    for (std::uint32_t p = 0; p < 5; ++p) {
      c.submit_write(process_id{p}, value_of_u32(p + 1), static_cast<time_ns>(p) * 100_us);
      c.submit_read(process_id{4 - p}, static_cast<time_ns>(p) * 150_us);
    }
    c.run_until_idle();
    return std::make_pair(c.now(), history::to_string(c.events()));
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

// ---------- Log complexity (the paper's headline numbers) ----------

TEST(LogComplexity, CrashStopNeverLogs) {
  cluster c(make_config(proto::crash_stop_policy()));
  c.write(process_id{0}, value_of_u32(1));
  (void)c.read(process_id{1});
  for (std::uint32_t p = 0; p < c.size(); ++p) {
    EXPECT_EQ(c.durable_stores(process_id{p}), 0u);
  }
}

TEST(LogComplexity, PersistentWriteCostsTwoCausalLogs) {
  cluster c(make_config(proto::persistent_policy()));
  const auto w = c.submit_write(process_id{0}, value_of_u32(1), 0);
  ASSERT_TRUE(c.run_until_idle());
  EXPECT_EQ(c.result(w).sample.causal_logs, 2u);
  // Total stores: 1 writer prelog + one per replica that adopted (all 5).
  EXPECT_EQ(c.result(w).sample.total_logs, 6u);
}

TEST(LogComplexity, TransientWriteCostsOneCausalLog) {
  cluster c(make_config(proto::transient_policy()));
  const auto w = c.submit_write(process_id{0}, value_of_u32(1), 0);
  ASSERT_TRUE(c.run_until_idle());
  EXPECT_EQ(c.result(w).sample.causal_logs, 1u);
  EXPECT_EQ(c.result(w).sample.total_logs, 5u);  // replicas only, no prelog
}

TEST(LogComplexity, UncontendedReadDoesNotLog) {
  // "in the absence of concurrency, a read will not log" (section IV-B).
  for (auto pol : {proto::persistent_policy(), proto::transient_policy()}) {
    cluster c(make_config(pol));
    c.write(process_id{0}, value_of_u32(1));
    const auto r = c.submit_read(process_id{1}, c.now());
    ASSERT_TRUE(c.run_until_idle());
    EXPECT_EQ(c.result(r).sample.causal_logs, 0u) << pol.name;
    EXPECT_EQ(c.result(r).sample.total_logs, 0u) << pol.name;
  }
}

TEST(LogComplexity, ReadLogsWhenPropagatingAFresherValue) {
  // Force the read to encounter a value not yet at a majority: the write
  // reaches only p3; the reader must write it back, which costs 1 causal log.
  cluster c(make_config(proto::persistent_policy()));
  c.network().set_filter([](const sim::packet_info& pi) {
    sim::filter_verdict v;
    // Block the writer's round-2 W from everyone but p3 (and block acks the
    // writer would need, keeping the write pending).
    if (pi.kind == static_cast<std::uint8_t>(proto::msg_kind::write) &&
        pi.from == process_id{0} && pi.to != process_id{3}) {
      v.drop = true;
    }
    return v;
  });
  c.submit_write(process_id{0}, value_of_u32(9), 0);
  c.run_for(20_ms);  // write cannot finish (only p3 got W)
  c.network().clear_filter();
  const auto r = c.submit_read(process_id{1}, c.now());
  ASSERT_TRUE(c.run_until_idle());
  ASSERT_TRUE(c.result(r).completed);
  EXPECT_EQ(c.result(r).v, value_of_u32(9));
  EXPECT_EQ(c.result(r).sample.causal_logs, 1u);
  EXPECT_GE(c.result(r).sample.total_logs, 3u);  // the other replicas adopt
}

// ---------- Crash-recovery behaviour ----------

TEST(CrashRecovery, ValueSurvivesFullBlackout) {
  // "all the processes crash, possibly at the same time, as long as a
  // majority eventually recovers" (section I-D).
  for (auto pol : {proto::persistent_policy(), proto::transient_policy()}) {
    cluster c(make_config(pol));
    c.write(process_id{0}, value_of_u32(123));
    c.apply(sim::make_blackout_plan(c.size(), c.now() + 1_ms, 10_ms));
    ASSERT_TRUE(c.run_until_idle());
    EXPECT_EQ(c.read(process_id{2}), value_of_u32(123)) << pol.name;
    const auto verdict = history::check_persistent_atomicity(c.events());
    EXPECT_TRUE(verdict.ok) << pol.name << "\n" << verdict.explanation;
  }
}

TEST(CrashRecovery, RecoveringProcessRestoresItsReplicaState) {
  cluster c(make_config(proto::persistent_policy()));
  c.write(process_id{0}, value_of_u32(5));
  c.submit_crash(process_id{2}, c.now());
  c.submit_recover(process_id{2}, c.now() + 5_ms);
  ASSERT_TRUE(c.run_until_idle());
  EXPECT_EQ(c.core_of(process_id{2}).replica_value(), value_of_u32(5));
}

TEST(CrashRecovery, PersistentRecoveryFinishesInterruptedWrite) {
  // The writer crashes right after its prelog becomes durable; on recovery
  // the write is finished and every later read sees it (persistent
  // atomicity's whole point).
  cluster c(make_config(proto::persistent_policy()));
  c.write(process_id{0}, value_of_u32(1));
  // Block every round-2 W copy of the writer's next write, so the new value
  // reaches nobody before the crash.
  c.network().set_filter([](const sim::packet_info& pi) {
    sim::filter_verdict v;
    if (pi.kind == static_cast<std::uint8_t>(proto::msg_kind::write) &&
        pi.from == process_id{0}) {
      v.drop = true;
    }
    return v;
  });
  c.submit_write(process_id{0}, value_of_u32(2), c.now());
  c.run_for(5_ms);  // prelog done, W blocked
  c.network().clear_filter();
  c.submit_crash(process_id{0}, c.now());
  c.submit_recover(process_id{0}, c.now() + 2_ms);
  ASSERT_TRUE(c.run_until_idle());
  // After recovery the interrupted write must be visible.
  EXPECT_EQ(c.read(process_id{1}), value_of_u32(2));
  const auto verdict = history::check_persistent_atomicity(c.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(CrashRecovery, TransientRecoveryBumpsCounterOnly) {
  cluster c(make_config(proto::transient_policy()));
  c.write(process_id{0}, value_of_u32(1));
  const auto stores_before = c.recovery_stores();
  c.submit_crash(process_id{0}, c.now());
  c.submit_recover(process_id{0}, c.now() + 2_ms);
  ASSERT_TRUE(c.run_until_idle());
  EXPECT_EQ(c.core_of(process_id{0}).recoveries(), 1);
  EXPECT_EQ(c.recovery_stores(), stores_before + 1);  // exactly one rec log
  // Next write's tag carries the counter.
  const auto w = c.submit_write(process_id{0}, value_of_u32(2), c.now());
  ASSERT_TRUE(c.run_until_idle());
  EXPECT_EQ(c.result(w).applied.rec, 1);
}

TEST(CrashRecovery, OpsQueuedDuringRecoveryRunAfterIt) {
  cluster c(make_config(proto::persistent_policy()));
  c.write(process_id{0}, value_of_u32(1));
  c.submit_crash(process_id{0}, c.now());
  c.submit_recover(process_id{0}, c.now() + 2_ms);
  // Submitted while down/recovering: must run after recovery completes.
  const auto w = c.submit_write(process_id{0}, value_of_u32(2), c.now() + 3_ms);
  ASSERT_TRUE(c.run_until_idle());
  EXPECT_TRUE(c.result(w).completed);
  EXPECT_EQ(c.read(process_id{3}), value_of_u32(2));
}

TEST(CrashRecovery, CrashedMajorityBlocksThenRecoversAndUnblocks) {
  cluster c(make_config(proto::persistent_policy()));
  c.write(process_id{0}, value_of_u32(1));
  c.submit_crash(process_id{2}, c.now());
  c.submit_crash(process_id{3}, c.now());
  c.submit_crash(process_id{4}, c.now());
  const auto w = c.submit_write(process_id{0}, value_of_u32(2), c.now() + 1_ms);
  c.run_for(300_ms);
  EXPECT_FALSE(c.result(w).completed);  // majority down: robustness stalls
  c.submit_recover(process_id{2}, c.now());
  c.submit_recover(process_id{3}, c.now());
  c.submit_recover(process_id{4}, c.now());
  ASSERT_TRUE(c.run_until_idle());
  EXPECT_TRUE(c.result(w).completed);  // ...and resumes once majority is back
  EXPECT_EQ(c.read(process_id{2}), value_of_u32(2));
}

TEST(CrashRecovery, ReaderCrashMidReadLeavesPendingInvocation) {
  cluster c(make_config(proto::persistent_policy()));
  c.write(process_id{0}, value_of_u32(1));
  // Slow down all read acks so the read is still running when p1 crashes.
  c.network().set_filter([](const sim::packet_info& pi) {
    sim::filter_verdict v;
    if (pi.kind == static_cast<std::uint8_t>(proto::msg_kind::read_ack)) {
      v.deliver_at = 100_ms;
    }
    return v;
  });
  const auto r = c.submit_read(process_id{1}, c.now());
  c.submit_crash(process_id{1}, c.now() + 1_ms);
  c.run_for(2_ms);  // read is in flight, then the reader crashes
  c.network().clear_filter();
  c.submit_recover(process_id{1}, c.now() + 3_ms);
  ASSERT_TRUE(c.run_until_idle());
  EXPECT_FALSE(c.result(r).completed);
  const auto verdict = history::check_persistent_atomicity(c.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(CrashRecovery, RepeatedCrashesOfSameProcess) {
  cluster c(make_config(proto::transient_policy()));
  std::uint32_t v = 1;
  for (int round = 0; round < 5; ++round) {
    c.write(process_id{0}, value_of_u32(v++));
    c.submit_crash(process_id{0}, c.now());
    c.submit_recover(process_id{0}, c.now() + 2_ms);
    ASSERT_TRUE(c.run_until_idle());
  }
  EXPECT_EQ(c.core_of(process_id{0}).recoveries(), 5);
  EXPECT_EQ(c.read(process_id{1}), value_of_u32(v - 1));
  const auto verdict = history::check_transient_atomicity(c.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

// ---------- Lossy network ----------

TEST(LossyNetwork, OperationsCompleteDespiteDrops) {
  for (auto pol : {proto::crash_stop_policy(), proto::persistent_policy(),
                   proto::transient_policy()}) {
    cluster_config cfg = make_config(pol, 5, 13);
    cfg.net.drop_probability = 0.3;
    cfg.net.duplicate_probability = 0.1;
    cfg.policy.retransmit_delay = 5_ms;
    cluster c(cfg);
    c.write(process_id{0}, value_of_u32(11));
    EXPECT_EQ(c.read(process_id{1}), value_of_u32(11)) << pol.name;
    const auto verdict = history::check_persistent_atomicity(c.events());
    EXPECT_TRUE(verdict.ok) << pol.name << "\n" << verdict.explanation;
  }
}

TEST(LossyNetwork, HeavyLossStillTerminates) {
  cluster_config cfg = make_config(proto::persistent_policy(), 5, 17);
  cfg.net.drop_probability = 0.6;
  cfg.policy.retransmit_delay = 2_ms;
  cluster c(cfg);
  c.write(process_id{0}, value_of_u32(3));
  EXPECT_EQ(c.read(process_id{4}), value_of_u32(3));
}

// ---------- Misc driver behaviour ----------

TEST(Driver, CrashStopRejectsRecovery) {
  cluster c(make_config(proto::crash_stop_policy()));
  EXPECT_THROW(c.submit_recover(process_id{0}, 0), driver_error);
}

TEST(Driver, QueuedOpsDroppedOnCrash) {
  cluster c(make_config(proto::persistent_policy()));
  // Stall the first write by blocking SN acks, then queue another behind it.
  c.network().set_filter([](const sim::packet_info& pi) {
    sim::filter_verdict v;
    if (pi.kind == static_cast<std::uint8_t>(proto::msg_kind::sn_ack)) v.drop = true;
    return v;
  });
  const auto w1 = c.submit_write(process_id{0}, value_of_u32(1), 0);
  const auto w2 = c.submit_write(process_id{0}, value_of_u32(2), 1_ms);
  c.submit_crash(process_id{0}, 2_ms);
  c.run_for(10_ms);
  c.network().clear_filter();
  ASSERT_TRUE(c.run_until_idle());
  EXPECT_FALSE(c.result(w1).completed);  // invoked, cut short by the crash
  EXPECT_FALSE(c.result(w2).completed);
  EXPECT_TRUE(c.result(w2).dropped);  // never invoked at all
}

TEST(Driver, ResultsExposeAppliedTags) {
  cluster c(make_config(proto::persistent_policy()));
  const auto w = c.submit_write(process_id{2}, value_of_u32(5), 0);
  ASSERT_TRUE(c.run_until_idle());
  EXPECT_EQ(c.result(w).applied, (tag{1, 0, process_id{2}}));
  const auto r = c.submit_read(process_id{0}, c.now());
  ASSERT_TRUE(c.run_until_idle());
  EXPECT_EQ(c.result(r).applied, (tag{1, 0, process_id{2}}));
}

TEST(Driver, SingleProcessClusterWorks) {
  cluster c(make_config(proto::persistent_policy(), 1));
  c.write(process_id{0}, value_of_u32(9));
  EXPECT_EQ(c.read(process_id{0}), value_of_u32(9));
}

TEST(Driver, EvenClusterSizeUsesProperMajority) {
  cluster c(make_config(proto::persistent_policy(), 4));
  EXPECT_EQ(c.core_of(process_id{0}).quorum_size(), 3u);
  c.write(process_id{0}, value_of_u32(1));
  // Two down (half): majority of 3 still reachable? No — 4-node majority is
  // 3, so with 2 down operations must stall.
  c.submit_crash(process_id{2}, c.now());
  c.submit_crash(process_id{3}, c.now());
  const auto w = c.submit_write(process_id{0}, value_of_u32(2), c.now() + 1_ms);
  c.run_for(200_ms);
  EXPECT_FALSE(c.result(w).completed);
}

}  // namespace
}  // namespace remus::core
