// Unit tests for the WAL engine: frame codec, scanner stop classification,
// the log-structured store (append, tombstones, compaction, recovery
// accounting), the corruption matrix (every single-bit flip of the final
// frame, every truncation offset), and the file-backed media.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/value.h"
#include "storage/corruption_injector.h"
#include "storage/wal_format.h"
#include "storage/wal_store.h"

namespace remus::storage {
namespace {

bytes b(std::initializer_list<std::uint8_t> xs) { return bytes(xs); }

constexpr record_key written0{record_area::written, 0};
constexpr record_key written7{record_area::written, 7};
constexpr record_key writing0{record_area::writing, 0};
constexpr record_key recovered0{record_area::recovered, 0};

std::unique_ptr<wal_store> make_memory_store(wal_store_config cfg = {}) {
  return std::make_unique<wal_store>(std::make_unique<memory_media>(), cfg);
}

memory_media& media_of(wal_store& st) {
  return static_cast<memory_media&>(st.media());
}

// ---------- Frame codec ----------

TEST(WalFormat, Crc32MatchesTheIeeeTestVector) {
  const char* s = "123456789";
  EXPECT_EQ(crc32_of({reinterpret_cast<const std::uint8_t*>(s), 9}), 0xCBF43926u);
  EXPECT_EQ(crc32_of({}), 0u);
}

TEST(WalFormat, IncrementalCrcMatchesOneShot) {
  const bytes data = b({1, 2, 3, 4, 5, 6, 7});
  std::uint32_t st = crc32_init;
  st = crc32_update(st, std::span(data).subspan(0, 3));
  st = crc32_update(st, std::span(data).subspan(3));
  EXPECT_EQ(crc32_final(st), crc32_of(data));
}

TEST(WalFormat, FrameRoundTripsThroughTheScanner) {
  bytes log;
  append_wal_frame(log, wal_frame_kind::record, written7, b({9, 8, 7}));
  append_wal_frame(log, wal_frame_kind::tombstone, writing0, {});
  ASSERT_EQ(log.size(), wal_frame_size(3) + wal_frame_size(0));

  std::vector<wal_frame> seen;
  const wal_scan_result r = scan_wal(log, [&](const wal_frame& f) {
    seen.push_back(f);
  });
  EXPECT_EQ(r.stop, wal_scan_stop::clean_end);
  EXPECT_EQ(r.consumed, log.size());
  ASSERT_EQ(r.frames, 2u);
  EXPECT_EQ(seen[0].kind, wal_frame_kind::record);
  EXPECT_EQ(seen[0].key, written7);
  EXPECT_EQ(bytes(seen[0].payload.begin(), seen[0].payload.end()), b({9, 8, 7}));
  EXPECT_EQ(seen[0].offset, 0u);
  EXPECT_EQ(seen[0].size, wal_frame_size(3));
  EXPECT_EQ(seen[1].kind, wal_frame_kind::tombstone);
  EXPECT_EQ(seen[1].key, writing0);
  EXPECT_TRUE(seen[1].payload.empty());
}

TEST(WalFormat, ScannerClassifiesEveryStopReason) {
  bytes log;
  append_wal_frame(log, wal_frame_kind::record, written0, b({1, 2}));
  const std::size_t one = log.size();
  append_wal_frame(log, wal_frame_kind::record, written7, b({3}));

  // Torn: a partial length field at the tail.
  {
    bytes torn = log;
    torn.resize(one + 2);
    const wal_scan_result r = scan_wal(torn, {});
    EXPECT_EQ(r.stop, wal_scan_stop::torn_frame);
    EXPECT_EQ(r.consumed, one);
    EXPECT_EQ(r.frames, 1u);
  }
  // Torn: a length that extends past the end of the image.
  {
    bytes torn = log;
    torn.pop_back();
    const wal_scan_result r = scan_wal(torn, {});
    EXPECT_EQ(r.stop, wal_scan_stop::torn_frame);
    EXPECT_EQ(r.consumed, one);
  }
  // Bad frame: an undersized length field (cannot hold the fixed header).
  {
    bytes bad = log;
    bad.resize(one);
    for (int i = 0; i < 4; ++i) bad.push_back(0);  // len = 0 < overhead - 4
    const wal_scan_result r = scan_wal(bad, {});
    EXPECT_EQ(r.stop, wal_scan_stop::bad_frame);
    EXPECT_EQ(r.consumed, one);
  }
  // Bad CRC: flip one payload bit of the second frame.
  {
    bytes bad = log;
    bad[one + 10] ^= 1;
    const wal_scan_result r = scan_wal(bad, {});
    EXPECT_EQ(r.stop, wal_scan_stop::bad_crc);
    EXPECT_EQ(r.consumed, one);
  }
  // Bad frame: a tombstone carrying payload (valid CRC, impossible shape).
  {
    bytes bad = log;
    bad.resize(one);
    append_wal_frame(bad, wal_frame_kind::tombstone, writing0, b({1}));
    const wal_scan_result r = scan_wal(bad, {});
    EXPECT_EQ(r.stop, wal_scan_stop::bad_frame);
    EXPECT_EQ(r.consumed, one);
  }
  EXPECT_EQ(scan_wal(log, {}).stop, wal_scan_stop::clean_end);
}

// ---------- Store basics ----------

TEST(WalStore, BasicRoundTripAndOverwrite) {
  auto st = make_memory_store();
  EXPECT_FALSE(st->retrieve(written0).has_value());
  st->store(written0, b({1, 2, 3}));
  EXPECT_EQ(*st->retrieve(written0), b({1, 2, 3}));
  st->store(written0, b({9}));
  EXPECT_EQ(*st->retrieve(written0), b({9}));
  st->store(writing0, b({4, 5}));
  st->store(written7, b({7, 7}));
  EXPECT_EQ(*st->retrieve(writing0), b({4, 5}));
  EXPECT_EQ(*st->retrieve(written7), b({7, 7}));
  EXPECT_EQ(st->store_count(), 4u);

  std::vector<std::pair<register_id, bytes>> seen;
  st->for_each(record_area::written,
               [&](register_id reg, const bytes& rec) { seen.emplace_back(reg, rec); });
  ASSERT_EQ(seen.size(), 2u);
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen[0], (std::pair<register_id, bytes>{0, b({9})}));
  EXPECT_EQ(seen[1], (std::pair<register_id, bytes>{7, b({7, 7})}));
}

TEST(WalStore, EraseTombstonesAndWipeClears) {
  auto st = make_memory_store();
  st->store(written0, b({1}));
  st->store(written7, b({2}));
  st->erase(written0);
  EXPECT_FALSE(st->retrieve(written0).has_value());
  EXPECT_EQ(*st->retrieve(written7), b({2}));
  // Erasing an absent key appends nothing.
  const std::size_t before = st->log_bytes();
  st->erase(written0);
  EXPECT_EQ(st->log_bytes(), before);
  st->wipe();
  EXPECT_FALSE(st->retrieve(written7).has_value());
  EXPECT_EQ(st->log_bytes(), 0u);
}

TEST(WalStore, StateSurvivesReopen) {
  auto st = make_memory_store();
  st->store(written0, b({1, 2}));
  st->store(writing0, b({3}));
  st->erase(written0);
  st->reopen();
  EXPECT_FALSE(st->retrieve(written0).has_value());
  EXPECT_EQ(*st->retrieve(writing0), b({3}));
  EXPECT_EQ(st->last_recovery().log_stop, wal_scan_stop::clean_end);
  EXPECT_EQ(st->last_recovery().discarded, 0u);
}

TEST(WalStore, StoreAndObsoleteIsOneAppend) {
  auto st = make_memory_store();
  st->store(writing0, b({1}));
  st->store(written7, b({2}));
  const std::size_t before = media_of(*st).log.size();
  const record_key obsolete[] = {writing0, written7, written0 /* absent */};
  st->store_and_obsolete(written0, b({5}), obsolete);
  // One record frame + one tombstone per *present* obsolete key, in one
  // durable append; the absent key adds nothing.
  EXPECT_EQ(media_of(*st).log.size(),
            before + wal_frame_size(1) + 2 * wal_frame_size(0));
  EXPECT_EQ(*st->retrieve(written0), b({5}));
  EXPECT_FALSE(st->retrieve(writing0).has_value());
  EXPECT_FALSE(st->retrieve(written7).has_value());
  // Entries equal to the stored key are inert.
  const record_key self[] = {written0};
  st->store_and_obsolete(written0, b({6}), self);
  EXPECT_EQ(*st->retrieve(written0), b({6}));
  st->reopen();
  EXPECT_EQ(*st->retrieve(written0), b({6}));
  EXPECT_FALSE(st->retrieve(writing0).has_value());
}

// ---------- Compaction ----------

TEST(WalStore, CompactionBoundsTheLog) {
  wal_store_config cfg;
  cfg.compact_min_bytes = 256;
  cfg.compact_slack = 2.0;
  auto st = make_memory_store(cfg);
  for (int i = 0; i < 200; ++i) {
    st->store(written0, b({static_cast<std::uint8_t>(i), 1, 2, 3}));
  }
  EXPECT_GT(st->compactions(), 0u);
  // One live record: the log stays bounded by the compaction threshold
  // (its live state plus slack), not by the 200 overwrites.
  EXPECT_LE(st->log_bytes(),
            std::max<std::size_t>(cfg.compact_min_bytes,
                                  static_cast<std::size_t>(
                                      cfg.compact_slack *
                                      static_cast<double>(st->live_bytes()))) +
                wal_frame_size(4));
  EXPECT_EQ(*st->retrieve(written0), b({199, 1, 2, 3}));
  st->reopen();
  EXPECT_EQ(*st->retrieve(written0), b({199, 1, 2, 3}));
}

TEST(WalStore, CrashBetweenSnapshotAndTruncateIsIdempotent) {
  wal_store_config cfg;
  cfg.compact_min_bytes = 1 << 20;  // never auto-compact in this test
  auto st = make_memory_store(cfg);
  st->store(written0, b({1}));
  st->store(written7, b({2}));
  st->store(written0, b({3}));
  // Simulate the crash window: snapshot installed, log NOT yet truncated.
  bytes snapshot;
  st->for_each(record_area::written, [&](register_id reg, const bytes& v) {
    append_wal_frame(snapshot, wal_frame_kind::record,
                     record_key{record_area::written, reg}, v);
  });
  auto media = std::make_unique<memory_media>();
  media->snapshot = snapshot;
  media->log = media_of(*st).log;  // full pre-compaction log
  wal_store st2(std::move(media), cfg);
  EXPECT_EQ(*st2.retrieve(written0), b({3}));
  EXPECT_EQ(*st2.retrieve(written7), b({2}));
}

TEST(WalStore, RecoveryReplayTracksLiveStateNotStoreCount) {
  // The bounded-replay acceptance check: after heavy overwriting of a tiny
  // working set, recovery I/O is bounded by the compaction threshold — it
  // does not grow with store_count().
  wal_store_config cfg;
  cfg.compact_min_bytes = 512;
  cfg.compact_slack = 2.0;
  auto st = make_memory_store(cfg);
  for (int i = 0; i < 2000; ++i) {
    st->store(record_key{record_area::written, static_cast<register_id>(i % 3)},
              b({static_cast<std::uint8_t>(i), 2, 3, 4, 5, 6, 7, 8}));
  }
  EXPECT_EQ(st->store_count(), 2000u);
  st->reopen();
  const wal_recovery_stats& rec = st->last_recovery();
  // Snapshot holds at most the live set; the log at most threshold + one
  // frame. Far below the ~44KB the 2000 appends totalled.
  EXPECT_LE(rec.bytes_read, 2 * cfg.compact_min_bytes);
  EXPECT_LE(rec.frames_replayed, 200u);
  EXPECT_GE(rec.frames_replayed, 3u);
}

// ---------- Corruption matrix ----------

/// Recovered state must equal the harness's own replay of the valid prefix.
void expect_matches_prefix_replay(wal_store& st, const bytes& snapshot,
                                  const bytes& log) {
  std::map<std::pair<std::uint8_t, register_id>, bytes> model;
  const auto replay = [&](const wal_frame& f) {
    const auto k = std::pair(static_cast<std::uint8_t>(f.key.area), f.key.reg);
    if (f.kind == wal_frame_kind::record) {
      model[k] = bytes(f.payload.begin(), f.payload.end());
    } else {
      model.erase(k);
    }
  };
  scan_wal(snapshot, replay);
  scan_wal(log, replay);
  std::size_t recovered = 0;
  for (record_area area : {record_area::writing, record_area::written,
                           record_area::recovered}) {
    st.for_each(area, [&](register_id reg, const bytes& v) {
      ++recovered;
      const auto it = model.find({static_cast<std::uint8_t>(area), reg});
      ASSERT_NE(it, model.end());
      EXPECT_EQ(it->second, v);
    });
  }
  EXPECT_EQ(recovered, model.size());
}

TEST(WalStore, EverySingleBitFlipOfTheFinalFrameIsContained) {
  auto st = make_memory_store();
  st->store(written0, b({1, 2, 3}));
  st->store(writing0, b({4}));
  st->store(written7, b({5, 6}));
  const bytes log = media_of(*st).log;
  const std::vector<std::size_t> offs = frame_offsets(log);
  ASSERT_EQ(offs.size(), 4u);  // 3 frames + end
  const std::size_t final_at = offs[2];

  for (std::size_t byte = final_at; byte < log.size(); ++byte) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      bytes mutated = log;
      flip_bit(mutated, byte, bit);
      auto media = std::make_unique<memory_media>();
      media->log = mutated;
      wal_store rec(std::move(media));  // must not throw
      // The damaged final frame is never surfaced; the first two survive.
      EXPECT_EQ(*rec.retrieve(written0), b({1, 2, 3})) << byte << ":" << bit;
      EXPECT_EQ(*rec.retrieve(writing0), b({4})) << byte << ":" << bit;
      expect_matches_prefix_replay(rec, {}, mutated);
      EXPECT_GT(rec.last_recovery().discarded, 0u) << byte << ":" << bit;
    }
  }
}

TEST(WalStore, EveryTruncationOffsetRecoversTheIntactPrefix) {
  auto st = make_memory_store();
  st->store(written0, b({1, 2, 3}));
  st->store(writing0, b({4}));
  st->store(written7, b({5, 6}));
  const bytes log = media_of(*st).log;
  const std::vector<std::size_t> offs = frame_offsets(log);

  for (std::size_t cut = 0; cut <= log.size(); ++cut) {
    bytes mutated = log;
    truncate_log(mutated, cut);
    auto media = std::make_unique<memory_media>();
    media->log = mutated;
    wal_store rec(std::move(media));  // must not throw
    // Exactly the frames wholly inside the prefix survive.
    std::size_t expect_frames = 0;
    while (expect_frames + 1 < offs.size() && offs[expect_frames + 1] <= cut) {
      ++expect_frames;
    }
    EXPECT_EQ(rec.last_recovery().frames_replayed, expect_frames) << "cut " << cut;
    expect_matches_prefix_replay(rec, {}, mutated);
    const bool aligned = cut == offs[expect_frames];
    EXPECT_EQ(rec.last_recovery().log_stop,
              aligned ? wal_scan_stop::clean_end : wal_scan_stop::torn_frame)
        << "cut " << cut;
  }
}

TEST(WalStore, StrayGarbageTailIsDiscardedAndTruncated) {
  auto st = make_memory_store();
  st->store(written0, b({1, 2}));
  rng r(42);
  bytes garbage(17);
  for (auto& x : garbage) x = static_cast<std::uint8_t>(r.next_below(256));
  st->inject_tail_bytes(garbage);
  st->reopen();
  EXPECT_EQ(*st->retrieve(written0), b({1, 2}));
  EXPECT_EQ(st->last_recovery().discarded, garbage.size());
  // The torn tail was truncated on the media: appends now extend the valid
  // prefix, and the next recovery is clean.
  EXPECT_EQ(media_of(*st).log.size(), wal_frame_size(2));
  st->store(written7, b({9}));
  st->reopen();
  EXPECT_EQ(st->last_recovery().log_stop, wal_scan_stop::clean_end);
  EXPECT_EQ(*st->retrieve(written0), b({1, 2}));
  EXPECT_EQ(*st->retrieve(written7), b({9}));
}

TEST(WalStore, CorruptSnapshotStopsCleanlyAndLogStillApplies) {
  wal_store_config cfg;
  cfg.compact_min_bytes = 1;  // compact on every append
  cfg.compact_slack = 0.0;
  auto st = make_memory_store(cfg);
  st->store(written0, b({1}));
  st->store(written7, b({2}));
  ASSERT_GT(st->compactions(), 0u);
  bytes snapshot = media_of(*st).snapshot;
  ASSERT_FALSE(snapshot.empty());
  // Damage the snapshot's final frame; recovery keeps its intact prefix.
  flip_bit(snapshot, snapshot.size() - 1, 3);
  auto media = std::make_unique<memory_media>();
  media->snapshot = snapshot;
  media->log = media_of(*st).log;
  wal_store rec(std::move(media), cfg);
  EXPECT_NE(rec.last_recovery().snapshot_stop, wal_scan_stop::clean_end);
  expect_matches_prefix_replay(rec, snapshot, media_of(rec).log);
}

// ---------- File media ----------

class WalFileMediaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("remus_wal_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::filesystem::path dir_;
  static inline int counter_ = 0;
};

TEST_F(WalFileMediaTest, StateSurvivesProcessRestart) {
  {
    wal_store st(std::make_unique<file_media>(dir_, /*fsync_enabled=*/false));
    st.store(written0, b({7, 7}));
    st.store(writing0, b({8}));
    st.erase(writing0);
  }
  wal_store st2(std::make_unique<file_media>(dir_, false));
  EXPECT_EQ(*st2.retrieve(written0), b({7, 7}));
  EXPECT_FALSE(st2.retrieve(writing0).has_value());
  EXPECT_EQ(st2.last_recovery().log_stop, wal_scan_stop::clean_end);
}

TEST_F(WalFileMediaTest, CompactionPersistsAcrossRestart) {
  wal_store_config cfg;
  cfg.compact_min_bytes = 128;
  {
    wal_store st(std::make_unique<file_media>(dir_, false), cfg);
    for (int i = 0; i < 100; ++i) {
      st.store(written0, b({static_cast<std::uint8_t>(i), 2, 3}));
    }
    ASSERT_GT(st.compactions(), 0u);
  }
  wal_store st2(std::make_unique<file_media>(dir_, false), cfg);
  EXPECT_EQ(*st2.retrieve(written0), b({99, 2, 3}));
  EXPECT_LE(st2.last_recovery().bytes_read, 2 * cfg.compact_min_bytes);
}

TEST_F(WalFileMediaTest, StrayTmpFilesAreSweptAtConstruction) {
  std::filesystem::create_directories(dir_);
  {
    std::ofstream f(dir_ / "snapshot.tmp");
    f << "half-written snapshot from a crashed install";
  }
  wal_store st(std::make_unique<file_media>(dir_, false));
  EXPECT_FALSE(std::filesystem::exists(dir_ / "snapshot.tmp"));
  EXPECT_FALSE(st.retrieve(written0).has_value());
}

TEST_F(WalFileMediaTest, TornTailOnDiskIsTruncatedAtRecovery) {
  {
    wal_store st(std::make_unique<file_media>(dir_, false));
    st.store(written0, b({1, 2, 3}));
    bytes half;
    append_wal_frame(half, wal_frame_kind::record, written7, b({9, 9}));
    half.resize(half.size() / 2);  // crash mid-append
    st.inject_tail_bytes(half);
  }
  wal_store st2(std::make_unique<file_media>(dir_, false));
  EXPECT_EQ(*st2.retrieve(written0), b({1, 2, 3}));
  EXPECT_FALSE(st2.retrieve(written7).has_value());
  EXPECT_EQ(st2.last_recovery().log_stop, wal_scan_stop::torn_frame);
  wal_store st3(std::make_unique<file_media>(dir_, false));
  EXPECT_EQ(st3.last_recovery().log_stop, wal_scan_stop::clean_end);
}

}  // namespace
}  // namespace remus::storage
