// Chaos-style tests: network partitions, pathological reordering, decoder
// fuzzing, and long mixed fault/workload soaks — conditions beyond the
// scripted scenarios, where only the model's guarantees remain.
#include <gtest/gtest.h>

#include "common/codec.h"
#include "core/cluster.h"
#include "history/atomicity.h"
#include "history/keyed.h"
#include "history/tag_order.h"
#include "proto/message.h"
#include "proto/policy.h"
#include "core/shard_router.h"
#include "sim/kv_workload.h"

namespace remus::core {
namespace {

// ---------- Partitions (cut links, not crashes) ----------

TEST(Partition, WriterIsolatedFromMajorityStallsThenHeals) {
  cluster_config cfg;
  cfg.n = 5;
  cfg.policy = proto::persistent_policy();
  cfg.policy.retransmit_delay = 5_ms;
  cluster c(cfg);
  c.write(process_id{0}, value_of_u32(1));

  // Cut p0 off from everyone (both directions).
  c.network().partition({{process_id{0}},
                         {process_id{1}, process_id{2}, process_id{3}, process_id{4}}});
  const auto w = c.submit_write(process_id{0}, value_of_u32(2), c.now());
  c.run_for(100_ms);
  EXPECT_FALSE(c.result(w).completed);  // no majority reachable

  // Others still serve (p0's listener is unreachable but 4 > majority).
  EXPECT_EQ(c.read(process_id{2}), value_of_u32(1));

  c.network().restore_all_links();
  ASSERT_TRUE(c.run_until_idle());
  EXPECT_TRUE(c.result(w).completed);  // retransmission finished the write
  EXPECT_EQ(c.read(process_id{3}), value_of_u32(2));
  const auto verdict = history::check_persistent_atomicity(c.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(Partition, MinoritySideServesNothingButStaysConsistent) {
  cluster_config cfg;
  cfg.n = 5;
  cfg.policy = proto::transient_policy();
  cfg.policy.retransmit_delay = 5_ms;
  cluster c(cfg);
  c.write(process_id{0}, value_of_u32(1));

  // Split {0,1} | {2,3,4}: cut all cross links.
  c.network().partition({{process_id{0}, process_id{1}},
                         {process_id{2}, process_id{3}, process_id{4}}});
  const auto minority_w = c.submit_write(process_id{0}, value_of_u32(2), c.now());
  const auto majority_w = c.submit_write(process_id{3}, value_of_u32(3), c.now());
  c.run_for(100_ms);
  EXPECT_FALSE(c.result(minority_w).completed);
  EXPECT_TRUE(c.result(majority_w).completed);  // majority side progresses

  c.network().restore_all_links();
  ASSERT_TRUE(c.run_until_idle());
  const auto verdict = history::check_transient_atomicity(c.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation << history::to_string(c.events());
  const auto order = history::check_tag_order(c.tagged_operations());
  EXPECT_TRUE(order.ok) << order.explanation;
}

TEST(Partition, FlappingLinksEventuallyDeliver) {
  cluster_config cfg;
  cfg.n = 3;
  cfg.policy = proto::persistent_policy();
  cfg.policy.retransmit_delay = 3_ms;
  cluster c(cfg);
  // Isolate and reconnect the writer repeatedly while its write runs; the
  // repeat-until loop must push it through the connected windows.
  const auto w = c.submit_write(process_id{0}, value_of_u32(7), 0);
  for (int i = 0; i < 10; ++i) {
    if (i % 2 == 0) {
      c.network().cut_pair(process_id{0}, process_id{1});
      c.network().cut_pair(process_id{0}, process_id{2});
    } else {
      c.network().restore_all_links();
    }
    c.run_for(2_ms);
  }
  c.network().restore_all_links();
  ASSERT_TRUE(c.run_until_idle());
  EXPECT_TRUE(c.result(w).completed);
  EXPECT_EQ(c.read(process_id{1}), value_of_u32(7));
}

// ---------- Extreme reordering ----------

TEST(Reordering, HugeJitterStillLinearizes) {
  cluster_config cfg;
  cfg.n = 5;
  cfg.policy = proto::transient_policy();
  cfg.policy.retransmit_delay = 20_ms;
  cfg.net.jitter = 5_ms;  // 50x the base delay: acks arrive wildly reordered
  cfg.seed = 33;
  cluster c(cfg);
  std::uint32_t v = 1;
  for (int i = 0; i < 10; ++i) {
    c.submit_write(process_id{static_cast<std::uint32_t>(i) % 5}, value_of_u32(v++),
                   static_cast<time_ns>(i) * 3_ms);
    c.submit_read(process_id{(static_cast<std::uint32_t>(i) + 1) % 5},
                  static_cast<time_ns>(i) * 3_ms + 1_ms);
  }
  ASSERT_TRUE(c.run_until_idle());
  const auto verdict = history::check_transient_atomicity(c.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation << history::to_string(c.events());
}

TEST(Reordering, DuplicateStormIsHarmless) {
  cluster_config cfg;
  cfg.n = 3;
  cfg.policy = proto::persistent_policy();
  cfg.net.duplicate_probability = 0.9;  // nearly every message doubled
  cluster c(cfg);
  c.write(process_id{0}, value_of_u32(5));
  EXPECT_EQ(c.read(process_id{1}), value_of_u32(5));
  const auto verdict = history::check_persistent_atomicity(c.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

// ---------- Re-entrant recovery (crash during recovery log replay) ----------

TEST(ReentrantRecovery, CrashDuringRecoveryReplayStaysAtomicPerKey) {
  // A node populated with many registers crashes, starts recovering (the
  // recovery reads + replays every register's stable records), and crashes
  // *again* mid-recovery — repeatedly, at sliding offsets so the second
  // crash lands before, during, and after the stable-store read and the
  // persistent finish-write round. Per-key atomicity must survive every
  // interleaving, and the node must end up consistent once it finally stays
  // up.
  for (const auto& pol : {proto::persistent_policy(), proto::transient_policy()}) {
    for (int offset_us = 50; offset_us <= 850; offset_us += 200) {
      cluster_config cfg;
      cfg.n = 3;
      cfg.policy = pol;
      cfg.policy.retransmit_delay = 3_ms;
      cfg.seed = 100 + static_cast<std::uint64_t>(offset_us);
      cluster c(cfg);
      for (std::uint32_t k = 0; k < 10; ++k) {
        c.write(process_id{0}, k, value_of_u32(100 + k));
      }
      const time_ns t0 = c.now();
      c.submit_crash(process_id{2}, t0);
      c.submit_recover(process_id{2}, t0 + 100_us);
      // Second crash lands inside the previous recovery procedure
      // (recovery_read_latency is 400 us; the finish-write round follows).
      c.submit_crash(process_id{2}, t0 + 100_us + static_cast<time_ns>(offset_us) * 1_us);
      c.submit_recover(process_id{2}, t0 + 5_ms);
      // Keep traffic flowing from the healthy majority while p2 thrashes.
      c.submit_write(process_id{0}, 3, value_of_u32(9000 + static_cast<std::uint32_t>(offset_us)),
                     t0 + 200_us);
      c.submit_read(process_id{1}, 7, t0 + 300_us);
      ASSERT_TRUE(c.run_until_idle());

      const auto verdict = cfg.policy.recovery_counter
                               ? history::check_transient_atomicity_per_key(c.events())
                               : history::check_persistent_atomicity_per_key(c.events());
      EXPECT_TRUE(verdict.ok) << pol.name << " offset " << offset_us << "us\n"
                              << verdict.explanation;
      // The twice-recovered node serves consistent values afterwards.
      for (std::uint32_t k = 0; k < 10; ++k) {
        EXPECT_EQ(c.read(process_id{2}, k), c.read(process_id{0}, k)) << "reg " << k;
      }
    }
  }
}

// ---------- Crashes during batched multi-key writes ----------

TEST(BatchChaos, CrashesDuringBatchedWritesStayAtomicPerKey) {
  // Batched writes in flight while the writer and replicas crash at sliding
  // offsets: the batch's per-register logs and the deferred batched ack
  // must never let a partially-durable batch violate any key's atomicity.
  for (int crash_writer = 0; crash_writer <= 1; ++crash_writer) {
    for (int offset_us = 100; offset_us <= 1300; offset_us += 300) {
      cluster_config cfg;
      cfg.n = 5;
      cfg.policy = proto::persistent_policy();
      cfg.policy.retransmit_delay = 3_ms;
      cfg.seed = 7000 + static_cast<std::uint64_t>(offset_us + crash_writer);
      cluster c(cfg);
      std::uint32_t v = 1;
      // Ground state on a few registers.
      for (std::uint32_t k = 0; k < 6; ++k) c.write(process_id{1}, k, value_of_u32(v++));

      const time_ns t0 = c.now();
      std::vector<proto::write_op> ops;
      for (std::uint32_t k = 0; k < 6; ++k) ops.push_back({k, value_of_u32(100 + v++ )});
      c.submit_write_batch(process_id{0}, ops, t0);
      // Competing batched read of the same keys.
      c.submit_read_batch(process_id{3}, {0, 1, 2, 3, 4, 5}, t0 + 50_us);

      const process_id victim = crash_writer ? process_id{0} : process_id{4};
      c.submit_crash(victim, t0 + static_cast<time_ns>(offset_us) * 1_us);
      c.submit_recover(victim, t0 + 10_ms);
      ASSERT_TRUE(c.run_until_idle());

      const auto verdict = history::check_persistent_atomicity_per_key(c.events());
      EXPECT_TRUE(verdict.ok)
          << (crash_writer ? "writer" : "replica") << " crash at " << offset_us << "us\n"
          << verdict.explanation;
      const auto order = history::check_tag_order_per_key(c.tagged_operations());
      EXPECT_TRUE(order.ok) << order.explanation;
      // Every register converges: all nodes agree after the dust settles.
      for (std::uint32_t k = 0; k < 6; ++k) {
        const value expect = c.read(process_id{2}, k);
        EXPECT_EQ(c.read(process_id{0}, k), expect) << "reg " << k;
        EXPECT_EQ(c.read(process_id{4}, k), expect) << "reg " << k;
      }
    }
  }
}

TEST(BatchChaos, KeyedSoakWithBatchesLossAndFaults) {
  // A longer randomized keyed soak: batched + single-key traffic over 16
  // registers, 10% message loss, rolling crash/recovery — the blackbox
  // "everything at once" case for the namespace.
  cluster_config cfg;
  cfg.n = 5;
  cfg.policy = proto::transient_policy();
  cfg.policy.retransmit_delay = 5_ms;
  cfg.net.drop_probability = 0.1;
  cfg.seed = 4242;
  cluster c(cfg);

  sim::kv_workload_config wc;
  wc.n = 5;
  wc.key_count = 16;
  wc.zipf_theta = 0.9;
  wc.read_fraction = 0.4;
  wc.batch_size = 3;
  wc.ops = 120;
  wc.mean_gap = 2'000'000;  // ~2 ms between ops per process
  wc.seed = 99;
  std::vector<proto::write_op> batch_ops;
  std::vector<register_id> batch_regs;
  for (const auto& op : sim::make_kv_workload(wc)) {
    if (op.is_read) {
      batch_regs.clear();
      for (const auto& e : op.entries) batch_regs.push_back(e.reg);
      c.submit_read_batch(op.p, batch_regs, op.at);
    } else {
      batch_ops.clear();
      for (const auto& e : op.entries) batch_ops.push_back({e.reg, e.val});
      c.submit_write_batch(op.p, batch_ops, op.at);
    }
  }

  sim::random_plan_config fp;
  fp.n = 5;
  fp.crashes = 12;
  fp.horizon = 300_ms;
  fp.min_down = 5_ms;
  fp.max_down = 50_ms;
  rng fr(17);
  c.apply(sim::make_random_plan(fp, fr));

  ASSERT_TRUE(c.run_until_idle(80'000'000));
  const auto verdict = history::check_transient_atomicity_per_key(c.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
  EXPECT_GE(verdict.keys_checked, 10u);  // the workload really spread out
  const auto order = history::check_tag_order_per_key(c.tagged_operations());
  EXPECT_TRUE(order.ok) << order.explanation;
}

// ---------- Long soak ----------

TEST(Soak, MixedWorkloadFaultsAndLossForSimulatedSeconds) {
  cluster_config cfg;
  cfg.n = 5;
  cfg.policy = proto::transient_policy();
  cfg.policy.retransmit_delay = 5_ms;
  cfg.net.drop_probability = 0.1;
  cfg.seed = 99;
  cluster c(cfg);
  rng r(99);

  std::uint32_t v = 1;
  const time_ns horizon = 3_s;
  for (time_ns t = 0; t < horizon; t += 20_ms) {
    const process_id p{static_cast<std::uint32_t>(r.next_below(5))};
    if (r.chance(0.6)) {
      c.submit_write(p, value_of_u32(v++), t + r.next_in(0, 10_ms));
    } else {
      c.submit_read(p, t + r.next_in(0, 10_ms));
    }
  }
  sim::random_plan_config fp;
  fp.n = 5;
  fp.crashes = 25;
  fp.horizon = horizon;
  fp.min_down = 5_ms;
  fp.max_down = 80_ms;
  rng fr(7);
  c.apply(sim::make_random_plan(fp, fr));

  ASSERT_TRUE(c.run_until_idle(80'000'000));
  const auto h = c.events();
  const auto verdict = history::check_transient_atomicity(h);
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
  const auto order = history::check_tag_order(c.tagged_operations());
  EXPECT_TRUE(order.ok) << order.explanation;
  EXPECT_GT(c.tagged_operations().size(), 50u);  // the run did real work
}

// ---------- Migration chaos (live rebalancing under faults) ----------

namespace {

/// A 2-shard router with an open-loop keyed workload submitted, run
/// partway so operations straddle the upcoming migration window.
core::shard_router make_migrating_router(std::uint64_t seed,
                                         std::vector<core::shard_router::op_handle>* hs) {
  core::shard_router_config cfg;
  cfg.shards = 2;
  cfg.base.n = 3;
  cfg.base.policy = proto::persistent_policy();
  cfg.base.policy.retransmit_delay = 3_ms;
  cfg.base.seed = seed;
  core::shard_router r(cfg);

  sim::kv_workload_config wc;
  wc.n = 3;
  wc.key_count = 48;
  wc.ops = 160;
  wc.read_fraction = 0.5;
  wc.seed = seed;
  for (const auto& op : sim::make_kv_workload(wc)) {
    const auto h = op.is_read
                       ? r.submit_read(op.p, op.entries[0].reg, op.at)
                       : r.submit_write(op.p, op.entries[0].reg, op.entries[0].val, op.at);
    if (hs != nullptr) hs->push_back(h);
  }
  r.run_for(4_ms);  // some completed, some in flight at window open
  return r;
}

void verify_merged(core::shard_router& r, const char* what) {
  const auto verdict = history::check_persistent_atomicity_per_key(r.events());
  EXPECT_TRUE(verdict.ok) << what << ": " << verdict.explanation;
  EXPECT_GT(verdict.keys_checked, 4u);
  const auto order = history::check_tag_order_per_key(r.tagged_operations());
  EXPECT_TRUE(order.ok) << what << ": " << order.explanation;
}

/// The straddling workload must not silently vanish in the faulty window:
/// crashes may cut a few ops short, but the vast majority completes and
/// nothing is left permanently in flight.
void verify_outcomes(core::shard_router& r,
                     const std::vector<core::shard_router::op_handle>& handles,
                     const char* what) {
  std::size_t completed = 0;
  for (const auto h : handles) {
    if (r.result(h).completed) ++completed;
  }
  EXPECT_GE(completed, handles.size() * 3 / 4) << what;
  EXPECT_EQ(r.events_pending(), 0u) << what;  // nothing stalled forever
}

}  // namespace

TEST(MigrationChaos, SourceShardReplicaCrashesMidHandoff) {
  // Crash a replica of each *source* shard right as the window opens (state
  // is being exported from these very groups), recover mid-window: exports
  // read stable storage, which survives the crash, and the drain waits out
  // any operation the crash cut short.
  for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
    std::vector<core::shard_router::op_handle> handles;
    core::shard_router r = make_migrating_router(seed, &handles);
    r.begin_add_shard();
    r.submit_crash(0, process_id{1}, r.now() + 200_us);
    r.submit_crash(1, process_id{2}, r.now() + 350_us);
    r.submit_recover(0, process_id{1}, r.now() + 6_ms);
    r.submit_recover(1, process_id{2}, r.now() + 7_ms);
    // Window traffic while the sources are degraded.
    std::uint32_t v = 1'000'000;
    for (register_id reg = 0; reg < 48; reg += 5) {
      r.submit_write(process_id{0}, reg, value_of_u32(v++), r.now() + 1_ms);
      r.submit_read(process_id{2}, reg, r.now() + 2_ms);
    }
    ASSERT_TRUE(r.run_until_idle(200'000'000)) << "seed " << seed;
    ASSERT_TRUE(r.migration_drained()) << "seed " << seed;
    r.finish_add_shard();
    verify_merged(r, "source crash");
    verify_outcomes(r, handles, "source crash");
  }
}

TEST(MigrationChaos, DestinationShardCrashesBeforeDrainCompletes) {
  // Crash replicas of the *destination* shard while keys are still being
  // imported: imports install stable records regardless (a crashed core
  // restores them on recovery), so no transferred state is lost and writes
  // handed off to the degraded destination finish once it recovers.
  std::vector<core::shard_router::op_handle> handles;
  core::shard_router r = make_migrating_router(21, &handles);
  const std::uint32_t added = r.begin_add_shard();
  // Take down a majority of the new shard for part of the window.
  r.submit_crash(added, process_id{0}, r.now() + 100_us);
  r.submit_crash(added, process_id{2}, r.now() + 150_us);
  r.submit_recover(added, process_id{0}, r.now() + 5_ms);
  r.submit_recover(added, process_id{2}, r.now() + 6_ms);
  std::uint32_t v = 2'000'000;
  for (register_id reg = 0; reg < 48; reg += 3) {
    r.submit_write(process_id{1}, reg, value_of_u32(v++), r.now() + 500_us);
  }
  ASSERT_TRUE(r.run_until_idle(200'000'000));
  ASSERT_TRUE(r.migration_drained());
  r.finish_add_shard();
  verify_merged(r, "destination crash");
  verify_outcomes(r, handles, "destination crash");
  // The transferred namespace serves from the new topology afterwards.
  for (register_id reg = 0; reg < 48; reg += 7) {
    (void)r.read(process_id{0}, reg);
  }
  verify_merged(r, "destination crash + post reads");
}

TEST(MigrationChaos, ReenteredRecoveryDuringWindowStaysAtomic) {
  // A source replica crashes, recovers, and crashes *again during its
  // recovery replay window* while the migration drain is running — the
  // double-fault from ReentrantRecovery, now overlapped with an epoch
  // change. The merged two-epoch history must still be atomic per key.
  std::vector<core::shard_router::op_handle> handles;
  core::shard_router r = make_migrating_router(31, &handles);
  r.begin_add_shard();
  const time_ns t0 = r.now();
  r.submit_crash(0, process_id{1}, t0 + 200_us);
  r.submit_recover(0, process_id{1}, t0 + 1_ms);
  // Recovery replay takes ~recovery_read_latency + a quorum round; crash
  // again inside it, then recover for good.
  r.submit_crash(0, process_id{1}, t0 + 1_ms + 300_us);
  r.submit_recover(0, process_id{1}, t0 + 8_ms);
  std::uint32_t v = 3'000'000;
  for (register_id reg = 0; reg < 48; reg += 4) {
    r.submit_write(process_id{1}, reg, value_of_u32(v++), t0 + 2_ms);
    r.submit_read(process_id{2}, reg, t0 + 3_ms);
  }
  ASSERT_TRUE(r.run_until_idle(200'000'000));
  ASSERT_TRUE(r.migration_drained());
  r.finish_add_shard();
  verify_merged(r, "re-entered recovery");
  verify_outcomes(r, handles, "re-entered recovery");
}

}  // namespace
}  // namespace remus::core

// ---------- Decoder fuzzing ----------

namespace remus::proto {
namespace {

TEST(Fuzz, DecoderNeverCrashesOnRandomBytes) {
  rng r(4242);
  int ok = 0;
  int rejected = 0;
  for (int i = 0; i < 20000; ++i) {
    bytes junk(r.next_below(96));
    for (auto& b : junk) b = static_cast<std::uint8_t>(r.next_u64());
    try {
      const message m = decode_message(junk);
      (void)m;
      ++ok;
    } catch (const codec_error&) {
      ++rejected;
    }
  }
  EXPECT_EQ(ok + rejected, 20000);
  EXPECT_GT(rejected, 15000);  // almost everything random must be rejected
}

TEST(Fuzz, TruncatedRealMessagesRejectedCleanly) {
  message m;
  m.kind = msg_kind::write;
  m.from = process_id{2};
  m.op_seq = 7;
  m.round = 2;
  m.epoch = 123;
  m.ts = tag{9, 1, process_id{2}};
  m.val = value_of_size(64);
  const bytes wire = encode(m);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    bytes prefix(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW((void)decode_message(prefix), codec_error) << "cut=" << cut;
  }
  EXPECT_NO_THROW((void)decode_message(wire));
}

TEST(Fuzz, BitflippedMessagesEitherParseOrThrow) {
  message m;
  m.kind = msg_kind::read_ack;
  m.from = process_id{1};
  m.val = value_of_u32(5);
  const bytes wire = encode(m);
  rng r(17);
  for (int i = 0; i < 2000; ++i) {
    bytes mutated = wire;
    mutated[r.next_below(mutated.size())] ^= static_cast<std::uint8_t>(1 + r.next_below(255));
    try {
      (void)decode_message(mutated);
    } catch (const codec_error&) {
      // fine: rejected cleanly
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace remus::proto
