// Parameterized sweeps over cluster size x algorithm x key count:
// correctness must hold for any n >= 1 (majority = floor(n/2)+1), including
// even sizes, not just the odd LAN sizes of the paper's evaluation — and for
// any number of registers multiplexed over the cluster (key count 1 is the
// paper's single-register setting; larger counts exercise the namespace).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/cluster.h"
#include "history/atomicity.h"
#include "history/keyed.h"
#include "history/tag_order.h"
#include "proto/policy.h"

namespace remus::core {
namespace {

struct sweep_params {
  std::uint32_t n;
  const char* policy;
  std::uint32_t keys;
};

class SizeSweep : public ::testing::TestWithParam<sweep_params> {
 protected:
  static proto::protocol_policy policy() {
    const std::string name = GetParam().policy;
    if (name == "crash_stop") return proto::crash_stop_policy();
    if (name == "persistent") return proto::persistent_policy();
    return proto::transient_policy();
  }
  static cluster_config config() {
    cluster_config cfg;
    cfg.n = GetParam().n;
    cfg.policy = policy();
    cfg.seed = 17 + GetParam().n + 1000 * GetParam().keys;
    return cfg;
  }
  /// The k-th register of this sweep's key set.
  static register_id reg(std::uint32_t k) { return k % GetParam().keys; }
};

TEST_P(SizeSweep, QuorumSizeIsFloorHalfPlusOne) {
  cluster c(config());
  EXPECT_EQ(c.core_of(process_id{0}).quorum_size(), GetParam().n / 2 + 1);
}

TEST_P(SizeSweep, WriteReadRoundTrip) {
  cluster c(config());
  // One distinct value per register of the sweep's key set.
  for (std::uint32_t k = 0; k < GetParam().keys; ++k) {
    c.write(process_id{0}, reg(k), value_of_u32(11 + k));
  }
  for (std::uint32_t p = 0; p < c.size(); ++p) {
    for (std::uint32_t k = 0; k < GetParam().keys; ++k) {
      EXPECT_EQ(c.read(process_id{p}, reg(k)), value_of_u32(11 + k));
    }
  }
}

TEST_P(SizeSweep, ToleratesLargestMinorityCrash) {
  cluster c(config());
  const std::uint32_t can_lose = GetParam().n - (GetParam().n / 2 + 1);
  for (std::uint32_t i = 0; i < can_lose; ++i) {
    c.submit_crash(process_id{GetParam().n - 1 - i}, 0);
  }
  c.run_for(1_ms);
  c.write(process_id{0}, reg(1), value_of_u32(5));
  EXPECT_EQ(c.read(process_id{0}, reg(1)), value_of_u32(5));
}

TEST_P(SizeSweep, StallsWhenMajorityDown) {
  if (GetParam().n == 1) GTEST_SKIP() << "n=1 has no crashable majority with a live client";
  cluster c(config());
  const std::uint32_t majority = GetParam().n / 2 + 1;
  for (std::uint32_t i = 0; i < majority; ++i) {
    c.submit_crash(process_id{GetParam().n - 1 - i}, 0);
  }
  c.run_for(1_ms);
  const auto w = c.submit_write(process_id{0}, value_of_u32(5), c.now());
  c.run_for(150_ms);
  EXPECT_FALSE(c.result(w).completed);
}

TEST_P(SizeSweep, MixedWorkloadStaysAtomicAndTagOrderedPerKey) {
  cluster c(config());
  std::uint32_t v = 1;
  for (int round = 0; round < 3; ++round) {
    for (std::uint32_t p = 0; p < c.size(); ++p) {
      c.submit_write(process_id{p}, reg(v), value_of_u32(v), c.now());
      ++v;
      c.submit_read(process_id{(p + 1) % c.size()}, reg(v), c.now());
    }
    ASSERT_TRUE(c.run_until_idle());
  }
  const auto verdict = history::check_atomicity_per_key(
      c.events(), history::criterion::persistent);
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
  EXPECT_GE(verdict.keys_checked, std::min(GetParam().keys, 3u));
  const auto order = history::check_tag_order_per_key(c.tagged_operations());
  EXPECT_TRUE(order.ok) << order.explanation;
}

TEST_P(SizeSweep, BatchedMixedWorkloadStaysAtomicPerKey) {
  if (GetParam().keys < 2) GTEST_SKIP() << "batching needs >= 2 registers";
  cluster c(config());
  const std::uint32_t width = std::min(GetParam().keys, 4u);
  std::uint32_t v = 1;
  for (int round = 0; round < 3; ++round) {
    for (std::uint32_t p = 0; p < c.size(); ++p) {
      std::vector<proto::write_op> ops;
      std::vector<register_id> regs;
      for (std::uint32_t k = 0; k < width; ++k) {
        ops.push_back({reg(v + k), value_of_u32(1000000 + v * 100 + k)});
        regs.push_back(reg(v + k));
      }
      v += width;
      c.submit_write_batch(process_id{p}, ops, c.now());
      c.submit_read_batch(process_id{(p + 1) % c.size()}, regs, c.now());
    }
    ASSERT_TRUE(c.run_until_idle());
  }
  const auto verdict = history::check_atomicity_per_key(
      c.events(), history::criterion::persistent);
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
  const auto order = history::check_tag_order_per_key(c.tagged_operations());
  EXPECT_TRUE(order.ok) << order.explanation;
}

TEST_P(SizeSweep, BlackoutRecoveryWhereApplicable) {
  if (policy().crash_stop) GTEST_SKIP() << "no recovery in the crash-stop model";
  cluster c(config());
  for (std::uint32_t k = 0; k < std::min(GetParam().keys, 8u); ++k) {
    c.write(process_id{0}, reg(k), value_of_u32(3 + k));
  }
  c.apply(sim::make_blackout_plan(c.size(), c.now() + 1_ms, 5_ms));
  ASSERT_TRUE(c.run_until_idle());
  for (std::uint32_t k = 0; k < std::min(GetParam().keys, 8u); ++k) {
    EXPECT_EQ(c.read(process_id{c.size() - 1}, reg(k)), value_of_u32(3 + k));
  }
}

TEST_P(SizeSweep, SkewedBlackoutMidWorkloadStaysAtomicPerKey) {
  // The scenario engine's blackout family at sweep scale: every process down
  // at once mid-workload, recoveries staggered per process (clock-skewed
  // restart storm), ops submitted before, during, and after the storm.
  if (policy().crash_stop) GTEST_SKIP() << "no recovery in the crash-stop model";
  cluster c(config());
  std::uint32_t v = 1;
  const auto submit_round = [&] {
    for (std::uint32_t p = 0; p < c.size(); ++p) {
      c.submit_write(process_id{p}, reg(v), value_of_u32(v), c.now());
      ++v;
      c.submit_read(process_id{(p + 1) % c.size()}, reg(v), c.now());
    }
  };
  submit_round();
  c.apply(sim::make_blackout_plan(c.size(), c.now() + 1_ms, 5_ms, 2_ms));
  c.run_for(2_ms);  // inside the storm
  submit_round();
  ASSERT_TRUE(c.run_until_idle());
  submit_round();
  ASSERT_TRUE(c.run_until_idle());
  const auto crit = policy().recovery_counter ? history::criterion::transient
                                              : history::criterion::persistent;
  const auto verdict = history::check_atomicity_per_key(c.events(), crit);
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
  const auto order = history::check_tag_order_per_key(c.tagged_operations());
  EXPECT_TRUE(order.ok) << order.explanation;
}

std::vector<sweep_params> sweep_grid() {
  std::vector<sweep_params> grid;
  for (const std::uint32_t n : {1u, 2u, 3u, 4u, 5u, 8u, 9u, 12u}) {
    for (const char* pol : {"crash_stop", "persistent", "transient"}) {
      // Key count 1 is the paper's single register; 2 and 64 exercise the
      // namespace (64 crosses the replica map's growth threshold).
      for (const std::uint32_t keys : {1u, 2u, 64u}) {
        grid.push_back({n, pol, keys});
      }
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeSweep, ::testing::ValuesIn(sweep_grid()),
                         [](const auto& info) {
                           return std::string("n") + std::to_string(info.param.n) + "_" +
                                  info.param.policy + "_k" +
                                  std::to_string(info.param.keys);
                         });

}  // namespace
}  // namespace remus::core
