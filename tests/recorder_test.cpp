// Tests for the history recorder: event capture, ordering guarantees under
// concurrent reporters, and integration with the checkers.
#include <gtest/gtest.h>

#include <thread>

#include "history/atomicity.h"
#include "history/recorder.h"
#include "history/wellformed.h"

namespace remus::history {
namespace {

TEST(Recorder, CapturesAllEventKinds) {
  recorder rec;
  rec.invoke_write(process_id{0}, value_of_u32(1), 10);
  rec.reply_write(process_id{0}, 20);
  rec.invoke_read(process_id{1}, 30);
  rec.reply_read(process_id{1}, value_of_u32(1), 40);
  rec.crash(process_id{2}, 50);
  rec.recover(process_id{2}, 60);

  const auto h = rec.events();
  ASSERT_EQ(h.size(), 6u);
  EXPECT_EQ(h[0].kind, event_kind::invoke_write);
  EXPECT_EQ(h[0].v, value_of_u32(1));
  EXPECT_EQ(h[1].kind, event_kind::reply_write);
  EXPECT_EQ(h[2].kind, event_kind::invoke_read);
  EXPECT_EQ(h[3].kind, event_kind::reply_read);
  EXPECT_EQ(h[4].kind, event_kind::crash);
  EXPECT_EQ(h[5].kind, event_kind::recover);
  EXPECT_TRUE(check_well_formed(h).ok);
  EXPECT_TRUE(check_persistent_atomicity(h).ok);
}

TEST(Recorder, ClampsRacingTimestamps) {
  recorder rec;
  rec.invoke_write(process_id{0}, value_of_u32(1), 100);
  rec.reply_write(process_id{0}, 90);  // reporter raced: earlier wall time
  const auto h = rec.events();
  EXPECT_GE(h[1].at, h[0].at);  // order of arrival wins; time is clamped
  EXPECT_TRUE(check_well_formed(h).ok);
}

TEST(Recorder, SizeAndClear) {
  recorder rec;
  EXPECT_EQ(rec.size(), 0u);
  rec.crash(process_id{0}, 1);
  rec.recover(process_id{0}, 2);
  EXPECT_EQ(rec.size(), 2u);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_TRUE(rec.events().empty());
}

TEST(Recorder, ConcurrentReportersProduceWellFormedPerProcessStreams) {
  recorder rec;
  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < 8; ++p) {
    threads.emplace_back([&rec, p] {
      for (std::uint32_t i = 0; i < 200; ++i) {
        const time_ns t = static_cast<time_ns>(i) * 10;
        rec.invoke_write(process_id{p}, value_of_u32(p * 1000 + i), t);
        rec.reply_write(process_id{p}, t + 5);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto h = rec.events();
  EXPECT_EQ(h.size(), 8u * 200u * 2u);
  // Each process's local stream alternates invoke/reply; global timestamps
  // are monotone.
  EXPECT_TRUE(check_well_formed(h).ok);
}

}  // namespace
}  // namespace remus::history
