// Unit tests for the metrics substrate: summary statistics, op collection,
// table rendering.
#include <gtest/gtest.h>

#include "metrics/op_metrics.h"
#include "metrics/stats.h"
#include "metrics/table.h"

namespace remus::metrics {
namespace {

TEST(Summary, EmptyIsZero) {
  summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.0);
}

TEST(Summary, BasicMoments) {
  summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.total(), 40.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);
}

TEST(Summary, PercentilesNearestRank) {
  summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.median(), 50.0);
}

TEST(Summary, PercentileAfterLateAdd) {
  summary s;
  s.add(10);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 10.0);
  s.add(20);  // invalidates the sorted cache
  s.add(0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(s.max(), 20.0);
}

TEST(Summary, MergeCombinesSamples) {
  summary a, b;
  a.add(1);
  a.add(2);
  b.add(3);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Summary, DescribeMentionsCountAndUnit) {
  summary s;
  s.add(1.5);
  const auto d = s.describe("ms");
  EXPECT_NE(d.find("n=1"), std::string::npos);
  EXPECT_NE(d.find("ms"), std::string::npos);
}

TEST(OpCollector, SplitsReadsAndWrites) {
  op_collector col;
  op_sample w;
  w.is_read = false;
  w.latency = 1000 * 1000;  // 1 ms
  w.causal_logs = 2;
  col.add(w);
  op_sample r;
  r.is_read = true;
  r.latency = 500 * 1000;
  r.causal_logs = 0;
  col.add(r);

  EXPECT_EQ(col.write_latency_us().count(), 1u);
  EXPECT_DOUBLE_EQ(col.write_latency_us().mean(), 1000.0);
  EXPECT_DOUBLE_EQ(col.write_causal_logs().mean(), 2.0);
  EXPECT_EQ(col.read_latency_us().count(), 1u);
  EXPECT_DOUBLE_EQ(col.read_latency_us().mean(), 500.0);
  const auto d = col.describe();
  EXPECT_NE(d.find("writes"), std::string::npos);
  EXPECT_NE(d.find("reads"), std::string::npos);
}

TEST(Table, RendersAlignedMarkdown) {
  table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  const auto s = t.render();
  EXPECT_NE(s.find("| name        | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer-name | 22    |"), std::string::npos);
  EXPECT_NE(s.find("|-"), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  table t({"a", "b", "c"});
  t.add_row({"1"});
  const auto s = t.render();
  EXPECT_NE(s.find("| 1 |"), std::string::npos);
}

TEST(Table, NumFormatsDecimals) {
  EXPECT_EQ(table::num(1.23456, 2), "1.23");
  EXPECT_EQ(table::num(1.0, 0), "1");
}

}  // namespace
}  // namespace remus::metrics
