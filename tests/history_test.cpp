// Tests for the history substrate: well-formedness, operation extraction,
// and the persistent/transient atomicity checkers — including the paper's
// Figure 1 runs and the proof runs rho1 (Theorem 1) and rho2-rho4
// (Theorem 2) encoded as concrete histories.
#include <gtest/gtest.h>

#include "history/atomicity.h"
#include "history/brute_force.h"
#include "history/operations.h"
#include "history/wellformed.h"
#include "history_builder.h"

namespace remus::history {
namespace {

// ---------- Well-formedness ----------

TEST(WellFormed, EmptyHistoryOk) {
  EXPECT_TRUE(check_well_formed({}).ok);
}

TEST(WellFormed, SequentialOpsOk) {
  history_builder b;
  b.inv_w(0, 1).ret_w(0).inv_r(1).ret_r(1, 1);
  EXPECT_TRUE(check_well_formed(b.log()).ok);
}

TEST(WellFormed, OverlappingInvocationsSameProcessRejected) {
  history_builder b;
  b.inv_w(0, 1).inv_r(0);
  const auto r = check_well_formed(b.log());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.explanation.find("busy"), std::string::npos);
}

TEST(WellFormed, ReplyWithoutInvocationRejected) {
  history_builder b;
  b.ret_w(0);
  EXPECT_FALSE(check_well_formed(b.log()).ok);
}

TEST(WellFormed, MismatchedReplyKindRejected) {
  history_builder b;
  b.inv_w(0, 1).ret_r(0, 1);
  EXPECT_FALSE(check_well_formed(b.log()).ok);
}

TEST(WellFormed, CrashClosesPendingOp) {
  history_builder b;
  b.inv_w(0, 1).crash(0).recover(0).inv_w(0, 2).ret_w(0);
  EXPECT_TRUE(check_well_formed(b.log()).ok);
}

TEST(WellFormed, RecoveryWithoutCrashRejected) {
  history_builder b;
  b.recover(0);
  EXPECT_FALSE(check_well_formed(b.log()).ok);
}

TEST(WellFormed, DoubleCrashRejected) {
  history_builder b;
  b.crash(0).crash(0);
  EXPECT_FALSE(check_well_formed(b.log()).ok);
}

TEST(WellFormed, InvocationWhileCrashedRejected) {
  history_builder b;
  b.crash(0).inv_w(0, 1);
  EXPECT_FALSE(check_well_formed(b.log()).ok);
}

// ---------- Operation extraction ----------

TEST(Operations, CompletedAndPending) {
  history_builder b;
  b.inv_w(0, 1).ret_w(0).inv_w(0, 2).crash(0).recover(0).inv_w(0, 3).ret_w(0);
  const auto ops = extract_operations(b.log(), criterion::persistent);
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_FALSE(ops[0].pending());
  EXPECT_TRUE(ops[1].pending());
  EXPECT_FALSE(ops[2].pending());
}

TEST(Operations, PersistentDeadlineIsNextInvocation) {
  history_builder b;
  // events: 0 inv W1, 1 ret, 2 inv W2, 3 crash, 4 recover, 5 inv W3, 6 ret
  b.inv_w(0, 1).ret_w(0).inv_w(0, 2).crash(0).recover(0).inv_w(0, 3).ret_w(0);
  const auto ops = extract_operations(b.log(), criterion::persistent);
  EXPECT_EQ(ops[1].end2, 2 * 5 - 1);  // strictly before event 5 (inv W3)
}

TEST(Operations, TransientDeadlineIsNextWriteReply) {
  history_builder b;
  // events: 0 inv W1, 1 ret, 2 inv W2, 3 crash, 4 recover, 5 inv W3, 6 ret
  b.inv_w(0, 1).ret_w(0).inv_w(0, 2).crash(0).recover(0).inv_w(0, 3).ret_w(0);
  const auto ops = extract_operations(b.log(), criterion::transient);
  EXPECT_EQ(ops[1].end2, 2 * 6 - 1);  // strictly before event 6 (ret W3)
}

TEST(Operations, TransientDeadlineSkipsReads) {
  history_builder b;
  // 0 inv W1, 1 crash, 2 recover, 3 inv R, 4 ret R, 5 inv W2, 6 ret W2
  b.inv_w(0, 1).crash(0).recover(0).inv_r(0).ret_r_initial(0).inv_w(0, 2).ret_w(0);
  const auto ops = extract_operations(b.log(), criterion::transient);
  EXPECT_EQ(ops[0].end2, 2 * 6 - 1);  // read replies don't bound it
  const auto pops = extract_operations(b.log(), criterion::persistent);
  EXPECT_EQ(pops[0].end2, 2 * 3 - 1);  // but the read invocation does
}

TEST(Operations, NoDeadlineWithoutLaterEvents) {
  history_builder b;
  b.inv_w(0, 1).crash(0);
  for (const auto c : {criterion::persistent, criterion::transient}) {
    const auto ops = extract_operations(b.log(), c);
    EXPECT_EQ(ops[0].end2, pos2_infinity);
  }
}

// ---------- Atomicity checker: crash-free basics ----------

TEST(Atomicity, EmptyHistoryAtomic) {
  EXPECT_TRUE(check_persistent_atomicity({}).ok);
  EXPECT_TRUE(check_transient_atomicity({}).ok);
}

TEST(Atomicity, SequentialReadSeesLastWrite) {
  history_builder b;
  b.inv_w(0, 1).ret_w(0).inv_r(1).ret_r(1, 1);
  EXPECT_TRUE(check_persistent_atomicity(b.log()).ok);
}

TEST(Atomicity, SequentialReadOfStaleValueRejected) {
  history_builder b;
  b.inv_w(0, 1).ret_w(0).inv_w(0, 2).ret_w(0).inv_r(1).ret_r(1, 1);
  const auto r = check_persistent_atomicity(b.log());
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.usage_error);
}

TEST(Atomicity, ReadOfInitialBeforeAnyWrite) {
  history_builder b;
  b.inv_r(1).ret_r_initial(1).inv_w(0, 1).ret_w(0);
  EXPECT_TRUE(check_persistent_atomicity(b.log()).ok);
}

TEST(Atomicity, ReadOfInitialAfterCompletedWriteRejected) {
  history_builder b;
  b.inv_w(0, 1).ret_w(0).inv_r(1).ret_r_initial(1);
  EXPECT_FALSE(check_persistent_atomicity(b.log()).ok);
}

TEST(Atomicity, ConcurrentReadMayReturnEitherValue) {
  // W(2) concurrent with the read: both old and new value are legal.
  history_builder old_val;
  old_val.inv_w(0, 1).ret_w(0).inv_w(0, 2).inv_r(1).ret_r(1, 1).ret_w(0);
  EXPECT_TRUE(check_persistent_atomicity(old_val.log()).ok);

  history_builder new_val;
  new_val.inv_w(0, 1).ret_w(0).inv_w(0, 2).inv_r(1).ret_r(1, 2).ret_w(0);
  EXPECT_TRUE(check_persistent_atomicity(new_val.log()).ok);
}

TEST(Atomicity, NewOldReadInversionRejected) {
  // r1 returns the new value, a later non-overlapping r2 the old one.
  history_builder b;
  b.inv_w(0, 1).ret_w(0).inv_w(0, 2);     // W(2) stays pending for a while
  b.inv_r(1).ret_r(1, 2);                 // r1 -> 2
  b.inv_r(1).ret_r(1, 1);                 // r2 -> 1 after r1: inversion
  b.ret_w(0);
  EXPECT_FALSE(check_persistent_atomicity(b.log()).ok);
  EXPECT_FALSE(check_transient_atomicity(b.log()).ok);
}

TEST(Atomicity, ReadYourWrites) {
  history_builder b;
  b.inv_w(0, 1).ret_w(0).inv_r(0).ret_r(0, 1).inv_w(0, 2).ret_w(0).inv_r(0).ret_r(0, 2);
  EXPECT_TRUE(check_persistent_atomicity(b.log()).ok);
}

TEST(Atomicity, ReadOfNeverWrittenValueRejected) {
  history_builder b;
  b.inv_w(0, 1).ret_w(0).inv_r(1).ret_r(1, 99);
  const auto r = check_persistent_atomicity(b.log());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.explanation.find("never-written"), std::string::npos);
}

TEST(Atomicity, ReadPrecedingItsWriteRejected) {
  history_builder b;
  b.inv_r(1).ret_r(1, 5).inv_w(0, 5).ret_w(0);
  const auto r = check_persistent_atomicity(b.log());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.explanation.find("read precedes"), std::string::npos);
}

TEST(Atomicity, DuplicateWriteValuesAreUsageError) {
  history_builder b;
  b.inv_w(0, 1).ret_w(0).inv_w(1, 1).ret_w(1);
  const auto r = check_persistent_atomicity(b.log());
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.usage_error);
}

TEST(Atomicity, ConcurrentWritesAnyOrder) {
  // Two overlapping writes; a later read may see either, consistently.
  history_builder b;
  b.inv_w(0, 1).inv_w(1, 2).ret_w(0).ret_w(1);
  b.inv_r(2).ret_r(2, 1).inv_r(2).ret_r(2, 1);
  EXPECT_TRUE(check_persistent_atomicity(b.log()).ok);

  history_builder c;  // r1 overlaps W(2): may see 1, then 2 once it lands
  c.inv_w(0, 1).ret_w(0).inv_w(1, 2);
  c.inv_r(2).ret_r(2, 1).ret_w(1).inv_r(2).ret_r(2, 2);
  EXPECT_TRUE(check_persistent_atomicity(c.log()).ok);

  history_builder d;  // 2 then 1 then 2 again: impossible
  d.inv_w(0, 1).inv_w(1, 2).ret_w(0).ret_w(1);
  d.inv_r(2).ret_r(2, 2).inv_r(2).ret_r(2, 1).inv_r(2).ret_r(2, 2);
  EXPECT_FALSE(check_persistent_atomicity(d.log()).ok);
}

TEST(Atomicity, ReadsByDifferentProcessesMustAgreeOnOrder) {
  // p1 reads 2 then p2 (strictly later) reads 1: rejected.
  history_builder b;
  b.inv_w(0, 1).inv_w(3, 2).ret_w(0).ret_w(3);
  b.inv_r(1).ret_r(1, 2);
  b.inv_r(2).ret_r(2, 1);
  EXPECT_FALSE(check_persistent_atomicity(b.log()).ok);
}

// ---------- Pending writes without crashes ----------

TEST(Atomicity, PendingUnreadWriteIsDroppable) {
  history_builder b;
  b.inv_w(0, 1).ret_w(0).inv_w(1, 2);  // W(2) never returns, never read
  b.inv_r(2).ret_r(2, 1);
  EXPECT_TRUE(check_persistent_atomicity(b.log()).ok);
}

TEST(Atomicity, PendingWriteMayTakeEffect) {
  history_builder b;
  b.inv_w(0, 1).ret_w(0).inv_w(1, 2);  // W(2) pending forever
  b.inv_r(2).ret_r(2, 2);              // but its value is read
  EXPECT_TRUE(check_persistent_atomicity(b.log()).ok);
}

TEST(Atomicity, PendingWriteEffectsMustStayConsistent) {
  // Read 2 (pending write's value), then read 1 again: inversion.
  history_builder b;
  b.inv_w(0, 1).ret_w(0).inv_w(1, 2);
  b.inv_r(2).ret_r(2, 2).inv_r(2).ret_r(2, 1);
  EXPECT_FALSE(check_persistent_atomicity(b.log()).ok);
  EXPECT_FALSE(check_transient_atomicity(b.log()).ok);
}

// ---------- The paper's runs ----------

// Figure 1 / run rho1 (Theorem 1): p1 writes v1, crashes inside W(v2),
// recovers, writes v3. A read invoked after inv(W(v3)) returns v1 and a
// subsequent read returns v2. Persistent atomicity forbids it (property P1);
// transient atomicity allows it (W(v2) may linearize between the reads).
TEST(PaperRuns, Rho1TransientButNotPersistent) {
  history_builder b;
  b.inv_w(0, 1).ret_w(0);          // W(v1)
  b.inv_w(0, 2).crash(0);          // W(v2) cut short
  b.recover(0);
  b.inv_w(0, 3);                   // W(v3) starts
  b.inv_r(1).ret_r(1, 1);          // R1 -> v1 (invoked after inv W(v3))
  b.inv_r(1).ret_r(1, 2);          // R2 -> v2 (subsequent!)
  b.ret_w(0);                      // W(v3) returns
  EXPECT_FALSE(check_persistent_atomicity(b.log()).ok);
  EXPECT_TRUE(check_transient_atomicity(b.log()).ok);
}

// Same run, but the reads also straddle v3: after reading v3, reading v2 is
// wrong even transiently (v2 cannot linearize after W(v3)'s reply).
TEST(PaperRuns, OrphanValueAfterNextWriteReplyRejectedEvenTransiently) {
  history_builder b;
  b.inv_w(0, 1).ret_w(0);
  b.inv_w(0, 2).crash(0);
  b.recover(0);
  b.inv_w(0, 3).ret_w(0);          // W(v3) completes
  b.inv_r(1).ret_r(1, 3);          // read sees v3
  b.inv_r(1).ret_r(1, 2);          // then v2: beyond the weak deadline
  EXPECT_FALSE(check_persistent_atomicity(b.log()).ok);
  EXPECT_FALSE(check_transient_atomicity(b.log()).ok);
}

// Figure 1, persistent side: after recovery the unfinished W(v2) appears
// completed before W(v3); reads see v2 then v3.
TEST(PaperRuns, PersistentRunOfFigure1Accepted) {
  history_builder b;
  b.inv_w(0, 1).ret_w(0);
  b.inv_w(0, 2).crash(0);
  b.recover(0);
  b.inv_w(0, 3);
  b.inv_r(1).ret_r(1, 2);
  b.ret_w(0);
  b.inv_r(1).ret_r(1, 3);
  EXPECT_TRUE(check_persistent_atomicity(b.log()).ok);
  EXPECT_TRUE(check_transient_atomicity(b.log()).ok);
}

// Runs rho2 and rho3 (Theorem 2): reader crashes between/after reads; each
// run on its own is fine.
TEST(PaperRuns, Rho2Accepted) {
  history_builder b;
  b.inv_w(0, 1).ret_w(0);
  b.inv_w(0, 2);                    // W(v2) in progress
  b.crash(1).recover(1);
  b.inv_r(1).ret_r(1, 1);           // read after recovery -> v1
  b.ret_w(0);
  EXPECT_TRUE(check_persistent_atomicity(b.log()).ok);
}

TEST(PaperRuns, Rho3Accepted) {
  history_builder b;
  b.inv_w(0, 1).ret_w(0);
  b.inv_w(0, 2);
  b.inv_r(1).ret_r(1, 2);           // read before crash -> v2
  b.crash(1).recover(1);
  b.ret_w(0);
  EXPECT_TRUE(check_persistent_atomicity(b.log()).ok);
}

// Run rho4 (Theorem 2): reading v2, crashing, then reading v1 is not
// atomic in any sense — the read order inverts the write order.
TEST(PaperRuns, Rho4RejectedByBothCriteria) {
  history_builder b;
  b.inv_w(0, 1).ret_w(0);
  b.inv_w(0, 2);                    // W(v2) pending throughout
  b.inv_r(1).ret_r(1, 2);           // R -> v2
  b.crash(1).recover(1);
  b.inv_r(1).ret_r(1, 1);           // R -> v1 after recovery
  EXPECT_FALSE(check_persistent_atomicity(b.log()).ok);
  EXPECT_FALSE(check_transient_atomicity(b.log()).ok);
}

// Transient relies on the *same process* continuing; another process's
// write does not extend the weak deadline.
TEST(PaperRuns, WeakCompletionIsPerProcess) {
  history_builder b;
  b.inv_w(0, 1).ret_w(0);
  b.inv_w(0, 2).crash(0);           // p0's W(v2) pending
  b.inv_w(1, 3).ret_w(1);           // p1 completes W(v3)
  b.inv_r(2).ret_r(2, 3);           // sees v3
  b.inv_r(2).ret_r(2, 2);           // then v2: p0 never wrote again, so the
                                    // weak deadline never arrived — allowed!
  EXPECT_TRUE(check_transient_atomicity(b.log()).ok);
  // Persistent: p0 has no next invocation either, so W(v2) is also
  // unconstrained there. Both accept: the pending write floats freely.
  EXPECT_TRUE(check_persistent_atomicity(b.log()).ok);
}

// Once p0 recovers and completes another write, v2 can no longer appear
// after it (transient), nor after p0's next invocation (persistent).
TEST(PaperRuns, WeakDeadlineEnforced) {
  history_builder b;
  b.inv_w(0, 1).ret_w(0);
  b.inv_w(0, 2).crash(0);
  b.recover(0);
  b.inv_w(0, 3).ret_w(0);
  b.inv_r(1).ret_r(1, 3).inv_r(1).ret_r(1, 2);
  EXPECT_FALSE(check_transient_atomicity(b.log()).ok);
}

// ---------- Cross-validation against the brute-force checker ----------

TEST(BruteForce, AgreesOnPaperRuns) {
  const auto cases = [] {
    std::vector<history_log> hs;
    {
      history_builder b;
      b.inv_w(0, 1).ret_w(0).inv_w(0, 2).crash(0).recover(0).inv_w(0, 3);
      b.inv_r(1).ret_r(1, 1).inv_r(1).ret_r(1, 2).ret_w(0);
      hs.push_back(b.log());
    }
    {
      history_builder b;
      b.inv_w(0, 1).ret_w(0).inv_w(0, 2).inv_r(1).ret_r(1, 2);
      b.crash(1).recover(1).inv_r(1).ret_r(1, 1);
      hs.push_back(b.log());
    }
    {
      history_builder b;
      b.inv_w(0, 1).ret_w(0).inv_r(1).ret_r(1, 1);
      hs.push_back(b.log());
    }
    return hs;
  }();
  for (const auto& h : cases) {
    for (const auto c : {criterion::persistent, criterion::transient}) {
      const auto fast = check_atomicity(h, c);
      const auto slow = check_atomicity_brute_force(h, c);
      EXPECT_EQ(fast.ok, slow.ok) << to_string(h) << fast.explanation;
    }
  }
}

}  // namespace
}  // namespace remus::history
