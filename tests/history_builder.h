// Fluent builder for hand-crafted histories in tests. Times advance by 1 us
// per event, matching the index-based reasoning in the checkers.
#pragma once

#include "history/event.h"

namespace remus::history {

class history_builder {
 public:
  history_builder& inv_w(std::uint32_t p, std::uint32_t v) {
    push(event_kind::invoke_write, p, value_of_u32(v));
    return *this;
  }
  history_builder& ret_w(std::uint32_t p) {
    push(event_kind::reply_write, p, {});
    return *this;
  }
  history_builder& inv_r(std::uint32_t p) {
    push(event_kind::invoke_read, p, {});
    return *this;
  }
  history_builder& ret_r(std::uint32_t p, std::uint32_t v) {
    push(event_kind::reply_read, p, value_of_u32(v));
    return *this;
  }
  /// Read that returned the initial value ⊥.
  history_builder& ret_r_initial(std::uint32_t p) {
    push(event_kind::reply_read, p, initial_value());
    return *this;
  }
  history_builder& crash(std::uint32_t p) {
    push(event_kind::crash, p, {});
    return *this;
  }
  history_builder& recover(std::uint32_t p) {
    push(event_kind::recover, p, {});
    return *this;
  }

  [[nodiscard]] const history_log& log() const { return log_; }

 private:
  void push(event_kind k, std::uint32_t p, value v) {
    log_.push_back(event{k, process_id{p}, std::move(v),
                         static_cast<time_ns>(log_.size()) * 1000});
  }

  history_log log_;
};

}  // namespace remus::history
