// Tests for the threaded real-time runtime: the same protocol cores driven
// by actual threads, an in-process datagram transport, and (optionally)
// fsync'd file stores — the shape of the paper's C/UDP implementation.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "common/error.h"
#include "history/atomicity.h"
#include "runtime/service.h"
#include "storage/wal_store.h"

namespace remus::runtime {
namespace {

service_options fast_options(proto::protocol_policy pol, std::uint32_t n = 3) {
  service_options opt;
  opt.n = n;
  opt.policy = std::move(pol);
  opt.node.retransmit_check = 5 * 1000 * 1000;            // 5 ms
  opt.node.op_timeout = 20ll * 1000 * 1000 * 1000;        // generous CI margin
  return opt;
}

TEST(Transport, DeliversToAttachedHandlers) {
  datagram_transport t;
  std::atomic<int> got{0};
  t.attach(process_id{0}, [&](const proto::message&) { got += 1; });
  proto::message m;
  m.kind = proto::msg_kind::sn_query;
  m.from = process_id{1};
  t.send(process_id{0}, m);
  t.broadcast(2, m);  // one copy to p0, one dropped at unattached p1
  for (int i = 0; i < 200 && got < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(got.load(), 2);
  EXPECT_EQ(t.datagrams_sent(), 3u);
  EXPECT_EQ(t.datagrams_dropped(), 1u);
}

TEST(Transport, DetachedNodeLosesTraffic) {
  datagram_transport t;
  std::atomic<int> got{0};
  t.attach(process_id{0}, [&](const proto::message&) { got += 1; });
  t.detach(process_id{0});
  proto::message m;
  m.kind = proto::msg_kind::sn_query;
  m.from = process_id{1};
  t.send(process_id{0}, m);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(got.load(), 0);
}

class RuntimePolicies : public ::testing::TestWithParam<const char*> {
 protected:
  static proto::protocol_policy policy() {
    const std::string name = GetParam();
    if (name == "crash_stop") return proto::crash_stop_policy();
    if (name == "persistent") return proto::persistent_policy();
    return proto::transient_policy();
  }
};

INSTANTIATE_TEST_SUITE_P(Algorithms, RuntimePolicies,
                         ::testing::Values("crash_stop", "persistent", "transient"));

TEST_P(RuntimePolicies, WriteThenReadEverywhere) {
  service s(fast_options(policy()));
  s.write(process_id{0}, value_of_u32(7));
  for (std::uint32_t p = 0; p < s.size(); ++p) {
    EXPECT_EQ(s.read(process_id{p}), value_of_u32(7));
  }
  const auto verdict = history::check_persistent_atomicity(s.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST_P(RuntimePolicies, ConcurrentClientsStayAtomic) {
  service s(fast_options(policy(), 5));
  std::vector<std::thread> clients;
  std::atomic<std::uint32_t> next{1};
  for (std::uint32_t p = 0; p < 5; ++p) {
    clients.emplace_back([&, p] {
      for (int i = 0; i < 10; ++i) {
        if ((i + p) % 2 == 0) {
          s.write(process_id{p}, value_of_u32(next.fetch_add(1)));
        } else {
          (void)s.read(process_id{p});
        }
      }
    });
  }
  for (auto& th : clients) th.join();
  const auto verdict = history::check_persistent_atomicity(s.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(RuntimeCrashRecovery, ValueSurvivesCrashOfAdopters) {
  service s(fast_options(proto::persistent_policy()));
  s.write(process_id{0}, value_of_u32(5));
  s.crash(process_id{2});
  s.recover(process_id{2});
  EXPECT_EQ(s.read(process_id{2}), value_of_u32(5));
  const auto verdict = history::check_persistent_atomicity(s.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(RuntimeCrashRecovery, TransientCounterAdvances) {
  service s(fast_options(proto::transient_policy()));
  s.write(process_id{0}, value_of_u32(1));
  s.crash(process_id{0});
  s.recover(process_id{0});
  s.crash(process_id{0});
  s.recover(process_id{0});
  s.write(process_id{0}, value_of_u32(2));
  EXPECT_EQ(s.read(process_id{1}), value_of_u32(2));
  const auto verdict = history::check_transient_atomicity(s.events());
  EXPECT_TRUE(verdict.ok) << verdict.explanation;
}

TEST(RuntimeCrashRecovery, CrashedNodeRejectsOps) {
  service s(fast_options(proto::persistent_policy()));
  s.crash(process_id{1});
  EXPECT_THROW(s.read(process_id{1}), precondition_error);
  EXPECT_THROW(s.write(process_id{1}, value_of_u32(1)), precondition_error);
  s.recover(process_id{1});
  EXPECT_NO_THROW((void)s.read(process_id{1}));
}

TEST(RuntimeCrashRecovery, MinorityCrashDoesNotBlockOthers) {
  service s(fast_options(proto::persistent_policy()));
  s.crash(process_id{2});
  s.write(process_id{0}, value_of_u32(3));
  EXPECT_EQ(s.read(process_id{1}), value_of_u32(3));
}

TEST(RuntimeLossyTransport, RetransmissionMakesProgress) {
  service_options opt = fast_options(proto::persistent_policy());
  opt.net.drop_probability = 0.3;
  opt.node.retransmit_check = 2 * 1000 * 1000;  // 2 ms
  service s(std::move(opt));
  s.write(process_id{0}, value_of_u32(9));
  EXPECT_EQ(s.read(process_id{1}), value_of_u32(9));
}

TEST(RuntimeDurableFiles, StateSurvivesOnDisk) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("remus_rt_" + std::to_string(::getpid()));
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  {
    service_options opt = fast_options(proto::persistent_policy());
    opt.durable_dir = dir;
    service s(std::move(opt));
    s.write(process_id{0}, value_of_u32(77));
    s.crash(process_id{1});
    s.recover(process_id{1});
    EXPECT_EQ(s.read(process_id{1}), value_of_u32(77));
  }
  // The records really are on disk: each process owns a WAL directory, and
  // the storage engine alone (no protocol, no fresh install overwriting the
  // records) recovers the written register's record from it.
  EXPECT_TRUE(std::filesystem::exists(dir / "0" / "wal.log"));
  {
    storage::wal_store st(std::make_unique<storage::file_media>(dir / "0", false));
    const auto rec = st.retrieve(
        {storage::record_area::written, default_register});
    ASSERT_TRUE(rec.has_value());
    EXPECT_FALSE(rec->empty());
    EXPECT_EQ(st.last_recovery().log_stop, storage::wal_scan_stop::clean_end);
  }
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace remus::runtime
