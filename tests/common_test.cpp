// Unit tests for the common substrate: ids, tags, values, codec, rng.
#include <gtest/gtest.h>

#include "common/codec.h"
#include "common/error.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"
#include "common/timestamp.h"
#include "common/value.h"

namespace remus {
namespace {

TEST(Ids, ProcessValidity) {
  EXPECT_FALSE(no_process.valid());
  EXPECT_TRUE(process_id{0}.valid());
  EXPECT_TRUE(process_id{7}.valid());
  EXPECT_EQ(process_id{3}, process_id{3});
  EXPECT_NE(process_id{3}, process_id{4});
}

TEST(Tag, InitialOrdersFirst) {
  EXPECT_TRUE(initial_tag.initial());
  const tag t{1, 0, process_id{0}};
  EXPECT_LT(initial_tag, t);
  EXPECT_FALSE(t.initial());
}

TEST(Tag, LexicographicBySequenceNumber) {
  const tag a{1, 0, process_id{9}};
  const tag b{2, 0, process_id{0}};
  EXPECT_LT(a, b);  // sn dominates pid
}

TEST(Tag, TieBreakByRecoveryCounterThenWriter) {
  const tag a{5, 0, process_id{1}};
  const tag b{5, 1, process_id{0}};
  EXPECT_LT(a, b);  // rec dominates writer
  const tag c{5, 1, process_id{2}};
  EXPECT_LT(b, c);  // writer id breaks the final tie
}

TEST(Tag, WriterRankOrdersInitialBeforeProcessZero) {
  // Same (sn, rec): the initial tag (invalid writer) must order first,
  // otherwise the first write by p0 could not replace the initial value.
  const tag init{0, 0, no_process};
  const tag p0{0, 0, process_id{0}};
  EXPECT_LT(init, p0);
}

TEST(Tag, EqualityIsStructural) {
  const tag a{3, 1, process_id{2}};
  const tag b{3, 1, process_id{2}};
  EXPECT_EQ(a, b);
  EXPECT_EQ(to_string(a), to_string(b));
}

TEST(Tag, ToStringShowsRecOnlyWhenNonzero) {
  EXPECT_EQ(to_string(tag{4, 0, process_id{1}}), "[4,p1]");
  EXPECT_EQ(to_string(tag{4, 2, process_id{1}}), "[4r2,p1]");
}

TEST(Value, InitialIsEmpty) {
  EXPECT_TRUE(initial_value().is_initial());
  EXPECT_FALSE(value_of_u32(0).is_initial());
}

TEST(Value, U32RoundTrip) {
  const value v = value_of_u32(0xdeadbeef);
  EXPECT_EQ(v.size(), 4u);
  ASSERT_TRUE(value_as_u32(v).has_value());
  EXPECT_EQ(*value_as_u32(v), 0xdeadbeefu);
  EXPECT_FALSE(value_as_u64(v).has_value());
}

TEST(Value, U64RoundTrip) {
  const value v = value_of_u64(0x0123456789abcdefULL);
  ASSERT_TRUE(value_as_u64(v).has_value());
  EXPECT_EQ(*value_as_u64(v), 0x0123456789abcdefULL);
}

TEST(Value, StringRoundTrip) {
  const value v = value_of_string("hello shared memory");
  EXPECT_EQ(value_as_string(v), "hello shared memory");
}

TEST(Value, SizedPayloadIsDeterministic) {
  const value a = value_of_size(1000, 7);
  const value b = value_of_size(1000, 7);
  const value c = value_of_size(1000, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 1000u);
}

TEST(Codec, PrimitivesRoundTrip) {
  byte_writer w;
  w.put_u8(7);
  w.put_u32(0xcafebabe);
  w.put_u64(0x1122334455667788ULL);
  w.put_i64(-42);
  w.put_string("abc");
  w.put_process(process_id{5});
  w.put_tag(tag{9, 2, process_id{1}});
  w.put_value(value_of_u32(3));

  byte_reader r(w.buffer());
  EXPECT_EQ(r.get_u8(), 7);
  EXPECT_EQ(r.get_u32(), 0xcafebabeu);
  EXPECT_EQ(r.get_u64(), 0x1122334455667788ULL);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_EQ(r.get_string(), "abc");
  EXPECT_EQ(r.get_process(), process_id{5});
  EXPECT_EQ(r.get_tag(), (tag{9, 2, process_id{1}}));
  EXPECT_EQ(r.get_value(), value_of_u32(3));
  EXPECT_TRUE(r.done());
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Codec, TruncationThrows) {
  byte_writer w;
  w.put_u32(1);
  byte_reader r(w.buffer());
  (void)r.get_u32();
  EXPECT_THROW((void)r.get_u32(), codec_error);
}

TEST(Codec, TrailingBytesDetected) {
  byte_writer w;
  w.put_u32(1);
  w.put_u32(2);
  byte_reader r(w.buffer());
  (void)r.get_u32();
  EXPECT_THROW(r.expect_done(), codec_error);
}

TEST(Codec, BadLengthPrefixThrows) {
  byte_writer w;
  w.put_u32(1000);  // claims 1000 bytes follow; none do
  byte_reader r(w.buffer());
  EXPECT_THROW((void)r.get_bytes(), codec_error);
}

TEST(Rng, Deterministic) {
  rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, BoundsRespected) {
  rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
    const auto x = r.next_in(-5, 5);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
    const double u = r.next_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  rng r(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  rng r(11);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, ForkDiverges) {
  rng a(5);
  rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Time, LiteralsConvert) {
  EXPECT_EQ(5_us, 5000);
  EXPECT_EQ(2_ms, 2'000'000);
  EXPECT_EQ(1_s, 1'000'000'000);
  EXPECT_DOUBLE_EQ(to_us(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_ms(2'500'000), 2.5);
}

}  // namespace
}  // namespace remus
