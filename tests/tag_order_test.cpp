// Tests for the Lemma-1 tag-order checker (section IV-B of the paper) and
// for the crash-recovery regular/safe registers of section VI.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "history/atomicity.h"
#include "history/tag_order.h"
#include "proto/policy.h"

namespace remus::history {
namespace {

tagged_op mk(bool is_read, std::uint32_t p, tag t, std::uint32_t v, time_ns inv,
             time_ns rep) {
  tagged_op op;
  op.is_read = is_read;
  op.p = process_id{p};
  op.applied = t;
  op.val = value_of_u32(v);
  op.invoked_at = inv;
  op.replied_at = rep;
  return op;
}

TEST(TagOrder, EmptyAndSingletonOk) {
  EXPECT_TRUE(check_tag_order({}).ok);
  EXPECT_TRUE(check_tag_order({mk(false, 0, {1, 0, process_id{0}}, 1, 0, 10)}).ok);
}

TEST(TagOrder, MonotoneWritesOk) {
  std::vector<tagged_op> ops{
      mk(false, 0, {1, 0, process_id{0}}, 1, 0, 10),
      mk(false, 1, {2, 0, process_id{1}}, 2, 20, 30),
      mk(true, 2, {2, 0, process_id{1}}, 2, 40, 50),
  };
  EXPECT_TRUE(check_tag_order(ops).ok);
}

TEST(TagOrder, L1iReadMustNotRegress) {
  std::vector<tagged_op> ops{
      mk(false, 0, {2, 0, process_id{0}}, 2, 0, 10),
      mk(true, 1, {1, 0, process_id{0}}, 1, 20, 30),  // older tag after newer write
  };
  const auto r = check_tag_order(ops);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.explanation.find("L1(i)"), std::string::npos);
}

TEST(TagOrder, L1iiWriteMustStrictlyGrow) {
  std::vector<tagged_op> ops{
      mk(false, 0, {2, 0, process_id{0}}, 1, 0, 10),
      mk(false, 1, {2, 0, process_id{0}}, 1, 20, 30),  // same tag, sequential
  };
  const auto r = check_tag_order(ops);
  EXPECT_FALSE(r.ok);  // rejected as L2 (duplicate tag) before L1(ii)
}

TEST(TagOrder, L2DistinctTagsForDistinctWrites) {
  std::vector<tagged_op> ops{
      mk(false, 0, {3, 0, process_id{0}}, 1, 0, 10),
      mk(false, 1, {3, 0, process_id{0}}, 2, 5, 15),  // concurrent, same tag
  };
  const auto r = check_tag_order(ops);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.explanation.find("L2"), std::string::npos);
}

TEST(TagOrder, L3ReadValueMatchesTagsWrite) {
  std::vector<tagged_op> ops{
      mk(false, 0, {1, 0, process_id{0}}, 7, 0, 10),
      mk(true, 1, {1, 0, process_id{0}}, 8, 20, 30),  // tag of W(7) but value 8
  };
  const auto r = check_tag_order(ops);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.explanation.find("L3"), std::string::npos);
}

TEST(TagOrder, ReadOfPendingWriteTolerated) {
  // A read may return a tag whose write never completed (crashed writer):
  // the tag is absent from the completed-writes map; that alone is fine.
  std::vector<tagged_op> ops{
      mk(true, 1, {5, 0, process_id{0}}, 9, 0, 10),
  };
  EXPECT_TRUE(check_tag_order(ops).ok);
}

TEST(TagOrder, RegularModeSkipsReadLeftHandSide) {
  // Read saw tag 5 (from a single replica); a later write picked tag 3.
  // Atomic registers forbid it; regular ones do not (no write-back).
  std::vector<tagged_op> ops{
      mk(true, 1, {5, 0, process_id{0}}, 9, 0, 10),
      mk(false, 2, {3, 0, process_id{2}}, 4, 20, 30),
  };
  EXPECT_FALSE(check_tag_order(ops, true).ok);
  EXPECT_TRUE(check_tag_order(ops, false).ok);
}

}  // namespace
}  // namespace remus::history

namespace remus::core {
namespace {

// ---------- Crash-recovery regular/safe registers (section VI) ----------

TEST(RegularCr, SingleRoundReadsNeverLogAndStillRecover) {
  cluster_config cfg;
  cfg.n = 5;
  cfg.policy = proto::regular_cr_policy();
  cluster c(cfg);
  c.write(process_id{0}, value_of_u32(1));
  const auto r = c.submit_read(process_id{1}, c.now());
  ASSERT_TRUE(c.run_until_idle());
  EXPECT_EQ(c.result(r).v, value_of_u32(1));
  EXPECT_EQ(c.result(r).sample.round_trips, 1u);  // the saved round-trip
  EXPECT_EQ(c.result(r).sample.causal_logs, 0u);

  // Writes still pay their causal log, and values survive a blackout.
  const auto w = c.submit_write(process_id{2}, value_of_u32(2), c.now());
  ASSERT_TRUE(c.run_until_idle());
  EXPECT_EQ(c.result(w).sample.causal_logs, 1u);
  c.apply(sim::make_blackout_plan(cfg.n, c.now() + 1_ms, 5_ms));
  ASSERT_TRUE(c.run_until_idle());
  EXPECT_EQ(c.read(process_id{4}), value_of_u32(2));
}

TEST(RegularCr, TagOrderHoldsInRegularMode) {
  cluster_config cfg;
  cfg.n = 5;
  cfg.policy = proto::regular_cr_policy();
  cfg.seed = 9;
  cluster c(cfg);
  std::uint32_t v = 1;
  for (int i = 0; i < 10; ++i) {
    c.submit_write(process_id{static_cast<std::uint32_t>(i) % 5}, value_of_u32(v++),
                   c.now());
    c.submit_read(process_id{(static_cast<std::uint32_t>(i) + 2) % 5}, c.now());
    ASSERT_TRUE(c.run_until_idle());
  }
  const auto order =
      history::check_tag_order(c.tagged_operations(), /*check_read_monotonicity=*/false);
  EXPECT_TRUE(order.ok) << order.explanation;
}

TEST(RegularCr, NewOldInversionIsPossible) {
  // The inversion the atomic read's write-back prevents: allowed by
  // regularity, observable with the single-round read.
  cluster_config cfg;
  cfg.n = 5;
  cfg.policy = proto::regular_cr_policy();
  cfg.policy.retransmit_delay = 10_s;
  cluster c(cfg);
  c.write(process_id{0}, value_of_u32(1));
  // W(2) reaches only p3, writer crashes.
  c.network().set_filter([](const sim::packet_info& pi) {
    sim::filter_verdict v;
    if (pi.kind == static_cast<std::uint8_t>(proto::msg_kind::write) &&
        pi.from == process_id{0} && pi.to != process_id{3}) {
      v.drop = true;
    }
    return v;
  });
  c.submit_write(process_id{0}, value_of_u32(2), c.now());
  c.submit_crash(process_id{0}, c.now() + 2_ms);
  c.run_for(3_ms);
  // R1 sees p3 first -> 2; R2 never hears p3 -> 1.
  c.network().set_filter([](const sim::packet_info& pi) {
    sim::filter_verdict v;
    if (pi.kind == static_cast<std::uint8_t>(proto::msg_kind::read_ack)) {
      v.deliver_at = pi.now + (pi.from == process_id{3} ? 50_us : 400_us);
    }
    return v;
  });
  const auto r1 = c.submit_read(process_id{1}, c.now());
  ASSERT_TRUE(c.run_until_idle());
  c.network().set_filter([](const sim::packet_info& pi) {
    sim::filter_verdict v;
    if (pi.kind == static_cast<std::uint8_t>(proto::msg_kind::read_ack) &&
        pi.from == process_id{3}) {
      v.drop = true;
    }
    return v;
  });
  const auto r2 = c.submit_read(process_id{1}, c.now());
  ASSERT_TRUE(c.run_until_idle());
  c.network().clear_filter();

  EXPECT_EQ(c.result(r1).v, value_of_u32(2));
  EXPECT_EQ(c.result(r2).v, value_of_u32(1));  // inversion!
  // Atomicity is indeed violated — regularity tolerates exactly this.
  EXPECT_FALSE(history::check_transient_atomicity(c.events()).ok);
}

TEST(SafeCr, ReturnsFirstReplyAndSurvivesCrashes) {
  cluster_config cfg;
  cfg.n = 5;
  cfg.policy = proto::safe_cr_policy();
  cluster c(cfg);
  c.write(process_id{0}, value_of_u32(42));
  EXPECT_EQ(c.read(process_id{1}), value_of_u32(42));  // quiet: all agree
  c.submit_crash(process_id{2}, c.now());
  c.submit_recover(process_id{2}, c.now() + 2_ms);
  ASSERT_TRUE(c.run_until_idle());
  EXPECT_EQ(c.read(process_id{2}), value_of_u32(42));
}

TEST(WeakCr, WritesStillCostOneCausalLog) {
  // Section VI: weakening the register does not reduce the write's log bill.
  for (auto pol : {proto::regular_cr_policy(), proto::safe_cr_policy()}) {
    cluster_config cfg;
    cfg.n = 5;
    cfg.policy = pol;
    cluster c(cfg);
    const auto w = c.submit_write(process_id{0}, value_of_u32(1), 0);
    ASSERT_TRUE(c.run_until_idle());
    EXPECT_EQ(c.result(w).sample.causal_logs, 1u) << pol.name;
  }
}

}  // namespace
}  // namespace remus::core
