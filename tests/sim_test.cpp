// Unit tests for the simulation substrate: event queue, network model,
// disk model, fault plans.
#include <gtest/gtest.h>

#include "common/error.h"
#include "sim/disk_model.h"
#include "sim/event_queue.h"
#include "sim/fault_plan.h"
#include "sim/network_model.h"

namespace remus::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  event_queue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, TiesRunInScheduleOrder) {
  event_queue q;
  std::vector<int> order;
  q.schedule_at(5, [&] { order.push_back(1); });
  q.schedule_at(5, [&] { order.push_back(2); });
  q.schedule_at(5, [&] { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SchedulingIntoThePastThrows) {
  event_queue q;
  q.schedule_at(10, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(5, [] {}), driver_error);
}

TEST(EventQueue, EventsMayScheduleEvents) {
  event_queue q;
  int hits = 0;
  q.schedule_at(1, [&] {
    ++hits;
    q.schedule_after(1, [&] { ++hits; });
  });
  q.run();
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(q.now(), 2);
}

TEST(EventQueue, CancelPreventsExecution) {
  event_queue q;
  int hits = 0;
  const auto t = q.schedule_at(5, [&] { ++hits; });
  EXPECT_TRUE(q.cancel(t));
  EXPECT_FALSE(q.cancel(t));  // double-cancel reports failure
  q.run();
  EXPECT_EQ(hits, 0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RunUntilLeavesLaterEvents) {
  event_queue q;
  int hits = 0;
  q.schedule_at(10, [&] { ++hits; });
  q.schedule_at(20, [&] { ++hits; });
  q.run_until(15);
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(q.now(), 15);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(hits, 2);
}

TEST(EventQueue, RunWithLimitStops) {
  event_queue q;
  for (int i = 0; i < 10; ++i) q.schedule_at(i, [] {});
  EXPECT_EQ(q.run(4), 4u);
  EXPECT_EQ(q.pending(), 6u);
}

TEST(NetworkModel, ChargesBaseDelayAndSerialization) {
  network_config cfg;
  cfg.base_delay = 100'000;
  cfg.jitter = 0;
  cfg.bandwidth_bps = 1'000'000;  // 1 MB/s => 1000 bytes take 1 ms
  network_model net(cfg, rng(1));
  const auto ds = net.route(0, process_id{0}, {process_id{1}}, 1000, 0, 1, 1);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].deliver_at, 100'000 + 1'000'000);
}

TEST(NetworkModel, MulticastSerializedOnce) {
  network_config cfg;
  cfg.base_delay = 100'000;
  cfg.jitter = 0;
  cfg.bandwidth_bps = 1'000'000;
  network_model net(cfg, rng(1));
  const auto ds = net.route(0, process_id{0},
                            {process_id{1}, process_id{2}, process_id{3}}, 1000, 0, 1, 1);
  ASSERT_EQ(ds.size(), 3u);
  for (const auto& d : ds) EXPECT_EQ(d.deliver_at, 1'100'000);  // not 3x
}

TEST(NetworkModel, LoopbackIsFast) {
  network_config cfg;
  cfg.base_delay = 100'000;
  cfg.jitter = 0;
  cfg.loopback_delay = 10'000;
  network_model net(cfg, rng(1));
  const auto ds = net.route(0, process_id{2}, {process_id{2}}, 8, 0, 1, 1);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].deliver_at, 10'000);
}

TEST(NetworkModel, DropsAreFairLossy) {
  network_config cfg;
  cfg.drop_probability = 0.5;
  cfg.jitter = 0;
  network_model net(cfg, rng(7));
  int delivered = 0;
  for (int i = 0; i < 2000; ++i) {
    delivered += static_cast<int>(
        net.route(0, process_id{0}, {process_id{1}}, 8, 0, 1, 1).size());
  }
  EXPECT_GT(delivered, 800);  // not all dropped
  EXPECT_LT(delivered, 1200);  // roughly half
}

TEST(NetworkModel, DuplicatesHappen) {
  network_config cfg;
  cfg.duplicate_probability = 0.5;
  cfg.jitter = 0;
  network_model net(cfg, rng(7));
  std::size_t copies = 0;
  for (int i = 0; i < 1000; ++i) {
    copies += net.route(0, process_id{0}, {process_id{1}}, 8, 0, 1, 1).size();
  }
  EXPECT_GT(copies, 1300u);
  EXPECT_LT(copies, 1700u);
}

TEST(NetworkModel, CutLinkDropsEverything) {
  network_config cfg;
  cfg.jitter = 0;
  network_model net(cfg, rng(1));
  net.cut_link(process_id{0}, process_id{1});
  EXPECT_TRUE(net.route(0, process_id{0}, {process_id{1}}, 8, 0, 1, 1).empty());
  // Reverse direction unaffected.
  EXPECT_EQ(net.route(0, process_id{1}, {process_id{0}}, 8, 0, 1, 1).size(), 1u);
  net.restore_link(process_id{0}, process_id{1});
  EXPECT_EQ(net.route(0, process_id{0}, {process_id{1}}, 8, 0, 1, 1).size(), 1u);
}

TEST(NetworkModel, CutPairSeversBothDirections) {
  network_config cfg;
  cfg.jitter = 0;
  network_model net(cfg, rng(1));
  net.cut_pair(process_id{0}, process_id{1});
  EXPECT_TRUE(net.route(0, process_id{0}, {process_id{1}}, 8, 0, 1, 1).empty());
  EXPECT_TRUE(net.route(0, process_id{1}, {process_id{0}}, 8, 0, 1, 1).empty());
  // Uninvolved links unaffected.
  EXPECT_EQ(net.route(0, process_id{0}, {process_id{2}}, 8, 0, 1, 1).size(), 1u);
  net.restore_pair(process_id{0}, process_id{1});
  EXPECT_EQ(net.route(0, process_id{0}, {process_id{1}}, 8, 0, 1, 1).size(), 1u);
  EXPECT_EQ(net.route(0, process_id{1}, {process_id{0}}, 8, 0, 1, 1).size(), 1u);
}

TEST(NetworkModel, PartitionSeversExactlyCrossGroupPairs) {
  network_config cfg;
  cfg.jitter = 0;
  network_model net(cfg, rng(1));
  // {0, 1} | {2, 3, 4}: every cross-group pair dead both ways, every
  // intra-group pair alive.
  net.partition({{process_id{0}, process_id{1}},
                 {process_id{2}, process_id{3}, process_id{4}}});
  const auto delivered = [&](std::uint32_t a, std::uint32_t b) {
    return !net.route(0, process_id{a}, {process_id{b}}, 8, 0, 1, 1).empty();
  };
  for (std::uint32_t a = 0; a < 5; ++a) {
    for (std::uint32_t b = 0; b < 5; ++b) {
      if (a == b) continue;
      const bool same_side = (a < 2) == (b < 2);
      EXPECT_EQ(delivered(a, b), same_side) << a << " -> " << b;
    }
  }
  net.restore_all_links();
  for (std::uint32_t a = 0; a < 5; ++a) {
    for (std::uint32_t b = 0; b < 5; ++b) {
      if (a != b) EXPECT_TRUE(delivered(a, b)) << a << " -> " << b;
    }
  }
}

TEST(NetworkModel, FilterControlsDeliveries) {
  network_config cfg;
  cfg.jitter = 0;
  cfg.base_delay = 100;
  network_model net(cfg, rng(1));
  net.set_filter([](const packet_info& p) {
    filter_verdict v;
    if (p.to == process_id{1}) v.drop = true;
    if (p.to == process_id{2}) v.deliver_at = 999;
    return v;
  });
  const auto ds = net.route(0, process_id{0},
                            {process_id{1}, process_id{2}, process_id{3}}, 8, 0, 1, 1);
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds[0].to, process_id{2});
  EXPECT_EQ(ds[0].deliver_at, 999);
  EXPECT_EQ(ds[1].to, process_id{3});
  EXPECT_EQ(ds[1].deliver_at, 100 + 8 * 80);  // model-chosen
  net.clear_filter();
  EXPECT_EQ(net.route(0, process_id{0}, {process_id{1}}, 8, 0, 1, 1).size(), 1u);
}

TEST(DiskModel, ChargesLatencyPlusBandwidth) {
  disk_config cfg;
  cfg.base_latency = 200'000;
  cfg.bandwidth_bps = 1'000'000;  // 1 MB/s
  disk_model d(cfg);
  EXPECT_EQ(d.issue(0, 0), 200'000);
  EXPECT_EQ(d.issue(1'000'000, 1000), 1'000'000 + 200'000 + 1'000'000);
}

TEST(DiskModel, OverlappingRequestsQueueFifo) {
  disk_config cfg;
  cfg.base_latency = 100;
  cfg.bandwidth_bps = 0;
  disk_model d(cfg);
  EXPECT_EQ(d.issue(0, 8), 100);
  EXPECT_EQ(d.issue(0, 8), 200);  // second waits for the first
  EXPECT_EQ(d.issue(50, 8), 300);
  EXPECT_EQ(d.issue(1000, 8), 1100);  // idle gap resets
}

TEST(FaultPlan, WellFormedAlternation) {
  fault_plan p;
  p.add_crash(10, process_id{0});
  p.add_recover(20, process_id{0});
  p.add_crash(30, process_id{0});
  p.add_recover(40, process_id{0});
  p.sort();
  EXPECT_TRUE(p.well_formed(3));
  EXPECT_TRUE(p.all_up_eventually(3));
}

TEST(FaultPlan, DetectsDoubleCrash) {
  fault_plan p;
  p.add_crash(10, process_id{0});
  p.add_crash(20, process_id{0});
  p.sort();
  EXPECT_FALSE(p.well_formed(3));
}

TEST(FaultPlan, DetectsEndStateDown) {
  fault_plan p;
  p.add_crash(10, process_id{1});
  p.sort();
  EXPECT_TRUE(p.well_formed(3));
  EXPECT_FALSE(p.all_up_eventually(3));
}

TEST(FaultPlan, RandomPlansAreWellFormed) {
  rng r(3);
  for (int i = 0; i < 50; ++i) {
    random_plan_config cfg;
    cfg.n = 5;
    cfg.crashes = 6;
    cfg.horizon = 1'000'000;
    cfg.min_down = 1000;
    cfg.max_down = 100'000;
    const fault_plan p = make_random_plan(cfg, r);
    EXPECT_TRUE(p.well_formed(cfg.n));
    EXPECT_TRUE(p.all_up_eventually(cfg.n));
  }
}

TEST(FaultPlan, MinorityOnlyPlansKeepMajorityUp) {
  rng r(3);
  random_plan_config cfg;
  cfg.n = 5;
  cfg.crashes = 30;
  cfg.horizon = 1'000'000;
  cfg.min_down = 50'000;
  cfg.max_down = 200'000;
  cfg.allow_majority_crash = false;
  for (int trial = 0; trial < 20; ++trial) {
    const fault_plan p = make_random_plan(cfg, r);
    // Replay: at no instant may 3+ of 5 be down.
    std::vector<bool> down(cfg.n, false);
    for (const auto& e : p.events) {
      down[e.target.index] = (e.kind == fault_kind::crash);
      EXPECT_LE(std::count(down.begin(), down.end(), true), 2);
    }
  }
}

TEST(FaultPlan, BlackoutCrashesEveryone) {
  const fault_plan p = make_blackout_plan(4, 100, 50);
  EXPECT_TRUE(p.well_formed(4));
  EXPECT_TRUE(p.all_up_eventually(4));
  EXPECT_EQ(p.events.size(), 8u);
}

TEST(FaultPlan, SkewedBlackoutStaggersRecoveries) {
  // All crash at the same instant; process i recovers at down + i * skew —
  // the paper's "all crash at once" corner with clock-skewed restarts.
  const fault_plan p = make_blackout_plan(4, 100, 50, 7);
  EXPECT_TRUE(p.well_formed(4));
  EXPECT_TRUE(p.all_up_eventually(4));
  ASSERT_EQ(p.events.size(), 8u);
  for (const fault_event& e : p.events) {
    if (e.kind == fault_kind::crash) {
      EXPECT_EQ(e.at, 100);
    } else {
      EXPECT_EQ(e.at, 150 + 7 * static_cast<time_ns>(e.target.index));
    }
  }
}

}  // namespace
}  // namespace remus::sim
