// fuzz_scenarios: the adversarial scenario fuzzer's command-line driver.
//
// Generates N scenario specs (plan x workload x policy x shard count) with
// coverage-biased fault-family mixing, runs each through
// core::run_scenario, and checks every history with the atomicity and
// tag-order checkers. On the first violation it delta-debugs the spec down
// to a minimal reproducer and prints a self-contained repro line:
//
//   REPRO s1|...|v1;...
//
// which core::scenario_spec::decode() turns back into the identical failing
// run (paste it into a regression test; see docs/ARCHITECTURE.md).
//
// Options:
//   --runs N        scenarios to generate (default 1000)
//   --seed S        campaign seed (default 1); all randomness derives from it
//   --repro-out P   also write the repro line to file P on failure
//   --inject K      plant bug K in every run (1 = drop_handoff_state,
//                   2 = skip_read_writeback) — self-test that the fuzzer
//                   catches and minimizes a real bug
//   --progress N    progress line every N runs (default 100; 0 = quiet)
//   --corpus DIR    before the random campaign, replay every repro line in
//                   DIR/*.repro (sorted by file name; '#' comments and blank
//                   lines skipped) and fold each run into the coverage and
//                   the digest — the regression corpus runs under the same
//                   checkers as generated scenarios
//
// Exit status: 0 = all runs clean, 1 = violation found (repro printed),
// 2 = bad usage. Output is deterministic for a fixed seed (the CI
// determinism pin runs the same seed twice and diffs stdout, digest line
// included).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/scenario_runner.h"
#include "sim/scenario.h"

namespace {

using remus::core::run_scenario;
using remus::core::scenario_outcome;
using remus::core::scenario_spec;
using remus::core::shard_router_config;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fold_u64(std::uint64_t h, std::uint64_t v) {
  return fnv1a(h, &v, sizeof(v));
}

/// Folds the run's observable schedule into the campaign digest: the spec,
/// the merged history, and the migration schedule. Identical seeds must
/// yield identical digests (the determinism pin).
std::uint64_t digest_run(std::uint64_t h, const scenario_spec& spec,
                         const scenario_outcome& out) {
  const std::string enc = spec.encode();
  h = fnv1a(h, enc.data(), enc.size());
  for (const remus::history::event& e : out.history) {
    h = fold_u64(h, static_cast<std::uint64_t>(e.kind));
    h = fold_u64(h, e.p.index);
    h = fold_u64(h, static_cast<std::uint64_t>(e.at));
    h = fold_u64(h, e.reg);
    h = fnv1a(h, e.v.data.data(), e.v.data.size());
  }
  for (const auto& me : out.migration_log) {
    h = fold_u64(h, me.reg);
    h = fold_u64(h, me.from_shard);
    h = fold_u64(h, me.to_shard);
    h = fold_u64(h, static_cast<std::uint64_t>(me.at));
    h = fold_u64(h, static_cast<std::uint64_t>(me.why));
  }
  return h;
}

/// One campaign-generated spec: topology, workload, and plan all derive from
/// the per-run rng; the plan's family mix is biased by campaign coverage.
scenario_spec make_spec(std::uint32_t run, remus::rng& r,
                        const remus::sim::scenario_coverage& campaign,
                        shard_router_config::injected_fault inject) {
  remus::sim::adversarial_config acfg;
  acfg.shards = 1 + static_cast<std::uint32_t>(r.next_below(2));  // 1 or 2
  acfg.n = (run % 7 == 6) ? 5 : 3;
  acfg.units = 3 + static_cast<std::uint32_t>(r.next_below(4));
  // Match the fault horizon to the workload span so faults land under load.
  acfg.horizon = 6'000'000;
  acfg.min_down = 200'000;
  acfg.max_down = 2'000'000;
  acfg.recovery_skew = 400'000;
  acfg.gray_max_delay = 1'000'000;
  if (acfg.shards == 1) {
    // Migration grows 1 -> 2; keep it in the mix for single-shard runs too.
    acfg.weights[static_cast<std::size_t>(remus::sim::fault_family::migration)] = 1.5;
  }

  scenario_spec spec;
  spec.plan = remus::sim::make_adversarial_plan(acfg, r, &campaign);
  spec.key_count = 4 + static_cast<std::uint32_t>(r.next_below(8));
  spec.ops = 40 + static_cast<std::uint32_t>(r.next_below(40));
  spec.read_fraction = 0.5;
  spec.zipf_theta = r.chance(0.3) ? 0.99 : 0.0;
  spec.batch_size = r.chance(0.25) ? 3 : 1;
  spec.mean_gap = 200'000;
  spec.workload_seed = r.next_u64();
  spec.cluster_seed = r.next_u64();
  spec.policy = r.chance(0.5) ? 'p' : 't';
  spec.fault = inject;
  return spec;
}

/// Replays DIR/*.repro (each line one encoded scenario_spec) under the same
/// checkers as generated runs, folding coverage and digest. Returns the
/// number of specs replayed, or -1 on a violation (repro already printed).
int replay_corpus(const std::string& dir, remus::sim::scenario_coverage& campaign,
                  std::uint64_t& digest, const std::string& repro_out) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const fs::directory_entry& ent : fs::directory_iterator(dir)) {
    if (ent.path().extension() == ".repro") files.push_back(ent.path());
  }
  std::sort(files.begin(), files.end());
  int replayed = 0;
  for (const fs::path& file : files) {
    std::ifstream in(file);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      const scenario_spec spec = scenario_spec::decode(line);
      const scenario_outcome out = run_scenario(spec);
      campaign.merge(out.coverage);
      digest = digest_run(digest, spec, out);
      ++replayed;
      if (!out.ok()) {
        std::fprintf(stderr, "corpus %s regressed\n", file.filename().c_str());
        std::fprintf(stderr, "violation: %s\n", out.failure.c_str());
        std::printf("REPRO %s\n", line.c_str());
        if (!repro_out.empty()) {
          std::ofstream f(repro_out);
          f << line << '\n';
        }
        return -1;
      }
    }
  }
  return replayed;
}

int fail_with_repro(const scenario_spec& spec, const scenario_outcome& out,
                    const std::string& repro_out) {
  std::fprintf(stderr, "violation: %s\n", out.failure.c_str());
  std::fprintf(stderr, "minimizing (%zu plan events)...\n", spec.plan.events.size());
  const scenario_spec min = remus::core::minimize_scenario(spec);
  const std::string line = min.encode();
  std::printf("REPRO %s\n", line.c_str());
  std::printf("minimized: %zu plan events, %u keys, %u ops\n",
              min.plan.events.size(), min.key_count, min.ops);
  if (!repro_out.empty()) {
    std::ofstream f(repro_out);
    f << line << '\n';
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t runs = 1000;
  std::uint64_t seed = 1;
  std::uint64_t progress = 100;
  std::string repro_out;
  std::string corpus_dir;
  auto inject = shard_router_config::injected_fault::none;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* val = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--runs" && val != nullptr) {
      runs = std::stoull(val);
      ++i;
    } else if (arg == "--seed" && val != nullptr) {
      seed = std::stoull(val);
      ++i;
    } else if (arg == "--progress" && val != nullptr) {
      progress = std::stoull(val);
      ++i;
    } else if (arg == "--repro-out" && val != nullptr) {
      repro_out = val;
      ++i;
    } else if (arg == "--corpus" && val != nullptr) {
      corpus_dir = val;
      ++i;
    } else if (arg == "--inject" && val != nullptr) {
      const unsigned long k = std::stoul(val);
      if (k > 2) {
        std::fprintf(stderr, "bad --inject %lu (0, 1, or 2)\n", k);
        return 2;
      }
      inject = static_cast<shard_router_config::injected_fault>(k);
      ++i;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--runs N] [--seed S] [--repro-out PATH] "
                   "[--inject K] [--progress N] [--corpus DIR]\n",
                   argv[0]);
      return 2;
    }
  }

  remus::rng campaign_rng(seed);
  remus::sim::scenario_coverage campaign;
  std::uint64_t digest = 0xcbf29ce484222325ULL;
  std::uint64_t completed_total = 0;
  if (!corpus_dir.empty()) {
    const int replayed = replay_corpus(corpus_dir, campaign, digest, repro_out);
    if (replayed < 0) return 1;
    std::printf("corpus: %d specs replayed clean\n", replayed);
  }
  for (std::uint64_t i = 0; i < runs; ++i) {
    remus::rng r = campaign_rng.fork();
    const scenario_spec spec =
        make_spec(static_cast<std::uint32_t>(i), r, campaign, inject);
    const scenario_outcome out = run_scenario(spec);
    campaign.merge(out.coverage);
    completed_total += out.completed_ops;
    digest = digest_run(digest, spec, out);
    if (!out.ok()) return fail_with_repro(spec, out, repro_out);
    if (progress > 0 && (i + 1) % progress == 0) {
      std::printf("[%llu/%llu] clean, %llu ops completed\n",
                  static_cast<unsigned long long>(i + 1),
                  static_cast<unsigned long long>(runs),
                  static_cast<unsigned long long>(completed_total));
    }
  }
  std::printf("%llu scenarios, zero violations\n",
              static_cast<unsigned long long>(runs));
  std::printf("%s\n", campaign.to_string().c_str());
  std::printf("digest %016llx\n", static_cast<unsigned long long>(digest));
  return 0;
}
