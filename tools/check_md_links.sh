#!/bin/sh
# Lints relative markdown links: every [text](target) that is not an
# absolute URL or a pure #anchor must name an existing file, resolved
# relative to the markdown file's directory.
#
# Usage: check_md_links.sh FILE.md [FILE.md ...]
set -u

fail=0
for f in "$@"; do
  dir=$(dirname "$f")
  for t in $(grep -o ']([^)]*)' "$f" 2>/dev/null | sed 's/^](//; s/)$//'); do
    case "$t" in
      http://* | https://* | mailto:* | \#*) continue ;;
    esac
    target=${t%%#*}  # strip in-file anchors
    [ -z "$target" ] && continue
    if [ ! -e "$dir/$target" ]; then
      echo "broken link in $f: ($t)" >&2
      fail=1
    fi
  done
done
exit $fail
