// fuzz_wal: deterministic fuzz harness for the WAL parser and recovery.
//
// Three case shapes, chosen per run from the campaign rng:
//
//   garbage     — scan_wal over random bytes, and a wal_store recovery over
//                 the same image: classification never throws, the consumed
//                 prefix is frame-aligned and within bounds;
//   round_trip  — random frames encoded with append_wal_frame must scan
//                 back byte-exact with stop == clean_end;
//   mutate      — a random op sequence against a live wal_store (stores,
//                 erases, store_and_obsolete batches, compactions), then
//                 0..4 image mutations (bit flips, truncation, torn final
//                 frame, stray garbage, snapshot damage), then recovery into
//                 a fresh wal_store. The recovered state must equal the
//                 harness's own replay of the valid prefix, every recovered
//                 payload must be a payload that was actually stored under
//                 that key (no checksum-failing record is ever surfaced),
//                 and the recovery stats must account for every byte.
//
// Options:
//   --runs N        cases to run (default 2000)
//   --seed S        campaign seed (default 1); all randomness derives from it
//   --progress N    progress line every N runs (default 500; 0 = quiet)
//   --repro-out P   also write the repro line to file P on failure
//   --inject 1      plant a single-bit corruption in the recovered state
//                   before checking — self-test that the oracle catches a
//                   surfaced corrupt record and that minimization shrinks
//                   the failing case
//
// On failure the case is minimized (fewer ops, then fewer mutations) and a
// repro line is printed:
//
//   REPRO wal seed=<S> mode=<M> ops=<N> muts=<K>
//
// Exit status: 0 = all cases clean (digest printed; same seed => same
// digest), 1 = violation found, 2 = bad usage.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/value.h"
#include "storage/corruption_injector.h"
#include "storage/wal_format.h"
#include "storage/wal_store.h"

namespace {

using remus::bytes;
using remus::rng;
using namespace remus::storage;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fold_u64(std::uint64_t h, std::uint64_t v) {
  return fnv1a(h, &v, sizeof(v));
}

struct key_less {
  bool operator()(record_key a, record_key b) const {
    if (a.area != b.area) return a.area < b.area;
    return a.reg < b.reg;
  }
};
using model_map = std::map<record_key, bytes, key_less>;

/// The harness's own replay of one image: the oracle wal_store::reopen is
/// checked against.
void replay_into(std::span<const std::uint8_t> image, model_map& model) {
  scan_wal(image, [&](const wal_frame& f) {
    if (f.kind == wal_frame_kind::record) {
      model[f.key].assign(f.payload.begin(), f.payload.end());
    } else {
      model.erase(f.key);
    }
  });
}

record_key random_key(rng& r) {
  static constexpr record_area areas[] = {record_area::writing,
                                          record_area::written,
                                          record_area::recovered};
  return {areas[r.next_below(3)],
          static_cast<remus::register_id>(r.next_below(6))};
}

bytes random_payload(rng& r) {
  bytes b(r.next_below(48));
  for (auto& x : b) x = static_cast<std::uint8_t>(r.next_below(256));
  return b;
}

struct case_params {
  std::uint64_t seed = 0;
  int mode = 0;  // 0 = garbage, 1 = round_trip, 2 = mutate
  std::uint32_t ops = 0;
  std::uint32_t muts = 0;
};

/// Dumps the recovered state of `s` into a model map for comparison.
model_map state_of(wal_store& s) {
  model_map out;
  for (record_area area : {record_area::writing, record_area::written,
                           record_area::recovered}) {
    s.for_each(area, [&](remus::register_id reg, const bytes& v) {
      out[{area, reg}] = v;
    });
  }
  return out;
}

std::string run_case(const case_params& c, bool inject, std::uint64_t& digest) {
  rng r(c.seed);
  try {
    if (c.mode == 0) {
      // Arbitrary bytes: the scanner classifies, never throws, and recovery
      // over the same image agrees with a manual replay.
      bytes garbage(r.next_below(300));
      for (auto& x : garbage) x = static_cast<std::uint8_t>(r.next_below(256));
      const wal_scan_result scan = scan_wal(garbage, {});
      if (scan.consumed > garbage.size()) return "consumed past end";
      if (scan.stop == wal_scan_stop::clean_end && scan.consumed != garbage.size()) {
        return "clean_end without consuming the whole image";
      }
      auto media = std::make_unique<memory_media>();
      media->log = garbage;
      wal_store store(std::move(media));
      const wal_recovery_stats& st = store.last_recovery();
      if (st.bytes_read != garbage.size()) return "bytes_read mismatch";
      if (st.discarded != garbage.size() - scan.consumed) return "discarded mismatch";
      model_map model;
      replay_into(garbage, model);
      if (state_of(store) != model) return "garbage recovery state mismatch";
      digest = fold_u64(digest, static_cast<std::uint64_t>(scan.stop));
      digest = fold_u64(digest, scan.consumed);
      return {};
    }

    if (c.mode == 1) {
      // Round-trip: encoded frames scan back byte-exact.
      bytes log;
      std::vector<std::pair<record_key, bytes>> frames;
      const std::uint32_t n = 1 + static_cast<std::uint32_t>(r.next_below(12));
      for (std::uint32_t i = 0; i < n; ++i) {
        frames.emplace_back(random_key(r), random_payload(r));
        append_wal_frame(log, wal_frame_kind::record, frames.back().first,
                         frames.back().second);
      }
      std::size_t at = 0;
      std::string fail;
      const wal_scan_result scan = scan_wal(log, [&](const wal_frame& f) {
        if (at >= frames.size()) return;
        if (!(f.key == frames[at].first) ||
            !std::equal(f.payload.begin(), f.payload.end(),
                        frames[at].second.begin(), frames[at].second.end())) {
          fail = "round-trip frame mismatch";
        }
        ++at;
      });
      if (!fail.empty()) return fail;
      if (scan.stop != wal_scan_stop::clean_end) return "round-trip not clean";
      if (scan.frames != n || scan.consumed != log.size()) {
        return "round-trip count mismatch";
      }
      digest = fold_u64(digest, crc32_of(log));
      return {};
    }

    // mutate: live store -> image mutations -> recovery vs oracle replay.
    wal_store_config cfg;
    cfg.compact_min_bytes = r.chance(0.3) ? 128 : 64 * 1024;  // some compact
    auto owned = std::make_unique<memory_media>();
    memory_media* media = owned.get();
    wal_store store(std::move(owned), cfg);
    std::map<record_key, std::set<bytes>, key_less> ever_stored;
    for (std::uint32_t i = 0; i < c.ops; ++i) {
      const record_key key = random_key(r);
      const double dice = r.next_unit();
      if (dice < 0.1) {
        store.erase(key);
      } else if (dice < 0.25) {
        std::vector<record_key> obsolete;
        const std::uint32_t k = 1 + static_cast<std::uint32_t>(r.next_below(3));
        for (std::uint32_t j = 0; j < k; ++j) obsolete.push_back(random_key(r));
        const bytes v = random_payload(r);
        ever_stored[key].insert(v);
        store.store_and_obsolete(key, v, obsolete);
      } else {
        const bytes v = random_payload(r);
        ever_stored[key].insert(v);
        store.store(key, v);
      }
    }

    bytes snapshot = media->snapshot;
    bytes log = media->log;
    for (std::uint32_t m = 0; m < c.muts; ++m) {
      switch (r.next_below(5)) {
        case 0:
          if (!log.empty()) {
            flip_bit(log, r.next_below(log.size()),
                     static_cast<unsigned>(r.next_below(8)));
          }
          break;
        case 1:
          truncate_log(log, r.next_below(log.size() + 1));
          break;
        case 2: {
          const std::vector<std::size_t> offs = frame_offsets(log);
          if (offs.size() >= 2) {
            const std::size_t fsize = offs[offs.size() - 1] - offs[offs.size() - 2];
            tear_final_frame(log, fsize, r.next_below(fsize));
          }
          break;
        }
        case 3:
          append_garbage(log, r, 1 + r.next_below(32));
          break;
        case 4:
          if (!snapshot.empty()) {
            flip_bit(snapshot, r.next_below(snapshot.size()),
                     static_cast<unsigned>(r.next_below(8)));
          }
          break;
      }
    }

    model_map model;
    replay_into(snapshot, model);
    replay_into(log, model);

    auto mutated = std::make_unique<memory_media>();
    mutated->snapshot = snapshot;
    mutated->log = log;
    wal_store recovered(std::move(mutated), cfg);

    model_map got = state_of(recovered);
    if (inject && !got.empty()) {
      // Planted corruption: surface a single flipped bit in a recovered
      // record, as a buggy recovery that skipped CRC verification would.
      bytes& victim = got.begin()->second;
      if (victim.empty()) victim.push_back(0);
      victim[0] ^= 1;
    }
    if (got != model) return "recovered state differs from valid-prefix replay";
    for (const auto& [key, v] : got) {
      const auto it = ever_stored.find(key);
      if (it == ever_stored.end() || it->second.count(v) == 0) {
        return "recovered a payload that was never stored";
      }
    }
    const wal_recovery_stats& st = recovered.last_recovery();
    if (st.bytes_read != snapshot.size() + log.size()) return "bytes_read mismatch";
    const wal_scan_result snap_scan = scan_wal(snapshot, {});
    const wal_scan_result log_scan = scan_wal(log, {});
    if (st.discarded != (snapshot.size() - snap_scan.consumed) +
                            (log.size() - log_scan.consumed)) {
      return "discarded mismatch";
    }
    digest = fold_u64(digest, static_cast<std::uint64_t>(st.log_stop));
    digest = fold_u64(digest, st.frames_replayed);
    for (const auto& [key, v] : got) {
      digest = fold_u64(digest, static_cast<std::uint64_t>(key.area));
      digest = fold_u64(digest, key.reg);
      digest = fnv1a(digest, v.data(), v.size());
    }
    return {};
  } catch (const std::exception& e) {
    return std::string("threw: ") + e.what();
  }
}

/// Shrinks a failing case: fewer ops, then fewer mutations, greedily while
/// the failure reproduces (same seed — the op stream is a prefix).
case_params minimize_case(case_params c, bool inject) {
  std::uint64_t scratch = 0;
  const auto fails = [&](const case_params& p) {
    return !run_case(p, inject, scratch).empty();
  };
  bool changed = true;
  while (changed) {
    changed = false;
    while (c.ops > 0) {
      case_params cand = c;
      cand.ops = c.ops / 2;
      if (!fails(cand)) break;
      c = cand;
      changed = true;
    }
    while (c.muts > 0) {
      case_params cand = c;
      cand.muts = c.muts - 1;
      if (!fails(cand)) break;
      c = cand;
      changed = true;
    }
  }
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t runs = 2000;
  std::uint64_t seed = 1;
  std::uint64_t progress = 500;
  std::string repro_out;
  bool inject = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* val = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--runs" && val != nullptr) {
      runs = std::stoull(val);
      ++i;
    } else if (arg == "--seed" && val != nullptr) {
      seed = std::stoull(val);
      ++i;
    } else if (arg == "--progress" && val != nullptr) {
      progress = std::stoull(val);
      ++i;
    } else if (arg == "--repro-out" && val != nullptr) {
      repro_out = val;
      ++i;
    } else if (arg == "--inject" && val != nullptr) {
      inject = std::stoul(val) != 0;
      ++i;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--runs N] [--seed S] [--progress N] "
                   "[--repro-out PATH] [--inject 1]\n",
                   argv[0]);
      return 2;
    }
  }

  rng campaign(seed);
  std::uint64_t digest = 0xcbf29ce484222325ULL;
  for (std::uint64_t i = 0; i < runs; ++i) {
    case_params c;
    c.seed = campaign.next_u64();
    const std::uint64_t shape = campaign.next_below(4);
    c.mode = shape == 0 ? 0 : (shape == 1 ? 1 : 2);
    c.ops = 1 + static_cast<std::uint32_t>(campaign.next_below(60));
    c.muts = static_cast<std::uint32_t>(campaign.next_below(5));
    const std::string fail = run_case(c, inject, digest);
    if (!fail.empty()) {
      std::fprintf(stderr, "violation at run %llu: %s\n",
                   static_cast<unsigned long long>(i), fail.c_str());
      const case_params min = minimize_case(c, inject);
      char line[128];
      std::snprintf(line, sizeof(line), "wal seed=%llu mode=%d ops=%u muts=%u",
                    static_cast<unsigned long long>(min.seed), min.mode, min.ops,
                    min.muts);
      std::printf("REPRO %s\n", line);
      if (!repro_out.empty()) {
        std::ofstream f(repro_out);
        f << line << '\n';
      }
      return 1;
    }
    if (progress > 0 && (i + 1) % progress == 0) {
      std::printf("[%llu/%llu] clean\n", static_cast<unsigned long long>(i + 1),
                  static_cast<unsigned long long>(runs));
    }
  }
  std::printf("%llu cases, zero violations\n",
              static_cast<unsigned long long>(runs));
  std::printf("digest %016llx\n", static_cast<unsigned long long>(digest));
  return 0;
}
