// Live shard rebalancing: keyed throughput before / during / after growing
// the ring S -> S+1 under continuous load, plus the migration window's
// shape (moved-key fraction, window length, handoff mix).
//
// The scenario is the one ROADMAP's rebalancing item asks for: a 2-shard
// router saturated by an open-loop keyed workload grows to 3 shards *while
// serving*. Consistent hashing moves ~1/(S+1) of the keys (here ~1/3), each
// migrated online through the dual-ring window (reads-from-old with
// cross-shard write-back, writes hand off at quiet points, a background
// drain moves the rest). The bench measures:
//
//   * keyed ops per *virtual* second in each phase — pre at S=2, during the
//     window, post at S=3 (deterministic capacity numbers, like
//     bench_shard_scaling's);
//   * the moved-key fraction (ring diff over the key universe) and how many
//     keys each handoff cause migrated (first-touched write vs drain);
//   * the window length in virtual time (begin_add_shard .. drained);
//   * failed operations during the window — the acceptance criterion is
//     exactly zero: growing the fleet must be invisible to clients.
//
// Every run verifies per-key atomicity and per-key tag order on the merged
// two-epoch history — scale numbers from a reconfiguration that broke
// linearizability are worthless. Hard gates (exit 1): any atomicity
// violation, any failed op during the window, or post-rebalance capacity at
// S=3 below pre-rebalance capacity at S=2 (virtual-time numbers are
// deterministic, so this cannot flake). --smoke shrinks the phases for CI;
// --json[=PATH] emits BENCH_rebalance.json.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/shard_router.h"
#include "history/keyed.h"
#include "history/tag_order.h"
#include "sim/kv_workload.h"

namespace {

using namespace remus;
using namespace remus::bench;

using clock_type = std::chrono::steady_clock;

struct phase_result {
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;  // not completed or dropped
  double ops_per_vsec = 0;
  double makespan_ms = 0;
};

phase_result measure_phase(const core::shard_router& r,
                           const std::vector<core::shard_router::op_handle>& handles) {
  phase_result p;
  time_ns first_invoke = std::numeric_limits<time_ns>::max();
  time_ns last_reply = 0;
  for (const auto h : handles) {
    const auto& res = r.result(h);
    if (!res.completed || res.dropped) {
      p.failed += 1;
      continue;
    }
    p.completed += 1;
    first_invoke = std::min(first_invoke, res.invoked_at);
    last_reply = std::max(last_reply, res.completed_at);
  }
  if (p.completed > 0 && last_reply > first_invoke) {
    p.makespan_ms = to_ms(last_reply - first_invoke);
    p.ops_per_vsec = 1e9 * static_cast<double>(p.completed) /
                     static_cast<double>(last_reply - first_invoke);
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = flag_present(argc, argv, "--smoke");
  const std::uint32_t phase_ops = smoke ? 600 : 3000;
  const std::uint32_t key_count = 256;

  core::shard_router_config cfg;
  cfg.shards = 2;
  cfg.base = paper_testbed(proto::persistent_policy(), 3, /*seed=*/1);
  core::shard_router router(cfg);

  // Moved fraction from the ring delta alone (the router will compute the
  // same delta when the window opens).
  const core::hash_ring after = router.ring().grow(2);
  const auto delta = core::hash_ring::diff(router.ring(), after);
  std::uint32_t moved_in_universe = 0;
  for (register_id reg = 0; reg < key_count; ++reg) {
    if (delta.moved(reg)) ++moved_in_universe;
  }
  const double moved_fraction = static_cast<double>(moved_in_universe) / key_count;

  sim::kv_workload_config wc;
  wc.n = cfg.base.n;
  wc.key_count = key_count;
  wc.read_fraction = 0.5;
  wc.ops = phase_ops;
  wc.mean_gap = 100_us;  // open loop, faster than 2 shards absorb
  wc.seed = 1;

  auto submit = [&router](const std::vector<sim::kv_op>& ops,
                          std::vector<core::shard_router::op_handle>& hs) {
    for (const sim::kv_op& op : ops) {
      if (op.is_read) {
        hs.push_back(router.submit_read(op.p, op.entries[0].reg, op.at));
      } else {
        hs.push_back(
            router.submit_write(op.p, op.entries[0].reg, op.entries[0].val, op.at));
      }
    }
  };

  const auto t0 = clock_type::now();

  // ---- Phase A: steady state at S=2 ----
  std::vector<core::shard_router::op_handle> pre_handles;
  submit(sim::make_kv_workload(wc), pre_handles);
  router.run_until_idle(2'000'000'000);

  // ---- Phase B: grow 2 -> 3 under load ----
  const time_ns window_begin = router.now();
  router.begin_add_shard();
  wc.start_at = router.now();
  wc.value_base = 10'000'000;
  wc.seed = 2;
  std::vector<core::shard_router::op_handle> during_handles;
  submit(sim::make_kv_workload(wc), during_handles);
  router.run_until_idle(2'000'000'000);
  const bool drained = router.migration_drained();
  const std::size_t moved_keys = router.moved_key_count();
  const std::size_t migrated_keys = router.migrated_key_count();
  std::size_t by_write = 0;
  std::size_t by_drain = 0;
  std::size_t writebacks = 0;
  // The window closes at the last migration action (the drain's final
  // handoff or write-back) — phase B's workload keeps running well past it,
  // so router.now() after the run would overstate the window.
  time_ns window_end = window_begin;
  for (const auto& ev : router.migration_log()) {
    window_end = std::max(window_end, ev.at);
    switch (ev.why) {
      case core::shard_router::migration_event::cause::write_handoff: ++by_write; break;
      case core::shard_router::migration_event::cause::drain: ++by_drain; break;
      case core::shard_router::migration_event::cause::read_writeback: ++writebacks; break;
      case core::shard_router::migration_event::cause::lease_drop: break;  // bookkeeping, not a key move
    }
  }
  if (drained) router.finish_add_shard();

  // ---- Phase C: steady state at S=3 ----
  wc.start_at = router.now();
  wc.value_base = 20'000'000;
  wc.seed = 3;
  std::vector<core::shard_router::op_handle> post_handles;
  submit(sim::make_kv_workload(wc), post_handles);
  router.run_until_idle(2'000'000'000);

  const double wall_ms =
      std::chrono::duration<double, std::milli>(clock_type::now() - t0).count();

  const phase_result pre = measure_phase(router, pre_handles);
  const phase_result during = measure_phase(router, during_handles);
  const phase_result post = measure_phase(router, post_handles);

  // ---- Verification (the acceptance oracle) ----
  const auto verdict = history::check_persistent_atomicity_per_key(router.events());
  const auto tags = history::check_tag_order_per_key(router.tagged_operations());
  if (!verdict.ok) {
    std::fprintf(stderr, "ATOMICITY VIOLATION: %s\n", verdict.explanation.c_str());
  }
  if (!tags.ok) {
    std::fprintf(stderr, "TAG ORDER VIOLATION: %s\n", tags.explanation.c_str());
  }

  std::printf("== Live rebalancing S=2 -> 3 (%s, %u ops/phase, %u keys, n=3 "
              "persistent/shard) ==\n",
              smoke ? "smoke" : "full", phase_ops, key_count);
  metrics::table t({"phase", "keyed ops/vsec", "makespan ms", "completed", "failed"});
  t.add_row({"pre  (S=2)", metrics::table::num(pre.ops_per_vsec, 0),
             metrics::table::num(pre.makespan_ms, 1),
             metrics::table::num(static_cast<double>(pre.completed), 0),
             metrics::table::num(static_cast<double>(pre.failed), 0)});
  t.add_row({"during window", metrics::table::num(during.ops_per_vsec, 0),
             metrics::table::num(during.makespan_ms, 1),
             metrics::table::num(static_cast<double>(during.completed), 0),
             metrics::table::num(static_cast<double>(during.failed), 0)});
  t.add_row({"post (S=3)", metrics::table::num(post.ops_per_vsec, 0),
             metrics::table::num(post.makespan_ms, 1),
             metrics::table::num(static_cast<double>(post.completed), 0),
             metrics::table::num(static_cast<double>(post.failed), 0)});
  std::printf("%s", t.render().c_str());
  std::printf(
      "moved keys: %zu enumerated (%.1f%% of the %u-key universe; consistent "
      "hashing predicts ~%.1f%%), %zu handed off by first-touched write, %zu "
      "by the background drain, %zu read write-backs\n"
      "window: %.2f ms virtual (begin_add_shard .. drained), wall %.0f ms total\n"
      "merged two-epoch history: atomic per key: %s, tag order per key: %s\n\n",
      moved_keys, 100.0 * moved_fraction, key_count,
      100.0 / (router.shard_count()), by_write, by_drain, writebacks,
      to_ms(window_end - window_begin), wall_ms, verdict.ok ? "yes" : "NO",
      tags.ok ? "yes" : "NO");

  json_report rep("rebalance");
  rep.set("mode", smoke ? "smoke" : "full");
  rep.set("ops_per_phase", static_cast<double>(phase_ops));
  rep.set("key_count", static_cast<double>(key_count));
  rep.set("pre_ops_per_vsec", pre.ops_per_vsec);
  rep.set("during_ops_per_vsec", during.ops_per_vsec);
  rep.set("post_ops_per_vsec", post.ops_per_vsec);
  rep.set("failed_during_window", static_cast<double>(during.failed));
  rep.set("failed_total",
          static_cast<double>(pre.failed + during.failed + post.failed));
  rep.set("moved_key_fraction", moved_fraction);
  rep.set("moved_keys_enumerated", static_cast<double>(moved_keys));
  rep.set("migrated_keys", static_cast<double>(migrated_keys));
  rep.set("migrated_by_write_handoff", static_cast<double>(by_write));
  rep.set("migrated_by_drain", static_cast<double>(by_drain));
  rep.set("read_writebacks", static_cast<double>(writebacks));
  rep.set("window_ms_virtual", to_ms(window_end - window_begin));
  rep.set("drained", drained ? 1.0 : 0.0);
  rep.set("atomic_per_key", verdict.ok ? 1.0 : 0.0);
  rep.set("tag_order_per_key", tags.ok ? 1.0 : 0.0);
  rep.set("keys_checked", static_cast<double>(verdict.keys_checked));
  rep.set("post_over_pre", pre.ops_per_vsec > 0 ? post.ops_per_vsec / pre.ops_per_vsec : 0);
  rep.write_if_requested(argc, argv);

  // ---- Hard gates ----
  if (!verdict.ok || !tags.ok) {
    std::fprintf(stderr, "FAIL: merged history not atomic per key\n");
    return 1;
  }
  if (!drained) {
    std::fprintf(stderr, "FAIL: migration window did not drain\n");
    return 1;
  }
  if (during.failed != 0) {
    std::fprintf(stderr, "FAIL: %llu operations failed during the window\n",
                 static_cast<unsigned long long>(during.failed));
    return 1;
  }
  if (post.ops_per_vsec < pre.ops_per_vsec) {
    std::fprintf(stderr,
                 "FAIL: post-rebalance capacity (%.0f/vsec at S=3) below "
                 "pre-rebalance (%.0f/vsec at S=2)\n",
                 post.ops_per_vsec, pre.ops_per_vsec);
    return 1;
  }
  return 0;
}
