// Shard-scaling capacity: keyed operations per *virtual* second vs shard
// count, swept across key-popularity skew.
//
// Capacity is a property of the emulated system, so the headline metric is
// virtual-time throughput: a fixed open-loop arrival stream (faster than one
// quorum group can absorb) is submitted through the shard router, everything
// runs to completion, and keyed ops/s = completed per-key operations divided
// by the virtual makespan. One cluster serializes each client process's
// operations behind ~1 ms quorum round-trips, so a saturated shard stretches
// the makespan; S shards serve disjoint key slices concurrently and divide
// it. (Wall-clock simulator speed is bench_sim_throughput's business; it is
// reported here only as Mevents/s context.) The virtual metric is
// deterministic — a pure function of the config — which lets the full run
// *assert* that capacity grows monotonically from 1 to 4 shards, and lets
// the committed BENCH_shard_scaling.json stay stable across machines.
//
// The batch pair at 4 shards compares cross-shard batches (the router splits
// each one into a quorum round per shard touched) against shard-local
// batches (sim::kv_workload's shard_map keeps every batch inside one shard):
// the split costs real capacity, which is why sharded clients batch
// shard-locally.
//
// Every sized-down run (always in --smoke) verifies per-key atomicity of the
// *merged* multi-shard history — scale numbers from histories that stopped
// linearizing are worthless. --json[=PATH] emits machine-readable results
// (BENCH_shard_scaling.json).
//
// `--threads N` sets the simulator worker pool (shard_router_config::workers,
// 0 = one per hardware thread; see shard_router.h "Parallel execution"). The
// worker-pool section runs the 8-shard uniform case at 1 worker and at the
// pool size and reports the wall-clock aggregate speedup — the virtual-time
// numbers must be bit-identical at both (hard gate: worker count may never
// change results), so only the wall columns move.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/shard_router.h"
#include "history/keyed.h"
#include "sim/kv_workload.h"

namespace {

using namespace remus;
using namespace remus::bench;

using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point t0) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - t0).count();
}

struct scaling_case {
  const char* name;     // short label ("s4_zipf")
  std::uint32_t shards;
  double theta;
  std::uint32_t batch;
  bool shard_local_batches;
};

struct scaling_result {
  double keyed_ops_per_vsec = 0;  // completed per-key ops / virtual makespan
  double makespan_ms = 0;         // virtual time until the last reply
  std::uint64_t completed_keyed_ops = 0;
  std::uint64_t events = 0;
  double wall_ms = 0;
  double events_per_sec = 0;       // wall-clock aggregate simulator speed
  double keyed_ops_per_wall_sec = 0;  // wall-clock aggregate op completion rate
  bool verified = false;
  bool atomic = true;
  std::size_t keys_checked = 0;
};

scaling_result run_case(const scaling_case& sc, std::uint32_t ops, std::uint64_t seed,
                        std::uint32_t workers = 1) {
  core::shard_router_config cfg;
  cfg.shards = sc.shards;
  cfg.base = paper_testbed(proto::persistent_policy(), 3, seed);
  cfg.workers = workers;
  core::shard_router router(cfg);

  sim::kv_workload_config wc;
  wc.n = cfg.base.n;
  wc.key_count = 256;
  wc.zipf_theta = sc.theta;
  wc.read_fraction = 0.5;
  wc.batch_size = sc.batch;
  wc.ops = ops;
  // Open-loop arrivals fast enough to saturate a single quorum group (one
  // shard absorbs ~3 * 1/latency ≈ 3k keyed ops per virtual second here).
  wc.mean_gap = 100_us;
  wc.seed = seed;
  if (sc.shard_local_batches) {
    wc.shard_map = [&router](register_id reg) { return router.shard_of(reg); };
    wc.shard_local_batches = true;
  }
  const auto workload = sim::make_kv_workload(wc);

  std::vector<core::shard_router::op_handle> handles;
  handles.reserve(workload.size());
  std::vector<proto::write_op> batch_ops;
  std::vector<register_id> batch_regs;
  for (const sim::kv_op& op : workload) {
    if (op.entries.size() == 1) {
      if (op.is_read) {
        handles.push_back(router.submit_read(op.p, op.entries[0].reg, op.at));
      } else {
        handles.push_back(
            router.submit_write(op.p, op.entries[0].reg, op.entries[0].val, op.at));
      }
    } else if (op.is_read) {
      batch_regs.clear();
      for (const auto& e : op.entries) batch_regs.push_back(e.reg);
      handles.push_back(router.submit_read_batch(op.p, batch_regs, op.at));
    } else {
      batch_ops.clear();
      for (const auto& e : op.entries) batch_ops.push_back({e.reg, e.val});
      handles.push_back(router.submit_write_batch(op.p, batch_ops, op.at));
    }
  }

  scaling_result r;
  const auto t0 = clock_type::now();
  router.run_until_idle(2'000'000'000);
  r.wall_ms = ms_since(t0);
  r.events = router.events_executed();

  time_ns last_reply = 0;
  for (const auto h : handles) {
    const auto& res = router.result(h);
    if (!res.completed) continue;
    r.completed_keyed_ops += res.is_batch ? res.batch_result.size() : 1;
    last_reply = std::max(last_reply, res.completed_at);
  }
  r.makespan_ms = to_ms(last_reply);
  r.keyed_ops_per_vsec =
      last_reply > 0
          ? 1e9 * static_cast<double>(r.completed_keyed_ops) / static_cast<double>(last_reply)
          : 0;
  r.events_per_sec =
      r.wall_ms > 0 ? 1000.0 * static_cast<double>(r.events) / r.wall_ms : 0;
  r.keyed_ops_per_wall_sec =
      r.wall_ms > 0 ? 1000.0 * static_cast<double>(r.completed_keyed_ops) / r.wall_ms
                    : 0;

  // Verify unconditionally: the per-key checker costs milliseconds at these
  // sizes, and capacity numbers from a history that stopped linearizing
  // must never be published.
  const auto verdict = history::check_persistent_atomicity_per_key(router.events());
  r.verified = true;
  r.atomic = verdict.ok;
  r.keys_checked = verdict.keys_checked;
  if (!verdict.ok) {
    std::fprintf(stderr, "ATOMICITY VIOLATION (%s): %s\n", sc.name,
                 verdict.explanation.c_str());
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = flag_present(argc, argv, "--smoke");
  const std::uint32_t ops = smoke ? 600 : 4000;
  const std::uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  // --threads N: worker pool for the scaling pair (0 or absent = min(8, hw)).
  const std::uint32_t threads_flag = flag_u32(argc, argv, "--threads", 0);
  const std::uint32_t pool = threads_flag != 0 ? threads_flag : std::min(8u, hw);

  const std::vector<scaling_case> cases = {
      {"s1_uniform", 1, 0.0, 1, false},
      {"s2_uniform", 2, 0.0, 1, false},
      {"s4_uniform", 4, 0.0, 1, false},
      {"s8_uniform", 8, 0.0, 1, false},
      {"s1_zipf", 1, 0.99, 1, false},
      {"s2_zipf", 2, 0.99, 1, false},
      {"s4_zipf", 4, 0.99, 1, false},
      {"s8_zipf", 8, 0.99, 1, false},
      {"s4_b4_split", 4, 0.0, 4, false},  // batches split across shards
      {"s4_b4_local", 4, 0.0, 4, true},   // shard-local batches, no split
  };

  std::printf(
      "== Shard scaling (%s, %u logical ops, 256 keys, n=3 persistent/shard) ==\n",
      smoke ? "smoke" : "full", ops);
  metrics::table t({"case", "keyed ops/vsec", "makespan ms", "ops", "Mevents/s",
                    "ops/s wall", "atomic"});

  json_report rep("shard_scaling");
  rep.set("mode", smoke ? "smoke" : "full");
  rep.set("logical_ops_submitted", static_cast<double>(ops));
  rep.set("hardware_concurrency", static_cast<double>(hw));

  bool all_atomic = true;
  double uniform_by_shards[4] = {0, 0, 0, 0};  // s1, s2, s4, s8
  for (const scaling_case& sc : cases) {
    const auto r = run_case(sc, ops, 1);
    if (r.verified && !r.atomic) all_atomic = false;
    if (sc.theta == 0.0 && sc.batch == 1) {
      const int slot = sc.shards == 1 ? 0 : sc.shards == 2 ? 1 : sc.shards == 4 ? 2 : 3;
      uniform_by_shards[slot] = r.keyed_ops_per_vsec;
    }
    t.add_row({sc.name, metrics::table::num(r.keyed_ops_per_vsec, 0),
               metrics::table::num(r.makespan_ms, 1),
               metrics::table::num(static_cast<double>(r.completed_keyed_ops), 0),
               metrics::table::num(r.events_per_sec / 1e6, 2),
               metrics::table::num(r.keyed_ops_per_wall_sec, 0),
               r.verified ? (r.atomic ? "yes" : "NO") : "-"});
    const std::string prefix = sc.name;
    rep.set(prefix + "_keyed_ops_per_vsec", r.keyed_ops_per_vsec);
    rep.set(prefix + "_makespan_ms", r.makespan_ms);
    rep.set(prefix + "_completed_keyed_ops",
            static_cast<double>(r.completed_keyed_ops));
    rep.set(prefix + "_events_per_sec", r.events_per_sec);
    rep.set(prefix + "_keyed_ops_per_wall_sec", r.keyed_ops_per_wall_sec);
    if (r.verified) {
      rep.set(prefix + "_atomic_per_key", r.atomic ? 1.0 : 0.0);
      rep.set(prefix + "_keys_checked", static_cast<double>(r.keys_checked));
    }
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "(keyed ops/vsec = completed per-key ops per *virtual* second — the\n"
      " emulated system's capacity, deterministic per config; per-key\n"
      " atomicity of the merged multi-shard history verified where marked)\n\n");

  // The capacity claim this bench exists to check: adding quorum groups
  // raises keyed throughput monotonically from 1 to 4 shards. Virtual-time
  // numbers are deterministic, so this is a hard gate, not a flaky one.
  const bool monotonic = uniform_by_shards[0] < uniform_by_shards[1] &&
                         uniform_by_shards[1] < uniform_by_shards[2];
  rep.set("uniform_monotonic_1_2_4", monotonic ? 1.0 : 0.0);
  rep.set("uniform_scaling_4_over_1",
          uniform_by_shards[0] > 0 ? uniform_by_shards[2] / uniform_by_shards[0] : 0);

  // ---- Worker-pool wall-clock scaling (the parallel simulator driver) ----
  //
  // Same 8-shard uniform workload, sequential driver vs a pool of `pool`
  // workers. Virtual-time results must be bit-identical (worker count is
  // invisible to the emulation — hard gate); the wall columns measure how
  // much real time the shard independence buys.
  const std::uint32_t pair_ops = smoke ? 2000 : ops;
  const scaling_case pair_case{"s8_uniform", 8, 0.0, 1, false};
  std::printf("== Worker-pool scaling (s8 uniform, %u logical ops, %u hw threads) ==\n",
              pair_ops, hw);
  // Wall-clock noise dominates single runs on shared machines: best of 3.
  scaling_result seq, par;
  for (int i = 0; i < 3; ++i) {
    const auto s = run_case(pair_case, pair_ops, 1, 1);
    if (s.events_per_sec > seq.events_per_sec) seq = s;
    const auto p = run_case(pair_case, pair_ops, 1, pool);
    if (p.events_per_sec > par.events_per_sec) par = p;
  }
  metrics::table wt({"workers", "wall ms", "Mevents/s", "ops/s wall",
                     "keyed ops/vsec", "atomic"});
  wt.add_row({"1", metrics::table::num(seq.wall_ms, 1),
              metrics::table::num(seq.events_per_sec / 1e6, 2),
              metrics::table::num(seq.keyed_ops_per_wall_sec, 0),
              metrics::table::num(seq.keyed_ops_per_vsec, 0),
              seq.atomic ? "yes" : "NO"});
  wt.add_row({std::to_string(pool), metrics::table::num(par.wall_ms, 1),
              metrics::table::num(par.events_per_sec / 1e6, 2),
              metrics::table::num(par.keyed_ops_per_wall_sec, 0),
              metrics::table::num(par.keyed_ops_per_vsec, 0),
              par.atomic ? "yes" : "NO"});
  std::printf("%s", wt.render().c_str());
  const double speedup =
      seq.events_per_sec > 0 ? par.events_per_sec / seq.events_per_sec : 0;
  const bool deterministic_across_workers =
      seq.completed_keyed_ops == par.completed_keyed_ops &&
      seq.makespan_ms == par.makespan_ms && seq.events == par.events;
  std::printf("aggregate wall-clock speedup at %u workers: %.2fx%s\n\n", pool,
              speedup,
              deterministic_across_workers ? "" : "  (RESULTS DIVERGED!)");
  if (!par.atomic) all_atomic = false;
  rep.set("threads_pool", static_cast<double>(pool));
  rep.set("threads_pair_logical_ops", static_cast<double>(pair_ops));
  rep.set("threads_s8_events_per_sec_w1", seq.events_per_sec);
  rep.set("threads_s8_events_per_sec_wN", par.events_per_sec);
  rep.set("threads_s8_ops_per_wall_sec_w1", seq.keyed_ops_per_wall_sec);
  rep.set("threads_s8_ops_per_wall_sec_wN", par.keyed_ops_per_wall_sec);
  rep.set("threads_speedup_8shards", speedup);
  rep.set("threads_deterministic", deterministic_across_workers ? 1.0 : 0.0);

  rep.write_if_requested(argc, argv);

  if (!all_atomic) {
    std::fprintf(stderr, "FAIL: a run violated per-key atomicity\n");
    return 1;
  }
  if (!deterministic_across_workers) {
    std::fprintf(stderr,
                 "FAIL: worker count changed virtual-time results (determinism "
                 "broke)\n");
    return 1;
  }
  if (!smoke && !monotonic) {
    std::fprintf(stderr,
                 "FAIL: keyed ops/vsec not monotonic over 1 -> 2 -> 4 shards\n");
    return 1;
  }
  // Wall-clock gate: a multi-worker pool on a multi-core machine must beat
  // the sequential driver. Meaningless (and skipped) on one hardware thread.
  if (smoke && pool > 1 && hw > 1 && speedup <= 1.0) {
    std::fprintf(stderr, "FAIL: %u workers gave %.2fx <= 1.0x on %u cores\n",
                 pool, speedup, hw);
    return 1;
  }
  return 0;
}
