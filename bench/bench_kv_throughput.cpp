// KV-namespace throughput: completed operations/sec over the multi-register
// emulation, swept across key count, key-popularity skew, and batch size.
//
// The paper's emulation serves one register; the namespace multiplexes many
// over the same cluster and batches multi-key operations into single quorum
// rounds. This bench measures what that buys end to end:
//
//   * key count  — 1 (the paper's setting) vs larger namespaces: per-key
//     state must not slow the hot path,
//   * skew       — uniform vs YCSB-default Zipf(0.99) hot keys,
//   * batch size — multi-key ops amortize round-trips; ops/sec counts
//     *logical* per-key operations, so batching shows up as gain.
//
// Each run verifies per-key atomicity (smoke sizes always; full sizes when
// affordable) — scale numbers from histories that stopped linearizing are
// worthless. Run with --smoke for a CI-sized run, --json[=PATH] for
// machine-readable output (BENCH_kv_throughput.json).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "history/keyed.h"
#include "sim/kv_workload.h"

namespace {

using namespace remus;
using namespace remus::bench;

using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point t0) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - t0).count();
}

struct kv_case {
  const char* name;       // short label ("k64_zipf_b8")
  std::uint32_t keys;
  double theta;
  std::uint32_t batch;
  /// Lossy-link pair (batch-aware retransmission measurement): drop
  /// probability and whether trimmed batch repeats are enabled.
  double drop = 0.0;
  bool trim_retransmit = true;
  std::uint32_t value_bytes = 8;
  std::uint32_t n = 3;
  double read_fraction = 0.5;
  /// Read-lease pair: hot keys served locally once a freshness lease holds.
  bool leases = false;
  /// Per-case multiplier on the op count — lease amortization needs a run
  /// long enough that steady-state hits dominate the warm-up grants.
  std::uint32_t op_factor = 1;
};

struct kv_result {
  double wall_ms = 0;
  std::uint64_t completed_keyed_ops = 0;  // per-key operations (batch = m ops)
  std::uint64_t events = 0;
  double keyed_ops_per_sec = 0;
  double events_per_sec = 0;
  std::uint64_t net_bytes = 0;            // total message bytes on the wire
  /// Wire bytes attributed to read operations (leased local reads add 0).
  std::uint64_t read_net_bytes = 0;
  // Virtual-time latency percentiles (us), from the per-op collector.
  double read_p50_us = 0, read_p99_us = 0;
  double write_p50_us = 0, write_p99_us = 0;
  std::uint64_t leased_hits = 0;
  std::uint64_t lease_grants = 0;
  // Retransmission byte accounting (what repeats cost vs what full repeats
  // would have cost) — the honest denominator for the trim fraction.
  std::uint64_t retransmit_bytes_sent = 0;
  std::uint64_t retransmit_bytes_full = 0;
  bool verified = false;
  bool atomic = true;
  std::size_t keys_checked = 0;
};

kv_result run_case(const kv_case& kc, std::uint32_t ops, std::uint64_t seed) {
  auto cfg = paper_testbed(proto::persistent_policy(), kc.n, seed);
  cfg.net.drop_probability = kc.drop;
  cfg.policy.trim_batch_retransmit = kc.trim_retransmit;
  if (kc.drop > 0.0) cfg.policy.retransmit_delay = 3_ms;  // repeats matter
  if (kc.leases) {
    cfg.policy.read_leases = true;
    cfg.policy.lease_hot_read_threshold = 0;  // first miss on a key grants
    // Long enough that no lease expires mid-run: the pair isolates the
    // write-invalidation cost, expiry churn is the fuzzer's business.
    cfg.policy.lease_duration = 2'000'000'000;
  }
  core::cluster c(cfg);

  sim::kv_workload_config wc;
  wc.n = cfg.n;
  wc.key_count = kc.keys;
  wc.zipf_theta = kc.theta;
  wc.read_fraction = kc.read_fraction;
  wc.batch_size = kc.batch;
  wc.ops = ops * kc.op_factor;
  wc.value_bytes = kc.value_bytes;
  wc.seed = seed;
  const auto workload = sim::make_kv_workload(wc);

  std::vector<core::cluster::op_handle> handles;
  handles.reserve(workload.size());
  std::vector<proto::write_op> batch_ops;
  std::vector<register_id> batch_regs;
  for (const sim::kv_op& op : workload) {
    if (op.entries.size() == 1) {
      if (op.is_read) {
        handles.push_back(c.submit_read(op.p, op.entries[0].reg, op.at));
      } else {
        handles.push_back(c.submit_write(op.p, op.entries[0].reg, op.entries[0].val, op.at));
      }
    } else if (op.is_read) {
      batch_regs.clear();
      for (const auto& e : op.entries) batch_regs.push_back(e.reg);
      handles.push_back(c.submit_read_batch(op.p, batch_regs, op.at));
    } else {
      batch_ops.clear();
      for (const auto& e : op.entries) batch_ops.push_back({e.reg, e.val});
      handles.push_back(c.submit_write_batch(op.p, batch_ops, op.at));
    }
  }

  kv_result r;
  const std::uint64_t e0 = c.events_executed();
  const auto t0 = clock_type::now();
  c.run_until_idle(500'000'000);
  r.wall_ms = ms_since(t0);
  r.events = c.events_executed() - e0;
  for (const auto h : handles) {
    const auto& res = c.result(h);
    if (!res.completed) continue;
    r.completed_keyed_ops += res.is_batch ? res.batch_result.size() : 1;
  }
  r.keyed_ops_per_sec =
      r.wall_ms > 0 ? 1000.0 * static_cast<double>(r.completed_keyed_ops) / r.wall_ms : 0;
  r.events_per_sec =
      r.wall_ms > 0 ? 1000.0 * static_cast<double>(r.events) / r.wall_ms : 0;
  r.net_bytes = c.network().bytes_sent();
  const metrics::op_collector col = c.collect();
  r.read_net_bytes = static_cast<std::uint64_t>(col.read_net_bytes().total());
  if (col.read_latency_us().count() > 0) {
    r.read_p50_us = col.read_latency_us().percentile(0.5);
    r.read_p99_us = col.read_latency_us().percentile(0.99);
  }
  if (col.write_latency_us().count() > 0) {
    r.write_p50_us = col.write_latency_us().percentile(0.5);
    r.write_p99_us = col.write_latency_us().percentile(0.99);
  }
  for (std::uint32_t p = 0; p < kc.n; ++p) {
    const auto& b = c.core_of(process_id{p}).branches();
    r.leased_hits += b.leased_read_hits;
    r.lease_grants += b.lease_grants;
    r.retransmit_bytes_sent += b.retransmit_bytes_sent;
    r.retransmit_bytes_full += b.retransmit_bytes_full;
  }

  // Verify per-key atomicity when the history is small enough for the
  // polynomial checker to be cheap (always true in smoke mode).
  if (ops * kc.op_factor <= 4000) {
    const auto verdict = history::check_persistent_atomicity_per_key(c.events());
    r.verified = true;
    r.atomic = verdict.ok;
    r.keys_checked = verdict.keys_checked;
    if (!verdict.ok) {
      std::fprintf(stderr, "ATOMICITY VIOLATION (%s): %s\n", kc.name,
                   verdict.explanation.c_str());
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = flag_present(argc, argv, "--smoke");
  const std::uint32_t ops = smoke ? 800 : 20000;
  const int reps = smoke ? 1 : 3;

  const std::vector<kv_case> cases = {
      {"k1_uniform_b1", 1, 0.0, 1},        // the paper's single register
      {"k64_uniform_b1", 64, 0.0, 1},
      {"k64_zipf_b1", 64, 0.99, 1},
      {"k1024_zipf_b1", 1024, 0.99, 1},
      {"k64_uniform_b8", 64, 0.0, 8},      // batched multi-key traffic
      {"k1024_zipf_b8", 1024, 0.99, 8},
      // Batch-aware retransmission pair: identical contended batched
      // workload (256-byte values, 10% loss, n=5), full-batch repeats vs trimmed
      // repeats. The JSON reports the message-bytes delta between the two.
      {"k64_b8_lossy_full", 64, 0.0, 8, /*drop=*/0.10, /*trim=*/false, 256, 5},
      {"k64_b8_lossy_trim", 64, 0.0, 8, /*drop=*/0.10, /*trim=*/true, 256, 5},
      // Read-lease pair: identical read-heavy Zipf workload with leases off
      // vs on. Hot keys go local after the grant round, so the leased side
      // must win on both ops/sec and read wire bytes (gated below).
      {.name = "k1024_zipf_rh_b1", .keys = 1024, .theta = 0.99, .batch = 1,
       .read_fraction = 0.99, .op_factor = 5},
      {.name = "k1024_zipf_rh_b1_leased", .keys = 1024, .theta = 0.99, .batch = 1,
       .read_fraction = 0.99, .leases = true, .op_factor = 5},
  };

  std::printf("== KV namespace throughput (%s, best of %d, n=3 persistent) ==\n",
              smoke ? "smoke" : "full", reps);
  metrics::table t({"case", "keyed ops/s", "Mevents/s", "ops", "wall ms", "net MB",
                    "atomic"});

  json_report rep("kv_throughput");
  rep.set("mode", smoke ? "smoke" : "full");
  rep.set("logical_ops_submitted", static_cast<double>(ops));

  bool all_atomic = true;
  // Byte totals for the lossy retransmission pair, summed over all reps so
  // the delta compares the same seed set on both sides.
  std::uint64_t lossy_full_bytes = 0;
  std::uint64_t lossy_trim_bytes = 0;
  // Per-retransmission accounting from the trim side (self-contained: the
  // core tracks both what the trimmed repeats cost and what full repeats
  // would have cost on the same run).
  std::uint64_t trim_retrans_sent = 0;
  std::uint64_t trim_retrans_full = 0;
  // The read-lease pair, for the smoke gates.
  kv_result unleased_best, leased_best;
  for (const kv_case& kc : cases) {
    kv_result best;
    std::uint64_t case_bytes = 0;
    for (int i = 0; i < reps; ++i) {
      const auto r = run_case(kc, ops, 1 + static_cast<std::uint64_t>(i));
      if (r.keyed_ops_per_sec > best.keyed_ops_per_sec || i == 0) best = r;
      if (r.verified && !r.atomic) all_atomic = false;
      case_bytes += r.net_bytes;
    }
    const std::string prefix = kc.name;
    if (prefix == "k64_b8_lossy_full") lossy_full_bytes = case_bytes;
    if (prefix == "k64_b8_lossy_trim") {
      lossy_trim_bytes = case_bytes;
      trim_retrans_sent = best.retransmit_bytes_sent;
      trim_retrans_full = best.retransmit_bytes_full;
    }
    if (prefix == "k1024_zipf_rh_b1") unleased_best = best;
    if (prefix == "k1024_zipf_rh_b1_leased") leased_best = best;
    t.add_row({kc.name, metrics::table::num(best.keyed_ops_per_sec, 0),
               metrics::table::num(best.events_per_sec / 1e6, 2),
               metrics::table::num(static_cast<double>(best.completed_keyed_ops), 0),
               metrics::table::num(best.wall_ms, 1),
               metrics::table::num(static_cast<double>(best.net_bytes) / 1e6, 2),
               best.verified ? (best.atomic ? "yes" : "NO") : "-"});
    rep.set(prefix + "_keyed_ops_per_sec", best.keyed_ops_per_sec);
    rep.set(prefix + "_events_per_sec", best.events_per_sec);
    rep.set(prefix + "_completed_keyed_ops",
            static_cast<double>(best.completed_keyed_ops));
    rep.set(prefix + "_net_bytes", static_cast<double>(best.net_bytes));
    rep.set(prefix + "_read_net_bytes", static_cast<double>(best.read_net_bytes));
    rep.set(prefix + "_read_p50_us", best.read_p50_us);
    rep.set(prefix + "_read_p99_us", best.read_p99_us);
    rep.set(prefix + "_write_p50_us", best.write_p50_us);
    rep.set(prefix + "_write_p99_us", best.write_p99_us);
    if (kc.leases) {
      rep.set(prefix + "_leased_read_hits", static_cast<double>(best.leased_hits));
      rep.set(prefix + "_lease_grants", static_cast<double>(best.lease_grants));
    }
    if (best.verified) {
      rep.set(prefix + "_atomic_per_key", best.atomic ? 1.0 : 0.0);
      rep.set(prefix + "_keys_checked", static_cast<double>(best.keys_checked));
    }
  }
  if (lossy_full_bytes > 0) {
    // Whole-traffic delta between the full and trimmed runs. This is NOT the
    // headline trim number: retransmissions are a small slice of total
    // traffic (first sends, acks, and value payloads dominate), so the
    // whole-traffic fraction sits near 0.01 no matter how well trimming
    // works — an accounting artifact of the denominator, not a weak
    // optimization.
    rep.set("lossy_trim_bytes_saved_frac",
            1.0 - static_cast<double>(lossy_trim_bytes) /
                      static_cast<double>(lossy_full_bytes));
  }
  double retrans_saved_frac = 0.0;
  if (trim_retrans_full > 0) {
    // The corrected headline: of the bytes retransmissions would have cost
    // as full-batch repeats, the fraction trimming actually saved. Same
    // numerator as above, honest denominator (retransmitted bytes only).
    retrans_saved_frac = 1.0 - static_cast<double>(trim_retrans_sent) /
                                   static_cast<double>(trim_retrans_full);
    rep.set("lossy_trim_retransmit_saved_frac", retrans_saved_frac);
  }
  double leased_speedup = 0.0;
  double leased_read_bytes_ratio = 1.0;
  if (unleased_best.completed_keyed_ops > 0 && leased_best.completed_keyed_ops > 0) {
    leased_speedup =
        leased_best.keyed_ops_per_sec / unleased_best.keyed_ops_per_sec;
    leased_read_bytes_ratio =
        unleased_best.read_net_bytes > 0
            ? static_cast<double>(leased_best.read_net_bytes) /
                  static_cast<double>(unleased_best.read_net_bytes)
            : 1.0;
    rep.set("leased_speedup", leased_speedup);
    rep.set("leased_read_bytes_ratio", leased_read_bytes_ratio);
    std::printf("read leases: %.2fx keyed ops/s, %.0f%% fewer read wire bytes "
                "(%llu leased hits, %llu grants)\n",
                leased_speedup, 100.0 * (1.0 - leased_read_bytes_ratio),
                static_cast<unsigned long long>(leased_best.leased_hits),
                static_cast<unsigned long long>(leased_best.lease_grants));
  }
  std::printf("%s", t.render().c_str());
  std::printf("(keyed ops count per-register operations, so batch cases credit "
              "each key an op; per-key atomicity verified where marked)\n\n");

  rep.write_if_requested(argc, argv);

  if (!all_atomic) {
    std::fprintf(stderr, "FAIL: a run violated per-key atomicity\n");
    return 1;
  }
  // CI gates. Read wire bytes are deterministic per seed, so the leased
  // pair's byte ordering is gated in every mode (~0.33 ratio in smoke, ~0.11
  // in full vs the 0.6 bound). The throughput ratio is wall-clock and the
  // smoke pair is a best-of-1 short run, so the 1.5x speedup gate applies
  // only to full mode, where grant amortization and best-of-3 make it
  // stable (~2.4x measured vs the 1.5x bound).
  if (leased_speedup > 0 && leased_read_bytes_ratio >= 0.6) {
    std::fprintf(stderr, "FAIL: leased read bytes ratio %.2f >= 0.6\n",
                 leased_read_bytes_ratio);
    return 1;
  }
  if (!smoke && leased_speedup > 0 && leased_speedup < 1.5) {
    std::fprintf(stderr, "FAIL: leased speedup %.2fx < 1.5x\n", leased_speedup);
    return 1;
  }
  // Batch-repeat trimming must keep saving a share of retransmitted bytes
  // (the honest-denominator fraction: ~0.05 measured; the whole-traffic
  // lossy_trim_bytes_saved_frac ~0.01 is a denominator artifact, see above).
  if (trim_retrans_full > 0 && retrans_saved_frac < 0.03) {
    std::fprintf(stderr, "FAIL: retransmit trim saved only %.3f < 0.03\n",
                 retrans_saved_frac);
    return 1;
  }
  return 0;
}
