// KV-namespace throughput: completed operations/sec over the multi-register
// emulation, swept across key count, key-popularity skew, and batch size.
//
// The paper's emulation serves one register; the namespace multiplexes many
// over the same cluster and batches multi-key operations into single quorum
// rounds. This bench measures what that buys end to end:
//
//   * key count  — 1 (the paper's setting) vs larger namespaces: per-key
//     state must not slow the hot path,
//   * skew       — uniform vs YCSB-default Zipf(0.99) hot keys,
//   * batch size — multi-key ops amortize round-trips; ops/sec counts
//     *logical* per-key operations, so batching shows up as gain.
//
// Each run verifies per-key atomicity (smoke sizes always; full sizes when
// affordable) — scale numbers from histories that stopped linearizing are
// worthless. Run with --smoke for a CI-sized run, --json[=PATH] for
// machine-readable output (BENCH_kv_throughput.json).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "history/keyed.h"
#include "sim/kv_workload.h"

namespace {

using namespace remus;
using namespace remus::bench;

using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point t0) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - t0).count();
}

struct kv_case {
  const char* name;       // short label ("k64_zipf_b8")
  std::uint32_t keys;
  double theta;
  std::uint32_t batch;
  /// Lossy-link pair (batch-aware retransmission measurement): drop
  /// probability and whether trimmed batch repeats are enabled.
  double drop = 0.0;
  bool trim_retransmit = true;
  std::uint32_t value_bytes = 8;
  std::uint32_t n = 3;
};

struct kv_result {
  double wall_ms = 0;
  std::uint64_t completed_keyed_ops = 0;  // per-key operations (batch = m ops)
  std::uint64_t events = 0;
  double keyed_ops_per_sec = 0;
  double events_per_sec = 0;
  std::uint64_t net_bytes = 0;            // total message bytes on the wire
  bool verified = false;
  bool atomic = true;
  std::size_t keys_checked = 0;
};

kv_result run_case(const kv_case& kc, std::uint32_t ops, std::uint64_t seed) {
  auto cfg = paper_testbed(proto::persistent_policy(), kc.n, seed);
  cfg.net.drop_probability = kc.drop;
  cfg.policy.trim_batch_retransmit = kc.trim_retransmit;
  if (kc.drop > 0.0) cfg.policy.retransmit_delay = 3_ms;  // repeats matter
  core::cluster c(cfg);

  sim::kv_workload_config wc;
  wc.n = cfg.n;
  wc.key_count = kc.keys;
  wc.zipf_theta = kc.theta;
  wc.read_fraction = 0.5;
  wc.batch_size = kc.batch;
  wc.ops = ops;
  wc.value_bytes = kc.value_bytes;
  wc.seed = seed;
  const auto workload = sim::make_kv_workload(wc);

  std::vector<core::cluster::op_handle> handles;
  handles.reserve(workload.size());
  std::vector<proto::write_op> batch_ops;
  std::vector<register_id> batch_regs;
  for (const sim::kv_op& op : workload) {
    if (op.entries.size() == 1) {
      if (op.is_read) {
        handles.push_back(c.submit_read(op.p, op.entries[0].reg, op.at));
      } else {
        handles.push_back(c.submit_write(op.p, op.entries[0].reg, op.entries[0].val, op.at));
      }
    } else if (op.is_read) {
      batch_regs.clear();
      for (const auto& e : op.entries) batch_regs.push_back(e.reg);
      handles.push_back(c.submit_read_batch(op.p, batch_regs, op.at));
    } else {
      batch_ops.clear();
      for (const auto& e : op.entries) batch_ops.push_back({e.reg, e.val});
      handles.push_back(c.submit_write_batch(op.p, batch_ops, op.at));
    }
  }

  kv_result r;
  const std::uint64_t e0 = c.events_executed();
  const auto t0 = clock_type::now();
  c.run_until_idle(500'000'000);
  r.wall_ms = ms_since(t0);
  r.events = c.events_executed() - e0;
  for (const auto h : handles) {
    const auto& res = c.result(h);
    if (!res.completed) continue;
    r.completed_keyed_ops += res.is_batch ? res.batch_result.size() : 1;
  }
  r.keyed_ops_per_sec =
      r.wall_ms > 0 ? 1000.0 * static_cast<double>(r.completed_keyed_ops) / r.wall_ms : 0;
  r.events_per_sec =
      r.wall_ms > 0 ? 1000.0 * static_cast<double>(r.events) / r.wall_ms : 0;
  r.net_bytes = c.network().bytes_sent();

  // Verify per-key atomicity when the history is small enough for the
  // polynomial checker to be cheap (always true in smoke mode).
  if (ops <= 4000) {
    const auto verdict = history::check_persistent_atomicity_per_key(c.events());
    r.verified = true;
    r.atomic = verdict.ok;
    r.keys_checked = verdict.keys_checked;
    if (!verdict.ok) {
      std::fprintf(stderr, "ATOMICITY VIOLATION (%s): %s\n", kc.name,
                   verdict.explanation.c_str());
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = flag_present(argc, argv, "--smoke");
  const std::uint32_t ops = smoke ? 800 : 20000;
  const int reps = smoke ? 1 : 3;

  const std::vector<kv_case> cases = {
      {"k1_uniform_b1", 1, 0.0, 1},        // the paper's single register
      {"k64_uniform_b1", 64, 0.0, 1},
      {"k64_zipf_b1", 64, 0.99, 1},
      {"k1024_zipf_b1", 1024, 0.99, 1},
      {"k64_uniform_b8", 64, 0.0, 8},      // batched multi-key traffic
      {"k1024_zipf_b8", 1024, 0.99, 8},
      // Batch-aware retransmission pair: identical contended batched
      // workload (256-byte values, 10% loss, n=5), full-batch repeats vs trimmed
      // repeats. The JSON reports the message-bytes delta between the two.
      {"k64_b8_lossy_full", 64, 0.0, 8, /*drop=*/0.10, /*trim=*/false, 256, 5},
      {"k64_b8_lossy_trim", 64, 0.0, 8, /*drop=*/0.10, /*trim=*/true, 256, 5},
  };

  std::printf("== KV namespace throughput (%s, best of %d, n=3 persistent) ==\n",
              smoke ? "smoke" : "full", reps);
  metrics::table t({"case", "keyed ops/s", "Mevents/s", "ops", "wall ms", "net MB",
                    "atomic"});

  json_report rep("kv_throughput");
  rep.set("mode", smoke ? "smoke" : "full");
  rep.set("logical_ops_submitted", static_cast<double>(ops));

  bool all_atomic = true;
  // Byte totals for the lossy retransmission pair, summed over all reps so
  // the delta compares the same seed set on both sides.
  std::uint64_t lossy_full_bytes = 0;
  std::uint64_t lossy_trim_bytes = 0;
  for (const kv_case& kc : cases) {
    kv_result best;
    std::uint64_t case_bytes = 0;
    for (int i = 0; i < reps; ++i) {
      const auto r = run_case(kc, ops, 1 + static_cast<std::uint64_t>(i));
      if (r.keyed_ops_per_sec > best.keyed_ops_per_sec || i == 0) best = r;
      if (r.verified && !r.atomic) all_atomic = false;
      case_bytes += r.net_bytes;
    }
    const std::string prefix = kc.name;
    if (prefix == "k64_b8_lossy_full") lossy_full_bytes = case_bytes;
    if (prefix == "k64_b8_lossy_trim") lossy_trim_bytes = case_bytes;
    t.add_row({kc.name, metrics::table::num(best.keyed_ops_per_sec, 0),
               metrics::table::num(best.events_per_sec / 1e6, 2),
               metrics::table::num(static_cast<double>(best.completed_keyed_ops), 0),
               metrics::table::num(best.wall_ms, 1),
               metrics::table::num(static_cast<double>(best.net_bytes) / 1e6, 2),
               best.verified ? (best.atomic ? "yes" : "NO") : "-"});
    rep.set(prefix + "_keyed_ops_per_sec", best.keyed_ops_per_sec);
    rep.set(prefix + "_events_per_sec", best.events_per_sec);
    rep.set(prefix + "_completed_keyed_ops",
            static_cast<double>(best.completed_keyed_ops));
    rep.set(prefix + "_net_bytes", static_cast<double>(best.net_bytes));
    if (best.verified) {
      rep.set(prefix + "_atomic_per_key", best.atomic ? 1.0 : 0.0);
      rep.set(prefix + "_keys_checked", static_cast<double>(best.keys_checked));
    }
  }
  if (lossy_full_bytes > 0) {
    // Headline of the batch-aware retransmission optimization: fraction of
    // message bytes saved by trimming repeats to the unsettled registers.
    rep.set("lossy_trim_bytes_saved_frac",
            1.0 - static_cast<double>(lossy_trim_bytes) /
                      static_cast<double>(lossy_full_bytes));
  }
  std::printf("%s", t.render().c_str());
  std::printf("(keyed ops count per-register operations, so batch cases credit "
              "each key an op; per-key atomicity verified where marked)\n\n");

  rep.write_if_requested(argc, argv);

  if (!all_atomic) {
    std::fprintf(stderr, "FAIL: a run violated per-key atomicity\n");
    return 1;
  }
  return 0;
}
