// Shared helpers for the benchmark harness.
//
// Every bench binary prints a table shaped like the corresponding paper
// figure (EXPERIMENTS.md records paper-vs-measured side by side), then runs
// a few google-benchmark microbenchmarks bounding the harness's own speed.
//
// The cost model is calibrated to the paper's constants (sections I-A, V-A):
// one-way LAN transit ~0.1 ms, one small synchronous log ~0.2 ms, 100 Mbps
// wire, IDE-class disk bandwidth, negligible CPU cost.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/cluster.h"
#include "metrics/op_metrics.h"
#include "metrics/stats.h"
#include "metrics/table.h"
#include "proto/policy.h"

namespace remus::bench {

// ---- Machine-readable results ------------------------------------------------
//
// Every bench binary can emit its headline numbers as a flat JSON object so
// the perf trajectory is trackable across PRs (`BENCH_<name>.json`). Pass
// `--json` to write the default file or `--json=PATH` to choose the location.

class json_report {
 public:
  explicit json_report(std::string name) : name_(std::move(name)) {}

  void set(std::string key, double v) {
    char buf[64];
    if (v == static_cast<double>(static_cast<long long>(v))) {
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    } else {
      std::snprintf(buf, sizeof buf, "%.6g", v);
    }
    entries_.emplace_back(std::move(key), buf);
  }

  void set(std::string key, std::string_view v) {
    std::string quoted = "\"";
    for (const char c : v) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    entries_.emplace_back(std::move(key), std::move(quoted));
  }

  [[nodiscard]] std::string render() const {
    std::string out = "{\n  \"bench\": \"" + name_ + "\"";
    for (const auto& [k, v] : entries_) out += ",\n  \"" + k + "\": " + v;
    out += "\n}\n";
    return out;
  }

  bool write(const std::string& path) const {
    std::ofstream f(path);
    if (!f) return false;
    f << render();
    return static_cast<bool>(f);
  }

  /// Honors `--json` / `--json=PATH` on the command line; returns true if a
  /// file was written (default path: BENCH_<name>.json in the working dir).
  /// An unwritable path is reported on stderr rather than ignored.
  bool write_if_requested(int argc, char** argv) const {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      std::string path;
      if (arg == "--json") {
        path = "BENCH_" + name_ + ".json";
      } else if (arg.rfind("--json=", 0) == 0) {
        path = std::string(arg.substr(7));
      } else {
        continue;
      }
      if (write(path)) return true;
      std::fprintf(stderr, "warning: could not write bench results to %s\n",
                   path.c_str());
      return false;
    }
    return false;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> entries_;  // key -> literal
};

[[nodiscard]] inline bool flag_present(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// Parses `--flag N` / `--flag=N`; returns `fallback` when absent.
[[nodiscard]] inline std::uint32_t flag_u32(int argc, char** argv, std::string_view flag,
                                            std::uint32_t fallback) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == flag && i + 1 < argc) {
      return static_cast<std::uint32_t>(std::strtoul(argv[i + 1], nullptr, 10));
    }
    if (arg.size() > flag.size() + 1 && arg.substr(0, flag.size()) == flag &&
        arg[flag.size()] == '=') {
      return static_cast<std::uint32_t>(
          std::strtoul(arg.data() + flag.size() + 1, nullptr, 10));
    }
  }
  return fallback;
}

/// Configuration mirroring the paper's testbed (section V-A).
inline core::cluster_config paper_testbed(proto::protocol_policy pol, std::uint32_t n,
                                          std::uint64_t seed = 1) {
  core::cluster_config cfg;
  cfg.n = n;
  cfg.policy = std::move(pol);
  cfg.seed = seed;
  cfg.net.base_delay = 115_us;   // "0.1ms transit" + NIC/UDP stack overhead
  cfg.net.jitter = 8_us;
  cfg.net.bandwidth_bps = 100'000'000 / 8;  // 100 Mbps LAN
  cfg.net.loopback_delay = 12_us;
  cfg.disk.base_latency = 200_us;  // "logging a single byte might take twice as long"
  cfg.disk.bandwidth_bps = 20'000'000;  // IDE-era sustained writes
  cfg.process_step_cost = 6_us;
  return cfg;
}

struct latency_result {
  metrics::summary latency_us;
  metrics::summary causal_logs;
  metrics::summary total_logs;
  metrics::summary messages;
  metrics::summary round_trips;
};

/// The paper's first experiment (section V-B): repeat a write of `payload`
/// bytes from p0 `reps` times and collect per-op samples.
inline latency_result measure_writes(const core::cluster_config& cfg, std::size_t payload,
                                     int reps) {
  core::cluster c(cfg);
  latency_result out;
  for (int i = 0; i < reps; ++i) {
    const auto h = c.submit_write(process_id{0},
                                  value_of_size(payload == 0 ? 4 : payload,
                                                static_cast<std::uint8_t>(i + 1)),
                                  c.now());
    if (!c.run_until_idle()) break;
    const auto& r = c.result(h);
    if (!r.completed) continue;
    out.latency_us.add(to_us(r.sample.latency));
    out.causal_logs.add(r.sample.causal_logs);
    out.total_logs.add(r.sample.total_logs);
    out.messages.add(r.sample.messages);
    out.round_trips.add(r.sample.round_trips);
  }
  return out;
}

enum class read_mode {
  quiet,        // no concurrent writer: the paper's "read does not log" case
  racing,       // a write races the read; the read sometimes logs
  propagating,  // the read observes a value not yet at a majority: it must
                // write it back durably — the 1-causal-log case (Theorem 2)
};

/// Reads from p1 under the given concurrency mode.
inline latency_result measure_reads(const core::cluster_config& cfg, int reps,
                                    read_mode mode) {
  latency_result out;
  auto record = [&out](const core::cluster::op_result& r) {
    if (!r.completed) return;
    out.latency_us.add(to_us(r.sample.latency));
    out.causal_logs.add(r.sample.causal_logs);
    out.total_logs.add(r.sample.total_logs);
    out.messages.add(r.sample.messages);
    out.round_trips.add(r.sample.round_trips);
  };

  if (mode == read_mode::propagating) {
    // One fresh world per repetition: a write stalls after reaching a single
    // replica, then the read must propagate it to a majority.
    for (int i = 0; i < reps; ++i) {
      auto cfg_i = cfg;
      cfg_i.seed = cfg.seed + static_cast<std::uint64_t>(i);
      core::cluster c(cfg_i);
      c.write(process_id{0}, value_of_u32(1));
      c.network().set_filter([](const sim::packet_info& pi) {
        sim::filter_verdict v;
        if (pi.kind == 3 /* msg_kind::write */ && pi.from == process_id{0} &&
            pi.to != process_id{3}) {
          v.drop = true;
        }
        return v;
      });
      c.submit_write(process_id{0}, value_of_u32(2), c.now());
      c.run_for(3_ms);
      // Make the read's majority include the lone adopter p3 by silencing
      // two of the stale replicas' round-1 answers.
      c.network().set_filter([](const sim::packet_info& pi) {
        sim::filter_verdict v;
        if (pi.kind == 6 /* msg_kind::read_ack */ &&
            (pi.from == process_id{2} || pi.from == process_id{4})) {
          v.drop = true;
        }
        return v;
      });
      const auto h = c.submit_read(process_id{1}, c.now());
      c.run_for(50_ms);
      record(c.result(h));
    }
    return out;
  }

  core::cluster c(cfg);
  c.write(process_id{0}, value_of_u32(1));  // ground state
  std::uint32_t v = 2;
  for (int i = 0; i < reps; ++i) {
    if (mode == read_mode::racing) {
      // The read's query round lands inside the write's update round.
      c.submit_write(process_id{0}, value_of_u32(v++), c.now());
      const auto h = c.submit_read(process_id{1}, c.now() + 250_us);
      if (!c.run_until_idle()) break;
      record(c.result(h));
    } else {
      const auto h = c.submit_read(process_id{1}, c.now());
      if (!c.run_until_idle()) break;
      record(c.result(h));
    }
  }
  return out;
}

/// Back-compat shim for boolean call sites.
inline latency_result measure_reads(const core::cluster_config& cfg, int reps,
                                    bool concurrent_writer) {
  return measure_reads(cfg, reps,
                       concurrent_writer ? read_mode::racing : read_mode::quiet);
}

inline std::string fmt_us(double us) { return metrics::table::num(us, 0); }

}  // namespace remus::bench
