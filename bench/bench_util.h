// Shared helpers for the benchmark harness.
//
// Every bench binary prints a table shaped like the corresponding paper
// figure (EXPERIMENTS.md records paper-vs-measured side by side), then runs
// a few google-benchmark microbenchmarks bounding the harness's own speed.
//
// The cost model is calibrated to the paper's constants (sections I-A, V-A):
// one-way LAN transit ~0.1 ms, one small synchronous log ~0.2 ms, 100 Mbps
// wire, IDE-class disk bandwidth, negligible CPU cost.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "metrics/op_metrics.h"
#include "metrics/stats.h"
#include "metrics/table.h"
#include "proto/policy.h"

namespace remus::bench {

/// Configuration mirroring the paper's testbed (section V-A).
inline core::cluster_config paper_testbed(proto::protocol_policy pol, std::uint32_t n,
                                          std::uint64_t seed = 1) {
  core::cluster_config cfg;
  cfg.n = n;
  cfg.policy = std::move(pol);
  cfg.seed = seed;
  cfg.net.base_delay = 115_us;   // "0.1ms transit" + NIC/UDP stack overhead
  cfg.net.jitter = 8_us;
  cfg.net.bandwidth_bps = 100'000'000 / 8;  // 100 Mbps LAN
  cfg.net.loopback_delay = 12_us;
  cfg.disk.base_latency = 200_us;  // "logging a single byte might take twice as long"
  cfg.disk.bandwidth_bps = 20'000'000;  // IDE-era sustained writes
  cfg.process_step_cost = 6_us;
  return cfg;
}

struct latency_result {
  metrics::summary latency_us;
  metrics::summary causal_logs;
  metrics::summary total_logs;
  metrics::summary messages;
  metrics::summary round_trips;
};

/// The paper's first experiment (section V-B): repeat a write of `payload`
/// bytes from p0 `reps` times and collect per-op samples.
inline latency_result measure_writes(const core::cluster_config& cfg, std::size_t payload,
                                     int reps) {
  core::cluster c(cfg);
  latency_result out;
  for (int i = 0; i < reps; ++i) {
    const auto h = c.submit_write(process_id{0},
                                  value_of_size(payload == 0 ? 4 : payload,
                                                static_cast<std::uint8_t>(i + 1)),
                                  c.now());
    if (!c.run_until_idle()) break;
    const auto& r = c.result(h);
    if (!r.completed) continue;
    out.latency_us.add(to_us(r.sample.latency));
    out.causal_logs.add(r.sample.causal_logs);
    out.total_logs.add(r.sample.total_logs);
    out.messages.add(r.sample.messages);
    out.round_trips.add(r.sample.round_trips);
  }
  return out;
}

enum class read_mode {
  quiet,        // no concurrent writer: the paper's "read does not log" case
  racing,       // a write races the read; the read sometimes logs
  propagating,  // the read observes a value not yet at a majority: it must
                // write it back durably — the 1-causal-log case (Theorem 2)
};

/// Reads from p1 under the given concurrency mode.
inline latency_result measure_reads(const core::cluster_config& cfg, int reps,
                                    read_mode mode) {
  latency_result out;
  auto record = [&out](const core::cluster::op_result& r) {
    if (!r.completed) return;
    out.latency_us.add(to_us(r.sample.latency));
    out.causal_logs.add(r.sample.causal_logs);
    out.total_logs.add(r.sample.total_logs);
    out.messages.add(r.sample.messages);
    out.round_trips.add(r.sample.round_trips);
  };

  if (mode == read_mode::propagating) {
    // One fresh world per repetition: a write stalls after reaching a single
    // replica, then the read must propagate it to a majority.
    for (int i = 0; i < reps; ++i) {
      auto cfg_i = cfg;
      cfg_i.seed = cfg.seed + static_cast<std::uint64_t>(i);
      core::cluster c(cfg_i);
      c.write(process_id{0}, value_of_u32(1));
      c.network().set_filter([](const sim::packet_info& pi) {
        sim::filter_verdict v;
        if (pi.kind == 3 /* msg_kind::write */ && pi.from == process_id{0} &&
            pi.to != process_id{3}) {
          v.drop = true;
        }
        return v;
      });
      c.submit_write(process_id{0}, value_of_u32(2), c.now());
      c.run_for(3_ms);
      // Make the read's majority include the lone adopter p3 by silencing
      // two of the stale replicas' round-1 answers.
      c.network().set_filter([](const sim::packet_info& pi) {
        sim::filter_verdict v;
        if (pi.kind == 6 /* msg_kind::read_ack */ &&
            (pi.from == process_id{2} || pi.from == process_id{4})) {
          v.drop = true;
        }
        return v;
      });
      const auto h = c.submit_read(process_id{1}, c.now());
      c.run_for(50_ms);
      record(c.result(h));
    }
    return out;
  }

  core::cluster c(cfg);
  c.write(process_id{0}, value_of_u32(1));  // ground state
  std::uint32_t v = 2;
  for (int i = 0; i < reps; ++i) {
    if (mode == read_mode::racing) {
      // The read's query round lands inside the write's update round.
      c.submit_write(process_id{0}, value_of_u32(v++), c.now());
      const auto h = c.submit_read(process_id{1}, c.now() + 250_us);
      if (!c.run_until_idle()) break;
      record(c.result(h));
    } else {
      const auto h = c.submit_read(process_id{1}, c.now());
      if (!c.run_until_idle()) break;
      record(c.result(h));
    }
  }
  return out;
}

/// Back-compat shim for boolean call sites.
inline latency_result measure_reads(const core::cluster_config& cfg, int reps,
                                    bool concurrent_writer) {
  return measure_reads(cfg, reps,
                       concurrent_writer ? read_mode::racing : read_mode::quiet);
}

inline std::string fmt_us(double us) { return metrics::table::num(us, 0); }

}  // namespace remus::bench
