// Experiment E7 — recovery cost (sections IV-B, IV-C): the persistent
// emulation's recovery re-runs the write's second round ("adds one log each
// time a process recovers" at the adopters, plus a quorum round-trip); the
// transient emulation only logs its incremented recovery counter locally.
//
// Measured: wall-clock from the recover event until the process accepts
// invocations again, with and without an interrupted write to finish.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "history/event.h"

namespace {

using namespace remus;
using namespace remus::bench;

constexpr std::uint32_t kN = 5;
constexpr int kReps = 30;

/// Crash p0 (optionally mid-write), recover it, and measure recover -> ready.
metrics::summary measure_recovery(const proto::protocol_policy& pol, bool mid_write,
                                  std::uint64_t seed) {
  metrics::summary out;
  for (int i = 0; i < kReps; ++i) {
    auto cfg = paper_testbed(pol, kN, seed + i);
    core::cluster c(cfg);
    c.write(process_id{0}, value_of_u32(1));
    if (mid_write) {
      // Block round-2 W so the write is pending when the crash lands.
      c.network().set_filter([](const sim::packet_info& pi) {
        sim::filter_verdict v;
        if (pi.kind == static_cast<std::uint8_t>(proto::msg_kind::write) &&
            pi.from == process_id{0}) {
          v.drop = true;
        }
        return v;
      });
      c.submit_write(process_id{0}, value_of_u32(2 + i), c.now());
      c.run_for(2_ms);
      c.network().clear_filter();
    }
    c.submit_crash(process_id{0}, c.now());
    c.run_for(1_ms);
    const time_ns recover_at = c.now();
    c.submit_recover(process_id{0}, recover_at);
    // Step in fine increments until the process accepts invocations again.
    while (!c.is_ready(process_id{0}) && c.now() < recover_at + 1_s) c.run_for(10_us);
    out.add(to_us(c.now() - recover_at));
  }
  return out;
}

void print_paper_table() {
  std::printf("== Recovery procedure cost (N=%u, %d reps) ==\n", kN, kReps);
  metrics::table t({"algorithm", "scenario", "recover->idle [us]", "mechanism"});
  const auto pe_clean = measure_recovery(proto::persistent_policy(), false, 100);
  const auto pe_mid = measure_recovery(proto::persistent_policy(), true, 200);
  const auto tr_clean = measure_recovery(proto::transient_policy(), false, 300);
  const auto tr_mid = measure_recovery(proto::transient_policy(), true, 400);
  t.add_row({"persistent", "no pending write", fmt_us(pe_clean.mean()),
             "retrieve + finish-write round"});
  t.add_row({"persistent", "interrupted write", fmt_us(pe_mid.mean()),
             "retrieve + finish-write round"});
  t.add_row({"transient", "no pending write", fmt_us(tr_clean.mean()),
             "retrieve + 1 local log"});
  t.add_row({"transient", "interrupted write", fmt_us(tr_mid.mean()),
             "retrieve + 1 local log"});
  std::printf("%s", t.render().c_str());
  std::printf("(persistent pays a quorum round-trip at recovery to finish the write;\n"
              " transient recovers locally and lets the next write repair ordering)\n\n");
}

void BM_persistent_recovery(benchmark::State& state) {
  for (auto _ : state) {
    auto s = measure_recovery(proto::persistent_policy(), true, 500);
    benchmark::DoNotOptimize(s.mean());
  }
}
BENCHMARK(BM_persistent_recovery)->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace

int main(int argc, char** argv) {
  print_paper_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
