// Experiment E8 — weaker registers (section VI concluding remarks): safe and
// regular registers save the read's write-back round-trip, but the paper's
// point is that in a system where logging dominates, they save *nothing* on
// logs: any meaningful crash-recovery memory still needs one causal log per
// write, while an atomic read already logs nothing without concurrency.
// "Therefore ... it does not make sense to emulate safe or even regular
// memory."
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"

namespace {

using namespace remus;
using namespace remus::bench;

constexpr int kReps = 50;
constexpr std::uint32_t kN = 5;

void print_paper_table() {
  std::printf("== Weaker registers: read/write cost (crash-stop SWMR, N=%u) ==\n", kN);
  metrics::table t(
      {"register", "write [us]", "write RTs", "read [us]", "read RTs"});
  for (const auto& pol :
       {proto::abd_swmr_policy(), proto::regular_swmr_policy(), proto::safe_swmr_policy()}) {
    const auto w = measure_writes(paper_testbed(pol, kN), 4, kReps);
    const auto r = measure_reads(paper_testbed(pol, kN), kReps, false);
    t.add_row({pol.name, fmt_us(w.latency_us.mean()),
               metrics::table::num(w.round_trips.mean(), 0), fmt_us(r.latency_us.mean()),
               metrics::table::num(r.round_trips.mean(), 0)});
  }
  std::printf("%s", t.render().c_str());

  std::printf("\n== The section-VI argument, in numbers (crash-recovery, N=%u) ==\n", kN);
  metrics::table t2({"memory", "write causal logs", "quiet-read causal logs",
                     "quiet read [us]", "guarantee"});
  for (const auto& pol : {proto::transient_policy(), proto::regular_cr_policy(),
                          proto::safe_cr_policy()}) {
    const auto w = measure_writes(paper_testbed(pol, kN), 4, kReps);
    const auto rd = measure_reads(paper_testbed(pol, kN), kReps, read_mode::quiet);
    const char* guarantee = pol.recovery_counter && pol.read_writeback
                                ? "transient atomic"
                                : (pol.read_return_first ? "safe only" : "regular only");
    t2.add_row({pol.name, metrics::table::num(w.causal_logs.mean(), 1),
                metrics::table::num(rd.causal_logs.mean(), 2),
                fmt_us(rd.latency_us.mean()), guarantee});
  }
  std::printf("%s", t2.render().c_str());
  std::printf("(weakening the register cannot reduce the dominant cost — the write's\n"
              " causal log — so transient atomicity is the sweet spot)\n\n");
}

void BM_regular_read(benchmark::State& state) {
  for (auto _ : state) {
    auto r = measure_reads(paper_testbed(proto::regular_swmr_policy(), kN), 10, false);
    benchmark::DoNotOptimize(r.latency_us.mean());
  }
}
BENCHMARK(BM_regular_read)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  print_paper_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
