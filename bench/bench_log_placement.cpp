// Experiment E4 — the paper's section I-B illustration: algorithms A and A'.
//
// Both broadcast a value and wait for all acks; in A the writer logs before
// broadcasting (its log causally precedes everyone else's: 2 causal logs,
// 2*delta + 2*lambda), in A' every process logs in parallel after receiving
// the broadcast (1 causal log, 2*delta + lambda). The measured gap should be
// ~lambda (~200 us), demonstrating why counting *causal* logs — not logs —
// predicts latency.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"

namespace {

using namespace remus;
using namespace remus::bench;

constexpr int kReps = 50;
constexpr std::uint32_t kN = 5;

void print_paper_table() {
  std::printf("== Section I-B: log placement (algorithms A vs A'), N=%u ==\n", kN);
  metrics::table t({"algorithm", "write [us]", "causal logs", "total logs", "model"});
  const auto a = measure_writes(paper_testbed(proto::ablation_a_policy(), kN), 4, kReps);
  const auto ap =
      measure_writes(paper_testbed(proto::ablation_a_prime_policy(), kN), 4, kReps);
  t.add_row({"A  (log, then send)", fmt_us(a.latency_us.mean()),
             metrics::table::num(a.causal_logs.mean(), 1),
             metrics::table::num(a.total_logs.mean(), 1), "2d + 2l"});
  t.add_row({"A' (send, all log)", fmt_us(ap.latency_us.mean()),
             metrics::table::num(ap.causal_logs.mean(), 1),
             metrics::table::num(ap.total_logs.mean(), 1), "2d + l"});
  t.add_row({"difference", fmt_us(a.latency_us.mean() - ap.latency_us.mean()), "", "",
             "~lambda (200us)"});
  std::printf("%s", t.render().c_str());
  std::printf("(same number of logs in total, different causal structure)\n\n");
}

void BM_algorithm_a(benchmark::State& state) {
  for (auto _ : state) {
    auto r = measure_writes(paper_testbed(proto::ablation_a_policy(), kN), 4, 10);
    benchmark::DoNotOptimize(r.latency_us.mean());
  }
}
BENCHMARK(BM_algorithm_a)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  print_paper_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
