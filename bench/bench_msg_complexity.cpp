// Experiment E6 — message/step parity with the crash-stop baseline
// (sections I-D, IV): "our algorithms use the same number of communication
// steps as [2], namely 4 for any operation", i.e. minimizing logs costs no
// extra messages or rounds.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"

namespace {

using namespace remus;
using namespace remus::bench;

constexpr int kReps = 30;
constexpr std::uint32_t kN = 5;

void print_paper_table() {
  std::printf("== Communication complexity per operation (N=%u) ==\n", kN);
  metrics::table t({"algorithm", "op", "round-trips", "comm. steps", "messages"});
  for (const auto& pol : {proto::crash_stop_policy(), proto::transient_policy(),
                          proto::persistent_policy()}) {
    const auto w = measure_writes(paper_testbed(pol, kN), 4, kReps);
    t.add_row({pol.name, "write", metrics::table::num(w.round_trips.mean(), 1),
               metrics::table::num(2 * w.round_trips.mean(), 1),
               metrics::table::num(w.messages.mean(), 1)});
    const auto r = measure_reads(paper_testbed(pol, kN), kReps, false);
    t.add_row({pol.name, "read", metrics::table::num(r.round_trips.mean(), 1),
               metrics::table::num(2 * r.round_trips.mean(), 1),
               metrics::table::num(r.messages.mean(), 1)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("(4 communication steps everywhere: log-optimality is free in messages;\n"
              " messages/op = 2 rounds x (n broadcast + n acks) = 4n = %u)\n\n", 4 * kN);
}

void BM_message_accounting(benchmark::State& state) {
  for (auto _ : state) {
    auto r = measure_writes(paper_testbed(proto::transient_policy(), kN), 4, 10);
    benchmark::DoNotOptimize(r.messages.mean());
  }
}
BENCHMARK(BM_message_accounting)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  print_paper_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
