// Experiment E5 — read cost with and without concurrency (sections IV-B,
// VI): "in the absence of concurrency, a read will not log, since all
// processes will have already logged the latest value during the previous
// write". A read only pays lambda when its write-back actually propagates a
// value some replica had not logged yet.
//
// The paper's explanation of Figure 6 showing only writes — "in a run
// without any crashes a read does not log, meaning that the execution times
// would be the same for each algorithm" — is verified by the 'quiet' column
// being flat across algorithms.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"

namespace {

using namespace remus;
using namespace remus::bench;

constexpr int kReps = 50;
constexpr std::uint32_t kN = 5;

void print_paper_table() {
  std::printf("== Read latency & logging vs concurrency (N=%u, %d reps) ==\n", kN, kReps);
  metrics::table t({"algorithm", "quiet [us]", "quiet logs", "racing [us]", "racing logs",
                    "propagating [us]", "propagating logs"});
  for (const auto& pol : {proto::crash_stop_policy(), proto::transient_policy(),
                          proto::persistent_policy()}) {
    const auto quiet = measure_reads(paper_testbed(pol, kN), kReps, read_mode::quiet);
    const auto racing = measure_reads(paper_testbed(pol, kN), kReps, read_mode::racing);
    std::string prop_lat = "n/a";
    std::string prop_logs = "n/a";
    if (!pol.crash_stop) {
      const auto prop =
          measure_reads(paper_testbed(pol, kN), kReps, read_mode::propagating);
      prop_lat = fmt_us(prop.latency_us.mean());
      prop_logs = metrics::table::num(prop.causal_logs.mean(), 2);
    }
    t.add_row({pol.name, fmt_us(quiet.latency_us.mean()),
               metrics::table::num(quiet.causal_logs.mean(), 2),
               fmt_us(racing.latency_us.mean()),
               metrics::table::num(racing.causal_logs.mean(), 2), prop_lat, prop_logs});
  }
  std::printf("%s", t.render().c_str());
  std::printf("(quiet reads cost the same in all three algorithms — exactly why the\n"
              " paper's Figure 6 plots only writes)\n\n");
}

void BM_quiet_read(benchmark::State& state) {
  for (auto _ : state) {
    auto r = measure_reads(paper_testbed(proto::persistent_policy(), kN), 10, false);
    benchmark::DoNotOptimize(r.latency_us.mean());
  }
}
BENCHMARK(BM_quiet_read)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  print_paper_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
