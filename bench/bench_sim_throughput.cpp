// Simulator-engine throughput: events/sec and heap allocations/event.
//
// Unlike the other bench binaries (which reproduce paper figures in simulated
// time), this one measures the simulator itself: every experiment we run is
// bounded by how fast the discrete-event core can push events, so events/sec
// is the single multiplier on the whole bench suite. Three workloads:
//
//   * queue microbench — the event queue alone, steady state; the
//     zero-allocation invariant is checked here (allocs/event must be 0),
//   * fault-free      — 3 processes running a full read/write protocol
//     workload end to end (the ISSUE's headline number),
//   * crash-heavy     — 5 processes under rolling minority crash/recovery
//     churn (fault-injection replay throughput).
//
// Run with --smoke for a CI-sized run, --json[=PATH] for machine-readable
// output (BENCH_sim_throughput.json).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "bench_util.h"

// ---- Global allocation counting ---------------------------------------------
// Replacing the global throwing operators is enough: the nothrow and array
// forms forward here by default. Counting is process-wide, which is exactly
// what "allocations per simulated event" should charge.

namespace {
std::uint64_t g_allocs = 0;
std::uint64_t g_alloc_bytes = 0;
}  // namespace

void* operator new(std::size_t n) {
  ++g_allocs;
  g_alloc_bytes += n;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t n, std::align_val_t al) {
  ++g_allocs;
  g_alloc_bytes += n;
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (n + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace remus;
using namespace remus::bench;

using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point t0) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - t0).count();
}

struct engine_result {
  std::uint64_t events = 0;
  std::uint64_t allocs = 0;
  double wall_ms = 0;
  double events_per_sec = 0;
  double allocs_per_event = 0;
  std::uint64_t completed_ops = 0;
};

void finalize(engine_result& r) {
  r.events_per_sec = r.wall_ms > 0 ? 1000.0 * static_cast<double>(r.events) / r.wall_ms : 0;
  r.allocs_per_event =
      r.events > 0 ? static_cast<double>(r.allocs) / static_cast<double>(r.events) : 0;
}

// ---- Workload 1: the event queue alone --------------------------------------
// A ring of self-rescheduling events sized like the cluster's message traffic.
// The typed-event mode must run allocation-free in steady state — that is the
// invariant this refactor establishes and CI enforces. The thunk mode keeps
// the generic std::function fallback honest (one closure allocation/event).

engine_result run_queue_microbench(std::uint64_t total_events, bool typed) {
  sim::event_queue q;
  constexpr int kOutstanding = 64;  // typical in-flight event count for n=5

  struct ring_executor final : sim::sim_executor {
    sim::event_queue* q = nullptr;
    std::uint64_t remaining = 0;
    void execute(sim::sim_event& ev) override {
      if (remaining == 0) return;
      --remaining;
      // Fixed period, staggered lanes: perfectly periodic, so the ring's
      // per-bucket high-water stabilizes after one lap and the steady state
      // is genuinely allocation-free.
      q->schedule_plain(q->now() + 4096, sim::event_kind::timer, ev.target, ev.a,
                        ev.incarnation);
    }
  } exec;
  exec.q = &q;
  exec.remaining = total_events;
  q.set_executor(&exec);

  // Thunk mode's closure must outlive the drain loop below (queued events
  // capture a reference to it).
  std::function<void(std::uint64_t)> fire;
  if (typed) {
    for (int i = 0; i < kOutstanding; ++i) {
      q.schedule_plain(4096 + i, sim::event_kind::timer, process_id{0},
                       static_cast<std::uint64_t>(i), 1);
    }
  } else {
    // Payload sized like a message-delivery closure (destination,
    // incarnation, shared payload pointer): too big for std::function's
    // inline buffer, so every schedule allocates one closure.
    struct delivery_payload {
      std::uint64_t target;
      std::uint64_t incarnation;
      const void* msg;
    };
    fire = [&](std::uint64_t slot) {
      if (exec.remaining == 0) return;
      --exec.remaining;
      const delivery_payload pl{slot, exec.remaining, &q};
      q.schedule_after(4096, [&fire, pl] { fire(pl.target); });
    };
    for (int i = 0; i < kOutstanding; ++i) fire(static_cast<std::uint64_t>(i));
  }

  // Warm up half the events, then measure the steady state.
  const std::uint64_t warm = total_events / 2;
  while (q.executed() < warm && q.step()) {
  }
  engine_result r;
  const std::uint64_t a0 = g_allocs;
  const std::uint64_t e0 = q.executed();
  const auto t0 = clock_type::now();
  while (q.step()) {
  }
  r.wall_ms = ms_since(t0);
  r.events = q.executed() - e0;
  r.allocs = g_allocs - a0;
  finalize(r);
  return r;
}

// ---- Workload 2: fault-free protocol traffic --------------------------------
// Every process queues its whole op script up front (ops dispatch back to back
// per process), so the run is a sustained 3-node read/write storm.

engine_result run_fault_free(std::uint32_t n, int ops_per_process, std::uint64_t seed) {
  auto cfg = paper_testbed(proto::persistent_policy(), n, seed);
  core::cluster c(cfg);
  std::uint32_t v = 1;
  std::vector<core::cluster::op_handle> handles;
  auto enqueue = [&](int count) {
    for (int i = 0; i < count; ++i) {
      handles.push_back(c.submit_write(process_id{0}, value_of_u32(v++), c.now()));
      for (std::uint32_t p = 1; p < n; ++p) {
        handles.push_back(c.submit_read(process_id{p}, c.now()));
      }
    }
  };

  // Warmup: reach steady state (pools filled, tables at capacity).
  enqueue(ops_per_process / 8 + 1);
  c.run_until_idle();
  handles.clear();

  enqueue(ops_per_process);
  engine_result r;
  const std::uint64_t a0 = g_allocs;
  const std::uint64_t e0 = c.events_executed();
  const auto t0 = clock_type::now();
  c.run_until_idle();
  r.wall_ms = ms_since(t0);
  r.events = c.events_executed() - e0;
  r.allocs = g_allocs - a0;
  for (const auto h : handles) {
    if (c.result(h).completed) ++r.completed_ops;
  }
  finalize(r);
  return r;
}

// ---- Workload 3: crash-heavy churn ------------------------------------------
// Rolling minority crash/recovery while ops flow from every process: the
// blackbox fault-injection replay pattern.

engine_result run_crash_heavy(int rounds, std::uint64_t seed) {
  constexpr std::uint32_t kN = 5;
  auto cfg = paper_testbed(proto::persistent_policy(), kN, seed);
  cfg.policy.retransmit_delay = 5_ms;
  core::cluster c(cfg);
  rng r(seed);

  std::vector<core::cluster::op_handle> handles;
  std::uint32_t v = 1;
  std::uint32_t who = 0;
  for (int round = 0; round < rounds; ++round) {
    const time_ns t0 = static_cast<time_ns>(round) * 100_ms;
    for (time_ns t = t0; t < t0 + 100_ms; t += 5_ms) {
      for (std::uint32_t p = 0; p < kN; ++p) {
        const time_ns at = t + r.next_in(0, 4_ms);
        if (r.chance(0.5)) {
          handles.push_back(c.submit_write(process_id{p}, value_of_u32(v++), at));
        } else {
          handles.push_back(c.submit_read(process_id{p}, at));
        }
      }
    }
    // Two processes bounce for 40 ms every round (always a minority).
    const process_id a{who % kN};
    const process_id b{(who + 1) % kN};
    who += 2;
    c.submit_crash(a, t0 + 20_ms);
    c.submit_crash(b, t0 + 21_ms);
    c.submit_recover(a, t0 + 60_ms);
    c.submit_recover(b, t0 + 61_ms);
  }

  engine_result r2;
  const std::uint64_t a0 = g_allocs;
  const std::uint64_t e0 = c.events_executed();
  const auto t0 = clock_type::now();
  c.run_until_idle(200'000'000);
  r2.wall_ms = ms_since(t0);
  r2.events = c.events_executed() - e0;
  r2.allocs = g_allocs - a0;
  for (const auto h : handles) {
    if (c.result(h).completed) ++r2.completed_ops;
  }
  finalize(r2);
  return r2;
}

void add_row(metrics::table& t, const char* name, const engine_result& r) {
  t.add_row({name, metrics::table::num(r.events_per_sec / 1e6, 2),
             metrics::table::num(r.allocs_per_event, 3),
             metrics::table::num(static_cast<double>(r.events), 0),
             metrics::table::num(r.wall_ms, 1)});
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = flag_present(argc, argv, "--smoke");
  const std::uint64_t queue_events = smoke ? 200'000 : 4'000'000;
  const int ff_ops = smoke ? 300 : 5000;
  const int churn_rounds = smoke ? 2 : 20;
  // Wall-clock noise (frequency scaling, noisy neighbours) dominates single
  // runs, so cluster workloads report the best of a few repetitions.
  const int reps = smoke ? 2 : 3;

  const auto qt = run_queue_microbench(queue_events, /*typed=*/true);
  const auto qf = run_queue_microbench(queue_events, /*typed=*/false);
  engine_result ff, ch;
  for (int i = 0; i < reps; ++i) {
    const auto f = run_fault_free(3, ff_ops, 1);
    if (f.events_per_sec > ff.events_per_sec) ff = f;
    const auto c = run_crash_heavy(churn_rounds, 7);
    if (c.events_per_sec > ch.events_per_sec) ch = c;
  }

  std::printf("== Simulator engine throughput (%s, best of %d) ==\n",
              smoke ? "smoke" : "full", reps);
  metrics::table t({"workload", "Mevents/s", "allocs/event", "events", "wall ms"});
  add_row(t, "queue typed events", qt);
  add_row(t, "queue thunk fallback", qf);
  add_row(t, "fault-free n=3", ff);
  add_row(t, "crash-heavy n=5", ch);
  std::printf("%s", t.render().c_str());
  std::printf("(fault-free completed %llu ops, crash-heavy %llu; typed queue "
              "steady state must stay at 0 allocs/event)\n\n",
              static_cast<unsigned long long>(ff.completed_ops),
              static_cast<unsigned long long>(ch.completed_ops));

  json_report rep("sim_throughput");
  rep.set("mode", smoke ? "smoke" : "full");
  rep.set("queue_typed_events_per_sec", qt.events_per_sec);
  rep.set("queue_typed_allocs_per_event", qt.allocs_per_event);
  rep.set("queue_thunk_events_per_sec", qf.events_per_sec);
  rep.set("queue_thunk_allocs_per_event", qf.allocs_per_event);
  rep.set("fault_free_events_per_sec", ff.events_per_sec);
  rep.set("fault_free_allocs_per_event", ff.allocs_per_event);
  rep.set("fault_free_events", static_cast<double>(ff.events));
  rep.set("fault_free_completed_ops", static_cast<double>(ff.completed_ops));
  rep.set("crash_heavy_events_per_sec", ch.events_per_sec);
  rep.set("crash_heavy_allocs_per_event", ch.allocs_per_event);
  rep.set("crash_heavy_events", static_cast<double>(ch.events));
  rep.set("crash_heavy_completed_ops", static_cast<double>(ch.completed_ops));
  rep.write_if_requested(argc, argv);

  // CI gate: the typed steady-state queue must be allocation-free per event.
  // A handful of one-time container high-water growths are amortized O(0);
  // anything approaching one allocation per event — the regression this
  // bench exists to catch — is orders of magnitude above this threshold.
  if (flag_present(argc, argv, "--require-zero-alloc") &&
      qt.allocs_per_event > 1.0 / 10'000.0) {
    std::fprintf(stderr, "FAIL: typed queue steady state allocates (%f allocs/event)\n",
                 qt.allocs_per_event);
    return 1;
  }
  return 0;
}
