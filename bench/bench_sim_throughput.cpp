// Simulator-engine throughput: events/sec and heap allocations/event.
//
// Unlike the other bench binaries (which reproduce paper figures in simulated
// time), this one measures the simulator itself: every experiment we run is
// bounded by how fast the discrete-event core can push events, so events/sec
// is the single multiplier on the whole bench suite. Three workloads:
//
//   * queue microbench — the event queue alone, steady state; the
//     zero-allocation invariant is checked here (allocs/event must be 0),
//   * fault-free      — 3 processes running a full read/write protocol
//     workload end to end (the ISSUE's headline number),
//   * crash-heavy     — 5 processes under rolling minority crash/recovery
//     churn (fault-injection replay throughput).
//
//   * parallel router — 8 independent shards advanced by the worker-pool
//     driver (`--threads N`, default min(8, hardware)): aggregate wall-clock
//     events/sec at 1 worker vs the pool, the multi-threaded simulator's
//     headline.
//
// Run with --smoke for a CI-sized run, --json[=PATH] for machine-readable
// output (BENCH_sim_throughput.json).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <thread>

#include "bench_util.h"
#include "core/shard_router.h"

// ---- Global allocation counting ---------------------------------------------
// Replacing the global throwing operators is enough: the nothrow and array
// forms forward here by default. Counting is process-wide, which is exactly
// what "allocations per simulated event" should charge. Atomic (relaxed)
// because the parallel-router workload allocates from pool threads; relaxed
// is fine — the benches only read the counters at quiescent points.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

std::uint64_t allocs_now() { return g_allocs.load(std::memory_order_relaxed); }
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t n, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (n + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace remus;
using namespace remus::bench;

using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point t0) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - t0).count();
}

struct engine_result {
  std::uint64_t events = 0;
  std::uint64_t allocs = 0;
  double wall_ms = 0;
  double events_per_sec = 0;
  double allocs_per_event = 0;
  std::uint64_t completed_ops = 0;
};

void finalize(engine_result& r) {
  r.events_per_sec = r.wall_ms > 0 ? 1000.0 * static_cast<double>(r.events) / r.wall_ms : 0;
  r.allocs_per_event =
      r.events > 0 ? static_cast<double>(r.allocs) / static_cast<double>(r.events) : 0;
}

// ---- Workload 1: the event queue alone --------------------------------------
// A ring of self-rescheduling events sized like the cluster's message traffic.
// The typed-event mode must run allocation-free in steady state — that is the
// invariant this refactor establishes and CI enforces. The thunk mode keeps
// the generic std::function fallback honest (one closure allocation/event).

engine_result run_queue_microbench(std::uint64_t total_events, bool typed) {
  sim::event_queue q;
  constexpr int kOutstanding = 64;  // typical in-flight event count for n=5

  struct ring_executor final : sim::sim_executor {
    sim::event_queue* q = nullptr;
    std::uint64_t remaining = 0;
    void execute(sim::sim_event& ev) override {
      if (remaining == 0) return;
      --remaining;
      // Fixed period, staggered lanes: perfectly periodic, so the ring's
      // per-bucket high-water stabilizes after one lap and the steady state
      // is genuinely allocation-free.
      q->schedule_plain(q->now() + 4096, sim::event_kind::timer, ev.target, ev.a,
                        ev.incarnation);
    }
  } exec;
  exec.q = &q;
  exec.remaining = total_events;
  q.set_executor(&exec);

  // Thunk mode's closure must outlive the drain loop below (queued events
  // capture a reference to it).
  std::function<void(std::uint64_t)> fire;
  if (typed) {
    for (int i = 0; i < kOutstanding; ++i) {
      q.schedule_plain(4096 + i, sim::event_kind::timer, process_id{0},
                       static_cast<std::uint64_t>(i), 1);
    }
  } else {
    // Payload sized like a message-delivery closure (destination,
    // incarnation, shared payload pointer): too big for std::function's
    // inline buffer, so every schedule allocates one closure.
    struct delivery_payload {
      std::uint64_t target;
      std::uint64_t incarnation;
      const void* msg;
    };
    fire = [&](std::uint64_t slot) {
      if (exec.remaining == 0) return;
      --exec.remaining;
      const delivery_payload pl{slot, exec.remaining, &q};
      q.schedule_after(4096, [&fire, pl] { fire(pl.target); });
    };
    for (int i = 0; i < kOutstanding; ++i) fire(static_cast<std::uint64_t>(i));
  }

  // Warm up half the events, then measure the steady state.
  const std::uint64_t warm = total_events / 2;
  while (q.executed() < warm && q.step()) {
  }
  engine_result r;
  const std::uint64_t a0 = allocs_now();
  const std::uint64_t e0 = q.executed();
  const auto t0 = clock_type::now();
  while (q.step()) {
  }
  r.wall_ms = ms_since(t0);
  r.events = q.executed() - e0;
  r.allocs = allocs_now() - a0;
  finalize(r);
  return r;
}

// ---- Workload 2: fault-free protocol traffic --------------------------------
// Every process queues its whole op script up front (ops dispatch back to back
// per process), so the run is a sustained 3-node read/write storm.

engine_result run_fault_free(std::uint32_t n, int ops_per_process, std::uint64_t seed) {
  auto cfg = paper_testbed(proto::persistent_policy(), n, seed);
  core::cluster c(cfg);
  std::uint32_t v = 1;
  std::vector<core::cluster::op_handle> handles;
  auto enqueue = [&](int count) {
    for (int i = 0; i < count; ++i) {
      handles.push_back(c.submit_write(process_id{0}, value_of_u32(v++), c.now()));
      for (std::uint32_t p = 1; p < n; ++p) {
        handles.push_back(c.submit_read(process_id{p}, c.now()));
      }
    }
  };

  // Warmup: reach steady state (pools filled, tables at capacity).
  enqueue(ops_per_process / 8 + 1);
  c.run_until_idle();
  handles.clear();

  enqueue(ops_per_process);
  engine_result r;
  const std::uint64_t a0 = allocs_now();
  const std::uint64_t e0 = c.events_executed();
  const auto t0 = clock_type::now();
  c.run_until_idle();
  r.wall_ms = ms_since(t0);
  r.events = c.events_executed() - e0;
  r.allocs = allocs_now() - a0;
  for (const auto h : handles) {
    if (c.result(h).completed) ++r.completed_ops;
  }
  finalize(r);
  return r;
}

// ---- Workload 3: crash-heavy churn ------------------------------------------
// Rolling minority crash/recovery while ops flow from every process: the
// blackbox fault-injection replay pattern.

engine_result run_crash_heavy(int rounds, std::uint64_t seed) {
  constexpr std::uint32_t kN = 5;
  auto cfg = paper_testbed(proto::persistent_policy(), kN, seed);
  cfg.policy.retransmit_delay = 5_ms;
  core::cluster c(cfg);
  rng r(seed);

  std::vector<core::cluster::op_handle> handles;
  std::uint32_t v = 1;
  std::uint32_t who = 0;
  for (int round = 0; round < rounds; ++round) {
    const time_ns t0 = static_cast<time_ns>(round) * 100_ms;
    for (time_ns t = t0; t < t0 + 100_ms; t += 5_ms) {
      for (std::uint32_t p = 0; p < kN; ++p) {
        const time_ns at = t + r.next_in(0, 4_ms);
        if (r.chance(0.5)) {
          handles.push_back(c.submit_write(process_id{p}, value_of_u32(v++), at));
        } else {
          handles.push_back(c.submit_read(process_id{p}, at));
        }
      }
    }
    // Two processes bounce for 40 ms every round (always a minority).
    const process_id a{who % kN};
    const process_id b{(who + 1) % kN};
    who += 2;
    c.submit_crash(a, t0 + 20_ms);
    c.submit_crash(b, t0 + 21_ms);
    c.submit_recover(a, t0 + 60_ms);
    c.submit_recover(b, t0 + 61_ms);
  }

  engine_result r2;
  const std::uint64_t a0 = allocs_now();
  const std::uint64_t e0 = c.events_executed();
  const auto t0 = clock_type::now();
  c.run_until_idle(200'000'000);
  r2.wall_ms = ms_since(t0);
  r2.events = c.events_executed() - e0;
  r2.allocs = allocs_now() - a0;
  for (const auto h : handles) {
    if (c.result(h).completed) ++r2.completed_ops;
  }
  finalize(r2);
  return r2;
}

// ---- Workload 4: parallel shard fan-out -------------------------------------
// Eight independent quorum groups behind a shard_router, advanced by the
// worker-pool driver. The same workload runs at workers=1 and workers=pool;
// virtual-time results are bit-identical (the determinism pin's territory),
// so the two rows differ only in wall clock — aggregate events/sec across
// all shards is the multi-threaded simulator's headline number.

engine_result run_parallel_router(std::uint32_t workers, int ops, std::uint64_t seed) {
  core::shard_router_config cfg;
  cfg.shards = 8;
  cfg.base = paper_testbed(proto::persistent_policy(), 3, seed);
  cfg.workers = workers;
  core::shard_router router(cfg);

  rng wr(seed ^ 0x5eed);
  std::uint32_t v = 1;
  time_ns t = 0;
  std::vector<core::shard_router::op_handle> handles;
  for (int i = 0; i < ops; ++i) {
    for (std::uint32_t p = 0; p < router.procs_per_shard(); ++p) {
      const register_id reg = wr.next_below(256);
      if (wr.chance(0.5)) {
        handles.push_back(router.submit_write(process_id{p}, reg, value_of_u32(v++), t));
      } else {
        handles.push_back(router.submit_read(process_id{p}, reg, t));
      }
      t += 100_us;
    }
  }

  engine_result r;
  const std::uint64_t a0 = allocs_now();
  const auto t0 = clock_type::now();
  router.run_until_idle(2'000'000'000);
  r.wall_ms = ms_since(t0);
  r.events = router.events_executed();
  r.allocs = allocs_now() - a0;
  for (const auto h : handles) {
    if (router.result(h).completed) ++r.completed_ops;
  }
  finalize(r);
  return r;
}

void add_row(metrics::table& t, const char* name, const engine_result& r) {
  t.add_row({name, metrics::table::num(r.events_per_sec / 1e6, 2),
             metrics::table::num(r.allocs_per_event, 3),
             metrics::table::num(static_cast<double>(r.events), 0),
             metrics::table::num(r.wall_ms, 1)});
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = flag_present(argc, argv, "--smoke");
  const std::uint64_t queue_events = smoke ? 200'000 : 4'000'000;
  const int ff_ops = smoke ? 300 : 5000;
  const int churn_rounds = smoke ? 2 : 20;
  // Wall-clock noise (frequency scaling, noisy neighbours) dominates single
  // runs, so cluster workloads report the best of a few repetitions.
  const int reps = smoke ? 2 : 3;

  const std::uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::uint32_t threads_flag = flag_u32(argc, argv, "--threads", 0);
  const std::uint32_t pool = threads_flag != 0 ? threads_flag : std::min(8u, hw);
  const int router_ops = smoke ? 250 : 1500;

  const auto qt = run_queue_microbench(queue_events, /*typed=*/true);
  const auto qf = run_queue_microbench(queue_events, /*typed=*/false);
  engine_result ff, ch, rt1, rtn;
  for (int i = 0; i < reps; ++i) {
    const auto f = run_fault_free(3, ff_ops, 1);
    if (f.events_per_sec > ff.events_per_sec) ff = f;
    const auto c = run_crash_heavy(churn_rounds, 7);
    if (c.events_per_sec > ch.events_per_sec) ch = c;
    const auto r1 = run_parallel_router(1, router_ops, 3);
    if (r1.events_per_sec > rt1.events_per_sec) rt1 = r1;
    const auto rn = run_parallel_router(pool, router_ops, 3);
    if (rn.events_per_sec > rtn.events_per_sec) rtn = rn;
  }
  const double router_speedup =
      rt1.events_per_sec > 0 ? rtn.events_per_sec / rt1.events_per_sec : 0;

  std::printf("== Simulator engine throughput (%s, best of %d) ==\n",
              smoke ? "smoke" : "full", reps);
  metrics::table t({"workload", "Mevents/s", "allocs/event", "events", "wall ms"});
  add_row(t, "queue typed events", qt);
  add_row(t, "queue thunk fallback", qf);
  add_row(t, "fault-free n=3", ff);
  add_row(t, "crash-heavy n=5", ch);
  add_row(t, "router s8 w1", rt1);
  const std::string rtn_name = "router s8 w" + std::to_string(pool);
  add_row(t, rtn_name.c_str(), rtn);
  std::printf("%s", t.render().c_str());
  std::printf("(fault-free completed %llu ops, crash-heavy %llu; typed queue "
              "steady state must stay at 0 allocs/event; router pair is the\n"
              " same 8-shard workload at 1 vs %u workers — %.2fx aggregate "
              "wall-clock on %u hw threads, virtual results identical)\n\n",
              static_cast<unsigned long long>(ff.completed_ops),
              static_cast<unsigned long long>(ch.completed_ops), pool,
              router_speedup, hw);

  json_report rep("sim_throughput");
  rep.set("mode", smoke ? "smoke" : "full");
  rep.set("queue_typed_events_per_sec", qt.events_per_sec);
  rep.set("queue_typed_allocs_per_event", qt.allocs_per_event);
  rep.set("queue_thunk_events_per_sec", qf.events_per_sec);
  rep.set("queue_thunk_allocs_per_event", qf.allocs_per_event);
  rep.set("fault_free_events_per_sec", ff.events_per_sec);
  rep.set("fault_free_allocs_per_event", ff.allocs_per_event);
  rep.set("fault_free_events", static_cast<double>(ff.events));
  rep.set("fault_free_completed_ops", static_cast<double>(ff.completed_ops));
  rep.set("crash_heavy_events_per_sec", ch.events_per_sec);
  rep.set("crash_heavy_allocs_per_event", ch.allocs_per_event);
  rep.set("crash_heavy_events", static_cast<double>(ch.events));
  rep.set("crash_heavy_completed_ops", static_cast<double>(ch.completed_ops));
  rep.set("hardware_concurrency", static_cast<double>(hw));
  rep.set("router8_workers", static_cast<double>(pool));
  rep.set("router8_events_per_sec_w1", rt1.events_per_sec);
  rep.set("router8_events_per_sec_wN", rtn.events_per_sec);
  rep.set("router8_wall_speedup", router_speedup);
  rep.set("router8_completed_ops", static_cast<double>(rtn.completed_ops));
  rep.write_if_requested(argc, argv);

  // Worker count must never change the emulation: same events, same
  // completions at 1 worker and at the pool.
  if (rt1.events != rtn.events || rt1.completed_ops != rtn.completed_ops) {
    std::fprintf(stderr,
                 "FAIL: worker pool changed simulated results "
                 "(events %llu vs %llu, ops %llu vs %llu)\n",
                 static_cast<unsigned long long>(rt1.events),
                 static_cast<unsigned long long>(rtn.events),
                 static_cast<unsigned long long>(rt1.completed_ops),
                 static_cast<unsigned long long>(rtn.completed_ops));
    return 1;
  }

  // CI gate: the typed steady-state queue must be allocation-free per event.
  // A handful of one-time container high-water growths are amortized O(0);
  // anything approaching one allocation per event — the regression this
  // bench exists to catch — is orders of magnitude above this threshold.
  if (flag_present(argc, argv, "--require-zero-alloc") &&
      qt.allocs_per_event > 1.0 / 10'000.0) {
    std::fprintf(stderr, "FAIL: typed queue steady state allocates (%f allocs/event)\n",
                 qt.allocs_per_event);
    return 1;
  }
  return 0;
}
