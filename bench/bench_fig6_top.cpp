// Experiment E1 — paper Figure 6 (top): average time of a 4-byte write vs
// number of workstations, for the crash-stop baseline, the transient-atomic
// emulation, and the persistent-atomic emulation.
//
// Paper reference points (section V-B, N=5): crash-stop ~500 us, transient
// ~700 us, persistent ~900 us — i.e. gaps of one and two causal logs
// (~200 us each). The shape to reproduce: persistent > transient >
// crash-stop, constant gaps ~lambda and ~2*lambda, mild growth with N.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"

namespace {

using namespace remus;
using namespace remus::bench;

constexpr int kReps = 50;  // the paper repeats each write fifty times

void print_paper_table() {
  std::printf("== Figure 6 (top): avg write latency [us], 4-byte values, %d reps ==\n",
              kReps);
  metrics::table t({"N", "crash-stop", "transient", "persistent",
                    "gap T-CS", "gap P-CS"});
  for (const std::uint32_t n : {3u, 5u, 7u, 9u}) {
    const auto cs =
        measure_writes(paper_testbed(proto::crash_stop_policy(), n), 4, kReps);
    const auto tr =
        measure_writes(paper_testbed(proto::transient_policy(), n), 4, kReps);
    const auto pe =
        measure_writes(paper_testbed(proto::persistent_policy(), n), 4, kReps);
    t.add_row({std::to_string(n), fmt_us(cs.latency_us.mean()),
               fmt_us(tr.latency_us.mean()), fmt_us(pe.latency_us.mean()),
               fmt_us(tr.latency_us.mean() - cs.latency_us.mean()),
               fmt_us(pe.latency_us.mean() - cs.latency_us.mean())});
  }
  std::printf("%s", t.render().c_str());
  std::printf("(paper @ N=5: 500 / 700 / 900 us; gaps ~200 and ~400 us)\n\n");
}

void BM_write_crash_stop_n5(benchmark::State& state) {
  for (auto _ : state) {
    auto r = measure_writes(paper_testbed(proto::crash_stop_policy(), 5), 4, 10);
    benchmark::DoNotOptimize(r.latency_us.mean());
  }
}
BENCHMARK(BM_write_crash_stop_n5)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_write_persistent_n5(benchmark::State& state) {
  for (auto _ : state) {
    auto r = measure_writes(paper_testbed(proto::persistent_policy(), 5), 4, 10);
    benchmark::DoNotOptimize(r.latency_us.mean());
  }
}
BENCHMARK(BM_write_persistent_n5)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  print_paper_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
