// Experiment E3 — the paper's log-complexity table (sections I-D, IV):
// causal logs per operation for each algorithm, measured by the tracer, and
// total stable-storage writes per operation for context.
//
//   persistent: write = 2 causal logs, read = 1 (0 without concurrency)
//   transient:  write = 1 causal log,  read = 1 (0 without concurrency)
//   crash-stop: never logs
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"

namespace {

using namespace remus;
using namespace remus::bench;

constexpr int kReps = 50;
constexpr std::uint32_t kN = 5;

void print_paper_table() {
  std::printf("== Log complexity per operation (N=%u, %d reps) ==\n", kN, kReps);
  metrics::table t({"algorithm", "op", "causal logs", "total logs", "paper bound"});
  struct row {
    proto::protocol_policy pol;
    const char* bound_w;
    const char* bound_r;
  };
  const row rows[] = {
      {proto::crash_stop_policy(), "0", "0"},
      {proto::transient_policy(), "1", "<=1"},
      {proto::persistent_policy(), "2", "<=1"},
  };
  for (const auto& r : rows) {
    const auto w = measure_writes(paper_testbed(r.pol, kN), 4, kReps);
    t.add_row({r.pol.name, "write", metrics::table::num(w.causal_logs.mean(), 2),
               metrics::table::num(w.total_logs.mean(), 1), r.bound_w});
    const auto rd = measure_reads(paper_testbed(r.pol, kN), kReps, read_mode::quiet);
    t.add_row({r.pol.name, "read (quiet)", metrics::table::num(rd.causal_logs.mean(), 2),
               metrics::table::num(rd.total_logs.mean(), 1), "0"});
    if (r.pol.crash_stop) continue;  // propagation never logs in crash-stop
    const auto rc = measure_reads(paper_testbed(r.pol, kN), kReps, read_mode::propagating);
    t.add_row({r.pol.name, "read (propagating)",
               metrics::table::num(rc.causal_logs.mean(), 2),
               metrics::table::num(rc.total_logs.mean(), 1), r.bound_r});
  }
  std::printf("%s", t.render().c_str());
  std::printf("(Theorem 1: persistent writes need 2 causal logs; Theorem 2: reads\n"
              " need 1; 'in the absence of concurrency an atomic read does not log')\n\n");
}

void BM_trace_overhead(benchmark::State& state) {
  // The causal-log tracer rides in messages; measure a full write with it.
  for (auto _ : state) {
    auto r = measure_writes(paper_testbed(proto::persistent_policy(), kN), 4, 10);
    benchmark::DoNotOptimize(r.causal_logs.mean());
  }
}
BENCHMARK(BM_trace_overhead)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  print_paper_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
