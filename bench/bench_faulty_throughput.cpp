// Experiment E9 — sustained operation under the crash-recovery model's
// harshest allowed behaviour (section II: "all processes can crash, even all
// at the same time", as long as a majority is eventually up): completed
// operations per second while minorities crash and recover periodically, and
// time-to-first-completed-write after a full blackout.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"

namespace {

using namespace remus;
using namespace remus::bench;

constexpr std::uint32_t kN = 5;

struct churn_result {
  double ops_per_sec = 0;
  double completed = 0;
  double submitted = 0;
};

churn_result run_churn(const proto::protocol_policy& pol, bool faults,
                       std::uint64_t seed) {
  auto cfg = paper_testbed(pol, kN, seed);
  cfg.policy.retransmit_delay = 5_ms;
  core::cluster c(cfg);
  rng r(seed);
  const time_ns horizon = 2_s;

  // Closed-loop-ish workload: one op per process every ~5 ms.
  std::vector<core::cluster::op_handle> handles;
  std::uint32_t v = 1;
  for (time_ns t = 0; t < horizon; t += 5_ms) {
    for (std::uint32_t p = 0; p < kN; ++p) {
      const time_ns at = t + r.next_in(0, 4_ms);
      if (r.chance(0.5)) {
        handles.push_back(c.submit_write(process_id{p}, value_of_u32(v++), at));
      } else {
        handles.push_back(c.submit_read(process_id{p}, at));
      }
    }
  }
  if (faults) {
    // Rolling minority churn: every 100 ms, two processes bounce for 40 ms.
    std::uint32_t who = 0;
    for (time_ns t = 20_ms; t + 50_ms < horizon; t += 100_ms) {
      const process_id a{who % kN};
      const process_id b{(who + 1) % kN};
      who += 2;
      c.submit_crash(a, t);
      c.submit_crash(b, t + 1_ms);
      c.submit_recover(a, t + 40_ms);
      c.submit_recover(b, t + 41_ms);
    }
  }
  c.run_until_idle(100'000'000);

  churn_result out;
  out.submitted = static_cast<double>(handles.size());
  for (const auto h : handles) {
    if (c.result(h).completed) out.completed += 1;
  }
  out.ops_per_sec = out.completed / (to_ms(c.now()) / 1000.0);
  return out;
}

double blackout_recovery_ms(const proto::protocol_policy& pol, std::uint64_t seed) {
  auto cfg = paper_testbed(pol, kN, seed);
  cfg.policy.retransmit_delay = 5_ms;
  core::cluster c(cfg);
  c.write(process_id{0}, value_of_u32(1));
  const time_ns dark = c.now() + 1_ms;
  c.apply(sim::make_blackout_plan(kN, dark, 20_ms));
  const auto w = c.submit_write(process_id{1}, value_of_u32(2), dark + 21_ms);
  c.run_until_idle(50'000'000);
  if (!c.result(w).completed) return -1;
  return to_ms(c.now() - dark);
}

void print_paper_table() {
  std::printf("== Throughput under churn (N=%u, 2 s horizon, ops every ~1 ms) ==\n", kN);
  metrics::table t({"algorithm", "quiet ops/s", "churn ops/s", "churn completion %"});
  for (const auto& pol : {proto::crash_stop_policy(), proto::transient_policy(),
                          proto::persistent_policy()}) {
    const auto quiet = run_churn(pol, false, 11);
    // Crash-stop cannot recover: churn only applies to the emulations.
    if (pol.crash_stop) {
      t.add_row({pol.name, metrics::table::num(quiet.ops_per_sec, 0), "n/a", "n/a"});
      continue;
    }
    const auto churn = run_churn(pol, true, 12);
    t.add_row({pol.name, metrics::table::num(quiet.ops_per_sec, 0),
               metrics::table::num(churn.ops_per_sec, 0),
               metrics::table::num(100.0 * churn.completed / churn.submitted, 1)});
  }
  std::printf("%s", t.render().c_str());

  std::printf("\n== Full-blackout recovery (all %u crash, recover after 20 ms) ==\n", kN);
  metrics::table t2({"algorithm", "blackout -> next write done [ms]"});
  for (const auto& pol : {proto::transient_policy(), proto::persistent_policy()}) {
    t2.add_row({pol.name, metrics::table::num(blackout_recovery_ms(pol, 21), 1)});
  }
  std::printf("%s", t2.render().c_str());
  std::printf("(the emulations keep serving across arbitrary crash/recovery churn —\n"
              " the crash-stop baseline cannot survive any recovery scenario)\n\n");
}

void BM_churn_run(benchmark::State& state) {
  for (auto _ : state) {
    auto r = run_churn(proto::transient_policy(), true, 31);
    benchmark::DoNotOptimize(r.ops_per_sec);
  }
}
BENCHMARK(BM_churn_run)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_paper_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
