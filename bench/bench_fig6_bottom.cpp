// Experiment E2 — paper Figure 6 (bottom): average write latency vs payload
// size at N=5 workstations, for all three algorithms.
//
// The paper's claim to reproduce: "for relatively small data sizes, the time
// it takes to log and the time it takes to send a message over the network
// increases linearly" — up to the 64 KB UDP limit. Expect straight lines
// with slope = payload/(wire bandwidth) + payload/(disk bandwidth) x (number
// of causal logs), the persistent line steepest.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"

namespace {

using namespace remus;
using namespace remus::bench;

constexpr int kReps = 50;
constexpr std::uint32_t kN = 5;

void print_paper_table() {
  std::printf(
      "== Figure 6 (bottom): avg write latency [us] vs payload, N=%u, %d reps ==\n",
      kN, kReps);
  metrics::table t({"bytes", "crash-stop", "transient", "persistent"});
  std::vector<std::size_t> sizes{4,    256,   1024,  4096,
                                 8192, 16384, 32768, 65536};  // up to the UDP limit
  double prev_pe = 0;
  std::vector<double> pe_lat;
  for (const std::size_t sz : sizes) {
    const auto cs =
        measure_writes(paper_testbed(proto::crash_stop_policy(), kN), sz, kReps);
    const auto tr =
        measure_writes(paper_testbed(proto::transient_policy(), kN), sz, kReps);
    const auto pe =
        measure_writes(paper_testbed(proto::persistent_policy(), kN), sz, kReps);
    t.add_row({std::to_string(sz), fmt_us(cs.latency_us.mean()),
               fmt_us(tr.latency_us.mean()), fmt_us(pe.latency_us.mean())});
    pe_lat.push_back(pe.latency_us.mean());
    prev_pe = pe.latency_us.mean();
  }
  (void)prev_pe;
  std::printf("%s", t.render().c_str());

  // Linearity check: compare the persistent line's local slopes (us/KB) over
  // the upper half of the sweep (where the linear term dominates).
  const double slope_a = (pe_lat[5] - pe_lat[4]) / ((16384.0 - 8192.0) / 1024.0);
  const double slope_b = (pe_lat[7] - pe_lat[6]) / ((65536.0 - 32768.0) / 1024.0);
  std::printf("persistent slope: %.1f us/KB (8->16K) vs %.1f us/KB (32->64K)"
              " — linear growth as in the paper\n\n",
              slope_a, slope_b);
}

void BM_write_64k_persistent(benchmark::State& state) {
  for (auto _ : state) {
    auto r = measure_writes(paper_testbed(proto::persistent_policy(), kN), 65536, 5);
    benchmark::DoNotOptimize(r.latency_us.mean());
  }
}
BENCHMARK(BM_write_64k_persistent)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  print_paper_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
