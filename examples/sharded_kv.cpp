// A sharded replicated key-value store on core::shard_router: each named
// key is one register of the sharded namespace, consistent-hashed onto one
// of four *independent* 3-replica quorum groups running the paper's
// persistent emulation. Capacity scales with shard count (each group has
// its own majority, stable storage, and fault domain), and linearizability
// survives composition because every key lives on exactly one shard —
// verified at the end on the merged multi-shard history.
//
// Compare bench_shard_scaling for the throughput story; this demo shows the
// fault-isolation story — replicas of two different shards crash at once
// and every shard keeps serving from its remaining majority — and then the
// elasticity story: the ring grows 4 -> 5 *while those replicas are still
// down*, the moved keys migrate online through the dual-ring window, and
// the store never stops answering.
//
// Two modes:
//
//   $ ./build/sharded_kv                # simulated demo (default, see above)
//   $ ./build/sharded_kv --loopback     # REAL processes over TCP loopback
//
// `--loopback` runs the same sharded layout as actual OS processes: the
// parent hosts replica 0 of every shard (runtime::node over a
// runtime::tcp_transport, WAL stable storage on fsync'd files), and
// fork+execs one child process per remaining replica. It then drives keyed
// operations through its replica-0 nodes — one driver thread per shard —
// and reports wall-clock ops/sec, SIGKILLs one replica mid-run, keeps
// serving on the 2/3 majority, respawns it with `--recover` (the paper's
// Recover() procedure over the surviving WAL), kills a *different* replica
// so the recovered one must carry the majority, and finally reads back
// every key against the expected map (exit nonzero on any mismatch).
// `--smoke` shrinks the op counts for CI. `--replica` is the internal child
// entry point.
#include <netinet/in.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/shard_router.h"
#include "history/keyed.h"
#include "history/tag_order.h"
#include "runtime/node.h"
#include "runtime/tcp_transport.h"
#include "storage/wal_store.h"

namespace {

using namespace remus;

/// String-keyed facade: names map to dense register ids (a real deployment
/// would hash names directly; the registry keeps the demo's ids readable).
class kv_store {
 public:
  kv_store() {
    core::shard_router_config cfg;
    cfg.shards = 4;
    cfg.base.n = 3;
    cfg.base.policy = proto::persistent_policy();
    cfg.base.seed = 2026;
    router_ = std::make_unique<core::shard_router>(cfg);
  }

  void put(const std::string& key, const std::string& val) {
    router_->write(client_, reg_of(key), value_of_string(val));
  }

  [[nodiscard]] std::string get(const std::string& key) {
    const value v = router_->read(client_, reg_of(key));
    return v.is_initial() ? "<missing>" : value_as_string(v);
  }

  [[nodiscard]] std::uint32_t shard_of(const std::string& key) {
    return router_->shard_of(reg_of(key));
  }

  void crash_replica(std::uint32_t shard, std::uint32_t node) {
    router_->submit_crash(shard, process_id{node}, router_->now());
    router_->run_for(1_ms);
  }
  void recover_replica(std::uint32_t shard, std::uint32_t node) {
    router_->submit_recover(shard, process_id{node}, router_->now());
    router_->run_for(5_ms);  // let recovery's replay finish
  }

  /// Grow the ring by one shard, online: open the migration window, let the
  /// background drain move the ~1/(S+1) relocated keys, retire the old
  /// ring. Safe to call while replicas elsewhere are crashed — migration
  /// only needs each source group's stable storage, which survives.
  std::uint32_t grow() {
    const std::uint32_t added = router_->begin_add_shard();
    router_->run_until_idle();  // the drain pump rides the scheduling loop
    router_->finish_add_shard();
    return added;
  }
  [[nodiscard]] std::size_t keys_migrated() const {
    return router_->migrated_key_count();  // handoffs only, not write-backs
  }
  [[nodiscard]] std::uint32_t shard_count() const { return router_->shard_count(); }

  /// Per-key atomicity + Lemma-1 tag order of the merged history.
  [[nodiscard]] bool verify() const {
    const auto atom = history::check_persistent_atomicity_per_key(router_->events());
    if (!atom.ok) {
      std::fprintf(stderr, "atomicity: %s\n", atom.explanation.c_str());
      return false;
    }
    const auto tags = history::check_tag_order_per_key(router_->tagged_operations());
    if (!tags.ok) {
      std::fprintf(stderr, "tag order: %s\n", tags.explanation.c_str());
      return false;
    }
    return true;
  }

 private:
  register_id reg_of(const std::string& key) {
    const auto [it, inserted] =
        regs_.try_emplace(key, static_cast<register_id>(regs_.size()));
    (void)inserted;
    return it->second;
  }

  std::unique_ptr<core::shard_router> router_;
  std::map<std::string, register_id> regs_;
  process_id client_{0};  // ops enter through local replica 0 of each shard
};

// ---- Loopback mode: real processes over TCP --------------------------------

const char* flag_value(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

std::uint64_t require_u64(int argc, char** argv, const char* flag) {
  const char* v = flag_value(argc, argv, flag);
  if (v == nullptr) {
    std::fprintf(stderr, "missing %s\n", flag);
    std::exit(2);
  }
  return std::strtoull(v, nullptr, 10);
}

/// Child entry point: one replica process. Serves protocol traffic until
/// killed; the parent's death kills it too (PDEATHSIG), so no orphans.
int run_replica(int argc, char** argv) {
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
  const auto shard = static_cast<std::uint32_t>(require_u64(argc, argv, "--shard"));
  const auto index = static_cast<std::uint32_t>(require_u64(argc, argv, "--index"));
  const auto base_port =
      static_cast<std::uint16_t>(require_u64(argc, argv, "--base-port"));
  const auto n = static_cast<std::uint32_t>(require_u64(argc, argv, "--n"));
  const std::filesystem::path dir = flag_value(argc, argv, "--dir");
  const bool recover = has_flag(argc, argv, "--recover");

  storage::wal_store store(std::make_unique<storage::file_media>(
      dir / ("shard-" + std::to_string(shard)) / std::to_string(index)));
  runtime::tcp_transport_options topt;
  topt.n = n;
  topt.base_port = base_port;
  topt.self = index;
  runtime::tcp_transport net(topt);
  history::recorder rec;
  runtime::node nd(proto::persistent_policy(), process_id{index}, n, store, net,
                   rec, {}, 0x10c0 + shard * 131 + index);
  if (recover) {
    // A respawned process: its volatile state died with the old process, so
    // enter through the paper's Recover() procedure over the surviving WAL
    // (crash() puts the fresh core into the recovering-from state).
    nd.crash();
    nd.recover();
  } else {
    nd.start();
  }
  for (;;) ::pause();
}

bool port_block_free(std::uint16_t base, std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return false;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(base + i));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    const int rc = ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    ::close(fd);
    if (rc != 0) return false;
  }
  return true;
}

std::uint16_t probe_base_port(std::uint32_t count) {
  // Start somewhere pid-dependent so concurrent runs rarely collide; the
  // bind probe catches the rest (a probe-to-use race survives because every
  // replica's bind failure is a loud startup error, not a silent hang).
  std::uint16_t base =
      static_cast<std::uint16_t>(23000 + (::getpid() % 512) * 37 % 20000);
  for (int attempt = 0; attempt < 200; ++attempt) {
    if (port_block_free(base, count)) return base;
    base = static_cast<std::uint16_t>(23000 + (base - 23000 + count + 7) % 20000);
  }
  std::fprintf(stderr, "no free loopback port block found\n");
  std::exit(1);
}

pid_t spawn_replica(const std::string& exe, std::uint32_t shard, std::uint32_t index,
                    std::uint16_t base_port, std::uint32_t n,
                    const std::string& dir, bool recover) {
  std::vector<std::string> args = {exe,
                                   "--replica",
                                   "--shard",
                                   std::to_string(shard),
                                   "--index",
                                   std::to_string(index),
                                   "--base-port",
                                   std::to_string(base_port),
                                   "--n",
                                   std::to_string(n),
                                   "--dir",
                                   dir};
  if (recover) args.push_back("--recover");
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Threads do not survive fork; exec immediately (async-signal-safe).
    ::execv(exe.c_str(), argv.data());
    _exit(127);
  }
  return pid;
}

/// Parent-side state of one shard: replica 0 lives here, replicas 1..n-1
/// are child processes. Declaration order doubles as teardown order — the
/// node detaches before its transport and store die.
struct shard_host {
  std::unique_ptr<runtime::tcp_transport> net;
  std::unique_ptr<storage::wal_store> store;
  std::unique_ptr<history::recorder> rec;
  std::unique_ptr<runtime::node> nd;
  std::vector<pid_t> children;          // replica i at children[i - 1]
  std::vector<std::uint32_t> expected;  // per key: last written value (0 = none)
};

int run_loopback(int argc, char** argv) {
  const bool smoke = has_flag(argc, argv, "--smoke");
  const std::uint32_t shards = smoke ? 2 : 4;
  const std::uint32_t n = 3;
  const std::uint32_t keys = smoke ? 16 : 64;
  const std::uint32_t phase_ops = smoke ? 80 : 500;  // per shard per phase

  char exe_buf[4096];
  const ssize_t exe_len = ::readlink("/proc/self/exe", exe_buf, sizeof(exe_buf) - 1);
  if (exe_len <= 0) {
    std::fprintf(stderr, "cannot resolve /proc/self/exe\n");
    return 1;
  }
  const std::string exe(exe_buf, static_cast<std::size_t>(exe_len));

  const std::uint16_t base_port = probe_base_port(shards * n);
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("remus-loopback-" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  std::printf("loopback: %u shards x %u replicas, ports %u..%u, dir %s\n", shards,
              n, base_port, base_port + shards * n - 1, dir.c_str());
  std::printf("parent hosts replica 0 of each shard; %u child processes\n",
              shards * (n - 1));

  std::vector<shard_host> hosts(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    shard_host& h = hosts[s];
    const auto shard_base = static_cast<std::uint16_t>(base_port + s * n);
    for (std::uint32_t i = 1; i < n; ++i) {
      h.children.push_back(spawn_replica(exe, s, i, shard_base, n, dir, false));
    }
    runtime::tcp_transport_options topt;
    topt.n = n;
    topt.base_port = shard_base;
    topt.self = 0;
    h.net = std::make_unique<runtime::tcp_transport>(topt);
    h.store = std::make_unique<storage::wal_store>(
        std::make_unique<storage::file_media>(dir / ("shard-" + std::to_string(s)) /
                                              "0"));
    h.rec = std::make_unique<history::recorder>();
    h.nd = std::make_unique<runtime::node>(proto::persistent_policy(), process_id{0},
                                           n, *h.store, *h.net, *h.rec,
                                           runtime::node_options{}, 0x909 + s);
    h.nd->start();
    h.expected.assign(keys, 0);
  }

  const auto kill_children = [&] {
    for (shard_host& h : hosts) {
      for (const pid_t pid : h.children) {
        if (pid > 0) {
          ::kill(pid, SIGKILL);
          ::waitpid(pid, nullptr, 0);
        }
      }
    }
  };

  std::atomic<bool> failed{false};
  // One driver thread per shard: `ops` alternating write/read operations on
  // the shard's key space. Reads are checked against the expected map on the
  // spot — with a single client per shard, a read must return exactly the
  // last completed write.
  const auto run_phase = [&](const std::vector<std::uint32_t>& shard_ids,
                             std::uint32_t ops, std::uint32_t phase) -> double {
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> drivers;
    drivers.reserve(shard_ids.size());
    for (const std::uint32_t s : shard_ids) {
      drivers.emplace_back([&, s] {
        shard_host& h = hosts[s];
        try {
          for (std::uint32_t op = 0; op < ops; ++op) {
            const std::uint32_t key = (op * 7 + phase) % keys;
            const auto reg = static_cast<register_id>(key);
            if (op % 2 == 0) {
              const std::uint32_t val = (phase << 24) | (s << 16) | (op + 1);
              h.nd->write(reg, value_of_u32(val));
              h.expected[key] = val;
            } else {
              const value v = h.nd->read(reg);
              const std::uint32_t want = h.expected[key];
              const bool ok = want == 0 ? v.is_initial()
                                        : (!v.is_initial() && value_as_u32(v) == want);
              if (!ok) {
                std::fprintf(stderr,
                             "shard %u key %u: read mismatch (want %u)\n", s, key,
                             want);
                failed = true;
                return;
              }
            }
          }
        } catch (const std::exception& e) {
          std::fprintf(stderr, "shard %u driver failed: %s\n", s, e.what());
          failed = true;
        }
      });
    }
    for (std::thread& t : drivers) t.join();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
  };

  std::vector<std::uint32_t> all_shards(shards);
  for (std::uint32_t s = 0; s < shards; ++s) all_shards[s] = s;

  // Phase 1: all shards healthy.
  const double t1 = run_phase(all_shards, phase_ops, 1);
  const double rate1 = static_cast<double>(phase_ops) * shards / t1;
  std::printf("phase 1 (healthy):   %u ops over %u shards in %.2fs — %.0f ops/sec wall clock\n",
              phase_ops * shards, shards, t1, rate1);

  // Kill replica 2 of shard 0: the shard keeps serving on its 2/3 majority.
  std::printf("SIGKILL shard 0 replica 2 — serving on the remaining majority\n");
  ::kill(hosts[0].children[1], SIGKILL);
  ::waitpid(hosts[0].children[1], nullptr, 0);
  hosts[0].children[1] = -1;
  const double t2 = run_phase({0}, phase_ops, 2);
  std::printf("phase 2 (degraded):  %u ops on shard 0 in %.2fs — %.0f ops/sec\n",
              phase_ops, t2, static_cast<double>(phase_ops) / t2);

  // Respawn it with --recover: Recover() replays the WAL and rejoins. Then
  // kill a DIFFERENT replica, so the recovered one must carry the majority —
  // if recovery were broken, phase 3 would stall or serve stale state.
  std::printf("respawn shard 0 replica 2 with --recover\n");
  hosts[0].children[1] = spawn_replica(
      exe, 0, 2, static_cast<std::uint16_t>(base_port + 0 * n), n, dir, true);
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  std::printf("SIGKILL shard 0 replica 1 — recovered replica must carry the quorum\n");
  ::kill(hosts[0].children[0], SIGKILL);
  ::waitpid(hosts[0].children[0], nullptr, 0);
  hosts[0].children[0] = -1;
  const double t3 = run_phase({0}, phase_ops, 3);
  std::printf("phase 3 (recovered): %u ops on shard 0 in %.2fs — %.0f ops/sec\n",
              phase_ops, t3, static_cast<double>(phase_ops) / t3);

  // Final audit: read back every key of every shard against the expected map.
  std::uint32_t checked = 0;
  for (std::uint32_t s = 0; s < shards && !failed; ++s) {
    shard_host& h = hosts[s];
    for (std::uint32_t key = 0; key < keys; ++key) {
      try {
        const value v = h.nd->read(static_cast<register_id>(key));
        const std::uint32_t want = h.expected[key];
        const bool ok =
            want == 0 ? v.is_initial() : (!v.is_initial() && value_as_u32(v) == want);
        if (!ok) {
          std::fprintf(stderr, "audit: shard %u key %u mismatch (want %u)\n", s, key,
                       want);
          failed = true;
          break;
        }
        ++checked;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "audit: shard %u key %u failed: %s\n", s, key, e.what());
        failed = true;
        break;
      }
    }
  }

  kill_children();
  hosts.clear();  // nodes detach, transports stop, stores close
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  const double total_ops = 3.0 * phase_ops + phase_ops * (shards - 1) + checked;
  std::printf("audit: %u/%u keys match after kill+recover: %s\n", checked,
              shards * keys, failed ? "NO" : "yes");
  std::printf("loopback run %s: %.0f total ops, aggregate healthy-phase rate %.0f ops/sec\n",
              failed ? "FAILED" : "ok", total_ops, rate1);
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (has_flag(argc, argv, "--replica")) return run_replica(argc, argv);
  if (has_flag(argc, argv, "--loopback")) return run_loopback(argc, argv);
  kv_store store;

  std::printf("populating...\n");
  store.put("region", "eu-west");
  store.put("quota/alice", "120GB");
  store.put("quota/bob", "80GB");
  store.put("feature/dark-mode", "on");

  std::printf("region           = %s\n", store.get("region").c_str());
  std::printf("quota/alice      = %s\n", store.get("quota/alice").c_str());

  // Crash one replica in quota/bob's shard AND one in feature/dark-mode's:
  // independent fault domains, both keep a 2/3 majority and keep serving.
  const std::uint32_t shard_bob = store.shard_of("quota/bob");
  const std::uint32_t shard_dark = store.shard_of("feature/dark-mode");
  if (shard_bob == shard_dark) {
    // The demo's fault-isolation story needs two distinct shards; crashing
    // two replicas of the SAME 3-replica shard would lose its majority and
    // hang the next synchronous put. Fail loudly if an edit to the demo
    // keys (or the ring defaults) ever breaks the premise.
    std::fprintf(stderr,
                 "demo premise broken: both keys hash to shard %u — pick "
                 "different demo keys\n",
                 shard_bob);
    return 1;
  }
  std::printf("crashing replica 2 of shard %u and replica 1 of shard %u...\n",
              shard_bob, shard_dark);
  store.crash_replica(shard_bob, 2);
  store.crash_replica(shard_dark, 1);
  store.put("quota/bob", "200GB");
  store.put("feature/dark-mode", "off");
  std::printf("quota/bob        = %s (served by the remaining majority)\n",
              store.get("quota/bob").c_str());
  std::printf("feature/dark-mode= %s (served by the remaining majority)\n",
              store.get("feature/dark-mode").c_str());

  // A burst of per-user state, so the upcoming rebalance has a real
  // namespace to move (~1/5 of these keys will change owner).
  for (int u = 0; u < 20; ++u) {
    store.put("user/" + std::to_string(u), "profile-v" + std::to_string(u));
  }

  // Grow the fleet WHILE the two replicas are still down: capacity problems
  // rarely wait for a fully healthy cluster. The moved keys migrate online
  // (reads answer from the old shards through the window; state transfers
  // through stable storage, which the crashed replicas kept).
  std::printf("growing the ring %u -> %u with both replicas still down...\n",
              store.shard_count(), store.shard_count() + 1);
  const std::uint32_t added = store.grow();
  std::printf("shard %u joined; %zu key migrations recorded, store kept serving:\n",
              added, store.keys_migrated());
  std::printf("region           = %s\n", store.get("region").c_str());
  std::printf("quota/alice      = %s\n", store.get("quota/alice").c_str());
  std::printf("quota/bob        = %s\n", store.get("quota/bob").c_str());

  store.recover_replica(shard_bob, 2);
  store.recover_replica(shard_dark, 1);
  std::printf("replicas recovered\n");
  store.put("quota/bob", "250GB");
  std::printf("quota/bob        = %s\n", store.get("quota/bob").c_str());

  const bool ok = store.verify();
  std::printf("merged multi-shard history atomic per key: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
