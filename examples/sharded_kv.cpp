// A replicated key-value store on the threaded runtime: keys are hashed
// onto independent shared-memory shards (one emulated register per shard),
// each shard replicated over three real threads with the transient-atomic
// protocol — the paper's recommended sweet spot for systems where logging
// dominates (section VI).
//
// Registers are read/write (no conditional writes), so the store has
// last-writer-wins semantics per shard snapshot — the classic pattern for
// configuration/metadata stores.
//
//   $ ./build/examples/sharded_kv
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/codec.h"
#include "history/atomicity.h"
#include "runtime/service.h"

namespace {

using namespace remus;

/// A shard's register holds a serialized map<string,string> snapshot.
bytes encode_map(const std::map<std::string, std::string>& m) {
  byte_writer w;
  w.put_u32(static_cast<std::uint32_t>(m.size()));
  for (const auto& [k, v] : m) {
    w.put_string(k);
    w.put_string(v);
  }
  return std::move(w).take();
}

std::map<std::string, std::string> decode_map(const bytes& b) {
  std::map<std::string, std::string> m;
  if (b.empty()) return m;
  byte_reader r(b);
  const auto n = r.get_u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    auto k = r.get_string();
    m.emplace(std::move(k), r.get_string());
  }
  return m;
}

class kv_store {
 public:
  explicit kv_store(std::size_t shards) {
    for (std::size_t s = 0; s < shards; ++s) {
      runtime::service_options opt;
      opt.n = 3;
      opt.policy = proto::transient_policy();
      opt.seed = 1000 + s;
      shards_.push_back(std::make_unique<runtime::service>(std::move(opt)));
    }
  }

  void put(const std::string& key, const std::string& val) {
    auto& svc = shard_of(key);
    // Read-modify-write of the shard snapshot through one replica.
    auto snapshot = decode_map(svc.read(client_).data);
    snapshot[key] = val;
    // Unique snapshots: tag a version counter so histories stay checkable.
    snapshot["__version"] = std::to_string(++version_);
    svc.write(client_, value{encode_map(snapshot)});
  }

  [[nodiscard]] std::string get(const std::string& key) {
    auto snapshot = decode_map(shard_of(key).read(client_).data);
    const auto it = snapshot.find(key);
    return it == snapshot.end() ? "<missing>" : it->second;
  }

  void crash_replica(std::size_t shard, std::uint32_t node) {
    shards_.at(shard)->crash(process_id{node});
  }
  void recover_replica(std::size_t shard, std::uint32_t node) {
    shards_.at(shard)->recover(process_id{node});
  }

  [[nodiscard]] bool verify() const {
    for (const auto& s : shards_) {
      if (!history::check_transient_atomicity(s->events()).ok) return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t shard_index(const std::string& key) const {
    return std::hash<std::string>{}(key) % shards_.size();
  }

 private:
  runtime::service& shard_of(const std::string& key) {
    return *shards_[shard_index(key)];
  }

  std::vector<std::unique_ptr<runtime::service>> shards_;
  process_id client_{0};  // operations enter through replica 0 of each shard
  std::uint64_t version_ = 0;
};

}  // namespace

int main() {
  kv_store store(/*shards=*/4);

  std::printf("populating...\n");
  store.put("region", "eu-west");
  store.put("quota/alice", "120GB");
  store.put("quota/bob", "80GB");
  store.put("feature/dark-mode", "on");

  std::printf("region           = %s\n", store.get("region").c_str());
  std::printf("quota/alice      = %s\n", store.get("quota/alice").c_str());

  // Crash one replica of the shard holding quota/bob; the shard keeps
  // serving (majority of 2/3), and the replica catches up after recovery.
  const std::size_t shard = store.shard_index("quota/bob");
  std::printf("crashing replica 2 of shard %zu...\n", shard);
  store.crash_replica(shard, 2);
  store.put("quota/bob", "200GB");
  std::printf("quota/bob        = %s (served by the remaining majority)\n",
              store.get("quota/bob").c_str());
  store.recover_replica(shard, 2);
  std::printf("replica recovered\n");
  store.put("feature/dark-mode", "off");
  std::printf("feature/dark-mode= %s\n", store.get("feature/dark-mode").c_str());

  const bool ok = store.verify();
  std::printf("shard histories transient-atomic: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
