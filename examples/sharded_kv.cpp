// A sharded replicated key-value store on core::shard_router: each named
// key is one register of the sharded namespace, consistent-hashed onto one
// of four *independent* 3-replica quorum groups running the paper's
// persistent emulation. Capacity scales with shard count (each group has
// its own majority, stable storage, and fault domain), and linearizability
// survives composition because every key lives on exactly one shard —
// verified at the end on the merged multi-shard history.
//
// Compare bench_shard_scaling for the throughput story; this demo shows the
// fault-isolation story — replicas of two different shards crash at once
// and every shard keeps serving from its remaining majority — and then the
// elasticity story: the ring grows 4 -> 5 *while those replicas are still
// down*, the moved keys migrate online through the dual-ring window, and
// the store never stops answering.
//
//   $ ./build/sharded_kv
#include <cstdio>
#include <map>
#include <string>

#include "core/shard_router.h"
#include "history/keyed.h"
#include "history/tag_order.h"

namespace {

using namespace remus;

/// String-keyed facade: names map to dense register ids (a real deployment
/// would hash names directly; the registry keeps the demo's ids readable).
class kv_store {
 public:
  kv_store() {
    core::shard_router_config cfg;
    cfg.shards = 4;
    cfg.base.n = 3;
    cfg.base.policy = proto::persistent_policy();
    cfg.base.seed = 2026;
    router_ = std::make_unique<core::shard_router>(cfg);
  }

  void put(const std::string& key, const std::string& val) {
    router_->write(client_, reg_of(key), value_of_string(val));
  }

  [[nodiscard]] std::string get(const std::string& key) {
    const value v = router_->read(client_, reg_of(key));
    return v.is_initial() ? "<missing>" : value_as_string(v);
  }

  [[nodiscard]] std::uint32_t shard_of(const std::string& key) {
    return router_->shard_of(reg_of(key));
  }

  void crash_replica(std::uint32_t shard, std::uint32_t node) {
    router_->submit_crash(shard, process_id{node}, router_->now());
    router_->run_for(1_ms);
  }
  void recover_replica(std::uint32_t shard, std::uint32_t node) {
    router_->submit_recover(shard, process_id{node}, router_->now());
    router_->run_for(5_ms);  // let recovery's replay finish
  }

  /// Grow the ring by one shard, online: open the migration window, let the
  /// background drain move the ~1/(S+1) relocated keys, retire the old
  /// ring. Safe to call while replicas elsewhere are crashed — migration
  /// only needs each source group's stable storage, which survives.
  std::uint32_t grow() {
    const std::uint32_t added = router_->begin_add_shard();
    router_->run_until_idle();  // the drain pump rides the scheduling loop
    router_->finish_add_shard();
    return added;
  }
  [[nodiscard]] std::size_t keys_migrated() const {
    return router_->migrated_key_count();  // handoffs only, not write-backs
  }
  [[nodiscard]] std::uint32_t shard_count() const { return router_->shard_count(); }

  /// Per-key atomicity + Lemma-1 tag order of the merged history.
  [[nodiscard]] bool verify() const {
    const auto atom = history::check_persistent_atomicity_per_key(router_->events());
    if (!atom.ok) {
      std::fprintf(stderr, "atomicity: %s\n", atom.explanation.c_str());
      return false;
    }
    const auto tags = history::check_tag_order_per_key(router_->tagged_operations());
    if (!tags.ok) {
      std::fprintf(stderr, "tag order: %s\n", tags.explanation.c_str());
      return false;
    }
    return true;
  }

 private:
  register_id reg_of(const std::string& key) {
    const auto [it, inserted] =
        regs_.try_emplace(key, static_cast<register_id>(regs_.size()));
    (void)inserted;
    return it->second;
  }

  std::unique_ptr<core::shard_router> router_;
  std::map<std::string, register_id> regs_;
  process_id client_{0};  // ops enter through local replica 0 of each shard
};

}  // namespace

int main() {
  kv_store store;

  std::printf("populating...\n");
  store.put("region", "eu-west");
  store.put("quota/alice", "120GB");
  store.put("quota/bob", "80GB");
  store.put("feature/dark-mode", "on");

  std::printf("region           = %s\n", store.get("region").c_str());
  std::printf("quota/alice      = %s\n", store.get("quota/alice").c_str());

  // Crash one replica in quota/bob's shard AND one in feature/dark-mode's:
  // independent fault domains, both keep a 2/3 majority and keep serving.
  const std::uint32_t shard_bob = store.shard_of("quota/bob");
  const std::uint32_t shard_dark = store.shard_of("feature/dark-mode");
  if (shard_bob == shard_dark) {
    // The demo's fault-isolation story needs two distinct shards; crashing
    // two replicas of the SAME 3-replica shard would lose its majority and
    // hang the next synchronous put. Fail loudly if an edit to the demo
    // keys (or the ring defaults) ever breaks the premise.
    std::fprintf(stderr,
                 "demo premise broken: both keys hash to shard %u — pick "
                 "different demo keys\n",
                 shard_bob);
    return 1;
  }
  std::printf("crashing replica 2 of shard %u and replica 1 of shard %u...\n",
              shard_bob, shard_dark);
  store.crash_replica(shard_bob, 2);
  store.crash_replica(shard_dark, 1);
  store.put("quota/bob", "200GB");
  store.put("feature/dark-mode", "off");
  std::printf("quota/bob        = %s (served by the remaining majority)\n",
              store.get("quota/bob").c_str());
  std::printf("feature/dark-mode= %s (served by the remaining majority)\n",
              store.get("feature/dark-mode").c_str());

  // A burst of per-user state, so the upcoming rebalance has a real
  // namespace to move (~1/5 of these keys will change owner).
  for (int u = 0; u < 20; ++u) {
    store.put("user/" + std::to_string(u), "profile-v" + std::to_string(u));
  }

  // Grow the fleet WHILE the two replicas are still down: capacity problems
  // rarely wait for a fully healthy cluster. The moved keys migrate online
  // (reads answer from the old shards through the window; state transfers
  // through stable storage, which the crashed replicas kept).
  std::printf("growing the ring %u -> %u with both replicas still down...\n",
              store.shard_count(), store.shard_count() + 1);
  const std::uint32_t added = store.grow();
  std::printf("shard %u joined; %zu key migrations recorded, store kept serving:\n",
              added, store.keys_migrated());
  std::printf("region           = %s\n", store.get("region").c_str());
  std::printf("quota/alice      = %s\n", store.get("quota/alice").c_str());
  std::printf("quota/bob        = %s\n", store.get("quota/bob").c_str());

  store.recover_replica(shard_bob, 2);
  store.recover_replica(shard_dark, 1);
  std::printf("replicas recovered\n");
  store.put("quota/bob", "250GB");
  std::printf("quota/bob        = %s\n", store.get("quota/bob").c_str());

  const bool ok = store.verify();
  std::printf("merged multi-shard history atomic per key: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
