// Quickstart: a five-process robust shared-memory emulation in the
// simulator — write, read, crash a majority, recover, read again, and verify
// the whole history against the paper's persistent-atomicity criterion.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/cluster.h"
#include "history/atomicity.h"
#include "proto/policy.h"

int main() {
  using namespace remus;

  // 1. Configure: 5 processes, the persistent-atomic emulation (Fig. 4),
  //    the paper's LAN/disk cost model by default.
  core::cluster_config cfg;
  cfg.n = 5;
  cfg.policy = proto::persistent_policy();
  core::cluster memory(cfg);

  // 2. Write from one process, read from another.
  memory.write(process_id{0}, value_of_string("hello, crash-recovery world"));
  const value v = memory.read(process_id{3});
  std::printf("p3 read: \"%s\"\n", value_as_string(v).c_str());

  // 3. Crash everyone at once (allowed by the model!), recover, read again.
  memory.apply(sim::make_blackout_plan(cfg.n, memory.now() + 1_ms, /*down=*/10_ms));
  memory.run_until_idle();
  const value after = memory.read(process_id{2});
  std::printf("after full blackout, p2 read: \"%s\"\n", value_as_string(after).c_str());

  // 4. Verify the recorded history satisfies persistent atomicity.
  const auto verdict = history::check_persistent_atomicity(memory.events());
  std::printf("persistent atomicity: %s\n", verdict.ok ? "OK" : "VIOLATED");
  if (!verdict.ok) std::printf("%s\n", verdict.explanation.c_str());

  // 5. Metrics: what did operations cost?
  const auto stats = memory.collect();
  std::printf("%s", stats.describe().c_str());
  return verdict.ok ? 0 : 1;
}
