// The paper's Figure 1, live: what readers observe when a writer crashes in
// the middle of a write and then writes again — under the persistent
// emulation (the unfinished write is completed at recovery) versus the
// transient emulation (the unfinished write may surface later, overlapping
// the next write).
//
//   $ ./build/examples/crash_recovery_demo
#include <cstdio>

#include "core/cluster.h"
#include "history/atomicity.h"
#include "proto/policy.h"

namespace {

using namespace remus;

history::history_log run_figure1(proto::protocol_policy pol, const char* label) {
  std::printf("--- %s ---\n", label);
  core::cluster_config cfg;
  cfg.n = 5;
  cfg.policy = std::move(pol);
  cfg.policy.retransmit_delay = 10_s;  // keep the scripted schedule clean
  core::cluster c(cfg);

  // W(v1) completes normally.
  c.write(process_id{0}, value_of_u32(1));

  // W(v2): the update round reaches only p3, then the writer crashes.
  c.network().set_filter([](const sim::packet_info& pi) {
    sim::filter_verdict v;
    if (pi.kind == static_cast<std::uint8_t>(proto::msg_kind::write) &&
        pi.from == process_id{0} && pi.to != process_id{3}) {
      v.drop = true;
    }
    return v;
  });
  c.submit_write(process_id{0}, value_of_u32(2), c.now());
  c.submit_crash(process_id{0}, c.now() + 2_ms);
  c.run_for(3_ms);
  c.network().clear_filter();
  std::printf("W(2) interrupted by a crash (value reached one process)\n");

  // The writer recovers and starts W(v3); the new value's delivery is
  // delayed so a read can run while W(v3) is still in flight (the exact
  // situation of Figure 1).
  c.submit_recover(process_id{0}, c.now());
  c.run_for(10_ms);
  c.network().set_filter([](const sim::packet_info& pi) {
    sim::filter_verdict v;
    if (pi.kind == static_cast<std::uint8_t>(proto::msg_kind::write) &&
        pi.from == process_id{0}) {
      v.deliver_at = pi.now + 5_ms;  // W(3) hangs in the network for a while
    }
    if (pi.kind == static_cast<std::uint8_t>(proto::msg_kind::read_ack) &&
        pi.from == process_id{3}) {
      v.drop = true;  // the read's quorum misses the one holder of v2
    }
    return v;
  });
  const auto w3 = c.submit_write(process_id{0}, value_of_u32(3), c.now());
  const auto r1 = c.submit_read(process_id{1}, c.now() + 500_us);
  c.run_until_idle();
  c.network().clear_filter();
  std::printf("writer recovered; W(3) and a concurrent read ran\n");
  std::printf("  read during W(3) -> %s\n", to_string(c.result(r1).v).c_str());
  (void)w3;

  // After W(3) completes, reads settle on v3.
  for (int i = 0; i < 2; ++i) {
    const value v = c.read(process_id{1});
    std::printf("  read %d after W(3) -> %s\n", i + 1, to_string(v).c_str());
  }
  c.run_until_idle();
  const auto h = c.events();
  const auto pers = history::check_persistent_atomicity(h);
  const auto trans = history::check_transient_atomicity(h);
  std::printf("verdicts: persistent=%s transient=%s\n\n", pers.ok ? "OK" : "violated",
              trans.ok ? "OK" : "violated");
  return h;
}

}  // namespace

int main() {
  std::printf("Figure 1 of the paper, reenacted.\n\n");
  run_figure1(remus::proto::persistent_policy(), "persistent atomic emulation (Fig. 4)");
  run_figure1(remus::proto::transient_policy(), "transient atomic emulation (Fig. 5)");
  std::printf(
      "Note: under the persistent emulation the recovery finished W(2) before\n"
      "W(3) could start, so readers always see 2 then 3 in order. The transient\n"
      "emulation skips that work (one causal log less per write); its unfinished\n"
      "write may linearize late — atomicity holds between crashes and may only\n"
      "be transiently broken around the writer's recovery.\n");
  return 0;
}
