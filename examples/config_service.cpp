// A fault-tolerant cluster-configuration service: one operator process
// publishes versioned configuration snapshots into a replicated register
// (persistent-atomic emulation — operators must never observe their own
// updates un-happening, even across crashes); worker processes poll it.
//
// Demonstrates the persistent emulation's defining feature end to end: the
// operator crashes in the middle of publishing, recovers, and the publish
// is already finished — version numbers observed by workers never regress.
//
//   $ ./build/examples/config_service
#include <cstdio>
#include <string>

#include "common/codec.h"
#include "core/cluster.h"
#include "history/atomicity.h"
#include "proto/policy.h"

namespace {

using namespace remus;

struct config_snapshot {
  std::uint32_t version = 0;
  std::string payload;
};

value encode_config(const config_snapshot& c) {
  byte_writer w;
  w.put_u32(c.version);
  w.put_string(c.payload);
  return value{std::move(w).take()};
}

config_snapshot decode_config(const value& v) {
  if (v.is_initial()) return {};
  byte_reader r(v.data);
  config_snapshot c;
  c.version = r.get_u32();
  c.payload = r.get_string();
  return c;
}

}  // namespace

int main() {
  core::cluster_config cfg;
  cfg.n = 5;
  cfg.policy = proto::persistent_policy();
  core::cluster memory(cfg);
  const process_id operator_p{0};

  auto publish = [&](std::uint32_t version, const std::string& payload) {
    memory.write(operator_p, encode_config({version, payload}));
    std::printf("operator published v%u (\"%s\")\n", version, payload.c_str());
  };
  auto poll = [&](std::uint32_t worker) {
    const auto c = decode_config(memory.read(process_id{worker}));
    std::printf("worker p%u sees v%u (\"%s\")\n", worker, c.version, c.payload.c_str());
    return c.version;
  };

  publish(1, "replicas=3");
  poll(2);
  publish(2, "replicas=5");
  const auto seen_before = poll(3);

  // The operator crashes while publishing v3: the update round is blocked,
  // so the value reaches nobody before the crash...
  memory.network().set_filter([](const sim::packet_info& pi) {
    sim::filter_verdict v;
    if (pi.kind == static_cast<std::uint8_t>(proto::msg_kind::write) &&
        pi.from == process_id{0}) {
      v.drop = true;
    }
    return v;
  });
  memory.submit_write(operator_p, encode_config({3, "replicas=7"}), memory.now());
  memory.submit_crash(operator_p, memory.now() + 2_ms);
  memory.run_for(3_ms);
  memory.network().clear_filter();
  std::printf("operator crashed while publishing v3\n");

  // ...yet after recovery, the persistent emulation finishes the publish
  // before the operator can do anything else (Fig. 4 Recover).
  memory.submit_recover(operator_p, memory.now());
  memory.run_until_idle();
  std::printf("operator recovered\n");
  const auto seen_after = poll(4);

  std::printf("version regression? %s (before crash max v%u, after v%u)\n",
              seen_after >= seen_before ? "no" : "YES", seen_before, seen_after);

  const auto verdict = history::check_persistent_atomicity(memory.events());
  std::printf("history persistent-atomic: %s\n", verdict.ok ? "yes" : "NO");
  if (!verdict.ok) std::printf("%s\n", verdict.explanation.c_str());
  return (verdict.ok && seen_after >= seen_before) ? 0 : 1;
}
