# Empty dependencies file for tag_order_test.
# This may be replaced when dependencies are built.
