file(REMOVE_RECURSE
  "CMakeFiles/tag_order_test.dir/tests/tag_order_test.cpp.o"
  "CMakeFiles/tag_order_test.dir/tests/tag_order_test.cpp.o.d"
  "tag_order_test"
  "tag_order_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tag_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
