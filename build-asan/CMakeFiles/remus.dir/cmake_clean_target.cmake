file(REMOVE_RECURSE
  "libremus.a"
)
