# Empty dependencies file for remus.
# This may be replaced when dependencies are built.
