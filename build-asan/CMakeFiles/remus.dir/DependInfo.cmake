
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/codec.cpp" "CMakeFiles/remus.dir/src/common/codec.cpp.o" "gcc" "CMakeFiles/remus.dir/src/common/codec.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "CMakeFiles/remus.dir/src/common/rng.cpp.o" "gcc" "CMakeFiles/remus.dir/src/common/rng.cpp.o.d"
  "/root/repo/src/common/timestamp.cpp" "CMakeFiles/remus.dir/src/common/timestamp.cpp.o" "gcc" "CMakeFiles/remus.dir/src/common/timestamp.cpp.o.d"
  "/root/repo/src/common/value.cpp" "CMakeFiles/remus.dir/src/common/value.cpp.o" "gcc" "CMakeFiles/remus.dir/src/common/value.cpp.o.d"
  "/root/repo/src/core/cluster.cpp" "CMakeFiles/remus.dir/src/core/cluster.cpp.o" "gcc" "CMakeFiles/remus.dir/src/core/cluster.cpp.o.d"
  "/root/repo/src/history/atomicity.cpp" "CMakeFiles/remus.dir/src/history/atomicity.cpp.o" "gcc" "CMakeFiles/remus.dir/src/history/atomicity.cpp.o.d"
  "/root/repo/src/history/brute_force.cpp" "CMakeFiles/remus.dir/src/history/brute_force.cpp.o" "gcc" "CMakeFiles/remus.dir/src/history/brute_force.cpp.o.d"
  "/root/repo/src/history/event.cpp" "CMakeFiles/remus.dir/src/history/event.cpp.o" "gcc" "CMakeFiles/remus.dir/src/history/event.cpp.o.d"
  "/root/repo/src/history/keyed.cpp" "CMakeFiles/remus.dir/src/history/keyed.cpp.o" "gcc" "CMakeFiles/remus.dir/src/history/keyed.cpp.o.d"
  "/root/repo/src/history/operations.cpp" "CMakeFiles/remus.dir/src/history/operations.cpp.o" "gcc" "CMakeFiles/remus.dir/src/history/operations.cpp.o.d"
  "/root/repo/src/history/recorder.cpp" "CMakeFiles/remus.dir/src/history/recorder.cpp.o" "gcc" "CMakeFiles/remus.dir/src/history/recorder.cpp.o.d"
  "/root/repo/src/history/tag_order.cpp" "CMakeFiles/remus.dir/src/history/tag_order.cpp.o" "gcc" "CMakeFiles/remus.dir/src/history/tag_order.cpp.o.d"
  "/root/repo/src/history/wellformed.cpp" "CMakeFiles/remus.dir/src/history/wellformed.cpp.o" "gcc" "CMakeFiles/remus.dir/src/history/wellformed.cpp.o.d"
  "/root/repo/src/metrics/op_metrics.cpp" "CMakeFiles/remus.dir/src/metrics/op_metrics.cpp.o" "gcc" "CMakeFiles/remus.dir/src/metrics/op_metrics.cpp.o.d"
  "/root/repo/src/metrics/stats.cpp" "CMakeFiles/remus.dir/src/metrics/stats.cpp.o" "gcc" "CMakeFiles/remus.dir/src/metrics/stats.cpp.o.d"
  "/root/repo/src/metrics/table.cpp" "CMakeFiles/remus.dir/src/metrics/table.cpp.o" "gcc" "CMakeFiles/remus.dir/src/metrics/table.cpp.o.d"
  "/root/repo/src/proto/message.cpp" "CMakeFiles/remus.dir/src/proto/message.cpp.o" "gcc" "CMakeFiles/remus.dir/src/proto/message.cpp.o.d"
  "/root/repo/src/proto/policy.cpp" "CMakeFiles/remus.dir/src/proto/policy.cpp.o" "gcc" "CMakeFiles/remus.dir/src/proto/policy.cpp.o.d"
  "/root/repo/src/proto/quorum_core.cpp" "CMakeFiles/remus.dir/src/proto/quorum_core.cpp.o" "gcc" "CMakeFiles/remus.dir/src/proto/quorum_core.cpp.o.d"
  "/root/repo/src/proto/records.cpp" "CMakeFiles/remus.dir/src/proto/records.cpp.o" "gcc" "CMakeFiles/remus.dir/src/proto/records.cpp.o.d"
  "/root/repo/src/proto/shared_message.cpp" "CMakeFiles/remus.dir/src/proto/shared_message.cpp.o" "gcc" "CMakeFiles/remus.dir/src/proto/shared_message.cpp.o.d"
  "/root/repo/src/runtime/node.cpp" "CMakeFiles/remus.dir/src/runtime/node.cpp.o" "gcc" "CMakeFiles/remus.dir/src/runtime/node.cpp.o.d"
  "/root/repo/src/runtime/service.cpp" "CMakeFiles/remus.dir/src/runtime/service.cpp.o" "gcc" "CMakeFiles/remus.dir/src/runtime/service.cpp.o.d"
  "/root/repo/src/runtime/transport.cpp" "CMakeFiles/remus.dir/src/runtime/transport.cpp.o" "gcc" "CMakeFiles/remus.dir/src/runtime/transport.cpp.o.d"
  "/root/repo/src/sim/disk_model.cpp" "CMakeFiles/remus.dir/src/sim/disk_model.cpp.o" "gcc" "CMakeFiles/remus.dir/src/sim/disk_model.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "CMakeFiles/remus.dir/src/sim/event_queue.cpp.o" "gcc" "CMakeFiles/remus.dir/src/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/fault_plan.cpp" "CMakeFiles/remus.dir/src/sim/fault_plan.cpp.o" "gcc" "CMakeFiles/remus.dir/src/sim/fault_plan.cpp.o.d"
  "/root/repo/src/sim/kv_workload.cpp" "CMakeFiles/remus.dir/src/sim/kv_workload.cpp.o" "gcc" "CMakeFiles/remus.dir/src/sim/kv_workload.cpp.o.d"
  "/root/repo/src/sim/network_model.cpp" "CMakeFiles/remus.dir/src/sim/network_model.cpp.o" "gcc" "CMakeFiles/remus.dir/src/sim/network_model.cpp.o.d"
  "/root/repo/src/storage/file_store.cpp" "CMakeFiles/remus.dir/src/storage/file_store.cpp.o" "gcc" "CMakeFiles/remus.dir/src/storage/file_store.cpp.o.d"
  "/root/repo/src/storage/memory_store.cpp" "CMakeFiles/remus.dir/src/storage/memory_store.cpp.o" "gcc" "CMakeFiles/remus.dir/src/storage/memory_store.cpp.o.d"
  "/root/repo/src/storage/stable_store.cpp" "CMakeFiles/remus.dir/src/storage/stable_store.cpp.o" "gcc" "CMakeFiles/remus.dir/src/storage/stable_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
