file(REMOVE_RECURSE
  "CMakeFiles/recorder_test.dir/tests/recorder_test.cpp.o"
  "CMakeFiles/recorder_test.dir/tests/recorder_test.cpp.o.d"
  "recorder_test"
  "recorder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recorder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
