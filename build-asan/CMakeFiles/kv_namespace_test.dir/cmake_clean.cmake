file(REMOVE_RECURSE
  "CMakeFiles/kv_namespace_test.dir/tests/kv_namespace_test.cpp.o"
  "CMakeFiles/kv_namespace_test.dir/tests/kv_namespace_test.cpp.o.d"
  "kv_namespace_test"
  "kv_namespace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_namespace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
