# Empty dependencies file for kv_namespace_test.
# This may be replaced when dependencies are built.
