// In-process datagram transport for the threaded runtime.
//
// Models the paper's UDP + IP-multicast setup (section V-A): unreliable,
// unordered, connectionless. Messages cross the wire format (encode/decode)
// so the codec is exercised; a scheduler thread applies configurable delay
// and jitter; drops and duplicates are coin flips. A node that is not
// registered (crashed) silently loses its traffic, like a dead UDP socket.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"
#include "proto/message.h"

namespace remus::runtime {

struct transport_options {
  /// Fixed one-way delay plus uniform jitter, in nanoseconds of wall time.
  time_ns base_delay = 0;
  time_ns jitter = 0;
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
};

class transport {
 public:
  using handler = std::function<void(const proto::message&)>;

  explicit transport(transport_options opt = {}, std::uint64_t seed = 1);
  ~transport();

  transport(const transport&) = delete;
  transport& operator=(const transport&) = delete;

  /// Attach a receiver; messages are dispatched on the scheduler thread.
  void attach(process_id p, handler h);
  /// Detach (crash): subsequent traffic to p is dropped.
  void detach(process_id p);

  void send(process_id to, const proto::message& m);
  void broadcast(std::uint32_t n, const proto::message& m);

  [[nodiscard]] std::uint64_t datagrams_sent() const;
  [[nodiscard]] std::uint64_t datagrams_dropped() const;

 private:
  struct packet {
    std::chrono::steady_clock::time_point due;
    std::uint64_t seq;
    process_id to;
    bytes wire;

    friend bool operator>(const packet& a, const packet& b) {
      if (a.due != b.due) return a.due > b.due;
      return a.seq > b.seq;
    }
  };

  void enqueue_copy(process_id to, const bytes& wire);
  void pump();

  transport_options opt_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint32_t, handler> handlers_;
  std::priority_queue<packet, std::vector<packet>, std::greater<>> queue_;
  rng rng_;
  std::uint64_t seq_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  bool stop_ = false;
  std::thread pump_thread_;
};

}  // namespace remus::runtime
