// Transport interface for the threaded runtime, plus the in-process datagram
// implementation.
//
// `transport` is the runtime half of the protocol/execution split (see
// sim/driver.h for the simulator half): runtime::node drives a quorum_core
// purely off delivered inputs, and everything wire-shaped hides behind this
// interface. Two implementations exist — `datagram_transport` below (an
// in-process model of the paper's UDP + IP-multicast setup, with a scheduler
// thread applying delay/jitter/drop/duplication) and `tcp_transport`
// (tcp_transport.h: real sockets over loopback, one process per replica).
// Both cross proto::encode/decode so the codec is exercised either way.
//
// Delivery contract shared by every implementation:
//   * messages may be dropped, duplicated, or reordered (UDP spirit — the
//     protocol's retransmission machinery owns reliability);
//   * handlers run on a transport-owned thread, never on the sender's;
//   * a process that is not attached (crashed) silently loses its traffic,
//     like a dead socket;
//   * send/broadcast never block on delivery and are safe from any thread.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"
#include "proto/message.h"

namespace remus::runtime {

class transport {
 public:
  using handler = std::function<void(const proto::message&)>;

  virtual ~transport() = default;

  /// Attach a receiver; messages are dispatched on a transport-owned thread.
  virtual void attach(process_id p, handler h) = 0;
  /// Detach (crash): subsequent traffic to p is dropped.
  virtual void detach(process_id p) = 0;

  virtual void send(process_id to, const proto::message& m) = 0;
  virtual void broadcast(std::uint32_t n, const proto::message& m) = 0;

  [[nodiscard]] virtual std::uint64_t datagrams_sent() const = 0;
  [[nodiscard]] virtual std::uint64_t datagrams_dropped() const = 0;
};

struct transport_options {
  /// Fixed one-way delay plus uniform jitter, in nanoseconds of wall time.
  time_ns base_delay = 0;
  time_ns jitter = 0;
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
};

/// In-process datagram transport: unreliable, unordered, connectionless.
/// A scheduler thread applies configurable delay and jitter; drops and
/// duplicates are coin flips on a seeded rng.
class datagram_transport final : public transport {
 public:
  explicit datagram_transport(transport_options opt = {}, std::uint64_t seed = 1);
  ~datagram_transport() override;

  datagram_transport(const datagram_transport&) = delete;
  datagram_transport& operator=(const datagram_transport&) = delete;

  void attach(process_id p, handler h) override;
  void detach(process_id p) override;

  void send(process_id to, const proto::message& m) override;
  void broadcast(std::uint32_t n, const proto::message& m) override;

  [[nodiscard]] std::uint64_t datagrams_sent() const override;
  [[nodiscard]] std::uint64_t datagrams_dropped() const override;

 private:
  struct packet {
    std::chrono::steady_clock::time_point due;
    std::uint64_t seq;
    process_id to;
    bytes wire;

    friend bool operator>(const packet& a, const packet& b) {
      if (a.due != b.due) return a.due > b.due;
      return a.seq > b.seq;
    }
  };

  void enqueue_copy(process_id to, const bytes& wire);
  void pump();

  transport_options opt_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint32_t, handler> handlers_;
  std::priority_queue<packet, std::vector<packet>, std::greater<>> queue_;
  rng rng_;
  std::uint64_t seq_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  bool stop_ = false;
  std::thread pump_thread_;
};

}  // namespace remus::runtime
