#include "runtime/node.h"

#include <chrono>

#include "common/error.h"

namespace remus::runtime {
namespace {

std::chrono::nanoseconds ns(time_ns t) { return std::chrono::nanoseconds(t); }

time_ns wall_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

node::node(proto::protocol_policy pol, process_id self, std::uint32_t n,
           storage::stable_store& store, transport& net, history::recorder& rec,
           node_options opt, std::uint64_t seed)
    : self_(self), n_(n), net_(net), recorder_(rec), opt_(opt),
      rng_(seed ^ (0x6e6f6465ULL + self.index)) {
  core_ = std::make_unique<proto::quorum_core>(std::move(pol), self_, n_, store,
                                               rng_.next_u64());
}

node::~node() {
  if (attached_) net_.detach(self_);
}

void node::start() {
  std::unique_lock lk(mu_);
  proto::outputs out;
  core_->start(out);
  pump(lk, out);
  net_.attach(self_, [this](const proto::message& m) { on_datagram(m); });
  attached_ = true;
}

bool node::is_up() const {
  std::lock_guard lk(mu_);
  return core_->is_up();
}

tag node::replica_tag() const {
  std::lock_guard lk(mu_);
  return core_->replica_tag();
}

void node::on_datagram(const proto::message& m) {
  std::unique_lock lk(mu_);
  if (!core_->is_up()) return;
  proto::outputs out;
  core_->on_message(m, out);
  pump(lk, out);
}

void node::pump(std::unique_lock<std::mutex>& lk, proto::outputs& out) {
  // Sends first (transport has its own locking; its pump thread never holds
  // our mutex while dispatching, so this cannot deadlock).
  for (const proto::broadcast_request& b : out.broadcasts) net_.broadcast(n_, b.msg);
  for (const proto::send_request& s : out.sends) net_.send(s.to, s.msg);
  for (const proto::timer_request& t : out.timers) {
    armed_timer_ = t.token;
    armed_delay_ = t.delay;
  }
  if (out.completion) {
    last_outcome_ = *out.completion;
    cv_.notify_all();
  }
  if (out.recovery_complete) {
    recovery_done_ = true;
    cv_.notify_all();
  }

  // Synchronous stores: the executing thread blocks on the disk while other
  // threads keep serving (the paper's two-thread structure). The store runs
  // outside the core mutex; completion feeds back in afterwards.
  remus::recycling_vector<proto::log_request> logs = std::move(out.logs);
  out.logs.clear();
  for (proto::log_request& lr : logs) {
    auto& store = core_->stable_storage();
    const std::uint64_t epoch_at_issue = core_->current_epoch();
    lk.unlock();
    store.store(lr.key, lr.record);
    lk.lock();
    // If the process crashed (and possibly recovered) while we were writing,
    // the completion belongs to a dead incarnation: drop it.
    if (!core_->is_up() || core_->current_epoch() != epoch_at_issue) continue;
    proto::outputs next;
    core_->on_log_done(lr.token, next);
    pump(lk, next);
  }
}

void node::await_completion(std::unique_lock<std::mutex>& lk, std::uint64_t op_seq) {
  const time_ns start = wall_now();
  const std::uint64_t epoch = core_->current_epoch();
  while (true) {
    if (!core_->is_up() || core_->current_epoch() != epoch) {
      throw operation_aborted("node: process crashed during the operation");
    }
    if (last_outcome_ && last_outcome_->op_seq == op_seq) return;
    if (opt_.op_timeout > 0 && wall_now() - start > opt_.op_timeout) {
      throw driver_error("node: operation timed out (majority unreachable?)");
    }
    const time_ns delay = armed_delay_ > 0 ? armed_delay_ : opt_.retransmit_check;
    if (cv_.wait_for(lk, ns(delay)) == std::cv_status::timeout) {
      if (!core_->is_up()) continue;
      proto::outputs out;
      core_->on_timer(armed_timer_, out);  // stale tokens are ignored
      pump(lk, out);
    }
  }
}

value node::read(register_id reg) {
  std::unique_lock lk(mu_);
  if (!core_->ready() || !core_->idle()) {
    throw precondition_error("node: read() while not ready/idle");
  }
  recorder_.invoke_read(self_, reg, wall_now());
  proto::outputs out;
  core_->invoke_read(reg, out);
  const std::uint64_t seq = core_->current_op_seq();
  pump(lk, out);
  await_completion(lk, seq);
  const value result = last_outcome_->result;
  last_outcome_.reset();
  recorder_.reply_read(self_, reg, result, wall_now());
  return result;
}

void node::write(register_id reg, const value& v) {
  std::unique_lock lk(mu_);
  if (!core_->ready() || !core_->idle()) {
    throw precondition_error("node: write() while not ready/idle");
  }
  recorder_.invoke_write(self_, reg, v, wall_now());
  proto::outputs out;
  core_->invoke_write(reg, v, out);
  const std::uint64_t seq = core_->current_op_seq();
  pump(lk, out);
  await_completion(lk, seq);
  last_outcome_.reset();
  recorder_.reply_write(self_, reg, wall_now());
}

void node::crash() {
  std::unique_lock lk(mu_);
  if (!core_->is_up()) return;
  if (attached_) {
    net_.detach(self_);
    attached_ = false;
  }
  core_->crash();
  recorder_.crash(self_, wall_now());
  cv_.notify_all();  // wake any waiter; it observes the crash and aborts
}

void node::recover() {
  std::unique_lock lk(mu_);
  if (core_->is_up()) throw precondition_error("node: recover() while up");
  recorder_.recover(self_, wall_now());
  recovery_done_ = false;
  net_.attach(self_, [this](const proto::message& m) { on_datagram(m); });
  attached_ = true;
  proto::outputs out;
  core_->recover(rng_.next_u64(), out);
  pump(lk, out);

  const time_ns start = wall_now();
  while (!recovery_done_) {
    if (opt_.op_timeout > 0 && wall_now() - start > opt_.op_timeout) {
      throw driver_error("node: recovery timed out (majority unreachable?)");
    }
    const time_ns delay = armed_delay_ > 0 ? armed_delay_ : opt_.retransmit_check;
    if (cv_.wait_for(lk, ns(delay)) == std::cv_status::timeout) {
      proto::outputs out2;
      core_->on_timer(armed_timer_, out2);
      pump(lk, out2);
    }
  }
}

}  // namespace remus::runtime
