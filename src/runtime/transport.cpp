#include "runtime/transport.h"

namespace remus::runtime {

datagram_transport::datagram_transport(transport_options opt, std::uint64_t seed)
    : opt_(opt), rng_(seed ^ 0x7472616e73ULL) {
  pump_thread_ = std::thread([this] { pump(); });
}

datagram_transport::~datagram_transport() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  pump_thread_.join();
}

void datagram_transport::attach(process_id p, handler h) {
  std::lock_guard lk(mu_);
  handlers_[p.index] = std::move(h);
}

void datagram_transport::detach(process_id p) {
  std::lock_guard lk(mu_);
  handlers_.erase(p.index);
}

void datagram_transport::enqueue_copy(process_id to, const bytes& wire) {
  // Caller holds mu_.
  ++sent_;
  if (opt_.drop_probability > 0 && rng_.chance(opt_.drop_probability)) {
    ++dropped_;
    return;
  }
  auto due = std::chrono::steady_clock::now();
  time_ns extra = opt_.base_delay;
  if (opt_.jitter > 0) {
    extra += static_cast<time_ns>(rng_.next_below(static_cast<std::uint64_t>(opt_.jitter)));
  }
  due += std::chrono::nanoseconds(extra);
  queue_.push(packet{due, seq_++, to, wire});
}

void datagram_transport::send(process_id to, const proto::message& m) {
  const bytes wire = proto::encode(m);
  {
    std::lock_guard lk(mu_);
    enqueue_copy(to, wire);
    if (opt_.duplicate_probability > 0 && rng_.chance(opt_.duplicate_probability)) {
      enqueue_copy(to, wire);
    }
  }
  cv_.notify_all();
}

void datagram_transport::broadcast(std::uint32_t n, const proto::message& m) {
  const bytes wire = proto::encode(m);
  {
    std::lock_guard lk(mu_);
    for (std::uint32_t i = 0; i < n; ++i) {
      enqueue_copy(process_id{i}, wire);
      if (opt_.duplicate_probability > 0 && rng_.chance(opt_.duplicate_probability)) {
        enqueue_copy(process_id{i}, wire);
      }
    }
  }
  cv_.notify_all();
}

std::uint64_t datagram_transport::datagrams_sent() const {
  std::lock_guard lk(mu_);
  return sent_;
}

std::uint64_t datagram_transport::datagrams_dropped() const {
  std::lock_guard lk(mu_);
  return dropped_;
}

void datagram_transport::pump() {
  std::unique_lock lk(mu_);
  while (true) {
    if (stop_) return;
    if (queue_.empty()) {
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      continue;
    }
    const auto due = queue_.top().due;
    const auto now = std::chrono::steady_clock::now();
    if (due > now) {
      cv_.wait_until(lk, due);
      continue;
    }
    packet pkt = queue_.top();
    queue_.pop();
    const auto it = handlers_.find(pkt.to.index);
    if (it == handlers_.end()) {
      ++dropped_;  // dead socket
      continue;
    }
    handler h = it->second;  // copy so the handler can detach safely
    lk.unlock();
    try {
      h(proto::decode_message(pkt.wire));
    } catch (...) {
      // A malformed or stale datagram must not kill the pump (UDP spirit).
    }
    lk.lock();
  }
}

}  // namespace remus::runtime
