// Real-socket transport: the emulation's first steps off the simulator and
// onto an actual network stack.
//
// One tcp_transport instance serves one process of an n-process group.
// Process i listens on 127.0.0.1:(base_port + i); sends lazily open a
// non-blocking connection to the peer's port. Frames are length-prefixed
// proto::encode images ([u32 LE length][payload]), so the same codec that
// crosses the simulated wire crosses the kernel's.
//
// Datagram semantics over a stream: the quorum protocol assumes fair-lossy
// messaging and owns reliability (retransmission, epoch nonces), so this
// transport deliberately keeps UDP-shaped delivery guarantees — a frame
// either arrives whole or not at all, and is dropped without notice when
//   * the peer is not listening yet / anymore (connect fails, connection
//     resets — everything buffered on that connection goes with it),
//   * the peer's outbound buffer is full (bounded per-peer pending bytes),
//   * the receiving process has no handler attached (crashed node).
// Reconnection is automatic with a short backoff; the protocol's
// retransmission machinery papers over every loss, exactly as it does over
// the simulator's coin-flip drops.
//
// Threading: one epoll thread per transport owns every socket. send() only
// appends to a per-peer buffer under a mutex and wakes the epoll thread via
// eventfd; handlers run on the epoll thread (the `transport` contract).
// Self-sends take the same path — queued, woken, delivered asynchronously —
// so delivery order to the local handler never depends on who sent.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/transport.h"

namespace remus::runtime {

struct tcp_transport_options {
  /// Group size: peers are processes 0 .. n-1.
  std::uint32_t n = 3;
  /// Process i listens on base_port + i (loopback only). Must be nonzero.
  std::uint16_t base_port = 0;
  /// Which process this instance is.
  std::uint32_t self = 0;
  /// Per-peer outbound buffer cap; whole frames are dropped beyond it.
  std::size_t max_pending_bytes = 1u << 20;
  /// Frames larger than this on the inbound side indicate a desynced or
  /// hostile stream; the connection is dropped.
  std::uint32_t max_frame_bytes = 1u << 24;
};

class tcp_transport final : public transport {
 public:
  explicit tcp_transport(tcp_transport_options opt);
  ~tcp_transport() override;

  tcp_transport(const tcp_transport&) = delete;
  tcp_transport& operator=(const tcp_transport&) = delete;

  void attach(process_id p, handler h) override;
  void detach(process_id p) override;

  void send(process_id to, const proto::message& m) override;
  void broadcast(std::uint32_t n, const proto::message& m) override;

  [[nodiscard]] std::uint64_t datagrams_sent() const override;
  [[nodiscard]] std::uint64_t datagrams_dropped() const override;

 private:
  /// Outbound leg to one peer. All fields owned by the epoll thread except
  /// `pending`, which send() appends to under mu_.
  struct peer_state {
    int fd = -1;
    bool connecting = false;
    bytes pending;  // queued frames, possibly partially written
    std::uint32_t pending_frames = 0;
    std::chrono::steady_clock::time_point next_attempt{};
  };
  /// Inbound connection (accepted); reassembles frames.
  struct conn_state {
    int fd = -1;
    bytes buf;
  };

  void loop();
  void ensure_connected(peer_state& ps, std::uint32_t idx);
  void flush_peer(peer_state& ps, std::uint32_t idx);
  void drop_peer_connection(peer_state& ps);
  void read_conn(int fd);
  void close_conn(int fd);
  void deliver_frame(const bytes& wire);
  void drain_self_queue();

  tcp_transport_options opt_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;

  mutable std::mutex mu_;
  std::map<std::uint32_t, handler> handlers_;
  std::vector<peer_state> peers_;      // indexed by process
  std::map<int, conn_state> conns_;    // accepted fds
  std::vector<bytes> self_queue_;      // frames to self, drained by the loop
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  bool stop_ = false;
  std::thread loop_thread_;
};

}  // namespace remus::runtime
