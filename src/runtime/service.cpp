#include "runtime/service.h"

#include "common/error.h"
#include "storage/memory_store.h"
#include "storage/wal_store.h"

namespace remus::runtime {

service::service(service_options opt) : opt_(std::move(opt)) {
  if (opt_.n == 0) throw driver_error("service: n must be >= 1");
  net_ = std::make_unique<datagram_transport>(opt_.net, opt_.seed);
  stores_.reserve(opt_.n);
  nodes_.reserve(opt_.n);
  for (std::uint32_t i = 0; i < opt_.n; ++i) {
    if (opt_.durable_dir) {
      // The WAL engine over fsync'd files: one append (and one fsync) per
      // store instead of a file per record, with snapshot compaction
      // bounding recovery replay and CRC-framed records containing a torn
      // tail to the in-flight suffix.
      stores_.push_back(std::make_unique<storage::wal_store>(
          std::make_unique<storage::file_media>(*opt_.durable_dir /
                                                std::to_string(i))));
    } else {
      stores_.push_back(std::make_unique<storage::memory_store>());
    }
    nodes_.push_back(std::make_unique<node>(opt_.policy, process_id{i}, opt_.n,
                                            *stores_.back(), *net_, recorder_, opt_.node,
                                            opt_.seed + i));
  }
  for (auto& nd : nodes_) nd->start();
}

service::~service() = default;

node& service::at(process_id p) {
  if (!p.valid() || p.index >= nodes_.size()) throw driver_error("service: bad process id");
  return *nodes_[p.index];
}

value service::read(process_id p, register_id reg) { return at(p).read(reg); }

void service::write(process_id p, register_id reg, const value& v) {
  at(p).write(reg, v);
}

void service::crash(process_id p) { at(p).crash(); }

void service::recover(process_id p) { at(p).recover(); }

}  // namespace remus::runtime
