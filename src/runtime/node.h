// One process of the emulation running on real threads.
//
// Mirrors the paper's per-workstation process (section V-A): a listener
// serving protocol messages (here: transport callbacks) and a client thread
// invoking operations (here: the caller of read()/write(), which blocks until
// the operation completes — the "repeat until majority acks" loop). Stores
// are synchronous on the executing thread, so a listener writing its log
// blocks exactly like the paper's implementation.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>

#include "history/recorder.h"
#include "proto/quorum_core.h"
#include "runtime/transport.h"
#include "storage/stable_store.h"

namespace remus::runtime {

struct node_options {
  /// Client retransmission period (bounded so lossy transports make progress).
  time_ns retransmit_check = 20 * 1000 * 1000;
  /// Give up on an operation after this long (0 = wait forever).
  time_ns op_timeout = 10ll * 1000 * 1000 * 1000;
};

class node {
 public:
  /// `store` must outlive the node. The recorder may be shared (thread-safe).
  node(proto::protocol_policy pol, process_id self, std::uint32_t n,
       storage::stable_store& store, transport& net, history::recorder& rec,
       node_options opt = {}, std::uint64_t seed = 1);
  ~node();

  node(const node&) = delete;
  node& operator=(const node&) = delete;

  /// Attach to the transport and (fresh install) write initial records.
  void start();

  /// Blocking operations; one caller at a time per node (the model's
  /// processes are sequential). The unkeyed forms target the default
  /// register (the paper's single register).
  [[nodiscard]] value read() { return read(default_register); }
  void write(const value& v) { write(default_register, v); }
  [[nodiscard]] value read(register_id reg);
  void write(register_id reg, const value& v);

  /// Crash: drop off the transport, lose volatile state.
  void crash();
  /// Recover: run the algorithm's recovery procedure; blocks until the
  /// process may invoke operations again.
  void recover();

  [[nodiscard]] bool is_up() const;
  [[nodiscard]] process_id id() const { return self_; }
  [[nodiscard]] tag replica_tag() const;

 private:
  void on_datagram(const proto::message& m);
  /// Executes one effect batch; performs stores synchronously and feeds the
  /// resulting on_log_done back into the core. Must be called with mu_ held;
  /// may unlock around network sends.
  void pump(std::unique_lock<std::mutex>& lk, proto::outputs& out);
  void await_completion(std::unique_lock<std::mutex>& lk, std::uint64_t op_seq);

  const process_id self_;
  const std::uint32_t n_;
  transport& net_;
  history::recorder& recorder_;
  node_options opt_;
  rng rng_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unique_ptr<proto::quorum_core> core_;
  std::optional<proto::op_outcome> last_outcome_;
  bool recovery_done_ = false;
  bool attached_ = false;
  std::uint64_t armed_timer_ = 0;  // latest timer token requested by the core
  time_ns armed_delay_ = 0;
};

}  // namespace remus::runtime
