#include "runtime/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"

namespace remus::runtime {

namespace {

// epoll_event.data.u64 encoding: what kind of fd fired, and which one.
enum class fd_kind : std::uint32_t { listener = 0, wake = 1, peer = 2, conn = 3 };

std::uint64_t tag(fd_kind k, std::uint32_t v) {
  return (static_cast<std::uint64_t>(k) << 32) | v;
}

constexpr auto reconnect_backoff = std::chrono::milliseconds(50);

void append_frame(bytes& out, const bytes& wire) {
  const auto len = static_cast<std::uint32_t>(wire.size());
  out.push_back(static_cast<std::uint8_t>(len & 0xff));
  out.push_back(static_cast<std::uint8_t>((len >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((len >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((len >> 24) & 0xff));
  out.insert(out.end(), wire.begin(), wire.end());
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

tcp_transport::tcp_transport(tcp_transport_options opt) : opt_(opt) {
  if (opt_.n == 0 || opt_.self >= opt_.n) {
    throw driver_error("tcp_transport: self must be < n");
  }
  if (opt_.base_port == 0) {
    throw driver_error("tcp_transport: base_port must be nonzero");
  }
  peers_.resize(opt_.n);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw driver_error("tcp_transport: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const sockaddr_in addr =
      loopback_addr(static_cast<std::uint16_t>(opt_.base_port + opt_.self));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 64) < 0) {
    const int e = errno;
    ::close(listen_fd_);
    throw driver_error(std::string("tcp_transport: bind/listen failed: ") +
                       std::strerror(e));
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    throw driver_error("tcp_transport: epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = tag(fd_kind::listener, 0);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = tag(fd_kind::wake, 0);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  loop_thread_ = std::thread([this] { loop(); });
}

tcp_transport::~tcp_transport() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  loop_thread_.join();
  for (peer_state& ps : peers_) {
    if (ps.fd >= 0) ::close(ps.fd);
  }
  for (auto& [fd, c] : conns_) ::close(fd);
  ::close(listen_fd_);
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void tcp_transport::attach(process_id p, handler h) {
  std::lock_guard lk(mu_);
  handlers_[p.index] = std::move(h);
}

void tcp_transport::detach(process_id p) {
  std::lock_guard lk(mu_);
  handlers_.erase(p.index);
}

void tcp_transport::send(process_id to, const proto::message& m) {
  const bytes wire = proto::encode(m);
  bool wake = false;
  {
    std::lock_guard lk(mu_);
    ++sent_;
    if (!to.valid() || to.index >= opt_.n) {
      ++dropped_;
      return;
    }
    if (to.index == opt_.self) {
      self_queue_.push_back(wire);
      wake = true;
    } else {
      peer_state& ps = peers_[to.index];
      if (ps.pending.size() + wire.size() + 4 > opt_.max_pending_bytes) {
        ++dropped_;  // backpressure: drop the whole frame, never block
        return;
      }
      append_frame(ps.pending, wire);
      ps.pending_frames += 1;
      wake = true;
    }
  }
  if (wake) {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void tcp_transport::broadcast(std::uint32_t n, const proto::message& m) {
  for (std::uint32_t i = 0; i < n; ++i) send(process_id{i}, m);
}

std::uint64_t tcp_transport::datagrams_sent() const {
  std::lock_guard lk(mu_);
  return sent_;
}

std::uint64_t tcp_transport::datagrams_dropped() const {
  std::lock_guard lk(mu_);
  return dropped_;
}

void tcp_transport::drop_peer_connection(peer_state& ps) {
  // Caller holds mu_. Everything buffered rides the dead connection down —
  // the stream's delivery-or-not is all-or-nothing per frame from the
  // protocol's point of view, and retransmission recovers.
  if (ps.fd >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, ps.fd, nullptr);
    ::close(ps.fd);
    ps.fd = -1;
  }
  ps.connecting = false;
  dropped_ += ps.pending_frames;
  ps.pending.clear();
  ps.pending_frames = 0;
  ps.next_attempt = std::chrono::steady_clock::now() + reconnect_backoff;
}

void tcp_transport::ensure_connected(peer_state& ps, std::uint32_t idx) {
  // Caller holds mu_; only the loop thread calls this.
  if (ps.fd >= 0 || ps.pending.empty()) return;
  if (std::chrono::steady_clock::now() < ps.next_attempt) return;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    drop_peer_connection(ps);
    return;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const sockaddr_in addr =
      loopback_addr(static_cast<std::uint16_t>(opt_.base_port + idx));
  const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc == 0 || errno == EINPROGRESS) {
    ps.fd = fd;
    ps.connecting = rc != 0;
    epoll_event ev{};
    ev.events = EPOLLOUT;
    ev.data.u64 = tag(fd_kind::peer, idx);
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    if (!ps.connecting) flush_peer(ps, idx);
  } else {
    ::close(fd);
    drop_peer_connection(ps);  // refused: peer not up yet; backoff applies
  }
}

void tcp_transport::flush_peer(peer_state& ps, std::uint32_t idx) {
  // Caller holds mu_; only the loop thread calls this.
  while (!ps.pending.empty()) {
    const ssize_t n = ::write(ps.fd, ps.pending.data(), ps.pending.size());
    if (n > 0) {
      ps.pending.erase(ps.pending.begin(), ps.pending.begin() + n);
      if (ps.pending.empty()) ps.pending_frames = 0;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    drop_peer_connection(ps);
    return;
  }
  epoll_event ev{};
  ev.events = ps.pending.empty() ? 0u : static_cast<std::uint32_t>(EPOLLOUT);
  ev.data.u64 = tag(fd_kind::peer, idx);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, ps.fd, &ev);
}

void tcp_transport::close_conn(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  std::lock_guard lk(mu_);
  conns_.erase(fd);
}

void tcp_transport::deliver_frame(const bytes& wire) {
  handler h;
  {
    std::lock_guard lk(mu_);
    const auto it = handlers_.find(opt_.self);
    if (it == handlers_.end()) {
      ++dropped_;  // crashed node: dead socket semantics
      return;
    }
    h = it->second;  // copy so the handler can detach safely
  }
  try {
    h(proto::decode_message(wire));
  } catch (...) {
    // Malformed frame: drop it, keep the stream (framing is intact).
  }
}

void tcp_transport::read_conn(int fd) {
  bytes* buf;
  {
    std::lock_guard lk(mu_);
    const auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    buf = &it->second.buf;
  }
  // Only the loop thread touches conn buffers after insertion, so reading
  // *buf without the lock is single-threaded.
  std::uint8_t chunk[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n > 0) {
      buf->insert(buf->end(), chunk, chunk + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close_conn(fd);  // EOF or error; any partial frame dies with the stream
    return;
  }
  std::size_t off = 0;
  while (buf->size() - off >= 4) {
    const std::uint32_t len = static_cast<std::uint32_t>((*buf)[off]) |
                              (static_cast<std::uint32_t>((*buf)[off + 1]) << 8) |
                              (static_cast<std::uint32_t>((*buf)[off + 2]) << 16) |
                              (static_cast<std::uint32_t>((*buf)[off + 3]) << 24);
    if (len > opt_.max_frame_bytes) {
      close_conn(fd);  // desynced or hostile stream
      return;
    }
    if (buf->size() - off - 4 < len) break;
    const bytes frame(buf->begin() + off + 4, buf->begin() + off + 4 + len);
    off += 4 + len;
    deliver_frame(frame);
  }
  if (off > 0) buf->erase(buf->begin(), buf->begin() + off);
}

void tcp_transport::drain_self_queue() {
  std::vector<bytes> frames;
  {
    std::lock_guard lk(mu_);
    frames.swap(self_queue_);
  }
  for (const bytes& wire : frames) deliver_frame(wire);
}

void tcp_transport::loop() {
  epoll_event events[64];
  for (;;) {
    // The timeout drives reconnect backoff expiry; nothing else is timed.
    const int nev = ::epoll_wait(epoll_fd_, events, 64, 20);
    {
      std::lock_guard lk(mu_);
      if (stop_) return;
    }
    for (int i = 0; i < nev; ++i) {
      const auto kind = static_cast<fd_kind>(events[i].data.u64 >> 32);
      const auto idx = static_cast<std::uint32_t>(events[i].data.u64);
      switch (kind) {
        case fd_kind::listener: {
          for (;;) {
            const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                                     SOCK_NONBLOCK | SOCK_CLOEXEC);
            if (fd < 0) break;
            {
              std::lock_guard lk(mu_);
              conns_[fd] = conn_state{fd, {}};
            }
            epoll_event ev{};
            ev.events = EPOLLIN;
            ev.data.u64 = tag(fd_kind::conn, static_cast<std::uint32_t>(fd));
            ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
          }
          break;
        }
        case fd_kind::wake: {
          std::uint64_t val;
          while (::read(wake_fd_, &val, sizeof(val)) > 0) {
          }
          break;
        }
        case fd_kind::peer: {
          std::lock_guard lk(mu_);
          peer_state& ps = peers_[idx];
          if (ps.fd < 0) break;  // dropped since the event was queued
          if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
            drop_peer_connection(ps);
            break;
          }
          if (ps.connecting) {
            int err = 0;
            socklen_t len = sizeof(err);
            ::getsockopt(ps.fd, SOL_SOCKET, SO_ERROR, &err, &len);
            if (err != 0) {
              drop_peer_connection(ps);
              break;
            }
            ps.connecting = false;
          }
          flush_peer(ps, idx);
          break;
        }
        case fd_kind::conn:
          read_conn(static_cast<int>(idx));
          break;
      }
    }
    drain_self_queue();
    // Kick pending outbound legs: fresh sends (woken above) and expired
    // reconnect backoffs alike.
    {
      std::lock_guard lk(mu_);
      for (std::uint32_t p = 0; p < opt_.n; ++p) {
        peer_state& ps = peers_[p];
        if (ps.fd < 0) {
          ensure_connected(ps, p);
        } else if (!ps.connecting && !ps.pending.empty()) {
          flush_peer(ps, p);
        }
      }
    }
  }
}

}  // namespace remus::runtime
