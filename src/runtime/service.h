// service: the threaded runtime's facade — an n-process shared-memory
// emulation on real threads, one call away. Owns the transport, the stable
// stores (in-memory by default, fsync'd files on request), the nodes and a
// shared history recorder.
#pragma once

#include <filesystem>
#include <memory>
#include <optional>
#include <vector>

#include "history/recorder.h"
#include "proto/policy.h"
#include "runtime/node.h"
#include "runtime/transport.h"
#include "storage/stable_store.h"

namespace remus::runtime {

struct service_options {
  std::uint32_t n = 3;
  proto::protocol_policy policy = proto::persistent_policy();
  transport_options net{};
  node_options node{};
  /// When set, stable storage is the WAL engine over fsync'd files under
  /// dir/<process-index>/ (the paper's synchronous logging discipline with
  /// a log-structured layout); otherwise in-memory stores.
  std::optional<std::filesystem::path> durable_dir;
  std::uint64_t seed = 1;
};

class service {
 public:
  explicit service(service_options opt);
  ~service();

  service(const service&) = delete;
  service& operator=(const service&) = delete;

  [[nodiscard]] value read(process_id p) { return read(p, default_register); }
  void write(process_id p, const value& v) { write(p, default_register, v); }
  [[nodiscard]] value read(process_id p, register_id reg);
  void write(process_id p, register_id reg, const value& v);
  void crash(process_id p);
  void recover(process_id p);

  [[nodiscard]] node& at(process_id p);
  [[nodiscard]] history::history_log events() const { return recorder_.events(); }
  [[nodiscard]] std::uint32_t size() const { return opt_.n; }
  [[nodiscard]] transport& net() { return *net_; }

 private:
  service_options opt_;
  std::unique_ptr<transport> net_;
  history::recorder recorder_;
  std::vector<std::unique_ptr<storage::stable_store>> stores_;
  std::vector<std::unique_ptr<node>> nodes_;
};

}  // namespace remus::runtime
