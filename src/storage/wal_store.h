// Log-structured stable store: append-only WAL + snapshot compaction.
//
// The production-shaped engine behind `stable_store`. Every mutation is
// one CRC32-framed append (storage/wal_format.h); the live state is an
// in-memory index rebuilt at recovery by replaying snapshot-then-log.
// Replay stops cleanly at the first torn or corrupt frame — the valid
// prefix is the recovered state, the tail is discarded, and a checksum-
// failing record is never surfaced.
//
// Compaction bounds replay: when the log outgrows the live state (by
// `compact_slack`, past a floor of `compact_min_bytes`), the live records
// are serialized into a snapshot, installed atomically, and the log is
// truncated. Crash between install and truncate is safe — replaying the
// old log over the new snapshot is idempotent (latest write wins and the
// snapshot already reflects the whole log).
//
// `store_and_obsolete` is the paper's "writing record obsolete" hook made
// cheap: the record frame and the obsolescence tombstones of finished
// predecessors go out as ONE append (one fsync on file media), so a
// writer's recovery replay stops growing with the number of registers it
// ever pre-logged.
//
// Media: `memory_media` (simulator — byte images that survive simulated
// crashes) and `file_media` (threaded runtime — a directory holding
// `snapshot` + `wal.log`, synchronous appends). Corruption tests reach
// the raw images through `media()` / `inject_tail_bytes`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/flat_hash.h"
#include "storage/stable_store.h"
#include "storage/wal_format.h"

namespace remus::storage {

/// Durable byte images under the WAL engine: one append-only log and one
/// atomically-replaced snapshot. Durability semantics live here; framing
/// and replay live in wal_store.
class wal_media {
 public:
  virtual ~wal_media() = default;

  /// Durably appends `data` to the log (one fsync on file media).
  virtual void append_log(std::span<const std::uint8_t> data) = 0;

  /// Atomically replaces the snapshot image (tmp + fsync + rename on file
  /// media). The old snapshot stays intact if this crashes partway.
  virtual void install_snapshot(const bytes& snapshot) = 0;

  /// Durably truncates the log to `size` bytes (0 after a snapshot; the
  /// valid prefix length when recovery discards a torn tail).
  virtual void truncate_log(std::size_t size) = 0;

  /// Reads both images back (recovery).
  virtual void load(bytes& snapshot, bytes& log) const = 0;

  /// Removes both images (fresh install, not crash recovery).
  virtual void wipe() = 0;
};

/// Simulator media: the byte images outlive the simulated process's
/// crashes, which is what "stable" means there. Public images so
/// corruption tests can mutate them directly between crash and reopen.
class memory_media final : public wal_media {
 public:
  void append_log(std::span<const std::uint8_t> data) override {
    log.insert(log.end(), data.begin(), data.end());
  }
  void install_snapshot(const bytes& s) override { snapshot = s; }
  void truncate_log(std::size_t size) override {
    if (size < log.size()) log.resize(size);
  }
  void load(bytes& s, bytes& l) const override {
    s = snapshot;
    l = log;
  }
  void wipe() override {
    snapshot.clear();
    log.clear();
  }

  bytes snapshot;
  bytes log;
};

/// File media for the threaded runtime: `dir/snapshot` + `dir/wal.log`,
/// appends fsynced before return (the paper's synchronous-file discipline,
/// section V-A). The constructor sweeps stray `*.tmp` left by a crash
/// mid-install.
class file_media final : public wal_media {
 public:
  explicit file_media(std::filesystem::path dir, bool fsync_enabled = true);
  ~file_media() override;

  void append_log(std::span<const std::uint8_t> data) override;
  void install_snapshot(const bytes& snapshot) override;
  void truncate_log(std::size_t size) override;
  void load(bytes& snapshot, bytes& log) const override;
  void wipe() override;

  [[nodiscard]] const std::filesystem::path& directory() const { return dir_; }

 private:
  void open_log();
  void sync_dir() const;

  std::filesystem::path dir_;
  bool fsync_enabled_;
  int log_fd_ = -1;
};

struct wal_store_config {
  /// Compact when log_bytes exceeds max(compact_min_bytes,
  /// compact_slack * live_bytes). The floor keeps tiny stores from
  /// snapshotting on every append.
  std::size_t compact_min_bytes = 64 * 1024;
  double compact_slack = 2.0;
};

/// What the last reopen() saw. `bytes_read` is the full recovery I/O
/// (snapshot + log images) — the bounded-replay tests assert it tracks
/// live state, not store_count().
struct wal_recovery_stats {
  std::size_t bytes_read = 0;
  std::size_t discarded = 0;        // invalid suffix bytes (snapshot + log)
  std::uint64_t frames_replayed = 0;
  wal_scan_stop snapshot_stop = wal_scan_stop::clean_end;
  wal_scan_stop log_stop = wal_scan_stop::clean_end;
};

class wal_store final : public stable_store {
 public:
  explicit wal_store(std::unique_ptr<wal_media> media, wal_store_config cfg = {});

  void store(record_key key, const bytes& record) override;
  void store_and_obsolete(record_key key, const bytes& record,
                          std::span<const record_key> obsolete) override;
  [[nodiscard]] std::optional<bytes> retrieve(record_key key) const override;
  void for_each(record_area area,
                const std::function<void(register_id, const bytes&)>& fn) const override;
  void erase(record_key key) override;
  void wipe() override;
  [[nodiscard]] std::uint64_t store_count() const override { return stores_; }

  /// Rebuilds the live index from the media (crash recovery): replays the
  /// snapshot, then the log, stopping at the first invalid frame; a torn
  /// log tail is truncated on the media so later appends extend the valid
  /// prefix. Never throws on corrupt media.
  void reopen();

  /// Crash injection: raw bytes appended to the log image without
  /// touching the live index — the torn suffix of an append the process
  /// died inside. Callers build (and optionally mangle) the frame with
  /// wal_format/corruption_injector, then reopen() replays around it.
  void inject_tail_bytes(std::span<const std::uint8_t> data);

  [[nodiscard]] std::size_t log_bytes() const { return log_bytes_; }
  [[nodiscard]] std::size_t snapshot_bytes() const { return snapshot_bytes_; }
  /// Bytes the live records would occupy as frames (what a snapshot
  /// would write).
  [[nodiscard]] std::size_t live_bytes() const { return live_bytes_; }
  [[nodiscard]] std::uint64_t compactions() const { return compactions_; }
  [[nodiscard]] const wal_recovery_stats& last_recovery() const {
    return recovery_;
  }

  [[nodiscard]] wal_media& media() { return *media_; }

 private:
  struct key_hash {
    std::size_t operator()(record_key k) const noexcept {
      return static_cast<std::size_t>(
          mix_u64((static_cast<std::uint64_t>(k.area) << 32) | k.reg));
    }
  };

  /// Applies one replayed or freshly-appended frame to the live index.
  void apply_record(record_key key, std::span<const std::uint8_t> payload);
  void apply_tombstone(record_key key);
  void maybe_compact();

  std::unique_ptr<wal_media> media_;
  wal_store_config cfg_;
  // Same shape as memory_store: insertion-ordered records (deterministic
  // for_each) + flat-hash index, O(1) store with buffer reuse.
  std::vector<std::pair<record_key, bytes>> records_;
  flat_hash_map<record_key, std::uint32_t, key_hash> index_;
  bytes frame_buf_;  // reused append scratch
  std::size_t log_bytes_ = 0;
  std::size_t snapshot_bytes_ = 0;
  std::size_t live_bytes_ = 0;
  std::uint64_t stores_ = 0;
  std::uint64_t compactions_ = 0;
  wal_recovery_stats recovery_;
};

}  // namespace remus::storage
