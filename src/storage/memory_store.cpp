#include "storage/memory_store.h"

namespace remus::storage {

void memory_store::store(std::string_view key, const bytes& record) {
  records_.insert_or_assign(std::string(key), record);
  ++stores_;
}

std::optional<bytes> memory_store::retrieve(std::string_view key) const {
  const auto it = records_.find(key);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

void memory_store::wipe() { records_.clear(); }

std::size_t memory_store::footprint() const {
  std::size_t total = 0;
  for (const auto& [k, v] : records_) total += k.size() + v.size();
  return total;
}

}  // namespace remus::storage
