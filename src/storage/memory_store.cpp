#include "storage/memory_store.h"

namespace remus::storage {

void memory_store::store(record_key key, const bytes& record) {
  ++stores_;
  // operator[] inserts 0 for a fresh key; slot 0 is disambiguated by an
  // explicit key compare (cheaper than a sentinel scheme on this path).
  std::uint32_t& slot = index_[key];
  if (slot < records_.size() && records_[slot].key == key && !records_[slot].dead) {
    records_[slot].record = record;  // copy-assign reuses the stored buffer
    return;
  }
  slot = static_cast<std::uint32_t>(records_.size());
  records_.push_back({key, record, false});
}

std::optional<bytes> memory_store::retrieve(record_key key) const {
  const std::uint32_t* slot = index_.find(key);
  if (slot == nullptr) return std::nullopt;
  return records_[*slot].record;
}

void memory_store::for_each(record_area area,
                            const std::function<void(register_id, const bytes&)>& fn) const {
  for (const auto& e : records_) {
    if (!e.dead && e.key.area == area) fn(e.key.reg, e.record);
  }
}

void memory_store::erase(record_key key) {
  const std::uint32_t* slot = index_.find(key);
  if (slot == nullptr) return;
  // Tombstone, not compaction: erase is on the lease-expiry hot path, and
  // shifting the record vector plus re-pointing every moved index slot made
  // it O(live records) per call. Dead entries are skipped by for_each (so
  // survivors keep enumerating in first-store order) and reclaimed in bulk
  // once they outnumber the living.
  records_[*slot].dead = true;
  records_[*slot].record.clear();
  ++dead_;
  index_.erase(key);
  if (dead_ > records_.size() / 2 && records_.size() >= 64) compact();
}

void memory_store::compact() {
  std::size_t w = 0;
  for (std::size_t r = 0; r < records_.size(); ++r) {
    if (records_[r].dead) continue;
    if (w != r) records_[w] = std::move(records_[r]);
    ++w;
  }
  records_.resize(w);
  dead_ = 0;
  index_.clear();
  for (std::uint32_t i = 0; i < records_.size(); ++i) {
    index_[records_[i].key] = i;
  }
}

void memory_store::wipe() {
  records_.clear();
  index_.clear();
  dead_ = 0;
}

std::size_t memory_store::footprint() const {
  std::size_t total = 0;
  for (const auto& e : records_) {
    if (!e.dead) total += sizeof(e.key) + e.record.size();
  }
  return total;
}

}  // namespace remus::storage
