#include "storage/memory_store.h"

namespace remus::storage {

void memory_store::store(std::string_view key, const bytes& record) {
  ++stores_;
  for (auto& [k, v] : records_) {
    if (k == key) {
      v = record;  // copy-assign reuses the stored buffer
      return;
    }
  }
  records_.emplace_back(std::string(key), record);
}

std::optional<bytes> memory_store::retrieve(std::string_view key) const {
  for (const auto& [k, v] : records_) {
    if (k == key) return v;
  }
  return std::nullopt;
}

void memory_store::wipe() { records_.clear(); }

std::size_t memory_store::footprint() const {
  std::size_t total = 0;
  for (const auto& [k, v] : records_) total += k.size() + v.size();
  return total;
}

}  // namespace remus::storage
