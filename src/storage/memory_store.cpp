#include "storage/memory_store.h"

namespace remus::storage {

void memory_store::store(record_key key, const bytes& record) {
  ++stores_;
  // operator[] inserts 0 for a fresh key; slot 0 is disambiguated by an
  // explicit key compare (cheaper than a sentinel scheme on this path).
  std::uint32_t& slot = index_[key];
  if (slot < records_.size() && records_[slot].first == key) {
    records_[slot].second = record;  // copy-assign reuses the stored buffer
    return;
  }
  slot = static_cast<std::uint32_t>(records_.size());
  records_.emplace_back(key, record);
}

std::optional<bytes> memory_store::retrieve(record_key key) const {
  const std::uint32_t* slot = index_.find(key);
  if (slot == nullptr) return std::nullopt;
  return records_[*slot].second;
}

void memory_store::for_each(record_area area,
                            const std::function<void(register_id, const bytes&)>& fn) const {
  for (const auto& [k, v] : records_) {
    if (k.area == area) fn(k.reg, v);
  }
}

void memory_store::erase(record_key key) {
  const std::uint32_t* slot = index_.find(key);
  if (slot == nullptr) return;
  // Cold path (rebalancing): compact the record vector in place so for_each
  // keeps enumerating the surviving records in first-store order, then
  // re-point every shifted entry's index slot.
  const std::uint32_t at = *slot;
  records_.erase(records_.begin() + at);
  index_.erase(key);
  for (std::uint32_t i = at; i < records_.size(); ++i) {
    index_[records_[i].first] = i;
  }
}

void memory_store::wipe() {
  records_.clear();
  index_.clear();
}

std::size_t memory_store::footprint() const {
  std::size_t total = 0;
  for (const auto& [k, v] : records_) total += sizeof(k) + v.size();
  return total;
}

}  // namespace remus::storage
