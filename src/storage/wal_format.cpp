#include "storage/wal_format.h"

#include <array>

namespace remus::storage {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> crc32_table = make_crc32_table();

void put_u32(bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint32_t>(in[at]) |
         (static_cast<std::uint32_t>(in[at + 1]) << 8) |
         (static_cast<std::uint32_t>(in[at + 2]) << 16) |
         (static_cast<std::uint32_t>(in[at + 3]) << 24);
}

bool valid_area(std::uint8_t a) {
  return a == static_cast<std::uint8_t>(record_area::writing) ||
         a == static_cast<std::uint8_t>(record_area::written) ||
         a == static_cast<std::uint8_t>(record_area::recovered) ||
         a == static_cast<std::uint8_t>(record_area::lease);
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t state,
                           std::span<const std::uint8_t> data) noexcept {
  for (std::uint8_t b : data) {
    state = crc32_table[(state ^ b) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32_of(std::span<const std::uint8_t> data) noexcept {
  return crc32_final(crc32_update(crc32_init, data));
}

void append_wal_frame(bytes& out, wal_frame_kind kind, record_key key,
                      std::span<const std::uint8_t> payload) {
  const std::size_t start = out.size();
  const std::size_t len = wal_frame_overhead - 4 + payload.size();
  out.reserve(start + len + 4);
  put_u32(out, static_cast<std::uint32_t>(len));
  out.push_back(static_cast<std::uint8_t>(kind));
  out.push_back(static_cast<std::uint8_t>(key.area));
  put_u32(out, key.reg);
  out.insert(out.end(), payload.begin(), payload.end());
  // CRC over everything appended so far (length field + body).
  const std::uint32_t crc =
      crc32_of(std::span<const std::uint8_t>(out.data() + start, out.size() - start));
  put_u32(out, crc);
}

std::string to_string(wal_scan_stop s) {
  switch (s) {
    case wal_scan_stop::clean_end: return "clean_end";
    case wal_scan_stop::torn_frame: return "torn_frame";
    case wal_scan_stop::bad_crc: return "bad_crc";
    case wal_scan_stop::bad_frame: return "bad_frame";
  }
  return "unknown";
}

wal_scan_result scan_wal(std::span<const std::uint8_t> log,
                         const std::function<void(const wal_frame&)>& fn) {
  wal_scan_result r;
  std::size_t at = 0;
  while (at < log.size()) {
    // A partial length field is itself a torn frame (crash during the very
    // first bytes of an append).
    if (log.size() - at < 4) {
      r.stop = wal_scan_stop::torn_frame;
      break;
    }
    const std::uint32_t len = get_u32(log, at);
    if (len < wal_frame_overhead - 4) {
      r.stop = wal_scan_stop::bad_frame;
      break;
    }
    if (len > log.size() - at - 4) {
      r.stop = wal_scan_stop::torn_frame;
      break;
    }
    const std::size_t frame_size = static_cast<std::size_t>(len) + 4;
    const std::uint32_t stored_crc = get_u32(log, at + frame_size - 4);
    const std::uint32_t computed =
        crc32_of(log.subspan(at, frame_size - 4));
    if (stored_crc != computed) {
      r.stop = wal_scan_stop::bad_crc;
      break;
    }
    const std::uint8_t kind = log[at + 4];
    const std::uint8_t area = log[at + 5];
    const bool kind_ok = kind == static_cast<std::uint8_t>(wal_frame_kind::record) ||
                         kind == static_cast<std::uint8_t>(wal_frame_kind::tombstone);
    const std::size_t payload_size = frame_size - wal_frame_overhead;
    const bool shape_ok =
        kind_ok && valid_area(area) &&
        (kind != static_cast<std::uint8_t>(wal_frame_kind::tombstone) ||
         payload_size == 0);
    if (!shape_ok) {
      r.stop = wal_scan_stop::bad_frame;
      break;
    }
    if (fn) {
      wal_frame f;
      f.kind = static_cast<wal_frame_kind>(kind);
      f.key = record_key{static_cast<record_area>(area), get_u32(log, at + 6)};
      f.payload = log.subspan(at + 10, payload_size);
      f.offset = at;
      f.size = frame_size;
      fn(f);
    }
    at += frame_size;
    r.frames += 1;
  }
  r.consumed = at;
  return r;
}

}  // namespace remus::storage
