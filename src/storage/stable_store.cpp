#include "storage/stable_store.h"

namespace remus::storage {

std::string to_string(record_area a) {
  switch (a) {
    case record_area::writing: return "writing";
    case record_area::written: return "written";
    case record_area::recovered: return "recovered";
    case record_area::lease: return "lease";
  }
  return "?";
}

std::string to_string(const record_key& k) {
  std::string out = to_string(k.area);
  if (k.reg != default_register) out += "-" + std::to_string(k.reg);
  return out;
}

}  // namespace remus::storage
