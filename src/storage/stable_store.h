// Stable storage: the paper's `store`/`retrieve` primitives (section II).
//
// A stable store survives crashes of its owning process; volatile state does
// not. Records are keyed byte strings ("writing", "written", "recovered" in
// Figures 4/5); storing a key overwrites the previous record, exactly like
// rewriting a fixed file synchronously.
//
// Durability timing is owned by the *driver*: in the simulation the disk
// model decides when an issued store becomes durable (and a crash discards
// in-flight stores — the conservative model); in the threaded runtime the
// file store is synchronous (fsync before return). Protocol cores therefore
// never call `store` directly — they emit log effects — but they do call
// `retrieve` during recovery.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "common/value.h"

namespace remus::storage {

class stable_store {
 public:
  virtual ~stable_store() = default;

  /// Durably store `record` under `key`, replacing any previous record.
  virtual void store(std::string_view key, const bytes& record) = 0;

  /// Fetch the last record stored under `key`, if any.
  [[nodiscard]] virtual std::optional<bytes> retrieve(std::string_view key) const = 0;

  /// Remove every record (fresh process install, not crash recovery).
  virtual void wipe() = 0;

  /// Number of store() calls served since construction (metrics).
  [[nodiscard]] virtual std::uint64_t store_count() const = 0;
};

}  // namespace remus::storage
