// Stable storage: the paper's `store`/`retrieve` primitives (section II).
//
// A stable store survives crashes of its owning process; volatile state does
// not. Records are keyed by (area, register): the paper's Figures 4/5 log
// three record areas for one register ("writing", "written", "recovered");
// the multi-register namespace keys the per-register areas by `register_id`
// so recovery can replay every register served by the process. Storing a key
// overwrites the previous record, exactly like rewriting a fixed file
// synchronously.
//
// Durability timing is owned by the *driver*: in the simulation the disk
// model decides when an issued store becomes durable (and a crash discards
// in-flight stores — the conservative model); in the threaded runtime the
// file store is synchronous (fsync before return). Protocol cores therefore
// never call `store` directly — they emit log effects — but they do call
// `retrieve` and `for_each` during recovery.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>

#include "common/ids.h"
#include "common/value.h"

namespace remus::storage {

/// Which of the protocol's record families a record belongs to.
enum class record_area : std::uint8_t {
  writing = 1,    // writer pre-log (persistent emulation)
  written = 2,    // replica's adopted (tag, value)
  recovered = 3,  // recovery counter (transient emulation; register-agnostic)
  lease = 4,      // grantor's read-lease record (holder bitmask per register)
};

[[nodiscard]] std::string to_string(record_area a);

/// A stable-storage record name: one area of one register. Trivially
/// copyable so drivers can carry it through event payloads without owning a
/// string (the pre-namespace code used static string keys for the same
/// reason). The recovery counter is per-process, not per-register; it uses
/// reg == default_register by convention.
struct record_key {
  record_area area = record_area::written;
  register_id reg = default_register;

  friend constexpr bool operator==(const record_key&, const record_key&) = default;

  /// Bytes the key occupies on the storage medium (its rendered name, e.g.
  /// "written-42"); drivers charge this against disk bandwidth. Constexpr so
  /// the hot path never materializes the string.
  [[nodiscard]] constexpr std::size_t encoded_size() const noexcept {
    const std::size_t base = area == record_area::recovered ? 9
                             : area == record_area::lease   ? 5
                                                            : 7;
    if (reg == default_register) return base;
    std::size_t digits = 1;
    for (register_id r = reg; r >= 10; r /= 10) ++digits;
    return base + 1 + digits;  // "<area>-<reg>"
  }
};

[[nodiscard]] std::string to_string(const record_key& k);

class stable_store {
 public:
  virtual ~stable_store() = default;

  /// Durably store `record` under `key`, replacing any previous record.
  virtual void store(record_key key, const bytes& record) = 0;

  /// Durably store `record` under `key` and, in the same durable step,
  /// mark every key in `obsolete` as erased. This is the paper's "writing
  /// record obsolete" compaction hook: a writer's next pre-log piggybacks
  /// the obsolescence of its finished predecessors, so recovery replay
  /// stops growing with the number of registers ever written. Entries
  /// equal to `key` are ignored (the fresh record wins). The default
  /// implementation decomposes into store() + erase() calls — correct but
  /// one durable round-trip each; log-structured backends override it to
  /// batch everything into one append.
  virtual void store_and_obsolete(record_key key, const bytes& record,
                                  std::span<const record_key> obsolete) {
    store(key, record);
    for (const record_key& k : obsolete) {
      if (k == key) continue;
      erase(k);
    }
  }

  /// Fetch the last record stored under `key`, if any.
  [[nodiscard]] virtual std::optional<bytes> retrieve(record_key key) const = 0;

  /// Enumerate every record of `area`, in a deterministic order (recovery
  /// replays all registers from here; determinism keeps simulated runs a
  /// pure function of the configuration).
  virtual void for_each(record_area area,
                        const std::function<void(register_id, const bytes&)>& fn) const = 0;

  /// Remove the record stored under `key`, if any. Used when a register's
  /// state *moves* to another quorum group (shard rebalancing): once the
  /// snapshot is durable at the destination, the source's records are
  /// erased so its recovery no longer replays — or resurrects — a register
  /// it stopped owning. No-op for absent keys.
  virtual void erase(record_key key) = 0;

  /// Remove every record (fresh process install, not crash recovery).
  virtual void wipe() = 0;

  /// Number of store() calls served since construction (metrics).
  [[nodiscard]] virtual std::uint64_t store_count() const = 0;
};

}  // namespace remus::storage
