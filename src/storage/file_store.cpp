#include "storage/file_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/error.h"

namespace remus::storage {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw error("file_store: " + what + ": " + std::strerror(errno));
}

void write_synced(const std::filesystem::path& p, const bytes& data, bool do_fsync) {
  const int fd = ::open(p.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("open " + p.string());
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      ::close(fd);
      fail("write " + p.string());
    }
    off += static_cast<std::size_t>(n);
  }
  if (do_fsync && ::fsync(fd) != 0) {
    ::close(fd);
    fail("fsync " + p.string());
  }
  ::close(fd);
}

void sync_dir(const std::filesystem::path& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort; some filesystems refuse dir fsync
  ::fsync(fd);
  ::close(fd);
}

/// Filename of a record: "<area>-<reg>", with the default register keeping
/// the bare pre-namespace names ("writing", "written", "recovered") so
/// single-register layouts stay compatible.
std::string file_name(record_key key) {
  if (key.reg == default_register) return to_string(key.area);
  return to_string(key.area) + "-" + std::to_string(key.reg);
}

/// Inverse of file_name(); nullopt for foreign files (temps, strays).
std::optional<record_key> parse_file_name(const std::string& name) {
  for (const record_area a :
       {record_area::writing, record_area::written, record_area::recovered}) {
    const std::string prefix = to_string(a);
    if (name == prefix) return record_key{a, default_register};
    if (name.size() > prefix.size() + 1 && name.compare(0, prefix.size(), prefix) == 0 &&
        name[prefix.size()] == '-') {
      register_id reg = 0;
      const char* first = name.data() + prefix.size() + 1;
      const char* last = name.data() + name.size();
      const auto [ptr, ec] = std::from_chars(first, last, reg);
      if (ec == std::errc{} && ptr == last) return record_key{a, reg};
    }
  }
  return std::nullopt;
}

}  // namespace

file_store::file_store(std::filesystem::path dir, bool fsync_enabled)
    : dir_(std::move(dir)), fsync_enabled_(fsync_enabled) {
  std::filesystem::create_directories(dir_);
  // Crash hygiene: a crash between tmp-write and rename leaves a ".tmp"
  // that parse_file_name ignores but that would otherwise accumulate
  // forever (and a later crash mid-rename could expose). Sweep them before
  // serving any reads.
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".tmp") {
      std::filesystem::remove(entry.path(), ec);
    }
  }
  if (fsync_enabled_) sync_dir(dir_);
}

std::filesystem::path file_store::path_of(record_key key) const {
  return dir_ / file_name(key);
}

void file_store::store(record_key key, const bytes& record) {
  const auto target = path_of(key);
  auto tmp = target;
  tmp += ".tmp";
  write_synced(tmp, record, fsync_enabled_);
  std::error_code ec;
  std::filesystem::rename(tmp, target, ec);
  if (ec) throw error("file_store: rename " + target.string() + ": " + ec.message());
  if (fsync_enabled_) sync_dir(dir_);
  ++stores_;
}

std::optional<bytes> file_store::retrieve(record_key key) const {
  const auto target = path_of(key);
  std::ifstream in(target, std::ios::binary);
  if (!in) return std::nullopt;
  bytes out((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return out;
}

void file_store::for_each(record_area area,
                          const std::function<void(register_id, const bytes&)>& fn) const {
  // Directory iteration order is filesystem-dependent; sort by register so
  // recovery replay order is deterministic across machines.
  std::vector<register_id> regs;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const auto key = parse_file_name(entry.path().filename().string());
    if (key && key->area == area) regs.push_back(key->reg);
  }
  std::sort(regs.begin(), regs.end());
  for (const register_id reg : regs) {
    if (const auto rec = retrieve(record_key{area, reg})) fn(reg, *rec);
  }
}

void file_store::erase(record_key key) {
  std::error_code ec;
  if (std::filesystem::remove(path_of(key), ec) && fsync_enabled_) sync_dir(dir_);
}

void file_store::wipe() {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    std::filesystem::remove_all(entry.path(), ec);
  }
  // A wipe is a durability promise too: the unlinks must survive a crash,
  // or a "fresh" process could resurrect pre-wipe records.
  if (fsync_enabled_) sync_dir(dir_);
}

}  // namespace remus::storage
