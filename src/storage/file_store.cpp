#include "storage/file_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "common/error.h"

namespace remus::storage {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw error("file_store: " + what + ": " + std::strerror(errno));
}

void write_synced(const std::filesystem::path& p, const bytes& data, bool do_fsync) {
  const int fd = ::open(p.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("open " + p.string());
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      ::close(fd);
      fail("write " + p.string());
    }
    off += static_cast<std::size_t>(n);
  }
  if (do_fsync && ::fsync(fd) != 0) {
    ::close(fd);
    fail("fsync " + p.string());
  }
  ::close(fd);
}

void sync_dir(const std::filesystem::path& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort; some filesystems refuse dir fsync
  ::fsync(fd);
  ::close(fd);
}

/// Keys are protocol-chosen identifiers ("writing", "written", ...); escape
/// anything that is not filename-safe.
std::string sanitize(std::string_view key) {
  std::string out;
  out.reserve(key.size());
  for (const char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (ok) {
      out += c;
    } else {
      out += '%';
      out += "0123456789abcdef"[(c >> 4) & 0xf];
      out += "0123456789abcdef"[c & 0xf];
    }
  }
  return out.empty() ? std::string("%empty") : out;
}

}  // namespace

file_store::file_store(std::filesystem::path dir, bool fsync_enabled)
    : dir_(std::move(dir)), fsync_enabled_(fsync_enabled) {
  std::filesystem::create_directories(dir_);
}

std::filesystem::path file_store::path_of(std::string_view key) const {
  return dir_ / sanitize(key);
}

void file_store::store(std::string_view key, const bytes& record) {
  const auto target = path_of(key);
  auto tmp = target;
  tmp += ".tmp";
  write_synced(tmp, record, fsync_enabled_);
  std::error_code ec;
  std::filesystem::rename(tmp, target, ec);
  if (ec) throw error("file_store: rename " + target.string() + ": " + ec.message());
  if (fsync_enabled_) sync_dir(dir_);
  ++stores_;
}

std::optional<bytes> file_store::retrieve(std::string_view key) const {
  const auto target = path_of(key);
  std::ifstream in(target, std::ios::binary);
  if (!in) return std::nullopt;
  bytes out((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return out;
}

void file_store::wipe() {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    std::filesystem::remove_all(entry.path(), ec);
  }
}

}  // namespace remus::storage
