#include "storage/corruption_injector.h"

#include <algorithm>

#include "storage/wal_format.h"

namespace remus::storage {

void flip_bit(bytes& log, std::size_t byte, unsigned bit) {
  if (byte >= log.size()) return;
  log[byte] ^= static_cast<std::uint8_t>(1u << (bit & 7u));
}

void truncate_log(bytes& log, std::size_t size) {
  if (size < log.size()) log.resize(size);
}

void tear_final_frame(bytes& log, std::size_t frame_size, std::size_t keep) {
  const std::size_t frame = std::min(frame_size, log.size());
  const std::size_t drop = frame - std::min(keep, frame);
  log.resize(log.size() - drop);
}

void append_garbage(bytes& log, rng& r, std::size_t count) {
  log.reserve(log.size() + count);
  for (std::size_t i = 0; i < count; ++i) {
    log.push_back(static_cast<std::uint8_t>(r.next_below(256)));
  }
}

void flip_random_bit_after(bytes& log, rng& r, std::size_t begin) {
  if (begin >= log.size()) return;
  const std::size_t byte = begin + r.next_below(log.size() - begin);
  flip_bit(log, byte, static_cast<unsigned>(r.next_below(8)));
}

std::vector<std::size_t> frame_offsets(std::span<const std::uint8_t> log) {
  std::vector<std::size_t> offsets;
  const wal_scan_result r =
      scan_wal(log, [&](const wal_frame& f) { offsets.push_back(f.offset); });
  offsets.push_back(r.consumed);
  return offsets;
}

}  // namespace remus::storage
