// File-backed stable store for the threaded runtime.
//
// Mirrors the paper's implementation (section V-A): "storage abstractions are
// implemented using files written to disk synchronously so that the operating
// system writes the data to disk immediately instead of buffering". Each
// record key maps to one file ("writing-<reg>", "written-<reg>",
// "recovered") in the store's directory; a store() writes a temp file,
// fsyncs it, and renames it over the old record (atomic on POSIX), then
// fsyncs the directory.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

#include "storage/stable_store.h"

namespace remus::storage {

class file_store final : public stable_store {
 public:
  /// Creates `dir` (and parents) if missing.
  explicit file_store(std::filesystem::path dir, bool fsync_enabled = true);

  void store(record_key key, const bytes& record) override;
  [[nodiscard]] std::optional<bytes> retrieve(record_key key) const override;
  void for_each(record_area area,
                const std::function<void(register_id, const bytes&)>& fn) const override;
  void erase(record_key key) override;
  void wipe() override;
  [[nodiscard]] std::uint64_t store_count() const override { return stores_; }

  [[nodiscard]] const std::filesystem::path& directory() const { return dir_; }

 private:
  [[nodiscard]] std::filesystem::path path_of(record_key key) const;

  std::filesystem::path dir_;
  bool fsync_enabled_;
  std::uint64_t stores_ = 0;
};

}  // namespace remus::storage
