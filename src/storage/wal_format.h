// WAL frame codec: the on-media format of the append-only log engine.
//
// Every durable mutation is one self-checking frame:
//
//   [u32 len][u8 kind][u8 area][u32 reg][payload...][u32 crc32]
//
// `len` counts every byte after the length field (kind through crc32
// inclusive), so a frame occupies len + 4 bytes and the minimum frame
// (empty payload) is wal_frame_overhead = 14 bytes. The CRC32 (IEEE
// reflected, the zlib/ethernet polynomial) covers the length field and
// the body — a frame whose length field was bitten by corruption fails
// its checksum instead of misleading the scanner into a bogus resync.
//
// Recovery scans the log front to back and stops at the first frame that
// is torn (extends past the end of the medium), fails its CRC, or carries
// an impossible header. Everything before the stop point is the valid
// prefix; everything after is discarded. A crash mid-append therefore
// loses at most the in-flight suffix — never an already-fsynced frame —
// which is exactly the conservative crash model the simulator's disk
// charges for.
//
// All integers are little-endian fixed-width, matching common/codec.h.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "common/value.h"
#include "storage/stable_store.h"

namespace remus::storage {

/// What a frame means to the replaying index.
enum class wal_frame_kind : std::uint8_t {
  record = 1,     // (key, payload) replaces any previous record for key
  tombstone = 2,  // key's record is obsolete; payload must be empty
};

/// Fixed bytes around the payload: len(4) + kind(1) + area(1) + reg(4) +
/// crc(4).
inline constexpr std::size_t wal_frame_overhead = 14;

/// Bytes of a full frame carrying `payload_size` payload bytes.
[[nodiscard]] constexpr std::size_t wal_frame_size(std::size_t payload_size) noexcept {
  return wal_frame_overhead + payload_size;
}

/// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320), the zlib `crc32`.
/// Seeded/finalized internally: crc32_of("123456789") == 0xCBF43926.
[[nodiscard]] std::uint32_t crc32_of(std::span<const std::uint8_t> data) noexcept;

/// Incremental form for split buffers; start from crc32_init and finish
/// with crc32_final.
inline constexpr std::uint32_t crc32_init = 0xFFFFFFFFu;
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t state,
                                         std::span<const std::uint8_t> data) noexcept;
[[nodiscard]] constexpr std::uint32_t crc32_final(std::uint32_t state) noexcept {
  return state ^ 0xFFFFFFFFu;
}

/// Appends one framed record to `out` (existing contents untouched).
void append_wal_frame(bytes& out, wal_frame_kind kind, record_key key,
                      std::span<const std::uint8_t> payload);

/// One decoded frame, viewing the scanned buffer (no payload copy).
struct wal_frame {
  wal_frame_kind kind = wal_frame_kind::record;
  record_key key{};
  std::span<const std::uint8_t> payload{};
  std::size_t offset = 0;  // byte offset of the frame's length field
  std::size_t size = 0;    // total frame bytes (len + 4)
};

/// Why a scan stopped where it did.
enum class wal_scan_stop : std::uint8_t {
  clean_end = 0,   // consumed the whole buffer, every frame intact
  torn_frame = 1,  // final frame extends past the end (crash mid-append)
  bad_crc = 2,     // checksum mismatch (bit rot or a torn header)
  bad_frame = 3,   // impossible header: undersized len, unknown kind/area,
                   // or a tombstone carrying payload
};

[[nodiscard]] std::string to_string(wal_scan_stop s);

struct wal_scan_result {
  wal_scan_stop stop = wal_scan_stop::clean_end;
  std::size_t consumed = 0;  // bytes of valid prefix (frame-aligned)
  std::uint64_t frames = 0;  // intact frames delivered to the callback
};

/// Scans `log` front to back, invoking `fn` for each intact frame, and
/// stops at the first torn/corrupt/impossible frame. Never throws on any
/// input: arbitrary garbage classifies as one of the stop reasons. `fn`
/// may be empty (pure validation).
wal_scan_result scan_wal(std::span<const std::uint8_t> log,
                         const std::function<void(const wal_frame&)>& fn);

}  // namespace remus::storage
