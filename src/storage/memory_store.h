// In-memory stable store used by the simulator: the object outlives the
// simulated process's crashes, which is exactly what "stable" means there.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/flat_hash.h"
#include "storage/stable_store.h"

namespace remus::storage {

class memory_store final : public stable_store {
 public:
  void store(record_key key, const bytes& record) override;
  [[nodiscard]] std::optional<bytes> retrieve(record_key key) const override;
  void for_each(record_area area,
                const std::function<void(register_id, const bytes&)>& fn) const override;
  void erase(record_key key) override;
  void wipe() override;
  [[nodiscard]] std::uint64_t store_count() const override { return stores_; }

  /// Total bytes currently held (diagnostics).
  [[nodiscard]] std::size_t footprint() const;

 private:
  struct key_hash {
    std::size_t operator()(record_key k) const noexcept {
      return static_cast<std::size_t>(
          mix_u64((static_cast<std::uint64_t>(k.area) << 32) | k.reg));
    }
  };

  struct entry {
    record_key key;
    bytes record;
    /// Erased in place (tombstone): skipped by for_each, bulk-reclaimed by
    /// compact() once the dead outnumber the living. Keeps erase O(1) on
    /// the lease-expiry hot path while survivors enumerate in first-store
    /// order, same as eager compaction did.
    bool dead = false;
  };

  void compact();

  // Insertion-ordered record vector (for_each enumerates in first-store
  // order — deterministic across identically-driven runs) with a flat-hash
  // index keyed by record_key, so the per-log store path stays O(1) even
  // with thousands of registers — and allocation-free in steady state (the
  // value buffer is reused in place).
  std::vector<entry> records_;
  flat_hash_map<record_key, std::uint32_t, key_hash> index_;
  std::uint32_t dead_ = 0;
  std::uint64_t stores_ = 0;
};

}  // namespace remus::storage
