// In-memory stable store used by the simulator: the object outlives the
// simulated process's crashes, which is exactly what "stable" means there.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "storage/stable_store.h"

namespace remus::storage {

class memory_store final : public stable_store {
 public:
  void store(std::string_view key, const bytes& record) override;
  [[nodiscard]] std::optional<bytes> retrieve(std::string_view key) const override;
  void wipe() override;
  [[nodiscard]] std::uint64_t store_count() const override { return stores_; }

  /// Total bytes currently held (diagnostics).
  [[nodiscard]] std::size_t footprint() const;

 private:
  // The algorithms use three fixed record keys ("writing", "written",
  // "recovered"); a linear scan beats a tree and stays allocation-free on
  // the per-log store path (the value buffer is reused in place).
  std::vector<std::pair<std::string, bytes>> records_;
  std::uint64_t stores_ = 0;
};

}  // namespace remus::storage
