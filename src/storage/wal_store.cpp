#include "storage/wal_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>

#include "common/error.h"

namespace remus::storage {

// ---------------------------------------------------------------------------
// file_media

namespace {

[[noreturn]] void fail_media(const std::string& what) {
  throw error("file_media: " + what + ": " + std::strerror(errno));
}

void read_file(const std::filesystem::path& p, bytes& out) {
  out.clear();
  std::ifstream in(p, std::ios::binary);
  if (!in) return;  // absent file reads as an empty image
  out.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

}  // namespace

file_media::file_media(std::filesystem::path dir, bool fsync_enabled)
    : dir_(std::move(dir)), fsync_enabled_(fsync_enabled) {
  std::filesystem::create_directories(dir_);
  // Sweep stray temp files: a crash between tmp-write and rename leaves a
  // ".tmp" that must never shadow or outlive the real image.
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".tmp") {
      std::filesystem::remove(entry.path(), ec);
    }
  }
  open_log();
}

file_media::~file_media() {
  if (log_fd_ >= 0) ::close(log_fd_);
}

void file_media::open_log() {
  if (log_fd_ >= 0) ::close(log_fd_);
  log_fd_ = ::open((dir_ / "wal.log").c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (log_fd_ < 0) fail_media("open " + (dir_ / "wal.log").string());
}

void file_media::sync_dir() const {
  const int fd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort; some filesystems refuse dir fsync
  ::fsync(fd);
  ::close(fd);
}

void file_media::append_log(std::span<const std::uint8_t> data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(log_fd_, data.data() + off, data.size() - off);
    if (n < 0) fail_media("append wal.log");
    off += static_cast<std::size_t>(n);
  }
  if (fsync_enabled_ && ::fsync(log_fd_) != 0) fail_media("fsync wal.log");
}

void file_media::install_snapshot(const bytes& snapshot) {
  const auto target = dir_ / "snapshot";
  auto tmp = target;
  tmp += ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail_media("open " + tmp.string());
  std::size_t off = 0;
  while (off < snapshot.size()) {
    const ssize_t n = ::write(fd, snapshot.data() + off, snapshot.size() - off);
    if (n < 0) {
      ::close(fd);
      fail_media("write " + tmp.string());
    }
    off += static_cast<std::size_t>(n);
  }
  if (fsync_enabled_ && ::fsync(fd) != 0) {
    ::close(fd);
    fail_media("fsync " + tmp.string());
  }
  ::close(fd);
  std::error_code ec;
  std::filesystem::rename(tmp, target, ec);
  if (ec) throw error("file_media: rename " + target.string() + ": " + ec.message());
  if (fsync_enabled_) sync_dir();
}

void file_media::truncate_log(std::size_t size) {
  if (::ftruncate(log_fd_, static_cast<off_t>(size)) != 0) {
    fail_media("ftruncate wal.log");
  }
  if (fsync_enabled_ && ::fsync(log_fd_) != 0) fail_media("fsync wal.log");
  // O_APPEND writes always land at the (new) end; no seek needed.
}

void file_media::load(bytes& snapshot, bytes& log) const {
  read_file(dir_ / "snapshot", snapshot);
  read_file(dir_ / "wal.log", log);
}

void file_media::wipe() {
  truncate_log(0);
  std::error_code ec;
  std::filesystem::remove(dir_ / "snapshot", ec);
  if (fsync_enabled_) sync_dir();
}

// ---------------------------------------------------------------------------
// wal_store

wal_store::wal_store(std::unique_ptr<wal_media> media, wal_store_config cfg)
    : media_(std::move(media)), cfg_(cfg) {
  reopen();
}

void wal_store::apply_record(record_key key, std::span<const std::uint8_t> payload) {
  live_bytes_ += wal_frame_size(payload.size());
  std::uint32_t& slot = index_[key];
  if (slot < records_.size() && records_[slot].first == key) {
    live_bytes_ -= wal_frame_size(records_[slot].second.size());
    records_[slot].second.assign(payload.begin(), payload.end());
    return;
  }
  slot = static_cast<std::uint32_t>(records_.size());
  records_.emplace_back(key, bytes(payload.begin(), payload.end()));
}

void wal_store::apply_tombstone(record_key key) {
  const std::uint32_t* slot = index_.find(key);
  if (slot == nullptr) return;
  const std::uint32_t at = *slot;
  live_bytes_ -= wal_frame_size(records_[at].second.size());
  records_.erase(records_.begin() + at);
  index_.erase(key);
  for (std::uint32_t i = at; i < records_.size(); ++i) {
    index_[records_[i].first] = i;
  }
}

void wal_store::store(record_key key, const bytes& record) {
  store_and_obsolete(key, record, {});
}

void wal_store::store_and_obsolete(record_key key, const bytes& record,
                                   std::span<const record_key> obsolete) {
  ++stores_;
  frame_buf_.clear();
  append_wal_frame(frame_buf_, wal_frame_kind::record, key, record);
  for (const record_key& k : obsolete) {
    // The fresh record wins over its own obsolescence; absent keys need no
    // tombstone (nothing to shadow in the log prefix... except a prior
    // record already compacted away — the tombstone is still correct but
    // pure log growth, so skip it).
    if (k == key || index_.find(k) == nullptr) continue;
    append_wal_frame(frame_buf_, wal_frame_kind::tombstone, k, {});
  }
  // ONE durable append for the record plus its piggybacked obsolescence.
  media_->append_log(frame_buf_);
  log_bytes_ += frame_buf_.size();
  apply_record(key, record);
  for (const record_key& k : obsolete) {
    if (k == key) continue;
    apply_tombstone(k);
  }
  maybe_compact();
}

std::optional<bytes> wal_store::retrieve(record_key key) const {
  const std::uint32_t* slot = index_.find(key);
  if (slot == nullptr) return std::nullopt;
  return records_[*slot].second;
}

void wal_store::for_each(record_area area,
                         const std::function<void(register_id, const bytes&)>& fn) const {
  for (const auto& [k, v] : records_) {
    if (k.area == area) fn(k.reg, v);
  }
}

void wal_store::erase(record_key key) {
  if (index_.find(key) == nullptr) return;  // no-op, and no log growth
  frame_buf_.clear();
  append_wal_frame(frame_buf_, wal_frame_kind::tombstone, key, {});
  media_->append_log(frame_buf_);
  log_bytes_ += frame_buf_.size();
  apply_tombstone(key);
  maybe_compact();
}

void wal_store::wipe() {
  media_->wipe();
  records_.clear();
  index_.clear();
  log_bytes_ = 0;
  snapshot_bytes_ = 0;
  live_bytes_ = 0;
}

void wal_store::maybe_compact() {
  const double floor = static_cast<double>(cfg_.compact_min_bytes);
  const double threshold =
      std::max(floor, cfg_.compact_slack * static_cast<double>(live_bytes_));
  if (static_cast<double>(log_bytes_) <= threshold) return;
  // Serialize the live records as frames — the snapshot is just a log with
  // no dead weight, so recovery replays it with the same scanner.
  bytes snapshot;
  snapshot.reserve(live_bytes_);
  for (const auto& [k, v] : records_) {
    append_wal_frame(snapshot, wal_frame_kind::record, k, v);
  }
  // Media ordering: snapshot durable first, then the log truncate. A crash
  // between the two replays the old log over the new snapshot — idempotent,
  // because the snapshot already reflects the state after the whole log.
  media_->install_snapshot(snapshot);
  media_->truncate_log(0);
  snapshot_bytes_ = snapshot.size();
  log_bytes_ = 0;
  ++compactions_;
}

void wal_store::reopen() {
  bytes snapshot;
  bytes log;
  media_->load(snapshot, log);

  records_.clear();
  index_.clear();
  live_bytes_ = 0;
  recovery_ = {};
  recovery_.bytes_read = snapshot.size() + log.size();

  const auto replay = [this](const wal_frame& f) {
    if (f.kind == wal_frame_kind::record) {
      apply_record(f.key, f.payload);
    } else {
      apply_tombstone(f.key);
    }
  };
  // Snapshot first (base state), then the log (later mutations win). The
  // scanner stops at the first invalid frame in either image; the suffix
  // past the stop point is never surfaced.
  const wal_scan_result snap = scan_wal(snapshot, replay);
  const wal_scan_result tail = scan_wal(log, replay);
  recovery_.snapshot_stop = snap.stop;
  recovery_.log_stop = tail.stop;
  recovery_.frames_replayed = snap.frames + tail.frames;
  recovery_.discarded =
      (snapshot.size() - snap.consumed) + (log.size() - tail.consumed);
  snapshot_bytes_ = snapshot.size();
  log_bytes_ = tail.consumed;
  // Drop the torn/corrupt log tail on the media so the next append extends
  // the valid prefix instead of hiding behind garbage.
  if (tail.consumed < log.size()) {
    media_->truncate_log(tail.consumed);
  }
}

void wal_store::inject_tail_bytes(std::span<const std::uint8_t> data) {
  media_->append_log(data);
  log_bytes_ += data.size();
}

}  // namespace remus::storage
