// Deterministic corruption primitives for WAL images.
//
// Tests and the scenario engine share these: the unit-level corruption
// matrix flips each byte / truncates at each offset, the simulator's
// `corrupt_tail` crash style tears the in-flight frame and sprays garbage
// after the durable prefix, and the fuzz harness composes them randomly.
// Everything operates on a raw byte image (the log as a `bytes`), so the
// same mutations apply to the in-memory media of the simulator and to a
// log file read back from disk. All randomness comes from a caller-owned
// rng — same seed, same mutation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/value.h"

namespace remus::storage {

/// Flips one bit: `log[byte] ^= (1 << bit)`. Out-of-range offsets are a
/// no-op (matrix tests iterate blindly over candidate offsets).
void flip_bit(bytes& log, std::size_t byte, unsigned bit);

/// Truncates the image to `size` bytes (no-op if already shorter) — a
/// crash that lost the tail of the medium.
void truncate_log(bytes& log, std::size_t size);

/// Keeps only the first `keep` bytes of the final `frame_size` bytes: the
/// classic torn append, where the crash landed mid-frame. `keep` is
/// clamped to the frame.
void tear_final_frame(bytes& log, std::size_t frame_size, std::size_t keep);

/// Appends `count` random bytes — stray garbage after the last durable
/// frame (e.g. a preallocated region the crash never finished framing).
void append_garbage(bytes& log, rng& r, std::size_t count);

/// Flips a random bit within [begin, log.size()): used to corrupt only the
/// non-durable tail region. No-op when the range is empty.
void flip_random_bit_after(bytes& log, rng& r, std::size_t begin);

/// Byte offsets where each intact frame starts, plus the end offset of the
/// valid prefix as the final element. A log with k intact frames yields
/// k + 1 offsets; matrix tests target "the final frame" as
/// [offsets[k-1], offsets[k]).
[[nodiscard]] std::vector<std::size_t> frame_offsets(
    std::span<const std::uint8_t> log);

}  // namespace remus::storage
