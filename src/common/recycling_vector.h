// A vector whose clear() retires elements without destroying them.
//
// Effect batches (proto::outputs) are filled and drained thousands of times
// per simulated second; with std::vector, clear() destroys each element —
// freeing every message payload and record buffer — only for the next batch
// to reallocate them. A recycling_vector keeps retired elements alive past
// clear(): emplace_slot() hands back a retired element whose heap capacity
// (value bytes, record buffers) the caller reuses via copy-assignment.
//
// The price is a sharp contract: a slot from emplace_slot() holds an
// arbitrary retired element's state, so the caller must assign every field a
// reader may look at. push_back() (plain assignment) is always safe.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace remus {

template <class T>
class recycling_vector {
 public:
  recycling_vector() = default;
  recycling_vector(recycling_vector&& o) noexcept
      : items_(std::move(o.items_)), live_(o.live_) {
    o.live_ = 0;
  }
  recycling_vector& operator=(recycling_vector&& o) noexcept {
    items_ = std::move(o.items_);
    live_ = o.live_;
    o.live_ = 0;
    return *this;
  }

  /// Append and return a slot that may carry a retired element's old state;
  /// assign every field before anyone reads the batch.
  T& emplace_slot() {
    if (live_ == items_.size()) items_.emplace_back();
    return items_[live_++];
  }

  void push_back(T v) { emplace_slot() = std::move(v); }

  /// Retire all elements, keeping them (and their buffers) for reuse.
  void clear() noexcept { live_ = 0; }

  [[nodiscard]] std::size_t size() const noexcept { return live_; }
  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

  [[nodiscard]] T& operator[](std::size_t i) { return items_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return items_[i]; }

  [[nodiscard]] T* begin() noexcept { return items_.data(); }
  [[nodiscard]] T* end() noexcept { return items_.data() + live_; }
  [[nodiscard]] const T* begin() const noexcept { return items_.data(); }
  [[nodiscard]] const T* end() const noexcept { return items_.data() + live_; }

 private:
  std::vector<T> items_;  // [0, live_) live, [live_, size) retired
  std::size_t live_ = 0;
};

}  // namespace remus
