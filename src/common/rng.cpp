#include "common/rng.h"

#include <cmath>

namespace remus {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

rng::rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t rng::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % bound;
  std::uint64_t x = next_u64();
  while (x >= limit) x = next_u64();
  return x % bound;
}

std::int64_t rng::next_in(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double rng::next_unit() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_unit() < p;
}

double rng::next_exponential(double mean) {
  double u = next_unit();
  if (u >= 1.0) u = 0.999999999;
  return -mean * std::log(1.0 - u);
}

rng rng::fork() { return rng(next_u64() ^ 0xa5a5a5a5deadbeefULL); }

}  // namespace remus
