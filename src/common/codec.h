// Bounds-checked byte-level encoder/decoder used for wire messages and
// stable-storage records. Little-endian fixed-width integers; byte strings
// are u32-length-prefixed. Decoding failures throw codec_error rather than
// reading out of bounds.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/error.h"
#include "common/ids.h"
#include "common/timestamp.h"
#include "common/value.h"

namespace remus {

/// Appends primitive values to a growing byte buffer.
class byte_writer {
 public:
  byte_writer() = default;
  explicit byte_writer(bytes initial) : buf_(std::move(initial)) {}

  /// Pre-size the buffer (hot encoders know their exact wire size).
  void reserve(std::size_t n) { buf_.reserve(n); }
  void clear() noexcept { buf_.clear(); }

  void put_u8(std::uint8_t x) { buf_.push_back(x); }
  void put_u32(std::uint32_t x);
  void put_u64(std::uint64_t x);
  void put_i64(std::int64_t x) { put_u64(static_cast<std::uint64_t>(x)); }
  void put_bytes(std::span<const std::uint8_t> b);
  void put_string(std::string_view s);
  void put_process(process_id p) { put_u32(p.index); }
  void put_tag(const tag& t);
  void put_value(const value& v) { put_bytes(v.data); }

  [[nodiscard]] const bytes& buffer() const noexcept { return buf_; }
  [[nodiscard]] bytes take() && noexcept { return std::move(buf_); }

 private:
  bytes buf_;
};

/// Reads primitive values from a byte buffer, throwing codec_error on
/// truncation. The reader does not own the bytes.
class byte_reader {
 public:
  explicit byte_reader(std::span<const std::uint8_t> b) : buf_(b) {}

  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  [[nodiscard]] bytes get_bytes();
  [[nodiscard]] std::string get_string();
  [[nodiscard]] process_id get_process() { return process_id{get_u32()}; }
  [[nodiscard]] tag get_tag();
  [[nodiscard]] value get_value() { return value{get_bytes()}; }

  [[nodiscard]] std::size_t remaining() const noexcept { return buf_.size() - pos_; }
  [[nodiscard]] bool done() const noexcept { return remaining() == 0; }

  /// Throws codec_error unless the whole buffer was consumed.
  void expect_done() const;

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

}  // namespace remus
