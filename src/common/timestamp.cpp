#include "common/timestamp.h"

namespace remus {

std::string to_string(const tag& t) {
  std::string out = "[";
  out += std::to_string(t.sn);
  if (t.rec != 0) {
    out += "r";
    out += std::to_string(t.rec);
  }
  out += ",";
  out += t.writer.valid() ? ("p" + std::to_string(t.writer.index)) : "-";
  out += "]";
  return out;
}

}  // namespace remus
