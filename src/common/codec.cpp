#include "common/codec.h"

namespace remus {

void byte_writer::put_u32(std::uint32_t x) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}

void byte_writer::put_u64(std::uint64_t x) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}

void byte_writer::put_bytes(std::span<const std::uint8_t> b) {
  put_u32(static_cast<std::uint32_t>(b.size()));
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void byte_writer::put_string(std::string_view s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void byte_writer::put_tag(const tag& t) {
  put_i64(t.sn);
  put_i64(t.rec);
  put_process(t.writer);
}

void byte_reader::need(std::size_t n) const {
  if (remaining() < n) throw codec_error("byte_reader: truncated input");
}

std::uint8_t byte_reader::get_u8() {
  need(1);
  return buf_[pos_++];
}

std::uint32_t byte_reader::get_u32() {
  need(4);
  std::uint32_t x = 0;
  for (int i = 0; i < 4; ++i) x |= static_cast<std::uint32_t>(buf_[pos_++]) << (8 * i);
  return x;
}

std::uint64_t byte_reader::get_u64() {
  need(8);
  std::uint64_t x = 0;
  for (int i = 0; i < 8; ++i) x |= static_cast<std::uint64_t>(buf_[pos_++]) << (8 * i);
  return x;
}

bytes byte_reader::get_bytes() {
  const auto n = get_u32();
  need(n);
  bytes out(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
            buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::string byte_reader::get_string() {
  const auto n = get_u32();
  need(n);
  std::string out(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

tag byte_reader::get_tag() {
  tag t;
  t.sn = get_i64();
  t.rec = get_i64();
  t.writer = get_process();
  return t;
}

void byte_reader::expect_done() const {
  if (!done()) throw codec_error("byte_reader: trailing bytes");
}

}  // namespace remus
