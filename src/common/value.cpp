#include "common/value.h"

#include <array>

namespace remus {
namespace {

void append_le(bytes& out, std::uint64_t x, int n) {
  for (int i = 0; i < n; ++i) out.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}

std::uint64_t read_le(const bytes& in, int n) {
  std::uint64_t x = 0;
  for (int i = 0; i < n; ++i) x |= static_cast<std::uint64_t>(in[static_cast<std::size_t>(i)]) << (8 * i);
  return x;
}

constexpr std::array<char, 16> hex = {'0', '1', '2', '3', '4', '5', '6', '7',
                                      '8', '9', 'a', 'b', 'c', 'd', 'e', 'f'};

}  // namespace

value value_of_u32(std::uint32_t x) {
  value v;
  append_le(v.data, x, 4);
  return v;
}

value value_of_u64(std::uint64_t x) {
  value v;
  append_le(v.data, x, 8);
  return v;
}

std::optional<std::uint32_t> value_as_u32(const value& v) {
  if (v.data.size() != 4) return std::nullopt;
  return static_cast<std::uint32_t>(read_le(v.data, 4));
}

std::optional<std::uint64_t> value_as_u64(const value& v) {
  if (v.data.size() != 8) return std::nullopt;
  return read_le(v.data, 8);
}

value value_of_string(std::string_view s) {
  value v;
  v.data.assign(s.begin(), s.end());
  return v;
}

std::string value_as_string(const value& v) {
  return std::string(v.data.begin(), v.data.end());
}

value value_of_size(std::size_t n, std::uint8_t seed) {
  value v;
  v.data.resize(n);
  std::uint8_t x = seed;
  for (auto& b : v.data) {
    x = static_cast<std::uint8_t>(x * 167 + 13);
    b = x;
  }
  return v;
}

std::string to_string(const value& v) {
  if (v.is_initial()) return "_|_";
  if (auto u = value_as_u32(v)) return "u32:" + std::to_string(*u);
  std::string out = std::to_string(v.data.size()) + "B:";
  const std::size_t show = v.data.size() < 4 ? v.data.size() : 4;
  for (std::size_t i = 0; i < show; ++i) {
    out += hex[v.data[i] >> 4];
    out += hex[v.data[i] & 0xf];
  }
  if (v.data.size() > show) out += "..";
  return out;
}

}  // namespace remus
