// Open-addressing hash map for the simulator hot path.
//
// std::map / std::unordered_map allocate one node per insertion, which shows
// up as per-operation heap churn in the event loop. This map keeps everything
// in one flat array (linear probing, power-of-two capacity, grow at 7/8
// load), so inserts are allocation-free in steady state. It supports exactly
// what the hot path needs — find-or-insert, lookup, erase (backward-shift,
// so probe chains never accumulate tombstones), clear. Erasing completed
// entries keeps the live table a few cache lines wide no matter how long
// the run is.
//
// Requirements: Key is trivially copyable and equality-comparable; Value is
// default-constructible. Iteration order is unspecified.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace remus {

template <class Key, class Value, class Hash = std::hash<Key>>
class flat_hash_map {
 public:
  flat_hash_map() = default;

  /// Find the value for `k`, inserting a default-constructed one if absent.
  Value& operator[](const Key& k) {
    if (table_.empty() || size_ * 8 >= table_.size() * 7) grow();
    std::size_t i = probe_start(k);
    while (table_[i].used) {
      if (table_[i].key == k) return table_[i].val;
      i = (i + 1) & mask_;
    }
    table_[i].used = true;
    table_[i].key = k;
    table_[i].val = Value{};
    ++size_;
    return table_[i].val;
  }

  [[nodiscard]] Value* find(const Key& k) {
    if (table_.empty()) return nullptr;
    std::size_t i = probe_start(k);
    while (table_[i].used) {
      if (table_[i].key == k) return &table_[i].val;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  [[nodiscard]] const Value* find(const Key& k) const {
    return const_cast<flat_hash_map*>(this)->find(k);
  }

  /// Remove `k` if present (backward-shift deletion: later entries of the
  /// probe chain move up, so lookups never walk dead slots).
  bool erase(const Key& k) {
    if (table_.empty()) return false;
    std::size_t i = probe_start(k);
    while (table_[i].used) {
      if (table_[i].key == k) {
        std::size_t hole = i;
        std::size_t j = (i + 1) & mask_;
        while (table_[j].used) {
          const std::size_t home = probe_start(table_[j].key);
          // j may fill the hole only if its home position precedes the hole
          // (cyclically); otherwise it would become unreachable.
          if (((j - home) & mask_) >= ((j - hole) & mask_)) {
            table_[hole].key = table_[j].key;
            table_[hole].val = std::move(table_[j].val);
            hole = j;
          }
          j = (j + 1) & mask_;
        }
        table_[hole].used = false;
        table_[hole].val = Value{};
        --size_;
        return true;
      }
      i = (i + 1) & mask_;
    }
    return false;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Visit every live (key, value) pair. Iteration order is unspecified
  /// (table order); callers needing determinism must sort what they collect.
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const entry& e : table_) {
      if (e.used) fn(e.key, e.val);
    }
  }

  void clear() {
    for (auto& e : table_) e.used = false;
    size_ = 0;
  }

 private:
  struct entry {
    Key key{};
    Value val{};
    bool used = false;
  };

  [[nodiscard]] std::size_t probe_start(const Key& k) const {
    return Hash{}(k)&mask_;
  }

  void grow() {
    std::vector<entry> old = std::move(table_);
    const std::size_t cap = old.empty() ? 16 : old.size() * 2;
    table_.assign(cap, entry{});
    mask_ = cap - 1;
    size_ = 0;
    for (entry& e : old) {
      if (!e.used) continue;
      std::size_t i = probe_start(e.key);
      while (table_[i].used) i = (i + 1) & mask_;
      table_[i].used = true;
      table_[i].key = e.key;
      table_[i].val = std::move(e.val);
      ++size_;
    }
  }

  std::vector<entry> table_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

/// splitmix64 finalizer: a cheap, well-mixed hash for packed integer keys.
[[nodiscard]] constexpr std::uint64_t mix_u64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace remus
