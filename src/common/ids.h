// Strongly-typed identifiers shared by every remus module.
//
// The paper's model (section II) has a static set of n processes; we identify
// them with small dense integers so they can index vectors. Operation and
// request identifiers are plain monotonic counters scoped to one process.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>

namespace remus {

/// Identity of one process of the static process set (0-based, dense).
struct process_id {
  std::uint32_t index = std::numeric_limits<std::uint32_t>::max();

  constexpr auto operator<=>(const process_id&) const = default;

  [[nodiscard]] constexpr bool valid() const noexcept {
    return index != std::numeric_limits<std::uint32_t>::max();
  }
};

/// A value that orders invalid() last, handy for "no process yet" defaults.
inline constexpr process_id no_process{};

/// Name of one register of the emulated namespace. The paper emulates a
/// single register; the multi-register extension multiplexes N of them over
/// one cluster, and every wire message / stable record / history event is
/// keyed by this identifier. Dense small integers keep the key hashable and
/// wire-compact; register 0 is the default (the paper's single register).
using register_id = std::uint32_t;

inline constexpr register_id default_register = 0;

/// Identifier of one operation execution (read or write) at one process.
/// Unique per (process, incarnation-independent counter): the counter is
/// restored from stable storage on recovery where the algorithm requires it.
struct op_id {
  process_id invoker;
  std::uint64_t seq = 0;

  constexpr auto operator<=>(const op_id&) const = default;
};

/// Tag distinguishing phases (query/update round) of one operation so that
/// late acknowledgements from a previous phase are never miscounted.
struct phase_id {
  op_id op;
  std::uint32_t round = 0;

  constexpr auto operator<=>(const phase_id&) const = default;
};

}  // namespace remus

template <>
struct std::hash<remus::process_id> {
  std::size_t operator()(const remus::process_id& p) const noexcept {
    return std::hash<std::uint32_t>{}(p.index);
  }
};

template <>
struct std::hash<remus::op_id> {
  std::size_t operator()(const remus::op_id& o) const noexcept {
    return std::hash<std::uint64_t>{}(o.seq * 1000003ULL + o.invoker.index);
  }
};
