// Lexicographic timestamps ("tags") ordering written values.
//
// The paper (section I-C, footnote 2) orders written values by a pair
// [sequence number, writer process id], compared lexicographically; the
// process id breaks ties between concurrent writers that picked the same
// sequence number. This is the `[sn, i]` of Figures 4 and 5.
//
// We add a third component, `rec`, for the transient-atomic emulation
// (paper Fig. 5): the algorithm already maintains and logs a per-process
// recovery counter so that "sequence numbers always increase monotonically"
// (section IV-C). Embedding that counter in the tag realizes the claimed
// invariant also in the corner case where the sn-query majority's maximum
// regresses after a crash (two incarnations of one writer could otherwise
// emit the same [sn, i] for different values). Crash-stop and persistent
// emulations keep rec == 0, making the tag exactly the paper's [sn, i].
// See DESIGN.md ("Substitutions") and tests/lower_bound_test.cpp, which
// demonstrates the literal variant's corner case.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "common/ids.h"

namespace remus {

/// Timestamp `[sn, rec, pid]` with lexicographic order. The zero tag
/// (sn == 0, rec == 0, writer invalid) orders before every real write and
/// tags the initial value (the paper's ⊥).
struct tag {
  std::int64_t sn = 0;
  std::int64_t rec = 0;
  process_id writer = no_process;

  friend constexpr auto operator<=>(const tag& a, const tag& b) noexcept {
    if (auto c = a.sn <=> b.sn; c != 0) return c;
    if (auto c = a.rec <=> b.rec; c != 0) return c;
    // `no_process` uses the max index, so a real writer id must order *after*
    // the initial tag at the same (sn, rec); compare on a rotated key.
    const auto rank = [](process_id p) -> std::uint64_t {
      return p.valid() ? p.index + 1ULL : 0ULL;
    };
    return rank(a.writer) <=> rank(b.writer);
  }
  friend constexpr bool operator==(const tag& a, const tag& b) noexcept {
    return (a <=> b) == 0;
  }

  [[nodiscard]] constexpr bool initial() const noexcept {
    return sn == 0 && rec == 0 && !writer.valid();
  }
};

/// The tag of the initial value ⊥.
inline constexpr tag initial_tag{};

[[nodiscard]] std::string to_string(const tag& t);

}  // namespace remus
