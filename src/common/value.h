// Register payloads.
//
// The paper's experiments write 4-byte integers (Fig. 6 top) and payloads up
// to the 64 KB UDP limit (Fig. 6 bottom). A value is an opaque byte string;
// helpers build values from integers/strings for tests and examples. The
// empty value stands for the initial ⊥.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace remus {

using bytes = std::vector<std::uint8_t>;

/// A register value: opaque bytes. Empty == the initial value ⊥.
struct value {
  bytes data;

  friend bool operator==(const value&, const value&) = default;

  [[nodiscard]] bool is_initial() const noexcept { return data.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return data.size(); }
};

/// The initial value ⊥ of every register.
[[nodiscard]] inline value initial_value() { return {}; }

/// Build a 4-byte little-endian integer value (the Fig. 6 top workload).
[[nodiscard]] value value_of_u32(std::uint32_t x);

/// Build an 8-byte little-endian integer value.
[[nodiscard]] value value_of_u64(std::uint64_t x);

/// Decode values produced by value_of_u32 / value_of_u64.
[[nodiscard]] std::optional<std::uint32_t> value_as_u32(const value& v);
[[nodiscard]] std::optional<std::uint64_t> value_as_u64(const value& v);

/// Build a value from text (examples / KV store payloads).
[[nodiscard]] value value_of_string(std::string_view s);
[[nodiscard]] std::string value_as_string(const value& v);

/// Build an arbitrary-size deterministic payload (Fig. 6 bottom workload).
[[nodiscard]] value value_of_size(std::size_t n, std::uint8_t seed = 0x5a);

/// Short printable rendering for diagnostics ("⊥", "u32:7", "17B:ab12..").
[[nodiscard]] std::string to_string(const value& v);

}  // namespace remus
