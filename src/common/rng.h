// Deterministic pseudo-random source (splitmix64 + xoshiro256**).
//
// Every randomized component of the simulation (network delays, drops,
// fault schedules, property-test workloads) draws from an rng seeded
// explicitly, so any run is reproducible from its seed.
#pragma once

#include <array>
#include <cstdint>

namespace remus {

class rng {
 public:
  explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform in [0, 2^64).
  std::uint64_t next_u64();

  /// Uniform in [0, bound); bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double next_unit();

  /// True with probability p (clamped to [0, 1]).
  bool chance(double p);

  /// Exponentially distributed with the given mean (> 0).
  double next_exponential(double mean);

  /// Derive an independent child generator (for per-component streams).
  rng fork();

  // UniformRandomBitGenerator interface (usable with <algorithm> shuffles).
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace remus
