// Error types (E.14: purpose-designed exception types).
#pragma once

#include <stdexcept>
#include <string>

namespace remus {

/// Base class of all remus errors.
class error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Malformed wire/stable-storage bytes.
class codec_error : public error {
 public:
  using error::error;
};

/// An API precondition was violated by the caller (e.g. a second operation
/// invoked while one is outstanding at the same process).
class precondition_error : public error {
 public:
  using error::error;
};

/// The simulated world or threaded runtime was asked for something it cannot
/// satisfy (unknown process, scheduling in the past, ...).
class driver_error : public error {
 public:
  using error::error;
};

/// A blocking operation was cut short because its process crashed (threaded
/// runtime): the invocation stays pending in the history.
class operation_aborted : public error {
 public:
  using error::error;
};

}  // namespace remus
