// Simulated-time primitives. The paper assumes a fictional global clock
// (section II); the simulator implements it as 64-bit nanoseconds.
#pragma once

#include <cstdint>

namespace remus {

/// Virtual time in nanoseconds since the start of a run.
using time_ns = std::int64_t;

constexpr time_ns operator""_us(unsigned long long v) {
  return static_cast<time_ns>(v) * 1000;
}
constexpr time_ns operator""_ms(unsigned long long v) {
  return static_cast<time_ns>(v) * 1000 * 1000;
}
constexpr time_ns operator""_s(unsigned long long v) {
  return static_cast<time_ns>(v) * 1000 * 1000 * 1000;
}

constexpr double to_us(time_ns t) { return static_cast<double>(t) / 1000.0; }
constexpr double to_ms(time_ns t) { return static_cast<double>(t) / 1.0e6; }

}  // namespace remus
