// Typed simulator events.
//
// The pre-refactor event queue stored one heap-allocated `std::function`
// closure per scheduled event. Virtually all simulator traffic falls into a
// handful of shapes, so events are now a tagged union executed by the world
// driver (the cluster) through the `sim_executor` interface; the closure form
// survives as the `thunk` fallback for tests and cold paths.
//
// The payload fields are a union-by-convention: each kind reads only its own
// fields (documented below) and leaves the rest defaulted. Moving a
// `sim_event` moves its buffers; no field ever needs a deep copy on the hot
// path (message payloads are refcounted `shared_message` handles shared by
// every delivery of one broadcast).
//
// Layering note: sim/ deliberately depends on proto/message here — the
// simulator's whole workload is protocol messages, and typing them is what
// removes the per-event allocation.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "common/ids.h"
#include "common/value.h"
#include "proto/shared_message.h"
#include "storage/stable_store.h"

namespace remus::sim {

enum class event_kind : std::uint8_t {
  none = 0,     // empty slot
  thunk,        // generic fallback: run `fn`
  message,      // deliver `msg` to `target`'s core
  log_done,     // store durable at `target`: token `a`, `log_key`/`log_record`
  timer,        // protocol timer at `target`: token `a`, guarded by `incarnation`
  op_dispatch,  // client pump at `target`: op handle `a` (or redispatch)
  crash,        // fault injection at `target`
  recover,
  lease_expiry, // lease deadline at `target`: token `a`, guarded by `incarnation`
};

/// Sentinel for `sim_event::a` / `incarnation` meaning "no handle / no
/// incarnation guard".
inline constexpr std::uint64_t no_event_arg = ~0ULL;

struct sim_event {
  event_kind kind = event_kind::none;
  process_id target{};
  std::uint64_t a = no_event_arg;            // token or op handle (see kinds)
  std::uint64_t incarnation = no_event_arg;  // guard; no_event_arg = unguarded
  proto::shared_message msg{};               // message
  storage::record_key log_key{};             // log_done (trivially copyable)
  bytes log_record{};                        // log_done
  /// log_done: keys erased in the same durable step (store_and_obsolete).
  std::vector<storage::record_key> log_obsoletes{};
  std::function<void()> fn{};                // thunk
};

/// Executes typed events popped by the event queue. Implemented by the world
/// driver (core::cluster); the queue runs `thunk` events itself.
class sim_executor {
 public:
  virtual void execute(sim_event& ev) = 0;

 protected:
  ~sim_executor() = default;
};

}  // namespace remus::sim
