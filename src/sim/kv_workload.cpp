#include "sim/kv_workload.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace remus::sim {

zipf_sampler::zipf_sampler(std::uint64_t n, double theta) : n_(n), theta_(theta) {
  if (n == 0) throw precondition_error("zipf_sampler: empty domain");
  if (theta < 0.0 || theta >= 1.0) {
    throw precondition_error("zipf_sampler: theta must be in [0, 1)");
  }
  if (theta_ == 0.0) return;  // uniform fast path
  zetan_ = 0.0;
  for (std::uint64_t i = 1; i <= n_; ++i) {
    zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
  }
  const double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

std::uint64_t zipf_sampler::sample(rng& r) const {
  if (theta_ == 0.0) return r.next_below(n_);
  // Gray et al. "Quickly generating billion-record synthetic databases",
  // as used by YCSB's ZipfianGenerator.
  const double u = r.next_unit();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const double frac = eta_ * u - eta_ + 1.0;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(frac, alpha_));
  return std::min(rank, n_ - 1);
}

std::vector<kv_op> make_kv_workload(const kv_workload_config& cfg) {
  if (cfg.n == 0) throw precondition_error("kv_workload: n must be >= 1");
  if (cfg.key_count == 0) throw precondition_error("kv_workload: key_count must be >= 1");
  if (cfg.batch_size == 0) throw precondition_error("kv_workload: batch_size must be >= 1");
  if (cfg.batch_size > cfg.key_count) {
    throw precondition_error("kv_workload: batch_size exceeds key_count");
  }
  if (cfg.value_bytes < 8) {
    throw precondition_error("kv_workload: value_bytes must be >= 8");
  }

  rng r(cfg.seed ^ 0x6b76776bULL);
  const zipf_sampler keys(cfg.key_count, cfg.zipf_theta);

  std::vector<kv_op> ops;
  ops.reserve(cfg.ops);
  std::vector<time_ns> next_at(cfg.n, cfg.start_at);
  std::uint64_t next_value = cfg.value_base;  // globally unique write values
  std::vector<register_id> scratch;

  for (std::uint32_t i = 0; i < cfg.ops; ++i) {
    kv_op op;
    op.p = process_id{static_cast<std::uint32_t>(r.next_below(cfg.n))};
    // Poisson-ish arrivals per process keep every client busy without the
    // schedule collapsing into one burst.
    next_at[op.p.index] +=
        static_cast<time_ns>(r.next_exponential(static_cast<double>(cfg.mean_gap)));
    op.at = next_at[op.p.index];
    op.is_read = r.chance(cfg.read_fraction);

    // Distinct keys per batch: rejection-sample against the batch so far
    // (total because batch_size <= key_count is enforced above). Shard-local
    // batching additionally rejects keys outside the first key's shard, and
    // *that* filter needs the attempt cap: an adversarial placement could
    // leave a shard with fewer than batch_size keys, so the batch is emitted
    // smaller rather than looping forever.
    const bool shard_local =
        cfg.shard_local_batches && cfg.shard_map && cfg.batch_size > 1;
    scratch.clear();
    std::uint32_t home_shard = 0;
    std::uint32_t attempts = 0;
    const std::uint32_t max_attempts = 64 * cfg.batch_size;
    while (scratch.size() < cfg.batch_size) {
      if (shard_local && !scratch.empty() && ++attempts > max_attempts) break;
      const auto reg = static_cast<register_id>(keys.sample(r));
      if (std::find(scratch.begin(), scratch.end(), reg) != scratch.end()) continue;
      if (shard_local) {
        const std::uint32_t s = cfg.shard_map(reg);
        if (scratch.empty()) {
          home_shard = s;
        } else if (s != home_shard) {
          continue;
        }
      }
      scratch.push_back(reg);
    }
    op.entries.reserve(scratch.size());
    for (const register_id reg : scratch) {
      kv_op::entry e;
      e.reg = reg;
      if (!op.is_read) {
        e.val = value_of_u64(next_value++);
        if (cfg.value_bytes > 8) {
          // Deterministic filler after the unique counter (field padding).
          e.val.data.resize(cfg.value_bytes,
                            static_cast<std::uint8_t>(0xa5 ^ (reg & 0xff)));
        }
      }
      op.entries.push_back(std::move(e));
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

}  // namespace remus::sim
