// Synchronous-log disk model.
//
// The paper measures that logging a single byte costs about twice a LAN
// message transit (~0.2 ms, section I-A) on their IDE disks, and that log
// time grows linearly with record size (Fig. 6 bottom). The model charges
//   service = base_latency + bytes / bandwidth
// per store, with one FIFO disk per process: concurrent stores from the two
// execution contexts of a process (client thread, listener thread) queue.
#pragma once

#include <cstdint>

#include "common/time.h"

namespace remus::sim {

struct disk_config {
  /// Fixed per-store latency (seek + rotational + controller; paper ~200 us).
  time_ns base_latency = 200 * 1000;
  /// Sustained write bandwidth in bytes/second (IDE-era ~20 MB/s). 0 = inf.
  std::int64_t bandwidth_bps = 20'000'000;
};

/// One process's disk: computes completion times for stores issued at a
/// given virtual time, serializing overlapping requests.
class disk_model {
 public:
  explicit disk_model(disk_config cfg) : cfg_(cfg) {}

  /// Issue a store of `size` bytes at time `now`; returns the absolute time
  /// at which it becomes durable.
  time_ns issue(time_ns now, std::size_t size_bytes);

  /// Crash wipes the request queue (in-flight stores never become durable
  /// under the conservative crash model; the world cancels their events).
  void reset(time_ns now) { free_at_ = now; }

  [[nodiscard]] std::uint64_t stores_issued() const { return issued_; }
  [[nodiscard]] const disk_config& config() const { return cfg_; }

 private:
  disk_config cfg_;
  time_ns free_at_ = 0;
  std::uint64_t issued_ = 0;
  // Last (size -> transfer time) pair; store sizes repeat run-long.
  std::size_t memo_size_ = ~std::size_t{0};
  time_ns memo_transfer_ = 0;
};

}  // namespace remus::sim
