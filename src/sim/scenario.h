// Generative adversarial fault scenarios: the unified timed plan that
// fault_plan grew into.
//
// A scenario_plan is a sorted list of timed events spanning every fault
// family the model admits:
//
//   * crash/recover    — per-(shard, process) crash-recovery, as fault_plan;
//   * blackout         — a system-wide storm: every process of a shard (or
//                        of the whole fleet) down at one instant, recovering
//                        at skewed per-process times — the paper's "all
//                        crash, possibly at the same time" corner, where
//                        recovery proceeds from stable storage alone;
//   * cut/heal         — network partitions: a node set isolated from the
//                        rest of its shard in both directions
//                        (network_model::partition), healed later;
//   * gray/heal        — gray links: one *directed* link degraded with extra
//                        delay and/or loss (via the network filter hook) —
//                        asymmetric, the failure detectors' worst case;
//   * begin_migration  — opens a live-rebalancing window (S -> S+1) at a
//                        planned instant, so every other family can land
//                        inside the dual-ring migration window.
//   * corrupt_crash    — a crash that damages the WAL tail: torn in-flight
//                        frame, bit flips, stray garbage past the durable
//                        bytes (storage corruption meets protocol recovery).
//
// Validity (`well_formed`) generalizes fault_plan's alternation rule: every
// crash has a later recover, every cut/gray a later heal, at most one
// migration trigger — so after the last event all processes are up and all
// links clean. That is the strongest form of the paper's
// eventually-correct-majority assumption, and it is what guarantees every
// generated run terminates (pending operations finish once a majority stays
// up and connected).
//
// Events carry the id of the generating fault *unit* (one crash+recover
// pair, one partition window, one blackout storm...). Units are the granule
// of delta-debugging minimization: dropping a unit keeps the plan
// well-formed by construction, so minimize_plan can shrink a failing
// scenario to the few units that actually matter and print a self-contained
// repro line (encode/decode_plan).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"

namespace remus::sim {

/// The generator's fault families (coverage accounting is per family).
enum class fault_family : std::uint8_t {
  crash_recover = 0,
  blackout = 1,
  partition = 2,
  gray_link = 3,
  migration = 4,
  corrupt_tail = 5,  // crash that damages the WAL tail (corrupt_crash)
  /// Crash+recover pair aimed at the read-lease protocol: the driver runs
  /// the plan with read leases enabled (short duration, hot-key threshold
  /// low), so the pair lands on leaseholders and grantors — exercising
  /// incarnation revocation, grantor-registry restore, and writer waits.
  lease = 6,
};
inline constexpr std::size_t fault_family_count = 7;
[[nodiscard]] const char* to_string(fault_family f);

enum class scenario_kind : std::uint8_t {
  crash = 0,    // target process of `shard` loses volatile state
  recover = 1,  // target process of `shard` runs Recover()
  cut = 2,      // isolate `group_mask` from the rest of `shard`, both ways
  heal = 3,     // restore every link of `shard` (cuts and gray links)
  gray = 4,     // degrade directed link target -> peer of `shard`
  begin_migration = 5,  // open the S -> S+1 migration window
  /// Crash that additionally corrupts the durable medium's non-durable
  /// tail (torn in-flight frame, bit flips, stray garbage — see
  /// core::crash_style::corrupt_tail). Alternates with `recover` exactly
  /// like `crash`; meaningful only when the run uses the WAL engine.
  corrupt_crash = 6,
};

struct scenario_event {
  time_ns at = 0;
  scenario_kind kind = scenario_kind::crash;
  fault_family family = fault_family::crash_recover;
  /// Generation unit this event belongs to (minimization granule).
  std::uint32_t unit = 0;
  std::uint32_t shard = 0;
  process_id target;            // crash/recover target; gray's source
  process_id peer;              // gray's destination
  std::uint32_t group_mask = 0; // cut: bit i isolates process i
  time_ns extra_delay = 0;      // gray: added one-way delay
  double loss = 0.0;            // gray: per-copy drop probability

  [[nodiscard]] bool operator==(const scenario_event&) const = default;
};

struct scenario_plan {
  /// Topology the plan targets: `shards` quorum groups of `n` processes at
  /// plan start (begin_migration grows the fleet to shards+1).
  std::uint32_t shards = 1;
  std::uint32_t n = 3;
  std::vector<scenario_event> events;  // sorted by time (sort())

  void sort();

  /// Generalized validity: events in range and time-sorted, crash/recover
  /// alternation per (shard, process), every crash eventually recovered,
  /// every cut/gray eventually healed on its shard, cut masks a proper
  /// non-empty subset, at most one begin_migration. Guarantees the
  /// eventually-correct-majority tail that makes runs terminate.
  [[nodiscard]] bool well_formed() const;

  /// Distinct generation units present (minimization works unit-wise).
  [[nodiscard]] std::size_t unit_count() const;

  [[nodiscard]] bool operator==(const scenario_plan&) const = default;
};

/// Compact one-line codec for repro lines: "v1;shards,n;ev;ev;..." where
/// each ev is "kind,at,family,unit,shard,target,peer,mask,delay,loss_ppm".
/// decode_plan throws std::invalid_argument on malformed input.
[[nodiscard]] std::string encode(const scenario_plan& plan);
[[nodiscard]] scenario_plan decode_plan(const std::string& line);

// ---- Coverage accounting -----------------------------------------------------

/// What a run (or a whole fuzzing campaign) actually touched: fault families
/// and their pairwise window overlaps from the plan, protocol branches from
/// the run. The generator biases toward under-explored families.
struct scenario_coverage {
  // Plan-derived.
  std::uint64_t family_events[fault_family_count] = {};
  std::uint64_t family_runs[fault_family_count] = {};
  /// Unit windows of family a overlapping (in time) windows of family b,
  /// counted once per unordered pair per plan; diagonal = same-family
  /// overlaps.
  std::uint64_t overlap_pairs[fault_family_count][fault_family_count] = {};

  // Run-derived (protocol branches; drivers fill these in).
  std::uint64_t adoptions = 0;
  std::uint64_t stale_updates = 0;
  std::uint64_t adopt_splits = 0;        // batched acks splitting adopted/stale
  std::uint64_t retransmits = 0;
  std::uint64_t retransmit_trims = 0;    // trimmed repeat broadcasts
  std::uint64_t recovery_finish_writes = 0;
  std::uint64_t handoff_writes = 0;      // migration: write-path handoffs
  std::uint64_t handoff_drains = 0;      // migration: background-drain handoffs
  std::uint64_t handoff_writebacks = 0;  // migration: window-read write-backs
  std::uint64_t handoff_lease_drops = 0; // migration: lease state dropped at handoff
  std::uint64_t leased_read_hits = 0;    // reads served locally under a lease
  std::uint64_t lease_grants = 0;        // grant rounds that activated a holding
  std::uint64_t lease_invalidations = 0; // holdings dropped/canceled by updates
  std::uint64_t lease_expiries = 0;      // holdings/records dropped by the clock

  void merge(const scenario_coverage& o);
  [[nodiscard]] std::string to_string() const;
};

/// Folds `plan`'s families and unit-window overlaps into `cov`.
void accumulate_plan_coverage(const scenario_plan& plan, scenario_coverage& cov);

// ---- Generation --------------------------------------------------------------

struct adversarial_config {
  std::uint32_t shards = 1;
  std::uint32_t n = 3;
  /// Fault units to generate (a blackout storm or partition window is one).
  std::uint32_t units = 6;
  /// Window in which fault units begin.
  time_ns horizon = 200 * 1000 * 1000;
  /// Downtime / window length: U[min_down, max_down].
  time_ns min_down = 1 * 1000 * 1000;
  time_ns max_down = 30 * 1000 * 1000;
  /// Relative weight of each fault family (index = fault_family). A zero
  /// weight disables the family; migration is additionally capped at one
  /// unit per plan.
  double weights[fault_family_count] = {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  /// Blackout storms: per-process recovery skew U[0, recovery_skew] on top
  /// of the common downtime (clock-skewed recovery storms).
  time_ns recovery_skew = 2 * 1000 * 1000;
  /// Probability a blackout takes down every shard at once (correlated
  /// system-wide storm) instead of one shard.
  double blackout_fleet_wide = 0.5;
  /// Gray links: extra delay U[0, gray_max_delay], loss U[0, gray_max_loss].
  time_ns gray_max_delay = 5 * 1000 * 1000;
  double gray_max_loss = 0.8;
};

/// Generates a well-formed plan mixing fault families by weight. When
/// `explored` is given, family weights are divided by 1 + its family_runs
/// share, biasing generation toward under-explored families.
[[nodiscard]] scenario_plan make_adversarial_plan(const adversarial_config& cfg, rng& r,
                                                  const scenario_coverage* explored = nullptr);

// ---- Minimization ------------------------------------------------------------

/// Returns true when the candidate plan still reproduces the failure.
using plan_predicate = std::function<bool(const scenario_plan&)>;

/// Delta-debugging minimization of a failing plan: greedily drop whole fault
/// units, then drop crash/recover pairs inside multi-process units, then
/// shrink fault windows (move recovers/heals earlier) — every kept candidate
/// is well-formed and still satisfies `fails`. The input plan must fail.
[[nodiscard]] scenario_plan minimize_plan(const scenario_plan& failing,
                                          const plan_predicate& fails);

}  // namespace remus::sim
