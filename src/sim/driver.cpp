#include "sim/driver.h"

#include <algorithm>

namespace remus::sim {

void sequential_driver::run_indexed(std::uint32_t count,
                                    const std::function<void(std::uint32_t)>& fn) {
  for (std::uint32_t i = 0; i < count; ++i) fn(i);
}

threaded_driver::threaded_driver(std::uint32_t workers)
    : workers_(std::max<std::uint32_t>(workers, 2)) {
  threads_.reserve(workers_ - 1);
  for (std::uint32_t i = 0; i + 1 < workers_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

threaded_driver::~threaded_driver() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void threaded_driver::work() {
  // Claim-loop: one index at a time under the lock, fn outside it. Shards
  // are coarse units (a whole event-queue chunk each), so the lock is cold.
  std::unique_lock lk(mu_);
  while (next_ < count_) {
    const std::uint32_t i = next_++;
    const auto* fn = fn_;
    ++inflight_;
    lk.unlock();
    try {
      (*fn)(i);
    } catch (...) {
      lk.lock();
      if (!error_) error_ = std::current_exception();
      --inflight_;
      continue;
    }
    lk.lock();
    --inflight_;
  }
}

void threaded_driver::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lk(mu_);
      start_cv_.wait(lk, [&] { return stop_ || round_ != seen; });
      if (stop_) return;
      seen = round_;
    }
    work();
    {
      std::lock_guard lk(mu_);
      if (next_ >= count_ && inflight_ == 0) done_cv_.notify_all();
    }
  }
}

void threaded_driver::run_indexed(std::uint32_t count,
                                  const std::function<void(std::uint32_t)>& fn) {
  if (count == 0) return;
  if (count == 1) {
    fn(0);  // nothing to parallelize; skip the round-trip
    return;
  }
  {
    std::lock_guard lk(mu_);
    count_ = count;
    fn_ = &fn;
    next_ = 0;
    inflight_ = 0;
    error_ = nullptr;
    ++round_;
  }
  start_cv_.notify_all();
  work();  // the caller is a worker too
  std::unique_lock lk(mu_);
  done_cv_.wait(lk, [&] { return next_ >= count_ && inflight_ == 0; });
  fn_ = nullptr;
  if (error_) {
    auto e = error_;
    error_ = nullptr;
    lk.unlock();
    std::rethrow_exception(e);
  }
}

std::unique_ptr<shard_driver> make_shard_driver(std::uint32_t workers) {
  if (workers <= 1) return std::make_unique<sequential_driver>();
  return std::make_unique<threaded_driver>(workers);
}

}  // namespace remus::sim
