#include "sim/disk_model.h"

#include <algorithm>

namespace remus::sim {

time_ns disk_model::issue(time_ns now, std::size_t size_bytes) {
  time_ns service = cfg_.base_latency;
  if (cfg_.bandwidth_bps > 0) {
    // Record sizes repeat run-long; memoize the last transfer time to keep
    // the 128-bit division off the per-store path (result is bit-identical).
    if (size_bytes != memo_size_) {
      memo_size_ = size_bytes;
      memo_transfer_ = static_cast<time_ns>(
          (static_cast<__int128>(size_bytes) * 1'000'000'000) / cfg_.bandwidth_bps);
    }
    service += memo_transfer_;
  }
  const time_ns start = std::max(now, free_at_);
  free_at_ = start + service;
  ++issued_;
  return free_at_;
}

}  // namespace remus::sim
