#include "sim/disk_model.h"

#include <algorithm>

namespace remus::sim {

time_ns disk_model::issue(time_ns now, std::size_t size_bytes) {
  time_ns service = cfg_.base_latency;
  if (cfg_.bandwidth_bps > 0) {
    service += static_cast<time_ns>(
        (static_cast<__int128>(size_bytes) * 1'000'000'000) / cfg_.bandwidth_bps);
  }
  const time_ns start = std::max(now, free_at_);
  free_at_ = start + service;
  ++issued_;
  return free_at_;
}

}  // namespace remus::sim
