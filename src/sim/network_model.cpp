#include "sim/network_model.h"

#include <algorithm>

namespace remus::sim {

bool network_model::link_cut(process_id from, process_id to) const {
  return std::find(cut_.begin(), cut_.end(), std::make_pair(from, to)) != cut_.end();
}

void network_model::cut_link(process_id from, process_id to) {
  if (!link_cut(from, to)) cut_.emplace_back(from, to);
}

void network_model::restore_link(process_id from, process_id to) {
  cut_.erase(std::remove(cut_.begin(), cut_.end(), std::make_pair(from, to)),
             cut_.end());
}

void network_model::restore_all_links() { cut_.clear(); }

std::vector<delivery> network_model::route(time_ns now, process_id from,
                                           const std::vector<process_id>& tos,
                                           std::size_t size_bytes,
                                           std::uint8_t kind,
                                           std::uint64_t op_seq,
                                           std::uint32_t round) {
  std::vector<delivery> out;
  out.reserve(tos.size());

  // One serialization for the whole broadcast (IP multicast on a LAN).
  time_ns serialize = 0;
  if (cfg_.bandwidth_bps > 0) {
    serialize = static_cast<time_ns>(
        (static_cast<__int128>(size_bytes) * 1'000'000'000) / cfg_.bandwidth_bps);
  }
  bytes_ += size_bytes;

  for (const process_id to : tos) {
    const int copies =
        1 + (cfg_.duplicate_probability > 0 && rng_.chance(cfg_.duplicate_probability)
                 ? 1
                 : 0);
    for (int c = 0; c < copies; ++c) {
      ++routed_;
      if (link_cut(from, to)) {
        ++dropped_;
        continue;
      }
      std::optional<time_ns> forced;
      if (filter_) {
        const filter_verdict v =
            filter_(packet_info{from, to, size_bytes, kind, op_seq, round, now});
        if (v.drop) {
          ++dropped_;
          continue;
        }
        forced = v.deliver_at;
      }
      if (!forced && cfg_.drop_probability > 0 && rng_.chance(cfg_.drop_probability)) {
        ++dropped_;
        continue;
      }
      time_ns at;
      if (forced) {
        at = std::max(*forced, now);
      } else if (to == from) {
        at = now + cfg_.loopback_delay + (c > 0 ? 1 : 0);
      } else {
        const time_ns jit =
            cfg_.jitter > 0 ? static_cast<time_ns>(rng_.next_below(
                                  static_cast<std::uint64_t>(cfg_.jitter)))
                            : 0;
        at = now + serialize + cfg_.base_delay + jit + (c > 0 ? 1 : 0);
      }
      out.push_back(delivery{to, at});
    }
  }
  return out;
}

}  // namespace remus::sim
