#include "sim/network_model.h"

#include <algorithm>

namespace remus::sim {

void network_model::cut_link(process_id from, process_id to) {
  cut_.insert(link_key(from, to));
}

void network_model::restore_link(process_id from, process_id to) {
  cut_.erase(link_key(from, to));
}

void network_model::restore_all_links() { cut_.clear(); }

void network_model::cut_pair(process_id a, process_id b) {
  cut_link(a, b);
  cut_link(b, a);
}

void network_model::restore_pair(process_id a, process_id b) {
  restore_link(a, b);
  restore_link(b, a);
}

void network_model::partition(const std::vector<std::vector<process_id>>& groups) {
  for (std::size_t i = 0; i < groups.size(); ++i) {
    for (std::size_t j = i + 1; j < groups.size(); ++j) {
      for (const process_id a : groups[i]) {
        for (const process_id b : groups[j]) cut_pair(a, b);
      }
    }
  }
}

void network_model::route(time_ns now, process_id from,
                          const std::vector<process_id>& tos,
                          std::size_t size_bytes, std::uint8_t kind,
                          std::uint64_t op_seq, std::uint32_t round,
                          std::vector<delivery>& out) {
  // One serialization for the whole broadcast (IP multicast on a LAN).
  // Wire sizes cycle through a handful of values, so a two-entry memo keeps
  // the 128-bit division off the per-message path (bit-identical results).
  time_ns serialize = 0;
  if (cfg_.bandwidth_bps > 0) {
    if (size_bytes == memo_size_[0]) {
      serialize = memo_serialize_[0];
    } else if (size_bytes == memo_size_[1]) {
      serialize = memo_serialize_[1];
    } else {
      serialize = static_cast<time_ns>(
          (static_cast<__int128>(size_bytes) * 1'000'000'000) / cfg_.bandwidth_bps);
      memo_size_[1] = memo_size_[0];
      memo_serialize_[1] = memo_serialize_[0];
      memo_size_[0] = size_bytes;
      memo_serialize_[0] = serialize;
    }
  }
  bytes_ += size_bytes;

  for (const process_id to : tos) {
    const int copies =
        1 + (cfg_.duplicate_probability > 0 && rng_.chance(cfg_.duplicate_probability)
                 ? 1
                 : 0);
    for (int c = 0; c < copies; ++c) {
      ++routed_;
      if (link_cut(from, to)) {
        ++dropped_;
        continue;
      }
      std::optional<time_ns> forced;
      if (filter_) {
        const filter_verdict v =
            filter_(packet_info{from, to, size_bytes, kind, op_seq, round, now});
        if (v.drop) {
          ++dropped_;
          continue;
        }
        forced = v.deliver_at;
      }
      if (!forced && cfg_.drop_probability > 0 && rng_.chance(cfg_.drop_probability)) {
        ++dropped_;
        continue;
      }
      time_ns at;
      if (forced) {
        at = std::max(*forced, now);
      } else if (to == from) {
        at = now + cfg_.loopback_delay + (c > 0 ? 1 : 0);
      } else {
        const time_ns jit =
            cfg_.jitter > 0 ? static_cast<time_ns>(rng_.next_below(
                                  static_cast<std::uint64_t>(cfg_.jitter)))
                            : 0;
        at = now + serialize + cfg_.base_delay + jit + (c > 0 ? 1 : 0);
      }
      out.push_back(delivery{to, at});
    }
  }
}

}  // namespace remus::sim
