// Crash/recovery fault schedules.
//
// The paper's model (section II) allows every process to crash, even all at
// once, as long as eventually a majority stays up long enough for pending
// operations to finish. A fault_plan is a list of timed crash/recover
// events; generators build randomized plans that respect the
// eventually-correct-majority assumption so property tests always terminate.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"

namespace remus::sim {

enum class fault_kind : std::uint8_t { crash, recover };

struct fault_event {
  time_ns at = 0;
  fault_kind kind = fault_kind::crash;
  process_id target;
};

struct fault_plan {
  std::vector<fault_event> events;  // sorted by time

  void add_crash(time_ns at, process_id p) {
    events.push_back({at, fault_kind::crash, p});
  }
  void add_recover(time_ns at, process_id p) {
    events.push_back({at, fault_kind::recover, p});
  }
  void sort();

  /// Validates alternation per process (crash, recover, crash, ...).
  [[nodiscard]] bool well_formed(std::uint32_t n) const;

  /// True if after the last event every process is up (the strongest form of
  /// "eventually a majority is permanently up").
  [[nodiscard]] bool all_up_eventually(std::uint32_t n) const;
};

struct random_plan_config {
  std::uint32_t n = 5;
  /// Number of crash events to generate in total.
  std::uint32_t crashes = 4;
  /// Window in which crashes may happen.
  time_ns horizon = 0;
  /// How long a crashed process stays down: U[min_down, max_down].
  time_ns min_down = 0;
  time_ns max_down = 0;
  /// If true, may crash a majority (or everyone) simultaneously; recovery
  /// still brings everyone back by the end.
  bool allow_majority_crash = true;
};

/// Generates a well-formed plan where every crash has a matching recovery
/// and all processes are up after `horizon + max_down`.
[[nodiscard]] fault_plan make_random_plan(const random_plan_config& cfg, rng& r);

/// Crashes every process at `at` and recovers all of them at `at + down`
/// (the paper's "all crash, possibly at the same time" scenario). A nonzero
/// `skew_step` staggers recovery: process i comes back at
/// `at + down + i * skew_step`, so recovery reassembles the majority one
/// process at a time from stable storage alone.
[[nodiscard]] fault_plan make_blackout_plan(std::uint32_t n, time_ns at, time_ns down,
                                            time_ns skew_step = 0);

}  // namespace remus::sim
