#include "sim/fault_plan.h"

#include <algorithm>

namespace remus::sim {

void fault_plan::sort() {
  std::stable_sort(events.begin(), events.end(),
                   [](const fault_event& a, const fault_event& b) { return a.at < b.at; });
}

bool fault_plan::well_formed(std::uint32_t n) const {
  std::vector<bool> down(n, false);
  time_ns prev = 0;
  for (const auto& e : events) {
    if (e.at < prev) return false;
    prev = e.at;
    if (e.target.index >= n) return false;
    const bool is_down = down[e.target.index];
    if (e.kind == fault_kind::crash) {
      if (is_down) return false;
      down[e.target.index] = true;
    } else {
      if (!is_down) return false;
      down[e.target.index] = false;
    }
  }
  return true;
}

bool fault_plan::all_up_eventually(std::uint32_t n) const {
  std::vector<bool> down(n, false);
  for (const auto& e : events) down[e.target.index] = (e.kind == fault_kind::crash);
  return std::none_of(down.begin(), down.end(), [](bool d) { return d; });
}

fault_plan make_random_plan(const random_plan_config& cfg, rng& r) {
  fault_plan plan;
  std::vector<time_ns> down_until(cfg.n, -1);
  const std::uint32_t majority = cfg.n / 2 + 1;

  for (std::uint32_t i = 0; i < cfg.crashes; ++i) {
    const time_ns at = r.next_in(0, cfg.horizon);
    const process_id p{static_cast<std::uint32_t>(r.next_below(cfg.n))};
    if (down_until[p.index] >= at) continue;  // already down around this time

    if (!cfg.allow_majority_crash) {
      // Keep a majority alive at every instant: count overlapping downtimes.
      std::uint32_t down_now = 0;
      for (std::uint32_t q = 0; q < cfg.n; ++q) {
        if (q != p.index && down_until[q] >= at) ++down_now;
      }
      if (down_now + 1 > cfg.n - majority) continue;
    }

    const time_ns down =
        cfg.max_down > cfg.min_down ? r.next_in(cfg.min_down, cfg.max_down) : cfg.min_down;
    plan.add_crash(at, p);
    plan.add_recover(at + down + 1, p);
    down_until[p.index] = at + down + 1;
  }
  plan.sort();
  return plan;
}

fault_plan make_blackout_plan(std::uint32_t n, time_ns at, time_ns down,
                              time_ns skew_step) {
  fault_plan plan;
  for (std::uint32_t i = 0; i < n; ++i) plan.add_crash(at, process_id{i});
  for (std::uint32_t i = 0; i < n; ++i) {
    plan.add_recover(at + down + static_cast<time_ns>(i) * skew_step, process_id{i});
  }
  plan.sort();
  return plan;
}

}  // namespace remus::sim
