// Deterministic discrete-event queue: the heart of the simulated
// asynchronous system. Events at equal timestamps run in insertion order,
// so a run is a pure function of (configuration, seed).
//
// Implementation notes (this is the hottest structure in the repo):
//   * Events are a tagged union (sim_event) executed in place via the
//     sim_executor interface — no per-event closure allocation, no move of
//     the payload between scheduling and execution.
//   * Three bands split traffic by horizon, hierarchical-timing-wheel
//     style. Short-horizon events (protocol messages, disk completions —
//     the churn) go to a calendar ring: 4096 one-microsecond buckets with
//     an occupancy bitmap, giving O(1) insert and pop instead of heap
//     sifts. Longer-dated events (retransmission timers, mostly — the bulk
//     of *pending* events) go to a level-2 wheel of ~1 ms buckets whose
//     contents cascade into the ring just before the clock reaches them;
//     multi-second schedules (fault plans) land in an overflow min-heap.
//     Every event is popped from the ring in (timestamp, insertion-seq)
//     order, so the schedule is exactly the single-queue order.
//   * Payloads live in generation-stamped slots with stable addresses
//     (chunked arena); a token packs (slot, generation), making cancel() an
//     O(1) validity check plus a cheap removal. The old implementation
//     scanned a cancelled-token vector on every step.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/time.h"
#include "sim/sim_event.h"

namespace remus::sim {

class event_queue {
 public:
  using action = std::function<void()>;

  /// Token identifying a scheduled event, usable for cancellation.
  using token = std::uint64_t;

  /// Install the executor for typed (non-thunk) events. Must be set before
  /// any typed event fires; thunk-only users may skip it.
  void set_executor(sim_executor* ex) noexcept { executor_ = ex; }

  /// Schedule a typed event at absolute time `at` (must be >= now()).
  token schedule_event(time_ns at, sim_event ev);
  token schedule_event_after(time_ns delay, sim_event ev) {
    return schedule_event(now_ + delay, std::move(ev));
  }

  // In-place typed scheduling: fills exactly the fields the kind's handler
  // reads, so the hot path never constructs or moves a full sim_event.

  /// message delivery: shares `m`'s payload by refcount.
  token schedule_message(time_ns at, process_id target,
                         const proto::shared_message& m) {
    const auto [idx, s] = acquire_slot(at);
    s->ev.kind = event_kind::message;
    s->ev.target = target;
    s->ev.msg = m;
    return commit(at, idx);
  }
  token schedule_message(time_ns at, process_id target, proto::shared_message&& m) {
    const auto [idx, s] = acquire_slot(at);
    s->ev.kind = event_kind::message;
    s->ev.target = target;
    s->ev.msg = std::move(m);
    return commit(at, idx);
  }

  /// log_done: completion `tok` for `target`, guarded by `incarnation`.
  /// The record (and the piggybacked obsolete-key list) is copied into the
  /// slot's retained buffers (the caller's buffer is a recycled effect
  /// slot — both sides keep their capacity). `obsoletes` must be assigned
  /// even when empty: retired slots keep stale contents.
  token schedule_log_done(time_ns at, process_id target, std::uint64_t tok,
                          std::uint64_t incarnation, storage::record_key key,
                          const bytes& record,
                          std::span<const storage::record_key> obsoletes = {}) {
    const auto [idx, s] = acquire_slot(at);
    s->ev.kind = event_kind::log_done;
    s->ev.target = target;
    s->ev.a = tok;
    s->ev.incarnation = incarnation;
    s->ev.log_key = key;
    s->ev.log_record = record;
    s->ev.log_obsoletes.assign(obsoletes.begin(), obsoletes.end());
    return commit(at, idx);
  }

  /// timer / op_dispatch / crash / recover: POD payloads only.
  token schedule_plain(time_ns at, event_kind k, process_id target,
                       std::uint64_t a = no_event_arg,
                       std::uint64_t incarnation = no_event_arg) {
    const auto [idx, s] = acquire_slot(at);
    s->ev.kind = k;
    s->ev.target = target;
    s->ev.a = a;
    s->ev.incarnation = incarnation;
    return commit(at, idx);
  }

  /// Schedule `fn` at absolute time `at` (generic-thunk fallback).
  token schedule_at(time_ns at, action fn) {
    sim_event ev;
    ev.kind = event_kind::thunk;
    ev.fn = std::move(fn);
    return schedule_event(at, std::move(ev));
  }

  /// Schedule `fn` `delay` after now().
  token schedule_after(time_ns delay, action fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a scheduled event; returns false if it already ran or was
  /// cancelled before. Cancellation is eager: the event leaves the queue
  /// immediately (pending() drops, and empty() may become true).
  bool cancel(token t);

  /// Run the next event; returns false when the queue is empty.
  /// Not reentrant: an executing event must not call step()/run().
  bool step();

  /// Run events until the queue drains or `limit` events executed.
  /// Returns the number of events executed.
  std::uint64_t run(std::uint64_t limit = ~0ULL);

  /// Run events with timestamp <= deadline (inclusive); later events stay.
  std::uint64_t run_until(time_ns deadline);

  [[nodiscard]] time_ns now() const noexcept { return now_; }
  /// Lower bound on the earliest pending event's timestamp: exact when an
  /// imminent (calendar-ring) event exists, a bucket-start bound for
  /// wheel/overflow events, and time_ns's max when the queue is empty.
  /// Read-only (no cascade happens). The shard router uses it to advance
  /// independent clusters' clocks in merged virtual-time order.
  [[nodiscard]] time_ns next_time() const;
  [[nodiscard]] bool empty() const noexcept {
    return ring_count_ == 0 && w2_count_ == 0 && far_.empty();
  }
  [[nodiscard]] std::size_t pending() const noexcept {
    return ring_count_ + w2_count_ + far_.size();
  }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  static constexpr std::uint32_t npos = ~0u;
  static constexpr std::uint32_t far_flag = 0x8000'0000u;
  static constexpr std::uint32_t w2_flag = 0x4000'0000u;
  static constexpr std::uint32_t chunk_shift = 8;  // 256 slots per chunk
  static constexpr std::uint32_t chunk_size = 1u << chunk_shift;

  // Calendar ring: 4096 buckets of 2^10 ns (~1 us) cover ~4.2 ms. Direct
  // schedules land in the ring only when closer than far_horizon, but the
  // wheel cascade can add events up to one wheel bucket past the horizon,
  // so the real aliasing bound is far_horizon + 2^w2_shift < ring span
  // (checked below).
  static constexpr std::uint32_t bucket_shift = 10;
  static constexpr time_ns bucket_ns = time_ns{1} << bucket_shift;
  static constexpr std::uint32_t ring_size = 4096;  // power of two
  static constexpr time_ns far_horizon = bucket_ns * (ring_size / 2);

  // Level-2 wheel: 4096 buckets of 2^20 ns (~1 ms) cover ~4.3 s; events
  // within half that horizon go here, later ones to the overflow heap.
  // Buckets are unsorted append-only; the cascade into the (sorting) ring
  // happens before the flush boundary — now() + far_horizon — passes them.
  static constexpr std::uint32_t w2_shift = 20;
  static constexpr std::uint32_t w2_size = 4096;  // power of two
  static constexpr time_ns w2_horizon = (time_ns{1} << w2_shift) * (w2_size / 2);

  // Masked ring indices stay unambiguous only while every queued ring event
  // is within one ring span of now(); cascaded events reach at most
  // far_horizon + one wheel bucket.
  static_assert(far_horizon + (time_ns{1} << w2_shift) < bucket_ns * ring_size);

  struct slot {
    std::uint32_t gen = 1;  // stamped into tokens; bumped on retire
    /// npos = not queued; far_flag|pos = overflow-heap position;
    /// w2_flag|bucket = level-2 wheel bucket; else the masked ring bucket.
    std::uint32_t heap_pos = npos;
    sim_event ev{};
  };

  /// Queue entries carry their sort key inline so ordering never chases the
  /// slot table (these comparisons are the hottest loads in the simulator).
  struct heap_entry {
    time_ns at = 0;
    std::uint64_t seq = 0;  // insertion order: ties run first-scheduled
    std::uint32_t idx = 0;  // slot holding the payload
  };

  /// One ring bucket: entries sorted by (at, seq), consumed from `head`.
  struct bucket {
    std::vector<heap_entry> v;
    std::uint32_t head = 0;
  };

  [[nodiscard]] static bool before(const heap_entry& a, const heap_entry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  [[nodiscard]] slot& slot_at(std::uint32_t idx) {
    return chunks_[idx >> chunk_shift][idx & (chunk_size - 1)];
  }

  /// Take a free slot for an event at `at` (throws on past times). Retired
  /// slots are guaranteed to hold no closure and no message reference, so
  /// typed fillers only assign the fields their kind's handler reads.
  std::pair<std::uint32_t, slot*> acquire_slot(time_ns at) {
    if (at < now_) throw driver_error("event_queue: scheduling into the past");
    std::uint32_t idx;
    if (free_.empty()) {
      if ((slot_count_ & (chunk_size - 1)) == 0) {
        chunks_.push_back(std::make_unique<slot[]>(chunk_size));
      }
      idx = slot_count_++;
    } else {
      idx = free_.back();
      free_.pop_back();
    }
    return {idx, &slot_at(idx)};
  }

  /// Insert the acquired slot into its band; returns its token.
  token commit(time_ns at, std::uint32_t idx) {
    const heap_entry e{at, next_seq_++, idx};
    slot& s = slot_at(idx);
    const time_ns delta = at - now_;
    if (delta < far_horizon ||
        (static_cast<std::uint64_t>(at) >> w2_shift) < w2_flushed_) {
      // Imminent — or its wheel bucket already cascaded (the flush boundary
      // sits inside it), which still keeps it within the ring's safe span.
      ring_insert(e, s);
    } else {
      commit_far(e, s, delta);
    }
    return (static_cast<std::uint64_t>(idx) << 32) | s.gen;
  }
  void commit_far(const heap_entry& e, slot& s, time_ns delta);

  void far_sift_up(std::uint32_t pos, heap_entry e);
  void far_sift_down(std::uint32_t pos, heap_entry e);
  void far_remove(std::uint32_t pos);
  /// Masked index of the first occupied ring bucket at or after now();
  /// call only when ring_count_ > 0.
  [[nodiscard]] std::uint32_t first_bucket() const;
  void ring_insert(const heap_entry& e, slot& s);
  void pop_bucket(std::uint32_t b);
  /// Cascade wheel/overflow events whose time precedes now() + far_horizon
  /// into the ring (they become ring-eligible as the clock approaches).
  /// The fast path is one compare against the cached due time.
  void maybe_flush() {
    if (now_ >= flush_due_) advance_flush();
  }
  void advance_flush();
  /// With the ring empty, fast-forward now() to the next band's first event
  /// (invisible: no event runs in the gap) and cascade it in. Returns that
  /// time. Call only when w2_count_ + far_.size() > 0.
  time_ns jump_to_next_band();
  /// Earliest possible event time in wheel/overflow (bucket-start lower
  /// bound for the wheel; exact for the overflow heap).
  [[nodiscard]] time_ns next_band_time() const;
  void retire(std::uint32_t idx);
  void execute_slot(std::uint32_t idx);

  std::vector<std::unique_ptr<slot[]>> chunks_;  // stable slot storage
  std::uint32_t slot_count_ = 0;
  std::vector<bucket> ring_{ring_size};
  std::array<std::uint64_t, ring_size / 64> occupied_{};
  std::size_t ring_count_ = 0;
  std::vector<bucket> w2_{w2_size};  // level-2 wheel (head unused; unsorted)
  std::array<std::uint64_t, w2_size / 64> w2_occupied_{};
  std::size_t w2_count_ = 0;
  std::uint64_t w2_flushed_ = 0;     // absolute bucket: all before are empty
  std::vector<heap_entry> far_;      // 4-ary min-heap, multi-second overflow
  std::vector<std::uint32_t> free_;  // recycled slot indices
  sim_executor* executor_ = nullptr;
  /// Earliest now() at which a cascade could matter; never above the true
  /// due time (stale-low just triggers a recompute). Maintained by
  /// advance_flush() and lowered by far-heap inserts.
  time_ns flush_due_ = 0;
  time_ns now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace remus::sim
