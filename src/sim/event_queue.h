// Deterministic discrete-event queue: the heart of the simulated
// asynchronous system. Events at equal timestamps run in insertion order,
// so a run is a pure function of (configuration, seed).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/error.h"
#include "common/time.h"

namespace remus::sim {

class event_queue {
 public:
  using action = std::function<void()>;

  /// Token identifying a scheduled event, usable for cancellation.
  using token = std::uint64_t;

  /// Schedule `fn` at absolute time `at` (must be >= now()).
  token schedule_at(time_ns at, action fn);

  /// Schedule `fn` `delay` after now().
  token schedule_after(time_ns delay, action fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a scheduled event; returns false if it already ran or was
  /// cancelled before.
  bool cancel(token t);

  /// Run the next event; returns false when the queue is empty.
  bool step();

  /// Run events until the queue drains or `limit` events executed.
  /// Returns the number of events executed.
  std::uint64_t run(std::uint64_t limit = ~0ULL);

  /// Run events with timestamp <= deadline (inclusive); later events stay.
  std::uint64_t run_until(time_ns deadline);

  [[nodiscard]] time_ns now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
  [[nodiscard]] std::size_t pending() const noexcept { return live_; }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct entry {
    time_ns at;
    token id;
    action fn;  // empty when cancelled

    friend bool operator>(const entry& a, const entry& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  // Cancellation marks the id in `cancelled_`; entries are lazily skipped.
  std::priority_queue<entry, std::vector<entry>, std::greater<>> heap_;
  std::vector<token> cancelled_;
  time_ns now_ = 0;
  token next_id_ = 1;
  std::size_t live_ = 0;
  std::uint64_t executed_ = 0;

  [[nodiscard]] bool is_cancelled(token t) const;
};

}  // namespace remus::sim
