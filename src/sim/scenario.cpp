#include "sim/scenario.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace remus::sim {

const char* to_string(fault_family f) {
  switch (f) {
    case fault_family::crash_recover: return "crash_recover";
    case fault_family::blackout: return "blackout";
    case fault_family::partition: return "partition";
    case fault_family::gray_link: return "gray_link";
    case fault_family::migration: return "migration";
    case fault_family::corrupt_tail: return "corrupt_tail";
    case fault_family::lease: return "lease";
  }
  return "?";
}

void scenario_plan::sort() {
  std::stable_sort(events.begin(), events.end(),
                   [](const scenario_event& a, const scenario_event& b) {
                     return a.at < b.at;
                   });
}

bool scenario_plan::well_formed() const {
  if (shards == 0 || n == 0 || n > 31) return false;
  // down[s*n + p]: crash/recover alternation state.
  std::vector<bool> down(static_cast<std::size_t>(shards) * n, false);
  // Outstanding cut/gray windows per shard (healed by the shard's next heal).
  std::vector<std::uint32_t> unhealed(shards, 0);
  std::uint32_t migrations = 0;
  time_ns prev = 0;
  for (const scenario_event& e : events) {
    if (e.at < prev) return false;
    prev = e.at;
    if (e.shard >= shards) return false;
    switch (e.kind) {
      case scenario_kind::crash:
      case scenario_kind::corrupt_crash:
      case scenario_kind::recover: {
        if (!e.target.valid() || e.target.index >= n) return false;
        const std::size_t i = static_cast<std::size_t>(e.shard) * n + e.target.index;
        const bool crashing = e.kind != scenario_kind::recover;
        if (down[i] == crashing) return false;  // double crash / spurious recover
        down[i] = crashing;
        break;
      }
      case scenario_kind::cut: {
        const std::uint32_t all = (1u << n) - 1;
        if (e.group_mask == 0 || (e.group_mask & ~all) != 0 || e.group_mask == all) {
          return false;  // must isolate a non-empty proper subset
        }
        unhealed[e.shard] += 1;
        break;
      }
      case scenario_kind::gray: {
        if (!e.target.valid() || e.target.index >= n) return false;
        if (!e.peer.valid() || e.peer.index >= n) return false;
        if (e.target == e.peer) return false;
        if (e.loss < 0.0 || e.loss >= 1.0) return false;  // stay fair-lossy
        if (e.extra_delay < 0) return false;
        unhealed[e.shard] += 1;
        break;
      }
      case scenario_kind::heal:
        unhealed[e.shard] = 0;  // heals every open cut and gray of the shard
        break;
      case scenario_kind::begin_migration:
        if (++migrations > 1) return false;
        break;
    }
  }
  // The eventually-correct-majority tail: everyone up, every link clean.
  if (std::any_of(down.begin(), down.end(), [](bool d) { return d; })) return false;
  return std::all_of(unhealed.begin(), unhealed.end(),
                     [](std::uint32_t u) { return u == 0; });
}

std::size_t scenario_plan::unit_count() const {
  std::vector<std::uint32_t> units;
  units.reserve(events.size());
  for (const scenario_event& e : events) units.push_back(e.unit);
  std::sort(units.begin(), units.end());
  units.erase(std::unique(units.begin(), units.end()), units.end());
  return units.size();
}

// ---- Repro codec -------------------------------------------------------------

namespace {

std::uint64_t loss_bits(double loss) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(loss));
  std::memcpy(&bits, &loss, sizeof(bits));
  return bits;
}

double loss_from_bits(std::uint64_t bits) {
  double loss = 0.0;
  std::memcpy(&loss, &bits, sizeof(bits));
  return loss;
}

std::uint64_t parse_u64(const std::string& tok) {
  std::size_t used = 0;
  const std::uint64_t v = std::stoull(tok, &used);
  if (used != tok.size()) throw std::invalid_argument("scenario: bad number " + tok);
  return v;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

}  // namespace

std::string encode(const scenario_plan& plan) {
  std::ostringstream os;
  os << "v1;" << plan.shards << ',' << plan.n;
  for (const scenario_event& e : plan.events) {
    os << ';' << static_cast<int>(e.kind) << ',' << e.at << ','
       << static_cast<int>(e.family) << ',' << e.unit << ',' << e.shard << ','
       << e.target.index << ',' << e.peer.index << ',' << e.group_mask << ','
       << e.extra_delay << ',' << loss_bits(e.loss);
  }
  return os.str();
}

scenario_plan decode_plan(const std::string& line) {
  const std::vector<std::string> parts = split(line, ';');
  if (parts.size() < 2 || parts[0] != "v1") {
    throw std::invalid_argument("scenario: bad repro header");
  }
  const std::vector<std::string> topo = split(parts[1], ',');
  if (topo.size() != 2) throw std::invalid_argument("scenario: bad topology");
  scenario_plan plan;
  plan.shards = static_cast<std::uint32_t>(parse_u64(topo[0]));
  plan.n = static_cast<std::uint32_t>(parse_u64(topo[1]));
  for (std::size_t i = 2; i < parts.size(); ++i) {
    const std::vector<std::string> f = split(parts[i], ',');
    if (f.size() != 10) throw std::invalid_argument("scenario: bad event " + parts[i]);
    scenario_event e;
    const std::uint64_t kind = parse_u64(f[0]);
    if (kind > static_cast<std::uint64_t>(scenario_kind::corrupt_crash)) {
      throw std::invalid_argument("scenario: bad event kind");
    }
    e.kind = static_cast<scenario_kind>(kind);
    e.at = static_cast<time_ns>(parse_u64(f[1]));
    const std::uint64_t fam = parse_u64(f[2]);
    if (fam >= fault_family_count) throw std::invalid_argument("scenario: bad family");
    e.family = static_cast<fault_family>(fam);
    e.unit = static_cast<std::uint32_t>(parse_u64(f[3]));
    e.shard = static_cast<std::uint32_t>(parse_u64(f[4]));
    e.target = process_id{static_cast<std::uint32_t>(parse_u64(f[5]))};
    e.peer = process_id{static_cast<std::uint32_t>(parse_u64(f[6]))};
    e.group_mask = static_cast<std::uint32_t>(parse_u64(f[7]));
    e.extra_delay = static_cast<time_ns>(parse_u64(f[8]));
    e.loss = loss_from_bits(parse_u64(f[9]));
    plan.events.push_back(e);
  }
  return plan;
}

// ---- Coverage ----------------------------------------------------------------

void scenario_coverage::merge(const scenario_coverage& o) {
  for (std::size_t f = 0; f < fault_family_count; ++f) {
    family_events[f] += o.family_events[f];
    family_runs[f] += o.family_runs[f];
    for (std::size_t g = 0; g < fault_family_count; ++g) {
      overlap_pairs[f][g] += o.overlap_pairs[f][g];
    }
  }
  adoptions += o.adoptions;
  stale_updates += o.stale_updates;
  adopt_splits += o.adopt_splits;
  retransmits += o.retransmits;
  retransmit_trims += o.retransmit_trims;
  recovery_finish_writes += o.recovery_finish_writes;
  handoff_writes += o.handoff_writes;
  handoff_drains += o.handoff_drains;
  handoff_writebacks += o.handoff_writebacks;
  handoff_lease_drops += o.handoff_lease_drops;
  leased_read_hits += o.leased_read_hits;
  lease_grants += o.lease_grants;
  lease_invalidations += o.lease_invalidations;
  lease_expiries += o.lease_expiries;
}

std::string scenario_coverage::to_string() const {
  std::ostringstream os;
  os << "families:";
  for (std::size_t f = 0; f < fault_family_count; ++f) {
    os << ' ' << sim::to_string(static_cast<fault_family>(f)) << '='
       << family_runs[f] << '(' << family_events[f] << "ev)";
  }
  os << "\noverlaps:";
  for (std::size_t a = 0; a < fault_family_count; ++a) {
    for (std::size_t b = a; b < fault_family_count; ++b) {
      if (overlap_pairs[a][b] == 0) continue;
      os << ' ' << sim::to_string(static_cast<fault_family>(a)) << 'x'
         << sim::to_string(static_cast<fault_family>(b)) << '='
         << overlap_pairs[a][b];
    }
  }
  os << "\nbranches: adoptions=" << adoptions << " stale=" << stale_updates
     << " adopt_splits=" << adopt_splits << " retransmits=" << retransmits
     << " trims=" << retransmit_trims
     << " recovery_finish_writes=" << recovery_finish_writes
     << " handoffs(write/drain/writeback)=" << handoff_writes << '/'
     << handoff_drains << '/' << handoff_writebacks
     << " lease(grants/hits/invalidations/expiries/handoff_drops)="
     << lease_grants << '/' << leased_read_hits << '/' << lease_invalidations
     << '/' << lease_expiries << '/' << handoff_lease_drops;
  return os.str();
}

void accumulate_plan_coverage(const scenario_plan& plan, scenario_coverage& cov) {
  struct window {
    fault_family family;
    time_ns lo = 0;
    time_ns hi = 0;
  };
  std::vector<window> windows;  // one per unit: [first event, last event]
  bool seen_family[fault_family_count] = {};
  for (const scenario_event& e : plan.events) {
    cov.family_events[static_cast<std::size_t>(e.family)] += 1;
    seen_family[static_cast<std::size_t>(e.family)] = true;
  }
  // Unit windows: min/max event time per unit id.
  std::vector<std::uint32_t> unit_ids;
  for (const scenario_event& e : plan.events) unit_ids.push_back(e.unit);
  std::sort(unit_ids.begin(), unit_ids.end());
  unit_ids.erase(std::unique(unit_ids.begin(), unit_ids.end()), unit_ids.end());
  for (const std::uint32_t u : unit_ids) {
    window w{fault_family::crash_recover, 0, 0};
    bool first = true;
    for (const scenario_event& e : plan.events) {
      if (e.unit != u) continue;
      if (first) {
        w = {e.family, e.at, e.at};
        first = false;
      } else {
        w.lo = std::min(w.lo, e.at);
        w.hi = std::max(w.hi, e.at);
      }
    }
    if (!first) windows.push_back(w);
  }
  for (std::size_t f = 0; f < fault_family_count; ++f) {
    if (seen_family[f]) cov.family_runs[f] += 1;
  }
  for (std::size_t i = 0; i < windows.size(); ++i) {
    for (std::size_t j = i + 1; j < windows.size(); ++j) {
      if (windows[i].hi < windows[j].lo || windows[j].hi < windows[i].lo) continue;
      std::size_t a = static_cast<std::size_t>(windows[i].family);
      std::size_t b = static_cast<std::size_t>(windows[j].family);
      if (a > b) std::swap(a, b);
      cov.overlap_pairs[a][b] += 1;
    }
  }
}

// ---- Generation --------------------------------------------------------------

namespace {

scenario_event timed_event(time_ns at, scenario_kind kind, fault_family family,
                           std::uint32_t unit, std::uint32_t shard,
                           process_id target = no_process) {
  scenario_event e;
  e.at = at;
  e.kind = kind;
  e.family = family;
  e.unit = unit;
  e.shard = shard;
  e.target = target;
  return e;
}

}  // namespace

scenario_plan make_adversarial_plan(const adversarial_config& cfg, rng& r,
                                    const scenario_coverage* explored) {
  scenario_plan plan;
  plan.shards = cfg.shards;
  plan.n = cfg.n;

  // Coverage bias: deflate families the campaign already exercised a lot.
  double weights[fault_family_count];
  std::uint64_t total_runs = 0;
  if (explored != nullptr) {
    for (std::size_t f = 0; f < fault_family_count; ++f) {
      total_runs += explored->family_runs[f];
    }
  }
  for (std::size_t f = 0; f < fault_family_count; ++f) {
    weights[f] = cfg.weights[f];
    if (explored != nullptr && total_runs > 0) {
      const double share = static_cast<double>(explored->family_runs[f]) *
                           static_cast<double>(fault_family_count) /
                           static_cast<double>(total_runs);
      weights[f] /= 1.0 + share;
    }
  }
  if (cfg.n < 2) weights[static_cast<std::size_t>(fault_family::partition)] = 0;
  if (cfg.n < 2) weights[static_cast<std::size_t>(fault_family::gray_link)] = 0;

  // Per-process downtime and per-shard link-window bookkeeping keep the
  // generated plan well-formed by construction (alternation, matched heals).
  std::vector<time_ns> down_until(static_cast<std::size_t>(cfg.shards) * cfg.n, -1);
  std::vector<time_ns> link_until(cfg.shards, -1);
  bool migration_used = false;
  std::uint32_t unit = 0;

  const auto duration = [&]() -> time_ns {
    return cfg.max_down > cfg.min_down ? r.next_in(cfg.min_down, cfg.max_down)
                                       : cfg.min_down;
  };
  const auto pick_family = [&]() -> int {
    double total = 0;
    for (std::size_t f = 0; f < fault_family_count; ++f) {
      if (f == static_cast<std::size_t>(fault_family::migration) && migration_used) {
        continue;
      }
      total += weights[f];
    }
    if (total <= 0) return -1;
    double x = r.next_unit() * total;
    for (std::size_t f = 0; f < fault_family_count; ++f) {
      if (f == static_cast<std::size_t>(fault_family::migration) && migration_used) {
        continue;
      }
      x -= weights[f];
      if (x < 0) return static_cast<int>(f);
    }
    return static_cast<int>(fault_family_count) - 1;
  };

  for (std::uint32_t u = 0; u < cfg.units; ++u) {
    const int fam = pick_family();
    if (fam < 0) break;
    const fault_family family = static_cast<fault_family>(fam);
    bool placed = false;
    for (int attempt = 0; attempt < 8 && !placed; ++attempt) {
      const time_ns at = r.next_in(0, cfg.horizon);
      const std::uint32_t shard = static_cast<std::uint32_t>(r.next_below(cfg.shards));
      switch (family) {
        case fault_family::crash_recover:
        case fault_family::corrupt_tail:
        case fault_family::lease: {
          // Same unit shape (crash then recover); corrupt_tail's crash
          // additionally mangles the WAL tail at the driver, and a lease
          // unit makes the driver run the plan with read leases enabled so
          // the pair lands on leaseholders/grantors mid-lease.
          const process_id p{static_cast<std::uint32_t>(r.next_below(cfg.n))};
          const std::size_t slot = static_cast<std::size_t>(shard) * cfg.n + p.index;
          if (down_until[slot] >= at) break;  // already down around this time
          const time_ns up_at = at + duration() + 1;
          const scenario_kind down_kind = family == fault_family::corrupt_tail
                                              ? scenario_kind::corrupt_crash
                                              : scenario_kind::crash;
          plan.events.push_back(timed_event(at, down_kind, family, unit, shard, p));
          plan.events.push_back(
              timed_event(up_at, scenario_kind::recover, family, unit, shard, p));
          down_until[slot] = up_at;
          placed = true;
          break;
        }
        case fault_family::blackout: {
          const bool fleet = cfg.shards > 1 && r.chance(cfg.blackout_fleet_wide);
          const std::uint32_t lo = fleet ? 0 : shard;
          const std::uint32_t hi = fleet ? cfg.shards - 1 : shard;
          bool clear = true;
          for (std::uint32_t s = lo; s <= hi && clear; ++s) {
            for (std::uint32_t p = 0; p < cfg.n; ++p) {
              if (down_until[static_cast<std::size_t>(s) * cfg.n + p] >= at) {
                clear = false;
                break;
              }
            }
          }
          if (!clear) break;
          const time_ns down = duration();
          for (std::uint32_t s = lo; s <= hi; ++s) {
            for (std::uint32_t p = 0; p < cfg.n; ++p) {
              // Skewed recovery storm: everyone down together, back one by
              // one — stable storage alone carries the state across.
              const time_ns skew =
                  cfg.recovery_skew > 0 ? r.next_in(0, cfg.recovery_skew) : 0;
              const time_ns up_at = at + down + skew + 1;
              plan.events.push_back(timed_event(at, scenario_kind::crash, family,
                                                unit, s, process_id{p}));
              plan.events.push_back(timed_event(up_at, scenario_kind::recover,
                                                family, unit, s, process_id{p}));
              down_until[static_cast<std::size_t>(s) * cfg.n + p] = up_at;
            }
          }
          placed = true;
          break;
        }
        case fault_family::partition: {
          if (at <= link_until[shard]) break;  // one link window at a time per shard
          const std::uint32_t all = (1u << cfg.n) - 1;
          const std::uint32_t mask =
              1 + static_cast<std::uint32_t>(r.next_below(all - 1));
          const time_ns heal_at = at + duration() + 1;
          scenario_event cut = timed_event(at, scenario_kind::cut, family, unit, shard);
          cut.group_mask = mask;
          plan.events.push_back(cut);
          plan.events.push_back(
              timed_event(heal_at, scenario_kind::heal, family, unit, shard));
          link_until[shard] = heal_at;
          placed = true;
          break;
        }
        case fault_family::gray_link: {
          if (at <= link_until[shard]) break;
          const process_id from{static_cast<std::uint32_t>(r.next_below(cfg.n))};
          process_id to{static_cast<std::uint32_t>(r.next_below(cfg.n))};
          if (to == from) to = process_id{(from.index + 1) % cfg.n};
          scenario_event gray = timed_event(at, scenario_kind::gray, family, unit,
                                            shard, from);
          gray.peer = to;
          gray.extra_delay =
              cfg.gray_max_delay > 0 ? r.next_in(0, cfg.gray_max_delay) : 0;
          gray.loss = std::min(r.next_unit() * cfg.gray_max_loss, 0.95);
          if (gray.extra_delay == 0 && gray.loss == 0.0) gray.loss = 0.25;
          const time_ns heal_at = at + duration() + 1;
          plan.events.push_back(gray);
          plan.events.push_back(timed_event(heal_at, scenario_kind::heal, family, unit, shard));
          link_until[shard] = heal_at;
          placed = true;
          break;
        }
        case fault_family::migration: {
          scenario_event mig;
          // Open the window early: a late trigger drains after the workload
          // ends and never contends with live traffic.
          mig.at = at / 3;
          mig.kind = scenario_kind::begin_migration;
          mig.family = family;
          mig.unit = unit;
          plan.events.push_back(mig);
          migration_used = true;
          placed = true;
          break;
        }
      }
    }
    if (placed) ++unit;
  }
  plan.sort();
  return plan;
}

// ---- Minimization ------------------------------------------------------------

namespace {

/// Candidate keeps only events whose predicate holds; re-sorted (already
/// sorted, order preserved).
scenario_plan filter_events(const scenario_plan& plan,
                            const std::function<bool(const scenario_event&)>& keep) {
  scenario_plan out;
  out.shards = plan.shards;
  out.n = plan.n;
  for (const scenario_event& e : plan.events) {
    if (keep(e)) out.events.push_back(e);
  }
  return out;
}

}  // namespace

scenario_plan minimize_plan(const scenario_plan& failing, const plan_predicate& fails) {
  scenario_plan cur = failing;

  // Phase 1: drop whole fault units to fixpoint (greedy ddmin at unit
  // granularity; units are self-contained, so candidates stay well-formed).
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<std::uint32_t> units;
    for (const scenario_event& e : cur.events) units.push_back(e.unit);
    std::sort(units.begin(), units.end());
    units.erase(std::unique(units.begin(), units.end()), units.end());
    for (const std::uint32_t u : units) {
      scenario_plan cand =
          filter_events(cur, [&](const scenario_event& e) { return e.unit != u; });
      if (cand.events.size() == cur.events.size()) continue;
      if (!cand.well_formed() || !fails(cand)) continue;
      cur = std::move(cand);
      changed = true;
    }
  }

  // Phase 2: drop crash/recover pairs inside multi-process units (a blackout
  // shrinks to the few processes whose loss matters).
  changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < cur.events.size(); ++i) {
      const scenario_event& c = cur.events[i];
      if (c.kind != scenario_kind::crash && c.kind != scenario_kind::corrupt_crash) {
        continue;
      }
      // Matching recover: the next recover of the same (shard, process).
      std::size_t match = cur.events.size();
      for (std::size_t j = i + 1; j < cur.events.size(); ++j) {
        const scenario_event& e = cur.events[j];
        if (e.kind == scenario_kind::recover && e.shard == c.shard &&
            e.target == c.target) {
          match = j;
          break;
        }
      }
      if (match == cur.events.size()) continue;
      scenario_plan cand = cur;
      cand.events.erase(cand.events.begin() + static_cast<std::ptrdiff_t>(match));
      cand.events.erase(cand.events.begin() + static_cast<std::ptrdiff_t>(i));
      if (!cand.well_formed() || !fails(cand)) continue;
      cur = std::move(cand);
      changed = true;
      break;  // indices shifted: restart the scan
    }
  }

  // Phase 3: shrink fault windows — move each recover/heal halfway toward
  // its opening event while the failure reproduces.
  for (int round = 0; round < 6; ++round) {
    bool shrunk = false;
    for (std::size_t i = 0; i < cur.events.size(); ++i) {
      const scenario_event& e = cur.events[i];
      if (e.kind != scenario_kind::recover && e.kind != scenario_kind::heal) continue;
      // Opening event: the latest earlier event of the same unit.
      time_ns open_at = -1;
      for (std::size_t j = 0; j < i; ++j) {
        if (cur.events[j].unit == e.unit && cur.events[j].at <= e.at) {
          open_at = std::max(open_at, cur.events[j].at);
        }
      }
      if (open_at < 0 || e.at - open_at <= 2) continue;
      scenario_plan cand = cur;
      cand.events[i].at = open_at + (e.at - open_at) / 2;
      cand.sort();
      if (!cand.well_formed() || !fails(cand)) continue;
      cur = std::move(cand);
      shrunk = true;
      break;  // sorted order may have changed: restart
    }
    if (!shrunk) break;
  }
  return cur;
}

}  // namespace remus::sim
