// shard_driver: the execution-environment seam between protocol state and
// the machinery that advances it.
//
// The protocol layers are pure state machines driven by delivered inputs
// (proto::quorum_core consumes messages/log-completions/timers and emits
// effect batches; core::cluster folds one shard's worth of cores over a
// deterministic event queue). What *advances* them is a driver. Three exist:
//
//   * the deterministic simulator (core::cluster::run_* on one thread) — the
//     original, still the default;
//   * the multi-threaded simulator (core::shard_router + threaded_driver):
//     S independent shards advanced concurrently on a worker pool, meeting
//     only at virtual-time window barriers (see shard_router.h, "Parallel
//     execution");
//   * the real runtime (runtime::node over a runtime::transport — in-process
//     datagrams or loopback TCP), where the clock is the wall clock.
//
// This header owns the worker-pool half: a minimal parallel-for with barrier
// semantics. The contract is deliberately tiny so drivers stay swappable:
//
//   * each index in [0, count) is claimed by exactly one thread and fn runs
//     for it exactly once;
//   * run_indexed returns only after every fn call finished (a full barrier:
//     all writes made by the workers happen-before the return);
//   * fn must touch only state owned by its index (shard s's cluster) — the
//     caller performs all cross-index work between run_indexed calls, which
//     is exactly the shard router's window-barrier rule;
//   * exceptions thrown by fn are captured and one of them is rethrown from
//     run_indexed after the barrier (the others are dropped; remaining
//     indices still run so the pool stays in a defined state).
//
// Determinism: the assignment of indices to threads is racy by design, but
// no observable state depends on it — each index's work is confined to that
// index's objects, so any schedule produces bit-identical per-shard results.
// That is what makes `same seed => same merged history` hold at every worker
// count (tests/parallel_driver_test.cpp pins it).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace remus::sim {

class shard_driver {
 public:
  virtual ~shard_driver() = default;

  /// Invoke fn(i) once for every i in [0, count), from at most workers()
  /// threads, returning after all calls completed (barrier). See the file
  /// comment for the full contract.
  virtual void run_indexed(std::uint32_t count,
                           const std::function<void(std::uint32_t)>& fn) = 0;

  /// Max threads that may run fn concurrently (>= 1; 1 = inline, no pool).
  [[nodiscard]] virtual std::uint32_t workers() const noexcept = 0;
};

/// The single-threaded driver: runs every index inline on the caller.
class sequential_driver final : public shard_driver {
 public:
  void run_indexed(std::uint32_t count,
                   const std::function<void(std::uint32_t)>& fn) override;
  [[nodiscard]] std::uint32_t workers() const noexcept override { return 1; }
};

/// Persistent worker pool: `workers - 1` threads plus the calling thread
/// cooperate on each run_indexed call (so workers == hardware_concurrency
/// uses every core without oversubscribing). Index claiming is a single
/// atomic counter — work-stealing granularity of one shard.
class threaded_driver final : public shard_driver {
 public:
  explicit threaded_driver(std::uint32_t workers);
  ~threaded_driver() override;

  threaded_driver(const threaded_driver&) = delete;
  threaded_driver& operator=(const threaded_driver&) = delete;

  void run_indexed(std::uint32_t count,
                   const std::function<void(std::uint32_t)>& fn) override;
  [[nodiscard]] std::uint32_t workers() const noexcept override { return workers_; }

 private:
  void worker_loop();
  /// Claim indices from next_ until exhausted; record the first exception.
  void work();

  const std::uint32_t workers_;
  std::mutex mu_;
  std::condition_variable start_cv_;  // workers wait for a new round
  std::condition_variable done_cv_;   // caller waits for the barrier
  std::uint64_t round_ = 0;           // bumped per run_indexed call
  std::uint32_t count_ = 0;
  const std::function<void(std::uint32_t)>* fn_ = nullptr;
  std::uint32_t next_ = 0;     // next unclaimed index (guarded by mu_)
  std::uint32_t inflight_ = 0; // fn calls started but not finished
  std::exception_ptr error_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// workers <= 1 -> sequential_driver; otherwise a threaded_driver pool.
[[nodiscard]] std::unique_ptr<shard_driver> make_shard_driver(std::uint32_t workers);

}  // namespace remus::sim
