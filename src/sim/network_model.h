// Fair-lossy channel model (paper section II, after [Lynch 96]).
//
// The model charges, per message:
//   * sender serialization: bytes / bandwidth (an IP-multicast broadcast is
//     serialized once, like the paper's 100 Mbps LAN with multicast),
//   * propagation: base one-way delay delta (the paper's ~0.1 ms transit),
//   * jitter: uniform or exponential extra delay,
// and may drop or duplicate any message with configured probabilities
// (fair-lossy: a message retransmitted forever is eventually delivered —
// guaranteed here because drops are independent coin flips with p < 1).
//
// A user-supplied filter can force drops or delay overrides for specific
// messages; adversarial schedule tests (runs rho1-rho4 of the paper) use it
// to steer who receives what.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"

namespace remus::sim {

struct network_config {
  /// One-way propagation delay (paper: ~100 us on their LAN).
  time_ns base_delay = 100 * 1000;
  /// Uniform jitter added on top of base_delay: U[0, jitter].
  time_ns jitter = 5 * 1000;
  /// Link bandwidth in bytes per second (100 Mbps = 12.5 MB/s). 0 = infinite.
  std::int64_t bandwidth_bps = 100'000'000 / 8;
  /// Loopback (self) delivery delay; a process messaging its own listener.
  time_ns loopback_delay = 10 * 1000;
  /// Probability of dropping a unicast copy (fair-lossy: < 1).
  double drop_probability = 0.0;
  /// Probability of delivering an extra duplicate copy.
  double duplicate_probability = 0.0;
};

/// Outcome of routing one message copy to one destination.
struct delivery {
  process_id to;
  time_ns deliver_at;  // absolute virtual time
};

/// Filter verdict for one (from, to) copy: drop it, deliver at a forced
/// absolute time, or defer to the model's randomized delay.
struct filter_verdict {
  bool drop = false;
  std::optional<time_ns> deliver_at;
};

/// Metadata handed to filters (enough to identify protocol traffic without
/// depending on proto/).
struct packet_info {
  process_id from;
  process_id to;
  std::size_t size_bytes = 0;
  std::uint8_t kind = 0;        // proto::msg_kind cast to its underlying type
  std::uint64_t op_seq = 0;     // invoking operation sequence number
  std::uint32_t round = 0;      // protocol round within the operation
  time_ns now = 0;              // send time, for relative deliver_at forcing
};

using packet_filter = std::function<filter_verdict(const packet_info&)>;

class network_model {
 public:
  network_model(network_config cfg, rng r) : cfg_(cfg), rng_(r) {}

  /// Route one broadcast (or unicast when `tos` has one entry) sent at `now`,
  /// appending the scheduled deliveries (drops excluded, duplicates included)
  /// to `out`. Broadcast serialization is charged once (IP multicast). The
  /// caller owns `out` so the hot path can reuse one buffer run-long.
  void route(time_ns now, process_id from, const std::vector<process_id>& tos,
             std::size_t size_bytes, std::uint8_t kind, std::uint64_t op_seq,
             std::uint32_t round, std::vector<delivery>& out);

  /// Convenience form returning a fresh vector (tests, cold paths).
  std::vector<delivery> route(time_ns now, process_id from,
                              const std::vector<process_id>& tos,
                              std::size_t size_bytes, std::uint8_t kind,
                              std::uint64_t op_seq, std::uint32_t round) {
    std::vector<delivery> out;
    route(now, from, tos, size_bytes, kind, op_seq, round, out);
    return out;
  }

  void set_filter(packet_filter f) { filter_ = std::move(f); }
  void clear_filter() { filter_ = nullptr; }

  /// Cut or restore a directed link (partition injection). Cut links drop
  /// every copy until restored.
  void cut_link(process_id from, process_id to);
  void restore_link(process_id from, process_id to);
  void restore_all_links();

  /// Symmetric forms: real partitions sever both directions at once, and
  /// hand-looping the two cut_link calls is how scripted tests got the
  /// asymmetry wrong.
  void cut_pair(process_id a, process_id b);
  void restore_pair(process_id a, process_id b);

  /// Partition the processes into the given groups: every link between two
  /// different groups is cut in both directions; links within a group are
  /// untouched. Heal with restore_all_links().
  void partition(const std::vector<std::vector<process_id>>& groups);

  [[nodiscard]] const network_config& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t messages_routed() const { return routed_; }
  [[nodiscard]] std::uint64_t messages_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_; }

 private:
  /// Directed link key: (from, to) packed into one word for O(1) cut checks.
  [[nodiscard]] static std::uint64_t link_key(process_id from, process_id to) {
    return (static_cast<std::uint64_t>(from.index) << 32) | to.index;
  }
  [[nodiscard]] bool link_cut(process_id from, process_id to) const {
    return !cut_.empty() && cut_.contains(link_key(from, to));
  }

  network_config cfg_;
  rng rng_;
  packet_filter filter_;
  std::unordered_set<std::uint64_t> cut_;
  // Recent (wire size -> serialization time) pairs; sizes cycle run-long.
  std::size_t memo_size_[2] = {~std::size_t{0}, ~std::size_t{0}};
  time_ns memo_serialize_[2] = {0, 0};
  std::uint64_t routed_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace remus::sim
