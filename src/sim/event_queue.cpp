#include "sim/event_queue.h"

#include <algorithm>

namespace remus::sim {

event_queue::token event_queue::schedule_at(time_ns at, action fn) {
  if (at < now_) throw driver_error("event_queue: scheduling into the past");
  const token id = next_id_++;
  heap_.push(entry{at, id, std::move(fn)});
  ++live_;
  return id;
}

bool event_queue::is_cancelled(token t) const {
  return std::find(cancelled_.begin(), cancelled_.end(), t) != cancelled_.end();
}

bool event_queue::cancel(token t) {
  if (t == 0 || t >= next_id_ || is_cancelled(t)) return false;
  cancelled_.push_back(t);
  return true;
}

bool event_queue::step() {
  while (!heap_.empty()) {
    entry e = heap_.top();
    heap_.pop();
    if (is_cancelled(e.id)) {
      cancelled_.erase(std::remove(cancelled_.begin(), cancelled_.end(), e.id),
                       cancelled_.end());
      --live_;
      continue;
    }
    now_ = e.at;
    --live_;
    ++executed_;
    e.fn();
    return true;
  }
  return false;
}

std::uint64_t event_queue::run(std::uint64_t limit) {
  std::uint64_t n = 0;
  while (n < limit && step()) ++n;
  return n;
}

std::uint64_t event_queue::run_until(time_ns deadline) {
  std::uint64_t n = 0;
  while (!heap_.empty()) {
    // Skip cancelled heads so top().at is a live timestamp.
    while (!heap_.empty() && is_cancelled(heap_.top().id)) {
      cancelled_.erase(
          std::remove(cancelled_.begin(), cancelled_.end(), heap_.top().id),
          cancelled_.end());
      heap_.pop();
      --live_;
    }
    if (heap_.empty() || heap_.top().at > deadline) break;
    if (step()) ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace remus::sim
