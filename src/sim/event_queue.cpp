#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <utility>

namespace remus::sim {

namespace {
constexpr time_ns no_time = std::numeric_limits<time_ns>::max();
}  // namespace

event_queue::token event_queue::schedule_event(time_ns at, sim_event ev) {
  const auto [idx, s] = acquire_slot(at);
  s->ev = std::move(ev);
  return commit(at, idx);
}

void event_queue::ring_insert(const heap_entry& e, slot& s) {
  const std::uint32_t b =
      static_cast<std::uint32_t>(static_cast<std::uint64_t>(e.at) >> bucket_shift) &
      (ring_size - 1);
  bucket& bk = ring_[b];
  if (bk.head == bk.v.size()) {  // becoming occupied
    bk.v.clear();
    bk.head = 0;
    occupied_[b >> 6] |= std::uint64_t{1} << (b & 63);
  }
  // Sorted insert from the back; in practice appends, since a bucket spans
  // ~1 us and near-simultaneous events arrive in seq order.
  bk.v.push_back(e);
  for (std::size_t i = bk.v.size() - 1; i > bk.head && before(e, bk.v[i - 1]); --i) {
    bk.v[i] = bk.v[i - 1];
    bk.v[i - 1] = e;
  }
  ++ring_count_;
  s.heap_pos = b;
}

void event_queue::commit_far(const heap_entry& e, slot& s, time_ns delta) {
  if (delta < w2_horizon) {
    const std::uint32_t b = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(e.at) >> w2_shift) & (w2_size - 1));
    bucket& bk = w2_[b];
    if (bk.v.empty()) w2_occupied_[b >> 6] |= std::uint64_t{1} << (b & 63);
    bk.v.push_back(e);  // unsorted; the cascade into the ring orders it
    ++w2_count_;
    s.heap_pos = b | w2_flag;
  } else {
    const std::uint32_t pos = static_cast<std::uint32_t>(far_.size());
    far_.emplace_back();
    far_sift_up(pos, e);
    flush_due_ = std::min(flush_due_, far_[0].at - far_horizon + 1);
  }
}

void event_queue::far_sift_up(std::uint32_t pos, heap_entry e) {
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) >> 2;
    if (!before(e, far_[parent])) break;
    far_[pos] = far_[parent];
    slot_at(far_[pos].idx).heap_pos = pos | far_flag;
    pos = parent;
  }
  far_[pos] = e;
  slot_at(e.idx).heap_pos = pos | far_flag;
}

void event_queue::far_sift_down(std::uint32_t pos, heap_entry e) {
  const std::uint32_t n = static_cast<std::uint32_t>(far_.size());
  for (;;) {
    const std::uint32_t first_child = pos * 4 + 1;
    if (first_child >= n) break;
    std::uint32_t best = first_child;
    const std::uint32_t last_child = std::min(first_child + 4, n);
    for (std::uint32_t c = first_child + 1; c < last_child; ++c) {
      if (before(far_[c], far_[best])) best = c;
    }
    if (!before(far_[best], e)) break;
    far_[pos] = far_[best];
    slot_at(far_[pos].idx).heap_pos = pos | far_flag;
    pos = best;
  }
  far_[pos] = e;
  slot_at(e.idx).heap_pos = pos | far_flag;
}

void event_queue::far_remove(std::uint32_t pos) {
  const heap_entry moved = far_.back();
  far_.pop_back();
  if (pos == static_cast<std::uint32_t>(far_.size())) return;
  // The replacement may need to move either direction.
  far_sift_down(pos, moved);
  if ((slot_at(moved.idx).heap_pos & ~far_flag) == pos) far_sift_up(pos, moved);
}

std::uint32_t event_queue::first_bucket() const {
  const std::uint32_t start =
      static_cast<std::uint32_t>(static_cast<std::uint64_t>(now_) >> bucket_shift) &
      (ring_size - 1);
  std::uint32_t word = start >> 6;
  std::uint64_t bits = occupied_[word] & (~std::uint64_t{0} << (start & 63));
  for (std::uint32_t scanned = 0;; ++scanned) {
    if (bits != 0) {
      return (word << 6) + static_cast<std::uint32_t>(std::countr_zero(bits));
    }
    word = (word + 1) & (ring_size / 64 - 1);
    bits = occupied_[word];
    if (scanned > ring_size / 64) {
      throw driver_error("event_queue: corrupt ring occupancy");
    }
  }
}

void event_queue::pop_bucket(std::uint32_t b) {
  bucket& bk = ring_[b];
  if (++bk.head == bk.v.size()) {
    bk.v.clear();
    bk.head = 0;
    occupied_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
  }
  --ring_count_;
}

void event_queue::advance_flush() {
  while (!far_.empty() && far_[0].at - now_ < far_horizon) {
    const heap_entry e = far_[0];
    far_remove(0);
    ring_insert(e, slot_at(e.idx));
  }
  // Cascade through the bucket containing now() + far_horizon (inclusive):
  // afterwards every unflushed wheel event is strictly beyond the horizon,
  // so the ring always holds a complete prefix of the schedule. A flushed
  // event is at most far_horizon + one wheel bucket out, which must stay
  // below the ring span (see the static_assert next to the constants).
  const std::uint64_t target =
      (static_cast<std::uint64_t>(now_ + far_horizon) >> w2_shift) + 1;
  while (w2_flushed_ < target) {
    const std::uint32_t b = static_cast<std::uint32_t>(w2_flushed_ & (w2_size - 1));
    bucket& bk = w2_[b];
    if (!bk.v.empty()) {
      for (const heap_entry& e : bk.v) ring_insert(e, slot_at(e.idx));
      w2_count_ -= bk.v.size();
      bk.v.clear();
      w2_occupied_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
    }
    ++w2_flushed_;
  }
  // Next time a cascade can matter: the wheel boundary moves into a new
  // bucket, or the overflow root crosses the horizon.
  flush_due_ = static_cast<time_ns>(w2_flushed_ << w2_shift) - far_horizon;
  if (!far_.empty()) {
    flush_due_ = std::min(flush_due_, far_[0].at - far_horizon + 1);
  }
}

time_ns event_queue::next_time() const {
  time_ns t = no_time;
  if (ring_count_ != 0) {
    const bucket& bk = ring_[first_bucket()];
    t = bk.v[bk.head].at;
  }
  if (w2_count_ != 0 || !far_.empty()) t = std::min(t, next_band_time());
  return t;
}

time_ns event_queue::next_band_time() const {
  time_ns t = far_.empty() ? no_time : far_[0].at;
  if (w2_count_ != 0) {
    // First occupied wheel bucket at or after the flush boundary.
    const std::uint32_t start = static_cast<std::uint32_t>(w2_flushed_ & (w2_size - 1));
    std::uint32_t word = start >> 6;
    std::uint64_t bits = w2_occupied_[word] & (~std::uint64_t{0} << (start & 63));
    for (std::uint32_t scanned = 0;; ++scanned) {
      if (bits != 0) {
        const std::uint32_t b =
            (word << 6) + static_cast<std::uint32_t>(std::countr_zero(bits));
        const std::uint64_t dist = (b - start) & (w2_size - 1);
        const time_ns bucket_start =
            static_cast<time_ns>((w2_flushed_ + dist) << w2_shift);
        // Bucket start is a lower bound on its earliest entry, which is all
        // the jump needs (the cascade sorts the real times into the ring).
        t = std::min(t, std::max(bucket_start, now_));
        break;
      }
      word = (word + 1) & (w2_size / 64 - 1);
      bits = w2_occupied_[word];
      if (scanned > w2_size / 64) {
        throw driver_error("event_queue: corrupt wheel occupancy");
      }
    }
  }
  return t;
}

time_ns event_queue::jump_to_next_band() {
  const time_ns t = next_band_time();
  // Fast-forward is invisible: no event exists in (now, t), and the next
  // pop sets now() to its own timestamp anyway.
  if (t > now_) now_ = t;
  advance_flush();
  return t;
}

void event_queue::retire(std::uint32_t idx) {
  slot& s = slot_at(idx);
  s.heap_pos = npos;
  if (++s.gen == 0) s.gen = 1;  // keep tokens nonzero on generation wrap
  free_.push_back(idx);
}

bool event_queue::cancel(token t) {
  const std::uint32_t idx = static_cast<std::uint32_t>(t >> 32);
  const std::uint32_t gen = static_cast<std::uint32_t>(t);
  if (idx >= slot_count_) return false;
  slot& s = slot_at(idx);
  if (s.gen != gen || s.heap_pos == npos) return false;
  if (s.heap_pos & far_flag) {
    far_remove(s.heap_pos & ~far_flag);
  } else if (s.heap_pos & w2_flag) {
    const std::uint32_t b = s.heap_pos & ~w2_flag;
    bucket& bk = w2_[b];
    for (std::size_t i = 0; i < bk.v.size(); ++i) {
      if (bk.v[i].idx != idx) continue;
      bk.v.erase(bk.v.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
    if (bk.v.empty()) w2_occupied_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
    --w2_count_;
  } else {
    const std::uint32_t b = s.heap_pos;
    bucket& bk = ring_[b];
    for (std::size_t i = bk.head; i < bk.v.size(); ++i) {
      if (bk.v[i].idx != idx) continue;
      bk.v.erase(bk.v.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
    if (bk.head == bk.v.size()) {
      bk.v.clear();
      bk.head = 0;
      occupied_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
    }
    --ring_count_;
  }
  s.ev = sim_event{};  // drop payload (closure, message ref, log buffers) now
  retire(idx);
  return true;
}

void event_queue::execute_slot(std::uint32_t idx) {
  // The slot address is stable (chunked arena) and cannot be recycled while
  // executing: it is out of every band but only retired afterwards.
  slot& s = slot_at(idx);
  s.heap_pos = npos;
  ++executed_;
  if (s.ev.kind == event_kind::thunk) {
    s.ev.fn();
    s.ev.fn = nullptr;  // drop the closure now, not at slot reuse
  } else {
    executor_->execute(s.ev);
  }
  s.ev.msg.reset();  // return the payload to its pool promptly
  retire(idx);
}

bool event_queue::step() {
  if (ring_count_ == 0) {
    advance_flush();
    while (ring_count_ == 0) {
      if (w2_count_ == 0 && far_.empty()) return false;
      jump_to_next_band();
    }
  }
  const std::uint32_t b = first_bucket();
  const bucket& bk = ring_[b];
  const heap_entry& ne = bk.v[bk.head];
  now_ = ne.at;
  const std::uint32_t idx = ne.idx;
  pop_bucket(b);
  maybe_flush();  // keep the ring complete up to now() + far_horizon
  execute_slot(idx);
  return true;
}

std::uint64_t event_queue::run(std::uint64_t limit) {
  std::uint64_t n = 0;
  while (n < limit && step()) ++n;
  return n;
}

std::uint64_t event_queue::run_until(time_ns deadline) {
  std::uint64_t n = 0;
  for (;;) {
    if (ring_count_ == 0) {
      advance_flush();
      while (ring_count_ == 0) {
        if (w2_count_ == 0 && far_.empty()) goto done;
        // Jump only if the next band's earliest possible event can still
        // beat the deadline; otherwise the run is over (and now() must not
        // overshoot the deadline).
        if (next_band_time() > deadline) goto done;
        jump_to_next_band();
      }
    }
    {
      const std::uint32_t b = first_bucket();
      const bucket& bk = ring_[b];
      const heap_entry& ne = bk.v[bk.head];
      if (ne.at > deadline) break;
      now_ = ne.at;
      const std::uint32_t idx = ne.idx;
      pop_bucket(b);
      maybe_flush();
      execute_slot(idx);
      ++n;
    }
  }
done:
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace remus::sim
