// YCSB-style keyed workload generation for the multi-register namespace.
//
// Produces a deterministic operation stream over `key_count` registers:
// uniform or Zipf-skewed key popularity (the YCSB "zipfian" generator with
// parameter theta; theta 0.99 is YCSB's default hot-key skew), a read/write
// mix, optional multi-key batches (distinct keys per batch), and write
// values that are globally unique — the atomicity checkers require unique
// write values per register, and globally unique satisfies every projection.
//
// This header only *generates* the schedule; drivers (benches, tests) submit
// it to a core::cluster themselves, keeping sim/ independent of core/.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/time.h"
#include "common/value.h"

namespace remus::sim {

/// Zipf(theta) sampler over {0, .., n-1} (rank 0 most popular), using the
/// standard YCSB/Gray et al. construction. theta == 0 degenerates to
/// uniform. Precomputes the harmonic normalizer once (O(n) setup).
class zipf_sampler {
 public:
  zipf_sampler(std::uint64_t n, double theta);

  [[nodiscard]] std::uint64_t sample(rng& r) const;
  [[nodiscard]] double theta() const noexcept { return theta_; }

 private:
  std::uint64_t n_ = 1;
  double theta_ = 0.0;
  double zetan_ = 1.0;   // sum_{i=1..n} 1/i^theta
  double alpha_ = 0.0;   // 1 / (1 - theta)
  double eta_ = 0.0;
};

struct kv_workload_config {
  std::uint32_t n = 3;              // cluster size (ops round-robin processes)
  std::uint32_t key_count = 64;     // registers 0 .. key_count-1
  double zipf_theta = 0.0;          // 0 = uniform; 0.99 = YCSB default skew
  double read_fraction = 0.5;       // P(op is a read)
  std::uint32_t batch_size = 1;     // keys per operation (>1 = batched ops)
  std::uint32_t ops = 1000;         // total operations generated
  time_ns mean_gap = 200 * 1000;    // mean inter-arrival per process
  std::uint64_t seed = 1;

  /// Phase support for multi-stage drivers (e.g. bench_rebalance generating
  /// before/during/after-reconfiguration traffic as separate calls): every
  /// generated arrival time is offset by `start_at`, and write values start
  /// at `value_base` — pass a value past anything the previous phase could
  /// mint (its `value_base + ops * batch_size`) so the concatenated phases
  /// keep globally unique write values (the atomicity checkers reject
  /// duplicates).
  time_ns start_at = 0;
  std::uint64_t value_base = 1;
  /// Write-value payload size in bytes (>= 8; the leading 8 bytes carry the
  /// unique counter, the rest is deterministic filler — YCSB's field-length
  /// knob, relevant wherever message bytes are measured).
  std::uint32_t value_bytes = 8;

  /// Shard-aware batching. `shard_map` names the shard owning each register
  /// (e.g. core::hash_ring::shard_of, passed as a function so sim/ stays
  /// independent of core/). When `shard_local_batches` is set, every batch's
  /// keys come from one shard — the shard of the batch's first sampled key —
  /// so a batched operation never splits across quorum groups (the split
  /// costs one quorum round *per shard touched*; shard-local clients avoid
  /// it). If a shard's key population runs out before `batch_size` distinct
  /// keys are found, the batch is emitted smaller rather than looping
  /// forever. Ignored when shard_map is empty or batch_size == 1.
  std::function<std::uint32_t(register_id)> shard_map;
  bool shard_local_batches = false;
};

/// One generated operation: `entries` lists the distinct target registers
/// (writes carry their unique values; reads leave values empty).
struct kv_op {
  process_id p;
  time_ns at = 0;
  bool is_read = false;

  struct entry {
    register_id reg = default_register;
    value val;  // writes only
  };
  std::vector<entry> entries;
};

/// Generates the full deterministic schedule for `cfg`.
[[nodiscard]] std::vector<kv_op> make_kv_workload(const kv_workload_config& cfg);

}  // namespace remus::sim
