// Effects emitted by protocol cores (sans-I/O discipline).
//
// A core never touches the network, the disk, or a clock: handling one input
// appends requests to an `outputs` batch, and the driver (the simulator's
// world or the threaded runtime) executes them. This keeps every algorithm
// deterministic and lets the simulator charge the paper's delta/lambda costs
// precisely.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/recycling_vector.h"
#include "common/time.h"
#include "common/timestamp.h"
#include "common/value.h"
#include "proto/message.h"
#include "storage/stable_store.h"

namespace remus::proto {

/// Which of the process's two execution contexts performs an effect. The
/// paper's implementation (section V-A) runs one client thread and one
/// listener thread per workstation; a synchronous store blocks its context.
enum class exec_context : std::uint8_t { client, listener };

struct send_request {
  process_id to;
  message msg;
};

struct broadcast_request {
  message msg;  // delivered to every process, including the sender's listener
};

struct log_request {
  /// Record key: (area, register). Trivially copyable, so the hot path
  /// stays string-free even with per-register keys.
  storage::record_key key;
  bytes record;
  /// Completion token: the driver calls on_log_done(token) once durable.
  std::uint64_t token = 0;
  /// Context that blocks on this store.
  exec_context ctx = exec_context::client;
  /// Causal-log depth *after* this store (tracing; see message::log_depth).
  std::uint32_t depth_after = 0;
  /// Operation this store is attributable to (metrics; 0 = recovery/install),
  /// identified by the invoker, its incarnation epoch, and its op counter.
  std::uint64_t op_seq = 0;
  process_id origin;
  std::uint64_t epoch = 0;
  /// Records made obsolete by this store, erased in the same durable step
  /// (stable_store::store_and_obsolete). The paper's "writing record
  /// obsolete" compaction: a writer's next pre-log piggybacks the
  /// obsolescence of its settled predecessors, so recovery replay tracks
  /// the live write set, not every register ever pre-logged. Drivers must
  /// treat key ordering as irrelevant and entries equal to `key` as inert.
  std::vector<storage::record_key> obsoletes;
};

struct timer_request {
  std::uint64_t token = 0;
  time_ns delay = 0;
};

/// Completion of one read or write operation at its invoking process.
struct op_outcome {
  std::uint64_t op_seq = 0;
  bool is_read = false;
  /// Register the (single-key) operation targeted.
  register_id reg = default_register;
  /// Read: the returned value. Write: the written value (for the recorder).
  value result;
  /// The tag the operation applied (write) or returned (read).
  tag applied;
  /// Causal-log count observed on the completion path (paper section I-B).
  std::uint32_t causal_logs = 0;
  /// Round-trips used (communication steps = 2x this).
  std::uint32_t round_trips = 0;
  /// Batched operations: one (reg, applied tag, result value) per register.
  /// Empty for single-key operations (result/applied/reg above are used).
  std::vector<batch_entry> batch;
};

/// Optional-like completion slot whose reset() keeps the outcome's value
/// buffer alive, so a pooled `outputs` completes operations allocation-free.
class completion_slot {
 public:
  [[nodiscard]] explicit operator bool() const noexcept { return set_; }
  [[nodiscard]] bool has_value() const noexcept { return set_; }
  op_outcome& emplace() noexcept {
    set_ = true;
    return v_;
  }
  [[nodiscard]] op_outcome& operator*() noexcept { return v_; }
  [[nodiscard]] const op_outcome& operator*() const noexcept { return v_; }
  [[nodiscard]] op_outcome* operator->() noexcept { return &v_; }
  [[nodiscard]] const op_outcome* operator->() const noexcept { return &v_; }
  void reset() noexcept { set_ = false; }

 private:
  op_outcome v_;  // retains result-value capacity across reset()
  bool set_ = false;
};

struct outputs {
  // Recycling batches: clear() retires entries without freeing their message
  // payload / record buffers, so a pooled `outputs` refills allocation-free.
  recycling_vector<send_request> sends;
  recycling_vector<broadcast_request> broadcasts;
  recycling_vector<log_request> logs;
  recycling_vector<timer_request> timers;
  /// Lease-expiry deadlines: like `timers` but delivered through the typed
  /// lease_expiry event so the driver can keep retransmission timers and
  /// lease clocks distinct (and cancel neither on the hot path).
  recycling_vector<timer_request> lease_timers;
  completion_slot completion;
  /// Set when a recovery procedure finished and invocations may resume.
  bool recovery_complete = false;

  void clear() {
    sends.clear();
    broadcasts.clear();
    logs.clear();
    timers.clear();
    lease_timers.clear();
    completion.reset();
    recovery_complete = false;
  }
  [[nodiscard]] bool empty() const {
    return sends.empty() && broadcasts.empty() && logs.empty() && timers.empty() &&
           lease_timers.empty() && !completion && !recovery_complete;
  }
};

}  // namespace remus::proto
