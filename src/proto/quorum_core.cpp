#include "proto/quorum_core.h"

#include <algorithm>
#include <utility>

namespace remus::proto {

quorum_core::quorum_core(protocol_policy pol, process_id self, std::uint32_t n,
                         storage::stable_store& store, std::uint64_t initial_epoch)
    : pol_(std::move(pol)), self_(self), n_(n), store_(store), epoch_(initial_epoch) {
  if (!pol_.coherent()) throw precondition_error("quorum_core: incoherent policy " + pol_.name);
  if (n_ < 1 || !self_.valid() || self_.index >= n_) {
    throw precondition_error("quorum_core: bad process id / cluster size");
  }
}

std::uint32_t quorum_core::quorum_size() const {
  return pol_.wait_for_all ? n_ : n_ / 2 + 1;
}

void quorum_core::check_input_allowed(const char* what) const {
  if (!up_) throw precondition_error(std::string("quorum_core: input while crashed: ") + what);
}

message& quorum_core::stage_msg(msg_kind k, std::uint32_t round, std::uint32_t depth) {
  message& m = cl_.current;
  m.kind = k;
  m.from = self_;
  m.op_seq = cl_.op_seq;
  m.round = round;
  m.epoch = epoch_;
  m.ts = tag{};
  m.val.data.clear();  // keeps capacity: refilling the payload won't allocate
  m.log_depth = depth;
  return m;
}

void quorum_core::arm_timer(outputs& out) {
  cl_.retrans_token = fresh_token();
  out.timers.push_back(timer_request{cl_.retrans_token, pol_.retransmit_delay});
}

void quorum_core::begin_phase(phase_kind ph, outputs& out) {
  // stage_msg() has already filled cl_.current for this phase.
  cl_.phase = ph;
  cl_.responded.assign(n_, false);
  cl_.responses = 0;
  out.broadcasts.emplace_slot().msg = cl_.current;
  arm_timer(out);
}

void quorum_core::start(outputs& out) {
  (void)out;
  if (started_) throw precondition_error("quorum_core: start() twice");
  started_ = true;
  vtag_ = initial_tag;
  vval_ = initial_value();
  if (!pol_.crash_stop) {
    // Paper Fig. 4/5 Initialize: install the initial stable records. This is
    // process installation, not a timed operation.
    if (pol_.writer_prelog) {
      store_.store(writing_key, encode(tagged_value_record{initial_tag, initial_value()}));
    }
    store_.store(written_key, encode(tagged_value_record{initial_tag, initial_value()}));
    if (pol_.recovery_counter) {
      store_.store(recovered_key, encode(recovery_record{0}));
    }
  }
}

void quorum_core::invoke_write(const value& v, outputs& out) {
  check_input_allowed("invoke_write");
  if (!ready_) throw precondition_error("quorum_core: invoke_write while recovering");
  if (!idle()) throw precondition_error("quorum_core: invoke_write while op in flight");
  if (pol_.single_writer && self_.index != 0) {
    throw precondition_error("quorum_core: " + pol_.name + " allows only p0 to write");
  }

  cl_.reset();
  cl_.op_seq = ++op_counter_;
  cl_.is_read = false;
  cl_.payload = v;

  if (pol_.write_query_round) {
    cl_.max_sn = 0;
    stage_msg(msg_kind::sn_query, 1, 0);
    begin_phase(phase_kind::write_query, out);
  } else {
    // Single-writer variants: the writer's own counter replaces the query.
    wsn_ += 1;
    cl_.pending_tag = tag{wsn_, pol_.rec_in_tag ? rec_ : 0, self_};
    proceed_after_query(out);
  }
}

void quorum_core::invoke_read(outputs& out) {
  check_input_allowed("invoke_read");
  if (!ready_) throw precondition_error("quorum_core: invoke_read while recovering");
  if (!idle()) throw precondition_error("quorum_core: invoke_read while op in flight");

  cl_.reset();
  cl_.op_seq = ++op_counter_;
  cl_.is_read = true;
  cl_.best_tag = initial_tag;
  stage_msg(msg_kind::read_query, 1, 0);
  begin_phase(phase_kind::read_query, out);
}

void quorum_core::proceed_after_query(outputs& out) {
  if (pol_.writer_prelog && !pol_.crash_stop) {
    // Paper Fig. 4 line 12: store(writing, sn, v) — the first causal log.
    cl_.phase = phase_kind::write_prelog;
    log_request& lr = out.logs.emplace_slot();  // recycled: every field assigned
    lr.key = writing_key;
    encode_tagged_value_into(lr.record, cl_.pending_tag, cl_.payload);
    lr.token = fresh_token();
    lr.ctx = exec_context::client;
    lr.depth_after = cl_.depth + 1;
    lr.op_seq = cl_.op_seq;
    lr.origin = self_;
    lr.epoch = epoch_;
    pending_log& pl = pending_logs_[lr.token];
    pl = pending_log{};
    pl.k = pending_log::kind::writer_prelog;
  } else {
    begin_update_round(out);
  }
}

void quorum_core::begin_update_round(outputs& out) {
  message& m = stage_msg(msg_kind::write, 2, cl_.depth);
  m.ts = cl_.pending_tag;
  m.val = cl_.payload;  // copy-assign into retained capacity
  begin_phase(phase_kind::write_update, out);
}

void quorum_core::finish_operation(outputs& out) {
  op_outcome& oc = out.completion.emplace();
  oc.op_seq = cl_.op_seq;
  oc.is_read = cl_.is_read;
  oc.causal_logs = cl_.depth;
  if (cl_.is_read) {
    if (pol_.read_return_first) {
      oc.result = cl_.first_val;
      oc.applied = cl_.first_tag;
    } else {
      oc.result = cl_.best_val;
      oc.applied = cl_.best_tag;
    }
    oc.round_trips = pol_.read_writeback ? 2 : 1;
  } else {
    oc.result = cl_.payload;
    oc.applied = cl_.pending_tag;
    oc.round_trips = pol_.write_query_round ? 2 : 1;
  }
  cl_.reset();
}

bool quorum_core::ack_matches(const message& m) const {
  return m.op_seq == cl_.op_seq && m.epoch == epoch_ &&
         ((cl_.phase == phase_kind::write_query && m.round == 1) ||
          (cl_.phase == phase_kind::read_query && m.round == 1) ||
          (cl_.phase == phase_kind::write_update && m.round == 2) ||
          (cl_.phase == phase_kind::read_update && m.round == 2) ||
          (cl_.phase == phase_kind::recovery_update && m.round == 2));
}

void quorum_core::handle_ack(const message& m, outputs& out) {
  if (!ack_matches(m)) return;  // stale phase / stale incarnation
  if (m.from.index >= n_ || cl_.responded[m.from.index]) return;  // duplicate

  switch (cl_.phase) {
    case phase_kind::write_query:
      if (m.kind != msg_kind::sn_ack) return;
      cl_.max_sn = std::max(cl_.max_sn, m.ts.sn);
      break;
    case phase_kind::read_query: {
      if (m.kind != msg_kind::read_ack) return;
      if (!cl_.have_first) {
        cl_.have_first = true;
        cl_.first_tag = m.ts;
        cl_.first_val = m.val;
      }
      if (cl_.best_tag < m.ts) {
        cl_.best_tag = m.ts;
        cl_.best_val = m.val;
      }
      break;
    }
    case phase_kind::write_update:
    case phase_kind::read_update:
    case phase_kind::recovery_update:
      if (m.kind != msg_kind::write_ack) return;
      break;
    case phase_kind::idle:
    case phase_kind::write_prelog:
      return;
  }

  cl_.responded[m.from.index] = true;
  cl_.responses += 1;
  cl_.depth = std::max(cl_.depth, m.log_depth);
  if (cl_.responses < quorum_size()) return;

  // Quorum reached: advance the state machine.
  switch (cl_.phase) {
    case phase_kind::write_query: {
      // Fig. 4 line 11: sn := sn + 1; Fig. 5 line 11: sn := sn + rec + 1.
      const std::int64_t bump = pol_.recovery_counter ? rec_ + 1 : 1;
      cl_.pending_tag = tag{cl_.max_sn + bump, pol_.rec_in_tag ? rec_ : 0, self_};
      wsn_ = std::max(wsn_, cl_.pending_tag.sn);
      proceed_after_query(out);
      break;
    }
    case phase_kind::read_query: {
      if (pol_.read_writeback) {
        message& wb = stage_msg(msg_kind::writeback, 2, cl_.depth);
        wb.ts = cl_.best_tag;
        wb.val = cl_.best_val;
        begin_phase(phase_kind::read_update, out);
      } else {
        finish_operation(out);
      }
      break;
    }
    case phase_kind::write_update:
    case phase_kind::read_update:
      finish_operation(out);
      break;
    case phase_kind::recovery_update:
      cl_.reset();
      ready_ = true;
      out.recovery_complete = true;
      break;
    case phase_kind::idle:
    case phase_kind::write_prelog:
      break;
  }
}

void quorum_core::send_ack(const message& req, std::uint32_t depth, outputs& out) {
  send_request& s = out.sends.emplace_slot();
  s.to = req.from;
  message& ack = s.msg;  // recycled slot: every field assigned below
  ack.kind = msg_kind::write_ack;
  ack.from = self_;
  ack.op_seq = req.op_seq;
  ack.round = req.round;
  ack.epoch = req.epoch;
  ack.ts = tag{};
  ack.val.data.clear();
  ack.log_depth = depth;
}

void quorum_core::serve(const message& m, outputs& out) {
  switch (m.kind) {
    case msg_kind::sn_query: {
      send_request& s = out.sends.emplace_slot();
      s.to = m.from;
      message& ack = s.msg;  // recycled slot: every field assigned
      ack.kind = msg_kind::sn_ack;
      ack.from = self_;
      ack.op_seq = m.op_seq;
      ack.round = m.round;
      ack.epoch = m.epoch;
      ack.ts = vtag_;
      ack.val.data.clear();
      ack.log_depth = m.log_depth;
      return;
    }
    case msg_kind::read_query: {
      send_request& s = out.sends.emplace_slot();
      s.to = m.from;
      message& ack = s.msg;  // recycled slot: every field assigned
      ack.kind = msg_kind::read_ack;
      ack.from = self_;
      ack.op_seq = m.op_seq;
      ack.round = m.round;
      ack.epoch = m.epoch;
      ack.ts = vtag_;
      ack.val = vval_;  // copy-assign into retained capacity
      ack.log_depth = m.log_depth;
      return;
    }
    case msg_kind::write:
    case msg_kind::writeback: {
      const bool adopt = vtag_ < m.ts;
      if (adopt) {
        vtag_ = m.ts;
        vval_ = m.val;
        const bool log_this = !pol_.crash_stop &&
                              (m.kind == msg_kind::write ? pol_.log_on_adopt
                                                         : pol_.log_on_read_writeback);
        if (log_this) {
          // Fig. 4 line 24: store(written, sn, pid, v) before acking.
          log_request& lr = out.logs.emplace_slot();  // recycled: all assigned
          lr.key = written_key;
          encode_tagged_value_into(lr.record, vtag_, vval_);
          lr.token = fresh_token();
          lr.ctx = exec_context::listener;
          lr.depth_after = m.log_depth + 1;
          lr.op_seq = m.op_seq;
          lr.origin = m.from;
          lr.epoch = m.epoch;
          pending_log& pl = pending_logs_[lr.token];
          pl.k = pending_log::kind::server_adopt;
          pl.to = m.from;
          pl.op_seq = m.op_seq;
          pl.round = m.round;
          pl.epoch = m.epoch;
          pl.depth = m.log_depth + 1;
          return;  // ack deferred until durable
        }
      }
      send_ack(m, m.log_depth, out);
      return;
    }
    case msg_kind::sn_ack:
    case msg_kind::read_ack:
    case msg_kind::write_ack:
      handle_ack(m, out);
      return;
  }
}

void quorum_core::on_message(const message& m, outputs& out) {
  check_input_allowed("on_message");
  serve(m, out);
}

void quorum_core::on_log_done(std::uint64_t token, outputs& out) {
  check_input_allowed("on_log_done");
  const pending_log* hit = pending_logs_.find(token);
  if (hit == nullptr) return;  // stale (pre-crash) completion
  const pending_log pl = *hit;
  pending_logs_.erase(token);

  switch (pl.k) {
    case pending_log::kind::server_adopt: {
      send_request& s = out.sends.emplace_slot();
      s.to = pl.to;
      message& ack = s.msg;  // recycled slot: every field assigned
      ack.kind = msg_kind::write_ack;
      ack.from = self_;
      ack.op_seq = pl.op_seq;
      ack.round = pl.round;
      ack.epoch = pl.epoch;
      ack.ts = tag{};
      ack.val.data.clear();
      ack.log_depth = pl.depth;
      return;
    }
    case pending_log::kind::writer_prelog: {
      if (cl_.phase != phase_kind::write_prelog) return;  // crashed & stale
      cl_.depth += 1;
      begin_update_round(out);
      return;
    }
    case pending_log::kind::recovery_counter: {
      ready_ = true;
      out.recovery_complete = true;
      return;
    }
  }
}

void quorum_core::on_timer(std::uint64_t token, outputs& out) {
  check_input_allowed("on_timer");
  if (token != cl_.retrans_token) return;  // stale timer
  switch (cl_.phase) {
    case phase_kind::idle:
    case phase_kind::write_prelog:
      return;
    default:
      break;
  }
  // Repeat the pseudocode's "repeat send until" loop: re-send to the
  // processes that have not answered this phase yet.
  for (std::uint32_t i = 0; i < n_; ++i) {
    if (cl_.responded[i]) continue;
    send_request& s = out.sends.emplace_slot();
    s.to = process_id{i};
    s.msg = cl_.current;  // copy-assign into retained capacity
  }
  arm_timer(out);
}

void quorum_core::crash() {
  if (!up_) return;
  up_ = false;
  ready_ = false;
  vtag_ = initial_tag;
  vval_ = initial_value();
  rec_ = 0;
  wsn_ = 0;
  cl_ = client_state{};
  pending_logs_.clear();
  op_counter_ = 0;
}

void quorum_core::restore_volatile_from_stable() {
  if (const auto rec = store_.retrieve(written_key)) {
    const auto tv = decode_tagged_value(*rec);
    vtag_ = tv.ts;
    vval_ = tv.val;
  } else {
    vtag_ = initial_tag;
    vval_ = initial_value();
  }
  wsn_ = vtag_.sn;
}

void quorum_core::recover(std::uint64_t new_epoch, outputs& out) {
  if (pol_.crash_stop) {
    throw precondition_error("quorum_core: recover() in the crash-stop model");
  }
  if (up_) throw precondition_error("quorum_core: recover() while up");
  up_ = true;
  ready_ = false;
  epoch_ = new_epoch;
  restore_volatile_from_stable();

  if (pol_.recovery_counter) {
    // Paper Fig. 5 Recover: rec := rec + 1; store(recovered, rec).
    std::int64_t prev = 0;
    if (const auto rec = store_.retrieve(recovered_key)) {
      prev = decode_recovery(*rec).recoveries;
    }
    rec_ = prev + 1;
    log_request lr;
    lr.key = recovered_key;
    lr.record = encode(recovery_record{rec_});
    lr.token = fresh_token();
    lr.ctx = exec_context::client;
    lr.depth_after = 1;
    lr.op_seq = 0;  // recovery, not an operation
    lr.origin = self_;
    lr.epoch = epoch_;
    pending_log& pl = pending_logs_[lr.token];
    pl = pending_log{};
    pl.k = pending_log::kind::recovery_counter;
    out.logs.push_back(std::move(lr));
    return;
  }

  if (pol_.recovery_finish_write) {
    // Paper Fig. 4 Recover: re-run the write's second round with the logged
    // (writing) record. Harmless when there was no unfinished write.
    tagged_value_record w{initial_tag, initial_value()};
    if (const auto rec = store_.retrieve(writing_key)) w = decode_tagged_value(*rec);
    cl_.reset();
    cl_.op_seq = ++op_counter_;
    cl_.pending_tag = w.ts;
    cl_.payload = w.val;
    message& m = stage_msg(msg_kind::write, 2, 0);
    m.ts = w.ts;
    m.val = w.val;
    begin_phase(phase_kind::recovery_update, out);
    return;
  }

  // Nothing else to do (flawed variants, and transient_literal without its
  // counter would land here too).
  ready_ = true;
  out.recovery_complete = true;
}

}  // namespace remus::proto
