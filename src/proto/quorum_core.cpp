#include "proto/quorum_core.h"

#include <algorithm>
#include <utility>

namespace remus::proto {

namespace {

/// Appends a coverage entry to an update ack: the register the ack vouches
/// for (durable at >= the served tag), with no payload. Every batched-update
/// ack builds its register list through here so the coverage wire shape has
/// one definition.
void add_ack_coverage(message& ack, register_id reg) {
  ack.batch.push_back({reg, tag{}, value{}});
}

}  // namespace

quorum_core::quorum_core(protocol_policy pol, process_id self, std::uint32_t n,
                         storage::stable_store& store, std::uint64_t initial_epoch)
    : pol_(std::move(pol)), self_(self), n_(n), store_(store), epoch_(initial_epoch) {
  if (!pol_.coherent()) throw precondition_error("quorum_core: incoherent policy " + pol_.name);
  if (n_ < 1 || !self_.valid() || self_.index >= n_) {
    throw precondition_error("quorum_core: bad process id / cluster size");
  }
}

std::uint32_t quorum_core::quorum_size() const {
  return pol_.wait_for_all ? n_ : n_ / 2 + 1;
}

tag quorum_core::replica_tag(register_id reg) const {
  const replica_slot* rs = replicas_.find(reg);
  return rs != nullptr ? rs->vtag : initial_tag;
}

value quorum_core::replica_value(register_id reg) const {
  const replica_slot* rs = replicas_.find(reg);
  return rs != nullptr ? rs->vval : initial_value();
}

void quorum_core::check_input_allowed(const char* what) const {
  if (!up_) throw precondition_error(std::string("quorum_core: input while crashed: ") + what);
}

void quorum_core::check_invocation_allowed(const char* what) const {
  check_input_allowed(what);
  if (!ready_) {
    throw precondition_error(std::string("quorum_core: ") + what + " while recovering");
  }
  if (!idle()) {
    throw precondition_error(std::string("quorum_core: ") + what + " while op in flight");
  }
}

message& quorum_core::stage_msg(msg_kind k, std::uint32_t round, std::uint32_t depth) {
  message& m = cl_.current;
  m.kind = k;
  m.from = self_;
  m.op_seq = cl_.op_seq;
  m.round = round;
  m.epoch = epoch_;
  m.ts = tag{};
  m.val.data.clear();  // keeps capacity: refilling the payload won't allocate
  m.log_depth = depth;
  m.reg = cl_.reg;
  m.batch.clear();  // batched phases refill entries after staging
  m.leases.clear();
  return m;
}

quorum_core::batch_slot& quorum_core::claim_slot(std::uint32_t i, register_id r) {
  if (cl_.batch.size() <= i) cl_.batch.resize(i + 1);
  batch_slot& s = cl_.batch[i];
  s.reg = r;
  s.payload.data.clear();
  s.pending_tag = tag{};
  s.max_sn = 0;
  s.best_tag = tag{};
  s.best_val.data.clear();
  s.have_first = false;
  s.first_tag = tag{};
  s.first_val.data.clear();
  s.acked.assign(n_, false);  // keeps capacity across operations
  s.ack_count = 0;
  s.lease_req_mask = 0;
  return s;
}

quorum_core::batch_slot* quorum_core::find_slot(register_id r) {
  for (std::uint32_t i = 0; i < cl_.batch_n; ++i) {
    if (cl_.batch[i].reg == r) return &cl_.batch[i];
  }
  return nullptr;
}

void quorum_core::arm_timer(outputs& out) {
  cl_.retrans_token = fresh_token();
  out.timers.push_back(timer_request{cl_.retrans_token, pol_.retransmit_delay});
}

void quorum_core::begin_phase(phase_kind ph, outputs& out) {
  // stage_msg() has already filled cl_.current for this phase.
  cl_.phase = ph;
  cl_.responded.assign(n_, false);
  cl_.responses = 0;
  out.broadcasts.emplace_slot().msg = cl_.current;
  arm_timer(out);
}

void quorum_core::start(outputs& out) {
  (void)out;
  if (started_) throw precondition_error("quorum_core: start() twice");
  started_ = true;
  if (!pol_.crash_stop) {
    // Paper Fig. 4/5 Initialize: install the initial stable records (for the
    // default register; other registers spring into existence at their first
    // write and restore to the initial value ⊥ when no record exists). This
    // is process installation, not a timed operation.
    if (pol_.writer_prelog) {
      store_.store(writing_key, encode(tagged_value_record{initial_tag, initial_value()}));
    }
    store_.store(written_key, encode(tagged_value_record{initial_tag, initial_value()}));
    if (pol_.recovery_counter) {
      store_.store(recovered_key, encode(recovery_record{0}));
    }
  }
}

void quorum_core::invoke_write(register_id reg, const value& v, outputs& out) {
  check_invocation_allowed("invoke_write");
  if (pol_.single_writer && self_.index != 0) {
    throw precondition_error("quorum_core: " + pol_.name + " allows only p0 to write");
  }

  cl_.reset();
  cl_.reg = reg;
  cl_.op_seq = ++op_counter_;
  cl_.is_read = false;
  cl_.payload = v;

  if (pol_.write_query_round) {
    cl_.max_sn = 0;
    stage_msg(msg_kind::sn_query, 1, 0);
    begin_phase(phase_kind::write_query, out);
  } else {
    // Single-writer variants: the writer's own counter replaces the query.
    wsn_ += 1;
    cl_.pending_tag = tag{wsn_, pol_.rec_in_tag ? rec_ : 0, self_};
    proceed_after_query(out);
  }
}

void quorum_core::invoke_read(register_id reg, outputs& out) {
  check_invocation_allowed("invoke_read");

  if (pol_.read_leases) {
    if (holdings_.find(reg) != nullptr) {
      // Leased fast path: the holding's invariant is that the replica slot
      // equals the grant's majority-anchored floor (any adoption drops the
      // holding first), so the local value is returnable with zero messages.
      branches_.leased_read_hits += 1;
      const replica_slot* rs = replicas_.find(reg);
      op_outcome& oc = out.completion.emplace();
      oc.op_seq = ++op_counter_;
      oc.is_read = true;
      oc.reg = reg;
      if (rs != nullptr) {
        oc.result = rs->vval;
        oc.applied = rs->vtag;
      } else {
        oc.result = initial_value();
        oc.applied = initial_tag;
      }
      oc.causal_logs = 0;
      oc.round_trips = 0;
      oc.batch.clear();
      return;
    }
    branches_.leased_read_misses += 1;
    const std::uint32_t heat = ++read_heat_[reg];
    if (heat > pol_.lease_hot_read_threshold) {
      // Hot key: run this read as a grant round. Same two rounds as a normal
      // read, but round 1 additionally installs the lease at every answering
      // replica. The expiry clock starts NOW (send time), so every grantor's
      // record — timed from its strictly later receipt — outlives the
      // holder's serving window.
      read_heat_.erase(reg);
      cl_.reset();
      cl_.reg = reg;
      cl_.op_seq = ++op_counter_;
      cl_.is_read = true;
      cl_.best_tag = initial_tag;
      cl_.lease_grant = true;
      cl_.lease_token = fresh_token();
      lease_tokens_[cl_.lease_token] = lease_timer_target{reg, /*grantor=*/false};
      out.lease_timers.push_back(timer_request{cl_.lease_token, pol_.lease_duration});
      stage_msg(msg_kind::lease_grant, 1, 0);
      begin_phase(phase_kind::lease_grant, out);
      return;
    }
  }

  cl_.reset();
  cl_.reg = reg;
  cl_.op_seq = ++op_counter_;
  cl_.is_read = true;
  cl_.best_tag = initial_tag;
  stage_msg(msg_kind::read_query, 1, 0);
  begin_phase(phase_kind::read_query, out);
}

void quorum_core::invoke_write_batch(const std::vector<write_op>& ops, outputs& out) {
  check_invocation_allowed("invoke_write_batch");
  if (pol_.single_writer && self_.index != 0) {
    throw precondition_error("quorum_core: " + pol_.name + " allows only p0 to write");
  }
  if (ops.empty()) throw precondition_error("quorum_core: empty write batch");

  cl_.reset();
  cl_.op_seq = ++op_counter_;
  cl_.is_read = false;
  cl_.is_batch = true;
  cl_.batch_n = static_cast<std::uint32_t>(ops.size());
  for (std::uint32_t i = 0; i < cl_.batch_n; ++i) {
    for (std::uint32_t j = 0; j < i; ++j) {
      if (ops[j].reg == ops[i].reg) {
        throw precondition_error("quorum_core: duplicate register in write batch");
      }
    }
    claim_slot(i, ops[i].reg).payload = ops[i].val;
  }

  if (pol_.write_query_round) {
    message& m = stage_msg(msg_kind::sn_query, 1, 0);
    m.batch.resize(cl_.batch_n);
    for (std::uint32_t i = 0; i < cl_.batch_n; ++i) {
      m.batch[i].reg = cl_.batch[i].reg;
      m.batch[i].ts = tag{};
      m.batch[i].val.data.clear();
    }
    begin_phase(phase_kind::write_query, out);
  } else {
    // Single-writer variants: one counter bump covers the whole batch (the
    // tag stays per-register monotonic; ties across registers are fine).
    wsn_ += 1;
    const tag t{wsn_, pol_.rec_in_tag ? rec_ : 0, self_};
    for (std::uint32_t i = 0; i < cl_.batch_n; ++i) cl_.batch[i].pending_tag = t;
    proceed_after_query(out);
  }
}

void quorum_core::invoke_read_batch(const std::vector<register_id>& regs, outputs& out) {
  check_invocation_allowed("invoke_read_batch");
  if (regs.empty()) throw precondition_error("quorum_core: empty read batch");

  cl_.reset();
  cl_.op_seq = ++op_counter_;
  cl_.is_read = true;
  cl_.is_batch = true;
  cl_.batch_n = static_cast<std::uint32_t>(regs.size());
  for (std::uint32_t i = 0; i < cl_.batch_n; ++i) {
    for (std::uint32_t j = 0; j < i; ++j) {
      if (regs[j] == regs[i]) {
        throw precondition_error("quorum_core: duplicate register in read batch");
      }
    }
    claim_slot(i, regs[i]).best_tag = initial_tag;
  }

  message& m = stage_msg(msg_kind::read_query, 1, 0);
  m.batch.resize(cl_.batch_n);
  for (std::uint32_t i = 0; i < cl_.batch_n; ++i) {
    m.batch[i].reg = cl_.batch[i].reg;
    m.batch[i].ts = tag{};
    m.batch[i].val.data.clear();
  }
  begin_phase(phase_kind::read_query, out);
}

void quorum_core::emit_prelog(register_id reg, const tag& ts, const value& val,
                              bool lead, outputs& out) {
  // Paper Fig. 4 line 12: store(writing, sn, v) — the first causal log.
  log_request& lr = out.logs.emplace_slot();  // recycled: every field assigned
  lr.key = writing_key_of(reg);
  encode_tagged_value_into(lr.record, ts, val);
  lr.token = fresh_token();
  lr.ctx = exec_context::client;
  lr.depth_after = cl_.depth + 1;
  lr.op_seq = cl_.op_seq;
  lr.origin = self_;
  lr.epoch = epoch_;
  lr.obsoletes.clear();
  if (lead) {
    // Piggyback the settled predecessors' obsolescence on the batch's lead
    // pre-log: same durable step, zero extra stores.
    lr.obsoletes.swap(obsolete_prelogs_);
    obsolete_prelogs_.clear();
  }
  pending_log& pl = pending_logs_[lr.token];
  pl = pending_log{};
  pl.k = pending_log::kind::writer_prelog;
  pl.reg = reg;
  cl_.prelogs_pending += 1;
}

void quorum_core::mark_prelogs_obsolete() {
  // Only meaningful when pre-logs exist, and only sound when tags come from
  // a query round: the query majority intersects the settled write's
  // durable majority, so the sequence number is safely re-derived after a
  // crash. Single-writer variants mint tags from the local wsn_ restored
  // from these very records — erasing them could resurrect a duplicate tag.
  if (!pol_.writer_prelog || !pol_.write_query_round || cl_.is_read) return;
  if (cl_.is_batch) {
    for (std::uint32_t i = 0; i < cl_.batch_n; ++i) {
      obsolete_prelogs_.push_back(writing_key_of(cl_.batch[i].reg));
    }
  } else {
    obsolete_prelogs_.push_back(writing_key_of(cl_.reg));
  }
}

void quorum_core::proceed_after_query(outputs& out) {
  if (pol_.writer_prelog && !pol_.crash_stop) {
    cl_.phase = phase_kind::write_prelog;
    // A register this operation is about to pre-log again needs no
    // tombstone — the fresh (writing) record overwrites the same key, and
    // a tombstone ordered after it in the same batch would erase it.
    std::erase_if(obsolete_prelogs_, [&](const storage::record_key& k) {
      if (cl_.is_batch) {
        for (std::uint32_t i = 0; i < cl_.batch_n; ++i) {
          if (k.reg == cl_.batch[i].reg) return true;
        }
        return false;
      }
      return k.reg == cl_.reg;
    });
    if (cl_.is_batch) {
      // One (writing) record per register; the stores are concurrent, so
      // they count one causal-log step for the whole batch.
      for (std::uint32_t i = 0; i < cl_.batch_n; ++i) {
        emit_prelog(cl_.batch[i].reg, cl_.batch[i].pending_tag, cl_.batch[i].payload,
                    i == 0, out);
      }
    } else {
      emit_prelog(cl_.reg, cl_.pending_tag, cl_.payload, true, out);
    }
  } else {
    begin_update_round(out);
  }
}

void quorum_core::begin_update_round(outputs& out) {
  message& m = stage_msg(msg_kind::write, 2, cl_.depth);
  if (cl_.is_batch) {
    m.batch.resize(cl_.batch_n);
    for (std::uint32_t i = 0; i < cl_.batch_n; ++i) {
      m.batch[i].reg = cl_.batch[i].reg;
      m.batch[i].ts = cl_.batch[i].pending_tag;
      m.batch[i].val = cl_.batch[i].payload;  // copy-assign into retained capacity
    }
  } else {
    m.ts = cl_.pending_tag;
    m.val = cl_.payload;  // copy-assign into retained capacity
  }
  begin_phase(phase_kind::write_update, out);
}

void quorum_core::finish_operation(outputs& out) {
  op_outcome& oc = out.completion.emplace();
  oc.op_seq = cl_.op_seq;
  oc.is_read = cl_.is_read;
  oc.reg = cl_.reg;
  oc.causal_logs = cl_.depth;
  oc.batch.clear();
  if (cl_.is_batch) {
    oc.result.data.clear();
    oc.applied = tag{};
    oc.batch.resize(cl_.batch_n);
    for (std::uint32_t i = 0; i < cl_.batch_n; ++i) {
      const batch_slot& s = cl_.batch[i];
      batch_entry& e = oc.batch[i];
      e.reg = s.reg;
      if (cl_.is_read) {
        if (pol_.read_return_first) {
          e.ts = s.first_tag;
          e.val = s.first_val;
        } else {
          e.ts = s.best_tag;
          e.val = s.best_val;
        }
      } else {
        e.ts = s.pending_tag;
        e.val = s.payload;
      }
    }
  } else if (cl_.is_read) {
    if (pol_.read_return_first) {
      oc.result = cl_.first_val;
      oc.applied = cl_.first_tag;
    } else {
      oc.result = cl_.best_val;
      oc.applied = cl_.best_tag;
    }
  } else {
    oc.result = cl_.payload;
    oc.applied = cl_.pending_tag;
  }
  if (cl_.is_read) {
    oc.round_trips = pol_.read_writeback ? 2 : 1;
  } else {
    oc.round_trips = pol_.write_query_round ? 2 : 1;
  }
  cl_.reset();
}

bool quorum_core::in_update_phase() const {
  return cl_.phase == phase_kind::write_update || cl_.phase == phase_kind::read_update ||
         cl_.phase == phase_kind::recovery_update;
}

bool quorum_core::cover_batch_slots(const message& m) {
  bool any = false;
  auto cover = [&](batch_slot& s) {
    if (s.acked[m.from.index]) return;
    s.acked[m.from.index] = true;
    s.ack_count += 1;
    any = true;
  };
  if (m.batch.empty()) {
    // A coverage-less ack (single-register peers, stale senders) vouches for
    // the whole batch — the conservative reading of the pre-trim protocol.
    for (std::uint32_t i = 0; i < cl_.batch_n; ++i) cover(cl_.batch[i]);
  } else {
    for (const batch_entry& e : m.batch) {
      if (batch_slot* s = find_slot(e.reg)) cover(*s);
    }
  }
  return any;
}

bool quorum_core::slot_settled(const batch_slot& s) const {
  if (s.ack_count < quorum_size()) return false;
  if (s.lease_req_mask != 0) {
    for (std::uint32_t i = 0; i < n_; ++i) {
      if ((s.lease_req_mask >> i) & 1u) {
        if (!s.acked[i]) return false;
      }
    }
  }
  return true;
}

bool quorum_core::batch_update_settled() const {
  for (std::uint32_t i = 0; i < cl_.batch_n; ++i) {
    if (!slot_settled(cl_.batch[i])) return false;
  }
  return true;
}

bool quorum_core::lease_reqs_met() const {
  if (cl_.lease_req_mask == 0) return true;
  for (std::uint32_t i = 0; i < n_; ++i) {
    if ((cl_.lease_req_mask >> i) & 1u) {
      if (!cl_.responded[i]) return false;
    }
  }
  return true;
}

void quorum_core::merge_lease_notes(const message& m) {
  // Bits past the cluster size carry no meaning (leases require n <= 64,
  // enforced by the driver); mask them off so settlement never waits on a
  // process that does not exist.
  const std::uint64_t live = n_ >= 64 ? ~0ULL : ((1ULL << n_) - 1);
  for (const lease_note& nte : m.leases) {
    const std::uint64_t mask = nte.holder_mask & live;
    if (mask == 0) continue;
    if (cl_.is_batch) {
      if (batch_slot* s = find_slot(nte.reg)) s->lease_req_mask |= mask;
    } else if (nte.reg == cl_.reg) {
      cl_.lease_req_mask |= mask;
    }
  }
}

void quorum_core::drop_holding_on_update(const message& m, register_id reg) {
  if (!pol_.read_leases) return;
  if (holdings_.find(reg) != nullptr) {
    holdings_.erase(reg);
    branches_.lease_invalidations += 1;
  }
  // A grant in flight for this register is voided too — unless the update
  // being served is the grant's own write-back (the floor anchoring itself).
  if (cl_.lease_grant && !cl_.lease_canceled && cl_.phase != phase_kind::idle &&
      cl_.reg == reg && !(m.from.index == self_.index && m.op_seq == cl_.op_seq)) {
    cl_.lease_canceled = true;
    branches_.lease_invalidations += 1;
  }
}

void quorum_core::attach_lease_note_for(message& ack, register_id reg) {
  const grantor_lease* g = granted_.find(reg);
  if (g != nullptr && g->holder_mask != 0) {
    ack.leases.push_back(lease_note{reg, g->holder_mask});
  }
}

void quorum_core::attach_lease_notes(message& ack, const message& req) {
  if (!pol_.read_leases || granted_.empty()) return;
  if (req.is_batch()) {
    for (const batch_entry& e : req.batch) attach_lease_note_for(ack, e.reg);
  } else {
    attach_lease_note_for(ack, req.reg);
  }
}

bool quorum_core::ack_matches(const message& m) const {
  return m.op_seq == cl_.op_seq && m.epoch == epoch_ &&
         ((cl_.phase == phase_kind::write_query && m.round == 1) ||
          (cl_.phase == phase_kind::read_query && m.round == 1) ||
          (cl_.phase == phase_kind::lease_grant && m.round == 1) ||
          (cl_.phase == phase_kind::write_update && m.round == 2) ||
          (cl_.phase == phase_kind::read_update && m.round == 2) ||
          (cl_.phase == phase_kind::recovery_update && m.round == 2));
}

void quorum_core::handle_ack(const message& m, outputs& out) {
  if (!ack_matches(m)) return;  // stale phase / stale incarnation
  if (m.from.index >= n_) return;
  // Batched update rounds settle per (process, register) — a trimmed
  // retransmission's ack covers only part of the batch, so a process may
  // legitimately ack more than once; coverage marking is idempotent.
  const bool batched_update = cl_.is_batch && in_update_phase();
  if (!batched_update && cl_.responded[m.from.index]) return;  // duplicate

  switch (cl_.phase) {
    case phase_kind::write_query:
      if (m.kind != msg_kind::sn_ack) return;
      if (cl_.is_batch) {
        for (const batch_entry& e : m.batch) {
          if (batch_slot* s = find_slot(e.reg)) s->max_sn = std::max(s->max_sn, e.ts.sn);
        }
      } else {
        cl_.max_sn = std::max(cl_.max_sn, m.ts.sn);
      }
      break;
    case phase_kind::lease_grant:
    case phase_kind::read_query: {
      if (m.kind != (cl_.phase == phase_kind::lease_grant ? msg_kind::lease_grant_ack
                                                          : msg_kind::read_ack)) {
        return;
      }
      if (cl_.is_batch) {
        for (const batch_entry& e : m.batch) {
          batch_slot* s = find_slot(e.reg);
          if (s == nullptr) continue;
          if (!s->have_first) {
            s->have_first = true;
            s->first_tag = e.ts;
            s->first_val = e.val;
          }
          if (s->best_tag < e.ts) {
            s->best_tag = e.ts;
            s->best_val = e.val;
          }
        }
      } else {
        if (!cl_.have_first) {
          cl_.have_first = true;
          cl_.first_tag = m.ts;
          cl_.first_val = m.val;
        }
        if (cl_.best_tag < m.ts) {
          cl_.best_tag = m.ts;
          cl_.best_val = m.val;
        }
      }
      break;
    }
    case phase_kind::write_update:
    case phase_kind::read_update:
    case phase_kind::recovery_update:
      if (m.kind != msg_kind::write_ack) return;
      // The ack may name leaseholders this update must also hear from;
      // widen the requirement before testing settlement below.
      if (pol_.read_leases && !m.leases.empty()) merge_lease_notes(m);
      break;
    case phase_kind::idle:
    case phase_kind::write_prelog:
      return;
  }

  cl_.depth = std::max(cl_.depth, m.log_depth);
  if (batched_update) {
    if (!cover_batch_slots(m)) return;  // duplicate coverage
    // A fully-covering process counts as responded (the retransmission loop
    // skips it entirely; partial coverers keep receiving trimmed repeats).
    bool covered_all = true;
    for (std::uint32_t i = 0; i < cl_.batch_n; ++i) {
      if (!cl_.batch[i].acked[m.from.index]) covered_all = false;
    }
    if (covered_all && !cl_.responded[m.from.index]) {
      cl_.responded[m.from.index] = true;
      cl_.responses += 1;
    }
    // Completion is per register: every slot durable at its own majority.
    if (!batch_update_settled()) return;
  } else {
    cl_.responded[m.from.index] = true;
    cl_.responses += 1;
    if (cl_.responses < quorum_size()) return;
    // A majority is not enough while a noted leaseholder is silent: its ack
    // is what proves the holder served (and thus invalidated against) this
    // update. Retransmission keeps poking the silent holder.
    if (in_update_phase() && !lease_reqs_met()) return;
  }

  // Quorum reached: advance the state machine.
  switch (cl_.phase) {
    case phase_kind::write_query: {
      // Fig. 4 line 11: sn := sn + 1; Fig. 5 line 11: sn := sn + rec + 1.
      const std::int64_t bump = pol_.recovery_counter ? rec_ + 1 : 1;
      if (cl_.is_batch) {
        for (std::uint32_t i = 0; i < cl_.batch_n; ++i) {
          batch_slot& s = cl_.batch[i];
          s.pending_tag = tag{s.max_sn + bump, pol_.rec_in_tag ? rec_ : 0, self_};
          wsn_ = std::max(wsn_, s.pending_tag.sn);
        }
      } else {
        cl_.pending_tag = tag{cl_.max_sn + bump, pol_.rec_in_tag ? rec_ : 0, self_};
        wsn_ = std::max(wsn_, cl_.pending_tag.sn);
      }
      proceed_after_query(out);
      break;
    }
    case phase_kind::lease_grant:
    case phase_kind::read_query: {
      if (pol_.read_writeback) {
        message& wb = stage_msg(msg_kind::writeback, 2, cl_.depth);
        if (cl_.is_batch) {
          wb.batch.resize(cl_.batch_n);
          for (std::uint32_t i = 0; i < cl_.batch_n; ++i) {
            wb.batch[i].reg = cl_.batch[i].reg;
            wb.batch[i].ts = cl_.batch[i].best_tag;
            wb.batch[i].val = cl_.batch[i].best_val;
          }
        } else {
          wb.ts = cl_.best_tag;
          wb.val = cl_.best_val;
        }
        begin_phase(phase_kind::read_update, out);
      } else {
        finish_operation(out);
      }
      break;
    }
    case phase_kind::write_update:
      // The write is settled at a majority: its (writing) records are now
      // recovery dead weight — queue them for the next pre-log's
      // piggybacked erasure.
      mark_prelogs_obsolete();
      finish_operation(out);
      break;
    case phase_kind::read_update:
      if (cl_.lease_grant && !cl_.lease_canceled) {
        // Activate the holding: anchor the floor — just written back to a
        // majority — in the local slot, and serve from it until revoked. If
        // the slot got AHEAD of the floor (an earlier adoption the grant's
        // ack majority missed), the local value is not known to be
        // majority-anchored: skip activation rather than serve it.
        replica_slot& rs = replicas_[cl_.reg];
        if (rs.vtag < cl_.best_tag) {
          rs.vtag = cl_.best_tag;
          rs.vval = cl_.best_val;
        }
        if (!(cl_.best_tag < rs.vtag)) {
          holdings_[cl_.reg] = cl_.lease_token;
          branches_.lease_grants += 1;
        }
      }
      finish_operation(out);
      break;
    case phase_kind::recovery_update:
      cl_.reset();
      ready_ = true;
      out.recovery_complete = true;
      break;
    case phase_kind::idle:
    case phase_kind::write_prelog:
      break;
  }
}

message& quorum_core::send_ack(const message& req, std::uint32_t depth, outputs& out) {
  send_request& s = out.sends.emplace_slot();
  s.to = req.from;
  message& ack = s.msg;  // recycled slot: every field assigned
  ack.kind = msg_kind::write_ack;
  ack.from = self_;
  ack.op_seq = req.op_seq;
  ack.round = req.round;
  ack.epoch = req.epoch;
  ack.ts = tag{};
  ack.val.data.clear();
  ack.log_depth = depth;
  ack.reg = req.reg;
  ack.batch.clear();
  ack.leases.clear();
  attach_lease_notes(ack, req);
  return ack;
}

// Update rounds ack a no-adopt duplicate immediately: the drivers guarantee
// a replica's listener is blocked while its (written) store is in flight
// (the simulator requeues deliveries past busy_until, and the log_done event
// sorts before them), so by the time a duplicate is served the first copy's
// log has landed and the immediate ack is truthful.
void quorum_core::serve_update(const message& m, outputs& out) {
  replica_slot* found = replicas_.find(m.reg);
  const bool adopt = (found != nullptr ? found->vtag : initial_tag) < m.ts;
  (adopt ? branches_.adoptions : branches_.stale_updates) += 1;
  if (adopt) {
    // Adopting would move the slot off a lease's anchored floor: revoke the
    // holding first. (Stale updates leave the slot — and the lease — alone.)
    drop_holding_on_update(m, m.reg);
    // Insert only on adoption: registers merely heard about (stale
    // write-backs of the initial tag, retransmissions) hold no state here.
    replica_slot& rs = found != nullptr ? *found : replicas_[m.reg];
    rs.vtag = m.ts;
    rs.vval = m.val;
    const bool log_this = !pol_.crash_stop &&
                          (m.kind == msg_kind::write ? pol_.log_on_adopt
                                                     : pol_.log_on_read_writeback);
    if (log_this) {
      // Fig. 4 line 24: store(written, sn, pid, v) before acking.
      log_request& lr = out.logs.emplace_slot();  // recycled: all assigned
      lr.key = written_key_of(m.reg);
      encode_tagged_value_into(lr.record, rs.vtag, rs.vval);
      lr.token = fresh_token();
      lr.ctx = exec_context::listener;
      lr.depth_after = m.log_depth + 1;
      lr.op_seq = m.op_seq;
      lr.origin = m.from;
      lr.epoch = m.epoch;
      lr.obsoletes.clear();
      pending_log& pl = pending_logs_[lr.token];
      pl = pending_log{};
      pl.k = pending_log::kind::server_adopt;
      pl.to = m.from;
      pl.op_seq = m.op_seq;
      pl.round = m.round;
      pl.epoch = m.epoch;
      pl.depth = m.log_depth + 1;
      pl.reg = m.reg;
      return;  // ack deferred until durable
    }
  }
  send_ack(m, m.log_depth, out);
}

void quorum_core::serve_update_batch(const message& m, outputs& out) {
  const bool log_this = !pol_.crash_stop &&
                        (m.kind == msg_kind::write ? pol_.log_on_adopt
                                                   : pol_.log_on_read_writeback);
  std::uint32_t logs_needed = 0;
  std::uint64_t group = 0;
  std::uint32_t adopted = 0;
  for (const batch_entry& e : m.batch) {
    replica_slot* found = replicas_.find(e.reg);
    if (!((found != nullptr ? found->vtag : initial_tag) < e.ts)) {
      branches_.stale_updates += 1;
      continue;
    }
    branches_.adoptions += 1;
    ++adopted;
    drop_holding_on_update(m, e.reg);
    replica_slot& rs = found != nullptr ? *found : replicas_[e.reg];
    rs.vtag = e.ts;
    rs.vval = e.val;
    if (!log_this) continue;
    // One (written) log per adopted register; the batched ack fires once
    // every one of them is durable, so the invoker's quorum still counts
    // only fully-persistent replicas.
    if (group == 0) group = fresh_token();
    log_request& lr = out.logs.emplace_slot();  // recycled: all assigned
    lr.key = written_key_of(e.reg);
    encode_tagged_value_into(lr.record, rs.vtag, rs.vval);
    lr.token = fresh_token();
    lr.ctx = exec_context::listener;
    lr.depth_after = m.log_depth + 1;
    lr.op_seq = m.op_seq;
    lr.origin = m.from;
    lr.epoch = m.epoch;
    lr.obsoletes.clear();
    pending_log& pl = pending_logs_[lr.token];
    pl = pending_log{};
    pl.k = pending_log::kind::server_adopt;
    pl.reg = e.reg;
    pl.group = group;
    ++logs_needed;
  }
  if (adopted > 0 && adopted < m.batch.size()) branches_.adopt_splits += 1;
  if (logs_needed == 0) {
    // Every register of the message is already durable at >= its tag: ack
    // immediately, listing the registers covered (the sender settles each
    // register against its own majority — see handle_ack).
    message& ack = send_ack(m, m.log_depth, out);
    for (const batch_entry& e : m.batch) add_ack_coverage(ack, e.reg);
    return;
  }
  batch_ack& ba = batch_acks_[group];
  ba.to = m.from;
  ba.op_seq = m.op_seq;
  ba.round = m.round;
  ba.epoch = m.epoch;
  ba.depth = m.log_depth + 1;
  ba.remaining = logs_needed;
  ba.regs.clear();
  if (pol_.trim_batch_retransmit && logs_needed < m.batch.size()) {
    // Split ack: registers that adopted nothing are durable at >= their tag
    // *now* — vouch for them immediately and let the group ack cover only
    // the registers whose (written) logs are still in flight. The early
    // per-register votes settle unchanged registers at the sender sooner,
    // which is what lets its retransmissions drop them from the repeat
    // payload (common under contention: racing batches overlap only partly,
    // and a read write-back usually adopts almost nothing).
    //
    // Classification: an entry whose replica tag equals e.ts either just
    // adopted (its log is in this group) or was an equal-tag duplicate whose
    // earlier log is already durable (the driver blocks the listener while a
    // store is in flight) — grouping duplicates merely delays their vote, so
    // the split stays sound either way.
    const auto grouped = [this](const batch_entry& e) {
      const replica_slot* rs = replicas_.find(e.reg);
      return rs != nullptr && rs->vtag == e.ts;
    };
    std::size_t instant = 0;
    for (const batch_entry& e : m.batch) {
      if (!grouped(e)) ++instant;
    }
    if (instant > 0) {
      message& ack = send_ack(m, m.log_depth, out);
      for (const batch_entry& e : m.batch) {
        if (grouped(e)) {
          ba.regs.push_back(e.reg);
        } else {
          add_ack_coverage(ack, e.reg);
        }
      }
      return;
    }
  }
  // Untrimmed (or fully-adopting) path: one deferred ack covers the batch.
  for (const batch_entry& e : m.batch) ba.regs.push_back(e.reg);
}

void quorum_core::serve(const message& m, outputs& out) {
  switch (m.kind) {
    case msg_kind::sn_query: {
      send_request& s = out.sends.emplace_slot();
      s.to = m.from;
      message& ack = s.msg;  // recycled slot: every field assigned
      ack.kind = msg_kind::sn_ack;
      ack.from = self_;
      ack.op_seq = m.op_seq;
      ack.round = m.round;
      ack.epoch = m.epoch;
      ack.val.data.clear();
      ack.log_depth = m.log_depth;
      ack.reg = m.reg;
      ack.leases.clear();
      if (m.is_batch()) {
        ack.ts = tag{};
        ack.batch.resize(m.batch.size());
        for (std::size_t i = 0; i < m.batch.size(); ++i) {
          ack.batch[i].reg = m.batch[i].reg;
          ack.batch[i].ts = replica_tag(m.batch[i].reg);
          ack.batch[i].val.data.clear();
        }
      } else {
        ack.ts = replica_tag(m.reg);
        ack.batch.clear();
      }
      return;
    }
    case msg_kind::read_query: {
      send_request& s = out.sends.emplace_slot();
      s.to = m.from;
      message& ack = s.msg;  // recycled slot: every field assigned
      ack.kind = msg_kind::read_ack;
      ack.from = self_;
      ack.op_seq = m.op_seq;
      ack.round = m.round;
      ack.epoch = m.epoch;
      ack.log_depth = m.log_depth;
      ack.reg = m.reg;
      ack.leases.clear();
      if (m.is_batch()) {
        ack.ts = tag{};
        ack.val.data.clear();
        ack.batch.resize(m.batch.size());
        for (std::size_t i = 0; i < m.batch.size(); ++i) {
          const register_id reg = m.batch[i].reg;
          ack.batch[i].reg = reg;
          const replica_slot* rs = replicas_.find(reg);
          if (rs != nullptr) {
            ack.batch[i].ts = rs->vtag;
            ack.batch[i].val = rs->vval;  // copy-assign into retained capacity
          } else {
            ack.batch[i].ts = initial_tag;
            ack.batch[i].val.data.clear();
          }
        }
      } else {
        const replica_slot* rs = replicas_.find(m.reg);
        if (rs != nullptr) {
          ack.ts = rs->vtag;
          ack.val = rs->vval;  // copy-assign into retained capacity
        } else {
          ack.ts = initial_tag;
          ack.val.data.clear();
        }
        ack.batch.clear();
      }
      return;
    }
    case msg_kind::write:
    case msg_kind::writeback: {
      if (m.is_batch()) {
        serve_update_batch(m, out);
      } else {
        serve_update(m, out);
      }
      return;
    }
    case msg_kind::lease_grant: {
      // Grantor side of a lease round. Record the holder in the volatile
      // registry NOW (so any update served from here on carries the note),
      // make the record durable, and defer the ack until the store lands —
      // the ack's (tag, value) is read at ack-build time, so it reflects
      // every update this replica served while the store was in flight.
      if (m.from.index >= 64) return;  // leases require n <= 64 (driver-enforced)
      grantor_lease& g = granted_[m.reg];
      g.holder_mask |= 1ULL << m.from.index;
      if (g.expiry_token != 0 && lease_tokens_.find(g.expiry_token) != nullptr) {
        // A clock is already running for this register: let it re-arm for a
        // fresh full duration when it fires instead of stacking timers. The
        // record then lives at least serve-instant + duration, which still
        // outlives every holder's own (send-time) clock.
        g.rearm = true;
      } else {
        // Fresh full-duration clock from the serve instant: strictly later
        // than the holder's send-time clock, so this record outlives every
        // read the holder may serve under the lease.
        g.expiry_token = fresh_token();
        lease_tokens_[g.expiry_token] = lease_timer_target{m.reg, /*grantor=*/true};
        out.lease_timers.push_back(timer_request{g.expiry_token, pol_.lease_duration});
      }
      if ((g.durable_mask >> m.from.index) & 1) {
        // Re-grant to a holder the stable record already covers (the common
        // case at the Zipf head, where every write triggers a re-grant):
        // nothing new to make durable, so ack immediately. The (tag, value)
        // is read now, same freshness argument as the deferred ack.
        send_request& s = out.sends.emplace_slot();
        s.to = m.from;
        message& ack = s.msg;  // recycled slot: every field assigned
        ack.kind = msg_kind::lease_grant_ack;
        ack.from = self_;
        ack.op_seq = m.op_seq;
        ack.round = m.round;
        ack.epoch = m.epoch;
        const replica_slot* rs = replicas_.find(m.reg);
        if (rs != nullptr) {
          ack.ts = rs->vtag;
          ack.val = rs->vval;  // copy-assign into retained capacity
        } else {
          ack.ts = initial_tag;
          ack.val.data.clear();
        }
        ack.log_depth = m.log_depth;
        ack.reg = m.reg;
        ack.batch.clear();
        ack.leases.clear();
        return;
      }
      log_request& lr = out.logs.emplace_slot();  // recycled: all assigned
      lr.key = lease_key_of(m.reg);
      lr.record = encode(lease_record{g.holder_mask});
      lr.token = fresh_token();
      lr.ctx = exec_context::listener;
      lr.depth_after = m.log_depth + 1;
      lr.op_seq = m.op_seq;
      lr.origin = m.from;
      lr.epoch = m.epoch;
      lr.obsoletes.clear();
      pending_log& pl = pending_logs_[lr.token];
      pl = pending_log{};
      pl.k = pending_log::kind::lease_record;
      pl.to = m.from;
      pl.op_seq = m.op_seq;
      pl.round = m.round;
      pl.epoch = m.epoch;
      pl.depth = m.log_depth + 1;
      pl.reg = m.reg;
      pl.lease_mask = g.holder_mask;
      return;
    }
    case msg_kind::sn_ack:
    case msg_kind::read_ack:
    case msg_kind::write_ack:
    case msg_kind::lease_grant_ack:
      handle_ack(m, out);
      return;
  }
}

void quorum_core::on_message(const message& m, outputs& out) {
  check_input_allowed("on_message");
  serve(m, out);
}

void quorum_core::on_log_done(std::uint64_t token, outputs& out) {
  check_input_allowed("on_log_done");
  const pending_log* hit = pending_logs_.find(token);
  if (hit == nullptr) return;  // stale (pre-crash) completion
  const pending_log pl = *hit;
  pending_logs_.erase(token);

  switch (pl.k) {
    case pending_log::kind::server_adopt: {
      if (pl.group != 0) {
        // One register of a batched update became durable; ack when the
        // whole batch has.
        batch_ack* ba = batch_acks_.find(pl.group);
        if (ba == nullptr) return;  // stale (pre-crash) group
        if (--ba->remaining > 0) return;
        send_request& s = out.sends.emplace_slot();
        s.to = ba->to;
        message& ack = s.msg;  // recycled slot: every field assigned
        ack.kind = msg_kind::write_ack;
        ack.from = self_;
        ack.op_seq = ba->op_seq;
        ack.round = ba->round;
        ack.epoch = ba->epoch;
        ack.ts = tag{};
        ack.val.data.clear();
        ack.log_depth = ba->depth;
        ack.reg = default_register;
        ack.batch.clear();
        ack.leases.clear();
        for (const register_id reg : ba->regs) {
          add_ack_coverage(ack, reg);
          attach_lease_note_for(ack, reg);
        }
        batch_acks_.erase(pl.group);
        return;
      }
      send_request& s = out.sends.emplace_slot();
      s.to = pl.to;
      message& ack = s.msg;  // recycled slot: every field assigned
      ack.kind = msg_kind::write_ack;
      ack.from = self_;
      ack.op_seq = pl.op_seq;
      ack.round = pl.round;
      ack.epoch = pl.epoch;
      ack.ts = tag{};
      ack.val.data.clear();
      ack.log_depth = pl.depth;
      ack.reg = pl.reg;
      ack.batch.clear();
      ack.leases.clear();
      attach_lease_note_for(ack, pl.reg);
      return;
    }
    case pending_log::kind::lease_record: {
      // The grant is durable: ack with the replica's CURRENT (tag, value).
      // Reading it now (not at receipt) is what makes the deferred ack safe:
      // it is >= every update this replica served before answering, so the
      // holder's floor covers them all.
      grantor_lease* g = granted_.find(pl.reg);
      if (g != nullptr) g->durable_mask = pl.lease_mask;
      send_request& s = out.sends.emplace_slot();
      s.to = pl.to;
      message& ack = s.msg;  // recycled slot: every field assigned
      ack.kind = msg_kind::lease_grant_ack;
      ack.from = self_;
      ack.op_seq = pl.op_seq;
      ack.round = pl.round;
      ack.epoch = pl.epoch;
      const replica_slot* rs = replicas_.find(pl.reg);
      if (rs != nullptr) {
        ack.ts = rs->vtag;
        ack.val = rs->vval;  // copy-assign into retained capacity
      } else {
        ack.ts = initial_tag;
        ack.val.data.clear();
      }
      ack.log_depth = pl.depth;
      ack.reg = pl.reg;
      ack.batch.clear();
      ack.leases.clear();
      return;
    }
    case pending_log::kind::writer_prelog: {
      if (cl_.phase != phase_kind::write_prelog) return;  // crashed & stale
      if (cl_.prelogs_pending > 0 && --cl_.prelogs_pending > 0) return;
      // The batch's concurrent (writing) stores count one causal-log step.
      cl_.depth += 1;
      begin_update_round(out);
      return;
    }
    case pending_log::kind::recovery_counter: {
      ready_ = true;
      out.recovery_complete = true;
      return;
    }
  }
}

void quorum_core::on_timer(std::uint64_t token, outputs& out) {
  check_input_allowed("on_timer");
  if (token != cl_.retrans_token) return;  // stale timer
  switch (cl_.phase) {
    case phase_kind::idle:
    case phase_kind::write_prelog:
      return;
    default:
      break;
  }
  // Repeat the pseudocode's "repeat send until" loop: re-send to the
  // processes that have not answered this phase yet. Batched update rounds
  // with trimming on shrink each repeat to the registers that still need the
  // recipient's vote: settled registers (majority-durable) and registers the
  // recipient already acked carry no information, so their (tag, value)
  // payloads are dropped from the wire.
  const bool trim = pol_.trim_batch_retransmit && cl_.is_batch && in_update_phase();
  branches_.retransmits += 1;
  if (trim) branches_.retransmit_trims += 1;
  const std::size_t full_bytes = wire_size(cl_.current);
  for (std::uint32_t i = 0; i < n_; ++i) {
    if (cl_.responded[i]) continue;
    // Savings accounting (trim effectiveness): `full` charges what an
    // untrimmed repeat to this process would cost; `sent` charges what
    // actually hit the wire. Their per-retransmission ratio — not a
    // total-traffic fraction — is the honest measure of the trim.
    branches_.retransmit_bytes_full += full_bytes;
    if (!trim) {
      branches_.retransmit_bytes_sent += full_bytes;
      send_request& s = out.sends.emplace_slot();
      s.to = process_id{i};
      s.msg = cl_.current;  // copy-assign into retained capacity
      continue;
    }
    send_request* s = nullptr;
    for (std::uint32_t j = 0; j < cl_.batch_n; ++j) {
      const batch_slot& sl = cl_.batch[j];
      // A slot needs nothing from i once it is settled (majority-durable
      // AND every noted leaseholder heard) or i already acked it.
      if (slot_settled(sl) || sl.acked[i]) continue;
      if (s == nullptr) {
        s = &out.sends.emplace_slot();
        s->to = process_id{i};
        message& mm = s->msg;  // recycled slot: every field assigned
        mm.kind = cl_.current.kind;
        mm.from = cl_.current.from;
        mm.op_seq = cl_.current.op_seq;
        mm.round = cl_.current.round;
        mm.epoch = cl_.current.epoch;
        mm.ts = tag{};
        mm.val.data.clear();
        mm.log_depth = cl_.current.log_depth;
        mm.reg = cl_.current.reg;
        mm.batch.clear();
        mm.leases.clear();
      }
      // Slot j's staged entry is index-aligned with the live batch (every
      // update-round staging fills cl_.current.batch in slot order).
      s->msg.batch.push_back(cl_.current.batch[j]);
    }
    if (s != nullptr) branches_.retransmit_bytes_sent += wire_size(s->msg);
  }
  arm_timer(out);
}

void quorum_core::on_lease_expiry(std::uint64_t token, outputs& out) {
  check_input_allowed("on_lease_expiry");
  const lease_timer_target* t = lease_tokens_.find(token);
  if (t == nullptr) return;  // pre-crash or already-superseded deadline
  const lease_timer_target tt = *t;
  lease_tokens_.erase(token);
  if (tt.grantor) {
    grantor_lease* g = granted_.find(tt.reg);
    if (g == nullptr || g->expiry_token != token) return;  // re-granted since
    if (g->rearm) {
      // Grants arrived while this clock ran: give the record one more full
      // duration (covering the latest serve instant) instead of expiring.
      g->rearm = false;
      g->expiry_token = fresh_token();
      lease_tokens_[g->expiry_token] = lease_timer_target{tt.reg, /*grantor=*/true};
      out.lease_timers.push_back(timer_request{g->expiry_token, pol_.lease_duration});
      return;
    }
    // The last grant's clock ran out. Every holder's own (send-time) clock
    // expired strictly earlier, so no one is serving under this record:
    // forget it, volatile and stable alike.
    granted_.erase(tt.reg);
    store_.erase(lease_key_of(tt.reg));
    branches_.lease_expiries += 1;
    return;
  }
  // Holder side: the serving window is over.
  if (cl_.lease_grant && !cl_.lease_canceled && cl_.phase != phase_kind::idle &&
      cl_.lease_token == token) {
    // Grant round still in flight at its own deadline — completing it would
    // activate an already-expired holding; void it (the read still finishes
    // as a plain quorum read).
    cl_.lease_canceled = true;
    branches_.lease_expiries += 1;
    return;
  }
  const std::uint64_t* h = holdings_.find(tt.reg);
  if (h != nullptr && *h == token) {
    holdings_.erase(tt.reg);
    branches_.lease_expiries += 1;
  }
}

// ---- Rebalancing hooks -------------------------------------------------------

void quorum_core::adopt_if_newer(register_id reg, const tag& ts, const value& v) {
  check_input_allowed("adopt_if_newer");
  replica_slot* found = replicas_.find(reg);
  if (found != nullptr ? !(found->vtag < ts) : !(initial_tag < ts)) {
    wsn_ = std::max(wsn_, ts.sn);
    return;
  }
  // An imported (newer) value moves the slot off any lease floor: revoke,
  // exactly as a served update would (no message context here, so a pending
  // grant for the register is voided unconditionally — conservative).
  if (pol_.read_leases) {
    if (holdings_.erase(reg)) branches_.lease_invalidations += 1;
    if (cl_.lease_grant && !cl_.lease_canceled && cl_.phase != phase_kind::idle &&
        cl_.reg == reg) {
      cl_.lease_canceled = true;
      branches_.lease_invalidations += 1;
    }
  }
  replica_slot& rs = found != nullptr ? *found : replicas_[reg];
  rs.vtag = ts;
  rs.vval = v;
  // Never re-mint a transferred sequence number (mirrors recovery's replay).
  wsn_ = std::max(wsn_, ts.sn);
}

std::uint32_t quorum_core::evict(register_id reg) {
  replicas_.erase(reg);
  read_heat_.erase(reg);
  std::uint32_t dropped = 0;
  if (holdings_.erase(reg)) ++dropped;
  if (granted_.erase(reg)) ++dropped;
  return dropped;
}

void quorum_core::for_each_register(const std::function<void(register_id)>& fn) const {
  replicas_.for_each([&fn](register_id reg, const replica_slot&) { fn(reg); });
}

void quorum_core::crash() {
  if (!up_) return;
  up_ = false;
  ready_ = false;
  replicas_.clear();
  rec_ = 0;
  wsn_ = 0;
  cl_ = client_state{};
  pending_logs_.clear();
  batch_acks_.clear();
  obsolete_prelogs_.clear();
  // Lease state: holdings are volatile by design (a crash IS the holder's
  // revocation); the grantor registry is re-read from stable storage during
  // recovery; armed deadlines die with the incarnation.
  granted_.clear();
  holdings_.clear();
  read_heat_.clear();
  lease_tokens_.clear();
  // branches_ deliberately survives: it is a whole-run coverage diagnostic,
  // not protocol state, and zeroing it on crash would erase everything a
  // blackout-heavy schedule observed.
  op_counter_ = 0;
}

void quorum_core::restore_volatile_from_stable() {
  // Replay every register's (written) record; registers with no record
  // restore to the initial value ⊥.
  replicas_.clear();
  std::int64_t max_sn = 0;
  store_.for_each(storage::record_area::written,
                  [&](register_id reg, const bytes& rec) {
                    const auto tv = decode_tagged_value(rec);
                    replica_slot& rs = replicas_[reg];
                    rs.vtag = tv.ts;
                    rs.vval = tv.val;
                    max_sn = std::max(max_sn, tv.ts.sn);
                  });
  wsn_ = max_sn;
  // Grantor registry: every durably-noted lease is restored so updates
  // served by this incarnation keep carrying the holder notes. Restoring a
  // lease whose holder has since expired or crashed is merely conservative
  // (the writer waits on one extra ack); forgetting a live one would let a
  // write settle without the holder hearing of it.
  granted_.clear();
  holdings_.clear();
  read_heat_.clear();
  if (pol_.read_leases) {
    store_.for_each(storage::record_area::lease,
                    [&](register_id reg, const bytes& rec) {
                      grantor_lease& g = granted_[reg];
                      g.holder_mask = decode_lease(rec).holder_mask;
                      // Restored FROM the stable record, so durable by
                      // definition: re-grants can ack immediately.
                      g.durable_mask = g.holder_mask;
                    });
  }
}

void quorum_core::recover(std::uint64_t new_epoch, outputs& out) {
  if (pol_.crash_stop) {
    throw precondition_error("quorum_core: recover() in the crash-stop model");
  }
  if (up_) throw precondition_error("quorum_core: recover() while up");
  up_ = true;
  ready_ = false;
  epoch_ = new_epoch;
  restore_volatile_from_stable();

  if (pol_.read_leases) {
    // Restored grantor records get a fresh full-duration clock. Conservative
    // on both sides: any pre-crash holder's clock started before the crash
    // and so runs out before this fresh one, and no deadline needs to be
    // made durable.
    std::vector<register_id> regs;  // cold path
    granted_.for_each(
        [&regs](register_id reg, const grantor_lease&) { regs.push_back(reg); });
    for (const register_id reg : regs) {
      grantor_lease* g = granted_.find(reg);
      g->expiry_token = fresh_token();
      lease_tokens_[g->expiry_token] = lease_timer_target{reg, /*grantor=*/true};
      out.lease_timers.push_back(timer_request{g->expiry_token, pol_.lease_duration});
    }
  }

  if (pol_.recovery_counter) {
    // Paper Fig. 5 Recover: rec := rec + 1; store(recovered, rec).
    std::int64_t prev = 0;
    if (const auto rec = store_.retrieve(recovered_key)) {
      prev = decode_recovery(*rec).recoveries;
    }
    rec_ = prev + 1;
    log_request lr;
    lr.key = recovered_key;
    lr.record = encode(recovery_record{rec_});
    lr.token = fresh_token();
    lr.ctx = exec_context::client;
    lr.depth_after = 1;
    lr.op_seq = 0;  // recovery, not an operation
    lr.origin = self_;
    lr.epoch = epoch_;
    pending_log& pl = pending_logs_[lr.token];
    pl = pending_log{};
    pl.k = pending_log::kind::recovery_counter;
    out.logs.push_back(std::move(lr));
    return;
  }

  if (pol_.recovery_finish_write) {
    // Paper Fig. 4 Recover: re-run the write's second round with the logged
    // (writing) records — every register with a pre-log, batched into one
    // round. Harmless when there was no unfinished write (adopt-if-newer).
    std::vector<std::pair<register_id, tagged_value_record>> pend;  // cold path
    store_.for_each(storage::record_area::writing,
                    [&](register_id reg, const bytes& rec) {
                      pend.emplace_back(reg, decode_tagged_value(rec));
                      // A pre-logged sequence number was used: never reissue
                      // it (single-writer variants draw from wsn_; without
                      // this a recovered writer could mint a duplicate tag
                      // for a different value and the write would vanish).
                      wsn_ = std::max(wsn_, pend.back().second.ts.sn);
                      // The finish-write round will settle these records at
                      // a majority before any invocation resumes, so they
                      // can be erased by the next pre-log (same soundness
                      // gate as mark_prelogs_obsolete: query-round tags).
                      if (pol_.write_query_round) {
                        obsolete_prelogs_.push_back(writing_key_of(reg));
                      }
                    });
    cl_.reset();
    cl_.op_seq = ++op_counter_;
    if (pend.size() <= 1) {
      // Zero or one record: the single-register shape (bit-for-bit the
      // pre-namespace recovery when only the default register was written).
      tagged_value_record w{initial_tag, initial_value()};
      if (!pend.empty()) {
        cl_.reg = pend.front().first;
        w = std::move(pend.front().second);
      }
      cl_.pending_tag = w.ts;
      cl_.payload = w.val;
      message& m = stage_msg(msg_kind::write, 2, 0);
      m.ts = w.ts;
      m.val = w.val;
    } else {
      cl_.is_batch = true;
      cl_.batch_n = static_cast<std::uint32_t>(pend.size());
      for (std::uint32_t i = 0; i < cl_.batch_n; ++i) {
        batch_slot& s = claim_slot(i, pend[i].first);
        s.pending_tag = pend[i].second.ts;
        s.payload = std::move(pend[i].second.val);
      }
      message& m = stage_msg(msg_kind::write, 2, 0);
      m.batch.resize(cl_.batch_n);
      for (std::uint32_t i = 0; i < cl_.batch_n; ++i) {
        m.batch[i].reg = cl_.batch[i].reg;
        m.batch[i].ts = cl_.batch[i].pending_tag;
        m.batch[i].val = cl_.batch[i].payload;
      }
    }
    branches_.recovery_finish_writes += 1;
    begin_phase(phase_kind::recovery_update, out);
    return;
  }

  // Nothing else to do (flawed variants, and transient_literal without its
  // counter would land here too).
  ready_ = true;
  out.recovery_complete = true;
}

}  // namespace remus::proto
