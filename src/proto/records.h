// Stable-storage record formats.
//
// The algorithms log three kinds of records (paper Figures 4 and 5):
//   * "writing"   — the writer's pre-log of (tag, value) before round 2
//                   (persistent emulation only; enables finish-on-recovery);
//   * "written"   — a replica's adopted (tag, value) (both emulations);
//   * "recovered" — the recovery counter (transient emulation only).
// In the multi-register namespace the "writing" and "written" areas are keyed
// per register (recovery replays every register's records); the recovery
// counter is per-process. Records overwrite in place; recovery reads the
// latest of each key.
#pragma once

#include <cstdint>

#include "common/codec.h"
#include "common/ids.h"
#include "common/timestamp.h"
#include "common/value.h"
#include "storage/stable_store.h"

namespace remus::proto {

[[nodiscard]] constexpr storage::record_key writing_key_of(register_id reg) noexcept {
  return {storage::record_area::writing, reg};
}
[[nodiscard]] constexpr storage::record_key written_key_of(register_id reg) noexcept {
  return {storage::record_area::written, reg};
}
[[nodiscard]] constexpr storage::record_key lease_key_of(register_id reg) noexcept {
  return {storage::record_area::lease, reg};
}

/// Default-register keys (the paper's single-register records), kept for the
/// single-key call sites and tests.
inline constexpr storage::record_key writing_key = writing_key_of(default_register);
inline constexpr storage::record_key written_key = written_key_of(default_register);
inline constexpr storage::record_key recovered_key{storage::record_area::recovered,
                                                   default_register};

struct tagged_value_record {
  tag ts;
  value val;

  friend bool operator==(const tagged_value_record&, const tagged_value_record&) = default;
};

[[nodiscard]] bytes encode(const tagged_value_record& r);
[[nodiscard]] tagged_value_record decode_tagged_value(const bytes& b);

/// Encode (ts, val) into `out`, reusing its capacity — the allocation-free
/// path for the per-operation "writing"/"written" logs (no record temporary,
/// no fresh buffer).
void encode_tagged_value_into(bytes& out, const tag& ts, const value& val);

/// A grantor's durable note of who may serve this register locally: one bit
/// per holder process index (leases require n <= 64). The record survives the
/// grantor's crash — recovery restores the registry, which is conservative:
/// a restored holder only makes writers wait for that holder's ack; the
/// holder itself forgets its (volatile) holding on crash, which is what binds
/// the lease to the holder's incarnation.
struct lease_record {
  std::uint64_t holder_mask = 0;

  friend bool operator==(const lease_record&, const lease_record&) = default;
};

[[nodiscard]] bytes encode(const lease_record& r);
[[nodiscard]] lease_record decode_lease(const bytes& b);

struct recovery_record {
  std::int64_t recoveries = 0;

  friend bool operator==(const recovery_record&, const recovery_record&) = default;
};

[[nodiscard]] bytes encode(const recovery_record& r);
[[nodiscard]] recovery_record decode_recovery(const bytes& b);

}  // namespace remus::proto
