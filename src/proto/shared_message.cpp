#include "proto/shared_message.h"

namespace remus::proto {

shared_message message_pool::make(const message& m) {
  detail::pooled_message* slot;
  if (free_.empty()) {
    slots_.push_back(std::make_unique<detail::pooled_message>());
    slot = slots_.back().get();
    slot->pool = this;
  } else {
    slot = free_.back();
    free_.pop_back();
  }
  // Copy-assign: the recycled slot's value keeps its capacity, so a payload
  // no larger than a previous occupant's costs no allocation.
  slot->msg = m;
  slot->refs = 1;
  return shared_message(slot);
}

}  // namespace remus::proto
