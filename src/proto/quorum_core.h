// The two-round quorum register core executing any protocol_policy.
//
// This is the paper's Figure 4 (persistent) and Figure 5 (transient)
// pseudocode, plus the crash-stop baseline they extend ([2] in the paper),
// expressed as one sans-I/O state machine — generalized from one register to
// a namespace of named registers multiplexed over the same cluster:
//
//   Write(v):  round 1  broadcast SN, await majority of SN_acks,
//                       sn := max + 1        (Fig. 4 line 11)
//                       sn := max + rec + 1  (Fig. 5 line 11)
//              [persistent] store(writing, sn, v), the first causal log
//              round 2  broadcast W([sn, i], v), await majority of W_acks;
//                       each replica adopts if newer and (crash-recovery)
//                       stores (written, sn, pid, v) before acking — the
//                       write's other causal log
//   Read():    round 1  broadcast R, await majority of R_acks, pick the
//                       lexicographically largest (tag, value)
//              round 2  broadcast the write-back; replicas adopt-if-newer
//                       (logging only when they actually adopt, which is why
//                       a crash-free uncontended read performs zero logs)
//   Recover(): restore every register's (written) record into volatile
//              state, then
//              [persistent] re-run round 2 with every logged (writing) record
//              [transient]  rec := rec + 1; store(recovered, rec)
//
// Multi-register semantics: all volatile and stable protocol state is keyed
// by register_id (the replica map is a flat hash preserving the
// zero-allocation steady state), and a *batched* invocation runs the same
// two rounds for a whole set of distinct registers at once — one broadcast
// carries every key's entry, every ack answers all of them, and a replica
// acks a batched update only once every adopted key's log is durable. Since
// linearizability is compositional, each register's projection of the
// resulting history satisfies the algorithm's criterion independently
// (checked by history::check_atomicity_per_key).
//
// The policy switches (see policy.h) turn individual steps on or off; the
// flawed variants used by the lower-bound tests are the same machine with a
// step removed, exactly like the paper's proofs remove a log and derive a
// violation.
//
// # Read leases (policy.read_leases)
//
// A process whose quorum reads keep hitting the same register turns the next
// read's first round into a *grant* round (msg_kind::lease_grant): every
// replica that answers first durably records (register, holder-bit) in the
// `lease` stable area — through the same store_and_obsolete WAL path as every
// other record — and only then acks with its (tag, value). The read then runs
// its normal write-back round, anchoring the freshest (tag, value) — the
// lease *floor* — at a majority, and the holder adopts the floor into its own
// replica slot. From that point reads of the register complete locally with
// zero messages, until one of three revocations:
//
//   * a served update (write round 2 or a read write-back) adopts a newer
//     value at the holder — the holding is dropped before the adoption, so an
//     active holding always serves exactly the majority-anchored floor;
//   * the lease expires — the holder stops at grant-send + lease_duration,
//     each grantor forgets at its record time + lease_duration (strictly
//     later, since the grant message's network delay is positive: writers
//     keep waiting for a holder at least as long as it may serve);
//   * the holder crashes — holdings are volatile and recovery never restores
//     them, which is what binds the lease to the holder's incarnation. The
//     durable records are *grantor*-side only; a grantor's recovery restores
//     its registry (conservative: it only makes writers wait).
//
// Writers learn of holders via lease notes attached to update-round acks and
// must collect an ack from every noted holder before completing (on top of
// the majority). Safety is quorum intersection: a completing update's
// majority meets the grant's majority in some process r*, which either
// recorded the grant before serving the update — its ack carries the note,
// so the update waits for the holder, who drops its holding when it serves
// the update — or served the update before answering the grant, in which
// case the grant's floor already covers the update's tag.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"
#include "common/flat_hash.h"
#include "proto/register_core.h"
#include "proto/records.h"
#include "storage/stable_store.h"

namespace remus::proto {

class quorum_core final : public register_core {
 public:
  /// `store` must outlive the core and survives crash() (stable storage).
  quorum_core(protocol_policy pol, process_id self, std::uint32_t n,
              storage::stable_store& store, std::uint64_t initial_epoch);

  using register_core::invoke_read;
  using register_core::invoke_write;
  using register_core::replica_tag;
  using register_core::replica_value;

  // The sans-I/O contract: every entry point appends *effects* (messages to
  // send, records to log, timers to arm, an operation outcome) to `out`; the
  // driver (core::cluster or runtime::node) executes them. The core never
  // performs I/O itself, which is what makes the same state machine run
  // under the simulator, the threaded runtime, and the unit tests.

  /// First call after construction; must emit no effects (a fresh process
  /// has nothing pending — recovery of a non-fresh one goes via recover()).
  void start(outputs& out) override;
  /// Begins a write of `reg`. Durability invariant on completion: when the
  /// write's outcome is reported, a majority of processes have the written
  /// (tag, value) in *stable* storage ([persistent] additionally: the writer
  /// logged its (writing) pre-log before round 2, so a crashed writer's
  /// recovery can finish the write). Tag invariant: the chosen tag exceeds
  /// every tag a query majority reported (Lemma 1(ii): later writes get
  /// strictly larger tags).
  void invoke_write(register_id reg, const value& v, outputs& out) override;
  /// Begins a read of `reg`. Invariant on completion: the returned (tag,
  /// value) — the freshest of a query majority — is itself at a majority
  /// (write-back round; replicas log before acking iff they adopt), so no
  /// later read can return an older value (Lemma 1(i)).
  void invoke_read(register_id reg, outputs& out) override;
  /// Batched variants: the same two rounds over a set of *distinct*
  /// registers — one broadcast per phase carries every key's entry, and a
  /// replica acks a batched update only after ALL of its adopted keys' logs
  /// are durable (the per-key invariants above then hold key-by-key).
  void invoke_write_batch(const std::vector<write_op>& ops, outputs& out) override;
  void invoke_read_batch(const std::vector<register_id>& regs, outputs& out) override;
  /// Feeds a delivered message. Safe under fair-lossy channels: duplicates,
  /// reordering, and stale-epoch traffic are tolerated (acks are matched by
  /// (origin, epoch, op_seq, round); replicas adopt-if-newer, so replay is
  /// idempotent).
  void on_message(const message& m, outputs& out) override;
  /// Completion of the stable-storage write identified by `token`. Acks
  /// deferred on durability (server adopts, writer pre-logs) are released
  /// here — never before the log is on disk; that ordering IS the paper's
  /// causal-log discipline.
  void on_log_done(std::uint64_t token, outputs& out) override;
  /// Retransmission timer: re-broadcasts the in-flight phase's message
  /// (fair-lossy channels deliver a message sent infinitely often).
  void on_timer(std::uint64_t token, outputs& out) override;
  /// A lease deadline (outputs::lease_timers) fired: the holder stops serving
  /// locally, or the grantor forgets its record (and erases the stable copy —
  /// pure compaction: a crash first merely restores an entry that expires
  /// again). Stale and superseded tokens are ignored.
  void on_lease_expiry(std::uint64_t token, outputs& out);
  /// Loses ALL volatile state (replica map, in-flight operation, pending
  /// acks); stable storage survives. The driver must discard every
  /// outstanding effect of this incarnation.
  void crash() override;
  /// Runs the policy's Recover() with a fresh epoch: restore volatile state
  /// from the (written) records, then [persistent] finish every pre-logged
  /// write via a batched round-2, or [transient] durably bump the recovery
  /// counter. ready() stays false — and invocations are rejected — until
  /// the procedure's own quorum rounds/logs complete.
  void recover(std::uint64_t new_epoch, outputs& out) override;

  [[nodiscard]] bool idle() const override { return cl_.phase == phase_kind::idle; }
  [[nodiscard]] bool ready() const override { return up_ && ready_; }
  [[nodiscard]] bool is_up() const override { return up_; }
  [[nodiscard]] const protocol_policy& policy() const override { return pol_; }
  [[nodiscard]] tag replica_tag(register_id reg) const override;
  [[nodiscard]] value replica_value(register_id reg) const override;

  /// Recovery-counter value (transient emulation; 0 otherwise).
  [[nodiscard]] std::int64_t recoveries() const { return rec_; }
  /// Majority size used for quorums.
  [[nodiscard]] std::uint32_t quorum_size() const;
  /// Incarnation nonce (request/response matching metadata).
  [[nodiscard]] std::uint64_t current_epoch() const { return epoch_; }
  /// Sequence number of the op in flight (or the last one when idle).
  [[nodiscard]] std::uint64_t current_op_seq() const { return cl_.op_seq; }
  /// The stable store backing this core (drivers execute log effects on it).
  [[nodiscard]] storage::stable_store& stable_storage() const { return store_; }
  /// Distinct registers this replica holds state for (diagnostics).
  [[nodiscard]] std::size_t replica_register_count() const { return replicas_.size(); }

  /// Protocol-branch counters: which rare paths an execution actually took.
  /// The scenario fuzzer folds these into its coverage accounting so
  /// generation can bias toward schedules that exercise under-hit branches.
  /// Cumulative across crashes (a run diagnostic, not protocol state).
  struct branch_stats {
    std::uint64_t adoptions = 0;         // serve_update adopted a newer value
    std::uint64_t stale_updates = 0;     // serve_update kept the local value
    std::uint64_t adopt_splits = 0;      // batched serve mixing adopt + stale
    std::uint64_t retransmits = 0;       // timer-driven phase re-broadcasts
    std::uint64_t retransmit_trims = 0;  // settled keys trimmed from those
    std::uint64_t recovery_finish_writes = 0;  // persistent recovery round 2
    std::uint64_t leased_read_hits = 0;    // reads served locally under a lease
    std::uint64_t leased_read_misses = 0;  // leases on, read paid the quorum round
    std::uint64_t lease_grants = 0;        // grant rounds that activated a holding
    std::uint64_t lease_invalidations = 0; // holdings dropped/canceled by an update
    std::uint64_t lease_expiries = 0;      // holdings/records dropped by the clock
    /// Retransmission byte accounting (bench: trimmed-repeat savings are
    /// measured against retransmitted traffic, not total traffic).
    std::uint64_t retransmit_bytes_sent = 0;  // wire bytes actually repeated
    std::uint64_t retransmit_bytes_full = 0;  // bytes untrimmed repeats would cost
  };
  [[nodiscard]] const branch_stats& branches() const { return branches_; }

  // ---- Rebalancing hooks (cluster::import_register / export_register) ----
  //
  // State transfer between quorum groups is driven by the shard router, not
  // by the protocol: these touch only this replica's *volatile* register
  // state and never emit effects (the matching stable records are written by
  // the driver through the store). They are input-order agnostic — adopting
  // is exactly the serve-an-update rule, so replaying or racing a transfer
  // against live traffic is idempotent.

  /// Adopt (ts, v) for `reg` iff newer than the local state (the replica's
  /// serve rule, applied out of band). Also advances the local write counter
  /// past ts.sn so single-writer variants never re-mint a transferred tag.
  void adopt_if_newer(register_id reg, const tag& ts, const value& v);
  /// Drop `reg`'s volatile state (its routing moved away; the stable records
  /// are erased separately by the driver). No-op if absent. Returns the
  /// number of lease-state entries dropped (an active holding and/or a
  /// grantor record): leases never survive a handoff, and the router logs
  /// the drop in its migration schedule.
  std::uint32_t evict(register_id reg);
  /// Enumerate registers with volatile replica state, in unspecified order
  /// (callers sort; needed to build migration worklists under policies that
  /// never log, where stable storage cannot enumerate the namespace).
  void for_each_register(const std::function<void(register_id)>& fn) const;

 private:
  enum class phase_kind : std::uint8_t {
    idle,
    write_query,     // round 1 of a write (SN)
    write_prelog,    // waiting for the (writing) store(s)
    write_update,    // round 2 of a write (W)
    read_query,      // round 1 of a read (R)
    read_update,     // round 2 of a read (write-back)
    recovery_update, // persistent recovery's finish-write round
    lease_grant      // round 1 of a lease-granting read (L)
  };

  /// One replica register's volatile state (paper: [sn, pid] and v).
  struct replica_slot {
    tag vtag;
    value vval;
  };

  /// One register's share of an in-flight batched (or single-key, slot 0
  /// unused) client operation.
  struct batch_slot {
    register_id reg = default_register;
    value payload;        // write argument
    tag pending_tag;      // tag chosen for round 2
    std::int64_t max_sn = 0;
    tag best_tag;         // freshest (tag, value) seen in a read's round 1
    value best_val;
    bool have_first = false;
    tag first_tag;        // first reply (safe-register reads)
    value first_val;
    /// Update-round settlement, per register: acks list the registers they
    /// cover, so each register independently reaches its own majority of
    /// durable copies. A settled register (ack_count >= quorum) is dropped
    /// from retransmissions when the policy trims them.
    std::vector<bool> acked;  // indexed by process
    std::uint32_t ack_count = 0;
    /// Leaseholders this register's update must additionally hear from
    /// (merged from the acks' lease notes; bit h = process h).
    std::uint64_t lease_req_mask = 0;
  };

  struct client_state {
    phase_kind phase = phase_kind::idle;
    std::uint64_t op_seq = 0;
    bool is_read = false;
    register_id reg = default_register;  // single-key target
    value payload;        // write argument
    tag pending_tag;      // tag chosen for round 2
    std::int64_t max_sn = 0;
    tag best_tag;         // freshest (tag, value) seen in a read's round 1
    value best_val;
    bool have_first = false;
    tag first_tag;        // first reply (safe-register reads)
    value first_val;
    std::vector<bool> responded;
    std::uint32_t responses = 0;
    std::uint32_t depth = 0;  // causal-log depth along this op
    std::uint64_t retrans_token = 0;
    message current;  // message being repeated until enough acks arrive
    // Batched operation state: slots [0, batch_n) are live; the vector only
    // grows, so slot buffers (payloads, best/first values) keep their
    // capacity across operations.
    bool is_batch = false;
    std::uint32_t batch_n = 0;
    std::vector<batch_slot> batch;
    std::uint32_t prelogs_pending = 0;  // outstanding (writing) stores
    // Lease state of the in-flight op (see quorum_core.cpp, "Read leases").
    bool lease_grant = false;     // this read's round 1 installs a lease
    bool lease_canceled = false;  // grant voided (update served / expired)
    std::uint64_t lease_token = 0;        // the grant's expiry-timer token
    std::uint64_t lease_req_mask = 0;     // single-key update: noted holders

    /// Reset for the next operation, keeping buffer capacity (payload,
    /// best/first values, `current`'s value) so steady-state operation
    /// startup allocates nothing.
    void reset() {
      phase = phase_kind::idle;
      op_seq = 0;
      is_read = false;
      reg = default_register;
      payload.data.clear();
      pending_tag = tag{};
      max_sn = 0;
      best_tag = tag{};
      best_val.data.clear();
      have_first = false;
      first_tag = tag{};
      first_val.data.clear();
      responses = 0;
      depth = 0;
      retrans_token = 0;
      is_batch = false;
      batch_n = 0;
      prelogs_pending = 0;
      lease_grant = false;
      lease_canceled = false;
      lease_token = 0;
      lease_req_mask = 0;
      // `responded` is re-assigned per phase; `current` is fully re-staged
      // by stage_msg() before any phase reads it; batch slots are re-staged
      // by claim_slot() before use.
    }
  };

  struct pending_log {
    enum class kind : std::uint8_t {
      server_adopt,
      writer_prelog,
      recovery_counter,
      lease_record  // grantor's (lease) store; ack the grant once durable
    };
    kind k = kind::server_adopt;
    // server_adopt fields: the ack to send once durable.
    process_id to;
    std::uint64_t op_seq = 0;
    std::uint32_t round = 0;
    std::uint64_t epoch = 0;
    std::uint32_t depth = 0;
    register_id reg = default_register;
    /// lease_record: the holder mask snapshot the store carries — becomes
    /// the grantor's durable_mask when the store lands.
    std::uint64_t lease_mask = 0;
    /// Non-zero: this log belongs to a batched update; the ack is owned by
    /// the batch_ack group with this token and fires when all logs land.
    std::uint64_t group = 0;
  };

  /// Deferred acknowledgement of a batched update: sent once `remaining`
  /// per-register (written) logs are durable. `regs` lists every register of
  /// the served message (adopted or not) — the ack reports them all, since
  /// "durable at >= this tag" holds for each once the adopted logs land.
  struct batch_ack {
    process_id to;
    std::uint64_t op_seq = 0;
    std::uint32_t round = 0;
    std::uint64_t epoch = 0;
    std::uint32_t depth = 0;
    std::uint32_t remaining = 0;
    std::vector<register_id> regs;
  };

  struct token_hash {
    std::size_t operator()(std::uint64_t t) const noexcept {
      return static_cast<std::size_t>(mix_u64(t));
    }
  };
  struct reg_hash {
    std::size_t operator()(register_id r) const noexcept {
      return static_cast<std::size_t>(mix_u64(r));
    }
  };

  void check_input_allowed(const char* what) const;
  void check_invocation_allowed(const char* what) const;
  void begin_phase(phase_kind ph, outputs& out);
  void proceed_after_query(outputs& out);
  void begin_update_round(outputs& out);
  void finish_operation(outputs& out);
  [[nodiscard]] bool ack_matches(const message& m) const;
  void handle_ack(const message& m, outputs& out);
  /// True while cl_ is in an update round (write round 2, read write-back,
  /// or recovery's finish-write round).
  [[nodiscard]] bool in_update_phase() const;
  /// Marks the registers `m` covers as acked by its sender; returns true if
  /// any register was newly covered.
  bool cover_batch_slots(const message& m);
  /// All live batch slots durable at their own majority.
  [[nodiscard]] bool batch_update_settled() const;
  void serve(const message& m, outputs& out);
  void serve_update(const message& m, outputs& out);
  void serve_update_batch(const message& m, outputs& out);
  /// Overwrite every header field of cl_.current (the phase's broadcast
  /// message) in place, reusing its value buffer; callers then set ts/val
  /// (and batch entries for batched phases).
  message& stage_msg(msg_kind k, std::uint32_t round, std::uint32_t depth);
  /// Stages a write_ack answering `req` and returns it (batched-update
  /// servers append the register list the ack covers).
  message& send_ack(const message& req, std::uint32_t depth, outputs& out);
  [[nodiscard]] std::uint64_t fresh_token() { return next_token_++; }
  void arm_timer(outputs& out);
  void restore_volatile_from_stable();
  /// Slot i of the in-flight batch, re-staged for register `r`.
  batch_slot& claim_slot(std::uint32_t i, register_id r);
  /// Live slot for register `r` of the in-flight batch (nullptr if absent).
  [[nodiscard]] batch_slot* find_slot(register_id r);
  void emit_prelog(register_id reg, const tag& ts, const value& val, bool lead,
                   outputs& out);
  /// Queues the settled write's (writing) records for piggybacked erasure
  /// on the next pre-log (the paper's "writing record obsolete" note).
  void mark_prelogs_obsolete();
  // ---- Read-lease helpers (see the file comment's "Read leases") ----
  /// Drops/cancels any holding of `reg` because an update for it is being
  /// served (`m` identifies the update, so a grant's own write-back never
  /// cancels itself).
  void drop_holding_on_update(const message& m, register_id reg);
  /// Appends a lease note to an update-round ack for every served register
  /// with a recorded grant (single-key `req.reg` or every batch entry).
  void attach_lease_notes(message& ack, const message& req);
  void attach_lease_note_for(message& ack, register_id reg);
  /// Merges an update ack's lease notes into the op's holder requirement.
  void merge_lease_notes(const message& m);
  /// Every noted holder of the single-key op has acked.
  [[nodiscard]] bool lease_reqs_met() const;
  /// Batched update slot settled: own majority AND every noted holder.
  [[nodiscard]] bool slot_settled(const batch_slot& s) const;

  const protocol_policy pol_;
  const process_id self_;
  const std::uint32_t n_;
  storage::stable_store& store_;

  // Volatile state (lost on crash). Per-register replica state lives in a
  // flat hash map: steady-state lookups and updates of a warm key set are
  // allocation-free, preserving the simulator's zero-allocation hot path.
  flat_hash_map<register_id, replica_slot, reg_hash> replicas_;
  std::int64_t rec_ = 0;    // recovery counter (paper Fig. 5: rec)
  std::int64_t wsn_ = 0;    // local write counter (single-writer variants)
  client_state cl_;
  flat_hash_map<std::uint64_t, pending_log, token_hash> pending_logs_;
  flat_hash_map<std::uint64_t, batch_ack, token_hash> batch_acks_;
  /// (writing) records whose write has settled at a majority: dead weight
  /// for recovery, erased via the NEXT pre-log's store_and_obsolete batch.
  /// Volatile by design — losing the list merely delays compaction, never
  /// correctness. Only populated under write_query_round policies: a
  /// single-writer core re-derives its counter from these records at
  /// recovery, so there they must outlive the write (see invoke_write).
  std::vector<storage::record_key> obsolete_prelogs_;
  // ---- Read-lease state ----
  /// Grantor side: who may be serving each register locally. Mirrors the
  /// durable (lease) records; restored from them on recovery (with fresh
  /// expiry timers), so a grantor crash never forgets a holder early.
  struct grantor_lease {
    std::uint64_t holder_mask = 0;
    /// Holder bits covered by a COMPLETED (lease) store. A re-grant whose
    /// bit is already durable is acked immediately — the stable record
    /// already prevents resurrection, so there is nothing to wait for.
    std::uint64_t durable_mask = 0;
    std::uint64_t expiry_token = 0;  // latest timer wins; stale ones no-op
    /// A grant arrived while the expiry clock was already running: instead
    /// of stacking a second timer, the running one re-arms for a fresh full
    /// duration when it fires. Only ever extends the record's life — the
    /// safe direction for a grantor (holders' own clocks are never moved).
    bool rearm = false;
  };
  flat_hash_map<register_id, grantor_lease, reg_hash> granted_;
  /// Holder side: registers this process serves locally, mapped to the
  /// grant's expiry token. Volatile ONLY — crash() clears it and recovery
  /// never restores it; that is the incarnation binding.
  flat_hash_map<register_id, std::uint64_t, reg_hash> holdings_;
  /// Quorum-read miss counts driving the hot-key threshold.
  flat_hash_map<register_id, std::uint32_t, reg_hash> read_heat_;
  /// Live lease-expiry tokens -> what they expire.
  struct lease_timer_target {
    register_id reg = default_register;
    bool grantor = false;
  };
  flat_hash_map<std::uint64_t, lease_timer_target, token_hash> lease_tokens_;
  branch_stats branches_;
  std::uint64_t op_counter_ = 0;
  std::uint64_t next_token_ = 1;
  std::uint64_t epoch_ = 0;
  bool up_ = true;
  bool ready_ = true;
  bool started_ = false;
};

}  // namespace remus::proto
