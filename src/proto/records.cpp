#include "proto/records.h"

namespace remus::proto {

bytes encode(const tagged_value_record& r) {
  byte_writer w;
  w.reserve(24 + r.val.size());
  w.put_tag(r.ts);
  w.put_value(r.val);
  return std::move(w).take();
}

void encode_tagged_value_into(bytes& out, const tag& ts, const value& val) {
  byte_writer w(std::move(out));
  w.clear();
  w.reserve(24 + val.size());
  w.put_tag(ts);
  w.put_value(val);
  out = std::move(w).take();
}

tagged_value_record decode_tagged_value(const bytes& b) {
  byte_reader r(b);
  tagged_value_record rec;
  rec.ts = r.get_tag();
  rec.val = r.get_value();
  r.expect_done();
  return rec;
}

bytes encode(const lease_record& r) {
  byte_writer w;
  w.put_u64(r.holder_mask);
  return std::move(w).take();
}

lease_record decode_lease(const bytes& b) {
  byte_reader r(b);
  lease_record rec;
  rec.holder_mask = r.get_u64();
  r.expect_done();
  return rec;
}

bytes encode(const recovery_record& r) {
  byte_writer w;
  w.put_i64(r.recoveries);
  return std::move(w).take();
}

recovery_record decode_recovery(const bytes& b) {
  byte_reader r(b);
  recovery_record rec;
  rec.recoveries = r.get_i64();
  r.expect_done();
  return rec;
}

}  // namespace remus::proto
