// Pooled, refcounted, immutable wire messages.
//
// A broadcast delivers the same message to n listeners; the pre-refactor
// simulator copied the full `message` (including its heap-backed value) into
// every per-recipient closure. A `shared_message` is created once per
// broadcast from a `message_pool` and shared by every delivery event: copying
// a handle bumps a (non-atomic — the simulator is single-threaded) refcount,
// and the final release returns the slot to the pool's freelist. Because a
// recycled slot keeps its value's vector capacity, refilling it for the next
// broadcast is allocation-free in steady state.
//
// The pool must outlive every handle it produced (the cluster declares its
// pool before its event queue so destruction order guarantees this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "proto/message.h"

namespace remus::proto {

class message_pool;

namespace detail {
struct pooled_message {
  message msg{};
  std::uint32_t refs = 0;
  message_pool* pool = nullptr;
};
}  // namespace detail

class shared_message {
 public:
  shared_message() = default;
  shared_message(const shared_message& o) noexcept : p_(o.p_) {
    if (p_) ++p_->refs;
  }
  shared_message(shared_message&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }
  shared_message& operator=(const shared_message& o) noexcept {
    if (this != &o) {
      release();
      p_ = o.p_;
      if (p_) ++p_->refs;
    }
    return *this;
  }
  shared_message& operator=(shared_message&& o) noexcept {
    if (this != &o) {
      release();
      p_ = o.p_;
      o.p_ = nullptr;
    }
    return *this;
  }
  ~shared_message() { release(); }

  [[nodiscard]] const message& operator*() const noexcept { return p_->msg; }
  [[nodiscard]] const message* operator->() const noexcept { return &p_->msg; }
  [[nodiscard]] explicit operator bool() const noexcept { return p_ != nullptr; }

  void reset() noexcept { release(); }

 private:
  friend class message_pool;
  explicit shared_message(detail::pooled_message* p) noexcept : p_(p) {}
  void release() noexcept;

  detail::pooled_message* p_ = nullptr;
};

class message_pool {
 public:
  message_pool() = default;
  message_pool(const message_pool&) = delete;
  message_pool& operator=(const message_pool&) = delete;

  /// Copy `m` into a pooled slot (reusing a retired slot's value capacity
  /// when one is available) and return the first handle to it.
  [[nodiscard]] shared_message make(const message& m);

  /// Slots ever created (pool high-water mark).
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  /// Slots currently referenced by live handles.
  [[nodiscard]] std::size_t outstanding() const noexcept {
    return slots_.size() - free_.size();
  }

 private:
  friend class shared_message;
  void recycle(detail::pooled_message* p) noexcept { free_.push_back(p); }

  std::vector<std::unique_ptr<detail::pooled_message>> slots_;
  std::vector<detail::pooled_message*> free_;
};

inline void shared_message::release() noexcept {
  if (p_ == nullptr) return;
  if (--p_->refs == 0) p_->pool->recycle(p_);
  p_ = nullptr;
}

}  // namespace remus::proto
