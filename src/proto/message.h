// Wire messages of the shared-memory emulations.
//
// All algorithms in the paper use six message kinds (Figures 4 and 5):
// sequence-number query/ack (the write's first round), write/ack (the second
// round of writes, the second round of reads, and the recovery round), and
// read query/ack (the read's first round). A `writeback` kind is transmitted
// for the read's second round: servers treat it exactly like `write`
// (adopt-if-newer and log), but keeping it distinct lets tests and flawed
// policy variants target it.
//
// Two metadata fields ride along:
//  * `epoch`: a per-incarnation nonce, echoed in acks, so that
//    acknowledgements from before a crash can never satisfy a phase started
//    after recovery (request/response matching, not algorithmic state);
//  * `log_depth`: causal-log tracing (paper section I-B). A message carries
//    the number of causally-ordered stable-storage writes that precede it
//    within the current operation; acks after a server log carry depth + 1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/ids.h"
#include "common/timestamp.h"
#include "common/value.h"

namespace remus::proto {

enum class msg_kind : std::uint8_t {
  sn_query = 1,   // paper: send(SN)
  sn_ack = 2,     // paper: send(SN_ack, sn)
  write = 3,      // paper: send(W, [sn, i], v)
  write_ack = 4,  // paper: send(W_ack)
  read_query = 5, // paper: send(R)
  read_ack = 6,   // paper: send(R_ack, [sn, pid], v)
  writeback = 7,  // read round 2; server-side identical to `write`
  lease_grant_ack = 8,  // R_ack + "your lease is durably recorded here"
  lease_grant = 9,      // read round 1 that also installs a read lease
};

[[nodiscard]] std::string to_string(msg_kind k);

/// Acknowledgements are exactly the even-valued kinds — the hot paths
/// classify messages with one parity test.
[[nodiscard]] constexpr bool is_ack_kind(msg_kind k) noexcept {
  return (static_cast<std::uint8_t>(k) & 1u) == 0;
}
static_assert(is_ack_kind(msg_kind::sn_ack) && is_ack_kind(msg_kind::write_ack) &&
              is_ack_kind(msg_kind::read_ack) && !is_ack_kind(msg_kind::sn_query) &&
              !is_ack_kind(msg_kind::write) && !is_ack_kind(msg_kind::read_query) &&
              !is_ack_kind(msg_kind::writeback) &&
              is_ack_kind(msg_kind::lease_grant_ack) &&
              !is_ack_kind(msg_kind::lease_grant));

/// One register's share of a batched message. Queries list registers
/// (ts/val defaulted); acknowledgements and update rounds carry the
/// register's (tag, value).
struct batch_entry {
  register_id reg = default_register;
  tag ts;
  value val;

  friend bool operator==(const batch_entry&, const batch_entry&) = default;
};

/// A replica's note, attached to an update-round ack, that it holds a
/// durable lease record for `reg`: bit h of `holder_mask` set means process
/// h may be serving leased reads of `reg`. The writer merges these masks
/// into the set of processes whose acks the operation must wait for — the
/// quorum-intersection step that makes leased reads linearizable (see
/// quorum_core.h, "Read leases").
struct lease_note {
  register_id reg = default_register;
  std::uint64_t holder_mask = 0;

  friend bool operator==(const lease_note&, const lease_note&) = default;
};

struct message {
  msg_kind kind = msg_kind::sn_query;
  process_id from;
  /// Phase correlation: invoking op + round within it + incarnation nonce.
  std::uint64_t op_seq = 0;
  std::uint32_t round = 0;
  std::uint64_t epoch = 0;
  /// Payload (meaning depends on kind; unused fields stay default).
  tag ts;
  value val;
  /// Causal-log tracing metadata (see file comment).
  std::uint32_t log_depth = 0;
  /// Register this (single-key) message targets. Ignored when `batch` is
  /// non-empty: a batched message carries one entry per register, so one
  /// quorum round serves the whole key set (amortized round-trips).
  register_id reg = default_register;
  std::vector<batch_entry> batch;
  /// Lease notes riding on update-round acks (empty everywhere else).
  std::vector<lease_note> leases;

  [[nodiscard]] bool is_batch() const noexcept { return !batch.empty(); }

  friend bool operator==(const message&, const message&) = default;
};

/// Serialize for the threaded runtime's wire (and for size accounting in the
/// simulator: the simulated network charges exactly these bytes).
[[nodiscard]] bytes encode(const message& m);
[[nodiscard]] message decode_message(const bytes& wire);

/// Size in bytes of the encoded form, without materializing it.
[[nodiscard]] std::size_t wire_size(const message& m);

[[nodiscard]] std::string to_string(const message& m);

}  // namespace remus::proto
