#include "proto/message.h"

namespace remus::proto {

std::string to_string(msg_kind k) {
  switch (k) {
    case msg_kind::sn_query: return "SN";
    case msg_kind::sn_ack: return "SN_ack";
    case msg_kind::write: return "W";
    case msg_kind::write_ack: return "W_ack";
    case msg_kind::read_query: return "R";
    case msg_kind::read_ack: return "R_ack";
    case msg_kind::writeback: return "WB";
    case msg_kind::lease_grant_ack: return "L_ack";
    case msg_kind::lease_grant: return "L";
  }
  return "?";
}

bytes encode(const message& m) {
  byte_writer w;
  w.put_u8(static_cast<std::uint8_t>(m.kind));
  w.put_process(m.from);
  w.put_u64(m.op_seq);
  w.put_u32(m.round);
  w.put_u64(m.epoch);
  w.put_tag(m.ts);
  w.put_value(m.val);
  w.put_u32(m.log_depth);
  w.put_u32(m.reg);
  w.put_u32(static_cast<std::uint32_t>(m.batch.size()));
  for (const batch_entry& e : m.batch) {
    w.put_u32(e.reg);
    w.put_tag(e.ts);
    w.put_value(e.val);
  }
  w.put_u32(static_cast<std::uint32_t>(m.leases.size()));
  for (const lease_note& n : m.leases) {
    w.put_u32(n.reg);
    w.put_u64(n.holder_mask);
  }
  return std::move(w).take();
}

message decode_message(const bytes& wire) {
  byte_reader r(wire);
  message m;
  const auto k = r.get_u8();
  if (k < 1 || k > 9) throw codec_error("message: bad kind");
  m.kind = static_cast<msg_kind>(k);
  m.from = r.get_process();
  m.op_seq = r.get_u64();
  m.round = r.get_u32();
  m.epoch = r.get_u64();
  m.ts = r.get_tag();
  m.val = r.get_value();
  m.log_depth = r.get_u32();
  m.reg = r.get_u32();
  const std::uint32_t count = r.get_u32();
  // Every entry occupies >= 28 wire bytes; an unsatisfiable count is a
  // malformed message (reject before reserving anything count-sized).
  if (static_cast<std::size_t>(count) * 28 > r.remaining()) {
    throw codec_error("message: bad batch count");
  }
  m.batch.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    batch_entry e;
    e.reg = r.get_u32();
    e.ts = r.get_tag();
    e.val = r.get_value();
    m.batch.push_back(std::move(e));
  }
  const std::uint32_t lease_count = r.get_u32();
  // Every lease note occupies exactly 12 wire bytes.
  if (static_cast<std::size_t>(lease_count) * 12 > r.remaining()) {
    throw codec_error("message: bad lease count");
  }
  m.leases.reserve(lease_count);
  for (std::uint32_t i = 0; i < lease_count; ++i) {
    lease_note n;
    n.reg = r.get_u32();
    n.holder_mask = r.get_u64();
    m.leases.push_back(n);
  }
  r.expect_done();
  return m;
}

std::size_t wire_size(const message& m) {
  // kind(1) + from(4) + op_seq(8) + round(4) + epoch(8)
  // + tag(8 + 8 + 4) + value(4 + n) + depth(4) + reg(4) + batch count(4)
  // + lease count(4)
  std::size_t sz = 1 + 4 + 8 + 4 + 8 + 20 + 4 + m.val.size() + 4 + 4 + 4 + 4;
  for (const batch_entry& e : m.batch) sz += 4 + 20 + 4 + e.val.size();
  sz += m.leases.size() * 12;  // reg(4) + holder_mask(8)
  return sz;
}

std::string to_string(const message& m) {
  std::string out = to_string(m.kind);
  out += " from p" + std::to_string(m.from.index);
  out += " op" + std::to_string(m.op_seq) + "/r" + std::to_string(m.round);
  if (m.is_batch()) {
    out += " batch[";
    for (std::size_t i = 0; i < m.batch.size(); ++i) {
      if (i > 0) out += ", ";
      out += "k" + std::to_string(m.batch[i].reg) + ":" + remus::to_string(m.batch[i].ts);
      if (!m.batch[i].val.is_initial()) out += "=" + remus::to_string(m.batch[i].val);
    }
    out += "]";
  } else {
    if (m.reg != default_register) out += " k" + std::to_string(m.reg);
    out += " ts=" + remus::to_string(m.ts);
    if (!m.val.is_initial()) out += " val=" + remus::to_string(m.val);
  }
  out += " d=" + std::to_string(m.log_depth);
  return out;
}

}  // namespace remus::proto
