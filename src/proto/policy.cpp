#include "proto/policy.h"

namespace remus::proto {

bool protocol_policy::coherent() const {
  if (recovery_finish_write && !writer_prelog) return false;
  if (crash_stop && (log_on_adopt || writer_prelog || recovery_counter)) return false;
  if (rec_in_tag && !recovery_counter) return false;
  if (read_return_first && read_writeback) return false;
  if (!write_query_round && !single_writer) return false;
  // Leases revoke through crash-recovery (no recovery => no revocation
  // point) and anchor the holder's slot via the read write-back round.
  if (read_leases && (crash_stop || !read_writeback)) return false;
  return true;
}

protocol_policy crash_stop_policy() {
  protocol_policy p;
  p.name = "crash-stop";
  p.crash_stop = true;
  p.log_on_adopt = false;
  p.log_on_read_writeback = false;
  return p;
}

protocol_policy persistent_policy() {
  protocol_policy p;
  p.name = "persistent";
  p.writer_prelog = true;
  p.recovery_finish_write = true;
  return p;
}

protocol_policy transient_policy() {
  protocol_policy p;
  p.name = "transient";
  p.recovery_counter = true;
  p.rec_in_tag = true;
  return p;
}

protocol_policy abd_swmr_policy() {
  protocol_policy p = crash_stop_policy();
  p.name = "abd-swmr";
  p.write_query_round = false;
  p.single_writer = true;
  return p;
}

protocol_policy regular_swmr_policy() {
  protocol_policy p = abd_swmr_policy();
  p.name = "regular-swmr";
  p.read_writeback = false;
  return p;
}

protocol_policy safe_swmr_policy() {
  protocol_policy p = regular_swmr_policy();
  p.name = "safe-swmr";
  p.read_return_first = true;
  return p;
}

protocol_policy regular_cr_policy() {
  protocol_policy p = transient_policy();
  p.name = "regular-cr";
  p.read_writeback = false;
  return p;
}

protocol_policy safe_cr_policy() {
  protocol_policy p = regular_cr_policy();
  p.name = "safe-cr";
  p.read_return_first = true;
  return p;
}

protocol_policy transient_literal_policy() {
  protocol_policy p = transient_policy();
  p.name = "transient-literal";
  p.rec_in_tag = false;
  return p;
}

protocol_policy persistent_no_prelog_policy() {
  protocol_policy p = persistent_policy();
  p.name = "persistent-no-prelog";
  p.writer_prelog = false;
  p.recovery_finish_write = false;
  return p;
}

protocol_policy read_no_writeback_policy() {
  protocol_policy p = persistent_policy();
  p.name = "read-no-writeback";
  p.read_writeback = false;
  return p;
}

protocol_policy read_volatile_writeback_policy() {
  protocol_policy p = persistent_policy();
  p.name = "read-volatile-writeback";
  p.log_on_read_writeback = false;
  return p;
}

protocol_policy ablation_a_policy() {
  protocol_policy p;
  p.name = "ablation-A";
  p.writer_prelog = true;
  p.recovery_finish_write = true;
  p.write_query_round = false;
  p.single_writer = true;
  p.wait_for_all = true;
  return p;
}

protocol_policy ablation_a_prime_policy() {
  protocol_policy p;
  p.name = "ablation-A-prime";
  p.write_query_round = false;
  p.single_writer = true;
  p.wait_for_all = true;
  return p;
}

}  // namespace remus::proto
