// Protocol policies: the paper's algorithms as configuration.
//
// The crash-stop baseline, the persistent-atomic emulation (Fig. 4), the
// transient-atomic emulation (Fig. 5) and the weaker registers of section VI
// share one two-round quorum skeleton and differ only in *which* steps log to
// stable storage, how the write timestamp is produced, and what recovery
// does. A `protocol_policy` captures those switches; `quorum_core` executes
// any policy. Named constructors below give the paper's algorithms; the
// `flawed_*` and `ablation_*` policies exist to demonstrate the paper's lower
// bounds (Theorems 1 and 2) and the causal-log metric (section I-B).
#pragma once

#include <cstdint>
#include <string>

#include "common/time.h"

namespace remus::proto {

struct protocol_policy {
  std::string name = "unnamed";

  /// Crash semantics: true = crash-stop model (recover() is an error and
  /// nothing ever logs); false = crash-recovery model.
  bool crash_stop = false;

  /// Replicas log ("written", tag, value) before acking an adopted write.
  /// Off only for crash-stop emulations and the volatile-writeback flaw.
  bool log_on_adopt = true;

  /// Replicas log when the adopted message is a read's write-back. Turning
  /// this off (with log_on_adopt on) yields the Theorem-2 flaw: reads that
  /// never reach stable storage.
  bool log_on_read_writeback = true;

  /// Writer logs ("writing", tag, value) after choosing the timestamp and
  /// before broadcasting (paper Fig. 4 line 12). The first of the persistent
  /// emulation's two causal logs.
  bool writer_prelog = false;

  /// Recovery re-runs the write's second round with the logged "writing"
  /// record (paper Fig. 4 Recover). Requires writer_prelog.
  bool recovery_finish_write = false;

  /// Maintain the `rec` recovery counter: log it on every recovery and add
  /// it when incrementing the sequence number (paper Fig. 5 lines 11, 16-22).
  bool recovery_counter = false;

  /// Embed `rec` in the tag as a tie-break component (see common/timestamp.h
  /// for why the literal Fig. 5 needs this to make its monotonicity claim
  /// hold). transient_literal_policy() turns this off to exhibit the flaw.
  bool rec_in_tag = false;

  /// Writes run a first round querying a majority for the highest sequence
  /// number (multi-writer, paper Fig. 4 lines 7-10). Off = single-writer
  /// ABD: the writer increments a local counter instead (1 round-trip
  /// writes). Only sound with one writer.
  bool write_query_round = true;

  /// Reads run a second round writing back the freshest (tag, value) to a
  /// majority (atomic reads). Off = regular/safe reads (1 round-trip),
  /// or the no-write-back atomicity flaw when combined with atomic claims.
  bool read_writeback = true;

  /// Safe-register semantics: the read returns the *first* reply's value
  /// rather than the freshest of a majority. Meaningful only with
  /// read_writeback == false.
  bool read_return_first = false;

  /// Wait for acks from all n processes instead of a majority (the
  /// non-robust algorithms A and A' of section I-B).
  bool wait_for_all = false;

  /// Only process 0 may write (ABD single-writer variants).
  bool single_writer = false;

  /// Client retransmission period for the repeat/until loops of the
  /// pseudocode (fair-lossy channels require retransmission).
  time_ns retransmit_delay = 50 * 1000 * 1000;

  /// Read leases: a process whose quorum reads keep missing the same
  /// register asks its grant round to install a freshness lease — every
  /// replica that acks durably records (register, holder) through the WAL
  /// store_and_obsolete path, and while the lease holds the holder serves
  /// reads of that register from its own replica slot with zero messages.
  /// Writers learn of recorded holders from lease notes piggybacked on
  /// update-round acks and wait for every noted holder's ack before
  /// completing (the common write path stays one update round); serving any
  /// update for a held register drops the holding, so a completed write is
  /// never followed by a stale leased read. Holder-side holdings are
  /// volatile — a crash revokes them implicitly because recovery rebuilds
  /// only the durable grantor side (the lease is bound to the holder's
  /// incarnation). Requires the crash-recovery model and write-back reads.
  bool read_leases = false;

  /// Lease freshness window: the holder stops serving locally at
  /// grant-send + lease_duration; each grantor forgets its record at
  /// record-time + lease_duration (strictly later, so writers keep waiting
  /// for a holder at least as long as it may serve).
  time_ns lease_duration = 500 * 1000 * 1000;

  /// Quorum reads of the same register by the same process before the next
  /// read becomes a lease grant round. 0 = lease on first read.
  std::uint32_t lease_hot_read_threshold = 2;

  /// Batch-aware retransmission: on timeout, a batched update round resends
  /// to each silent replica only the registers that still need its vote —
  /// registers already durable at their own majority (update acks list the
  /// registers they cover) are dropped from the repeat message, so a batch
  /// blocked on one lagging register retransmits that register's (tag,
  /// value), not the whole payload. Off = repeat the full batched message
  /// (the pre-optimization behavior; bench_kv_throughput measures the
  /// message-bytes delta under loss). Orthogonal to correctness: each
  /// register independently reaches a majority of durable copies either way.
  bool trim_batch_retransmit = true;

  /// Sanity: reject contradictory switch combinations.
  [[nodiscard]] bool coherent() const;
};

// --- The paper's algorithms -------------------------------------------------

/// Crash-stop MWMR atomic register ([Lynch & Shvartsman 97], paper's
/// baseline "atomic crash-stop" in Fig. 6): two round-trips, no logging.
[[nodiscard]] protocol_policy crash_stop_policy();

/// Persistent atomic crash-recovery register (paper Fig. 4): 2 causal logs
/// per write, 1 per read; recovery finishes the pending write.
[[nodiscard]] protocol_policy persistent_policy();

/// Transient atomic crash-recovery register (paper Fig. 5): 1 causal log per
/// write and read; recovery logs the incremented recovery counter.
[[nodiscard]] protocol_policy transient_policy();

// --- Section VI: weaker registers (crash-stop) ------------------------------

/// Single-writer/multi-reader atomic register ([Attiya, Bar-Noy, Dolev 95]):
/// 1 round-trip writes (local counter), 2 round-trip reads.
[[nodiscard]] protocol_policy abd_swmr_policy();

/// SWMR regular register: like ABD but reads skip the write-back round.
[[nodiscard]] protocol_policy regular_swmr_policy();

/// SWMR safe register: 1-round reads returning the first reply.
[[nodiscard]] protocol_policy safe_swmr_policy();

/// Crash-recovery MWMR *regular* register (section VI): transient-style
/// writes (1 causal log) with single-round reads that never log. Weaker
/// than transient atomicity — new/old read inversions are possible — which
/// is exactly the paper's point: the saved round-trip buys no log savings.
[[nodiscard]] protocol_policy regular_cr_policy();

/// Crash-recovery safe register: regular_cr with first-reply reads.
[[nodiscard]] protocol_policy safe_cr_policy();

// --- Lower-bound / flaw demonstrations (tests and benches only) -------------

/// Fig. 5 taken literally: recovery counter logged but not embedded in tags.
/// Two incarnations of a writer can emit the same [sn, i] for different
/// values when the query majority's max regresses (confused-values).
[[nodiscard]] protocol_policy transient_literal_policy();

/// Persistent emulation without the writer pre-log and without
/// finish-on-recovery: Theorem 1's inevitable violation (run rho1).
[[nodiscard]] protocol_policy persistent_no_prelog_policy();

/// Atomic-claiming reads without the write-back round: violates atomicity
/// even crash-free (new/old read inversion).
[[nodiscard]] protocol_policy read_no_writeback_policy();

/// Reads write back to volatile memory only (no server log on write-back):
/// Theorem 2's flaw — a read that reaches no stable storage cannot survive
/// crashes of the processes it informed.
[[nodiscard]] protocol_policy read_volatile_writeback_policy();

// --- Section I-B log-placement ablation --------------------------------------

/// Algorithm A: writer logs, then broadcasts; every other process logs
/// before acking; wait for all acks. Write costs 2 causal logs (2delta+2lambda).
[[nodiscard]] protocol_policy ablation_a_policy();

/// Algorithm A': writer broadcasts immediately; every process (including the
/// writer's own listener) logs before acking; wait for all acks. Write costs
/// 1 causal log (2delta+lambda).
[[nodiscard]] protocol_policy ablation_a_prime_policy();

}  // namespace remus::proto
