// Abstract interface of a shared-register protocol core.
//
// One core instance embodies one process p_i of the emulation: the client
// role (invoking reads/writes on behalf of the application) and the listener
// role (serving other processes' protocol messages) of the paper's two-thread
// processes. Inputs arrive one at a time; each call may append effects to the
// provided `outputs` batch.
//
// The core serves a *namespace* of named registers multiplexed over one
// cluster: every operation targets a `register_id` (the paper's single
// register is register 0 / `default_register`), and a batched invocation
// runs one quorum round for a whole set of registers at once — multi-key
// traffic amortizes round-trips. The protocol state (tags, values, stable
// records) is keyed per register; linearizability is compositional, so each
// register independently satisfies the algorithm's criterion.
//
// Lifecycle:
//   start(out)                      — fresh install (writes initial records)
//   invoke_write/invoke_read        — requires idle() && ready()
//   on_message / on_log_done / on_timer
//   crash()                         — volatile state vanishes
//   recover(epoch, out)             — crash-recovery model only; when the
//                                     recovery procedure completes the core
//                                     sets outputs::recovery_complete (maybe
//                                     in a later batch) and ready() is true
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/timestamp.h"
#include "common/value.h"
#include "proto/effects.h"
#include "proto/policy.h"

namespace remus::proto {

/// One register's share of a batched write invocation.
struct write_op {
  register_id reg = default_register;
  value val;
};

class register_core {
 public:
  virtual ~register_core() = default;

  register_core(const register_core&) = delete;
  register_core& operator=(const register_core&) = delete;

  virtual void start(outputs& out) = 0;
  virtual void invoke_write(register_id reg, const value& v, outputs& out) = 0;
  virtual void invoke_read(register_id reg, outputs& out) = 0;
  /// Batched invocations: one operation over a set of distinct registers,
  /// executed in the same two quorum rounds a single-key operation uses.
  virtual void invoke_write_batch(const std::vector<write_op>& ops, outputs& out) = 0;
  virtual void invoke_read_batch(const std::vector<register_id>& regs, outputs& out) = 0;
  virtual void on_message(const message& m, outputs& out) = 0;
  virtual void on_log_done(std::uint64_t token, outputs& out) = 0;
  virtual void on_timer(std::uint64_t token, outputs& out) = 0;
  virtual void crash() = 0;
  virtual void recover(std::uint64_t new_epoch, outputs& out) = 0;

  /// Single-register conveniences (the paper's register 0).
  void invoke_write(const value& v, outputs& out) { invoke_write(default_register, v, out); }
  void invoke_read(outputs& out) { invoke_read(default_register, out); }

  /// No client operation in flight.
  [[nodiscard]] virtual bool idle() const = 0;
  /// Up and not inside a recovery procedure: invocations accepted.
  [[nodiscard]] virtual bool ready() const = 0;
  [[nodiscard]] virtual bool is_up() const = 0;
  [[nodiscard]] virtual const protocol_policy& policy() const = 0;

  /// Replica-state introspection (tests, diagnostics).
  [[nodiscard]] virtual tag replica_tag(register_id reg) const = 0;
  [[nodiscard]] virtual value replica_value(register_id reg) const = 0;
  [[nodiscard]] tag replica_tag() const { return replica_tag(default_register); }
  [[nodiscard]] value replica_value() const { return replica_value(default_register); }

 protected:
  register_core() = default;
};

}  // namespace remus::proto
