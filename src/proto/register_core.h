// Abstract interface of a shared-register protocol core.
//
// One core instance embodies one process p_i of the emulation: the client
// role (invoking reads/writes on behalf of the application) and the listener
// role (serving other processes' protocol messages) of the paper's two-thread
// processes. Inputs arrive one at a time; each call may append effects to the
// provided `outputs` batch.
//
// Lifecycle:
//   start(out)                      — fresh install (writes initial records)
//   invoke_write/invoke_read        — requires idle() && ready()
//   on_message / on_log_done / on_timer
//   crash()                         — volatile state vanishes
//   recover(epoch, out)             — crash-recovery model only; when the
//                                     recovery procedure completes the core
//                                     sets outputs::recovery_complete (maybe
//                                     in a later batch) and ready() is true
#pragma once

#include <cstdint>

#include "common/ids.h"
#include "common/timestamp.h"
#include "common/value.h"
#include "proto/effects.h"
#include "proto/policy.h"

namespace remus::proto {

class register_core {
 public:
  virtual ~register_core() = default;

  register_core(const register_core&) = delete;
  register_core& operator=(const register_core&) = delete;

  virtual void start(outputs& out) = 0;
  virtual void invoke_write(const value& v, outputs& out) = 0;
  virtual void invoke_read(outputs& out) = 0;
  virtual void on_message(const message& m, outputs& out) = 0;
  virtual void on_log_done(std::uint64_t token, outputs& out) = 0;
  virtual void on_timer(std::uint64_t token, outputs& out) = 0;
  virtual void crash() = 0;
  virtual void recover(std::uint64_t new_epoch, outputs& out) = 0;

  /// No client operation in flight.
  [[nodiscard]] virtual bool idle() const = 0;
  /// Up and not inside a recovery procedure: invocations accepted.
  [[nodiscard]] virtual bool ready() const = 0;
  [[nodiscard]] virtual bool is_up() const = 0;
  [[nodiscard]] virtual const protocol_policy& policy() const = 0;

  /// Replica-state introspection (tests, diagnostics).
  [[nodiscard]] virtual tag replica_tag() const = 0;
  [[nodiscard]] virtual value replica_value() const = 0;

 protected:
  register_core() = default;
};

}  // namespace remus::proto
