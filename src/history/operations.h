// Operation extraction: turns an event history into operation records with
// real-time intervals, identifying pending operations (invocations cut short
// by a crash or by the end of the run) and, per consistency criterion, the
// deadline before which a pending write's reply may be placed when the
// history is completed (persistent atomicity, paper section III-B) or weakly
// completed (transient atomicity, section III-C).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "history/event.h"

namespace remus::history {

/// Positions are rationals encoded as doubled indices so that a pending
/// reply "strictly before event k" can sit at 2k-1, between events k-1 and k.
using pos2 = std::int64_t;
inline constexpr pos2 pos2_infinity = INT64_MAX;

struct op_record {
  process_id p;
  bool is_read = false;
  value written;            // writes: argument
  std::optional<value> returned;  // completed reads: result
  std::size_t invoke_index = 0;   // position of the invocation event
  std::optional<std::size_t> reply_index;  // absent = pending
  pos2 start2 = 0;          // 2 * invoke_index
  pos2 end2 = 0;            // completed: 2 * reply_index; pending: deadline

  [[nodiscard]] bool pending() const { return !reply_index.has_value(); }
  [[nodiscard]] std::string describe() const;
};

enum class criterion : std::uint8_t {
  /// Pending replies must land before the process's next invocation
  /// (completion; persistent atomicity).
  persistent,
  /// Pending write replies may land as late as just before the process's
  /// next completed write reply (weak completion; transient atomicity).
  transient,
};

/// Extracts all operations with intervals computed for `c`. The input must
/// be well-formed (call check_well_formed first).
[[nodiscard]] std::vector<op_record> extract_operations(const history_log& h, criterion c);

}  // namespace remus::history
