#include "history/operations.h"

namespace remus::history {

std::string op_record::describe() const {
  std::string out = "p" + std::to_string(p.index);
  if (is_read) {
    out += " R->" + (returned ? remus::to_string(*returned) : std::string("pending"));
  } else {
    out += " W(" + remus::to_string(written) + ")";
    if (pending()) out += " pending";
  }
  out += " @[" + std::to_string(invoke_index) + ",";
  out += reply_index ? std::to_string(*reply_index) : std::string("-");
  out += "]";
  return out;
}

std::vector<op_record> extract_operations(const history_log& h, criterion c) {
  std::vector<op_record> ops;
  // Per process, the index of that process's op currently in flight.
  std::vector<std::optional<std::size_t>> open(64);
  auto slot = [&](process_id p) -> std::optional<std::size_t>& {
    if (p.index >= open.size()) open.resize(p.index + 1);
    return open[p.index];
  };

  for (std::size_t i = 0; i < h.size(); ++i) {
    const event& e = h[i];
    switch (e.kind) {
      case event_kind::invoke_read:
      case event_kind::invoke_write: {
        op_record op;
        op.p = e.p;
        op.is_read = (e.kind == event_kind::invoke_read);
        if (!op.is_read) op.written = e.v;
        op.invoke_index = i;
        op.start2 = static_cast<pos2>(2 * i);
        op.end2 = pos2_infinity;  // refined below
        slot(e.p) = ops.size();
        ops.push_back(std::move(op));
        break;
      }
      case event_kind::reply_read:
      case event_kind::reply_write: {
        auto& s = slot(e.p);
        op_record& op = ops.at(*s);
        op.reply_index = i;
        op.end2 = static_cast<pos2>(2 * i);
        if (op.is_read) op.returned = e.v;
        s.reset();
        break;
      }
      case event_kind::crash:
        // A pending op stays pending; its deadline is computed below.
        slot(e.p).reset();
        break;
      case event_kind::recover:
        break;
    }
  }

  // Deadlines for pending operations.
  for (op_record& op : ops) {
    if (!op.pending()) continue;
    pos2 deadline = pos2_infinity;
    if (c == criterion::persistent) {
      // Reply must appear before the process's next invocation.
      for (std::size_t j = op.invoke_index + 1; j < h.size(); ++j) {
        if (h[j].p == op.p && h[j].is_invoke()) {
          deadline = static_cast<pos2>(2 * j) - 1;
          break;
        }
      }
    } else {
      // Reply must appear before the process's next completed write reply.
      for (std::size_t j = op.invoke_index + 1; j < h.size(); ++j) {
        if (h[j].p == op.p && h[j].kind == event_kind::reply_write) {
          deadline = static_cast<pos2>(2 * j) - 1;
          break;
        }
      }
    }
    op.end2 = deadline;
  }
  return ops;
}

}  // namespace remus::history
