#include "history/keyed.h"

#include <algorithm>

#include "history/brute_force.h"

namespace remus::history {
namespace {

using check_fn = check_result (*)(const history_log&, criterion);

keyed_check_result check_with(const history_log& h, criterion c, check_fn check) {
  keyed_check_result out;
  for (const register_id reg : keys_of(h)) {
    out.keys_checked += 1;
    const history_log proj = project_key(h, reg);
    const check_result sub = check(proj, c);
    if (sub.ok) continue;
    out.ok = false;
    out.usage_error = sub.usage_error;
    out.failing_key = reg;
    out.explanation =
        "register " + std::to_string(reg) + ": " + sub.explanation;
    return out;
  }
  return out;
}

}  // namespace

history_log merge_shard_histories(const std::vector<history_log>& shards,
                                  std::uint32_t procs_per_shard) {
  history_log out;
  std::size_t total = 0;
  for (const history_log& h : shards) total += h.size();
  out.reserve(total);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const auto offset = static_cast<std::uint32_t>(s) * procs_per_shard;
    for (event e : shards[s]) {
      e.p.index += offset;
      out.push_back(std::move(e));
    }
  }
  // Stable: timestamp ties keep concatenation order (shard, then each
  // shard's own order), so the merge is deterministic.
  std::stable_sort(out.begin(), out.end(),
                   [](const event& a, const event& b) { return a.at < b.at; });
  return out;
}

std::vector<register_id> keys_of(const history_log& h) {
  std::vector<register_id> keys;
  for (const event& e : h) {
    if (e.is_invoke() || e.is_reply()) keys.push_back(e.reg);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

history_log project_key(const history_log& h, register_id reg) {
  history_log out;
  for (const event& e : h) {
    if (e.is_invoke() || e.is_reply()) {
      if (e.reg == reg) out.push_back(e);
    } else {
      out.push_back(e);  // crash/recover: process-wide, every projection
    }
  }
  return out;
}

keyed_check_result check_atomicity_per_key(const history_log& h, criterion c) {
  return check_with(h, c, &check_atomicity);
}

keyed_check_result check_atomicity_per_key_brute_force(const history_log& h, criterion c) {
  return check_with(h, c, &check_atomicity_brute_force);
}

}  // namespace remus::history
