#include "history/event.h"

namespace remus::history {

std::string to_string(event_kind k) {
  switch (k) {
    case event_kind::invoke_read: return "inv R";
    case event_kind::invoke_write: return "inv W";
    case event_kind::reply_read: return "ret R";
    case event_kind::reply_write: return "ret W";
    case event_kind::crash: return "crash";
    case event_kind::recover: return "recover";
  }
  return "?";
}

std::string to_string(const event& e) {
  std::string out = "p" + std::to_string(e.p.index) + " " + to_string(e.kind);
  if (e.reg != default_register && (e.is_invoke() || e.is_reply())) {
    out += "[k" + std::to_string(e.reg) + "]";
  }
  switch (e.kind) {
    case event_kind::invoke_write:
    case event_kind::reply_read:
      out += "(" + remus::to_string(e.v) + ")";
      break;
    default:
      break;
  }
  return out;
}

std::string to_string(const history_log& h) {
  std::string out;
  for (std::size_t i = 0; i < h.size(); ++i) {
    out += std::to_string(i) + ": " + to_string(h[i]) + "\n";
  }
  return out;
}

}  // namespace remus::history
