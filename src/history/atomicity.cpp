#include "history/atomicity.h"

#include <algorithm>
#include <map>
#include <vector>

#include "history/wellformed.h"

namespace remus::history {
namespace {

struct read_ref {
  std::size_t op;     // index into ops
  std::size_t write;  // index into writes (graph node)
};

/// Finds one cycle in the constraint graph (for diagnostics) via iterative
/// DFS; returns node indices along the cycle.
std::vector<std::size_t> find_cycle(const std::vector<std::vector<std::size_t>>& adj) {
  const std::size_t n = adj.size();
  std::vector<int> state(n, 0);  // 0=unvisited 1=on stack 2=done
  std::vector<std::size_t> parent(n, SIZE_MAX);
  for (std::size_t root = 0; root < n; ++root) {
    if (state[root] != 0) continue;
    std::vector<std::pair<std::size_t, std::size_t>> stack{{root, 0}};
    state[root] = 1;
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      if (next < adj[u].size()) {
        const std::size_t v = adj[u][next++];
        if (state[v] == 0) {
          state[v] = 1;
          parent[v] = u;
          stack.emplace_back(v, 0);
        } else if (state[v] == 1) {
          // Found a cycle v -> ... -> u -> v.
          std::vector<std::size_t> cyc{v};
          for (std::size_t x = u; x != v && x != SIZE_MAX; x = parent[x]) cyc.push_back(x);
          std::reverse(cyc.begin() + 1, cyc.end());
          return cyc;
        }
      } else {
        state[u] = 2;
        stack.pop_back();
      }
    }
  }
  return {};
}

}  // namespace

check_result check_atomicity(const history_log& h, criterion c) {
  if (const auto wf = check_well_formed(h); !wf.ok) {
    return {false, "ill-formed history: " + wf.explanation, true};
  }

  const std::vector<op_record> ops = extract_operations(h, c);

  // Collect writes; verify value uniqueness.
  std::vector<std::size_t> writes;  // op indices; node k+1 in the graph
  std::map<bytes, std::size_t> by_value;  // value -> graph node
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const op_record& op = ops[i];
    if (op.is_read) continue;
    if (op.written.is_initial()) {
      return {false, "checker requires non-initial write values: " + op.describe(), true};
    }
    writes.push_back(i);
    const auto [it, inserted] = by_value.emplace(op.written.data, writes.size());
    if (!inserted) {
      return {false, "checker requires unique write values: " + op.describe(), true};
    }
  }

  const std::size_t nodes = writes.size() + 1;  // node 0 = virtual initial write
  auto start2_of = [&](std::size_t node) -> pos2 {
    return node == 0 ? INT64_MIN : ops[writes[node - 1]].start2;
  };
  auto end2_of = [&](std::size_t node) -> pos2 {
    return node == 0 ? INT64_MIN : ops[writes[node - 1]].end2;
  };
  auto describe_node = [&](std::size_t node) -> std::string {
    return node == 0 ? std::string("W0(initial)") : ops[writes[node - 1]].describe();
  };

  // Included writes: completed ones, plus pending ones that were read.
  std::vector<bool> included(nodes, false);
  included[0] = true;
  for (std::size_t k = 0; k < writes.size(); ++k) {
    if (!ops[writes[k]].pending()) included[k + 1] = true;
  }

  // Map completed reads to their writes.
  std::vector<read_ref> reads;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const op_record& op = ops[i];
    if (!op.is_read || op.pending()) continue;  // pending reads dropped
    std::size_t node = 0;
    if (!op.returned->is_initial()) {
      const auto it = by_value.find(op.returned->data);
      if (it == by_value.end()) {
        return {false, "read returned a never-written value: " + op.describe(), false};
      }
      node = it->second;
      included[node] = true;  // a read-from write cannot be absent
    }
    reads.push_back(read_ref{i, node});
  }

  // Build the constraint graph over included writes.
  std::vector<std::vector<std::size_t>> adj(nodes);
  std::vector<std::string> edge_why;  // parallel to flattened edges, via map
  std::map<std::pair<std::size_t, std::size_t>, std::string> why;
  auto add_edge = [&](std::size_t a, std::size_t b, const std::string& reason)
      -> check_result {
    if (a == b) {
      return {false, "contradictory constraint (" + reason + ") at " + describe_node(a),
              false};
    }
    if (why.emplace(std::make_pair(a, b), reason).second) adj[a].push_back(b);
    return {};
  };
  (void)edge_why;

  // w0 precedes every included write.
  for (std::size_t k = 1; k < nodes; ++k) {
    if (!included[k]) continue;
    if (auto r = add_edge(0, k, "initial value precedes all writes"); !r.ok) return r;
  }

  // P1: write-write real-time precedence.
  for (std::size_t a = 1; a < nodes; ++a) {
    if (!included[a]) continue;
    for (std::size_t b = 1; b < nodes; ++b) {
      if (a == b || !included[b]) continue;
      if (end2_of(a) < start2_of(b)) {
        if (auto r = add_edge(a, b,
                              describe_node(a) + " precedes " + describe_node(b));
            !r.ok) {
          return r;
        }
      }
    }
  }

  // C0/C1/C2: read-write constraints.
  for (const read_ref& rr : reads) {
    const op_record& r = ops[rr.op];
    if (r.end2 < start2_of(rr.write)) {
      return {false,
              "read precedes the write it returns: " + r.describe() + " vs " +
                  describe_node(rr.write),
              false};
    }
    for (std::size_t w = 0; w < nodes; ++w) {
      if (!included[w] || w == rr.write) continue;
      if (end2_of(w) < r.start2) {
        // C1: w wholly precedes r, so w cannot follow r's write.
        if (auto res = add_edge(w, rr.write,
                                describe_node(w) + " precedes " + r.describe() +
                                    " which returns " + describe_node(rr.write));
            !res.ok) {
          return res;
        }
      }
      if (r.end2 < start2_of(w)) {
        // C2: r wholly precedes w, so r's write must precede w.
        if (auto res = add_edge(rr.write, w,
                                r.describe() + " (returning " + describe_node(rr.write) +
                                    ") precedes " + describe_node(w));
            !res.ok) {
          return res;
        }
      }
    }
  }

  // C3: read-read precedence across different writes.
  for (const read_ref& r1 : reads) {
    for (const read_ref& r2 : reads) {
      if (r1.write == r2.write) continue;
      if (ops[r1.op].end2 < ops[r2.op].start2) {
        if (auto res = add_edge(r1.write, r2.write,
                                ops[r1.op].describe() + " precedes " +
                                    ops[r2.op].describe() +
                                    " but they return opposite-ordered writes");
            !res.ok) {
          return res;
        }
      }
    }
  }

  const auto cyc = find_cycle(adj);
  if (!cyc.empty()) {
    std::string ex = "no legal sequential completion; constraint cycle:\n";
    for (std::size_t i = 0; i < cyc.size(); ++i) {
      const std::size_t a = cyc[i];
      const std::size_t b = cyc[(i + 1) % cyc.size()];
      const auto it = why.find({a, b});
      ex += "  " + describe_node(a) + " -> " + describe_node(b);
      if (it != why.end()) ex += "   [" + it->second + "]";
      ex += "\n";
    }
    return {false, ex, false};
  }
  return {true, "", false};
}

}  // namespace remus::history
