// Well-formedness of histories (paper section III-A): per process, the local
// history must alternate invocation -> (matching reply | crash), a crash can
// only be followed by a recovery, and an invocation may only follow a reply,
// a recovery, or the start of the history.
#pragma once

#include <string>

#include "history/event.h"

namespace remus::history {

struct wellformed_result {
  bool ok = true;
  std::string explanation;  // empty when ok
};

[[nodiscard]] wellformed_result check_well_formed(const history_log& h);

}  // namespace remus::history
