#include "history/brute_force.h"

#include <map>
#include <unordered_set>
#include <vector>

#include "history/wellformed.h"

namespace remus::history {
namespace {

struct bf_op {
  pos2 start2 = 0;
  pos2 end2 = 0;
  bool is_read = false;
  std::size_t write_node = 0;  // reads: the write they return; writes: self id
};

class searcher {
 public:
  searcher(std::vector<bf_op> ops) : ops_(std::move(ops)) {}

  bool feasible() {
    visited_.clear();
    return dfs(0, 0);
  }

 private:
  // mask: ops already placed; last_write: write_node of the latest placed
  // write (0 = initial).
  bool dfs(std::uint64_t mask, std::size_t last_write) {
    if (mask == (1ULL << ops_.size()) - 1) return true;
    const std::uint64_t key = mask * 131071ULL + last_write;
    if (!visited_.insert(key).second) return false;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (mask & (1ULL << i)) continue;
      // Every operation that wholly precedes i must already be placed.
      bool enabled = true;
      for (std::size_t j = 0; j < ops_.size(); ++j) {
        if (i == j || (mask & (1ULL << j))) continue;
        if (ops_[j].end2 < ops_[i].start2) {
          enabled = false;
          break;
        }
      }
      if (!enabled) continue;
      if (ops_[i].is_read && ops_[i].write_node != last_write) continue;
      const std::size_t nw = ops_[i].is_read ? last_write : ops_[i].write_node;
      if (dfs(mask | (1ULL << i), nw)) return true;
    }
    return false;
  }

  std::vector<bf_op> ops_;
  std::unordered_set<std::uint64_t> visited_;
};

}  // namespace

check_result check_atomicity_brute_force(const history_log& h, criterion c) {
  if (const auto wf = check_well_formed(h); !wf.ok) {
    return {false, "ill-formed history: " + wf.explanation, true};
  }
  const std::vector<op_record> ops = extract_operations(h, c);

  std::map<bytes, std::size_t> by_value;  // write value -> node (1-based)
  std::vector<std::size_t> write_ops;     // op index per node-1
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].is_read) continue;
    if (ops[i].written.is_initial()) {
      return {false, "checker requires non-initial write values", true};
    }
    write_ops.push_back(i);
    if (!by_value.emplace(ops[i].written.data, write_ops.size()).second) {
      return {false, "checker requires unique write values", true};
    }
  }

  // Candidate ops: completed reads + all writes (pending ones optional).
  std::vector<std::size_t> pending_writes;
  std::vector<bf_op> base;
  std::vector<std::size_t> base_src;  // op index per bf op (completed only)
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const op_record& op = ops[i];
    if (op.is_read) {
      if (op.pending()) continue;
      std::size_t node = 0;
      if (!op.returned->is_initial()) {
        const auto it = by_value.find(op.returned->data);
        if (it == by_value.end()) {
          return {false, "read returned a never-written value: " + op.describe(), false};
        }
        node = it->second;
      }
      base.push_back(bf_op{op.start2, op.end2, true, node});
      base_src.push_back(i);
    } else if (op.pending()) {
      pending_writes.push_back(i);
    } else {
      const std::size_t node = by_value.at(op.written.data);
      base.push_back(bf_op{op.start2, op.end2, false, node});
      base_src.push_back(i);
    }
  }

  if (base.size() + pending_writes.size() > 22) {
    return {false, "history too large for the brute-force checker", true};
  }

  // Try every inclusion subset of pending writes.
  const std::size_t k = pending_writes.size();
  for (std::uint64_t subset = 0; subset < (1ULL << k); ++subset) {
    std::vector<bf_op> trial = base;
    bool subset_ok = true;
    // A read-from pending write must be included.
    for (const bf_op& op : base) {
      if (!op.is_read || op.write_node == 0) continue;
      const std::size_t src = write_ops[op.write_node - 1];
      for (std::size_t pi = 0; pi < k; ++pi) {
        if (pending_writes[pi] == src && !(subset & (1ULL << pi))) subset_ok = false;
      }
    }
    if (!subset_ok) continue;
    for (std::size_t pi = 0; pi < k; ++pi) {
      if (!(subset & (1ULL << pi))) continue;
      const op_record& op = ops[pending_writes[pi]];
      trial.push_back(bf_op{op.start2, op.end2, false, by_value.at(op.written.data)});
    }
    if (searcher(std::move(trial)).feasible()) return {true, "", false};
  }
  return {false, "no legal sequential completion found (exhaustive search)", false};
}

}  // namespace remus::history
