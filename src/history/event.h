// Histories: sequences of invocation, reply, crash and recovery events
// (paper section III-A). The recorder emits events in real-time order; the
// position in the vector is the global order the checkers reason about.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "common/value.h"

namespace remus::history {

enum class event_kind : std::uint8_t {
  invoke_read,
  invoke_write,  // v = argument
  reply_read,    // v = returned value
  reply_write,
  crash,
  recover,
};

struct event {
  event_kind kind = event_kind::invoke_read;
  process_id p;
  value v;
  time_ns at = 0;
  /// Register the operation targets (invoke/reply events). Crash/recover
  /// events are process-wide and belong to every register's projection.
  /// Declared last so four-field aggregate initialization keeps meaning
  /// "the default register" (the paper's single register).
  register_id reg = default_register;

  [[nodiscard]] bool is_invoke() const {
    return kind == event_kind::invoke_read || kind == event_kind::invoke_write;
  }
  [[nodiscard]] bool is_reply() const {
    return kind == event_kind::reply_read || kind == event_kind::reply_write;
  }
};

using history_log = std::vector<event>;

[[nodiscard]] std::string to_string(event_kind k);
[[nodiscard]] std::string to_string(const event& e);
[[nodiscard]] std::string to_string(const history_log& h);

}  // namespace remus::history
