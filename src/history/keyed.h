// Per-register atomicity checking for the multi-register namespace.
//
// Linearizability is compositional (Herlihy & Wing): a history over many
// registers is atomic iff every register's projection is atomic. The
// projection of a keyed history onto register k keeps k's invoke/reply
// events plus every crash/recover event (crashes are process-wide: a crash
// cuts short the process's pending operation on *every* register), so each
// projection is a well-formed single-register history and the existing
// polynomial checker (atomicity.h) applies unchanged.
#pragma once

#include <string>
#include <vector>

#include "history/atomicity.h"
#include "history/event.h"
#include "history/operations.h"

namespace remus::history {

/// Distinct registers appearing in `h`'s invoke/reply events, ascending.
[[nodiscard]] std::vector<register_id> keys_of(const history_log& h);

/// Merges per-shard keyed histories into one global history.
///
/// Shard s's processes are renumbered into the disjoint global range
/// [s * procs_per_shard, (s+1) * procs_per_shard) — without the renumbering
/// shard 1's crash of local process 0 would cut short shard 0's process 0's
/// pending operations in every projection. Events are ordered by timestamp;
/// shards are independent (no message ever crosses one), so a timestamp tie
/// carries no causal order and breaks deterministically by (shard, each
/// shard's own order). The result is a well-formed keyed history: every
/// register lives on exactly one shard, so each per-key projection contains
/// one shard's operations plus (harmless) foreign-process crash/recover
/// events, and check_atomicity_per_key applies unchanged.
[[nodiscard]] history_log merge_shard_histories(const std::vector<history_log>& shards,
                                                std::uint32_t procs_per_shard);

/// The single-register projection of `h` onto `reg` (see file comment).
[[nodiscard]] history_log project_key(const history_log& h, register_id reg);

struct keyed_check_result {
  bool ok = true;
  /// Human-readable account of the violation, naming the failing register.
  std::string explanation;
  /// True when some projection was unusable (ill-formed, duplicate values).
  bool usage_error = false;
  /// Register whose projection failed (meaningful when !ok).
  register_id failing_key = default_register;
  /// Number of register projections examined.
  std::size_t keys_checked = 0;
};

/// Checks every register projection of `h` with check_atomicity; fails on
/// the first non-atomic (or unusable) projection.
[[nodiscard]] keyed_check_result check_atomicity_per_key(const history_log& h, criterion c);

/// Same, with the exponential cross-validation checker (tests only; each
/// projection must stay small — see brute_force.h).
[[nodiscard]] keyed_check_result check_atomicity_per_key_brute_force(const history_log& h,
                                                                     criterion c);

/// Convenience wrappers mirroring atomicity.h.
[[nodiscard]] inline keyed_check_result check_persistent_atomicity_per_key(
    const history_log& h) {
  return check_atomicity_per_key(h, criterion::persistent);
}
[[nodiscard]] inline keyed_check_result check_transient_atomicity_per_key(
    const history_log& h) {
  return check_atomicity_per_key(h, criterion::transient);
}

}  // namespace remus::history
