// Tag-order verification: the conditions of the paper's Lemma 1/2/3
// (section IV-B) checked directly on the tags operations applied, as the
// correctness proof does. Complements the black-box atomicity checkers:
// this one sees protocol internals (the tags), is linear-time, and
// pinpoints which lemma condition broke.
//
// Conditions, for completed operations only:
//   L1(i):  op1 precedes op2, op2 a read   =>  tag(op1) <= tag(op2)
//   L1(ii): op1 precedes op2, op2 a write  =>  tag(op1) <  tag(op2)
//   L2:     two completed writes never share a tag
//   L3:     a read's tag is the tag of some write (or the initial tag), and
//           its value is that write's value
//
// L1 with a read on the left-hand side relies on the read's write-back
// round anchoring its tag at a majority; pass check_read_monotonicity =
// false for regular/safe-register policies, whose single-round reads
// intentionally forgo that guarantee.
#pragma once

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/time.h"
#include "common/timestamp.h"
#include "common/value.h"

namespace remus::history {

struct tagged_op {
  bool is_read = false;
  process_id p;
  register_id reg = default_register;
  tag applied;
  value val;  // write: argument; read: returned value
  time_ns invoked_at = 0;
  time_ns replied_at = 0;
};

struct tag_order_result {
  bool ok = true;
  std::string explanation;
};

[[nodiscard]] tag_order_result check_tag_order(const std::vector<tagged_op>& ops,
                                               bool check_read_monotonicity = true);

/// Multi-register namespaces order tags per register: group `ops` by
/// register and check each group independently (batched operations appear
/// as one tagged_op per register they touched).
[[nodiscard]] tag_order_result check_tag_order_per_key(const std::vector<tagged_op>& ops,
                                                       bool check_read_monotonicity = true);

}  // namespace remus::history
