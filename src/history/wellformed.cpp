#include "history/wellformed.h"

#include <map>

namespace remus::history {
namespace {

enum class pstate { idle, in_read, in_write, crashed };

std::string where(std::size_t i, const event& e) {
  return "event " + std::to_string(i) + " (" + to_string(e) + ")";
}

}  // namespace

wellformed_result check_well_formed(const history_log& h) {
  std::map<std::uint32_t, pstate> st;
  time_ns prev = h.empty() ? 0 : h.front().at;
  for (std::size_t i = 0; i < h.size(); ++i) {
    const event& e = h[i];
    if (e.at < prev) return {false, "timestamps regress at " + where(i, e)};
    prev = e.at;
    auto& s = st.try_emplace(e.p.index, pstate::idle).first->second;
    switch (e.kind) {
      case event_kind::invoke_read:
        if (s != pstate::idle) return {false, "invocation while busy at " + where(i, e)};
        s = pstate::in_read;
        break;
      case event_kind::invoke_write:
        if (s != pstate::idle) return {false, "invocation while busy at " + where(i, e)};
        s = pstate::in_write;
        break;
      case event_kind::reply_read:
        if (s != pstate::in_read) return {false, "unmatched read reply at " + where(i, e)};
        s = pstate::idle;
        break;
      case event_kind::reply_write:
        if (s != pstate::in_write) return {false, "unmatched write reply at " + where(i, e)};
        s = pstate::idle;
        break;
      case event_kind::crash:
        if (s == pstate::crashed) return {false, "crash while crashed at " + where(i, e)};
        s = pstate::crashed;
        break;
      case event_kind::recover:
        if (s != pstate::crashed) return {false, "recovery while up at " + where(i, e)};
        s = pstate::idle;
        break;
    }
  }
  return {true, ""};
}

}  // namespace remus::history
