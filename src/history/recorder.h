// History recorder: drivers report invocation/reply/crash/recovery events
// as they happen; the recorder appends them in real-time order. Thread-safe
// (the threaded runtime reports from many threads; the simulator from one).
//
// Events are keyed by register: the keyed overloads record which register of
// the namespace an operation targets (a batched operation reports one
// invoke/reply pair per register), and the unkeyed overloads default to the
// paper's single register 0.
#pragma once

#include <mutex>

#include "history/event.h"

namespace remus::history {

class recorder {
 public:
  void invoke_read(process_id p, time_ns at) {
    invoke_read(p, default_register, at);
  }
  void invoke_write(process_id p, const value& v, time_ns at) {
    invoke_write(p, default_register, v, at);
  }
  void reply_read(process_id p, const value& v, time_ns at) {
    reply_read(p, default_register, v, at);
  }
  void reply_write(process_id p, time_ns at) {
    reply_write(p, default_register, at);
  }

  void invoke_read(process_id p, register_id reg, time_ns at);
  void invoke_write(process_id p, register_id reg, const value& v, time_ns at);
  void reply_read(process_id p, register_id reg, const value& v, time_ns at);
  void reply_write(process_id p, register_id reg, time_ns at);
  void crash(process_id p, time_ns at);
  void recover(process_id p, time_ns at);

  /// Snapshot of the history so far.
  [[nodiscard]] history_log events() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  void push(event e);

  mutable std::mutex mu_;
  history_log log_;
};

}  // namespace remus::history
