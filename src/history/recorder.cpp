#include "history/recorder.h"

namespace remus::history {

void recorder::push(event e) {
  std::lock_guard lk(mu_);
  // Guard monotonicity: concurrent reporters may race by a tick.
  if (!log_.empty() && e.at < log_.back().at) e.at = log_.back().at;
  log_.push_back(std::move(e));
}

void recorder::invoke_read(process_id p, register_id reg, time_ns at) {
  push(event{event_kind::invoke_read, p, {}, at, reg});
}

void recorder::invoke_write(process_id p, register_id reg, const value& v, time_ns at) {
  push(event{event_kind::invoke_write, p, v, at, reg});
}

void recorder::reply_read(process_id p, register_id reg, const value& v, time_ns at) {
  push(event{event_kind::reply_read, p, v, at, reg});
}

void recorder::reply_write(process_id p, register_id reg, time_ns at) {
  push(event{event_kind::reply_write, p, {}, at, reg});
}

void recorder::crash(process_id p, time_ns at) {
  push(event{event_kind::crash, p, {}, at});
}

void recorder::recover(process_id p, time_ns at) {
  push(event{event_kind::recover, p, {}, at});
}

history_log recorder::events() const {
  std::lock_guard lk(mu_);
  return log_;
}

std::size_t recorder::size() const {
  std::lock_guard lk(mu_);
  return log_.size();
}

void recorder::clear() {
  std::lock_guard lk(mu_);
  log_.clear();
}

}  // namespace remus::history
