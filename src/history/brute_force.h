// Exact exponential-time atomicity checker, used in tests to cross-validate
// the polynomial constraint-graph checker on small randomized histories.
//
// Enumerates inclusion choices for pending writes and searches for a legal
// sequential arrangement with memoized DFS over completed-op subsets.
// Practical up to ~20 operations.
#pragma once

#include "history/atomicity.h"
#include "history/event.h"
#include "history/operations.h"

namespace remus::history {

/// Same verdict semantics as check_atomicity (which see); intended for
/// histories with at most ~20 operations.
[[nodiscard]] check_result check_atomicity_brute_force(const history_log& h, criterion c);

}  // namespace remus::history
