// Atomicity checkers for the crash-recovery model (paper section III).
//
// check_atomicity(h, criterion::persistent) decides whether the history can
// be completed into a legal sequential history preserving precedence
// (persistent atomicity == linearizability surviving crashes);
// criterion::transient uses weak completion (pending write replies may slide
// to just before the process's next completed write reply).
//
// Method: pending reads are dropped (always sound: they only constrain).
// Pending writes are included iff some read returned their value (dropping
// an unread write is always sound, and a read-from write cannot be absent).
// Each included operation gets a real-time interval; with unique write
// values the history is atomic iff the write-order constraint graph is
// acyclic:
//   P1: w  -> w'   if w's interval precedes w''s,
//   C0: violation  if a read wholly precedes the write it returns,
//   C1: w' -> w_r  if write w' != w_r wholly precedes read r of w_r,
//   C2: w_r -> w'  if read r of w_r wholly precedes write w',
//   C3: w1 -> w2   if read r1 of w1 wholly precedes read r2 of w2 != w1.
// (A topological order of the writes, with each read placed directly after
// its write, is then a legal sequential history; each edge is individually
// necessary. This is the classic polynomial register-linearizability test
// for distinct values.)
//
// The checker REQUIRES unique write values (no two writes of equal bytes, no
// write of the empty initial value); workloads in this repository guarantee
// that by construction, and the checker reports a usage error otherwise.
#pragma once

#include <string>

#include "history/event.h"
#include "history/operations.h"

namespace remus::history {

struct check_result {
  bool ok = true;
  /// Human-readable account of the violation (or the usage error).
  std::string explanation;
  /// True when the input itself was unusable (ill-formed, duplicate values).
  bool usage_error = false;
};

[[nodiscard]] check_result check_atomicity(const history_log& h, criterion c);

/// Convenience wrappers.
[[nodiscard]] inline check_result check_persistent_atomicity(const history_log& h) {
  return check_atomicity(h, criterion::persistent);
}
[[nodiscard]] inline check_result check_transient_atomicity(const history_log& h) {
  return check_atomicity(h, criterion::transient);
}

}  // namespace remus::history
