#include "history/tag_order.h"

#include <map>

namespace remus::history {
namespace {

std::string describe(const tagged_op& op) {
  std::string out = "p" + std::to_string(op.p.index);
  out += op.is_read ? " R->" : " W(";
  out += remus::to_string(op.val);
  if (!op.is_read) out += ")";
  out += " tag=" + remus::to_string(op.applied);
  out += " @[" + std::to_string(op.invoked_at) + "," + std::to_string(op.replied_at) + "]";
  return out;
}

}  // namespace

tag_order_result check_tag_order(const std::vector<tagged_op>& ops,
                                 bool check_read_monotonicity) {
  // L2 + L3 prerequisite: map write tags to their values.
  std::map<tag, value> writes;
  for (const auto& op : ops) {
    if (op.is_read) continue;
    const auto [it, inserted] = writes.emplace(op.applied, op.val);
    if (!inserted && !(it->second == op.val)) {
      return {false, "L2 violated: two writes share tag " + remus::to_string(op.applied)};
    }
    if (!inserted) {
      return {false, "L2 violated: duplicate write tag " + remus::to_string(op.applied)};
    }
  }

  // L3: reads return the value of the write their tag names.
  for (const auto& op : ops) {
    if (!op.is_read) continue;
    if (op.applied.initial()) {
      if (!op.val.is_initial()) {
        return {false, "L3 violated: initial tag with non-initial value: " + describe(op)};
      }
      continue;
    }
    const auto it = writes.find(op.applied);
    if (it == writes.end()) {
      // The write may still be pending (its invoker crashed); the value
      // itself must then at least be self-consistent, which we cannot see
      // here — accept, the black-box checker covers it.
      continue;
    }
    if (!(it->second == op.val)) {
      return {false, "L3 violated: read value does not match its tag's write: " +
                         describe(op)};
    }
  }

  // L1: precedence vs tag order (quadratic; fine for test-sized runs).
  for (const auto& a : ops) {
    for (const auto& b : ops) {
      if (&a == &b || a.replied_at >= b.invoked_at) continue;  // not "a precedes b"
      // Without the read's write-back round, nothing anchors a read's tag at
      // a majority, so no condition with a read on the left holds.
      if (a.is_read && !check_read_monotonicity) continue;
      if (b.is_read) {
        if (!(a.applied <= b.applied)) {
          return {false, "L1(i) violated:\n  " + describe(a) + "\n  precedes\n  " +
                             describe(b)};
        }
      } else {
        if (!(a.applied < b.applied)) {
          return {false, "L1(ii) violated:\n  " + describe(a) + "\n  precedes\n  " +
                             describe(b)};
        }
      }
    }
  }
  return {true, ""};
}

tag_order_result check_tag_order_per_key(const std::vector<tagged_op>& ops,
                                         bool check_read_monotonicity) {
  std::map<register_id, std::vector<tagged_op>> by_reg;
  for (const auto& op : ops) by_reg[op.reg].push_back(op);
  for (const auto& [reg, group] : by_reg) {
    const auto res = check_tag_order(group, check_read_monotonicity);
    if (!res.ok) {
      return {false, "register " + std::to_string(reg) + ": " + res.explanation};
    }
  }
  return {true, ""};
}

}  // namespace remus::history
