// Plain-text table rendering for the benchmark harnesses: every bench binary
// prints rows shaped like the paper's figures so EXPERIMENTS.md can record
// paper-vs-measured side by side.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace remus::metrics {

class table {
 public:
  explicit table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  [[nodiscard]] std::string render() const;

  /// Format helper: fixed decimals.
  [[nodiscard]] static std::string num(double v, int decimals = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace remus::metrics
