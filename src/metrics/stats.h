// Summary statistics over scalar samples (operation latencies, log counts).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace remus::metrics {

class summary {
 public:
  void add(double x);
  void merge(const summary& other);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double stddev() const;
  /// q in [0, 1]; nearest-rank on the sorted samples.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double median() const { return percentile(0.5); }
  [[nodiscard]] double total() const;

  [[nodiscard]] std::string describe(const std::string& unit) const;

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool dirty_ = false;
};

}  // namespace remus::metrics
