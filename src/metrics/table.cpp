#include "metrics/table.h"

#include <algorithm>
#include <cstdio>

namespace remus::metrics {

table::table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string table::num(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string table::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    std::string out = "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string();
      out += " " + s + std::string(width[c] - s.size(), ' ') + " |";
    }
    return out + "\n";
  };
  std::string out = line(headers_);
  std::string sep = "|";
  for (const std::size_t w : width) sep += std::string(w + 2, '-') + "|";
  out += sep + "\n";
  for (const auto& row : rows_) out += line(row);
  return out;
}

}  // namespace remus::metrics
