// Per-operation metrics: the paper's three cost dimensions (section I-B):
// time (latency), messages/communication steps, and causal logs. The sim
// driver feeds one op_sample per completed operation; collectors aggregate
// by operation type.
#pragma once

#include <cstdint>
#include <string>

#include "common/time.h"
#include "metrics/stats.h"

namespace remus::metrics {

struct op_sample {
  bool is_read = false;
  time_ns latency = 0;
  /// Causal-log depth on the completion path (paper's log-complexity).
  std::uint32_t causal_logs = 0;
  /// Total stable-storage writes attributable to the op across all processes.
  std::uint32_t total_logs = 0;
  /// Round trips used by the invoking client (communication steps = 2x).
  std::uint32_t round_trips = 0;
  /// Messages sent on behalf of this op across all processes.
  std::uint32_t messages = 0;
  /// Wire bytes of those messages (payload-accurate: each broadcast copy
  /// counts). Leased local reads report 0 — the fast path's whole point.
  std::uint64_t net_bytes = 0;
};

class op_collector {
 public:
  void add(const op_sample& s);

  [[nodiscard]] const summary& write_latency_us() const { return write_lat_; }
  [[nodiscard]] const summary& read_latency_us() const { return read_lat_; }
  [[nodiscard]] const summary& write_causal_logs() const { return write_clogs_; }
  [[nodiscard]] const summary& read_causal_logs() const { return read_clogs_; }
  [[nodiscard]] const summary& write_total_logs() const { return write_tlogs_; }
  [[nodiscard]] const summary& read_total_logs() const { return read_tlogs_; }
  [[nodiscard]] const summary& write_messages() const { return write_msgs_; }
  [[nodiscard]] const summary& read_messages() const { return read_msgs_; }
  [[nodiscard]] const summary& write_round_trips() const { return write_rts_; }
  [[nodiscard]] const summary& read_round_trips() const { return read_rts_; }
  [[nodiscard]] const summary& write_net_bytes() const { return write_bytes_; }
  [[nodiscard]] const summary& read_net_bytes() const { return read_bytes_; }

  [[nodiscard]] std::string describe() const;

 private:
  summary write_lat_, read_lat_;
  summary write_clogs_, read_clogs_;
  summary write_tlogs_, read_tlogs_;
  summary write_msgs_, read_msgs_;
  summary write_rts_, read_rts_;
  summary write_bytes_, read_bytes_;
};

}  // namespace remus::metrics
