#include "metrics/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace remus::metrics {

void summary::add(double x) {
  samples_.push_back(x);
  dirty_ = true;
}

void summary::merge(const summary& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  dirty_ = true;
}

void summary::ensure_sorted() const {
  if (!dirty_ && sorted_.size() == samples_.size()) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  dirty_ = false;
}

double summary::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0;
  for (const double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double summary::total() const {
  double s = 0;
  for (const double x : samples_) s += x;
  return s;
}

double summary::min() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double summary::max() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0;
  for (const double x : samples_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

double summary::percentile(double q) const {
  ensure_sorted();
  if (sorted_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  return sorted_[rank == 0 ? 0 : rank - 1];
}

std::string summary::describe(const std::string& unit) const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "n=%zu mean=%.2f%s p50=%.2f%s p95=%.2f%s max=%.2f%s",
                count(), mean(), unit.c_str(), median(), unit.c_str(),
                percentile(0.95), unit.c_str(), max(), unit.c_str());
  return buf;
}

}  // namespace remus::metrics
