#include "metrics/op_metrics.h"

namespace remus::metrics {

void op_collector::add(const op_sample& s) {
  if (s.is_read) {
    read_lat_.add(to_us(s.latency));
    read_clogs_.add(s.causal_logs);
    read_tlogs_.add(s.total_logs);
    read_msgs_.add(s.messages);
    read_rts_.add(s.round_trips);
    read_bytes_.add(static_cast<double>(s.net_bytes));
  } else {
    write_lat_.add(to_us(s.latency));
    write_clogs_.add(s.causal_logs);
    write_tlogs_.add(s.total_logs);
    write_msgs_.add(s.messages);
    write_rts_.add(s.round_trips);
    write_bytes_.add(static_cast<double>(s.net_bytes));
  }
}

std::string op_collector::describe() const {
  std::string out;
  if (write_lat_.count() > 0) {
    out += "writes: " + write_lat_.describe("us") +
           " causal-logs(mean)=" + std::to_string(write_clogs_.mean()) + "\n";
  }
  if (read_lat_.count() > 0) {
    out += "reads:  " + read_lat_.describe("us") +
           " causal-logs(mean)=" + std::to_string(read_clogs_.mean()) + "\n";
  }
  return out;
}

}  // namespace remus::metrics
