// Consistent-hash ring mapping register names onto shard indices.
//
// The sharded namespace (shard_router.h) splits the register namespace
// across S independent quorum groups. The ring decides placement:
//
//   * Each shard owns `vnodes` points ("virtual nodes") on a 64-bit ring,
//     placed by hashing (shard, replica). A register hashes to a ring
//     position and is owned by the first shard point clockwise from it.
//   * Placement is a pure function of (shard set, vnodes) and the fixed
//     mixing constants below — deliberately independent of any simulation
//     seed, so the same key lands on the same shard across runs, machines,
//     and fault schedules (determinism_test relies on this).
//   * Virtual nodes give the two classic consistent-hashing properties:
//     balance (each shard owns ~1/S of the key space, concentration
//     improving with vnodes) and stability (growing S -> S+1 moves only the
//     keys whose successor point now belongs to the new shard, ~1/(S+1) of
//     the namespace; removing a shard moves only *its* keys, spread over the
//     survivors; shard_router_test pins both bounds).
//
// Each ring instance is immutable, but rings are *versioned*: an epoch
// stamps every snapshot, grow()/shrink() derive the successor topology at
// epoch + 1, and diff() enumerates exactly the ring segments whose owner
// changed between two snapshots — the moved-key predicate the router's
// online migration window is built on (shard_router.h).
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"

namespace remus::core {

class hash_ring final {
 public:
  /// Builds the epoch-`epoch` ring for shards {0, .., shard_count-1} with
  /// `vnodes` points per shard (>= 1; 64 balances lookup cost vs spread).
  explicit hash_ring(std::uint32_t shard_count, std::uint32_t vnodes = 64,
                     std::uint64_t epoch = 0);
  /// Builds the ring for an explicit shard-id set (non-empty, no
  /// duplicates). A shard's points depend only on its own id, so the ids
  /// surviving a removal keep exactly the placements they had — that is
  /// what makes shrink move only the removed shard's keys.
  hash_ring(std::vector<std::uint32_t> shard_ids, std::uint32_t vnodes,
            std::uint64_t epoch);

  /// The successor topology with shard id `new_shard` added, at epoch + 1.
  [[nodiscard]] hash_ring grow(std::uint32_t new_shard) const;
  /// The successor topology with shard id `removed` taken out, at epoch + 1.
  /// The removed shard's keys redistribute over the remaining shards only
  /// (every other key keeps its owner); the ring must keep >= 1 shard.
  [[nodiscard]] hash_ring shrink(std::uint32_t removed) const;

  /// Owning shard of `reg`: the first ring point clockwise from hash(reg).
  /// O(log(shards * vnodes)), allocation-free.
  [[nodiscard]] std::uint32_t shard_of(register_id reg) const noexcept;
  /// Owner of raw ring position `pos` (diff plumbing and diagnostics).
  [[nodiscard]] std::uint32_t owner_of_position(std::uint64_t pos) const noexcept;

  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shard_ids_.size());
  }
  /// The shard ids on this ring, ascending.
  [[nodiscard]] const std::vector<std::uint32_t>& shard_ids() const noexcept {
    return shard_ids_;
  }
  [[nodiscard]] bool has_shard(std::uint32_t shard) const noexcept;
  [[nodiscard]] std::uint32_t vnodes() const noexcept { return vnodes_; }
  /// Version stamp of this snapshot (0 for a freshly built topology).
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  /// Ring points (diagnostics / balance tests).
  [[nodiscard]] std::size_t points() const noexcept { return ring_.size(); }

  /// The ownership delta between two ring snapshots: the circle decomposes
  /// into half-open arcs (lo, hi] bounded by the union of both rings'
  /// points, and the delta keeps exactly the arcs whose owner differs. A key
  /// moved iff its hash falls in one of them — an O(log segments) predicate
  /// that never consults the rings again, and the router's source-of-truth
  /// for which keys a reconfiguration migrates.
  struct delta {
    struct segment {
      std::uint64_t lo = 0;  // exclusive (except the wrapping segment)
      std::uint64_t hi = 0;  // inclusive
      std::uint32_t from_shard = 0;
      std::uint32_t to_shard = 0;
    };
    /// Changed arcs, sorted by hi; at most one wraps (lo > hi).
    std::vector<segment> segments;

    [[nodiscard]] bool moved(register_id reg) const noexcept;
    /// The segment covering `reg`'s hash (nullptr if the key did not move).
    [[nodiscard]] const segment* segment_of(register_id reg) const noexcept;
    [[nodiscard]] bool empty() const noexcept { return segments.empty(); }
  };

  /// Enumerates the ownership changes from `before` to `after`. The rings
  /// may have different shard sets and epochs; identical rings produce an
  /// empty delta.
  [[nodiscard]] static delta diff(const hash_ring& before, const hash_ring& after);

  /// The fixed 64-bit key hash the ring positions registers by (exposed so
  /// workload generators can pre-bucket keys without a ring instance).
  [[nodiscard]] static std::uint64_t mix(std::uint64_t x) noexcept;

 private:
  struct point {
    std::uint64_t pos = 0;     // position on the ring
    std::uint32_t shard = 0;   // owner
  };

  std::vector<std::uint32_t> shard_ids_;  // ascending
  std::uint32_t vnodes_;
  std::uint64_t epoch_;
  std::vector<point> ring_;  // sorted by (pos, shard)
};

}  // namespace remus::core
