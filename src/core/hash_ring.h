// Consistent-hash ring mapping register names onto shard indices.
//
// The sharded namespace (shard_router.h) splits the register namespace
// across S independent quorum groups. The ring decides placement:
//
//   * Each shard owns `vnodes` points ("virtual nodes") on a 64-bit ring,
//     placed by hashing (shard, replica). A register hashes to a ring
//     position and is owned by the first shard point clockwise from it.
//   * Placement is a pure function of (shard_count, vnodes) and the fixed
//     mixing constants below — deliberately independent of any simulation
//     seed, so the same key lands on the same shard across runs, machines,
//     and fault schedules (determinism_test relies on this).
//   * Virtual nodes give the two classic consistent-hashing properties:
//     balance (each shard owns ~1/S of the key space, concentration
//     improving with vnodes) and stability (growing S -> S+1 moves only the
//     keys whose successor point now belongs to the new shard, ~1/(S+1) of
//     the namespace; shard_router_test pins this bound).
//
// The ring is immutable after construction; rebalancing builds a new ring
// and migrates the moved keys (a future PR — see docs/ARCHITECTURE.md).
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"

namespace remus::core {

class hash_ring final {
 public:
  /// Builds the ring for `shard_count` shards (>= 1) with `vnodes` points
  /// per shard (>= 1; 64 balances lookup cost against spread).
  explicit hash_ring(std::uint32_t shard_count, std::uint32_t vnodes = 64);

  /// Owning shard of `reg`: the first ring point clockwise from hash(reg).
  /// O(log(shard_count * vnodes)), allocation-free.
  [[nodiscard]] std::uint32_t shard_of(register_id reg) const noexcept;

  [[nodiscard]] std::uint32_t shard_count() const noexcept { return shard_count_; }
  [[nodiscard]] std::uint32_t vnodes() const noexcept { return vnodes_; }
  /// Ring points (diagnostics / balance tests).
  [[nodiscard]] std::size_t points() const noexcept { return ring_.size(); }

  /// The fixed 64-bit key hash the ring positions registers by (exposed so
  /// workload generators can pre-bucket keys without a ring instance).
  [[nodiscard]] static std::uint64_t mix(std::uint64_t x) noexcept;

 private:
  struct point {
    std::uint64_t pos = 0;     // position on the ring
    std::uint32_t shard = 0;   // owner
  };

  std::uint32_t shard_count_;
  std::uint32_t vnodes_;
  std::vector<point> ring_;  // sorted by (pos, shard)
};

}  // namespace remus::core
