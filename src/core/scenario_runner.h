// Executes a sim::scenario_plan against a shard_router under a kv_workload
// and checks the result with the history checkers — the driver half of the
// adversarial scenario engine (sim/scenario.h is the pure plan half; this
// layer owns the core/ dependencies).
//
// A scenario_spec is everything one fuzzed run needs: the fault plan, the
// workload shape, the policy, the seeds, and (for the fuzzer's
// catch-the-planted-bug check) an injected migration fault. Specs round-trip
// through a one-line codec so a failing run prints a self-contained repro
// line that decode() turns back into the identical run — the fuzzer and the
// regression tests share it.
//
// Timed semantics: crash/recover events are scheduled ahead of time through
// the router; cut/heal/gray/begin_migration are imperative, so run_scenario
// advances the simulation in segments (run_for up to each event's instant,
// apply, continue), then runs to idle and closes any open migration window.
// Because every plan is well_formed, the tail of the run has all processes
// up and all links clean, so termination is the paper's
// eventually-correct-majority guarantee in action.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "core/shard_router.h"
#include "history/event.h"
#include "sim/scenario.h"

namespace remus::core {

struct scenario_spec {
  sim::scenario_plan plan;
  // Workload shape (sim::kv_workload over plan.n processes per shard).
  std::uint32_t key_count = 8;
  std::uint32_t ops = 40;
  double read_fraction = 0.5;
  double zipf_theta = 0.0;
  std::uint32_t batch_size = 1;
  time_ns mean_gap = 200 * 1000;
  std::uint64_t workload_seed = 1;
  std::uint64_t cluster_seed = 1;
  /// 'p' = persistent emulation, 't' = transient (picks the matching
  /// atomicity criterion too).
  char policy = 'p';
  /// Deliberate bug to plant (fuzzer acceptance check); none for real runs.
  shard_router_config::injected_fault fault = shard_router_config::injected_fault::none;
  /// Run with read leases on (short duration, hot-key threshold 1) so the
  /// fault plan lands on live leases. Also turned on automatically when the
  /// plan contains a lease-family unit. Encoded as an optional 11th field —
  /// pre-lease repro lines (10 fields) decode with leases off.
  bool leases = false;

  [[nodiscard]] bool operator==(const scenario_spec&) const = default;

  /// One-line self-contained repro: "s1|<workload fields>|<plan line>".
  /// decode throws std::invalid_argument on malformed input.
  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static scenario_spec decode(const std::string& line);
};

struct scenario_outcome {
  bool ran_to_idle = false;
  /// The migration window (if the plan opened one) drained and was retired.
  bool migration_closed = true;
  bool atomic = false;
  bool tag_ordered = false;
  /// First violation's explanation (empty when ok()).
  std::string failure;
  std::size_t completed_ops = 0;
  std::size_t keys_checked = 0;
  /// Plan families/overlaps plus the run's protocol-branch counters.
  sim::scenario_coverage coverage;
  history::history_log history;
  std::vector<shard_router::migration_event> migration_log;

  [[nodiscard]] bool ok() const {
    return ran_to_idle && migration_closed && atomic && tag_ordered;
  }
};

/// Runs the spec to completion (deterministic: outcome is a pure function of
/// the spec — `workers` changes wall-clock time only, never the outcome; the
/// parallel determinism pin leans on exactly that) and checks per-key
/// atomicity and per-key tag order. `workers` maps to
/// shard_router_config::workers (1 = sequential, 0 = hardware concurrency).
[[nodiscard]] scenario_outcome run_scenario(const scenario_spec& spec,
                                            std::uint32_t workers = 1);

/// Delta-debugging minimization of a failing spec: sim::minimize_plan over
/// the fault plan interleaved with workload shrinking (halve the key set and
/// the op count while the failure reproduces). The input spec must fail
/// (!run_scenario(spec).ok()); the result still fails.
[[nodiscard]] scenario_spec minimize_scenario(const scenario_spec& failing);

}  // namespace remus::core
