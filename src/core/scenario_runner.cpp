#include "core/scenario_runner.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "history/keyed.h"
#include "history/tag_order.h"
#include "sim/kv_workload.h"

namespace remus::core {

namespace {

std::uint64_t double_bits(double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double double_from_bits(std::uint64_t bits) {
  double d = 0.0;
  std::memcpy(&d, &bits, sizeof(bits));
  return d;
}

std::uint64_t parse_u64(const std::string& tok) {
  std::size_t used = 0;
  const std::uint64_t v = std::stoull(tok, &used);
  if (used != tok.size()) throw std::invalid_argument("spec: bad number " + tok);
  return v;
}

}  // namespace

std::string scenario_spec::encode() const {
  std::ostringstream os;
  os << "s1|" << key_count << ',' << ops << ',' << double_bits(read_fraction) << ','
     << double_bits(zipf_theta) << ',' << batch_size << ',' << mean_gap << ','
     << workload_seed << ',' << cluster_seed << ',' << policy << ','
     << static_cast<int>(fault) << ',' << (leases ? 1 : 0) << '|'
     << sim::encode(plan);
  return os.str();
}

scenario_spec scenario_spec::decode(const std::string& line) {
  const std::size_t bar1 = line.find('|');
  const std::size_t bar2 = bar1 == std::string::npos ? bar1 : line.find('|', bar1 + 1);
  if (line.substr(0, bar1) != "s1" || bar2 == std::string::npos) {
    throw std::invalid_argument("spec: bad repro header");
  }
  const std::string fields = line.substr(bar1 + 1, bar2 - bar1 - 1);
  std::vector<std::string> f;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= fields.size(); ++i) {
    if (i == fields.size() || fields[i] == ',') {
      f.push_back(fields.substr(start, i - start));
      start = i + 1;
    }
  }
  // 10 fields is the pre-lease line format; the 11th (leases) is optional so
  // old corpus repro lines stay valid.
  if ((f.size() != 10 && f.size() != 11) || f[8].size() != 1) {
    throw std::invalid_argument("spec: bad field count");
  }
  scenario_spec spec;
  spec.key_count = static_cast<std::uint32_t>(parse_u64(f[0]));
  spec.ops = static_cast<std::uint32_t>(parse_u64(f[1]));
  spec.read_fraction = double_from_bits(parse_u64(f[2]));
  spec.zipf_theta = double_from_bits(parse_u64(f[3]));
  spec.batch_size = static_cast<std::uint32_t>(parse_u64(f[4]));
  spec.mean_gap = static_cast<time_ns>(parse_u64(f[5]));
  spec.workload_seed = parse_u64(f[6]);
  spec.cluster_seed = parse_u64(f[7]);
  spec.policy = f[8][0];
  if (spec.policy != 'p' && spec.policy != 't') {
    throw std::invalid_argument("spec: bad policy");
  }
  const std::uint64_t fault = parse_u64(f[9]);
  if (fault > static_cast<std::uint64_t>(
                  shard_router_config::injected_fault::skip_read_writeback)) {
    throw std::invalid_argument("spec: bad fault");
  }
  spec.fault = static_cast<shard_router_config::injected_fault>(fault);
  if (f.size() == 11) {
    const std::uint64_t leases = parse_u64(f[10]);
    if (leases > 1) throw std::invalid_argument("spec: bad leases flag");
    spec.leases = leases == 1;
  }
  spec.plan = sim::decode_plan(line.substr(bar2 + 1));
  return spec;
}

scenario_outcome run_scenario(const scenario_spec& spec, std::uint32_t workers) {
  scenario_outcome out;
  const sim::scenario_plan& plan = spec.plan;

  shard_router_config cfg;
  cfg.shards = plan.shards;
  cfg.workers = workers;
  cfg.base.n = plan.n;
  cfg.base.policy =
      spec.policy == 't' ? proto::transient_policy() : proto::persistent_policy();
  // Lease runs (explicit flag or a lease-family unit in the plan) turn the
  // read-lease fast path on with an aggressive tuning — every read a grant
  // candidate, lease windows short enough that expiry races the fault plan.
  bool leases = spec.leases;
  for (const sim::scenario_event& e : plan.events) {
    if (e.family == sim::fault_family::lease) leases = true;
  }
  if (leases) {
    cfg.base.policy.read_leases = true;
    cfg.base.policy.lease_hot_read_threshold = 1;
    cfg.base.policy.lease_duration = 5 * 1000 * 1000;  // 5 ms virtual
  }
  cfg.base.seed = spec.cluster_seed;
  // Scenario runs exercise the WAL engine so corrupt_crash has a medium to
  // damage; throughput benchmarks keep the map store (zero-allocation path).
  cfg.base.wal_storage = true;
  cfg.test_fault = spec.fault;
  shard_router router(cfg);

  // Gray links ride each shard's packet filter: the filter consults this
  // table (one slot per original shard; a migration-born shard is never
  // grayed). Cuts are checked before the filter, so partitions compose.
  struct gray_entry {
    process_id from;
    process_id to;
    time_ns extra_delay = 0;
    double loss = 0.0;
  };
  std::vector<std::vector<gray_entry>> grays(plan.shards);
  rng gray_master(spec.cluster_seed ^ 0xadead5cedull);
  for (std::uint32_t s = 0; s < plan.shards; ++s) {
    const std::vector<gray_entry>* table = &grays[s];
    const time_ns base_delay = cfg.base.net.base_delay;
    rng coin = gray_master.fork();
    router.shard(s).network().set_filter(
        [table, base_delay, coin](const sim::packet_info& p) mutable {
          sim::filter_verdict v;
          for (const gray_entry& g : *table) {
            if (p.from != g.from || p.to != g.to) continue;
            if (g.loss > 0 && coin.chance(g.loss)) {
              v.drop = true;
              return v;
            }
            if (g.extra_delay > 0) v.deliver_at = p.now + base_delay + g.extra_delay;
            return v;
          }
          return v;
        });
  }

  // Crash/recover events schedule ahead of time; the rest are imperative and
  // applied in segments below.
  std::vector<const sim::scenario_event*> imperative;
  for (const sim::scenario_event& e : plan.events) {
    switch (e.kind) {
      case sim::scenario_kind::crash:
        router.submit_crash(e.shard, e.target, e.at);
        break;
      case sim::scenario_kind::corrupt_crash:
        router.submit_crash(e.shard, e.target, e.at, crash_style::corrupt_tail);
        break;
      case sim::scenario_kind::recover:
        router.submit_recover(e.shard, e.target, e.at);
        break;
      default:
        imperative.push_back(&e);
        break;
    }
  }

  sim::kv_workload_config wcfg;
  wcfg.n = plan.n;
  wcfg.key_count = spec.key_count;
  wcfg.zipf_theta = spec.zipf_theta;
  wcfg.read_fraction = spec.read_fraction;
  wcfg.batch_size = spec.batch_size;
  wcfg.ops = spec.ops;
  wcfg.mean_gap = spec.mean_gap;
  wcfg.seed = spec.workload_seed;
  std::vector<sim::kv_op> work = sim::make_kv_workload(wcfg);
  // The generator emits per-process arrival streams interleaved in sampling
  // order; the merge below needs one globally time-sorted stream (stable, so
  // each process's own ops keep their order on ties).
  std::stable_sort(work.begin(), work.end(),
                   [](const sim::kv_op& a, const sim::kv_op& b) { return a.at < b.at; });

  // Segmented execution over the merged timeline of workload arrivals and
  // imperative fault events. Each operation is submitted at its own arrival
  // instant — routing decisions (shard_of, the migration-window discipline)
  // happen at submission, so ops invoked inside the window must not be
  // submitted before it opens. Ties apply the fault first (a cut at t
  // affects an op arriving at t).
  std::vector<shard_router::op_handle> handles;
  handles.reserve(work.size());
  const auto apply_event = [&](const sim::scenario_event& e) {
    switch (e.kind) {
      case sim::scenario_kind::cut: {
        std::vector<process_id> in, rest;
        for (std::uint32_t p = 0; p < plan.n; ++p) {
          ((e.group_mask >> p) & 1u ? in : rest).push_back(process_id{p});
        }
        router.shard(e.shard).network().partition({in, rest});
        break;
      }
      case sim::scenario_kind::heal:
        router.shard(e.shard).network().restore_all_links();
        grays[e.shard].clear();
        break;
      case sim::scenario_kind::gray:
        grays[e.shard].push_back({e.target, e.peer, e.extra_delay, e.loss});
        break;
      case sim::scenario_kind::begin_migration:
        if (!router.migration_active() && router.shard_count() == plan.shards) {
          router.begin_add_shard();
        }
        break;
      default:
        break;  // crash/recover were scheduled above
    }
  };
  const auto submit_op = [&](const sim::kv_op& op) {
    const time_ns at = std::max(op.at, router.now());
    if (op.entries.size() > 1) {
      if (op.is_read) {
        std::vector<register_id> regs;
        for (const auto& e : op.entries) regs.push_back(e.reg);
        handles.push_back(router.submit_read_batch(op.p, std::move(regs), at));
      } else {
        std::vector<proto::write_op> ws;
        for (const auto& e : op.entries) ws.push_back({e.reg, e.val});
        handles.push_back(router.submit_write_batch(op.p, std::move(ws), at));
      }
    } else if (op.is_read) {
      handles.push_back(router.submit_read(op.p, op.entries[0].reg, at));
    } else {
      handles.push_back(
          router.submit_write(op.p, op.entries[0].reg, op.entries[0].val, at));
    }
  };
  std::size_t wi = 0;
  std::size_t ei = 0;
  while (wi < work.size() || ei < imperative.size()) {
    const bool event_next =
        ei < imperative.size() &&
        (wi >= work.size() || imperative[ei]->at <= work[wi].at);
    const time_ns at = event_next ? imperative[ei]->at : work[wi].at;
    if (at > router.now()) router.run_for(at - router.now());
    if (event_next) {
      apply_event(*imperative[ei++]);
    } else {
      submit_op(work[wi++]);
    }
  }

  out.ran_to_idle = router.run_until_idle();
  if (router.migration_active()) {
    if (router.migration_drained()) {
      router.finish_add_shard();
    } else {
      out.migration_closed = false;
      out.failure = "migration window failed to drain";
    }
  }

  // Audit pass: with the system quiesced (every process up, links clean, any
  // migration window retired), read every key once. A completed write whose
  // state some fault path lost — a dropped handoff, a rolled-back register —
  // surfaces as a stale read here instead of going unobserved because the
  // workload happened to end first.
  if (out.migration_closed) {
    for (register_id k = 0; k < spec.key_count; ++k) {
      handles.push_back(router.submit_read(process_id{0}, k, router.now()));
    }
    if (!router.run_until_idle()) out.ran_to_idle = false;
  }

  for (const shard_router::op_handle h : handles) {
    if (router.result(h).completed) out.completed_ops += 1;
  }

  out.history = router.events();
  const history::criterion crit = cfg.base.policy.recovery_counter
                                      ? history::criterion::transient
                                      : history::criterion::persistent;
  const history::keyed_check_result atom =
      history::check_atomicity_per_key(out.history, crit);
  out.atomic = atom.ok;
  out.keys_checked = atom.keys_checked;
  if (!atom.ok && out.failure.empty()) out.failure = atom.explanation;
  const history::tag_order_result order =
      history::check_tag_order_per_key(router.tagged_operations());
  out.tag_ordered = order.ok;
  if (!order.ok && out.failure.empty()) out.failure = order.explanation;
  if (!out.ran_to_idle && out.failure.empty()) {
    out.failure = "run did not reach idle within the event budget";
  }

  // Coverage: plan families/overlaps, protocol branches, migration paths.
  sim::accumulate_plan_coverage(plan, out.coverage);
  for (std::uint32_t s = 0; s < router.shard_count(); ++s) {
    for (std::uint32_t p = 0; p < plan.n; ++p) {
      const proto::quorum_core::branch_stats& b =
          router.shard(s).core_of(process_id{p}).branches();
      out.coverage.adoptions += b.adoptions;
      out.coverage.stale_updates += b.stale_updates;
      out.coverage.adopt_splits += b.adopt_splits;
      out.coverage.retransmits += b.retransmits;
      out.coverage.retransmit_trims += b.retransmit_trims;
      out.coverage.recovery_finish_writes += b.recovery_finish_writes;
      out.coverage.leased_read_hits += b.leased_read_hits;
      out.coverage.lease_grants += b.lease_grants;
      out.coverage.lease_invalidations += b.lease_invalidations;
      out.coverage.lease_expiries += b.lease_expiries;
    }
  }
  out.migration_log = router.migration_log();
  for (const shard_router::migration_event& me : out.migration_log) {
    switch (me.why) {
      case shard_router::migration_event::cause::write_handoff:
        out.coverage.handoff_writes += 1;
        break;
      case shard_router::migration_event::cause::drain:
        out.coverage.handoff_drains += 1;
        break;
      case shard_router::migration_event::cause::read_writeback:
        out.coverage.handoff_writebacks += 1;
        break;
      case shard_router::migration_event::cause::lease_drop:
        out.coverage.handoff_lease_drops += 1;
        break;
    }
  }
  return out;
}

scenario_spec minimize_scenario(const scenario_spec& failing) {
  scenario_spec cur = failing;
  const auto fails = [](const scenario_spec& s) { return !run_scenario(s).ok(); };
  const auto minimize_cur_plan = [&] {
    cur.plan = sim::minimize_plan(cur.plan, [&](const sim::scenario_plan& p) {
      scenario_spec cand = cur;
      cand.plan = p;
      return fails(cand);
    });
  };

  minimize_cur_plan();
  // Workload shrink: halve the key set and the op count while the failure
  // reproduces (regenerated workload — the failure must survive re-keying).
  bool changed = true;
  while (changed) {
    changed = false;
    if (cur.key_count > 1) {
      scenario_spec cand = cur;
      cand.key_count = cur.key_count / 2;
      if (fails(cand)) {
        cur = cand;
        changed = true;
      }
    }
    if (cur.ops > 4) {
      scenario_spec cand = cur;
      cand.ops = cur.ops / 2;
      if (fails(cand)) {
        cur = cand;
        changed = true;
      }
    }
    if (cur.batch_size > 1) {
      scenario_spec cand = cur;
      cand.batch_size = 1;
      if (fails(cand)) {
        cur = cand;
        changed = true;
      }
    }
  }
  // A smaller workload may strand fault units that only mattered for the
  // dropped operations: one more plan pass.
  minimize_cur_plan();
  return cur;
}

}  // namespace remus::core
