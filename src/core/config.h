// Cluster configuration: one struct describing a whole emulation setup —
// process count, protocol policy, and the calibrated cost model.
//
// Default costs follow the paper's measurements (section I-A, V):
//   * one-way message transit ~0.1 ms on their 100 Mbps LAN,
//   * logging a single byte ~2x a message transit (~0.2 ms) on IDE disks,
//   * local computation "costs almost nothing" (a few microseconds).
#pragma once

#include <cstdint>

#include "common/time.h"
#include "proto/policy.h"
#include "sim/disk_model.h"
#include "sim/network_model.h"

namespace remus::core {

struct cluster_config {
  std::uint32_t n = 5;
  proto::protocol_policy policy = proto::persistent_policy();
  sim::network_config net{};
  sim::disk_config disk{};
  /// CPU cost charged per delivered input (message, timer, log completion).
  time_ns process_step_cost = 5 * 1000;
  /// Synchronous retrieve() cost charged once at the start of recovery.
  time_ns recovery_read_latency = 400 * 1000;
  /// Seed for every random stream (network jitter, epochs).
  std::uint64_t seed = 1;
};

}  // namespace remus::core
