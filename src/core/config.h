// Cluster configuration: one struct describing a whole emulation setup —
// process count, protocol policy, and the calibrated cost model.
//
// Default costs follow the paper's measurements (section I-A, V):
//   * one-way message transit ~0.1 ms on their 100 Mbps LAN,
//   * logging a single byte ~2x a message transit (~0.2 ms) on IDE disks,
//   * local computation "costs almost nothing" (a few microseconds).
#pragma once

#include <cstdint>

#include "common/time.h"
#include "proto/policy.h"
#include "sim/disk_model.h"
#include "sim/network_model.h"

namespace remus::core {

struct cluster_config {
  std::uint32_t n = 5;
  proto::protocol_policy policy = proto::persistent_policy();
  sim::network_config net{};
  sim::disk_config disk{};
  /// CPU cost charged per delivered input (message, timer, log completion).
  time_ns process_step_cost = 5 * 1000;
  /// Synchronous retrieve() cost charged once at the start of recovery.
  time_ns recovery_read_latency = 400 * 1000;
  /// Seed for every random stream (network jitter, epochs).
  std::uint64_t seed = 1;
  /// Back each process with the log-structured WAL engine
  /// (storage::wal_store over in-memory media) instead of the plain map
  /// store. Crashes then leave a torn frame where the in-flight store
  /// died, recovery replays snapshot+log through the checksum scanner,
  /// and the corrupt_tail crash style becomes meaningful. Off by default:
  /// the map store is the zero-allocation benchmark substrate.
  bool wal_storage = false;
  /// WAL compaction floor (see storage::wal_store_config): sized for
  /// simulation records, small enough that scenario runs actually compact.
  std::size_t wal_compact_min_bytes = 8 * 1024;
};

}  // namespace remus::core
