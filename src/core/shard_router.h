// shard_router: the composition layer above cluster — a sharded register
// namespace served by S *independent* quorum groups, reconfigurable online.
//
// The paper's emulation (and core::cluster) serves its whole namespace from
// one majority cluster, so capacity is capped by a single quorum's
// throughput. The router consistently hashes every register_id onto one of S
// clusters (hash_ring.h) and exposes the same keyed API; because
// linearizability is compositional per register and every register lives on
// exactly one shard, the sharded namespace is atomic as long as each shard's
// quorum emulation is — exactly what history::check_atomicity_per_key
// verifies on the merged history. This is the "compose crash-recovery
// building blocks into larger services" direction of Kozhaya et al., "You
// Only Live Multiple Times".
//
// Independence is total: each shard has its own n processes, protocol cores,
// stable-storage namespace, network/disk models, fault schedule, and event
// queue. No message, log record, or timer ever crosses a shard. The router
// contributes exactly four things:
//
//   * routing     — shard_of(reg) via the seed-independent hash ring;
//   * scheduling  — run_until_idle()/run_for() advance all S event queues in
//     merged virtual-time order (lockstep windows bounded by each queue's
//     next_event_time()), so the shards share one global clock and the
//     merged history's timestamps are comparable across shards;
//   * merging     — a batch over keys of several shards splits into one
//     sub-batch per shard (one quorum round per phase *per shard touched*),
//     completes when every sub-batch has, and reassembles per-key results in
//     the caller's original key order. Histories and tagged operations merge
//     with shard s's processes renumbered to s*n .. s*n+n-1 (global ids), so
//     cross-shard process identities never collide;
//   * reconfiguration — begin_add_shard()/finish_add_shard() grow the ring
//     S -> S+1 *while serving*, migrating the ~1/(S+1) moved keys online.
//
// # The migration window (dual-ring discipline)
//
// begin_add_shard() spins up shard S, stamps a new ring snapshot at
// epoch + 1, and computes hash_ring::diff(old, new) — the exact set of ring
// arcs (hence keys) whose owner changed, always old-shard -> new-shard.
// Until finish_add_shard(), a moved key is in one of two states:
//
//   un-migrated — the OLD shard stays authoritative. Reads route to it (and,
//     once the quorum read completes, its freshest (tag, value) is written
//     back durably onto the NEW shard via cluster::import_register — the
//     paper's two-phase read discipline stretched across shards: return only
//     what is anchored at a destination majority too, so a wholesale source
//     loss cannot roll the register back past anything already served).
//     Writes *hand the key off*: cluster::export_register snapshots the old
//     group's state (freshest written tag/value plus any pre-logged
//     unfinished write), import_register installs it durably at all n
//     destination processes, the source's records are evicted, and only then
//     is the write submitted to the new shard — whose sequence-number query
//     now sees the imported tag, so post-migration tags strictly dominate
//     pre-migration ones and per-key tag order survives the epoch change.
//   migrated — the NEW shard is authoritative; everything routes there.
//
// Handoff only happens at a *quiet point*: if the old shard still has
// in-flight operations on the key (tracked per key from the moment the
// window opens), writes keep routing to the old shard and the key is left
// for the drain. A background drain pump — driven off the same merged
// event-queue loop, a few keys per lockstep round — migrates the remaining
// moved keys (worklist built from the old shards' stable storage at window
// open, ascending key order, deterministically rate-limited), so the window
// closes even for keys the workload never writes. finish_add_shard()
// requires the worklist drained and retires the old ring.
//
// Atomicity across the reconfiguration is compositional again, but with one
// extra obligation the window discharges: for each moved key there is a
// single instant (its handoff) before which every completed operation
// executed on the old group and after which every one executes on the new
// group, and the handoff transfers a tag at least as large as any completed
// operation's. The merged two-epoch history therefore still passes
// history::check_atomicity_per_key unchanged — that is the acceptance oracle
// (shard_router_test, chaos tests, bench_rebalance all assert it).
//
// Typical use:
//
//   core::shard_router_config cfg;
//   cfg.shards = 2;
//   cfg.base.n = 3;
//   core::shard_router r(cfg);
//   r.write(process_id{0}, /*reg=*/7, value_of_u32(1));
//   r.begin_add_shard();              // epoch+1 ring, window opens
//   r.write(process_id{0}, 7, value_of_u32(2));   // may hand 7 off
//   r.run_until_idle();               // drain pump migrates the rest
//   r.finish_add_shard();             // old ring retired
//   auto verdict = history::check_persistent_atomicity_per_key(r.events());
//
// Determinism: a run is a pure function of (shard_router_config, submitted
// workload, reconfiguration calls) — the migration schedule included
// (shard_router_test pins this). Key placement is additionally
// seed-independent (see hash_ring).
//
// # Parallel execution (cfg.workers)
//
// Because independence is total, the S event queues can be advanced by a
// worker pool (sim::shard_driver) instead of one thread — same histories,
// more cores. The discipline is *window barriers*: workers only ever run
// disjoint shards between two synchronization points, and every piece of
// cross-shard work (routing, handoff export/import/evict, drain pumping,
// write-backs, result merging) happens on the calling thread between
// run_indexed calls. Concretely:
//
//   * no window open — shards share nothing, so each drains its own queue
//     to idle in budgeted chunks with barriers only at budget checks;
//   * window open — the classic merged-virtual-time lockstep loop runs
//     unchanged, except the per-window "advance every shard to the target"
//     step fans out over the pool; pump_migration() runs at the barrier.
//
// Worker count is invisible to results: every scheduling decision (window
// targets, chunk boundaries, pump order) is computed at barriers from state
// that is identical under any worker count, and each shard's execution is a
// pure function of its own inputs. Hence same seed => bit-identical merged
// history, tagged operations, and migration_log at workers = 1, 2, or N —
// tests/parallel_driver_test.cpp pins exactly that. Each cluster asserts the
// confinement contract in debug builds (cluster.h, consumer_guard).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/flat_hash.h"
#include "core/cluster.h"
#include "core/hash_ring.h"
#include "sim/driver.h"

namespace remus::core {

struct shard_router_config {
  /// Number of independent quorum groups (>= 1) at construction.
  std::uint32_t shards = 1;
  /// Virtual nodes per shard on the placement ring (see hash_ring.h).
  std::uint32_t vnodes = 64;
  /// Template for every shard's cluster. Shard s runs `base` with
  /// seed = base.seed + s * seed_stride, so shards see independent random
  /// streams (jitter, epochs) while the whole router stays reproducible
  /// from base.seed. Shards added by begin_add_shard() follow the same
  /// formula, so a grown router equals a bigger one shard-for-shard.
  cluster_config base;
  std::uint64_t seed_stride = 0x9e3779b97f4a7c15ULL;
  /// Background-drain rate: moved keys handed off per scheduling round
  /// while a migration window is open (>= 1). Lower stretches the window;
  /// higher converges faster but bursts import work.
  std::uint32_t drain_keys_per_pump = 4;
  /// Simulator worker threads (see "Parallel execution" in the file
  /// comment): 1 = sequential driver, k > 1 = pool of k threads advancing
  /// disjoint shards between window barriers, 0 = one per hardware thread.
  /// Any value produces bit-identical results; > 1 buys wall-clock speed
  /// once shard_count() > 1.
  std::uint32_t workers = 1;

  /// Deliberate migration-path bugs, injectable under test only: the
  /// scenario fuzzer's catch-and-minimize acceptance check plants one and
  /// requires the history checkers to reject the run.
  enum class injected_fault : std::uint8_t {
    none = 0,
    /// Handoff evicts the source but skips the destination import: the new
    /// shard answers from ⊥, rolling the key back past completed writes.
    drop_handoff_state = 1,
    /// Window reads skip the cross-shard write-back (the dual-ring read
    /// discipline with its second phase removed).
    skip_read_writeback = 2,
  };
  injected_fault test_fault = injected_fault::none;
};

class shard_router final {
 public:
  using op_handle = std::uint64_t;

  explicit shard_router(shard_router_config cfg);

  // ---- Routing ----
  /// Authoritative owner of `reg` *right now*: the target ring's owner,
  /// except that during a migration window a moved-but-not-yet-handed-off
  /// key still answers from its old shard.
  [[nodiscard]] std::uint32_t shard_of(register_id reg) const noexcept {
    if (migrating_ && delta_.moved(reg) && !is_migrated(reg)) {
      return prev_ring_->shard_of(reg);
    }
    return ring_.shard_of(reg);
  }
  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  /// The target topology (epoch-stamped; during a window this is already
  /// the *new* ring — see previous_ring()).
  [[nodiscard]] const hash_ring& ring() const noexcept { return ring_; }
  /// Direct access to one shard's cluster (faults, metrics, inspection).
  [[nodiscard]] cluster& shard(std::uint32_t s);
  [[nodiscard]] const cluster& shard(std::uint32_t s) const;
  /// Processes per shard (cfg.base.n); global process ids run to
  /// shard_count() * procs_per_shard().
  [[nodiscard]] std::uint32_t procs_per_shard() const noexcept { return cfg_.base.n; }
  /// Global identity of shard `s`'s local process `local` — the renumbering
  /// used by events() and tagged_operations().
  [[nodiscard]] process_id global_process(std::uint32_t s, process_id local) const {
    return process_id{s * cfg_.base.n + local.index};
  }

  // ---- Reconfiguration (live rebalancing) ----
  /// Opens a migration window growing the ring S -> S+1: spins up shard S
  /// (same config template, seed formula above), installs the epoch+1 ring,
  /// and starts routing under the dual-ring discipline described in the
  /// file comment. Returns the new shard's index. Requires no window open
  /// and a crash-recovery policy (handoff carries state through stable
  /// storage, which the crash-stop model lacks).
  std::uint32_t begin_add_shard();
  /// Retires the old ring and closes the window. Requires the moved-key
  /// worklist drained (run the router until migration_drained(); the drain
  /// pump rides the normal scheduling loop).
  void finish_add_shard();
  /// A migration window is open.
  [[nodiscard]] bool migration_active() const noexcept { return migrating_; }
  /// Every moved key handed off and every read write-back applied — i.e.
  /// finish_add_shard() would succeed.
  [[nodiscard]] bool migration_drained() const noexcept {
    return migrating_ && drain_worklist_.empty() && writebacks_.empty();
  }
  /// Keys enumerated for the background drain at window open (moved keys
  /// holding state, plus moved keys with in-flight old-shard operations).
  [[nodiscard]] std::size_t moved_key_count() const noexcept { return moved_total_; }
  /// Keys handed off so far (by write, by drain — not read write-backs).
  [[nodiscard]] std::size_t migrated_key_count() const noexcept { return migrated_total_; }

  /// One entry per migration action, in execution order — the migration
  /// schedule. Deterministic per (config, workload, reconfiguration calls);
  /// the determinism pin compares it across runs.
  struct migration_event {
    /// `lease_drop` entries are companions to a handoff entry for the same
    /// key at the same instant: the source group held read-lease state
    /// (active holdings and/or grantor records) that the eviction dropped —
    /// the old shard must never serve another leased read for the key.
    enum class cause : std::uint8_t { write_handoff, drain, read_writeback, lease_drop };
    register_id reg = default_register;
    std::uint32_t from_shard = 0;
    std::uint32_t to_shard = 0;
    time_ns at = 0;
    cause why = cause::drain;
  };
  [[nodiscard]] const std::vector<migration_event>& migration_log() const noexcept {
    return migration_log_;
  }

  // ---- Workload scheduling (virtual times, >= now()) ----
  //
  // `p` is a *local* process index, 0 .. procs_per_shard()-1: a router-level
  // client enters each shard through that shard's replica p (the classic
  // client-library model — the same logical client appears as a distinct
  // global process per shard, which is sound because well-formedness is
  // per process per shard).
  op_handle submit_write(process_id p, register_id reg, value v, time_ns at);
  op_handle submit_read(process_id p, register_id reg, time_ns at);
  /// Splits `ops` by owning shard (one cluster batch per shard touched) and
  /// completes when every sub-batch has. result().batch_result restores the
  /// caller's key order.
  op_handle submit_write_batch(process_id p, std::vector<proto::write_op> ops,
                               time_ns at);
  op_handle submit_read_batch(process_id p, std::vector<register_id> regs, time_ns at);
  /// Faults are per shard: crash/recover local process `p` of shard `s`.
  /// `style` picks what the crash leaves on the WAL engine's medium.
  void submit_crash(std::uint32_t s, process_id p, time_ns at,
                    crash_style style = crash_style::clean);
  void submit_recover(std::uint32_t s, process_id p, time_ns at);
  void apply(std::uint32_t s, const sim::fault_plan& plan, time_ns offset = 0);

  // ---- Execution ----
  /// Runs all shards until no events remain anywhere, advancing the S event
  /// queues in merged virtual-time order (and, during a migration window,
  /// pumping the drain between rounds). Returns false if `max_events`
  /// (total across shards) elapsed first.
  bool run_until_idle(std::uint64_t max_events = 50'000'000);
  /// Runs every shard's events with timestamps <= now()+d, then advances all
  /// clocks to now()+d.
  void run_for(time_ns d);

  // ---- Synchronous convenience ----
  /// Submit now + run the owning shard until the op completes, then advance
  /// the other shards to the same instant (so sequential cross-shard calls
  /// keep a meaningful global real-time order). During a window these follow
  /// the same read-from-old/write-to-new discipline as the async surface.
  value read(process_id p, register_id reg);
  void write(process_id p, register_id reg, value v);

  // ---- Results & introspection ----
  /// Mirror of cluster::op_result, merged across the op's sub-batches.
  struct op_result {
    bool submitted = false;
    bool completed = false;  // every sub-op completed (incl. any write-back)
    bool dropped = false;    // some sub-op was dropped behind a crash
    bool is_read = false;
    bool is_batch = false;
    process_id p;                        // local client index
    register_id reg = default_register;  // single-key ops
    value v;
    tag applied;
    /// Batched ops: per-register results in the caller's original key order.
    std::vector<proto::batch_entry> batch_result;
    time_ns invoked_at = 0;   // min across sub-ops
    time_ns completed_at = 0; // max across sub-ops (and cross-shard write-backs)
  };
  [[nodiscard]] const op_result& result(op_handle h) const;

  /// Merged keyed history, processes renumbered to global ids and events
  /// ordered by the shared virtual clock (history::merge_shard_histories).
  [[nodiscard]] history::history_log events() const;
  /// Merged tagged operations (global process ids) for per-key tag-order
  /// verification.
  [[nodiscard]] std::vector<history::tagged_op> tagged_operations() const;
  /// The shared virtual clock: max over shard clocks (they stay aligned
  /// after every run_* call).
  [[nodiscard]] time_ns now() const;
  /// Total simulator events executed across all shards.
  [[nodiscard]] std::uint64_t events_executed() const;
  [[nodiscard]] std::size_t events_pending() const;
  [[nodiscard]] const shard_router_config& config() const { return cfg_; }

 private:
  struct sub_op {
    std::uint32_t shard = 0;
    cluster::op_handle h = 0;
  };
  struct routed_op {
    bool is_read = false;
    bool is_batch = false;
    process_id p;
    std::vector<sub_op> subs;
    /// Original position of each per-key result, in (sub, sub-batch-entry)
    /// flattening order — inverse of the split's grouping by shard.
    std::vector<std::uint32_t> original_pos;
    /// Outstanding cross-shard read write-backs gating completion.
    std::uint32_t writebacks_pending = 0;
    time_ns writeback_at = 0;
    /// Lazily (re)built merged view; valid once every sub-op completed.
    mutable op_result merged;
    mutable bool merged_final = false;
  };
  /// A window read routed to an old shard: once the quorum read completes,
  /// its per-key (tag, value) results are imported into the new shard.
  struct pending_writeback {
    std::uint32_t old_shard = 0;
    cluster::op_handle h = 0;
    std::size_t op_index = 0;
    std::vector<register_id> regs;  // the moved keys of this sub-op
  };
  struct reg_hash {
    std::size_t operator()(register_id r) const noexcept {
      return static_cast<std::size_t>(mix_u64(r));
    }
  };

  [[nodiscard]] cluster& owner_of(register_id reg) { return *shards_[shard_of(reg)]; }
  void check_local(process_id p) const;
  [[nodiscard]] bool is_migrated(register_id reg) const noexcept {
    return migrated_.find(reg) != nullptr;
  }
  /// Migration-aware routing for one key of a write (may hand the key off at
  /// a quiet point) or a read (never migrates). Returns the shard to submit
  /// to; for window reads on an old shard, *moved_read is set so the caller
  /// registers the write-back.
  std::uint32_t route_write_key(register_id reg);
  std::uint32_t route_read_key(register_id reg, bool* moved_read);
  /// True when the old shard has no live operation touching `reg`.
  [[nodiscard]] bool old_shard_quiet(register_id reg);
  /// Records a still-live old-shard op on moved key `reg` (blocks handoff).
  void track_old_op(register_id reg, std::uint32_t shard, cluster::op_handle h);
  void add_to_worklist(register_id reg);
  /// Export-import-evict `reg` from its old to its new owner and flip its
  /// routing. Requires a quiet old shard.
  void handoff_key(register_id reg, migration_event::cause why, time_ns at);
  /// Drain-pump one scheduling round: apply completed read write-backs and
  /// hand off up to cfg_.drain_keys_per_pump quiet worklist keys.
  void pump_migration();
  /// Advances every shard's clock to `t` (no-op for shards already there).
  void sync_clocks_to(time_ns t);
  void merge_result(const routed_op& op) const;
  void register_writeback(std::size_t op_index);

  shard_router_config cfg_;
  /// Advances disjoint shards between barriers (sequential or pooled — see
  /// cfg_.workers). All cross-shard state above is touched only between
  /// run_indexed calls, on the calling thread.
  std::unique_ptr<sim::shard_driver> driver_;
  /// Per-shard idle flags for the chunked drain (each worker writes only its
  /// own slot; read after the barrier).
  std::vector<std::uint8_t> idle_scratch_;
  hash_ring ring_;                        // target topology (current epoch)
  std::unique_ptr<hash_ring> prev_ring_;  // retiring topology during a window
  hash_ring::delta delta_;                // ownership changes old -> new
  bool migrating_ = false;
  std::vector<std::unique_ptr<cluster>> shards_;
  std::vector<routed_op> ops_;

  // Migration-window state (empty outside a window).
  flat_hash_map<register_id, bool, reg_hash> migrated_;
  std::vector<register_id> drain_worklist_;  // ascending, not yet handed off
  flat_hash_map<register_id, std::vector<sub_op>, reg_hash> old_inflight_;
  std::vector<pending_writeback> writebacks_;
  std::vector<migration_event> migration_log_;
  std::size_t moved_total_ = 0;
  std::size_t migrated_total_ = 0;
  /// begin_add_shard's in-flight scan starts here: every op before the
  /// watermark is known terminal (ops complete roughly in submission order,
  /// so repeated window opens never re-walk settled history).
  std::size_t scan_from_ = 0;
  // Scratch for batch routing: moved keys read from an old shard this call.
  std::vector<std::vector<register_id>> wb_regs_scratch_;

  // submit_*_batch scratch: per-shard grouping buffers (sized shard_count).
  std::vector<std::vector<proto::write_op>> split_ops_;
  std::vector<std::vector<register_id>> split_regs_;
  std::vector<std::vector<std::uint32_t>> split_pos_;
};

}  // namespace remus::core
