// shard_router: the composition layer above cluster — a sharded register
// namespace served by S *independent* quorum groups.
//
// The paper's emulation (and core::cluster) serves its whole namespace from
// one majority cluster, so capacity is capped by a single quorum's
// throughput. The router consistently hashes every register_id onto one of S
// clusters (hash_ring.h) and exposes the same keyed API; because
// linearizability is compositional per register and every register lives on
// exactly one shard, the sharded namespace is atomic as long as each shard's
// quorum emulation is — exactly what history::check_atomicity_per_key
// verifies on the merged history. This is the "compose crash-recovery
// building blocks into larger services" direction of Kozhaya et al., "You
// Only Live Multiple Times".
//
// Independence is total: each shard has its own n processes, protocol cores,
// stable-storage namespace, network/disk models, fault schedule, and event
// queue. No message, log record, or timer ever crosses a shard. The router
// contributes exactly three things:
//
//   * routing     — shard_of(reg) via the seed-independent hash ring;
//   * scheduling  — run_until_idle()/run_for() advance all S event queues in
//     merged virtual-time order (lockstep windows bounded by each queue's
//     next_event_time()), so the shards share one global clock and the
//     merged history's timestamps are comparable across shards;
//   * merging     — a batch over keys of several shards splits into one
//     sub-batch per shard (one quorum round per phase *per shard touched*),
//     completes when every sub-batch has, and reassembles per-key results in
//     the caller's original key order. Histories and tagged operations merge
//     with shard s's processes renumbered to s*n .. s*n+n-1 (global ids), so
//     cross-shard process identities never collide.
//
// Typical use:
//
//   core::shard_router_config cfg;
//   cfg.shards = 4;
//   cfg.base.n = 3;
//   core::shard_router r(cfg);
//   r.write(process_id{0}, /*reg=*/7, value_of_u32(1));   // routed to 7's shard
//   auto v = r.read(process_id{1}, 7);
//   auto verdict = history::check_persistent_atomicity_per_key(r.events());
//
// Determinism: a run is a pure function of (shard_router_config, submitted
// workload). Key placement is additionally seed-independent (see hash_ring).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/cluster.h"
#include "core/hash_ring.h"

namespace remus::core {

struct shard_router_config {
  /// Number of independent quorum groups (>= 1).
  std::uint32_t shards = 1;
  /// Virtual nodes per shard on the placement ring (see hash_ring.h).
  std::uint32_t vnodes = 64;
  /// Template for every shard's cluster. Shard s runs `base` with
  /// seed = base.seed + s * seed_stride, so shards see independent random
  /// streams (jitter, epochs) while the whole router stays reproducible
  /// from base.seed.
  cluster_config base;
  std::uint64_t seed_stride = 0x9e3779b97f4a7c15ULL;
};

class shard_router final {
 public:
  using op_handle = std::uint64_t;

  explicit shard_router(shard_router_config cfg);

  // ---- Routing ----
  [[nodiscard]] std::uint32_t shard_of(register_id reg) const noexcept {
    return ring_.shard_of(reg);
  }
  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] const hash_ring& ring() const noexcept { return ring_; }
  /// Direct access to one shard's cluster (faults, metrics, inspection).
  [[nodiscard]] cluster& shard(std::uint32_t s);
  [[nodiscard]] const cluster& shard(std::uint32_t s) const;
  /// Processes per shard (cfg.base.n); global process ids run to
  /// shard_count() * procs_per_shard().
  [[nodiscard]] std::uint32_t procs_per_shard() const noexcept { return cfg_.base.n; }
  /// Global identity of shard `s`'s local process `local` — the renumbering
  /// used by events() and tagged_operations().
  [[nodiscard]] process_id global_process(std::uint32_t s, process_id local) const {
    return process_id{s * cfg_.base.n + local.index};
  }

  // ---- Workload scheduling (virtual times, >= now()) ----
  //
  // `p` is a *local* process index, 0 .. procs_per_shard()-1: a router-level
  // client enters each shard through that shard's replica p (the classic
  // client-library model — the same logical client appears as a distinct
  // global process per shard, which is sound because well-formedness is
  // per process per shard).
  op_handle submit_write(process_id p, register_id reg, value v, time_ns at);
  op_handle submit_read(process_id p, register_id reg, time_ns at);
  /// Splits `ops` by owning shard (one cluster batch per shard touched) and
  /// completes when every sub-batch has. result().batch_result restores the
  /// caller's key order.
  op_handle submit_write_batch(process_id p, std::vector<proto::write_op> ops,
                               time_ns at);
  op_handle submit_read_batch(process_id p, std::vector<register_id> regs, time_ns at);
  /// Faults are per shard: crash/recover local process `p` of shard `s`.
  void submit_crash(std::uint32_t s, process_id p, time_ns at);
  void submit_recover(std::uint32_t s, process_id p, time_ns at);
  void apply(std::uint32_t s, const sim::fault_plan& plan, time_ns offset = 0);

  // ---- Execution ----
  /// Runs all shards until no events remain anywhere, advancing the S event
  /// queues in merged virtual-time order. Returns false if `max_events`
  /// (total across shards) elapsed first.
  bool run_until_idle(std::uint64_t max_events = 50'000'000);
  /// Runs every shard's events with timestamps <= now()+d, then advances all
  /// clocks to now()+d.
  void run_for(time_ns d);

  // ---- Synchronous convenience ----
  /// Submit now + run the owning shard until the op completes, then advance
  /// the other shards to the same instant (so sequential cross-shard calls
  /// keep a meaningful global real-time order).
  value read(process_id p, register_id reg);
  void write(process_id p, register_id reg, value v);

  // ---- Results & introspection ----
  /// Mirror of cluster::op_result, merged across the op's sub-batches.
  struct op_result {
    bool submitted = false;
    bool completed = false;  // every sub-op completed
    bool dropped = false;    // some sub-op was dropped behind a crash
    bool is_read = false;
    bool is_batch = false;
    process_id p;                        // local client index
    register_id reg = default_register;  // single-key ops
    value v;
    tag applied;
    /// Batched ops: per-register results in the caller's original key order.
    std::vector<proto::batch_entry> batch_result;
    time_ns invoked_at = 0;   // min across sub-ops
    time_ns completed_at = 0; // max across sub-ops
  };
  [[nodiscard]] const op_result& result(op_handle h) const;

  /// Merged keyed history, processes renumbered to global ids and events
  /// ordered by the shared virtual clock (history::merge_shard_histories).
  [[nodiscard]] history::history_log events() const;
  /// Merged tagged operations (global process ids) for per-key tag-order
  /// verification.
  [[nodiscard]] std::vector<history::tagged_op> tagged_operations() const;
  /// The shared virtual clock: max over shard clocks (they stay aligned
  /// after every run_* call).
  [[nodiscard]] time_ns now() const;
  /// Total simulator events executed across all shards.
  [[nodiscard]] std::uint64_t events_executed() const;
  [[nodiscard]] std::size_t events_pending() const;
  [[nodiscard]] const shard_router_config& config() const { return cfg_; }

 private:
  struct sub_op {
    std::uint32_t shard = 0;
    cluster::op_handle h = 0;
  };
  struct routed_op {
    bool is_read = false;
    bool is_batch = false;
    process_id p;
    std::vector<sub_op> subs;
    /// Original position of each per-key result, in (sub, sub-batch-entry)
    /// flattening order — inverse of the split's grouping by shard.
    std::vector<std::uint32_t> original_pos;
    /// Lazily (re)built merged view; valid once every sub-op completed.
    mutable op_result merged;
    mutable bool merged_final = false;
  };

  [[nodiscard]] cluster& owner_of(register_id reg) { return *shards_[shard_of(reg)]; }
  void check_local(process_id p) const;
  /// Advances every shard's clock to `t` (no-op for shards already there).
  void sync_clocks_to(time_ns t);
  void merge_result(const routed_op& op) const;

  shard_router_config cfg_;
  hash_ring ring_;
  std::vector<std::unique_ptr<cluster>> shards_;
  std::vector<routed_op> ops_;

  // submit_*_batch scratch: per-shard grouping buffers (sized shard_count).
  std::vector<std::vector<proto::write_op>> split_ops_;
  std::vector<std::vector<register_id>> split_regs_;
  std::vector<std::vector<std::uint32_t>> split_pos_;
};

}  // namespace remus::core
