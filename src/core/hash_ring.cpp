#include "core/hash_ring.h"

#include <algorithm>

#include "common/error.h"
#include "common/flat_hash.h"

namespace remus::core {

// The splitmix64 finalizer (common/flat_hash.h): full-avalanche with fixed
// constants, so ring placement never depends on a run's config or seed.
std::uint64_t hash_ring::mix(std::uint64_t x) noexcept { return mix_u64(x); }

namespace {

std::vector<std::uint32_t> iota_ids(std::uint32_t shard_count) {
  std::vector<std::uint32_t> ids(shard_count);
  for (std::uint32_t s = 0; s < shard_count; ++s) ids[s] = s;
  return ids;
}

}  // namespace

hash_ring::hash_ring(std::uint32_t shard_count, std::uint32_t vnodes, std::uint64_t epoch)
    : hash_ring(iota_ids(shard_count), vnodes, epoch) {}

hash_ring::hash_ring(std::vector<std::uint32_t> shard_ids, std::uint32_t vnodes,
                     std::uint64_t epoch)
    : shard_ids_(std::move(shard_ids)), vnodes_(vnodes), epoch_(epoch) {
  if (shard_ids_.empty()) throw driver_error("hash_ring: shard set must be non-empty");
  if (vnodes == 0) throw driver_error("hash_ring: vnodes must be >= 1");
  std::sort(shard_ids_.begin(), shard_ids_.end());
  if (std::adjacent_find(shard_ids_.begin(), shard_ids_.end()) != shard_ids_.end()) {
    throw driver_error("hash_ring: duplicate shard id");
  }
  ring_.reserve(shard_ids_.size() * vnodes);
  for (const std::uint32_t s : shard_ids_) {
    for (std::uint32_t v = 0; v < vnodes; ++v) {
      // Distinct-stream point placement: the replica index lives in the high
      // word so shard s's points are unrelated to shard s+1's — and a
      // shard's points depend only on its own id, which is what makes grow
      // and shrink move only the appearing/disappearing shard's keys.
      const std::uint64_t key =
          (static_cast<std::uint64_t>(v) << 32) | static_cast<std::uint64_t>(s);
      ring_.push_back({mix(key), s});
    }
  }
  // Position ties (two virtual nodes hashing to the same 64-bit point —
  // astronomically unlikely but handled explicitly) break by shard index,
  // so the ring order — and therefore every placement — is deterministic,
  // and the lower-numbered shard owns the collided position under both the
  // pre- and post-reconfiguration ring whenever both contain it.
  std::sort(ring_.begin(), ring_.end(), [](const point& a, const point& b) {
    if (a.pos != b.pos) return a.pos < b.pos;
    return a.shard < b.shard;
  });
}

hash_ring hash_ring::grow(std::uint32_t new_shard) const {
  if (has_shard(new_shard)) throw driver_error("hash_ring: grow() of an existing shard");
  std::vector<std::uint32_t> ids = shard_ids_;
  ids.push_back(new_shard);
  return hash_ring(std::move(ids), vnodes_, epoch_ + 1);
}

hash_ring hash_ring::shrink(std::uint32_t removed) const {
  if (!has_shard(removed)) throw driver_error("hash_ring: shrink() of an absent shard");
  if (shard_ids_.size() == 1) {
    throw driver_error("hash_ring: cannot shrink the last shard away");
  }
  std::vector<std::uint32_t> ids;
  ids.reserve(shard_ids_.size() - 1);
  for (const std::uint32_t s : shard_ids_) {
    if (s != removed) ids.push_back(s);
  }
  return hash_ring(std::move(ids), vnodes_, epoch_ + 1);
}

bool hash_ring::has_shard(std::uint32_t shard) const noexcept {
  return std::binary_search(shard_ids_.begin(), shard_ids_.end(), shard);
}

std::uint32_t hash_ring::owner_of_position(std::uint64_t pos) const noexcept {
  // First point clockwise from pos (wrapping to the first point past 0).
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), pos,
      [](const point& p, std::uint64_t position) { return p.pos < position; });
  return it == ring_.end() ? ring_.front().shard : it->shard;
}

std::uint32_t hash_ring::shard_of(register_id reg) const noexcept {
  return owner_of_position(mix(static_cast<std::uint64_t>(reg)));
}

// ---- Delta -------------------------------------------------------------------

hash_ring::delta hash_ring::diff(const hash_ring& before, const hash_ring& after) {
  // Boundary positions: the union of both rings' points. Ownership under
  // either ring is constant on each half-open arc (b_{i-1}, b_i] because no
  // point of either ring lies strictly inside it; the owner over the arc is
  // the owner of its upper boundary.
  std::vector<std::uint64_t> bounds;
  bounds.reserve(before.points() + after.points());
  for (const point& p : before.ring_) bounds.push_back(p.pos);
  for (const point& p : after.ring_) bounds.push_back(p.pos);
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  delta d;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const std::uint64_t hi = bounds[i];
    const std::uint32_t was = before.owner_of_position(hi);
    const std::uint32_t now = after.owner_of_position(hi);
    if (was == now) continue;
    // The arc ending at bounds[0] wraps: it runs from the last boundary,
    // through 2^64 - 1 and 0, up to bounds[0] (lo > hi marks it). When every
    // arc changes owner the same way, coalescing (or a single-boundary ring)
    // degenerates to lo == hi — which segment_of reads as the full circle,
    // the only correct meaning, since empty segments are never emitted.
    const std::uint64_t lo = i == 0 ? bounds.back() : bounds[i - 1];
    if (!d.segments.empty() && d.segments.back().hi == lo &&
        d.segments.back().from_shard == was && d.segments.back().to_shard == now &&
        i != 0) {
      d.segments.back().hi = hi;  // coalesce adjacent arcs with the same move
    } else {
      d.segments.push_back({lo, hi, was, now});
    }
  }
  return d;
}

const hash_ring::delta::segment* hash_ring::delta::segment_of(
    register_id reg) const noexcept {
  if (segments.empty()) return nullptr;
  const std::uint64_t h = mix(static_cast<std::uint64_t>(reg));
  // Segments are sorted by hi; find the first segment with hi >= h and check
  // containment. The wrapping segment (lo > hi, always first if present)
  // contains h iff h <= hi or h > lo. lo == hi is the full circle — every
  // boundary arc changed owner (e.g. the only shard was replaced), which is
  // the one shape a half-open (lo, hi] interval cannot express otherwise;
  // genuinely empty segments are never constructed (see diff()).
  const auto contains = [h](const segment& s) {
    if (s.lo == s.hi) return true;  // full circle
    return s.lo > s.hi ? (h <= s.hi || h > s.lo) : (h > s.lo && h <= s.hi);
  };
  const auto it = std::lower_bound(
      segments.begin(), segments.end(), h,
      [](const segment& s, std::uint64_t pos) { return s.hi < pos; });
  if (it != segments.end() && contains(*it)) return &*it;
  // h may still fall in the wrapping (or full-circle) segment's upper range.
  const segment& first = segments.front();
  if ((first.lo > first.hi || first.lo == first.hi) && h > first.lo) return &first;
  return nullptr;
}

bool hash_ring::delta::moved(register_id reg) const noexcept {
  return segment_of(reg) != nullptr;
}

}  // namespace remus::core
