#include "core/hash_ring.h"

#include <algorithm>

#include "common/error.h"
#include "common/flat_hash.h"

namespace remus::core {

// The splitmix64 finalizer (common/flat_hash.h): full-avalanche with fixed
// constants, so ring placement never depends on a run's config or seed.
std::uint64_t hash_ring::mix(std::uint64_t x) noexcept { return mix_u64(x); }

hash_ring::hash_ring(std::uint32_t shard_count, std::uint32_t vnodes)
    : shard_count_(shard_count), vnodes_(vnodes) {
  if (shard_count == 0) throw driver_error("hash_ring: shard_count must be >= 1");
  if (vnodes == 0) throw driver_error("hash_ring: vnodes must be >= 1");
  ring_.reserve(static_cast<std::size_t>(shard_count) * vnodes);
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    for (std::uint32_t v = 0; v < vnodes; ++v) {
      // Distinct-stream point placement: the replica index lives in the high
      // word so shard s's points are unrelated to shard s+1's.
      const std::uint64_t key =
          (static_cast<std::uint64_t>(v) << 32) | static_cast<std::uint64_t>(s);
      ring_.push_back({mix(key), s});
    }
  }
  // Position ties (astronomically unlikely) break by shard index so the ring
  // order — and therefore every placement — is deterministic.
  std::sort(ring_.begin(), ring_.end(), [](const point& a, const point& b) {
    if (a.pos != b.pos) return a.pos < b.pos;
    return a.shard < b.shard;
  });
}

std::uint32_t hash_ring::shard_of(register_id reg) const noexcept {
  const std::uint64_t h = mix(static_cast<std::uint64_t>(reg));
  // First point clockwise from h (wrapping to the first point past 0).
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const point& p, std::uint64_t pos) { return p.pos < pos; });
  return it == ring_.end() ? ring_.front().shard : it->shard;
}

}  // namespace remus::core
